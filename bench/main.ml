(* Benchmark harness: regenerates every experiment table of DESIGN.md's
   index (E1-E12 — the paper has no measured evaluation, so these
   reproduce its figures, lemmas and theorems empirically), then runs
   Bechamel micro/macro benchmarks of the substrate and protocols.

   Usage:
     dune exec bench/main.exe               # tables + bechamel
     dune exec bench/main.exe -- --tables   # experiment tables only
     dune exec bench/main.exe -- --bench    # bechamel only
     dune exec bench/main.exe -- --quick    # smaller parameters
     dune exec bench/main.exe -- --jobs 4   # engine workers for the tables
     dune exec bench/main.exe -- --baseline OLD.json --max-regress 25
                                            # compare against a previous
                                            # BENCH_results.json; exit 1 on
                                            # regressions beyond the limit *)

open Dds_sim
open Dds_net
open Dds_core
open Dds_workload

let quick = Array.exists (String.equal "--quick") Sys.argv
let tables_only = Array.exists (String.equal "--tables") Sys.argv
let bench_only = Array.exists (String.equal "--bench") Sys.argv

let opt_arg name =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if String.equal Sys.argv.(i) name then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let jobs =
  match opt_arg "--jobs" with
  | Some s -> ( try int_of_string s with Failure _ -> 0)
  | None -> 0

let baseline = opt_arg "--baseline"

let max_regress =
  match opt_arg "--max-regress" with
  | Some s -> ( try float_of_string s with Failure _ -> 25.0)
  | None -> 25.0

let scale x = if quick then Stdlib.max 1 (x / 4) else x

(* ------------------------------------------------------------------ *)
(* Experiment tables *)

(* Prints each table as it is produced and returns them all (plus the
   engine-scaling rows), so the run can be serialized to
   BENCH_results.json at the end. Every sweep submits its cells
   through [pool]. *)
let run_tables ~pool () =
  let acc = ref [] in
  let show r =
    acc := r :: !acc;
    Report.print r
  in
  Format.printf "@.#### Experiment tables (paper: Baldoni et al., ICDCS 2009) ####@.";

  (* E1 — new/old inversion (introduction's figure). *)
  show (Tables.inversion (Scenario.inversion ()));

  (* E2/E3 — Figure 3a/3b. *)
  show
    (Tables.fig3 (Scenario.fig3 ~join_wait:false) (Scenario.fig3 ~join_wait:true));

  (* E4 — Lemma 2's bound. *)
  let n = 60 and delta = 3 in
  show
    (Tables.lemma2 ~n ~delta
       (Sweep.lemma2 ~pool ~n ~delta
          ~ratios:[ 0.25; 0.5; 0.75; 0.9; 1.0; 1.2 ]
          ~horizon:(scale 1500) ~seed:42 ()));

  (* E5 — synchronous safety across the churn threshold, under both
     empty-inquiry policies (the paper's literal protocol vs the retry
     hardening — an ablation of the one underdefined step). *)
  let n = 30 and delta = 3 in
  let seeds = List.init (scale 10) (fun i -> 100 + i) in
  let ratios = [ 0.3; 0.6; 0.9; 1.1; 1.4; 2.0; 3.0 ] in
  show
    (Tables.sync_safety ~n ~delta ~variant:"paper-literal: adopt bottom"
       (Sweep.sync_safety ~on_empty:Sync_register.Adopt_bottom ~pool ~n ~delta ~ratios ~seeds
          ~horizon:(scale 600) ()));
  show
    (Tables.sync_safety ~n ~delta ~variant:"hardened: retry inquiry"
       (Sweep.sync_safety ~on_empty:Sync_register.Retry ~pool ~n ~delta ~ratios ~seeds
          ~horizon:(scale 600) ()));

  (* E6 — synchronous operation latencies (Lemma 1's bounds). *)
  show
    (Tables.latency
       ~title:
         "E6 — synchronous latencies (Lemma 1: join <= 3*delta=15, write = delta=5, read = 0)"
       (Sweep.sync_latency ~n:30 ~delta:5 ~c:0.01 ~horizon:(scale 1000) ~seed:7));

  (* E7 — asynchronous impossibility curve. *)
  show
    (Tables.async_impossibility
       (Sweep.async_series ~pool ~horizons:[ 250; 500; 1000; 2000; scale 4000 ] ()));

  (* E8 — eventually synchronous latencies, pre- vs post-GST. *)
  show
    (Tables.latency ~title:"E8 — ES latencies before vs after GST (gst=500, delta=4, wild=60)"
       (Sweep.es_latency ~n:20 ~gst:500 ~delta:4 ~wild:60 ~horizon:(scale 1200) ~seed:21));

  (* E9 — ES liveness at the majority boundary. *)
  let n = 10 in
  show
    (Tables.es_boundary ~n
       (Sweep.es_boundary ~pool ~n
          ~rates:[ 0.0; 0.005; 0.01; 0.02; 0.04; 0.08; 0.15 ]
          ~horizon:(scale 600) ~seed:3 ()));

  (* E10 — ABD vs the dynamic protocols. *)
  let n = 20 and c = 0.02 and horizon = scale 1500 in
  show
    (Tables.abd_vs_dynamic ~n ~c ~horizon
       (Sweep.abd_vs_dynamic ~pool ~n ~delta:3 ~c ~horizon ~seed:11 ()));

  (* E11 — message complexity. *)
  show
    (Tables.msg_complexity
       (Sweep.msg_complexity ~pool ~ns:[ 10; 20; 40 ] ~delta:3 ~seed:5 ()));

  (* E12 — timed quorums. *)
  let n = 30 in
  show
    (Tables.timed_quorum ~n
       (Sweep.timed_quorum ~pool ~n
          ~cs:[ 0.005; 0.01; 0.02; 0.05; 0.1 ]
          ~lifetime:20 ~trials:(scale 400) ~seed:17 ()));

  (* E13 — the greatest tolerable churn (Section 7's open question). *)
  let n = 24 in
  show
    (Tables.churn_threshold ~n
       (Sweep.churn_threshold ~pool ~n ~deltas:[ 2; 3; 4 ]
          ~seeds:(List.init (scale 4) (fun i -> 500 + i))
          ~horizon:(scale 400) ()));

  (* E14 — bursty churn at a constant average rate. *)
  let n = 30 and delta = 3 in
  show
    (Tables.bursty_churn ~n ~delta
       (Sweep.bursty_churn ~pool ~n ~delta
          ~seeds:(List.init (scale 8) (fun i -> 900 + i))
          ~horizon:(scale 600) ()));

  (* E15 — message-loss fault injection (outside the paper's model). *)
  let n = 16 in
  show
    (Tables.message_loss ~n
       (Sweep.message_loss ~pool ~n ~delta:3
          ~losses:[ 0.0; 0.01; 0.05; 0.1; 0.2 ]
          ~horizon:(scale 500) ~seed:23 ()));

  (* E16 — footnote 4's join-wait optimization. *)
  let n = 20 and delta = 6 in
  show
    (Tables.join_wait_optimization ~n ~delta
       (Sweep.join_wait_optimization ~pool ~n ~delta ~p2ps:[ 1; 2; 3 ] ~horizon:(scale 800)
          ~seed:29 ()));

  (* E17 — the broadcast assumption, implemented and priced. *)
  let n = 16 in
  show
    (Tables.broadcast_robustness ~n
       (Sweep.broadcast_robustness ~pool ~n
          ~losses:[ 0.0; 0.05; 0.1; 0.2 ]
          ~horizon:(scale 600) ~seed:31 ()));

  (* E18 — consensus from the registers (the introduction's claim). *)
  let n = 10 and kregs = 3 in
  show
    (Tables.consensus ~n ~k:kregs
       (Sweep.consensus_under_churn ~pool ~n ~k:kregs
          ~cs:[ 0.0; 0.005; 0.01; 0.02 ]
          ~horizon:(scale 1200) ~seed:37 ()));

  (* E19 — the wireless zone: the churn bound as a speed limit. *)
  show
    (Tables.geo_speed ~delta:3
       (Sweep.geo_speed ~pool
          ~speeds:[ 0.0; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 ]
          ~horizon:(scale 1000) ~seed:5 ()));

  (* E20 — quorum-size ablation: majority is the safety boundary. *)
  let n = 10 and c = 0.01 and loss = 0.3 in
  show
    (Tables.quorum_ablation ~n ~c ~loss
       (Sweep.quorum_ablation ~loss ~pool ~n ~quorums:[ 1; 2; 3; 4; 5; 6 ] ~c
          ~horizon:(scale 800) ~seed:1 ()));

  (* E21 — regular-to-atomic via read-repair. *)
  show
    (Tables.read_repair ~n:10
       (Sweep.read_repair_ablation ~pool ~n:10 ~horizon:(scale 800) ~seed:47 ()));

  (* E22 — delta mis-calibration. *)
  show
    (Tables.delta_calibration ~n:20 ~actual:6
       (Sweep.delta_calibration ~pool ~n:20 ~actual:6
          ~believed:[ 2; 4; 6; 9; 12 ]
          ~horizon:(scale 900) ~seed:53 ()));

  (* E23 — churn process shape at equal average rate. *)
  let n = 30 and delta = 3 in
  show
    (Tables.session_models ~n ~delta
       (Sweep.session_models ~pool ~n ~delta ~mean:15.0 ~horizon:(scale 900) ~seed:59 ()));

  (* E24 — nemesis fault matrix. *)
  let n = 10 and delta = 3 in
  let e24_horizon = Stdlib.max 120 (scale 240) in
  show
    (Tables.nemesis_matrix ~n ~delta
       (Sweep.nemesis_matrix ~pool ~n ~delta ~horizon:e24_horizon ~seed:61 ()));

  (* Engine scaling — the E24 matrix re-timed under dedicated pools of
     1, 2 and 4 workers, each with a profiler attached (its per-site
     cost is a few array stores — see the profiler-overhead bechamel
     pair). Wall time includes pool setup/teardown, which is what a
     CLI user pays too; the summaries become BENCH_results.json's
     [engine_profile] section. *)
  let time_with_jobs jobs =
    let profile = Dds_profile.Profile.create ~workers:jobs () in
    let t0 = Unix.gettimeofday () in
    Dds_engine.Pool.with_pool ~jobs ~profile (fun pool ->
        ignore (Sweep.nemesis_matrix ~pool ~n ~delta ~horizon:e24_horizon ~seed:61 ()));
    (Unix.gettimeofday () -. t0, Dds_profile.Profile.summary profile)
  in
  let runs = List.map (fun j -> (j, time_with_jobs j)) [ 1; 2; 4 ] in
  let base = fst (List.assoc 1 runs) in
  let scaling =
    List.map
      (fun (j, (w, _)) ->
        { Tables.sc_jobs = j; sc_wall_s = w; sc_speedup = (if w > 0. then base /. w else 0.) })
      runs
  in
  show (Tables.engine_scaling ~case:"E24 nemesis matrix" scaling);
  let profile_rows = List.map (fun (j, (w, s)) -> (j, w, s)) runs in
  List.iter
    (fun (j, _, (s : Dds_profile.Profile.summary)) ->
      Format.printf "  profile jobs=%d: busy %.0f%%, %.3g minor words/job, %s@." j
        (100.0 *. s.Dds_profile.Profile.s_busy_fraction)
        s.Dds_profile.Profile.s_minor_words_per_job s.Dds_profile.Profile.s_dominant)
    profile_rows;

  (* Engine scaling, amortized grain — the same matrix at --horizon
     2000, big enough (~seconds sequential) that domain spawn and
     shared-major-heap fixed costs stop dominating the measurement
     (ROADMAP item 1: E24 at its table size sits below the parallelism
     floor). *)
  let big_horizon = scale 2000 in
  let time_big jobs =
    let t0 = Unix.gettimeofday () in
    Dds_engine.Pool.with_pool ~jobs (fun pool ->
        ignore (Sweep.nemesis_matrix ~pool ~n ~delta ~horizon:big_horizon ~seed:61 ()));
    Unix.gettimeofday () -. t0
  in
  let big_case = Printf.sprintf "E24 nemesis matrix, --horizon %d" big_horizon in
  let runs_big = List.map (fun j -> (j, time_big j)) [ 1; 2; 4 ] in
  let base_big = List.assoc 1 runs_big in
  let scaling_big =
    List.map
      (fun (j, w) ->
        { Tables.sc_jobs = j; sc_wall_s = w; sc_speedup = (if w > 0. then base_big /. w else 0.) })
      runs_big
  in
  show (Tables.engine_scaling ~case:big_case scaling_big);

  (* E25 — sharded key-space scaling. *)
  let shard_keys = 512 and shard_horizon = scale 600 in
  let shard_rows =
    Sweep.shard_scaling ~pool ~protocol:"sync" ~n:10 ~delta:3
      ~shards:[ 1; 2; 4; 8 ]
      ~skews:[ 0.0; 1.0 ]
      ~churns:[ 0.0; 0.02 ]
      ~keys:shard_keys ~read_rate:1.0 ~write_every:20 ~horizon:shard_horizon ~seed:67 ()
  in
  show (Tables.shard_scaling ~protocol:"sync" ~n:10 ~keys:shard_keys ~horizon:shard_horizon shard_rows);

  ( List.rev !acc,
    [ ("E24 nemesis matrix", scaling); (big_case, scaling_big) ],
    profile_rows,
    shard_rows )

(* ------------------------------------------------------------------ *)
(* Explorer throughput *)

(* The dds check explorer on its canonical seeded-bug configuration
   (3-node ES with the quorum mutated to 1 and one droppable message):
   wall time and schedules/sec at 1, 2 and 4 workers with the
   reductions on, plus the same exploration with sleep sets and the
   state cache disabled — the explored count is worker-independent, so
   the jobs rows differ only in wall clock, and the naive row prices
   what the reductions save. *)
type checker_row = {
  ck_label : string;
  ck_jobs : int;
  ck_naive : bool;
  ck_schedules : int;
  ck_wall_s : float;
  ck_per_s : float;
  ck_cache_peak : int;  (** largest single subtree fingerprint cache *)
  ck_cache_hit_rate : float;  (** prunes / (prunes + entries inserted) *)
  ck_minor_per_sched : float;  (** minor words allocated per schedule *)
}

let run_checker_rows () =
  let p = Protocol.find_exn "es" in
  let cfg =
    {
      Dds_check.Schedule.proto = "es";
      nodes = 3;
      delta = 1;
      writes = 1;
      reads = 1;
      joins = 0;
      quorum = Some 1;
      drop_budget = 1;
      crash_budget = 0;
      depth_bound = 20;
      preempt_bound = 2;
    }
  in
  let time ~naive jobs =
    (* The profiler rides along for its allocation telemetry: minor
       words are per-domain in OCaml 5, so per-job Gc deltas summed
       over Job spans are the only number that stays right at jobs>1. *)
    let profile = Dds_profile.Profile.create ~workers:jobs () in
    let t0 = Unix.gettimeofday () in
    let outcome =
      Dds_engine.Pool.with_pool ~jobs ~profile (fun pool ->
          Dds_check.Check.run ~pool ~por:(not naive) ~state_cache:(not naive) p cfg)
    in
    let wall = Unix.gettimeofday () -. t0 in
    let summary = Dds_profile.Profile.summary profile in
    match outcome with
    | Error e -> failwith e
    | Ok o ->
      let st = o.Dds_check.Check.stats in
      let n = st.Dds_check.Check.schedules in
      let hits = st.Dds_check.Check.state_prunes in
      let misses = st.Dds_check.Check.cache_entries in
      {
        ck_label = (if naive then "naive DFS" else "sleep sets + state cache");
        ck_jobs = jobs;
        ck_naive = naive;
        ck_schedules = n;
        ck_wall_s = wall;
        ck_per_s = (if wall > 0. then float_of_int n /. wall else 0.);
        ck_cache_peak = st.Dds_check.Check.cache_peak;
        ck_cache_hit_rate =
          (if hits + misses > 0 then float_of_int hits /. float_of_int (hits + misses)
           else 0.0);
        ck_minor_per_sched =
          (if n > 0 then summary.Dds_profile.Profile.s_minor_words /. float_of_int n
           else 0.0);
      }
  in
  let rows =
    List.map (fun j -> time ~naive:false j) [ 1; 2; 4 ] @ [ time ~naive:true 1 ]
  in
  Format.printf
    "@.#### Explorer throughput (check es, quorum=1, 1 drop, depth 20) ####@.@.";
  Format.printf "  %-26s %4s %10s %8s %12s %11s %6s %13s@." "mode" "jobs" "schedules"
    "wall s" "schedules/s" "cache peak" "hit%" "minor w/sched";
  List.iter
    (fun r ->
      Format.printf "  %-26s %4d %10d %8.3f %12.0f %11d %6.1f %13.0f@." r.ck_label
        r.ck_jobs r.ck_schedules r.ck_wall_s r.ck_per_s r.ck_cache_peak
        (100.0 *. r.ck_cache_hit_rate) r.ck_minor_per_sched)
    rows;
  rows

(* ------------------------------------------------------------------ *)
(* Idle-path CPU probe *)

(* One straggler job sleeps ~50ms on worker 0 while the other workers'
   deques are already drained, so they sit in the steal-scan idle loop
   the whole time. With the exponential backoff in Pool.work the
   process CPU over the batch stays near zero (everyone is sleeping);
   the old fixed-cadence relax/sleep loop burned most of a core per
   idle worker, i.e. ~(jobs-1) * wall of CPU. Sys.time is ISO C
   clock(): processor time across every domain of the process, exactly
   the number busy-waiting inflates. The run also re-checks the
   determinism contract the backoff must not disturb: the merged
   output equals the jobs=1 run of the same batch. *)
type idle_row = {
  ip_jobs : int;
  ip_wall_s : float;
  ip_cpu_s : float;
  ip_cpu_per_idle : float;  (** cpu / ((jobs-1) * wall): 0 = all asleep, 1 = busy-wait *)
}

let run_idle_probe () =
  let jobs = 4 in
  let batch pool =
    Dds_engine.Pool.map pool ~key:string_of_int
      ~f:(fun x ->
        if x = 0 then Unix.sleepf 0.05;
        x * x)
      (List.init 8 Fun.id)
  in
  let reference = Dds_engine.Pool.with_pool ~jobs:1 batch in
  Dds_engine.Pool.with_pool ~jobs (fun pool ->
      let c0 = Sys.time () in
      let t0 = Unix.gettimeofday () in
      let out = batch pool in
      let wall = Unix.gettimeofday () -. t0 in
      let cpu = Sys.time () -. c0 in
      if out <> reference then failwith "pool idle probe: output differs from jobs=1";
      let per_idle = if wall > 0.0 then cpu /. (float_of_int (jobs - 1) *. wall) else 0.0 in
      Format.printf "@.#### Pool idle probe (1 straggler, %d workers) ####@.@." jobs;
      Format.printf "  wall %.3fs, process cpu %.3fs (%.2f of the %d idle workers' budget)@."
        wall cpu per_idle (jobs - 1);
      (* Generous bound: busy-waiting scores ~1.0 here, the backoff
         well under 0.1 — flag anything past half a burned core per
         idle worker without being brittle on loaded CI runners. *)
      if per_idle > 0.5 then
        failwith
          (Printf.sprintf
             "pool idle probe: %.2f of idle-worker CPU burned (backoff regression?)" per_idle);
      { ip_jobs = jobs; ip_wall_s = wall; ip_cpu_s = cpu; ip_cpu_per_idle = per_idle })

(* ------------------------------------------------------------------ *)
(* Runtime loopback throughput *)

(* The Unix backend, priced: a live 3-node ES deployment on loopback
   TCP (forked node processes, exactly what `dds serve` runs) driven
   by the closed-loop generator for a couple of seconds. Sustained
   ops/s and tail latency land in BENCH_results.json's
   [runtime_loopback] section; like the other wall-clock sections it
   is recorded, not gated — loopback throughput on a shared runner is
   far too noisy to fail a build on. *)
type runtime_row = {
  rt_clients : int;
  rt_ops : int;
  rt_errors : int;
  rt_ops_per_s : float;
  rt_read_p50_us : float;
  rt_read_p99_us : float;
  rt_write_p99_us : float;
}

let run_runtime_loopback () =
  let module Node = Dds_runtime_unix.Node in
  let module N_es = Node.Make (Es_register) in
  let module Loop = Dds_runtime_unix.Loop in
  let module Load = Dds_runtime_unix.Load in
  let n = 3 in
  let socks =
    Array.init n (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        Unix.listen fd 128;
        let port =
          match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
        in
        (fd, port))
  in
  let addrs = Array.map (fun (_, port) -> ("127.0.0.1", port)) socks in
  let children =
    Array.init n (fun i ->
        let ctl_r, ctl_w = Unix.pipe () in
        match Unix.fork () with
        | 0 ->
          Unix.close ctl_w;
          (try
             let loop = Loop.create () in
             let cfg =
               {
                 (Node.default_config ~self:i ~addrs) with
                 Node.events_enabled = false;
                 listen_fd = Some (fst socks.(i));
               }
             in
             let node = N_es.create ~loop cfg (Es_register.default_params ~n) in
             Loop.watch_read loop ctl_r (fun () ->
                 N_es.shutdown node;
                 Loop.stop loop);
             Loop.run loop
           with _ -> ());
          Unix._exit 0
        | pid ->
          Unix.close ctl_r;
          (pid, ctl_w))
  in
  Array.iter (fun (fd, _) -> Unix.close fd) socks;
  let duration_s = if quick then 1.0 else 2.0 in
  let clients = 8 in
  let r = Load.run ~addrs ~clients ~duration_s ~write_ratio:0.1 ~route:Load.Fixed ~seed:17 () in
  Array.iter (fun (_, ctl_w) -> ignore (Unix.write ctl_w (Bytes.make 1 'q') 0 1)) children;
  Array.iter
    (fun (pid, ctl_w) ->
      ignore (Unix.waitpid [] pid);
      Unix.close ctl_w)
    children;
  let row =
    {
      rt_clients = clients;
      rt_ops = r.Load.ops;
      rt_errors = r.Load.errors;
      rt_ops_per_s = Load.ops_per_s r;
      rt_read_p50_us = Histogram.percentile r.Load.read_lat_us 50.0;
      rt_read_p99_us = Histogram.percentile r.Load.read_lat_us 99.0;
      rt_write_p99_us = Histogram.percentile r.Load.write_lat_us 99.0;
    }
  in
  Format.printf "@.#### Runtime loopback (3-node es over TCP, %d closed-loop clients) ####@.@."
    clients;
  Format.printf
    "  %d op(s) in %.1fs = %.0f op/s; read p50 %.0f us p99 %.0f us; write p99 %.0f us; %d \
     error(s)@."
    row.rt_ops duration_s row.rt_ops_per_s row.rt_read_p50_us row.rt_read_p99_us
    row.rt_write_p99_us row.rt_errors;
  if row.rt_errors > 0 then failwith "runtime loopback: load saw errors";
  row

(* ------------------------------------------------------------------ *)
(* Bechamel benchmarks *)

module Sim_time = Dds_sim.Time
open Bechamel
open Toolkit

module Sync_d = Deployment.Make (Sync_register)
module Es_d = Deployment.Make (Es_register)
module Sync_gen = Generator.Make (Sync_d)
module Es_gen = Generator.Make (Es_d)

let bench_heap =
  Test.make ~name:"heap: 1k insert+pop"
    (Staged.stage (fun () ->
         let h = Heap.create ~cmp:Int.compare () in
         for i = 0 to 999 do
           Heap.insert h ((i * 7919) mod 1000)
         done;
         while not (Heap.is_empty h) do
           ignore (Heap.pop h)
         done))

let bench_rng =
  Test.make ~name:"rng: 1k bounded draws"
    (Staged.stage
       (let g = Rng.create ~seed:1 in
        fun () ->
          for _ = 1 to 1000 do
            ignore (Rng.int g 97)
          done))

let bench_scheduler =
  Test.make ~name:"scheduler: 10k events"
    (Staged.stage (fun () ->
         let s = Scheduler.create () in
         for i = 1 to 10_000 do
           ignore (Scheduler.schedule_at s (Sim_time.of_int (i mod 100)) (fun () -> ()))
         done;
         Scheduler.run s ()))

let sync_run ~horizon () =
  let cfg =
    Deployment.default_config ~seed:1 ~n:20 ~delay:(Delay.synchronous ~delta:3)
      ~churn_rate:0.02
  in
  let d = Sync_d.create cfg (Sync_register.default_params ~delta:3) in
  Sync_d.start_churn d ~until:(Sim_time.of_int horizon);
  Sync_gen.run d (Generator.default ~until:(Sim_time.of_int horizon));
  Sync_d.run_until d (Sim_time.of_int (horizon + 20));
  ignore (Sync_d.regularity d)

let es_run ~horizon () =
  let cfg =
    Deployment.default_config ~seed:1 ~n:10 ~delay:(Delay.synchronous ~delta:3)
      ~churn_rate:0.01
  in
  let d = Es_d.create cfg (Es_register.default_params ~n:10) in
  Es_d.start_churn d ~until:(Sim_time.of_int horizon);
  Es_gen.run d
    { (Generator.default ~until:(Sim_time.of_int horizon)) with Generator.read_rate = 0.3 };
  Es_d.run_until d (Sim_time.of_int (horizon + 50));
  ignore (Es_d.regularity d)

let bench_sync_run =
  Test.make ~name:"sync: 200-tick churn run + check" (Staged.stage (sync_run ~horizon:200))

let bench_es_run =
  Test.make ~name:"es: 200-tick churn run + check" (Staged.stage (es_run ~horizon:200))

(* Pay-for-what-you-use: the identical ES run with the event sink
   disabled (one dead branch per potential event), buffering, and
   buffering plus the live assumption/safety monitors. *)
let obs_run ~events ~monitors () =
  let cfg =
    {
      (Deployment.default_config ~seed:1 ~n:10 ~delay:(Delay.synchronous ~delta:3)
         ~churn_rate:0.01)
      with
      Deployment.events_enabled = events;
    }
  in
  let d = Es_d.create cfg (Es_register.default_params ~n:10) in
  if monitors then begin
    let m =
      Dds_monitor.Monitor.create
        {
          (Dds_monitor.Monitor.default ~n:10 ~delta:3) with
          Dds_monitor.Monitor.churn_bound = Some (1.0 /. 90.0);
          majority = true;
        }
    in
    Dds_sim.Event.on_emit (Es_d.events d) (fun st ->
        ignore (Dds_monitor.Monitor.feed m st))
  end;
  Es_d.start_churn d ~until:(Sim_time.of_int 200);
  Es_gen.run d
    { (Generator.default ~until:(Sim_time.of_int 200)) with Generator.read_rate = 0.3 };
  Es_d.run_until d (Sim_time.of_int 250)

let bench_obs_disabled =
  Test.make ~name:"obs: es run, sink disabled"
    (Staged.stage (obs_run ~events:false ~monitors:false))

let bench_obs_enabled =
  Test.make ~name:"obs: es run, sink enabled"
    (Staged.stage (obs_run ~events:true ~monitors:false))

let bench_obs_monitored =
  Test.make ~name:"obs: es run, sink + monitors"
    (Staged.stage (obs_run ~events:true ~monitors:true))

(* Nemesis interposition overhead: the fault hook is installed but the
   plan answers Pass for every transmission, so the delta against
   "obs: es run, sink disabled" is the pure cost of consulting a plan
   on each wire copy. *)
let nemesis_noop_run () =
  let cfg =
    Deployment.default_config ~seed:1 ~n:10 ~delay:(Delay.synchronous ~delta:3)
      ~churn_rate:0.01
  in
  let d = Es_d.create cfg (Es_register.default_params ~n:10) in
  Network.set_fault_plan (Es_d.network d) (fun _dec ~msg_kind:_ -> Network.Pass);
  Es_d.start_churn d ~until:(Sim_time.of_int 200);
  Es_gen.run d
    { (Generator.default ~until:(Sim_time.of_int 200)) with Generator.read_rate = 0.3 };
  Es_d.run_until d (Sim_time.of_int 250)

let bench_nemesis_noop =
  Test.make ~name:"fault: es run, empty nemesis plan" (Staged.stage nemesis_noop_run)

(* Profiler overhead, both layers. The probe pair prices one
   Dds_sim.Probe.span with no handler installed (one ref load — the
   cost every simulator phase pays when profiling is off) against the
   ideal of no probe at all; the engine pair runs an identical
   100-job batch through a jobs=1 pool with and without a recorder
   attached, so the delta is the whole per-job recording cost (span +
   two Gc.quick_stat calls). *)
let bench_probe_bare =
  Test.make ~name:"profile: 1k bare calls (no probe)"
    (Staged.stage
       (let sink = ref 0 in
        fun () ->
          for i = 1 to 1000 do
            sink := !sink + i
          done))

let bench_probe_off =
  Test.make ~name:"profile: 1k probe spans, handler off"
    (Staged.stage
       (let sink = ref 0 in
        fun () ->
          for i = 1 to 1000 do
            Probe.span "bench" (fun () -> sink := !sink + i)
          done))

let pool_batch ~profiled () =
  let profile =
    if profiled then Some (Dds_profile.Profile.create ~workers:1 ()) else None
  in
  Dds_engine.Pool.with_pool ~jobs:1 ?profile (fun pool ->
      ignore
        (Dds_engine.Pool.map pool ~key:string_of_int
           ~f:(fun x -> x * x)
           (List.init 100 Fun.id)))

let bench_pool_plain =
  Test.make ~name:"profile: 100-job batch, recorder off"
    (Staged.stage (pool_batch ~profiled:false))

let bench_pool_profiled =
  Test.make ~name:"profile: 100-job batch, recorder on"
    (Staged.stage (pool_batch ~profiled:true))

(* Latency attribution: rebuild the happens-before DAG and attribute
   every op of a 200-tick monitored-scale ES trace. The trace is built
   once outside the staged closure, so the row prices analysis alone —
   the cost `dds explain` / `--attribution` adds on top of a run. *)
let causal_events =
  lazy
    (let cfg =
       {
         (Deployment.default_config ~seed:1 ~n:10 ~delay:(Delay.synchronous ~delta:3)
            ~churn_rate:0.01)
         with
         Deployment.events_enabled = true;
       }
     in
     let d = Es_d.create cfg (Es_register.default_params ~n:10) in
     Es_d.start_churn d ~until:(Sim_time.of_int 200);
     Es_gen.run d
       { (Generator.default ~until:(Sim_time.of_int 200)) with Generator.read_rate = 0.3 };
     Es_d.run_until d (Sim_time.of_int 250);
     Event.events (Es_d.events d))

let bench_causal_analyze =
  Test.make ~name:"causal: attribute 200-tick es trace"
    (Staged.stage
       (let evs = Lazy.force causal_events in
        fun () -> ignore (Dds_causal.Causal.analyze ~bound:30 evs)))

(* One Test.make per experiment table, at reduced scale, so the cost of
   regenerating each table is itself tracked over time. *)
let bench_e1 =
  Test.make ~name:"E1 inversion" (Staged.stage (fun () -> ignore (Scenario.inversion ())))

let bench_e2 =
  Test.make ~name:"E2/E3 fig3 pair"
    (Staged.stage (fun () ->
         ignore (Scenario.fig3 ~join_wait:false);
         ignore (Scenario.fig3 ~join_wait:true)))

let bench_e4 =
  Test.make ~name:"E4 lemma2 (small)"
    (Staged.stage (fun () ->
         ignore (Sweep.lemma2 ~n:20 ~delta:3 ~ratios:[ 0.5 ] ~horizon:200 ~seed:1 ())))

let bench_e5 =
  Test.make ~name:"E5 sync safety (small)"
    (Staged.stage (fun () ->
         ignore (Sweep.sync_safety ~n:15 ~delta:3 ~ratios:[ 0.5 ] ~seeds:[ 1 ] ~horizon:150 ())))

let bench_e7 =
  Test.make ~name:"E7 async staleness (small)"
    (Staged.stage (fun () -> ignore (Scenario.async_staleness ~horizon:200)))

let bench_e9 =
  Test.make ~name:"E9 es boundary (small)"
    (Staged.stage (fun () ->
         ignore (Sweep.es_boundary ~n:10 ~rates:[ 0.02 ] ~horizon:150 ~seed:1 ())))

let bench_e10 =
  Test.make ~name:"E10 abd-vs-dynamic (small)"
    (Staged.stage (fun () ->
         ignore (Sweep.abd_vs_dynamic ~n:10 ~delta:3 ~c:0.02 ~horizon:200 ~seed:1 ())))

let bench_e11 =
  Test.make ~name:"E11 msg complexity (small)"
    (Staged.stage (fun () -> ignore (Sweep.msg_complexity ~ns:[ 10 ] ~delta:3 ~seed:1 ())))

let bench_e12 =
  Test.make ~name:"E12 timed quorum (small)"
    (Staged.stage (fun () ->
         ignore (Sweep.timed_quorum ~n:20 ~cs:[ 0.02 ] ~lifetime:10 ~trials:50 ~seed:1 ())))

let bench_e17 =
  Test.make ~name:"E17 broadcast modes (small)"
    (Staged.stage (fun () ->
         ignore (Sweep.broadcast_robustness ~n:10 ~losses:[ 0.1 ] ~horizon:150 ~seed:1 ())))

let bench_e18 =
  Test.make ~name:"E18 consensus (small)"
    (Staged.stage (fun () ->
         ignore (Sweep.consensus_under_churn ~n:8 ~k:3 ~cs:[ 0.0 ] ~horizon:200 ~seed:1 ())))

let benchmark () =
  let tests =
    Test.make_grouped ~name:"dds"
      [
        bench_heap;
        bench_rng;
        bench_scheduler;
        bench_sync_run;
        bench_es_run;
        bench_obs_disabled;
        bench_obs_enabled;
        bench_obs_monitored;
        bench_nemesis_noop;
        bench_probe_bare;
        bench_probe_off;
        bench_pool_plain;
        bench_pool_profiled;
        bench_causal_analyze;
        bench_e1;
        bench_e2;
        bench_e4;
        bench_e5;
        bench_e7;
        bench_e9;
        bench_e10;
        bench_e11;
        bench_e12;
        bench_e17;
        bench_e18;
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let quota = if quick then 0.2 else 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) () in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let print_bench_results results =
  Format.printf "@.#### Bechamel benchmarks (monotonic clock, ns/run) ####@.@.";
  Hashtbl.iter
    (fun _measure tbl ->
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Format.printf "%-40s %14.0f ns/run@." name est
          | Some _ | None -> Format.printf "%-40s %14s@." name "-")
        rows)
    results

(* Flattens the bechamel result table into (name, ns/run) pairs. *)
let bench_estimates results =
  let acc = ref [] in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> acc := (name, est) :: !acc
          | Some _ | None -> ())
        tbl)
    results;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let write_results_json ~tables ~scaling ~profile_rows ~shard_rows ~checker ~idle ~runtime
    ~estimates =
  let module J = Dds_sim.Json in
  let json =
    J.Obj
      [
        ("suite", J.String "dds");
        ("quick", J.Bool quick);
        ( "benchmarks",
          J.Obj
            (List.map (fun (name, ns) -> (name, J.Obj [ ("ns_per_run", J.Float ns) ])) estimates)
        );
        ( "engine_scaling",
          J.List
            (List.concat_map
               (fun (case, rows) ->
                 List.map
                   (fun r ->
                     J.Obj
                       [
                         ("case", J.String case);
                         ("jobs", J.Int r.Tables.sc_jobs);
                         ("wall_s", J.Float r.Tables.sc_wall_s);
                         ("speedup", J.Float r.Tables.sc_speedup);
                       ])
                   rows)
               scaling) );
        ( "shard_scaling",
          J.List
            (List.map
               (fun (r : Sweep.shard_row) ->
                 J.Obj
                   [
                     ("shards", J.Int r.Sweep.sh_shards);
                     ("skew", J.Float r.Sweep.sh_skew);
                     ("churn", J.Float r.Sweep.sh_churn);
                     ("scheduled", J.Int r.Sweep.sh_scheduled);
                     ("issued", J.Int r.Sweep.sh_issued);
                     ("completed", J.Int r.Sweep.sh_completed);
                     ("ops_per_tick", J.Float r.Sweep.sh_throughput);
                     ("read_p99_ticks", J.Float (Stats.percentile r.Sweep.sh_read_stats 99.0));
                     ("write_p99_ticks", J.Float (Stats.percentile r.Sweep.sh_write_stats 99.0));
                     ("hot_shard_frac", J.Float r.Sweep.sh_hot_frac);
                     ("regular", J.Bool r.Sweep.sh_regular);
                   ])
               shard_rows) );
        ( "engine_profile",
          J.List
            (List.map
               (fun (j, wall, (s : Dds_profile.Profile.summary)) ->
                 J.Obj
                   [
                     ("jobs", J.Int j);
                     ("wall_s", J.Float wall);
                     ("busy_fraction", J.Float s.Dds_profile.Profile.s_busy_fraction);
                     ("steal_attempts", J.Int s.Dds_profile.Profile.s_steal_attempts);
                     ("steals", J.Int s.Dds_profile.Profile.s_steals);
                     ( "steal_success_rate",
                       J.Float s.Dds_profile.Profile.s_steal_success_rate );
                     ("minor_words", J.Float s.Dds_profile.Profile.s_minor_words);
                     ( "minor_words_per_job",
                       J.Float s.Dds_profile.Profile.s_minor_words_per_job );
                     ("dominant", J.String s.Dds_profile.Profile.s_dominant);
                   ])
               profile_rows) );
        ( "checker",
          J.List
            (List.map
               (fun r ->
                 J.Obj
                   [
                     ("mode", J.String r.ck_label);
                     ("jobs", J.Int r.ck_jobs);
                     ("naive", J.Bool r.ck_naive);
                     ("schedules", J.Int r.ck_schedules);
                     ("wall_s", J.Float r.ck_wall_s);
                     ("schedules_per_s", J.Float r.ck_per_s);
                     ("cache_peak", J.Int r.ck_cache_peak);
                     ("cache_hit_rate", J.Float r.ck_cache_hit_rate);
                     ("minor_words_per_schedule", J.Float r.ck_minor_per_sched);
                   ])
               checker) );
        ( "pool_idle",
          match idle with
          | None -> J.Null
          | Some r ->
            J.Obj
              [
                ("jobs", J.Int r.ip_jobs);
                ("wall_s", J.Float r.ip_wall_s);
                ("cpu_s", J.Float r.ip_cpu_s);
                ("cpu_per_idle_worker", J.Float r.ip_cpu_per_idle);
              ] );
        ( "runtime_loopback",
          match runtime with
          | None -> J.Null
          | Some r ->
            J.Obj
              [
                ("nodes", J.Int 3);
                ("proto", J.String "es");
                ("clients", J.Int r.rt_clients);
                ("ops", J.Int r.rt_ops);
                ("errors", J.Int r.rt_errors);
                ("ops_per_s", J.Float r.rt_ops_per_s);
                ("read_p50_us", J.Float r.rt_read_p50_us);
                ("read_p99_us", J.Float r.rt_read_p99_us);
                ("write_p99_us", J.Float r.rt_write_p99_us);
              ] );
        ("tables", J.List (List.map Report.to_json tables));
      ]
  in
  let oc = open_out "BENCH_results.json" in
  output_string oc (J.to_string json);
  output_string oc "\n";
  close_out oc;
  Format.printf "@.results written to BENCH_results.json (%d tables, %d benchmarks)@."
    (List.length tables) (List.length estimates)

(* ------------------------------------------------------------------ *)
(* Baseline comparison: `--baseline OLD.json --max-regress PCT`.

   Raw wall-clock sections are too noisy to gate on shared CI runners;
   the comparison covers the bechamel ns/run estimates (a slowdown
   beyond PCT% regresses), the checker throughput rows matched by
   mode+jobs (a schedules/s drop beyond PCT% regresses), and the
   engine_scaling *speedups* matched by case+jobs. A speedup is a
   ratio of two walls from the same run, so machine speed cancels —
   but only the amortized-grain "--horizon 2000" case is big enough
   (~seconds sequential) to be stable, so only it gates; the small E24
   case sits below the parallelism floor by design (ROADMAP item 1:
   its recorded speedups are < 1) and is reported informationally.
   Names present on only one side are reported but never fail the run,
   so old baselines predating a benchmark — or this very section —
   stay usable. *)
let read_baseline path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    Ok s

let compare_baseline ~path ~contents ~estimates ~checker ~scaling =
  let module J = Dds_sim.Json in
  match Result.bind contents J.parse with
  | Error e ->
    Format.printf "@.baseline   : %s unreadable (%s) — comparison skipped@." path e;
    true
  | Ok base ->
    Format.printf "@.#### Baseline comparison (vs %s, limit +%.0f%%) ####@.@." path
      max_regress;
    let regressions = ref 0 in
    let compared = ref 0 in
    let judge name ~base_v ~cur_v ~regress_pct =
      incr compared;
      let flag = regress_pct > max_regress in
      if flag then incr regressions;
      Format.printf "  %-42s %12.0f -> %12.0f  %+7.1f%%%s@." name base_v cur_v regress_pct
        (if flag then "  REGRESSION" else "")
    in
    (match J.member "benchmarks" base with
    | Some (J.Obj base_benches) ->
      List.iter
        (fun (name, ns) ->
          match
            Option.bind (List.assoc_opt name base_benches) (fun o ->
                Option.bind (J.member "ns_per_run" o) J.to_float_opt)
          with
          | Some b when b > 0.0 ->
            judge name ~base_v:b ~cur_v:ns ~regress_pct:(100.0 *. ((ns -. b) /. b))
          | Some _ | None -> Format.printf "  %-42s (no baseline entry)@." name)
        estimates
    | Some _ | None ->
      if estimates <> [] then Format.printf "  (baseline has no benchmarks section)@.");
    (match J.member "engine_scaling" base with
    | Some (J.List base_rows) ->
      List.iter
        (fun (case, rows) ->
          (* The gate decision from the recorded --horizon 2000 rows:
             gate the big amortized-grain case on relative speedup
             regression; the small case's sub-floor speedups would make
             any absolute threshold meaningless, so it only reports. *)
          let gated =
            let needle = "--horizon" in
            let n = String.length needle and l = String.length case in
            let rec at i = i + n <= l && (String.sub case i n = needle || at (i + 1)) in
            at 0
          in
          List.iter
            (fun r ->
              if r.Tables.sc_jobs > 1 then begin
                let matches row =
                  (match Option.bind (J.member "case" row) J.to_string_opt with
                  | Some c -> String.equal c case
                  | None -> false)
                  &&
                  match Option.bind (J.member "jobs" row) J.to_int_opt with
                  | Some j -> j = r.Tables.sc_jobs
                  | None -> false
                in
                let name = Printf.sprintf "scaling [%s] jobs=%d" case r.Tables.sc_jobs in
                match
                  Option.bind (List.find_opt matches base_rows) (fun row ->
                      Option.bind (J.member "speedup" row) J.to_float_opt)
                with
                | Some b when b > 0.0 ->
                  let cur = r.Tables.sc_speedup in
                  (* Speedup: lower is worse. *)
                  if gated then
                    judge name ~base_v:b ~cur_v:cur ~regress_pct:(100.0 *. ((b -. cur) /. b))
                  else
                    Format.printf "  %-42s %12.2f -> %12.2f  (informational)@." name b cur
                | Some _ | None -> Format.printf "  %-42s (no baseline entry)@." name
              end)
            rows)
        scaling
    | Some _ | None ->
      if scaling <> [] then Format.printf "  (baseline has no engine_scaling section)@.");
    (match J.member "checker" base with
    | Some (J.List base_rows) ->
      List.iter
        (fun r ->
          let matches row =
            (match Option.bind (J.member "mode" row) J.to_string_opt with
            | Some m -> String.equal m r.ck_label
            | None -> false)
            &&
            match Option.bind (J.member "jobs" row) J.to_int_opt with
            | Some j -> j = r.ck_jobs
            | None -> false
          in
          match
            Option.bind (List.find_opt matches base_rows) (fun row ->
                Option.bind (J.member "schedules_per_s" row) J.to_float_opt)
          with
          | Some b when b > 0.0 ->
            let name = Printf.sprintf "checker %s jobs=%d" r.ck_label r.ck_jobs in
            (* Throughput: lower is worse. *)
            judge name ~base_v:b ~cur_v:r.ck_per_s
              ~regress_pct:(100.0 *. ((b -. r.ck_per_s) /. b))
          | Some _ | None ->
            Format.printf "  checker %s jobs=%d (no baseline entry)@." r.ck_label r.ck_jobs)
        checker
    | Some _ | None ->
      if checker <> [] then Format.printf "  (baseline has no checker section)@.");
    if !compared = 0 then begin
      Format.printf "  nothing comparable — baseline accepted@.";
      true
    end
    else begin
      Format.printf "@.verdict    : %d compared, %d regression(s) beyond +%.0f%%@." !compared
        !regressions max_regress;
      !regressions = 0
    end

let () =
  (* Fork the loopback node processes before anything spawns a domain:
     OCaml 5 forbids Unix.fork once other domains exist, and both the
     engine pools and bechamel's measurement loop create them. *)
  let runtime = if not bench_only then Some (run_runtime_loopback ()) else None in
  let tables, scaling, profile_rows, shard_rows =
    if not bench_only then
      let jobs = if jobs <= 0 then Dds_engine.Pool.default_jobs () else jobs in
      Dds_engine.Pool.with_pool ~jobs (fun pool -> run_tables ~pool ())
    else ([], [], [], [])
  in
  let checker = if not bench_only then run_checker_rows () else [] in
  let idle = Some (run_idle_probe ()) in
  let estimates =
    if not tables_only then begin
      let results = benchmark () in
      print_bench_results results;
      bench_estimates results
    end
    else []
  in
  (* Slurp the baseline before writing results: `--baseline
     BENCH_results.json` (the committed file this run overwrites) must
     compare against the old numbers, not the ones just written. *)
  let baseline_contents = Option.map (fun path -> (path, read_baseline path)) baseline in
  write_results_json ~tables ~scaling ~profile_rows ~shard_rows ~checker ~idle ~runtime ~estimates;
  let ok =
    match baseline_contents with
    | None -> true
    | Some (path, contents) -> compare_baseline ~path ~contents ~estimates ~checker ~scaling
  in
  Format.printf "@.done.@.";
  if not ok then exit 1
