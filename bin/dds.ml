(* dds — command-line front end.

   Subcommands:
     run       simulate one deployment of a register protocol and report
               (or replay a checker schedule with --schedule)
     scenario  replay one of the paper's constructed executions
     sweep     regenerate one experiment table (E4..E12)
     inspect   summarize a JSONL trace produced by run --trace-out
     explain   causal critical-path analysis of a JSONL trace: per-op
               latency attribution (compute/transit/quorum/timer/retry),
               straggler naming, k*delta bound violations with path
               witnesses
     audit     replay a JSONL trace through the assumption/safety
               monitors and the regularity checker
     hunt      randomized nemesis search for counterexamples, with
               shrinking to a minimal repro
     check     systematic bounded exploration of every schedule of a
               small deployment
     list      registered protocols and sweep experiments

   Protocols are never named in code here: every subcommand selects
   from Protocol.all (lib/core/protocol.ml), the one registry of
   runnable protocols and their theorem metadata.

   Everything is deterministic in --seed; `check` needs no seed at all. *)

open Dds_sim
open Dds_net
open Dds_churn
open Dds_spec
open Dds_core
open Dds_workload
open Dds_fault
open Cmdliner
module Causal = Dds_causal.Causal

let time = Time.of_int

(* ------------------------------------------------------------------ *)
(* Shared run/report logic, generic over the protocol. *)

module Summary = struct
  let latency_row ops label =
    let s = Stats.create () in
    List.iter
      (fun (o : History.op) ->
        match o.History.responded with
        | Some r -> Stats.add_int s (Time.diff r o.History.invoked)
        | None -> ())
      ops;
    [
      label;
      Report.cell_int (Stats.count s);
      Report.cell_float (Stats.mean s);
      Report.cell_float (Stats.median s);
      Report.cell_float (Stats.percentile s 99.0);
      Report.cell_float (Stats.max_value s);
    ]

  let print ~name ~history ~regularity ~staleness ~metrics ~inversions =
    Report.print
      (Report.make
         ~title:(Printf.sprintf "run summary — %s" name)
         ~headers:[ "op"; "n"; "mean"; "p50"; "p99"; "max" ]
         [
           latency_row (History.completed_joins history) "join";
           latency_row (History.completed_reads history) "read";
           latency_row (History.completed_writes history) "write";
         ]);
    let r : Regularity.report = regularity in
    Format.printf "safety     : %s (%d reads, %d joins checked; %d violations)@."
      (if Regularity.is_ok r then "REGULAR" else "VIOLATED")
      r.Regularity.checked_reads r.Regularity.checked_joins
      (List.length r.Regularity.violations);
    List.iter
      (fun v -> Format.printf "  %a@." Regularity.pp_violation v)
      r.Regularity.violations;
    Format.printf "atomicity  : %d new/old inversion(s)@." (List.length inversions);
    let st : Staleness.report = staleness in
    Format.printf "staleness  : %a@." Staleness.pp_report st;
    Format.printf "pending    : %d op(s) blocked at horizon, %d aborted by departures@."
      (List.length (History.pending history))
      (List.length (History.aborted history));
    Format.printf "@.counters:@.";
    List.iter (fun (k, v) -> Format.printf "  %-18s %d@." k v) (Metrics.to_list metrics)
end

type common = {
  seed : int;
  n : int;
  delta : int;
  churn : float;
  policy : Churn.leave_policy;
  horizon : int;
  read_rate : float;
  write_every : int;
  shards : int;  (** 0 = classic single-register run; >0 = sharded store *)
  keys : int;  (** key-space size for the sharded workload *)
  skew : float;  (** zipf exponent of the sharded workload *)
  gst : int option;  (** Some -> eventually synchronous delays *)
  wild : int;
  trace : bool;
  dump_history : string option;
  trace_out : string option;
  trace_format : string;  (** "jsonl" or "chrome" *)
  metrics_out : string option;
  monitor : bool;  (** run the online monitors against the live sink *)
  dot_out : string option;  (** causal message graph as Graphviz DOT *)
  churn_window : int option;  (** monitor window; default 3 * delta *)
  liveness_k : int;  (** liveness deadline = k * delta ticks *)
  nemesis : Nemesis.plan option;  (** fault schedule to arm before running *)
  jobs : int;  (** engine workers for sweep/hunt; 0 = auto *)
  minor_heap_words : int;  (** minor heap per engine domain; 0 = runtime default *)
  eprofile : bool;  (** profile the engine; summary to stderr *)
  profile_out : string option;  (** Chrome trace + summary JSON (implies eprofile) *)
}

(* A copy-pasteable repro of this run's configuration — echoed on
   every failure path, so a red run is one paste away from replaying. *)
let repro_line ~protocol c =
  let b = Buffer.create 96 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf "dds run %s --seed %d --nodes %d --delta %d" protocol c.seed c.n c.delta;
  if c.churn <> 0.0 then addf " --churn %g" c.churn;
  (match c.policy with
  | Churn.Uniform -> ()
  | p -> addf " --policy %s" (Format.asprintf "%a" Churn.pp_policy p));
  addf " --horizon %d" c.horizon;
  if c.read_rate <> 1.0 then addf " --read-rate %g" c.read_rate;
  if c.write_every <> 20 then addf " --write-every %d" c.write_every;
  if c.shards > 0 then addf " --shards %d --keys %d --skew %g" c.shards c.keys c.skew;
  (match c.gst with
  | Some g ->
    addf " --gst %d" g;
    if c.wild <> 50 then addf " --wild %d" c.wild
  | None -> ());
  if c.monitor then addf " --monitor";
  (match c.nemesis with
  | Some plan -> addf " --nemesis '%s'" (Nemesis.to_string plan)
  | None -> ());
  Buffer.contents b

let build_delay c =
  match c.gst with
  | Some gst -> Delay.eventually_synchronous ~gst:(time gst) ~delta:c.delta ~wild:c.wild
  | None -> Delay.synchronous ~delta:c.delta

let build_config c =
  {
    Deployment.seed = c.seed;
    n = c.n;
    delay = build_delay c;
    churn_rate = c.churn;
    churn_profile = None;
    churn_policy = c.policy;
    protect_writer = true;
    initial_value = 0;
    broadcast_mode = Network.Primitive;
    trace_enabled = c.trace;
    events_enabled = c.trace_out <> None || c.monitor || c.dot_out <> None;
    events_first_span = 0;
  }

(* The monitor configuration a protocol's correctness theorem calls
   for, read off the registry entry: its churn bound (sync: 1/(3 delta)
   via Theorem 1/Lemma 2; ES: 1/(3 delta n) via Theorem 4; ABD: none),
   whether it assumes a standing active majority, and whether liveness
   clocks start at GST when the delay model has one. The inversion
   monitor only applies to protocols that promise atomicity: a regular
   register may legitimately exhibit a new/old inversion between
   sequential reads concurrent with the same write (the paper's own
   Section 1 diagram, `dds scenario inversion`), so it is not a
   violation there — dense workloads hit it routinely. *)
let monitor_config_for (p : Protocol.t) c =
  let base = Dds_monitor.Monitor.default ~n:c.n ~delta:c.delta in
  {
    base with
    Dds_monitor.Monitor.churn_window =
      (match c.churn_window with Some w -> w | None -> 3 * c.delta);
    liveness_bound = Some (c.liveness_k * c.delta);
    liveness_from_gst = p.Protocol.gst_liveness && c.gst <> None;
    churn_bound = p.Protocol.churn_bound ~n:c.n ~delta:c.delta;
    majority = p.Protocol.majority;
    inversions = p.Protocol.atomic;
  }

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* One code path for [run], generic over the registry entry's packed
   deployment functor. *)
let make_runner (type p) (module D : Deployment.S with type Protocol.params = p) (params : p)
    ~(proto : Protocol.t) c =
  let name = proto.Protocol.name in
  let d = D.create (build_config c) params in
  let module I = Injector.Make (D) in
  (* Armed before anything runs, with a stream split from the workload
     rng — exactly what Harness.run does, so a `dds hunt` repro line
     replays the identical execution through `dds run`. *)
  (match c.nemesis with
  | Some plan -> ignore (I.install ~rng:(Rng.split (D.workload_rng d)) d plan)
  | None -> ());
  let module G = Generator.Make (D) in
  (* Live monitors: observe every event as the sink buffers it and
     emit each finding back into the same sink, so recorded traces
     carry the violations they triggered. Monitor.feed ignores
     Violation events — the observer never reacts to its own output. *)
  let mon =
    if not c.monitor then None
    else begin
      let cfg = monitor_config_for proto c in
      let m = Dds_monitor.Monitor.create cfg in
        let sink = D.events d in
        (* [D.create] already emitted the founding joins at t=0; catch
           the monitor up on the buffered prefix or its active-set
           count starts empty and the first leave looks fatal. *)
        List.iter
          (fun st -> ignore (Dds_monitor.Monitor.feed m st))
          (Event.events sink);
      Event.on_emit sink (fun st ->
          List.iter
            (fun (v : Dds_monitor.Monitor.violation) ->
              Event.emit sink ~at:v.Dds_monitor.Monitor.at (Dds_monitor.Monitor.to_event v))
            (Dds_monitor.Monitor.feed m st));
      Some m
    end
  in
  D.start_churn d ~until:(time c.horizon);
  G.run d
    {
      Generator.read_rate = c.read_rate;
      write_every = c.write_every;
      start = time 1;
      until = time c.horizon;
    };
  D.run_until d (time (c.horizon + (20 * c.delta) + (4 * c.wild)));
  let monitor_violations =
    match mon with
    | None -> []
    | Some m ->
      let sink = D.events d in
      List.iter
        (fun (v : Dds_monitor.Monitor.violation) ->
          Event.emit sink ~at:v.Dds_monitor.Monitor.at (Dds_monitor.Monitor.to_event v))
        (Dds_monitor.Monitor.finalize m ~at:(D.now d));
      Event.clear_observer sink;
      Dds_monitor.Monitor.violations m
  in
  if c.trace then Trace.pp Format.std_formatter (D.trace d);
  (match c.dump_history with
  | Some path ->
    write_file path (History.to_csv (D.history d));
    Format.printf "history written to %s@." path
  | None -> ());
  (match c.trace_out with
  | Some path ->
    let evs = Event.events (D.events d) in
    let contents =
      match c.trace_format with
      | "chrome" -> Json.to_string (Export.chrome_of_events evs) ^ "\n"
      | _ -> Export.jsonl_of_events evs
    in
    write_file path contents;
    Format.printf "trace written to %s (%d events, %s)@." path (List.length evs)
      c.trace_format
  | None -> ());
  (match c.metrics_out with
  | Some path ->
    write_file path (Json.to_string (Export.metrics_to_json (D.metrics_snapshot d)) ^ "\n");
    Format.printf "metrics written to %s@." path
  | None -> ());
  (match c.dot_out with
  | Some path ->
    write_file path (Export.dot_of_events (Event.events (D.events d)));
    Format.printf "causal graph written to %s@." path
  | None -> ());
  Summary.print ~name ~history:(D.history d) ~regularity:(D.regularity d)
    ~staleness:(D.staleness d) ~metrics:(D.metrics d)
    ~inversions:(Atomicity.inversions (D.history d));
  if c.monitor then begin
    Format.printf "monitors   : %d violation(s)@." (List.length monitor_violations);
    List.iter
      (fun v -> Format.printf "  %a@." Dds_monitor.Monitor.pp_violation v)
      monitor_violations
  end;
  if Regularity.is_ok (D.regularity d) then `Ok ()
  else begin
    Format.printf "repro      : %s@." (repro_line ~protocol:name c);
    `Error (false, "safety violated")
  end

(* The sharded store path (--shards N): the same registry-generic run,
   but through lib/shard — one skewed plan drawn up front, hash-routed
   across N independent deployments, per-shard verdicts, one tagged
   trace file. The classic path above is untouched when --shards is
   absent. *)
let run_sharded (p : Protocol.t) c =
  let name = p.Protocol.name in
  let module R = (val p.Protocol.runner : Protocol.RUNNER) in
  match R.params { Protocol.n = c.n; delta = c.delta; quorum = None } with
  | Error e -> `Error (false, e)
  | Ok params ->
    if c.monitor || c.dot_out <> None || c.dump_history <> None || c.nemesis <> None then
      Format.eprintf
        "note: --monitor/--dot-out/--dump-history/--nemesis apply to single-register \
         runs and are ignored with --shards@.";
    let module Sh = Dds_shard.Shard.Make (R.D) in
    let store =
      Sh.create
        { Dds_shard.Shard.shards = c.shards; keys = c.keys; base = build_config c }
        params
    in
    (* The plan rng is dedicated (never shared with any shard's streams,
       which derive from Shard.seed_for), so the identical plan
       re-partitions across any --shards value. *)
    let plan =
      Skew.plan ~rng:(Rng.create ~seed:c.seed)
        { (Skew.default ~keys:c.keys ~s:c.skew ~until:(time c.horizon)) with
          Skew.read_rate = c.read_rate;
          write_every = c.write_every }
    in
    Sh.start_churn store ~until:(time c.horizon);
    Sh.load store plan;
    Sh.run_until store (time (c.horizon + (20 * c.delta) + (4 * c.wild)));
    Format.printf "protocol   : %s, sharded store: %d shard(s) x n=%d, %d keys, zipf s=%g@."
      name c.shards c.n c.keys c.skew;
    Format.printf "plan       : %d op(s) — %d issued, %d skipped (no idle process)@."
      (Sh.scheduled store) (Sh.issued store) (Sh.skipped store);
    let all_ok = ref true in
    List.iter
      (fun (r : Dds_shard.Shard.shard_report) ->
        let h = R.D.history (Sh.deployment store r.Dds_shard.Shard.sr_shard) in
        let reg = r.Dds_shard.Shard.sr_regularity in
        let ok = Regularity.is_ok reg in
        if not ok then all_ok := false;
        Format.printf
          "  shard %2d : %6d routed %6d issued %5d skipped | %5d reads %4d writes done | %s@."
          r.Dds_shard.Shard.sr_shard r.Dds_shard.Shard.sr_scheduled
          r.Dds_shard.Shard.sr_issued r.Dds_shard.Shard.sr_skipped
          (List.length (History.completed_reads h))
          (List.length (History.completed_writes h))
          (if ok then "REGULAR" else "VIOLATED");
        List.iter (fun v -> Format.printf "    %a@." Regularity.pp_violation v)
          reg.Regularity.violations)
      (Sh.reports store);
    (match c.trace_out with
    | Some path ->
      let tagged = Sh.tagged_events store in
      if c.trace_format = "chrome" then
        Format.eprintf "note: sharded traces are always jsonl (shard-tagged lines)@.";
      write_file path (Export.jsonl_of_tagged_events tagged);
      Format.printf "trace written to %s (%d events, jsonl, shard-tagged)@." path
        (List.length tagged)
    | None -> ());
    (match c.metrics_out with
    | Some path ->
      let per_shard =
        List.init c.shards (fun s ->
            Json.Obj
              [
                ("shard", Json.Int s);
                ("metrics", Export.metrics_to_json (R.D.metrics_snapshot (Sh.deployment store s)));
              ])
      in
      write_file path (Json.to_string (Json.List per_shard) ^ "\n");
      Format.printf "metrics written to %s (one object per shard)@." path
    | None -> ());
    Format.printf "regularity : %s (%d shard(s))@."
      (if !all_ok then "REGULAR" else "VIOLATED")
      c.shards;
    if !all_ok then `Ok ()
    else begin
      Format.printf "repro      : %s@." (repro_line ~protocol:name c);
      `Error (false, "safety violated")
    end

let run_protocol (p : Protocol.t) c =
  if c.shards > 0 then run_sharded p c
  else
    let module R = (val p.Protocol.runner : Protocol.RUNNER) in
    match R.params { Protocol.n = c.n; delta = c.delta; quorum = None } with
    | Error e -> `Error (false, e)
    | Ok params -> make_runner (module R.D) params ~proto:p c

(* ------------------------------------------------------------------ *)
(* Cmdliner terms *)

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"INT" ~doc:"Deterministic run seed.")

let n_t =
  Arg.(
    value & opt int 20
    & info [ "n"; "nodes" ] ~docv:"INT" ~doc:"Constant system size.")

let delta_t =
  Arg.(value & opt int 3 & info [ "delta" ] ~docv:"TICKS" ~doc:"Message delay bound.")

let churn_t =
  Arg.(
    value
    & opt float 0.0
    & info [ "churn"; "c" ] ~docv:"RATE"
        ~doc:"Churn rate c: fraction of the system refreshed per tick.")

let policy_t =
  let parse s = Result.map_error (fun e -> `Msg e) (Churn.policy_of_string s) in
  let print ppf p = Churn.pp_policy ppf p in
  Arg.(
    value
    & opt (conv (parse, print)) Churn.Uniform
    & info [ "policy" ] ~docv:"POLICY" ~doc:"Leave policy: uniform|oldest|youngest|active.")

let horizon_t =
  Arg.(value & opt int 500 & info [ "horizon" ] ~docv:"TICKS" ~doc:"Workload horizon.")

let read_rate_t =
  Arg.(value & opt float 1.0 & info [ "read-rate" ] ~docv:"R" ~doc:"Expected reads per tick.")

let write_every_t =
  Arg.(
    value & opt int 20
    & info [ "write-every" ] ~docv:"TICKS" ~doc:"One write every this many ticks (0: never).")

let shards_t =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Shard the key-space across N independent register instances (each a full \
           n-node deployment with its own membership, churn and event stream) and drive \
           them with a zipfian multi-key workload ($(b,--keys), $(b,--skew)). 0 (the \
           default) is the classic single-register run.")

let keys_t =
  Arg.(
    value & opt int 1024
    & info [ "keys" ] ~docv:"K" ~doc:"Key-space size for the sharded workload.")

let skew_t =
  Arg.(
    value & opt float 1.0
    & info [ "skew" ] ~docv:"S"
        ~doc:
          "Zipf exponent of the sharded workload's key popularity: 0 is uniform, ~1 the \
           classic web skew.")

let gst_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "gst" ] ~docv:"TICK"
        ~doc:"Use eventually-synchronous delays with this global stabilization time.")

let wild_t =
  Arg.(
    value & opt int 50
    & info [ "wild" ] ~docv:"TICKS" ~doc:"Pre-GST delay cap (with $(b,--gst)).")

let trace_t = Arg.(value & flag & info [ "trace" ] ~doc:"Dump the full event trace.")

let dump_history_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-history" ] ~docv:"FILE" ~doc:"Write the operation history as CSV.")

let trace_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Record typed telemetry for the whole run and write it here.")

let trace_format_t =
  Arg.(
    value
    & opt (enum [ ("jsonl", "jsonl"); ("chrome", "chrome") ]) "jsonl"
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:
          "Trace file format: $(b,jsonl) (one event per line, consumed by $(b,dds inspect)) \
           or $(b,chrome) (trace_event JSON loadable in chrome://tracing / Perfetto).")

let metrics_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the final metrics snapshot (counters, gauges, histograms) as JSON.")

let monitor_t =
  Arg.(
    value & flag
    & info [ "monitor" ]
        ~doc:
          "Run the online assumption/safety monitors (churn rate, active majority, span \
           liveness, new/old inversions) against the live event stream; findings are \
           reported and recorded as violation events in the trace.")

let dot_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot-out" ] ~docv:"FILE"
        ~doc:
          "Write the causal message graph (Lamport-stamped sends/delivers) as Graphviz \
           DOT.")

let churn_window_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "churn-window" ] ~docv:"TICKS"
        ~doc:"Churn monitor's trailing window (default 3*delta).")

let liveness_k_t =
  Arg.(
    value & opt int 10
    & info [ "liveness-k" ] ~docv:"K"
        ~doc:"Liveness monitor flags operations open longer than K*delta ticks.")

let nemesis_t =
  let parse s = Result.map_error (fun e -> `Msg e) (Nemesis.of_string s) in
  Arg.(
    value
    & opt (some (conv (parse, Nemesis.pp))) None
    & info [ "nemesis" ] ~docv:"PLAN"
        ~doc:
          "Arm a fault schedule before running: $(b,;)-separated steps like \
           $(b,drop(kind=INQUIRY,p=0.1,max=5)@[10,50]), $(b,dup(copies=2)), \
           $(b,delay(extra=9)@[40,60]), $(b,corrupt()), \
           $(b,partition(a=0-4,b=5-9)@[100,150]), $(b,crash(k=2,recover=10)@120), \
           $(b,storm(k=6)@200). Every injected fault is recorded in the typed trace.")

let jobs_t =
  Arg.(
    value & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for $(b,sweep) and $(b,hunt): independent cells/seeds run in \
           parallel through the experiment engine with canonical-order aggregation, so \
           the output is byte-identical for any N. 0 (the default) uses the machine's \
           recommended domain count; 1 runs inline.")

let minor_heap_t =
  Arg.(
    value & opt int 0
    & info [ "minor-heap-words" ] ~docv:"WORDS"
        ~doc:
          "Minor-heap size (in words) applied via $(b,Gc.set) inside every engine domain \
           — OCaml 5 GC parameters are domain-local, so this is the only way to tune the \
           spawned workers. Sizing the nursery moves when collections happen, never what \
           jobs compute: output stays byte-identical. 0 (the default) leaves the runtime \
           default in place. The active value is recorded in the $(b,--profile) summary.")

let eprofile_t =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Profile the experiment engine: per-domain activity spans (job / steal / idle / \
           merge), per-job GC deltas and simulator phase timers are recorded and a \
           summary (busy fraction, steal success rate, alloc/job, dominant cost) is \
           printed to stderr. Off by default and free when off; never changes results \
           or stdout.")

let profile_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:
          "Write the engine profile as Chrome trace_event JSON (one lane per worker \
           domain, loadable in chrome://tracing / Perfetto) with the summary attached \
           under a top-level $(b,summary) key. Implies $(b,--profile).")

let common_t =
  let make seed n delta churn policy horizon read_rate write_every shards keys skew gst
      wild trace dump_history trace_out trace_format metrics_out monitor dot_out
      churn_window liveness_k nemesis jobs minor_heap_words eprofile profile_out =
    {
      seed; n; delta; churn; policy; horizon; read_rate; write_every; shards; keys; skew;
      gst; wild; trace; dump_history; trace_out; trace_format; metrics_out; monitor;
      dot_out; churn_window; liveness_k; nemesis; jobs; minor_heap_words; eprofile;
      profile_out;
    }
  in
  Term.(
    const make $ seed_t $ n_t $ delta_t $ churn_t $ policy_t $ horizon_t $ read_rate_t
    $ write_every_t $ shards_t $ keys_t $ skew_t $ gst_t $ wild_t $ trace_t
    $ dump_history_t $ trace_out_t $ trace_format_t $ metrics_out_t $ monitor_t
    $ dot_out_t $ churn_window_t $ liveness_k_t $ nemesis_t $ jobs_t $ minor_heap_t
    $ eprofile_t $ profile_out_t)

(* One converter for every subcommand that takes a protocol: parses
   against the registry, so an unknown name is rejected at the CLI
   boundary with the registered names listed. The protocol can be
   given positionally ([dds run es ...]) or via [--proto es]; the flag
   wins when both are present. *)
let proto_conv =
  let parse s =
    match Protocol.find s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown protocol %S (registered: %s)" s
              (String.concat ", " Protocol.names)))
  in
  let print ppf (p : Protocol.t) = Format.pp_print_string ppf p.Protocol.name in
  Arg.conv (parse, print)

let proto_doc = "Register protocol: " ^ String.concat ", " Protocol.names ^ "."

let protocol_pos_t =
  Arg.(value & pos 0 (some proto_conv) None & info [] ~docv:"PROTOCOL" ~doc:proto_doc)

let protocol_flag_t =
  Arg.(
    value
    & opt (some proto_conv) None
    & info [ "proto"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:(proto_doc ^ " Alternative to the positional form."))

let resolve_protocol pos flag k =
  match (flag, pos) with
  | Some p, _ | None, Some p -> k p
  | None, None -> `Error (true, "missing protocol: give it positionally or with --proto")

(* Replay a schedule emitted by [dds check]: re-executes the recorded
   decision sequence through the same choice points and re-judges. *)
let run_replay path =
  match read_file path with
  | exception Sys_error e -> `Error (false, e)
  | text -> (
    match Dds_check.Schedule.of_string text with
    | Error e -> `Error (false, Printf.sprintf "%s: %s" path e)
    | Ok sched -> (
      match Dds_check.Check.replay_schedule sched with
      | Error e -> `Error (false, e)
      | Ok r ->
        let cfg = sched.Dds_check.Schedule.config in
        Format.printf
          "replay     : %s nodes=%d delta=%d writes=%d reads=%d joins=%d%s drops<=%d \
           crashes<=%d@."
          cfg.Dds_check.Schedule.proto cfg.Dds_check.Schedule.nodes
          cfg.Dds_check.Schedule.delta cfg.Dds_check.Schedule.writes
          cfg.Dds_check.Schedule.reads cfg.Dds_check.Schedule.joins
          (match cfg.Dds_check.Schedule.quorum with
          | Some q -> Printf.sprintf " quorum=%d" q
          | None -> "")
          cfg.Dds_check.Schedule.drop_budget cfg.Dds_check.Schedule.crash_budget;
        Format.printf "decisions  : %d recorded (deeper points default to branch 0)@."
          r.Dds_check.Check.decisions_used;
        let reg = r.Dds_check.Check.regularity in
        Format.printf "regularity : %s (%d reads, %d joins checked; %d violations)@."
          (if Regularity.is_ok reg then "REGULAR" else "VIOLATED")
          reg.Regularity.checked_reads reg.Regularity.checked_joins
          (List.length reg.Regularity.violations);
        Format.printf "atomicity  : %d new/old inversion(s)@." r.Dds_check.Check.inversions;
        List.iter (fun l -> Format.printf "  %s@." l) r.Dds_check.Check.violations;
        if r.Dds_check.Check.violations = [] then `Ok ()
        else `Error (false, "schedule violates the specification")))

let run_cmd =
  let doc =
    "Simulate one deployment under churn and report safety and latency; or, with \
     $(b,--schedule), replay a counterexample schedule emitted by $(b,dds check)."
  in
  let schedule_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:
            "Replay this checker schedule instead of a randomized run (the file fixes \
             protocol, deployment and every scheduling/fault decision; all other flags \
             are ignored).")
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      ret
        (const (fun schedule pos flag c ->
             match schedule with
             | Some path -> run_replay path
             | None -> resolve_protocol pos flag (fun p -> run_protocol p c))
        $ schedule_t $ protocol_pos_t $ protocol_flag_t $ common_t))

(* analyze *)

(* Runs a deployment like [run] does, then writes per-tick series
   (|A(tau)|, present count) as CSV for external plotting. *)
let run_analyze (proto : Protocol.t) out c =
  let drive (type p) (module D : Deployment.S with type Protocol.params = p) (params : p) =
    let d = D.create (build_config c) params in
    let module G = Generator.Make (D) in
    D.start_churn d ~until:(time c.horizon);
    G.run d
      {
        Generator.read_rate = c.read_rate;
        write_every = c.write_every;
        start = time 1;
        until = time c.horizon;
      };
    D.run_until d (time (c.horizon + (20 * c.delta)));
    let analysis = D.analysis d in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "tick,active,present\n";
    List.iter
      (fun (tau, active) ->
        Buffer.add_string buf
          (Printf.sprintf "%d,%d,%d\n" (Time.to_int tau) active
             (Analysis.present_at analysis tau)))
      (Analysis.series_active analysis ~from_:Time.zero ~until:(time c.horizon));
    let oc = open_out out in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Format.printf "series written to %s (%d ticks)@." out c.horizon;
    `Ok ()
  in
  let module R = (val proto.Protocol.runner : Protocol.RUNNER) in
  match R.params { Protocol.n = c.n; delta = c.delta; quorum = None } with
  | Error e -> `Error (false, e)
  | Ok params -> drive (module R.D) params

let analyze_cmd =
  let doc = "Run a deployment and dump per-tick |A(tau)| / present-count series as CSV." in
  let out_t =
    Arg.(
      value & opt string "series.csv"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"CSV output path.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      ret
        (const (fun pos flag o c -> resolve_protocol pos flag (fun p -> run_analyze p o c))
        $ protocol_pos_t $ protocol_flag_t $ out_t $ common_t))

(* scenario *)

let scenario_names = [ "fig3a"; "fig3b"; "inversion"; "async" ]

let run_scenario name =
  match name with
  | "fig3a" | "fig3b" ->
    let with_wait = String.equal name "fig3b" in
    Report.print
      (Tables.fig3
         (Scenario.fig3 ~join_wait:false)
         (Scenario.fig3 ~join_wait:true));
    ignore with_wait;
    `Ok ()
  | "inversion" ->
    Report.print (Tables.inversion (Scenario.inversion ()));
    `Ok ()
  | "async" ->
    Report.print
      (Tables.async_impossibility
         (Sweep.async_series ~horizons:[ 250; 500; 1000; 2000; 4000 ] ()));
    `Ok ()
  | other ->
    `Error
      ( true,
        Printf.sprintf "unknown scenario %S (%s)" other (String.concat "|" scenario_names) )

let scenario_cmd =
  let doc = "Replay one of the paper's constructed executions." in
  let name_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:"fig3a, fig3b, inversion or async.")
  in
  Cmd.v (Cmd.info "scenario" ~doc) Term.(ret (const run_scenario $ name_t))

(* sweep *)

(* One engine pool per sweep/hunt/check invocation. The summary (and
   the optional metrics dump notice) goes to stderr: stdout must stay
   byte-identical across worker counts, and CI diffs it. *)
let with_engine' ?(profile = false) ?profile_out ?(minor_heap_words = 0) ~jobs ~metrics_out f =
  let jobs = if jobs <= 0 then Dds_engine.Pool.default_jobs () else jobs in
  let recorder =
    if profile || profile_out <> None then
      Some (Dds_profile.Profile.create ~workers:jobs ())
    else None
  in
  Dds_engine.Pool.with_pool ~jobs
    ?minor_heap_words:(if minor_heap_words > 0 then Some minor_heap_words else None)
    ?profile:recorder (fun pool ->
      let r = f pool in
      let stats = Dds_engine.Pool.stats pool in
      let cells = List.fold_left (fun a s -> a + s.Dds_engine.Pool.ws_jobs) 0 stats in
      let steals = List.fold_left (fun a s -> a + s.Dds_engine.Pool.ws_steals) 0 stats in
      Format.eprintf "engine     : %d worker(s), %d job(s), %d steal(s), %.2fs wall@."
        (Dds_engine.Pool.jobs pool) cells steals (Dds_engine.Pool.wall_s pool);
      (match metrics_out with
      | Some path ->
        write_file path
          (Json.to_string
             (Export.metrics_to_json (Metrics.snapshot (Dds_engine.Pool.metrics pool)))
          ^ "\n");
        Format.eprintf "engine metrics written to %s@." path
      | None -> ());
      (match recorder with
      | Some rec_ ->
        (* Like the engine line: profile output is stderr-only, stdout
           stays byte-identical with profiling on or off. *)
        Format.eprintf "%a@." Dds_profile.Profile.pp_summary
          (Dds_profile.Profile.summary rec_);
        (match profile_out with
        | Some path ->
          write_file path (Json.to_string (Dds_profile.Profile.to_json rec_) ^ "\n");
          Format.eprintf "engine profile written to %s@." path
        | None -> ())
      | None -> ());
      r)

let with_engine c f =
  with_engine' ~profile:c.eprofile ?profile_out:c.profile_out
    ~minor_heap_words:c.minor_heap_words ~jobs:c.jobs ~metrics_out:c.metrics_out f

(* ------------------------------------------------------------------ *)
(* Latency attribution (lib/causal), shared by explain / sweep
   --attribution / inspect / audit. *)

(* The aggregate table: one p50 and one p99 row per op kind, a column
   per attributed phase. Per-op phase values sum exactly to that op's
   latency; percentiles are taken per column, so the rows here need
   not (p50s of parts don't sum to the p50 of the whole). *)
let attribution_table title (r : Causal.report) =
  let rows =
    List.concat_map
      (fun (og : Causal.op_agg) ->
        let row pct lat sel =
          [ Event.op_kind_to_string og.Causal.og_op; Report.cell_int og.Causal.og_count; pct ]
          @ List.map (fun (p : Causal.phase_agg) -> Report.cell_int (sel p)) og.Causal.og_phases
          @ [ Report.cell_int lat ]
        in
        [
          row "p50" og.Causal.og_lat_p50 (fun p -> p.Causal.pa_p50);
          row "p99" og.Causal.og_lat_p99 (fun p -> p.Causal.pa_p99);
        ])
      r.Causal.r_aggregate
  in
  Report.make ~title
    ~headers:
      ([ "op"; "n"; "pct" ]
      @ List.map Causal.seg_kind_to_string Causal.all_seg_kinds
      @ [ "latency" ])
    rows

(* One representative monitored-config run of a protocol with the sink
   enabled, analyzed in-process — what `dds sweep --attribution`
   appends per registered protocol. Sequential and pool-free, so the
   extra output is byte-identical at any --jobs. *)
let attribution_report (p : Protocol.t) c =
  let drive (type q) (module D : Deployment.S with type Protocol.params = q) (params : q) =
    let d = D.create { (build_config c) with Deployment.events_enabled = true } params in
    let module G = Generator.Make (D) in
    D.start_churn d ~until:(time c.horizon);
    G.run d
      {
        Generator.read_rate = c.read_rate;
        write_every = c.write_every;
        start = time 1;
        until = time c.horizon;
      };
    D.run_until d (time (c.horizon + (20 * c.delta) + (4 * c.wild)));
    Causal.analyze ~bound:(c.liveness_k * c.delta) (Event.events (D.events d))
  in
  let module R = (val p.Protocol.runner : Protocol.RUNNER) in
  match R.params { Protocol.n = c.n; delta = c.delta; quorum = None } with
  | Error e -> Error e
  | Ok params -> Ok (drive (module R.D) params)

let print_attribution c =
  List.iter
    (fun (p : Protocol.t) ->
      match attribution_report p c with
      | Error e -> Format.printf "attribution: %s skipped (%s)@." p.Protocol.name e
      | Ok r ->
        Report.print
          (attribution_table
             (Printf.sprintf "latency attribution — %s (n=%d delta=%d c=%g seed=%d, ticks)"
                p.Protocol.name c.n c.delta c.churn c.seed)
             r);
        (match r.Causal.r_over_bound with
        | [] -> ()
        | over ->
          Format.printf "  %d op(s) over the %d-tick bound: %s@." (List.length over)
            (c.liveness_k * c.delta)
            (String.concat ", "
               (List.map (fun (a : Causal.attribution) -> string_of_int a.Causal.a_span) over))))
    Protocol.all

(* The sweep registry: every experiment table `dds sweep` can
   regenerate, with the one-line description `dds list` prints. The
   dispatch below must cover exactly these names. *)
let sweeps =
  [
    ("lemma2", "join latency vs churn ratio c*3delta (Lemma 2's admissible region)");
    ("safety", "paper-literal sync register: safety vs churn ratio across seeds");
    ("boundary", "ES liveness/safety at the 1/(3 delta n) churn boundary");
    ("versus", "ABD on a fixed group vs the dynamic protocols under churn");
    ("msgs", "message complexity per operation as n grows");
    ("quorum", "timed-quorum survival probability vs churn");
    ("threshold", "empirical churn threshold across delta");
    ("bursty", "bursty (non-uniform) churn vs the uniform assumption");
    ("loss", "message loss vs the reliable-channel assumption");
    ("joinopt", "join-wait optimization: one delta vs two");
    ("broadcast", "broadcast primitive robustness under loss");
    ("consensus", "repeated-consensus overlay under churn");
    ("geo", "geo-distributed delays: speed ratio vs latency");
    ("repair", "read-repair ablation (regular vs atomic reads)");
    ("calibration", "believed vs actual delta calibration");
    ("sessions", "session-model churn (exponential vs uniform lifetimes)");
    ("nemesis", "fault-plan matrix: each nemesis vs each protocol");
    ("shard", "sharded key-space: throughput/latency vs shard count x churn x skew");
  ]

(* DESIGN.md experiment numbers as sweep aliases: `dds sweep e24` (or
   `dds profile sweep e24`) is the E24 nemesis matrix. Only E-numbers
   backed by a sweep appear; scenarios (E1–E3) and single-run
   experiments keep their own subcommands. *)
let sweep_aliases =
  [
    ("e4", "lemma2"); ("e5", "safety"); ("e9", "boundary"); ("e10", "versus");
    ("e11", "msgs"); ("e12", "quorum"); ("e13", "threshold"); ("e14", "bursty");
    ("e15", "loss"); ("e16", "joinopt"); ("e17", "broadcast"); ("e18", "consensus");
    ("e19", "geo"); ("e21", "repair"); ("e22", "calibration"); ("e23", "sessions");
    ("e24", "nemesis"); ("e25", "shard");
  ]

let run_sweep_tables name c =
  let name =
    match List.assoc_opt (String.lowercase_ascii name) sweep_aliases with
    | Some canonical -> canonical
    | None -> name
  in
  with_engine c @@ fun pool ->
  match name with
  | "lemma2" ->
    Report.print
      (Tables.lemma2 ~n:c.n ~delta:c.delta
         (Sweep.lemma2 ~pool ~n:c.n ~delta:c.delta
            ~ratios:[ 0.25; 0.5; 0.75; 0.9; 1.0; 1.2 ]
            ~horizon:c.horizon ~seed:c.seed ()));
    `Ok ()
  | "safety" ->
    let seeds = List.init 10 (fun i -> c.seed + i) in
    let ratios = [ 0.3; 0.6; 0.9; 1.1; 1.4; 2.0; 3.0 ] in
    Report.print
      (Tables.sync_safety ~n:c.n ~delta:c.delta ~variant:"paper-literal: adopt bottom"
         (Sweep.sync_safety ~on_empty:Sync_register.Adopt_bottom ~pool ~n:c.n ~delta:c.delta
            ~ratios ~seeds ~horizon:c.horizon ()));
    `Ok ()
  | "boundary" ->
    Report.print
      (Tables.es_boundary ~n:c.n
         (Sweep.es_boundary ~pool ~n:c.n
            ~rates:[ 0.0; 0.005; 0.01; 0.02; 0.04; 0.08; 0.15 ]
            ~horizon:c.horizon ~seed:c.seed ()));
    `Ok ()
  | "versus" ->
    let churn = if c.churn > 0.0 then c.churn else 0.02 in
    Report.print
      (Tables.abd_vs_dynamic ~n:c.n ~c:churn ~horizon:c.horizon
         (Sweep.abd_vs_dynamic ~pool ~n:c.n ~delta:c.delta ~c:churn ~horizon:c.horizon
            ~seed:c.seed ()));
    `Ok ()
  | "msgs" ->
    Report.print
      (Tables.msg_complexity
         (Sweep.msg_complexity ~pool ~ns:[ 10; 20; 40 ] ~delta:c.delta ~seed:c.seed ()));
    `Ok ()
  | "quorum" ->
    Report.print
      (Tables.timed_quorum ~n:c.n
         (Sweep.timed_quorum ~pool ~n:c.n
            ~cs:[ 0.005; 0.01; 0.02; 0.05; 0.1 ]
            ~lifetime:20 ~trials:400 ~seed:c.seed ()));
    `Ok ()
  | "threshold" ->
    Report.print
      (Tables.churn_threshold ~n:c.n
         (Sweep.churn_threshold ~pool ~n:c.n ~deltas:[ 2; 3; 4 ]
            ~seeds:(List.init 4 (fun i -> c.seed + i))
            ~horizon:c.horizon ()));
    `Ok ()
  | "bursty" ->
    Report.print
      (Tables.bursty_churn ~n:c.n ~delta:c.delta
         (Sweep.bursty_churn ~pool ~n:c.n ~delta:c.delta
            ~seeds:(List.init 8 (fun i -> c.seed + i))
            ~horizon:c.horizon ()));
    `Ok ()
  | "loss" ->
    Report.print
      (Tables.message_loss ~n:c.n
         (Sweep.message_loss ~pool ~n:c.n ~delta:c.delta
            ~losses:[ 0.0; 0.01; 0.05; 0.1; 0.2 ]
            ~horizon:c.horizon ~seed:c.seed ()));
    `Ok ()
  | "broadcast" ->
    Report.print
      (Tables.broadcast_robustness ~n:c.n
         (Sweep.broadcast_robustness ~pool ~n:c.n
            ~losses:[ 0.0; 0.05; 0.1; 0.2 ]
            ~horizon:c.horizon ~seed:c.seed ()));
    `Ok ()
  | "consensus" ->
    Report.print
      (Tables.consensus ~n:c.n ~k:3
         (Sweep.consensus_under_churn ~pool ~n:c.n ~k:3
            ~cs:[ 0.0; 0.005; 0.01; 0.02 ]
            ~horizon:c.horizon ~seed:c.seed ()));
    `Ok ()
  | "sessions" ->
    Report.print
      (Tables.session_models ~n:c.n ~delta:c.delta
         (Sweep.session_models ~pool ~n:c.n ~delta:c.delta ~mean:15.0 ~horizon:c.horizon
            ~seed:c.seed ()));
    `Ok ()
  | "calibration" ->
    Report.print
      (Tables.delta_calibration ~n:c.n ~actual:(Stdlib.max c.delta 4)
         (Sweep.delta_calibration ~pool ~n:c.n
            ~actual:(Stdlib.max c.delta 4)
            ~believed:[ 2; 4; 6; 9; 12 ]
            ~horizon:c.horizon ~seed:c.seed ()));
    `Ok ()
  | "repair" ->
    Report.print
      (Tables.read_repair ~n:c.n
         (Sweep.read_repair_ablation ~pool ~n:c.n ~horizon:c.horizon ~seed:c.seed ()));
    `Ok ()
  | "geo" ->
    Report.print
      (Tables.geo_speed ~delta:3
         (Sweep.geo_speed ~pool
            ~speeds:[ 0.0; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 ]
            ~horizon:c.horizon ~seed:c.seed ()));
    `Ok ()
  | "nemesis" ->
    Report.print
      (Tables.nemesis_matrix ~n:c.n ~delta:c.delta
         (Sweep.nemesis_matrix ~pool ~n:c.n ~delta:c.delta ~horizon:c.horizon ~seed:c.seed ()));
    `Ok ()
  | "joinopt" ->
    Report.print
      (Tables.join_wait_optimization ~n:c.n ~delta:(Stdlib.max c.delta 4)
         (Sweep.join_wait_optimization ~pool ~n:c.n
            ~delta:(Stdlib.max c.delta 4)
            ~p2ps:[ 1; 2 ] ~horizon:c.horizon ~seed:c.seed ()));
    `Ok ()
  | "shard" ->
    (* Smaller per-shard systems than the default n=20: a cell builds
       shards x n processes, and the matrix is shards x skews x churns
       cells. Override with --nodes as usual. *)
    let n = if c.n = 20 then 10 else c.n in
    let keys = c.keys in
    Report.print
      (Tables.shard_scaling ~protocol:"sync" ~n ~keys ~horizon:c.horizon
         (Sweep.shard_scaling ~pool ~protocol:"sync" ~n ~delta:c.delta
            ~shards:[ 1; 2; 4; 8 ]
            ~skews:[ 0.0; 1.0 ]
            ~churns:[ 0.0; 0.02 ]
            ~keys ~read_rate:c.read_rate ~write_every:c.write_every ~horizon:c.horizon
            ~seed:c.seed ()));
    `Ok ()
  | other ->
    `Error
      ( true,
        Printf.sprintf "unknown sweep %S (%s)" other
          (String.concat "|" (List.map fst sweeps)) )

let run_sweep name attribution c =
  match run_sweep_tables name c with
  | `Ok () when attribution ->
    print_attribution c;
    `Ok ()
  | r -> r

(* inspect *)

(* Per-phase latency table for one operation kind: each phase segment
   (see Export.phase_durations) gets its own row, plus a total row. *)
let inspect_op_table spans op =
  let of_kind =
    List.filter
      (fun (s : Export.span) -> s.Export.op = op && s.Export.outcome = Event.Completed)
      spans
  in
  if of_kind = [] then None
  else begin
    let tbl = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun s ->
        List.iter
          (fun (phase, ticks) ->
            let st =
              match Hashtbl.find_opt tbl phase with
              | Some st -> st
              | None ->
                let st = Stats.create () in
                Hashtbl.add tbl phase st;
                order := phase :: !order;
                st
            in
            Stats.add_int st ticks)
          (Export.phase_durations s))
      of_kind;
    let total = Stats.create () in
    List.iter
      (fun (s : Export.span) -> Stats.add_int total (Time.diff s.Export.ended s.Export.started))
      of_kind;
    let row label st =
      [
        label;
        Report.cell_int (Stats.count st);
        Report.cell_float (Stats.median st);
        Report.cell_float (Stats.percentile st 99.0);
        Report.cell_float (Stats.max_value st);
      ]
    in
    let rows = List.rev_map (fun phase -> row phase (Hashtbl.find tbl phase)) !order in
    Some
      (Report.make
         ~title:(Printf.sprintf "%s latency by phase (ticks)" (Event.op_kind_to_string op))
         ~headers:[ "phase"; "n"; "p50"; "p99"; "max" ]
         (rows @ [ row "total" total ]))
  end

(* A `--metrics-out` snapshot, made human-readable: the per-worker
   engine gauges fold into one table instead of a wall of
   `engine.w3.busy_s` lines; everything else prints as-is. *)
let inspect_metrics path j =
  let fields name = match Json.member name j with Some (Json.Obj kvs) -> kvs | _ -> [] in
  let counters = fields "counters" in
  let gauges = fields "gauges" in
  let histograms = fields "histograms" in
  Format.printf "%s: metrics snapshot — %d counter(s), %d gauge(s), %d histogram(s)@." path
    (List.length counters) (List.length gauges) (List.length histograms);
  if counters <> [] then
    Report.print
      (Report.make ~title:"counters" ~headers:[ "counter"; "value" ]
         (List.map
            (fun (k, v) ->
              [ k; (match Json.to_int_opt v with Some i -> Report.cell_int i | None -> "?") ])
            counters));
  (* Fold engine.w<i>.<field> gauges into a per-worker table. *)
  let worker_field k =
    match Scanf.sscanf k "engine.w%d.%s" (fun w f -> (w, f)) with
    | pair -> Some pair
    | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None
  in
  let per_worker = Hashtbl.create 8 in
  let plain =
    List.filter
      (fun (k, v) ->
        match worker_field k with
        | Some (w, f) ->
          let row =
            match Hashtbl.find_opt per_worker w with
            | Some row -> row
            | None ->
              let row = Hashtbl.create 4 in
              Hashtbl.add per_worker w row;
              row
          in
          Hashtbl.replace row f (Option.value ~default:Float.nan (Json.to_float_opt v));
          false
        | None -> true)
      gauges
  in
  if Hashtbl.length per_worker > 0 then begin
    let workers = List.sort compare (Hashtbl.fold (fun w _ acc -> w :: acc) per_worker []) in
    let cell row f fmt =
      match Hashtbl.find_opt row f with
      | Some v when not (Float.is_nan v) -> fmt v
      | _ -> "-"
    in
    Report.print
      (Report.make ~title:"engine workers"
         ~headers:[ "worker"; "jobs"; "steals"; "busy_s" ]
         (List.map
            (fun w ->
              let row = Hashtbl.find per_worker w in
              [
                string_of_int w;
                cell row "jobs" (fun v -> Report.cell_int (int_of_float v));
                cell row "steals" (fun v -> Report.cell_int (int_of_float v));
                cell row "busy_s" Report.cell_float;
              ])
            workers))
  end;
  if plain <> [] then
    Report.print
      (Report.make ~title:"gauges" ~headers:[ "gauge"; "value" ]
         (List.map
            (fun (k, v) ->
              [
                k;
                (match Json.to_float_opt v with Some f -> Report.cell_float f | None -> "?");
              ])
            plain));
  List.iter
    (fun (k, h) ->
      match (Json.member "count" h, Json.member "sum" h) with
      | Some count, Some sum ->
        Format.printf "histogram  : %s n=%s sum=%s@." k
          (match Json.to_int_opt count with Some i -> string_of_int i | None -> "?")
          (match Json.to_float_opt sum with Some f -> Printf.sprintf "%g" f | None -> "?")
      | _ -> Format.printf "histogram  : %s@." k)
    histograms;
  `Ok ()

(* A `--profile-out` file: echo the embedded summary without
   re-deriving it, plus the lane count from the trace itself. *)
let inspect_engine_profile path j =
  let events =
    match Json.member "traceEvents" j with Some (Json.List evs) -> evs | _ -> []
  in
  let summary = Json.member "summary" j in
  Format.printf "%s: engine profile — %d trace event(s)@." path (List.length events);
  (match summary with
  | None -> ()
  | Some s ->
    let str name = Option.bind (Json.member name s) Json.to_string_opt in
    let num name = Option.bind (Json.member name s) Json.to_float_opt in
    let int name = Option.bind (Json.member name s) Json.to_int_opt in
    (match (num "wall_s", int "jobs", num "busy_fraction") with
    | Some w, Some jobs, Some busy ->
      Format.printf "profile    : %d job(s), %.3fs wall, %.0f%% busy@." jobs w (100.0 *. busy)
    | _ -> ());
    (match (int "steal_attempts", int "steals") with
    | Some att, Some st when att > 0 ->
      Format.printf "steals     : %d/%d attempt(s) succeeded@." st att
    | _ -> ());
    (match (num "minor_words_per_job", num "minor_words") with
    | Some per, Some total ->
      Format.printf "alloc      : %.3g minor words/job (%.3g total)@." per total
    | _ -> ());
    (match Json.member "workers" s with
    | Some (Json.List ws) ->
      Report.print
        (Report.make ~title:"engine workers"
           ~headers:[ "worker"; "jobs"; "busy_s"; "idle_s"; "busy%"; "steals" ]
           (List.map
              (fun w ->
                let wint name = Option.bind (Json.member name w) Json.to_int_opt in
                let wnum name = Option.bind (Json.member name w) Json.to_float_opt in
                let i name = match wint name with Some v -> Report.cell_int v | None -> "-" in
                let f name = match wnum name with Some v -> Report.cell_float v | None -> "-" in
                let pct name =
                  match wnum name with
                  | Some v -> Printf.sprintf "%.0f" (100.0 *. v)
                  | None -> "-"
                in
                [ i "id"; i "jobs"; f "busy_s"; f "idle_s"; pct "busy_fraction"; i "steals" ])
              ws))
    | _ -> ());
    (match str "dominant" with
    | Some d when d <> "" -> Format.printf "dominant   : %s@." d
    | _ -> ()));
  `Ok ()

let run_inspect path =
  match read_file path with
  | exception Sys_error e -> `Error (false, e)
  | text ->
  (* Format auto-detection: an engine profile is a chrome object with
     our summary attached; a metrics snapshot has counters/gauges; any
     other chrome trace is one JSON object with a traceEvents array;
     anything else is treated as JSONL (parsed leniently — a run
     killed mid-write leaves a partial last line, which should cost a
     warning, not the whole summary). *)
  match Json.parse text with
  | Ok j when Json.member "traceEvents" j <> None && Json.member "summary" j <> None ->
    inspect_engine_profile path j
  | Ok j when Json.member "counters" j <> None && Json.member "gauges" j <> None ->
    inspect_metrics path j
  | parse_result ->
  let parsed =
    match parse_result with
    | Ok j when Json.member "traceEvents" j <> None -> Export.events_of_chrome j
    | Ok _ | Error _ -> (
      match Export.events_of_jsonl_lenient text with
      | Ok (evs, warnings) ->
        List.iter (fun w -> Format.eprintf "warning: %s: %s@." path w) warnings;
        Ok evs
      | Error e -> Error e)
  in
  match parsed with
  | Error e -> `Error (false, Printf.sprintf "%s: %s" path e)
  | Ok evs ->
    let spans, orphans = Export.spans_of_events evs in
    Format.printf "%s: %d events, %d completed spans@." path (List.length evs)
      (List.length spans);
    List.iter
      (fun op ->
        match inspect_op_table spans op with Some t -> Report.print t | None -> ())
      [ Event.Join; Event.Read; Event.Write ];
    (* Message mix: point-to-point copies per wire kind. *)
    let mix = Hashtbl.create 8 in
    let sends = ref 0 in
    let delivered = ref 0 in
    let dropped = ref 0 in
    List.iter
      (fun { Event.ev; _ } ->
        match ev with
        | Event.Send { kind; _ } ->
          incr sends;
          Hashtbl.replace mix kind (1 + Option.value ~default:0 (Hashtbl.find_opt mix kind))
        | Event.Deliver _ -> incr delivered
        | Event.Drop _ -> incr dropped
        | _ -> ())
      evs;
    if !sends > 0 then begin
      let rows =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) mix []
        |> List.sort compare
        |> List.map (fun (k, v) ->
               [
                 k;
                 Report.cell_int v;
                 Report.cell_float (100.0 *. float_of_int v /. float_of_int !sends);
               ])
      in
      Report.print
        (Report.make ~title:"message mix" ~headers:[ "kind"; "sends"; "%" ] rows);
      Format.printf "delivery   : %d sent, %d delivered, %d dropped@." !sends !delivered
        !dropped
    end;
    (* Churn timeline. *)
    let joins = ref 0 and leaves = ref 0 in
    List.iter
      (fun { Event.at; ev } ->
        match ev with
        | Event.Node_join { node } ->
          incr joins;
          Format.printf "churn      : %a join p%d@." Time.pp at node
        | Event.Node_leave { node } ->
          incr leaves;
          Format.printf "churn      : %a leave p%d@." Time.pp at node
        | Event.Gst_reached -> Format.printf "gst        : reached at %a@." Time.pp at
        | _ -> ())
      evs;
    Format.printf "churn      : %d joins, %d leaves@." !joins !leaves;
    (* Slowest ops with causes — the causal analyzer's gating chains.
       (A chrome round-trip has no Send/Deliver record, so there the
       paths degrade to local waiting; `dds explain` on the JSONL
       original gives the full decomposition.) *)
    let slow = Causal.slowest (Causal.analyze evs) 3 in
    if slow <> [] then begin
      Format.printf "@.slowest ops with causes:@.";
      List.iter (fun a -> Format.printf "%a" Causal.pp_attribution a) slow
    end;
    if orphans <> [] then
      Format.printf "orphans    : %d span(s) still open at end of trace: %s@."
        (List.length orphans)
        (String.concat ", " (List.map string_of_int orphans));
    `Ok ()

let inspect_cmd =
  let doc =
    "Summarize a trace produced by $(b,dds run --trace-out) (JSONL or chrome format, \
     auto-detected)."
  in
  let file_t =
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Trace file.")
  in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(ret (const run_inspect $ file_t))

(* explain *)

(* Causal critical-path analysis of an exported JSONL trace: where did
   each operation's latency go? Needs the Send/Deliver record (chrome
   exports drop it), so this consumes JSONL only — leniently, like
   inspect/audit, because a killed run leaves a partial last line. *)
let run_explain path op_span top delta bound_k json_out chrome_out =
  match read_file path with
  | exception Sys_error e -> `Error (false, e)
  | text -> (
    match Export.events_of_jsonl_lenient text with
    | Error e -> `Error (false, Printf.sprintf "%s: %s" path e)
    | Ok (evs, warnings) ->
      List.iter (fun w -> Format.eprintf "warning: %s: %s@." path w) warnings;
      let bound = bound_k * delta in
      let r = Causal.analyze ~bound evs in
      (match json_out with
      | Some out ->
        write_file out (Json.to_string (Causal.report_to_json r) ^ "\n");
        Format.printf "attribution report written to %s@." out
      | None -> ());
      (match chrome_out with
      | Some out ->
        write_file out (Json.to_string (Causal.chrome_of_report r) ^ "\n");
        Format.printf "path lanes written to %s@." out
      | None -> ());
      (match op_span with
      | Some span -> (
        match Causal.find_op r span with
        | Some a ->
          Format.printf "%a" Causal.pp_attribution a;
          `Ok ()
        | None ->
          `Error
            ( false,
              Printf.sprintf "span %d not among the %d completed op(s) in %s" span
                (List.length r.Causal.r_ops) path ))
      | None ->
        Format.printf "%s: %d events, %d attributed op(s), bound k*delta = %d*%d = %d@." path
          r.Causal.r_events (List.length r.Causal.r_ops) bound_k delta bound;
        if r.Causal.r_ops = [] then begin
          Format.printf "no completed operation spans — nothing to attribute@.";
          `Ok ()
        end
        else begin
          Report.print (attribution_table "latency attribution (ticks)" r);
          let slow = Causal.slowest r top in
          Format.printf "@.slowest %d op(s) with causes:@." (List.length slow);
          List.iter (fun a -> Format.printf "%a" Causal.pp_attribution a) slow;
          (match r.Causal.r_over_bound with
          | [] -> Format.printf "@.bound      : every op within %d ticks@." bound
          | over ->
            Format.printf "@.bound      : %d op(s) over %d ticks: %s@." (List.length over)
              bound
              (String.concat ", "
                 (List.map
                    (fun (a : Causal.attribution) ->
                      Printf.sprintf "#%d (%d)" a.Causal.a_span a.Causal.a_latency)
                    over));
            (* Each violation's critical path is its machine-checkable
               witness; print the ones the slowest-K section above
               didn't already show. *)
            List.iter
              (fun (a : Causal.attribution) ->
                if
                  not
                    (List.exists
                       (fun (s : Causal.attribution) -> s.Causal.a_span = a.Causal.a_span)
                       slow)
                then Format.printf "%a" Causal.pp_attribution a)
              over);
          if r.Causal.r_orphans <> [] then
            Format.printf "orphans    : %d span(s) never completed: %s@."
              (List.length r.Causal.r_orphans)
              (String.concat ", " (List.map string_of_int r.Causal.r_orphans));
          `Ok ()
        end))

let explain_cmd =
  let doc =
    "Causal critical-path analysis of a JSONL trace from $(b,dds run --trace-out): \
     reconstructs the happens-before DAG from the Lamport-stamped Send/Deliver record, \
     walks each operation's gating chain from $(b,Op_start) to $(b,Op_end), and \
     decomposes its latency into compute / transit / quorum / timer / retry phases that \
     sum exactly to the span latency — naming the quorum straggler and flagging ops over \
     the k*delta bound with their path as witness."
  in
  let file_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"JSONL trace file.")
  in
  let op_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "op" ] ~docv:"SPAN" ~doc:"Explain just this operation span id.")
  in
  let top_t =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K" ~doc:"How many slowest ops to render with full paths.")
  in
  let delta_t =
    Arg.(
      value & opt int 3
      & info [ "delta" ] ~docv:"TICKS"
          ~doc:"The run's message-delay bound (must match to make the k*delta bound right).")
  in
  let bound_k_t =
    Arg.(
      value & opt int 10
      & info [ "bound-k" ] ~docv:"K"
          ~doc:"Flag ops slower than K*delta ticks (same default as the liveness monitor).")
  in
  let json_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:
            "Write the attribution report as JSON (per-op phases + paths + stragglers, \
             aggregate percentiles, bound violations).")
  in
  let chrome_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-out" ] ~docv:"FILE"
          ~doc:
            "Write per-op critical-path lanes as Chrome trace_event JSON (one lane per \
             op, one slice per path segment; loadable in chrome://tracing / Perfetto).")
  in
  Cmd.v
    (Cmd.info "explain" ~doc)
    Term.(
      ret
        (const run_explain $ file_t $ op_t $ top_t $ delta_t $ bound_k_t $ json_out_t
       $ chrome_out_t))

(* audit *)

(* Replays an exported JSONL trace through the streaming monitors and
   the regularity checker, offline: everything the in-process checkers
   see is reconstructed from the trace alone (span payloads, Lamport
   stamps, membership events). Exits non-zero when anything fired. *)
(* The per-shard audit of a tagged trace: each shard is an independent
   register, so monitors and the regularity checker run once per tag —
   auditing the mixed timeline as one register would interleave
   different keys' writes and report nonsense. *)
let audit_sharded (proto : Protocol.t) initial merged_out c path
    (tagged : (int option * Event.stamped) list) =
  let tags =
    List.sort_uniq compare (List.map (fun (s, _) -> Option.value s ~default:(-1)) tagged)
  in
  Format.printf "%s: %d events audited across %d shard(s) (%s monitors, n=%d, delta=%d)@."
    path (List.length tagged) (List.length tags) proto.Protocol.name c.n c.delta;
  (match merged_out with
  | Some out ->
    write_file out (Export.jsonl_of_tagged_events tagged);
    Format.printf "merged     : shard-tagged trace -> %s@." out
  | None -> ());
  let all_ok = ref true in
  List.iter
    (fun tag ->
      let evs =
        List.filter_map
          (fun (s, ev) -> if Option.value s ~default:(-1) = tag then Some ev else None)
          tagged
      in
      let cfg = monitor_config_for proto c in
      let m = Dds_monitor.Monitor.create cfg in
      List.iter (fun st -> ignore (Dds_monitor.Monitor.feed m st)) evs;
      let last_at =
        List.fold_left (fun acc ({ at; _ } : Event.stamped) -> Time.max acc at) Time.zero evs
      in
      ignore (Dds_monitor.Monitor.finalize m ~at:last_at);
      let violations = Dds_monitor.Monitor.violations m in
      let history = Replay.history_of_events ~initial:(Value.initial initial) evs in
      let report = Regularity.check history in
      let ok = violations = [] && Regularity.is_ok report in
      if not ok then all_ok := false;
      Format.printf "  shard %s : %s (%d events; %d reads, %d joins checked; %d monitor \
                     violation(s))@."
        (if tag < 0 then "?" else string_of_int tag)
        (if Regularity.is_ok report then "REGULAR" else "VIOLATED")
        (List.length evs) report.Regularity.checked_reads report.Regularity.checked_joins
        (List.length violations);
      List.iter
        (fun v -> Format.printf "    %a@." Regularity.pp_violation v)
        report.Regularity.violations;
      List.iter
        (fun v -> Format.printf "    %a@." Dds_monitor.Monitor.pp_violation v)
        violations)
    tags;
  Format.printf "regularity : %s (%d shard(s))@."
    (if !all_ok then "REGULAR" else "VIOLATED")
    (List.length tags);
  if !all_ok then `Ok () else `Error (false, "audit found violations")

let run_audit paths (proto : Protocol.t) initial merged_out c =
  (* A shard-tagged line carries its register's index; a plain trace
     has no tags and parses to all-None. One parse path for both: the
     tagged lenient reader keeps shard tags AND tolerates the partial
     final line of a killed live node — falling back to an untagged
     reader on truncation would silently collapse a multi-shard trace
     into one register. *)
  let parse path =
    match read_file path with
    | exception Sys_error e -> Error e
    | text -> (
      match Export.tagged_events_of_jsonl_lenient text with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok (tagged, warnings) ->
        List.iter (fun w -> Format.eprintf "warning: %s: %s@." path w) warnings;
        Ok tagged)
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      match parse p with Ok evs -> collect (evs :: acc) rest | Error e -> Error e)
  in
  match collect [] paths with
  | Error e -> `Error (false, e)
  | Ok per_file ->
    (* A live deployment writes one trace per node; a stable merge on
       the shared timestamp reconstructs the single trace the simulator
       would have produced (span ids are globally unique already — each
       node offsets its own by pid * 1_000_000). *)
    let tagged_evs =
      match per_file with
      | [ evs ] -> evs
      | many ->
        List.stable_sort
          (fun ((_, a) : _ * Event.stamped) (_, b) -> Time.compare a.Event.at b.Event.at)
          (List.concat many)
    in
    let path = String.concat "+" paths in
    if List.exists (fun (s, _) -> s <> None) tagged_evs then
      audit_sharded proto initial merged_out c path tagged_evs
    else (
    let evs = List.map snd tagged_evs in
    (
      let cfg = monitor_config_for proto c in
      (* Run the monitors by hand (rather than Monitor.run) to keep
         the instance: overdue_spans is the structural witness hook
         the causal section below cross-references. *)
      let m = Dds_monitor.Monitor.create cfg in
      List.iter (fun st -> ignore (Dds_monitor.Monitor.feed m st)) evs;
      let last_at =
        List.fold_left
          (fun acc ({ at; _ } : Event.stamped) -> Time.max acc at)
          Time.zero evs
      in
      ignore (Dds_monitor.Monitor.finalize m ~at:last_at);
      let violations = Dds_monitor.Monitor.violations m in
      Format.printf "%s: %d events audited (%s monitors, n=%d, delta=%d)@." path
        (List.length evs) proto.Protocol.name c.n c.delta;
      (match merged_out with
      | Some out ->
        write_file out (Export.jsonl_of_events evs);
        Format.printf "merged     : %d file(s) -> %s@." (List.length per_file) out
      | None -> ());
      (match cfg.Dds_monitor.Monitor.churn_bound with
      | Some b -> Format.printf "churn bound: %.5f per tick@." b
      | None -> Format.printf "churn bound: none@.");
      if violations = [] then Format.printf "monitors   : no violations@."
      else begin
        Format.printf "monitors   : %d violation(s)@." (List.length violations);
        List.iter
          (fun v -> Format.printf "  %a@." Dds_monitor.Monitor.pp_violation v)
          violations
      end;
      let orphans = Event.unclosed_spans evs in
      if orphans <> [] then
        Format.printf "unclosed   : %d span(s) still open at end of trace: %s@."
          (List.length orphans)
          (String.concat ", " (List.map string_of_int orphans));
      let history = Replay.history_of_events ~initial:(Value.initial initial) evs in
      let report = Regularity.check history in
      Format.printf "regularity : %s (%d reads, %d joins checked; %d violations)@."
        (if Regularity.is_ok report then "REGULAR" else "VIOLATED")
        report.Regularity.checked_reads report.Regularity.checked_joins
        (List.length report.Regularity.violations);
      List.iter
        (fun v -> Format.printf "  %a@." Regularity.pp_violation v)
        report.Regularity.violations;
      (* Slowest ops with causes, plus a critical-path witness for
         every span the liveness monitor flagged (when the span did
         complete in-trace; one still open at the end has no path). *)
      let causal = Causal.analyze ~bound:(c.liveness_k * c.delta) evs in
      let slow = Causal.slowest causal 3 in
      if slow <> [] then begin
        Format.printf "slowest ops with causes:@.";
        List.iter (fun a -> Format.printf "%a" Causal.pp_attribution a) slow
      end;
      List.iter
        (fun span ->
          match Causal.find_op causal span with
          | Some a ->
            Format.printf "liveness witness (span %d):@.%a" span Causal.pp_attribution a
          | None ->
            Format.printf "liveness witness (span %d): op still open at end of trace@." span)
        (Dds_monitor.Monitor.overdue_spans m);
      (match c.dot_out with
      | Some out ->
        write_file out (Export.dot_of_events evs);
        Format.printf "causal graph written to %s@." out
      | None -> ());
      if violations = [] && Regularity.is_ok report then `Ok ()
      else `Error (false, "audit found violations")))

let audit_cmd =
  let doc =
    "Replay one or more JSONL traces through the assumption/safety monitors (churn rate \
     vs the protocol's admissible bound, active majority, span liveness, new/old \
     inversions) and the regularity checker. Multiple files (one per live node from \
     $(b,dds serve --trace-out)) are stable-merged on their shared time line first; \
     wire traces are stamped in milliseconds, so pass $(b,--delta) in ms there (the \
     runtime's 1 tick = 1 ms convention). Exits non-zero if anything fired."
  in
  let files_t =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "JSONL trace file(s). Several files — e.g. one per node of a live \
             deployment — are merged by timestamp before auditing.")
  in
  let merged_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "merged-out" ] ~docv:"FILE"
          ~doc:
            "Write the merged, time-sorted trace as JSONL (feed it to $(b,dds explain) \
             or $(b,dds inspect), which consume a single file).")
  in
  let proto_t =
    Arg.(
      value
      & opt proto_conv (Protocol.find_exn "sync")
      & info [ "proto"; "protocol" ] ~docv:"PROTOCOL"
          ~doc:
            ("Protocol the trace came from — selects which assumption bounds apply (churn \
              bound, active majority, GST-clocked liveness) from the registry. "
            ^ proto_doc))
  in
  let initial_t =
    Arg.(
      value & opt int 0
      & info [ "initial" ] ~docv:"INT"
          ~doc:
            "The register's initial value (not recorded in the trace); must match the \
             run's configuration for the regularity verdict to be meaningful.")
  in
  Cmd.v
    (Cmd.info "audit" ~doc)
    Term.(ret (const run_audit $ files_t $ proto_t $ initial_t $ merged_out_t $ common_t))

(* serve / client / load *)

(* The Unix runtime backend (lib/runtime_unix): the registry's protocol
   state machines, unchanged, run over TCP instead of the simulator.
   Convention: 1 simulator tick = 1 ms. --delta-ms is the message-delay
   bound the deployment assumes, live traces are stamped in
   milliseconds since --epoch (all nodes of one deployment must share
   it; default is today's midnight UTC, so same-day processes agree
   without coordination), and `dds audit`/`dds explain` consume the
   traces unchanged with --delta given in ms. *)

module Runix = Dds_runtime_unix

let parse_peers s =
  match
    List.map
      (fun part ->
        match String.rindex_opt part ':' with
        | Some i ->
          let host = String.sub part 0 i in
          let port = int_of_string (String.sub part (i + 1) (String.length part - i - 1)) in
          ((if host = "" then "127.0.0.1" else host), port)
        | None -> failwith part)
      (String.split_on_char ',' s)
  with
  | addrs -> Ok (Array.of_list addrs)
  | exception _ ->
    Error (Printf.sprintf "cannot parse %S (expected HOST:PORT[,HOST:PORT...])" s)

let peers_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "peers" ] ~docv:"ADDRS"
        ~doc:
          "The whole mesh as HOST:PORT,HOST:PORT,... — order matters: position in the \
           list is the node's pid, and every node of one deployment must be given the \
           identical list.")

(* The keyed-store placement flags, shared verbatim by serve and load:
   both sides of a deployment must quote the identical map, exactly
   like --peers. *)
let serve_shards_t =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Size of the key space partition: keys route to shard \
           $(b,SplitMix64(key) mod N), each shard an independent register. 1 (the \
           default) is the classic single-register deployment, served to v1 and v2 \
           clients alike.")

let serve_owned_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "owned" ] ~docv:"SPEC"
        ~doc:
          "Static placement map as per-node shard groups: $(b,a,b;c;a,c) gives node 0 \
           shards {a,b}, node 1 {c}, node 2 {a,c} (order = --peers order). A single \
           group without $(b,;) replicates to every node; omitting the flag means every \
           node owns every shard. Every process of one deployment (and dds load/client) \
           must be given the identical spec.")

let run_serve (proto : Protocol.t) id peers shards owned join initial delta_ms epoch
    quorum trace_out metrics_out =
  match parse_peers peers with
  | Error e -> `Error (false, e)
  | Ok addrs -> (
    let n = Array.length addrs in
    if id < 0 || id >= n then
      `Error (false, Printf.sprintf "--id %d out of range [0, %d)" id n)
    else
      match Runix.Placement.make ~nodes:n ~shards ~spec:owned with
      | Error e -> `Error (false, e)
      | Ok placement -> (
        let module R = (val proto.Protocol.runner : Protocol.RUNNER) in
        (* One protocol instance per owned shard; each shard's group is
           its owner set, so its params (quorum size, churn bound) are
           derived from the owner count, not the mesh size. *)
        let owned_here = Runix.Placement.owned placement id in
        let resolved =
          List.fold_left
            (fun acc shard ->
              match acc with
              | Error _ -> acc
              | Ok ps -> (
                let group = List.length (Runix.Placement.owners placement shard) in
                match R.params { Protocol.n = group; delta = delta_ms; quorum } with
                | Error e -> Error (Printf.sprintf "shard %d: %s" shard e)
                | Ok p -> Ok ((shard, p) :: ps)))
            (Ok []) owned_here
        in
        match resolved with
        | Error e -> `Error (false, e)
        | Ok params_alist ->
          let module S = Runix.Store.Make (R.D.Protocol) in
          let loop = Runix.Loop.create () in
          let epoch_ms =
            match epoch with Some e -> e | None -> Runix.Store.default_epoch_ms ()
          in
          let cfg =
            {
              Runix.Store.self = id;
              addrs;
              placement;
              join;
              initial_value = initial;
              epoch_ms;
              events_enabled = trace_out <> None;
              trace_path = trace_out;
              listen_fd = None;
            }
          in
          Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
          let store = S.create ~loop cfg (fun shard -> List.assoc shard params_alist) in
          let quit = ref false in
          let stop (_ : int) = quit := true in
          Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
          Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
          let host, port = addrs.(id) in
          Format.printf "%s node %d/%d on %s:%d (%s; delta = %d ms; epoch = %.0f)@."
            proto.Protocol.name id n host port
            (if join then "joining" else "founding")
            delta_ms epoch_ms;
          if Runix.Placement.shards placement > 1 then
            Format.printf "shards     : %d total, hosting [%s] (placement %s)@."
              (Runix.Placement.shards placement)
              (String.concat "," (List.map string_of_int owned_here))
              (Runix.Placement.to_string placement);
          (match trace_out with
          | Some path ->
            Format.printf "trace      : %s@." path;
            Format.printf
              "audit with : dds audit <every node's trace> --proto %s --nodes %d --delta \
               %d@."
              proto.Protocol.name n delta_ms
          | None -> ());
          Format.pp_print_flush Format.std_formatter ();
          Runix.Loop.run_while loop (fun () -> not !quit);
          S.shutdown store;
          (match metrics_out with
          | Some out ->
            write_file out
              (Json.to_string (Export.metrics_to_json (Metrics.snapshot (S.metrics store)))
              ^ "\n")
          | None -> ());
          `Ok ()))

let serve_cmd =
  let doc =
    "Run one live register node over TCP. Start one $(b,dds serve) process per entry \
     in $(b,--peers) (same list, same $(b,--delta-ms), same $(b,--epoch) everywhere); \
     the processes dial each other into a full mesh and serve client reads/writes. \
     Stop with SIGTERM/SIGINT (crash-stop = kill -9). With $(b,--trace-out) each node \
     streams the same Lamport-stamped JSONL event stream the simulator records, \
     stamped in ms (1 tick = 1 ms), ready for $(b,dds audit)."
  in
  let proto_pos_t =
    Arg.(
      required & pos 0 (some proto_conv) None & info [] ~docv:"PROTOCOL" ~doc:proto_doc)
  in
  let shards_t = serve_shards_t in
  let owned_t = serve_owned_t in
  let id_t =
    Arg.(
      required
      & opt (some int) None
      & info [ "id" ] ~docv:"I" ~doc:"This node's index (pid) into the --peers list.")
  in
  let join_t =
    Arg.(
      value & flag
      & info [ "join" ]
          ~doc:
            "Enter through the protocol's join operation instead of founding: the node \
             waits for links to a majority of the mesh, runs join (INQUIRY round / \
             quorum wait), and only then serves. Default: founding member, active \
             immediately with --initial.")
  in
  let initial_t =
    Arg.(
      value & opt int 0
      & info [ "initial" ] ~docv:"INT" ~doc:"Founding members' initial register value.")
  in
  let delta_ms_t =
    Arg.(
      value & opt int 50
      & info [ "delta-ms" ] ~docv:"MS"
          ~doc:
            "The deployment's assumed message-delay bound in milliseconds (the \
             simulator's delta, under 1 tick = 1 ms). Drives the sync protocol's \
             timer waits; quote the same value to dds audit --delta.")
  in
  let epoch_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "epoch" ] ~docv:"UNIX_MS"
          ~doc:
            "Shared time origin (unix epoch milliseconds). Defaults to today's \
             midnight UTC — fine when all nodes start the same UTC day; pass an \
             explicit value for deployments that straddle midnight.")
  in
  let quorum_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "quorum" ] ~docv:"Q" ~doc:"Override the quorum size (es only).")
  in
  let trace_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE" ~doc:"Stream this node's events as JSONL.")
  in
  let metrics_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"On shutdown, write this node's counters as JSON.")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run_serve $ proto_pos_t $ id_t $ peers_t $ shards_t $ owned_t $ join_t
       $ initial_t $ delta_ms_t $ epoch_t $ quorum_t $ trace_out_t $ metrics_out_t))

let run_client addr op datum key wire =
  match parse_peers addr with
  | Error e -> `Error (false, e)
  | Ok addrs when Array.length addrs <> 1 -> `Error (false, "client takes one HOST:PORT")
  | Ok addrs -> (
    let host, port = addrs.(0) in
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    match Runix.Client.connect ~wire ~host ~port () with
    | exception Unix.Unix_error (err, _, _) ->
      `Error (false, Printf.sprintf "%s:%d: %s" host port (Unix.error_message err))
    | exception Failure e -> `Error (false, e)
    | c ->
      let r =
        match (op, datum) with
        | "read", None -> Ok (Runix.Client.read ~key c)
        | "write", Some v -> Ok (Runix.Client.write ~key c v)
        | "write", None -> Error "write takes a value: dds client HOST:PORT write INT"
        | "read", Some _ -> Error "read takes no value"
        | op, _ -> Error (Printf.sprintf "unknown operation %S (read|write)" op)
      in
      Runix.Client.close c;
      (match r with
      | Error e -> `Error (false, e)
      | Ok (Error e) -> `Error (false, Printf.sprintf "node answered: %s" e)
      | Ok (Ok v) ->
        Format.printf "%a@." Value.pp v;
        `Ok ()))

let client_cmd =
  let doc =
    "One register operation against a live node: $(b,dds client HOST:PORT read) prints \
     the value (as datum#sn), $(b,dds client HOST:PORT write INT) writes and prints \
     the stored value. $(b,--key) addresses a register of a sharded store (wire v2); \
     the addressed node must own the key's shard. Writes should go to the shard's \
     writer — the deployments assume one writer per shard."
  in
  let addr_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"HOST:PORT" ~doc:"Node address.")
  in
  let op_t =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OP" ~doc:"read or write.")
  in
  let datum_t =
    Arg.(value & pos 2 (some int) None & info [] ~docv:"INT" ~doc:"Value to write.")
  in
  let key_t =
    Arg.(
      value & opt int 0
      & info [ "key" ] ~docv:"KEY"
          ~doc:
            "The 63-bit key the operation addresses (default 0 — the register every v1 \
             deployment serves). Requires wire v2.")
  in
  let wire_t =
    Arg.(
      value
      & opt (enum [ ("v1", Dds_net.Wire.v1); ("v2", Dds_net.Wire.v2) ]) Dds_net.Wire.v2
      & info [ "wire" ] ~docv:"VERSION"
          ~doc:
            "Wire protocol version to speak: $(b,v2) (default; keyed frames, handshake \
             ack) or $(b,v1) (byte-identical to the pre-keyed protocol, for talking to \
             old servers — key 0 only).")
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(ret (const run_client $ addr_t $ op_t $ datum_t $ key_t $ wire_t))

let run_load peers shards owned keys skew clients duration write_ratio route seed
    metrics_out =
  match parse_peers peers with
  | Error e -> `Error (false, e)
  | Ok addrs -> (
    let nodes = Array.length addrs in
    (* --shards/--owned quote the servers' placement; without them the
       generator falls back to Load's historical per-node spread. *)
    let placement =
      match (shards, owned) with
      | None, None -> Ok None
      | shards, owned ->
        Result.map Option.some
          (Runix.Placement.make ~nodes
             ~shards:(Option.value shards ~default:nodes)
             ~spec:owned)
    in
    match placement with
    | Error e -> `Error (false, e)
    | Ok placement -> (
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      match
        Runix.Load.run ?placement ~keys ~skew ~addrs ~clients ~duration_s:duration
          ~write_ratio ~route ~seed ()
      with
      | exception Failure e -> `Error (false, e)
      | r ->
        let row label (h : Histogram.t) =
          [
            label;
            Report.cell_int (Histogram.count h);
            Report.cell_float (Histogram.percentile h 50.0);
            Report.cell_float (Histogram.percentile h 99.0);
            Report.cell_float (Histogram.max_value h);
          ]
        in
        (* Under key-hash the same latencies are re-cut by key class:
           the hot head of the zipf curve vs the cold tail. *)
        let class_rows =
          if r.Runix.Load.hot_keys = 0 then []
          else
            [
              row
                (Printf.sprintf "hot (top %d key(s))" r.Runix.Load.hot_keys)
                r.Runix.Load.hot_lat_us;
              row "cold" r.Runix.Load.cold_lat_us;
            ]
        in
        Report.print
          (Report.make ~title:"load summary"
             ~headers:[ "op"; "n"; "p50 (us)"; "p99 (us)"; "max (us)" ]
             ([ row "read" r.Runix.Load.read_lat_us; row "write" r.Runix.Load.write_lat_us ]
             @ class_rows));
        Format.printf "throughput : %d op(s) in %.2f s = %.0f op/s (%d read / %d write, \
                       %s routing)@."
          r.Runix.Load.ops r.Runix.Load.elapsed_s (Runix.Load.ops_per_s r)
          r.Runix.Load.reads r.Runix.Load.writes
          (Runix.Load.route_to_string route);
        if route = Runix.Load.Key_hash then
          Format.printf "key space  : %d key(s), zipf s = %.2f%s@." keys skew
            (match placement with
            | Some p ->
              Printf.sprintf ", %d shard(s), placement %s" (Runix.Placement.shards p)
                (Runix.Placement.to_string p)
            | None -> Printf.sprintf ", default placement (%d shards)" nodes);
        Format.printf "errors     : %d@." r.Runix.Load.errors;
        (match metrics_out with
        | Some out ->
          write_file out
            (Json.to_string
               (Export.metrics_to_json (Metrics.snapshot (Runix.Load.metrics_of_report r)))
            ^ "\n")
        | None -> ());
        if r.Runix.Load.errors = 0 then `Ok () else `Error (false, "load saw errors")))

let load_cmd =
  let doc =
    "Closed-loop load generator against a live deployment: N concurrent clients each \
     issue read/write, wait, repeat, for the given duration. $(b,--route) picks where \
     ops land: $(b,fixed) funnels writes to node 0 (single-writer regime), \
     $(b,round-robin) walks the mesh per op, $(b,key-hash) issues real keyed (wire v2) \
     operations: each op draws a key from a zipfian popularity curve ($(b,--keys), \
     $(b,--skew)) and lands on its shard under the deployment's placement \
     ($(b,--shards)/$(b,--owned), quoted identically to dds serve) — reads on any owner, \
     writes on the shard's writer. The report then splits latency into hot and cold key \
     classes. Latency lands in the same histogram / metrics pipeline as the simulator's \
     tables."
  in
  let shards_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "The served deployment's shard count (quote dds serve's value). Default: one \
             shard per node, the historical key-hash spread.")
  in
  let owned_t = serve_owned_t in
  let keys_t =
    Arg.(
      value & opt int 4096
      & info [ "keys" ] ~docv:"N" ~doc:"Key-space size for $(b,--route key-hash).")
  in
  let skew_t =
    Arg.(
      value & opt float 0.0
      & info [ "skew" ] ~docv:"S"
          ~doc:
            "Zipf exponent of the key popularity curve: 0 (default) uniform, ~1 classic \
             zipf, higher = hotter head.")
  in
  let clients_t =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent closed-loop connections.")
  in
  let duration_t =
    Arg.(value & opt float 5.0 & info [ "duration" ] ~docv:"SECONDS" ~doc:"How long to run.")
  in
  let write_ratio_t =
    Arg.(
      value & opt float 0.1
      & info [ "write-ratio" ] ~docv:"R" ~doc:"Fraction of operations that write.")
  in
  let route_t =
    Arg.(
      value
      & opt
          (enum
             [
               ("fixed", Runix.Load.Fixed);
               ("round-robin", Runix.Load.Round_robin);
               ("key-hash", Runix.Load.Key_hash);
             ])
          Runix.Load.Fixed
      & info [ "route" ] ~docv:"POLICY"
          ~doc:
            "Operation routing: $(b,fixed) (writes to node 0, reads on the client's \
             assigned node — the single-writer regime), $(b,round-robin) (op k to node \
             k mod n), or $(b,key-hash) (each op draws a synthetic key; its node is the \
             sharded store's placement hash).")
  in
  let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Rng seed.") in
  let metrics_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write ops/latency counters + histograms as JSON.")
  in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(
      ret
        (const run_load $ peers_t $ shards_t $ owned_t $ keys_t $ skew_t $ clients_t
       $ duration_t $ write_ratio_t $ route_t $ seed_t $ metrics_out_t))

(* hunt *)

(* Randomized counterexample search: seeds [seed, seed + plans) each
   get a deterministically derived random nemesis plan (or the fixed
   --nemesis plan when given); the first violating run is shrunk to a
   minimal plan and echoed as a copy-pasteable `dds run` line. Exits
   non-zero iff a violation was found, so CI can assert both
   directions: a within-model hunt must come back clean, a fixed
   assumption-breaking plan must be flagged. *)
let run_hunt (proto : Protocol.t) plans profile no_shrink c =
  let protocol = proto.Protocol.name in
  let drive (type p) (module D : Deployment.S with type Protocol.params = p) (params : p) =
    let module H = Harness.Make (D) in
    let spec =
      {
        Harness.horizon = c.horizon;
        (* Same drain as make_runner, so repro lines replay exactly. *)
        drain = (20 * c.delta) + (4 * c.wild);
        read_rate = c.read_rate;
        write_every = c.write_every;
        monitor = Some (monitor_config_for proto c);
      }
    in
    let runner ~seed plan = H.run { (build_config c) with Deployment.seed } params spec plan in
    let gen ~seed =
      match c.nemesis with
      | Some plan -> plan
      | None ->
        (* Derived from the seed but offset, so the plan stream never
           collides with the deployment's own root stream. *)
        let rng = Rng.create ~seed:(seed lxor 0x6e656d65736973) in
        Nemesis.random ~rng ~n:c.n ~horizon:c.horizon ~delta:c.delta profile
    in
    let seeds = List.init plans (fun i -> c.seed + i) in
    (* The pool searches seeds with early cancellation but still
       reports the lowest violating seed and the sequential run count
       (see Hunt.search), so repro lines and summaries are identical
       at any --jobs. *)
    match with_engine c (fun pool -> Hunt.search ~pool ~runner ~gen seeds) with
    | None ->
      Format.printf "hunt       : %d seed(s) clean (seeds %d..%d, %s profile, %d examined)@."
        plans c.seed
        (c.seed + plans - 1)
        (match profile with Nemesis.Within _ -> "within-model" | Nemesis.Any -> "any")
        plans;
      `Ok ()
    | Some found ->
      Format.printf "hunt       : violation at seed %d after %d of %d seed(s) examined@."
        found.Hunt.seed found.Hunt.runs plans;
      Format.printf "plan       : %s@." (Nemesis.to_string found.Hunt.plan);
      List.iter (fun v -> Format.printf "  %s@." v) found.Hunt.violations;
      let found =
        if no_shrink then found
        else begin
          let shrunk = Hunt.shrink ~runner found in
          Format.printf "shrunk     : %s (%d attempt(s))@."
            (match shrunk.Hunt.plan with
            | [] -> "<no faults needed>"
            | p -> Nemesis.to_string p)
            shrunk.Hunt.runs;
          List.iter (fun v -> Format.printf "  %s@." v) shrunk.Hunt.violations;
          shrunk
        end
      in
      let repro_c =
        {
          c with
          seed = found.Hunt.seed;
          monitor = true;
          nemesis = (match found.Hunt.plan with [] -> None | p -> Some p);
        }
      in
      Format.printf "repro      : %s@." (repro_line ~protocol repro_c);
      `Error (false, "hunt found a violating execution")
  in
  let module R = (val proto.Protocol.runner : Protocol.RUNNER) in
  match R.params { Protocol.n = c.n; delta = c.delta; quorum = None } with
  | Error e -> `Error (false, e)
  | Ok params -> drive (module R.D) params

(* Shared term builders: the plain subcommands and the [dds profile]
   group reuse the same argument sets; [forced_profile] is the only
   difference (the group turns the engine profiler on). *)
let force_profile ~forced_profile c = if forced_profile then { c with eprofile = true } else c

let hunt_term ~forced_profile =
  let plans_t =
    Arg.(
      value & opt int 25
      & info [ "plans"; "runs" ] ~docv:"N" ~doc:"How many seeds (and random plans) to try.")
  in
  let faults_t =
    Arg.(
      value
      & opt (enum [ ("any", Nemesis.Any); ("within", Nemesis.Within { slack = 0 }) ]) Nemesis.Any
      & info [ "faults" ] ~docv:"SPACE"
          ~doc:
            "Plan space: $(b,any) draws from the full arsenal (partitions, drops, \
             over-delta delays, mass crashes — assumption-breaking allowed); $(b,within) \
             draws only faults the paper's model tolerates (duplicates, bounded churn \
             bursts, crash-with-recovery), so such a hunt must come back clean. (Until \
             the engine profiler arrived this was spelled $(b,--profile).)")
  in
  let no_shrink_t =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report the first counterexample without minimizing it.")
  in
  Term.(
    ret
      (const (fun pos flag plans faults no_shrink c ->
           resolve_protocol pos flag (fun p ->
               run_hunt p plans faults no_shrink (force_profile ~forced_profile c)))
      $ protocol_pos_t $ protocol_flag_t $ plans_t $ faults_t $ no_shrink_t $ common_t))

let sweep_term ~forced_profile =
  let name_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SWEEP"
          ~doc:
            ("One of: "
            ^ String.concat ", " (List.map fst sweeps)
            ^ " — or an experiment alias e4..e24 (see $(b,dds list))."))
  in
  let attribution_t =
    Arg.(
      value & flag
      & info [ "attribution" ]
          ~doc:
            "After the sweep table, print a per-protocol latency-attribution table: one \
             representative monitored-config run per registered protocol is analyzed by \
             the causal critical-path analyzer ($(b,dds explain)) and its latency \
             decomposed into compute/transit/quorum/timer/retry phase columns (p50/p99 \
             per op kind), with ops over the k*delta bound listed. The extra run is \
             sequential, so output stays byte-identical at any $(b,--jobs).")
  in
  Term.(
    ret
      (const (fun name attribution c ->
           run_sweep name attribution (force_profile ~forced_profile c))
      $ name_t $ attribution_t $ common_t))

let hunt_cmd =
  let doc =
    "Randomized nemesis search: N seeds each run a seed-derived random fault plan (or the \
     fixed $(b,--nemesis) plan); the first violating run is shrunk to a minimal \
     counterexample and echoed as a copy-pasteable $(b,dds run) repro line. Exits \
     non-zero iff a violation was found."
  in
  Cmd.v (Cmd.info "hunt" ~doc) (hunt_term ~forced_profile:false)

let sweep_cmd =
  let doc = "Regenerate one experiment table (see DESIGN.md's index or $(b,dds list))." in
  Cmd.v (Cmd.info "sweep" ~doc) (sweep_term ~forced_profile:false)

(* check *)

(* Systematic bounded exploration: every schedule of a small scripted
   deployment, driven through the checker's choice points. The verdict
   table goes to stdout (byte-identical at any --jobs); the engine
   summary goes to stderr like sweep/hunt. *)
let run_check (p : Protocol.t) nodes delta writes reads joins quorum drop_budget crash_budget
    depth_bound preempt_bound schedule_out naive frontier jobs eprofile profile_out =
  let cfg =
    {
      Dds_check.Schedule.proto = p.Protocol.name;
      nodes;
      delta;
      writes;
      reads;
      joins;
      quorum;
      drop_budget;
      crash_budget;
      depth_bound;
      preempt_bound;
    }
  in
  with_engine' ~profile:eprofile ?profile_out ~jobs ~metrics_out:None @@ fun pool ->
  match
    Dds_check.Check.run ~pool ~por:(not naive) ~state_cache:(not naive) ~frontier p cfg
  with
  | Error e -> `Error (false, e)
  | Ok { Dds_check.Check.stats; violation } ->
    Format.printf "check      : %s nodes=%d delta=%d writes=%d reads=%d joins=%d%s@."
      p.Protocol.name nodes delta writes reads joins
      (match quorum with Some q -> Printf.sprintf " quorum=%d" q | None -> "");
    Format.printf "adversary  : <=%d drop(s), <=%d crash(es)@." drop_budget crash_budget;
    Format.printf "bounds     : depth %d, %d preemption(s)@." depth_bound preempt_bound;
    Format.printf "schedules  : %d explored, %d truncated at the depth bound@."
      stats.Dds_check.Check.schedules stats.Dds_check.Check.truncated;
    Format.printf "pruned     : %d state-cache hit(s), %d sleep-set skip(s), %d over the \
                   preemption budget@."
      stats.Dds_check.Check.state_prunes stats.Dds_check.Check.sleep_skips
      stats.Dds_check.Check.preempt_skips;
    Format.printf "max depth  : %d decision(s)@." stats.Dds_check.Check.max_depth;
    (match violation with
    | None ->
      Format.printf "verdict    : CLEAN — no %s violation within bounds@."
        (if p.Protocol.atomic then "regularity/atomicity" else "regularity");
      `Ok ()
    | Some v ->
      Format.printf "verdict    : VIOLATION at schedule %d of %d@."
        v.Dds_check.Check.at_schedule stats.Dds_check.Check.schedules;
      List.iter (fun l -> Format.printf "  %s@." l) v.Dds_check.Check.lines;
      (match schedule_out with
      | Some path ->
        write_file path (Dds_check.Schedule.to_string v.Dds_check.Check.schedule);
        Format.printf "schedule   : written to %s (replay: dds run --schedule %s)@." path
          path
      | None ->
        Format.printf "schedule   : (replay with dds run --schedule)@.%s"
          (Dds_check.Schedule.to_string v.Dds_check.Check.schedule));
      `Error (false, "check found a violating schedule"))

let check_doc =
  "Explore $(i,every) schedule of a small scripted deployment up to the given bounds: \
   at each tick where several events are ready the scheduler branches on which fires \
   first, and the bounded adversary branches on drop-or-deliver per message and \
   crash-or-not at fixed ticks. Terminal runs are judged against regularity (and \
   atomicity for protocols that promise it); the first violating schedule is emitted \
   in a replayable format. Exits non-zero iff a violation was found."

let check_term ~forced_profile =
  let nodes_t =
    Arg.(value & opt int 3 & info [ "n"; "nodes" ] ~docv:"INT" ~doc:"Founding system size.")
  in
  let delta_t =
    Arg.(value & opt int 1 & info [ "delta" ] ~docv:"TICKS" ~doc:"Message delay (constant).")
  in
  let writes_t =
    Arg.(value & opt int 1 & info [ "writes" ] ~docv:"N" ~doc:"Scripted writes (writer p0).")
  in
  let reads_t =
    Arg.(
      value & opt int 1
      & info [ "reads" ] ~docv:"N" ~doc:"Scripted reads (round-robin over the other nodes).")
  in
  let joins_t =
    Arg.(value & opt int 0 & info [ "joins" ] ~docv:"N" ~doc:"Scripted mid-run joiners.")
  in
  let quorum_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "quorum" ] ~docv:"Q"
          ~doc:
            "Override the quorum size for protocols that take one (es). Setting it below \
             a majority is the canonical mutation the checker must catch.")
  in
  let drop_t =
    Arg.(
      value & opt int 0
      & info [ "drop-budget" ] ~docv:"N"
          ~doc:"Adversary may drop up to N messages (each transmission becomes a branch).")
  in
  let crash_t =
    Arg.(
      value & opt int 0
      & info [ "crash-budget" ] ~docv:"N"
          ~doc:"Adversary may crash up to N non-writer processes at fixed decision ticks.")
  in
  let depth_t =
    Arg.(
      value & opt int 16
      & info [ "depth-bound" ] ~docv:"D"
          ~doc:"Max decisions explored per run; deeper points take the default branch.")
  in
  let preempt_t =
    Arg.(
      value & opt int 2
      & info [ "preempt-bound" ] ~docv:"P"
          ~doc:"Max non-FIFO scheduling choices per run (CHESS-style preemption bound).")
  in
  let schedule_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule-out" ] ~docv:"FILE"
          ~doc:"Write the violating schedule here instead of stdout.")
  in
  let naive_t =
    Arg.(
      value & flag
      & info [ "naive" ]
          ~doc:
            "Disable the sleep-set partial-order reduction and the state cache (explore \
             the raw tree) — for measuring what the reductions save.")
  in
  let frontier_t =
    Arg.(
      value & opt int 64
      & info [ "frontier" ] ~docv:"N"
          ~doc:
            "Parallel partitioning width target. Part of the exploration shape (counts \
             are only comparable at equal frontier), independent of --jobs.")
  in
  Term.(
    ret
      (const (fun pos flag nodes delta writes reads joins quorum drop crash depth preempt
                  out naive frontier jobs eprofile profile_out ->
           resolve_protocol pos flag (fun p ->
               run_check p nodes delta writes reads joins quorum drop crash depth preempt
                 out naive frontier jobs (eprofile || forced_profile) profile_out))
      $ protocol_pos_t $ protocol_flag_t $ nodes_t $ delta_t $ writes_t $ reads_t
      $ joins_t $ quorum_t $ drop_t $ crash_t $ depth_t $ preempt_t $ schedule_out_t
      $ naive_t $ frontier_t $ jobs_t $ eprofile_t $ profile_out_t))

let check_cmd = Cmd.v (Cmd.info "check" ~doc:check_doc) (check_term ~forced_profile:false)

(* profile — the same sweep/hunt/check commands with the engine
   profiler forced on: `dds profile sweep e24 --jobs 4 --profile-out
   p.json` is the canonical way to see where domain time goes. *)

let profile_cmd =
  let doc =
    "Run $(b,sweep), $(b,hunt) or $(b,check) with the engine profiler on: per-domain \
     activity timelines (job/steal/idle/merge spans), per-job GC deltas and simulator \
     phase timers. The summary goes to stderr; $(b,--profile-out FILE) writes a Chrome \
     trace_event JSON (one lane per worker domain) with the summary attached. Results \
     and stdout are identical to the unprofiled commands."
  in
  Cmd.group (Cmd.info "profile" ~doc)
    [
      Cmd.v
        (Cmd.info "sweep" ~doc:"Profiled $(b,dds sweep) (same arguments).")
        (sweep_term ~forced_profile:true);
      Cmd.v
        (Cmd.info "hunt" ~doc:"Profiled $(b,dds hunt) (same arguments).")
        (hunt_term ~forced_profile:true);
      Cmd.v
        (Cmd.info "check" ~doc:"Profiled $(b,dds check) (same arguments).")
        (check_term ~forced_profile:true);
    ]

(* list *)

let run_list () =
  Format.printf "protocols:@.";
  List.iter
    (fun (p : Protocol.t) ->
      Format.printf "  %-5s %s@." p.Protocol.name p.Protocol.doc;
      Format.printf "        %s register; %s%s@."
        (if p.Protocol.atomic then "atomic" else "regular")
        (if p.Protocol.majority then "assumes an active majority; " else "")
        (match p.Protocol.churn_bound ~n:10 ~delta:3 with
        | Some b -> Printf.sprintf "churn bound %.5f/tick at n=10 delta=3" b
        | None -> "no churn bound (static group)"))
    Protocol.all;
  Format.printf "@.sweeps:@.";
  List.iter
    (fun (name, doc) ->
      let alias =
        match List.find_opt (fun (_, s) -> s = name) sweep_aliases with
        | Some (e, _) -> e
        | None -> ""
      in
      Format.printf "  %-12s %-4s %s@." name alias doc)
    sweeps;
  Format.printf "@.wire protocol (runtime frames; v%d..v%d, negotiated in \
                 Hello/Client_hello):@."
    Dds_net.Wire.v1 Dds_net.Wire.max_version;
  Format.printf "  %-12s %3s  %-36s %s@." "frame" "tag" "v1 fields" "v2 fields";
  List.iter
    (fun (name, tag, v1_fields, v2_fields) ->
      Format.printf "  %-12s %3d  %-36s %s@." name tag v1_fields
        (if v1_fields = v2_fields then "(same)" else v2_fields))
    Runix.Frame.catalog;
  `Ok ()

let list_cmd =
  let doc =
    "List the registered protocols (with their theorem metadata), sweeps, and the \
     runtime wire-protocol frame catalog (v1/v2 field layouts)."
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(ret (const run_list $ const ()))

let main_cmd =
  let doc = "regular registers in dynamic distributed systems (Baldoni et al., ICDCS 2009)" in
  Cmd.group
    (Cmd.info "dds" ~version:"1.0.0" ~doc)
    [
      run_cmd;
      analyze_cmd;
      scenario_cmd;
      sweep_cmd;
      inspect_cmd;
      explain_cmd;
      audit_cmd;
      serve_cmd;
      client_cmd;
      load_cmd;
      hunt_cmd;
      check_cmd;
      profile_cmd;
      list_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
