(* Theorem 2, watched live: no regular register in a fully
   asynchronous dynamic system.

     dune exec examples/async_impossibility.exe

   The synchronous protocol is run over a network that ignores its
   delay bound: the writer's broadcasts crawl while everything else is
   fast. Writes keep returning (the writer's wait is a local timer it
   trusts for no-longer-valid reasons), so the register's "last
   written value" races ahead of anything a reader can learn. The
   staleness of reads then grows without bound in the horizon — the
   run is a concrete witness of the impossibility's mechanism: with no
   delay bound, any amount of waiting can expire before the evidence
   arrives. *)

open Dds_workload

let () =
  let rows = Sweep.async_series ~horizons:[ 250; 500; 1000; 2000; 4000; 8000 ] () in
  Report.print (Tables.async_impossibility rows);
  let last = List.nth rows (List.length rows - 1) in
  Format.printf
    "At horizon %d, reads lag %d completed writes behind — and the lag scales@."
    last.Sweep.as_horizon last.Sweep.as_max_staleness;
  Format.printf
    "linearly with the horizon: pick any bound, a long enough run exceeds it.@.";
  Format.printf
    "(The quorum-based protocol fails the other way here: its writes block@.";
  Format.printf
    "forever waiting for acknowledgements. Either safety or liveness must go.)@."
