(* Consensus from regular registers — the paper's motivating
   application, end to end.

     dune exec examples/consensus_demo.exe

   The introduction argues regular registers matter because, paired
   with an eventual leader oracle, they solve consensus in systems
   where consensus is otherwise impossible (Disk Paxos [11], the alpha
   of indulgent consensus [14]). This demo builds that whole tower on
   a *dynamic* system:

     eventually-synchronous regular registers  (Figures 4-6)
       -> an array of k single-writer registers under churn
       -> the alpha abstraction (safe, possibly aborting)
       -> Omega (eventual leader)
       -> consensus.

   Three participants propose different config versions; the system
   churns throughout (participants protected — some process must
   persist for termination, exactly the paper's liveness hypothesis);
   mid-run we crash the current leader anyway to show the takeover. *)

open Dds_sim
open Dds_net
open Dds_alpha

let time = Time.of_int

let () =
  let n = 10 and k = 3 in
  let protected_pids = ref [] in
  let arr =
    Register_array.create ~seed:2024 ~n ~k
      ~delay:(Delay.synchronous ~delta:3)
      ~churn_rate:0.015
      ~protect:(fun pid -> List.exists (Pid.equal pid) !protected_pids)
      ()
  in
  let participants = List.filteri (fun i _ -> i < k) (Register_array.founding arr) in
  (* Protect all participants except the first — we will crash that
     one by hand to demonstrate leader takeover. *)
  protected_pids := List.tl participants;
  let cons = Consensus.create arr ~retry_every:20 () in
  List.iteri
    (fun i pid ->
      Format.printf "%a proposes config v%d@." Pid.pp pid (i + 1);
      Consensus.propose cons pid (i + 1))
    participants;

  let sched = Register_array.scheduler arr in
  let first_leader = List.hd participants in
  ignore
    (Scheduler.schedule_at sched (time 15) (fun () ->
         Format.printf "[t=15] crash! %a (the current leader) leaves mid-attempt@." Pid.pp
           first_leader;
         Register_array.retire arr first_leader));

  Register_array.start_churn arr ~until:(time 800);
  Consensus.start cons ~until:(time 800);
  Scheduler.run_until sched (time 900);

  (match (Consensus.first_decision_at cons, Consensus.decisions cons) with
  | Some t, (_, v) :: _ ->
    Format.printf "@.decided: config v%d, first at %a (attempts: %d)@." v Time.pp t
      (Consensus.attempts_used cons)
  | _ -> Format.printf "@.no decision (every participant left?)@.");
  Format.printf "processes that learned the decision over the run: %d@."
    (Consensus.decided_count cons);
  Format.printf "agreement: %b   validity: %b@." (Consensus.agreement_ok cons)
    (Consensus.validity_ok cons);
  Format.printf
    "(the crashed leader decided nothing; its successor adopted the freshest value@.";
  Format.printf " the registers held — which is how alpha keeps agreement safe.)@."
