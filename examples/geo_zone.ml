(* The radio zone: Section 2.1's join example, running.

     dune exec examples/geo_zone.exe

   "Let us consider the case of mobile nodes in a wireless network.
    The beginning of its join occurs when a process (node) enters the
    geographical zone within which it can receive messages."

   Forty vehicles wander a 100x100 map; a circular radio zone in the
   middle hosts a synchronous regular register (delta = 3). Driving
   into the zone IS the join; driving out IS the leave — churn is not
   a parameter here, it is geometry times speed. The demo runs the
   same world at three speeds and prints what the register
   experiences, including the regime where vehicles cross the zone
   faster than the 3*delta join protocol and simply never manage to
   participate. *)

open Dds_sim
open Dds_geo

let time = Time.of_int

let run speed =
  let cfg = Zone_world.default_config ~seed:5 ~speed in
  let w = Zone_world.create cfg in
  Zone_world.start w ~until:(time 1000);
  Zone_world.start_activity w ~read_rate:1.0 ~write_every:15 ~until:(time 1000);
  Zone_world.run_until w (time 1050);
  let r = Zone_world.regularity w in
  let entries, exits = Zone_world.crossings w in
  let churn = Zone_world.emergent_churn w in
  let bound = 1.0 /. (3.0 *. float_of_int cfg.Zone_world.delta) in
  Format.printf
    "speed %4.1f | zone crossings %4d/%4d | emergent churn %.4f (%.2fx the bound) |@."
    speed entries exits churn (churn /. bound);
  Format.printf
    "           | joins completed %4d | reads served %4d | violations %d | %s@.@."
    r.Dds_spec.Regularity.checked_joins r.Dds_spec.Regularity.checked_reads
    (List.length r.Dds_spec.Regularity.violations)
    (if r.Dds_spec.Regularity.checked_joins = 0 && speed > 0.0 then
       "zone transit < 3*delta: nobody stays long enough to join"
     else if Dds_spec.Regularity.is_ok r then "register regular"
     else "VIOLATED")

let () =
  Format.printf "radio zone radius 25, delta = 3, churn bound 1/(3*delta) = %.4f@.@."
    (1.0 /. 9.0);
  List.iter run [ 1.0; 4.0; 16.0 ];
  Format.printf
    "The paper's c < 1/(3*delta) is, in this world, a speed limit: past it the@.";
  Format.printf
    "zone still teems with vehicles, but none remains in radio range for the@.";
  Format.printf "3*delta ticks a join needs — the register goes silent, never wrong.@."
