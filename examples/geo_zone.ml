(* The radio zone, citywide: Section 2.1's join example at the scale
   of a whole map.

     dune exec examples/geo_zone.exe

   "Let us consider the case of mobile nodes in a wireless network.
    The beginning of its join occurs when a process (node) enters the
    geographical zone within which it can receive messages."

   Part 1 is the original demo: forty vehicles wander a 100x100 map; a
   circular radio zone in the middle hosts a synchronous regular
   register (delta = 3). Driving into the zone IS the join; driving
   out IS the leave — churn is not a parameter, it is geometry times
   speed, and past the paper's c < 1/(3*delta) bound the zone teems
   with vehicles yet none stays long enough to join.

   Part 2 scales the example up with lib/shard: a city does not track
   one datum, it tracks hundreds — road incidents, parking counts,
   rally points — so the measured *emergent* churn of each speed is
   fed into a sharded store: 4 radio zones, each an independent
   n=10 register deployment churning at the measured rate, serving 256
   keys under a zipfian workload (every city has its famous junction)
   with a rush-hour hot-key storm. The paper's single-register theorem
   is applied 4 times, and the per-zone verdicts say where the speed
   limit bites. *)

open Dds_sim
open Dds_net
open Dds_core
open Dds_geo
open Dds_workload
module Sh = Dds_shard.Shard.Make (Deployment.Make (Sync_register))

let time = Time.of_int
let delta = 3
let zones = 4
let keys = 256
let horizon = 1000

(* Part 1: one zone, churn from geometry. *)
let measure speed =
  let cfg = Zone_world.default_config ~seed:5 ~speed in
  let w = Zone_world.create cfg in
  Zone_world.start w ~until:(time horizon);
  Zone_world.start_activity w ~read_rate:1.0 ~write_every:15 ~until:(time horizon);
  Zone_world.run_until w (time (horizon + 50));
  let r = Zone_world.regularity w in
  let entries, exits = Zone_world.crossings w in
  let churn = Zone_world.emergent_churn w in
  let bound = 1.0 /. (3.0 *. float_of_int cfg.Zone_world.delta) in
  Format.printf
    "speed %4.1f | zone crossings %4d/%4d | emergent churn %.4f (%.2fx the bound) |@."
    speed entries exits churn (churn /. bound);
  Format.printf
    "           | joins completed %4d | reads served %4d | violations %d | %s@."
    r.Dds_spec.Regularity.checked_joins r.Dds_spec.Regularity.checked_reads
    (List.length r.Dds_spec.Regularity.violations)
    (if r.Dds_spec.Regularity.checked_joins = 0 && speed > 0.0 then
       "zone transit < 3*delta: nobody stays long enough to join"
     else if Dds_spec.Regularity.is_ok r then "register regular"
     else "VIOLATED");
  churn

(* Part 2: the measured churn drives a 4-zone sharded store. *)
let citywide speed churn =
  let base =
    Deployment.default_config ~seed:5 ~n:10 ~delay:(Delay.synchronous ~delta)
      ~churn_rate:churn
  in
  let store =
    Sh.create { Dds_shard.Shard.shards = zones; keys; base }
      (Sync_register.default_params ~delta)
  in
  (* Zipfian key popularity plus a rush-hour storm on the hottest key
     (the famous junction) in the middle third of the run. *)
  let plan =
    Skew.plan ~rng:(Rng.create ~seed:5)
      {
        (Skew.default ~keys ~s:1.0 ~until:(time horizon)) with
        Skew.write_every = 15;
        storm =
          Some
            {
              Skew.storm_start = time (horizon / 3);
              storm_until = time (2 * horizon / 3);
              storm_bias = 0.5;
            };
      }
  in
  Sh.start_churn store ~until:(time horizon);
  Sh.load store plan;
  Sh.run_until store (time (horizon + (20 * delta)));
  Format.printf "           | citywide store at that churn:";
  List.iter
    (fun (r : Dds_shard.Shard.shard_report) ->
      Format.printf " z%d %d/%d %s" r.Dds_shard.Shard.sr_shard r.Dds_shard.Shard.sr_issued
        r.Dds_shard.Shard.sr_scheduled
        (if Dds_spec.Regularity.is_ok r.Dds_shard.Shard.sr_regularity then "ok"
         else "VIOLATED"))
    (Sh.reports store);
  Format.printf "@.           | %s@.@."
    (if Sh.regular store then
       Printf.sprintf "all %d zones regular at speed %g" zones speed
     else "a zone went irregular — churn past the bound in every zone at once")

let () =
  Format.printf "radio zone radius 25, delta = 3, churn bound 1/(3*delta) = %.4f@.@."
    (1.0 /. 9.0);
  List.iter (fun speed -> citywide speed (measure speed)) [ 1.0; 4.0; 16.0 ];
  Format.printf
    "The paper's c < 1/(3*delta) is, in this world, a speed limit: past it the@.";
  Format.printf
    "zone still teems with vehicles, but none remains in radio range for the@.";
  Format.printf "3*delta ticks a join needs — the register goes silent, never wrong.@.";
  Format.printf
    "Sharding multiplies the theorem, never weakens it: 4 zones serve 256 keys@.";
  Format.printf "and each zone's verdict is the paper's single-register check.@."
