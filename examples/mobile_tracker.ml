(* Mobile convoy tracker: the paper's wireless-network example.

     dune exec examples/mobile_tracker.exe

   Section 2.1 explains the join operation with mobile nodes entering
   a radio zone: a vehicle starts *listening* the moment it is in
   range, and becomes active once its join protocol finishes. Here a
   convoy shares one regular register — the current rally point — over
   a synchronous radio network (known delay bound delta, as in the
   MANET register protocols of Section 6). Vehicles continuously enter
   and leave coverage; the lead vehicle occasionally updates the rally
   point; everyone else reads it locally (the protocol's fast read is
   exactly what a resource-poor mobile node wants).

   The example also shows the one hazard the protocol's delta-wait
   exists for: a vehicle that enters coverage while an update is on
   the air (compare Figure 3). *)

open Dds_sim
open Dds_net
open Dds_spec
open Dds_core

module D = Deployment.Make (Sync_register)

let time = Time.of_int
let delta = 4 (* radio round bound, in ticks *)

let () =
  let cfg =
    {
      (Deployment.default_config ~seed:99 ~n:12 ~delay:(Delay.synchronous ~delta)
         ~churn_rate:0.02)
      with
      Deployment.churn_policy = Dds_churn.Churn.Oldest_first
      (* vehicles cross the zone in arrival order *);
    }
  in
  let d = D.create cfg (Sync_register.default_params ~delta) in
  let sched = D.scheduler d in
  D.start_churn d ~until:(time 500);

  (* The lead vehicle posts a new rally point every 60 ticks. *)
  let rec post t =
    if t <= 500 then begin
      ignore
        (Scheduler.schedule_at sched (time t) (fun () ->
             match D.writer d with
             | Some w ->
               Format.printf "[t=%3d] lead vehicle posts rally point %d@." t ((t / 60) + 1);
               D.write d w
             | None -> ()));
      post (t + 60)
    end
  in
  post 30;

  (* One vehicle enters coverage right behind each update — the
     Figure 3 timing — plus steady background reads. *)
  let rec enter t =
    if t <= 500 then begin
      ignore
        (Scheduler.schedule_at sched (time t) (fun () ->
             let p = D.spawn d in
             Format.printf "[t=%3d] vehicle %a enters coverage (listening)@." t Pid.pp p));
      enter (t + 60)
    end
  in
  enter 31;
  let rec read t =
    if t <= 500 then begin
      ignore
        (Scheduler.schedule_at sched (time t) (fun () ->
             match D.random_idle_active d with Some p -> D.read d p | None -> ()));
      read (t + 7)
    end
  in
  read 12;

  D.run_until d (time 560);

  let h = D.history d in
  let joins = History.completed_joins h in
  let fast_joins =
    List.length
      (List.filter
         (fun (o : History.op) ->
           match o.History.responded with
           | Some r -> Time.diff r o.History.invoked = delta
           | None -> false)
         joins)
  in
  Format.printf "@.vehicles that completed a join : %d@." (List.length joins);
  Format.printf "joins on the fast path (update heard during the wait, no inquiry): %d@."
    fast_joins;
  Format.printf "joins that needed the inquiry round (3*delta = %d ticks): %d@." (3 * delta)
    (List.length joins - fast_joins);
  let report = D.regularity d in
  Format.printf "rally-point consistency: %s@."
    (if Regularity.is_ok report then "regular — nobody ever drove to a stale rally point"
     else "VIOLATED");
  Format.printf "(reads checked: %d, joins checked: %d)@." report.Regularity.checked_reads
    report.Regularity.checked_joins
