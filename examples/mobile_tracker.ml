(* Mobile fleet tracker: the paper's wireless-network example, grown
   from one convoy to a whole fleet.

     dune exec examples/mobile_tracker.exe

   Section 2.1 explains the join operation with mobile nodes entering
   a radio zone: a vehicle starts *listening* the moment it is in
   range, and becomes active once its join protocol finishes. The
   original demo tracked one convoy's rally point in one regular
   register; a dispatch center tracks dozens. Here 24 convoys each own
   one key — their current rally point — in a sharded store of 3 radio
   channels (lib/shard), every channel an independent 12-vehicle
   synchronous register deployment (known delay bound delta, as in the
   MANET register protocols of Section 6) with oldest-first churn:
   vehicles cross coverage in arrival order.

   Dispatch attention is zipfian — the convoy in trouble gets read
   constantly, the quiet ones rarely — and it drifts (rotate_every):
   today's emergency is not tomorrow's. Writes are rally-point
   updates; the protocol's fast local read is exactly what a
   resource-poor mobile node wants, and the delta-wait hazard of
   Figure 3 (a vehicle entering coverage while an update is on the
   air) is now spread across every channel at once. *)

open Dds_sim
open Dds_net
open Dds_spec
open Dds_core
open Dds_workload
module D = Deployment.Make (Sync_register)
module Sh = Dds_shard.Shard.Make (D)

let time = Time.of_int
let delta = 4 (* radio round bound, in ticks *)
let channels = 3
let convoys = 24
let horizon = 500

let () =
  let base =
    {
      (Deployment.default_config ~seed:99 ~n:12 ~delay:(Delay.synchronous ~delta)
         ~churn_rate:0.02)
      with
      Deployment.churn_policy = Dds_churn.Churn.Oldest_first
      (* vehicles cross the zone in arrival order *);
    }
  in
  let store =
    Sh.create
      { Dds_shard.Shard.shards = channels; keys = convoys; base }
      (Sync_register.default_params ~delta)
  in
  (* The dispatch board: zipfian attention over the convoys, one
     rally-point update every 12 ticks somewhere in the fleet, and the
     hot convoy drifting every 100 ticks. *)
  let plan =
    Skew.plan ~rng:(Rng.create ~seed:99)
      {
        (Skew.default ~keys:convoys ~s:1.2 ~until:(time horizon)) with
        Skew.read_rate = 1.5;
        write_every = 12;
        rotate_every = 100;
      }
  in
  Sh.start_churn store ~until:(time horizon);
  Sh.load store plan;
  Sh.run_until store (time (horizon + (20 * delta)));

  Format.printf "fleet      : %d convoys on %d radio channels (n=12 each, delta=%d)@."
    convoys channels delta;
  Format.printf "dispatch   : %d op(s) planned, %d issued, %d skipped (nobody in range)@."
    (Sh.scheduled store) (Sh.issued store) (Sh.skipped store);

  (* Who ended up hot? The top of the key histogram is the convoy the
     dispatcher could not stop watching. *)
  let hist = Skew.key_histogram plan ~keys:convoys in
  let hot = ref 0 in
  Array.iteri (fun k n -> if n > hist.(!hot) then hot := k) hist;
  Format.printf "hot convoy : #%d with %d of %d ops (channel %d)@." !hot hist.(!hot)
    (List.length plan)
    (Sh.route_key store !hot);

  (* Per-channel: joins, Figure-3 fast-path joins, verdict. *)
  List.iter
    (fun (r : Dds_shard.Shard.shard_report) ->
      let s = r.Dds_shard.Shard.sr_shard in
      let h = D.history (Sh.deployment store s) in
      let joins = History.completed_joins h in
      let fast =
        List.length
          (List.filter
             (fun (o : History.op) ->
               match o.History.responded with
               | Some t -> Time.diff t o.History.invoked = delta
               | None -> false)
             joins)
      in
      Format.printf
        "channel %d  : %3d joins (%d heard an update during the wait — the Figure 3 \
         timing; %d needed the full inquiry), %s@."
        s (List.length joins) fast
        (List.length joins - fast)
        (if Regularity.is_ok r.Dds_shard.Shard.sr_regularity then "regular" else "VIOLATED"))
    (Sh.reports store);
  Format.printf "fleet-wide : %s@."
    (if Sh.regular store then
       "regular — nobody ever drove to a stale rally point, on any channel"
     else "VIOLATED");
  Format.printf
    "(one register per convoy, one theorem per channel: sharding the fleet@.";
  Format.printf
    " multiplies the paper's guarantee instead of diluting it.)@."
