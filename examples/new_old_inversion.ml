(* New/old inversion: why this register is regular but not atomic.

     dune exec examples/new_old_inversion.exe

   Reproduces the execution pictured in the paper's introduction: two
   writes w1, w2 and two sequential reads where the *earlier* read
   returns w2's value and the *later* read returns w1's. A regular
   register permits this (each read individually returns the last
   completed or a concurrent write); an atomic register does not. The
   synchronous protocol's purely local reads make the inversion easy
   to exhibit: one replica simply receives the WRITE broadcast later
   than another. *)

open Dds_spec
open Dds_workload

let () =
  let o = Scenario.inversion () in
  Report.print (Tables.inversion o);
  Format.printf "Read values: r1 = %s, r2 = %s@."
    (match o.Scenario.fast_read with
    | Some v -> Format.asprintf "%a" Value.pp v
    | None -> "?")
    (match o.Scenario.slow_read with
    | Some v -> Format.asprintf "%a" Value.pp v
    | None -> "?");
  (match o.Scenario.inversions with
  | [ inv ] ->
    Format.printf
      "The checker found the inversion: a read that finished first returned sn=%d,@."
      inv.Atomicity.first_sn;
    Format.printf "while a read invoked strictly later returned sn=%d.@."
      inv.Atomicity.second_sn
  | _ -> Format.printf "unexpected: inversion count <> 1@.");
  Format.printf
    "Regularity verdict: %b — the history is legal for a regular register,@."
    (Regularity.is_ok o.Scenario.report);
  Format.printf
    "yet not linearizable. This is exactly the gap Lamport's hierarchy describes.@."
