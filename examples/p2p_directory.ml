(* P2P directory: the paper's motivating workload.

     dune exec examples/p2p_directory.exe

   A peer-to-peer overlay (the paper's introduction cites P2P and
   social networks as the systems that motivate the churn model) keeps
   one piece of shared mutable state: the address of the current
   super-peer that coordinates the overlay. Peers come and go
   continuously; no delay bound is credible on the open internet, so
   the overlay runs the *eventually synchronous* protocol: every
   operation is a majority-quorum exchange, correct as long as a
   majority of the n present peers is active (Section 5.2).

   The run has three acts:
     1. calm network (delays within delta),
     2. a congestion storm (delays blow up to `wild` — GST has not
        happened yet),
     3. the network stabilizes (GST passes, delays back under delta).
   Super-peer re-elections (writes) and lookups (reads) run
   throughout; the history is machine-checked at the end. *)

open Dds_sim
open Dds_net
open Dds_spec
open Dds_core

module D = Deployment.Make (Es_register)

let time = Time.of_int
let n = 16
let gst = 700 (* the storm ends here; unknowable to the peers *)

let () =
  (* Before t=300 we keep delays small by scripting the delay model as
     eventually-synchronous with a large pre-GST cap: draws land
     anywhere in [1, wild] during the storm. *)
  let delay = Delay.eventually_synchronous ~gst:(time gst) ~delta:4 ~wild:80 in
  let cfg =
    {
      (Deployment.default_config ~seed:7 ~n ~delay ~churn_rate:0.008) with
      Deployment.churn_policy = Dds_churn.Churn.Uniform;
    }
  in
  let d = D.create cfg (Es_register.default_params ~n) in
  let sched = D.scheduler d in
  D.start_churn d ~until:(time 1400);

  (* Re-elect a super-peer (write) every 120 ticks. *)
  let election = ref 0 in
  let rec elect t =
    if t <= 1400 then begin
      ignore
        (Scheduler.schedule_at sched (time t) (fun () ->
             match D.writer d with
             | Some w -> (
               (* During the storm the previous announcement can still
                  be collecting acknowledgements: skip this round. *)
               match D.node d w with
               | Some node when Es_register.is_active node && not (Es_register.busy node) ->
                 incr election;
                 Format.printf "[t=%4d] election %d: announcing new super-peer@." t !election;
                 D.write d w
               | Some _ | None ->
                 Format.printf "[t=%4d] election postponed: previous announcement in flight@." t)
             | None -> ()));
      elect (t + 120)
    end
  in
  elect 60;

  (* Peers look the super-peer up (read) four times per tick window. *)
  let rec lookup t =
    if t <= 1400 then begin
      ignore
        (Scheduler.schedule_at sched (time t) (fun () ->
             match D.random_idle_active d with Some p -> D.read d p | None -> ()));
      lookup (t + 3)
    end
  in
  lookup 10;

  D.run_until d (time 2200);

  let h = D.history d in
  let lat_of ops invoked_lt =
    let s = Stats.create () in
    List.iter
      (fun (o : History.op) ->
        match o.History.responded with
        | Some r when invoked_lt o -> Stats.add_int s (Time.diff r o.History.invoked)
        | _ -> ())
      ops;
    s
  in
  let reads = History.completed_reads h in
  let storm = lat_of reads (fun o -> Time.to_int o.History.invoked < gst) in
  let calm = lat_of reads (fun o -> Time.to_int o.History.invoked >= gst) in
  Format.printf "@.lookups during the storm : %a@." Stats.pp_summary storm;
  Format.printf "lookups after stabilizing: %a@." Stats.pp_summary calm;
  let report = D.regularity d in
  Format.printf "directory consistency    : %s (%d lookups, %d joins checked)@."
    (if Regularity.is_ok report then "regular — every lookup legal" else "VIOLATED")
    report.Regularity.checked_reads report.Regularity.checked_joins;
  Format.printf "peers that passed through the overlay: %d@."
    (List.length (Dds_churn.Membership.records (D.membership d)))
