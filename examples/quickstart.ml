(* Quickstart: a regular register shared by a churning system.

     dune exec examples/quickstart.exe

   Builds a 10-process synchronous system (delay bound delta = 3),
   starts constant churn at c = 0.03 — about one process replaced
   every three ticks — writes a few values, reads from random active
   processes, and machine-checks the whole history against the
   regular-register specification. *)

open Dds_sim
open Dds_net
open Dds_spec
open Dds_core

module D = Deployment.Make (Sync_register)

let time = Time.of_int

let () =
  let delta = 3 in
  let cfg =
    Deployment.default_config ~seed:2024 ~n:10 ~delay:(Delay.synchronous ~delta)
      ~churn_rate:0.03
  in
  let d = D.create cfg (Sync_register.default_params ~delta) in
  let sched = D.scheduler d in

  (* Processes keep joining and leaving for the first 300 ticks. *)
  D.start_churn d ~until:(time 300);

  (* The designated writer updates the register every 40 ticks... *)
  let rec write_at t =
    if t <= 300 then begin
      ignore
        (Scheduler.schedule_at sched (time t) (fun () ->
             match D.writer d with Some w -> D.write d w | None -> ()));
      write_at (t + 40)
    end
  in
  write_at 20;

  (* ...while random active processes read every 10 ticks. *)
  let rec read_at t =
    if t <= 300 then begin
      ignore
        (Scheduler.schedule_at sched (time t) (fun () ->
             match D.random_idle_active d with
             | Some p ->
               D.read d p;
               (* Reads are local in the synchronous protocol, so the
                  result is already in the history; show the latest. *)
               (match List.rev (History.completed_reads (D.history d)) with
               | { History.kind = History.Read (Some v); pid; _ } :: _ ->
                 Format.printf "[t=%3d] %a read  %a@." t Pid.pp pid Value.pp v
               | _ -> ())
             | None -> ()));
      read_at (t + 10)
    end
  in
  read_at 15;

  D.run_until d (time 350);

  (* Machine-check the run against the Section 2.2 specification. *)
  let report = D.regularity d in
  Format.printf "@.%d reads and %d joins checked: %s@." report.Regularity.checked_reads
    report.Regularity.checked_joins
    (if Regularity.is_ok report then "every value was legal (regular register)"
     else "VIOLATIONS FOUND");
  Format.printf "processes seen over the run: %d (constant size %d)@."
    (List.length (Dds_churn.Membership.records (D.membership d)))
    (D.config d).Deployment.n
