open Dds_net

type outcome = Commit of int | Abort of string

let pp_outcome ppf = function
  | Commit v -> Format.fprintf ppf "commit(%d)" v
  | Abort why -> Format.fprintf ppf "abort(%s)" why

let round_for ~participant_index ~attempt ~k = (attempt * k) + participant_index + 1

(* Reads every register in parallel (k distinct protocol nodes of
   [self]), continuing once all have answered. *)
let read_all t ~self ~k:cont =
  let kk = Register_array.k t in
  let results = Array.make kk Codec.bottom in
  let remaining = ref kk in
  for reg = 0 to kk - 1 do
    Register_array.read t ~self ~reg ~k:(fun record ->
        results.(reg) <- record;
        decr remaining;
        if !remaining = 0 then cont results)
  done

let interference ~round ~check_lrww records =
  let found = ref None in
  Array.iteri
    (fun reg (r : Codec.record) ->
      if !found = None then
        if r.Codec.lre > round then
          found := Some (Printf.sprintf "reg %d saw round %d (lre)" reg r.Codec.lre)
        else if check_lrww && r.Codec.lrww > round then
          found := Some (Printf.sprintf "reg %d saw round %d (lrww)" reg r.Codec.lrww))
    records;
  !found

let adopt ~fallback records =
  let best =
    Array.fold_left
      (fun acc (r : Codec.record) ->
        match acc with
        | Some (b : Codec.record) when b.Codec.lrww >= r.Codec.lrww -> acc
        | _ -> Some r)
      None records
  in
  match best with
  | Some r when r.Codec.lrww > 0 -> r.Codec.v
  | Some _ | None -> fallback

let propose t ~self ~self_reg ~round ~value ~k:cont =
  if value <= 0 || value >= Codec.field_max then
    invalid_arg "Alpha.propose: value must be in (0, Codec.field_max)";
  if round <= 0 || round >= Codec.field_max then
    invalid_arg "Alpha.propose: round outside the codec's range";
  if not (Pid.equal self (Register_array.owner t ~reg:self_reg)) then
    invalid_arg "Alpha.propose: self must own self_reg";
  (* Step 1: announce the round, preserving our last written value. *)
  let own = Register_array.snapshot_own t ~self ~reg:self_reg in
  Register_array.write t ~self ~reg:self_reg
    ~record:{ own with Codec.lre = round }
    ~k:(fun () ->
      (* Step 2-3: scan for interference, adopt the freshest value. *)
      read_all t ~self ~k:(fun records ->
          match interference ~round ~check_lrww:true records with
          | Some why -> cont (Abort why)
          | None ->
            let adopted = adopt ~fallback:value records in
            (* Step 4: write the adopted value at our round. *)
            Register_array.write t ~self ~reg:self_reg
              ~record:{ Codec.lre = round; lrww = round; v = adopted }
              ~k:(fun () ->
                (* Step 5-6: confirm nobody moved past us meanwhile. *)
                read_all t ~self ~k:(fun records2 ->
                    match interference ~round ~check_lrww:false records2 with
                    | Some why -> cont (Abort why)
                    | None -> cont (Commit adopted)))))
