open Dds_net

(** The alpha of indulgent consensus, over regular registers.

    Guerraoui & Raynal's alpha abstraction (the paper's reference
    [14]; the register-based construction follows Gafni & Lamport's
    Disk Paxos [11]) provides [propose (round, value)] with:

    - {b validity}: a commit returns a proposed value;
    - {b agreement}: no two commits return different values;
    - {b conditional convergence}: a propose that runs with a round
      higher than every concurrent one, alone, commits.

    Crucially it is safe with {e regular} (not atomic) registers —
    which is exactly why the paper's introduction presents regular
    registers as a consensus-capable abstraction for dynamic systems.

    The construction: participant [i] owns register [i] holding
    [{lre; lrww; v}] (see {!Codec}). A propose by the owner of
    register [self_reg] with round [r]:

    + writes [{lre = r}] to its register (announcing the round);
    + reads all registers; aborts if any shows [lre > r] or
      [lrww > r] (someone moved past us);
    + adopts the value of the highest [lrww] (its own proposal if all
      are ⊥);
    + writes [{lre = r; lrww = r; v = adopted}];
    + reads all registers again; aborts if any [lre > r];
    + commits the adopted value.

    Rounds used by distinct participants must be disjoint
    ({!round_for} gives the canonical scheme) and each participant's
    rounds must increase. *)

type outcome =
  | Commit of int  (** the decided-able value *)
  | Abort of string  (** a higher round interfered; the reason names it *)

val round_for : participant_index:int -> attempt:int -> k:int -> int
(** Disjoint, increasing round numbers: [attempt * k + participant_index + 1]
    (rounds start at 1 so that round 0 means "never entered"). *)

val propose :
  Register_array.t ->
  self:Pid.t ->
  self_reg:int ->
  round:int ->
  value:int ->
  k:(outcome -> unit) ->
  unit
(** Runs one alpha attempt. [self] must own register [self_reg]; the
    continuation fires when the attempt resolves (never, if [self]
    leaves mid-attempt — the register operations die with it).
    @raise Invalid_argument if [value] is 0 (reserved for ⊥) or
    outside the codec's field range, or if [self] does not own
    [self_reg]. *)

val pp_outcome : Format.formatter -> outcome -> unit
