type record = { lre : int; lrww : int; v : int }

let bottom = { lre = 0; lrww = 0; v = 0 }
let bits = 20
let field_max = 1 lsl bits

let check name x =
  if x < 0 || x >= field_max then
    invalid_arg (Printf.sprintf "Codec.pack: %s = %d outside [0, 2^%d)" name x bits)

let pack r =
  check "lre" r.lre;
  check "lrww" r.lrww;
  check "v" r.v;
  (r.lre lsl (2 * bits)) lor (r.lrww lsl bits) lor r.v

let unpack x =
  if x < 0 then invalid_arg "Codec.unpack: negative input";
  let mask = field_max - 1 in
  { lre = (x lsr (2 * bits)) land mask; lrww = (x lsr bits) land mask; v = x land mask }

let pp ppf r = Format.fprintf ppf "{lre=%d; lrww=%d; v=%d}" r.lre r.lrww r.v
