(** Packing alpha records into register values.

    The registers store [int] data; the alpha abstraction needs each
    register to hold a triple: the owner's last round entered ([lre]),
    the last round in which it wrote a value ([lrww]), and that value
    ([v], where 0 encodes the "no value yet" ⊥). The triple is packed
    into one non-negative 60-bit integer, 20 bits per field. *)

type record = {
  lre : int;  (** last round entered; [0 <= lre < 2^20] *)
  lrww : int;  (** last round with a write; [0 <= lrww < 2^20] *)
  v : int;  (** adopted value; [0] is ⊥; [0 <= v < 2^20] *)
}

val bottom : record
(** [{ lre = 0; lrww = 0; v = 0 }] — every register's initial state. *)

val field_max : int
(** Exclusive upper bound on each field ([2^20]). *)

val pack : record -> int
(** @raise Invalid_argument if any field is outside [\[0, field_max)]. *)

val unpack : int -> record
(** Inverse of {!pack}.
    @raise Invalid_argument on negative input. *)

val pp : Format.formatter -> record -> unit
