open Dds_sim
open Dds_net
open Dds_churn

type t = {
  arr : Register_array.t;
  participants : Pid.t array;  (** index = register owned *)
  proposals : int Pid.Table.t;
  decisions : int Pid.Table.t;
  decide_net : int Network.t;
  mutable attached : Pid.Set.t;
  attempts : int array;  (** per participant *)
  in_flight : bool array;
  retry_every : int;
  mutable total_attempts : int;
  mutable first_decision : Time.t option;
  mutable stopped : bool;
}

let membership t = Register_array.membership t.arr

let learn t pid v =
  if not (Pid.Table.mem t.decisions pid) then begin
    if t.first_decision = None then
      t.first_decision <- Some (Scheduler.now (Register_array.scheduler t.arr));
    Pid.Table.replace t.decisions pid v
  end

(* Keeps the DECIDE channel's attachment in sync with the system
   composition: newcomers can receive announcements from the moment
   they enter (listening mode), leavers stop existing. *)
let sync_channel t =
  let present = Pid.Set.of_list (Membership.present (membership t)) in
  Pid.Set.iter
    (fun pid ->
      if not (Pid.Set.mem pid t.attached) then
        Network.attach t.decide_net pid (fun ~src:_ v -> learn t pid v))
    present;
  Pid.Set.iter
    (fun pid -> if not (Pid.Set.mem pid present) then Network.detach t.decide_net pid)
    t.attached;
  t.attached <- present

let create arr ?(retry_every = 25) () =
  let participants = Array.of_list (Register_array.founding arr) in
  let participants = Array.sub participants 0 (Register_array.k arr) in
  let t =
    {
      arr;
      participants;
      proposals = Pid.Table.create 8;
      decisions = Pid.Table.create 64;
      decide_net =
        Network.create ~sched:(Register_array.scheduler arr)
          ~rng:(Rng.split (Register_array.rng arr))
          ~delay:(Delay.synchronous ~delta:3)
          ~pp_msg:(fun ppf v -> Format.fprintf ppf "DECIDE(%d)" v)
          ();
      attached = Pid.Set.empty;
      attempts = Array.make (Register_array.k arr) 0;
      in_flight = Array.make (Register_array.k arr) false;
      retry_every;
      total_attempts = 0;
      first_decision = None;
      stopped = false;
    }
  in
  sync_channel t;
  Register_array.on_membership_change arr (fun () -> sync_channel t);
  t

let participant_index t pid =
  let found = ref None in
  Array.iteri (fun i p -> if Pid.equal p pid && !found = None then found := Some i)
    t.participants;
  !found

let propose t pid value =
  if value <= 0 || value >= Codec.field_max then
    invalid_arg "Consensus.propose: value out of range";
  (match participant_index t pid with
  | None -> invalid_arg "Consensus.propose: not a participant"
  | Some _ -> ());
  if Pid.Table.mem t.proposals pid then
    invalid_arg "Consensus.propose: already proposed";
  Pid.Table.replace t.proposals pid value

let announce t leader =
  match Pid.Table.find_opt t.decisions leader with
  | Some v -> Network.broadcast t.decide_net ~src:leader v
  | None -> ()

let try_attempt t leader index =
  match Pid.Table.find_opt t.proposals leader with
  | None -> () (* a leader with nothing to propose stays quiet *)
  | Some value ->
    if
      (not t.in_flight.(index))
      && Register_array.is_active t.arr leader
      && not (Register_array.busy t.arr ~self:leader ~reg:index)
    then begin
      t.in_flight.(index) <- true;
      t.attempts.(index) <- t.attempts.(index) + 1;
      t.total_attempts <- t.total_attempts + 1;
      let round =
        Alpha.round_for ~participant_index:index ~attempt:t.attempts.(index)
          ~k:(Register_array.k t.arr)
      in
      Alpha.propose t.arr ~self:leader ~self_reg:index ~round ~value ~k:(fun outcome ->
          t.in_flight.(index) <- false;
          match outcome with
          | Alpha.Commit v ->
            learn t leader v;
            announce t leader
          | Alpha.Abort _ -> ())
    end

let tick t () =
  if not t.stopped then begin
    match Omega.leader (membership t) ~participants:(Array.to_list t.participants) with
    | None -> () (* every participant left: no termination possible *)
    | Some leader -> (
      match participant_index t leader with
      | None -> ()
      | Some index ->
        if Pid.Table.mem t.decisions leader then announce t leader
        else try_attempt t leader index)
  end

let start t ~until =
  let sched = Register_array.scheduler t.arr in
  let rec schedule time =
    if Time.(time <= until) then begin
      ignore (Scheduler.schedule_at sched time (tick t));
      schedule (Time.add time t.retry_every)
    end
  in
  schedule (Time.add (Scheduler.now sched) 1)

let decision_of t pid = Pid.Table.find_opt t.decisions pid

let decisions t =
  Pid.Table.fold (fun pid v acc -> (pid, v) :: acc) t.decisions []
  |> List.sort (fun (a, _) (b, _) -> Pid.compare a b)

let decided_count t = Pid.Table.length t.decisions

let agreement_ok t =
  match decisions t with
  | [] -> true
  | (_, first) :: rest -> List.for_all (fun (_, v) -> v = first) rest

let validity_ok t =
  let proposed = Pid.Table.fold (fun _ v acc -> v :: acc) t.proposals [] in
  List.for_all (fun (_, v) -> List.mem v proposed) (decisions t)

let attempts_used t = t.total_attempts
let first_decision_at t = t.first_decision
