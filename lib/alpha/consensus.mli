open Dds_sim
open Dds_net

(** Indulgent consensus from regular registers + Omega.

    The paper's introduction motivates regular registers partly by
    this construction (references [11] and [14]): with an eventual
    leader oracle, a register-based alpha yields consensus in systems
    where consensus is otherwise impossible. This module closes the
    loop over the dynamic register array:

    - every {e participant} (the [k] register owners) may propose a
      value;
    - a periodic driver lets whoever Omega currently designates run
      alpha attempts with its own (ever-increasing, per-participant
      disjoint) rounds;
    - a committed value is {e decided} and disseminated on a dedicated
      DECIDE channel, re-announced so later joiners learn it too.

    Safety (agreement + validity) comes from alpha alone — it holds
    even while Omega flaps or churn removes leaders mid-attempt.
    Termination needs the usual indulgent conditions: some participant
    eventually stays, and the register operations themselves terminate
    (a perpetual active majority, Section 5.2). *)

type t

val create : Register_array.t -> ?retry_every:int -> unit -> t
(** Wraps an array whose [k] register owners are the participants.
    [retry_every] (default 25 ticks) paces leader attempts and DECIDE
    re-announcements. Attaches the DECIDE channel to every present
    process and tracks membership changes. *)

val propose : t -> Pid.t -> int -> unit
(** Participant [pid] proposes a value in [(0, Codec.field_max)].
    @raise Invalid_argument if [pid] is not a participant, already
    proposed, or the value is out of range. *)

val start : t -> until:Time.t -> unit
(** Schedules the leader driver. *)

val decision_of : t -> Pid.t -> int option

val decisions : t -> (Pid.t * int) list
(** Every process (participant or not) that has learned the decision. *)

val decided_count : t -> int

val agreement_ok : t -> bool
(** No two processes decided differently (vacuously true if none). *)

val validity_ok : t -> bool
(** Every decided value was proposed. *)

val attempts_used : t -> int
(** Total alpha attempts launched (1 in a stable run; more under
    leader flapping). *)

val first_decision_at : t -> Time.t option
(** When the first process decided. *)
