open Dds_net
open Dds_churn

let leader membership ~participants =
  participants
  |> List.filter (Membership.is_present membership)
  |> List.sort Pid.compare
  |> function
  | [] -> None
  | first :: _ -> Some first

let is_leader membership ~participants pid =
  match leader membership ~participants with
  | Some l -> Pid.equal l pid
  | None -> false
