open Dds_net
open Dds_churn

(** The Omega leader oracle.

    Indulgent consensus (the paper's introduction, via Guerraoui-Raynal
    [14] and Gafni-Lamport [11]) pairs a safe-but-possibly-aborting
    agreement abstraction (alpha) with an {e eventual leader} oracle:
    all processes eventually trust the same non-departed participant.
    In a dynamic system the natural oracle is "the smallest-identity
    participant still present": once churn spares some participant
    long enough, every query converges on it. This module is the
    oracle as an abstraction — queries read the membership directly,
    which is the customary simulation stand-in for a failure-detector
    implementation (the protocol layered on top may only call
    {!leader}, never inspect membership itself). *)

val leader : Membership.t -> participants:Pid.t list -> Pid.t option
(** The smallest participant still present (joining or active), or
    [None] when every participant has left — in which case no leader
    will ever emerge and consensus cannot terminate. *)

val is_leader : Membership.t -> participants:Pid.t list -> Pid.t -> bool
