open Dds_sim
open Dds_net
open Dds_churn
open Dds_spec
open Dds_core

type process = {
  pid : Pid.t;
  mutable nodes : Es_register.node array;
  mutable joins_done : int;
  mutable pending : (int * History.op_id) list;  (** (register, op) in flight *)
}

type t = {
  sched : Scheduler.t;
  layer_rng : Rng.t;
  churn_rng : Rng.t;
  k : int;
  n : int;
  churn_rate : float;
  churn_policy : Churn.leave_policy;
  protect : Pid.t -> bool;
  nets : Es_register.msg Network.t array;
  membership : Membership.t;
  histories : History.t array;
  processes : process Pid.Table.t;
  pid_gen : Pid.gen;
  mutable founding : Pid.t list;
  mutable churn : Churn.t option;
  mutable on_change : (unit -> unit) list;
}

let k t = t.k
let scheduler t = t.sched
let membership t = t.membership
let rng t = t.layer_rng
let founding t = t.founding
let histories t = t.histories

let owner t ~reg =
  if reg < 0 || reg >= t.k then invalid_arg "Register_array.owner: no such register";
  List.nth t.founding reg

let notify t = List.iter (fun f -> f ()) t.on_change
let on_membership_change t f = t.on_change <- t.on_change @ [ f ]
let is_present t pid = Membership.is_present t.membership pid
let is_active t pid = Membership.is_active t.membership pid
let now t = Scheduler.now t.sched

let proc t pid ~op =
  match Pid.Table.find_opt t.processes pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Register_array.%s: unknown process" op)

(* Brings one process up: one protocol node per register, active once
   every join has returned. Founding members (initial = Some v) skip
   the join protocol — their nodes activate synchronously. *)
let add_process t pid ~initial =
  let joins = Array.make t.k None in
  let p = { pid; nodes = [||]; joins_done = 0; pending = [] } in
  Membership.add t.membership pid ~now:(now t);
  if initial = None then
    for reg = 0 to t.k - 1 do
      let op = History.begin_join t.histories.(reg) pid ~now:(now t) in
      joins.(reg) <- Some op;
      p.pending <- (reg, op) :: p.pending
    done;
  Pid.Table.replace t.processes pid p;
  let make_node reg =
    let on_active value =
      (match joins.(reg) with
      | Some op when Membership.is_present t.membership pid ->
        History.end_join t.histories.(reg) op ~now:(now t) value;
        p.pending <- List.filter (fun entry -> entry <> (reg, op)) p.pending
      | Some _ | None -> ());
      p.joins_done <- p.joins_done + 1;
      if p.joins_done = t.k && Membership.is_present t.membership pid then begin
        Membership.set_active t.membership pid ~now:(now t);
        notify t
      end
    in
    Es_register.create ~rt:(Dds_runtime.Runtime.of_sim ~sched:t.sched ~net:t.nets.(reg))
      ~params:(Es_register.default_params ~n:t.n)
      ~pid ~initial ~on_active
  in
  p.nodes <- Array.init t.k make_node;
  p

let create ~seed ~n ~k ~delay ~churn_rate ?(churn_policy = Churn.Uniform)
    ?(protect = fun _ -> false) () =
  if k < 1 then invalid_arg "Register_array.create: k must be >= 1";
  if k > n then invalid_arg "Register_array.create: k must be <= n";
  let root = Rng.create ~seed in
  let net_rng = Rng.split root in
  let churn_rng = Rng.split root in
  let layer_rng = Rng.split root in
  let sched = Scheduler.create () in
  let membership = Membership.create () in
  let nets =
    Array.init k (fun _ ->
        Network.create ~sched ~rng:(Rng.split net_rng) ~delay ~pp_msg:Es_register.pp_msg ())
  in
  let initial_value = Value.initial (Codec.pack Codec.bottom) in
  let histories = Array.init k (fun _ -> History.create ~initial:initial_value) in
  let t =
    {
      sched;
      layer_rng;
      churn_rng;
      k;
      n;
      churn_rate;
      churn_policy;
      protect;
      nets;
      membership;
      histories;
      processes = Pid.Table.create 64;
      pid_gen = Pid.generator ();
      founding = [];
      churn = None;
      on_change = [];
    }
  in
  for _ = 1 to n do
    let pid = Pid.fresh t.pid_gen in
    t.founding <- t.founding @ [ pid ];
    ignore (add_process t pid ~initial:(Some initial_value))
  done;
  t

let spawn t =
  let pid = Pid.fresh t.pid_gen in
  ignore (add_process t pid ~initial:None);
  notify t;
  pid

let retire t pid =
  let p = proc t pid ~op:"retire" in
  Array.iter Es_register.leave p.nodes;
  List.iter (fun (reg, op) -> History.abort t.histories.(reg) op) p.pending;
  p.pending <- [];
  Membership.remove t.membership pid ~now:(now t);
  Pid.Table.remove t.processes pid;
  notify t

let start_churn t ~until =
  let churn =
    Churn.create ~sched:t.sched ~rng:t.churn_rng ~membership:t.membership ~n:t.n
      ~rate:t.churn_rate ~policy:t.churn_policy ~protect:t.protect
      ~spawn:(fun () -> ignore (spawn t))
      ~retire:(fun pid -> retire t pid)
      ()
  in
  Churn.start churn ~until;
  t.churn <- Some churn

let read t ~self ~reg ~k:cont =
  let p = proc t self ~op:"read" in
  let op = History.begin_read t.histories.(reg) self ~now:(now t) in
  p.pending <- (reg, op) :: p.pending;
  Es_register.read p.nodes.(reg) ~k:(fun value ->
      History.end_read t.histories.(reg) op ~now:(now t) value;
      p.pending <- List.filter (fun entry -> entry <> (reg, op)) p.pending;
      cont (Codec.unpack value.Value.data))

let write t ~self ~reg ~record ~k:cont =
  if not (Pid.equal self (owner t ~reg)) then
    invalid_arg "Register_array.write: only the register's owner may write";
  let p = proc t self ~op:"write" in
  let data = Codec.pack record in
  let guess =
    match Es_register.snapshot p.nodes.(reg) with
    | Some v when not (Value.is_bottom v) -> Value.make ~data ~sn:(v.Value.sn + 1)
    | Some _ | None -> Value.make ~data ~sn:0
  in
  let op = History.begin_write t.histories.(reg) self ~now:(now t) guess in
  p.pending <- (reg, op) :: p.pending;
  Es_register.write p.nodes.(reg) data ~k:(fun value ->
      History.end_write t.histories.(reg) op ~now:(now t) value;
      p.pending <- List.filter (fun entry -> entry <> (reg, op)) p.pending;
      cont ())

let snapshot_own t ~self ~reg =
  let p = proc t self ~op:"snapshot_own" in
  match Es_register.snapshot p.nodes.(reg) with
  | Some v -> Codec.unpack v.Value.data
  | None -> Codec.bottom

let busy t ~self ~reg =
  let p = proc t self ~op:"busy" in
  Es_register.busy p.nodes.(reg)
