open Dds_sim
open Dds_net
open Dds_churn
open Dds_spec

(** An array of [k] regular registers shared by one dynamic system.

    The alpha abstraction needs one single-writer register per
    participant; this module composes [k] independent instances of the
    eventually-synchronous protocol over one scheduler, one membership
    and one churn engine — each register has its own network (message
    spaces never mix) and each process runs [k] protocol nodes, one
    per register. A process is {e active} once all [k] of its joins
    have returned; operations on different registers by the same
    process may run in parallel (they are different nodes), while each
    single register keeps the one-op-at-a-time discipline.

    Register [j]'s designated writer is founding member [j] (so
    [k <= n] at creation); everyone may read. This is exactly the
    régime footnote 1 permits. *)

type t

val create :
  seed:int ->
  n:int ->
  k:int ->
  delay:Delay.t ->
  churn_rate:float ->
  ?churn_policy:Churn.leave_policy ->
  ?protect:(Pid.t -> bool) ->
  unit ->
  t
(** [n] founding processes, [k] registers, all initialized to the
    codec's ⊥ packing.
    @raise Invalid_argument if [k < 1] or [k > n]. *)

val k : t -> int

val scheduler : t -> Scheduler.t

val membership : t -> Membership.t

val rng : t -> Rng.t
(** A stream reserved for layers built on top (leader retry jitter). *)

val founding : t -> Pid.t list
(** The [n] founding members, ascending; the first [k] own registers. *)

val owner : t -> reg:int -> Pid.t
(** Register [reg]'s designated writer (founding member [reg]). *)

val start_churn : t -> until:Time.t -> unit

val is_active : t -> Pid.t -> bool
(** All [k] joins returned and the process has not left. *)

val is_present : t -> Pid.t -> bool

val spawn : t -> Pid.t
(** One new process enters and joins all [k] registers. *)

val retire : t -> Pid.t -> unit

val read : t -> self:Pid.t -> reg:int -> k:(Codec.record -> unit) -> unit
(** Reads register [reg] from [self]'s replica set. The continuation
    never fires if [self] leaves first.
    @raise Invalid_argument if [self] is not active or that register
    node is busy. *)

val write : t -> self:Pid.t -> reg:int -> record:Codec.record -> k:(unit -> unit) -> unit
(** Writes [record] to register [reg]. Must only be called with
    [self = owner t ~reg]; writes are then never concurrent.
    @raise Invalid_argument if [self] is not the owner, not active, or
    the register node is busy. *)

val snapshot_own : t -> self:Pid.t -> reg:int -> Codec.record
(** The owner's local copy of its own register — always its latest
    write (it applies locally before broadcasting), so the alpha can
    preserve its own [lrww]/[v] without a read round. *)

val busy : t -> self:Pid.t -> reg:int -> bool

val on_membership_change : t -> (unit -> unit) -> unit
(** Registers a callback invoked after every spawn/retire — layers use
    it to attach control-plane handlers for newcomers. *)

val histories : t -> History.t array
(** Per-register operation histories (for checking each register's
    regularity independently). *)
