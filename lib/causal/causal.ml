open Dds_sim

type seg_kind = Compute | Transit | Quorum | Timer | Retry

let seg_kind_to_string = function
  | Compute -> "compute"
  | Transit -> "transit"
  | Quorum -> "quorum"
  | Timer -> "timer"
  | Retry -> "retry"

let all_seg_kinds = [ Compute; Transit; Quorum; Timer; Retry ]

type segment = {
  g_kind : seg_kind;
  g_from : Time.t;
  g_to : Time.t;
  g_node : int;
  g_src : int;
  g_msg : string;
}

let seg_dur g = Time.diff g.g_to g.g_from

type straggler = {
  st_node : int;
  st_msg : string;
  st_have : int;
  st_need : int;
  st_wait : int;
  st_at : Time.t;
}

type attribution = {
  a_span : int;
  a_node : int;
  a_op : Event.op_kind;
  a_outcome : Event.outcome;
  a_started : Time.t;
  a_ended : Time.t;
  a_latency : int;
  a_compute : int;
  a_transit : int;
  a_quorum : int;
  a_timer : int;
  a_retry : int;
  a_hops : int;
  a_segments : segment list;
  a_straggler : straggler option;
}

let phase_total a = function
  | Compute -> a.a_compute
  | Transit -> a.a_transit
  | Quorum -> a.a_quorum
  | Timer -> a.a_timer
  | Retry -> a.a_retry

type phase_agg = { pa_kind : seg_kind; pa_p50 : int; pa_p99 : int; pa_max : int }

type op_agg = {
  og_op : Event.op_kind;
  og_count : int;
  og_lat_p50 : int;
  og_lat_p99 : int;
  og_lat_max : int;
  og_phases : phase_agg list;
}

type report = {
  r_ops : attribution list;
  r_aggregate : op_agg list;
  r_bound : int option;
  r_over_bound : attribution list;
  r_orphans : int list;
  r_events : int;
}

(* ------------------------------------------------------------------ *)
(* Happens-before DAG *)

(* Which process an event "belongs to" for process-order chaining.
   [-1] means no process chain (global marks). *)
let proc_of (ev : Event.t) =
  match ev with
  | Node_join { node } | Node_leave { node } | Node_crash { node } -> node
  | Send { src; _ } -> src
  | Deliver { dst; _ } -> dst
  | Drop { dst; _ } -> dst
  | Op_start { node; _ } | Op_phase { node; _ } | Op_end { node; _ }
  | Quorum_progress { node; _ } ->
    node
  | Fault_injected { src; _ } -> src
  | Gst_reached | Violation _ -> -1

type dag = {
  evs : Event.stamped array;
  prev : int array;  (* same-process predecessor index, -1 at chain heads *)
  send_of : int array;  (* for a Deliver, its Send's index; -1 otherwise *)
}

let build evs =
  let arr = Array.of_list evs in
  let n = Array.length arr in
  let prev = Array.make n (-1) in
  let send_of = Array.make n (-1) in
  let last : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* (src, lamport) identifies a transmission: per-process send stamps
     strictly increase, and a Deliver echoes its Send's stamp in
     [sent]. Duplicated deliveries (the nemesis dup fault) both map to
     the one Send, which is the correct causal edge for each copy. *)
  let sends : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  for i = 0 to n - 1 do
    let ev = arr.(i).Event.ev in
    let p = proc_of ev in
    if p >= 0 then begin
      (match Hashtbl.find_opt last p with Some j -> prev.(i) <- j | None -> ());
      Hashtbl.replace last p i
    end;
    match ev with
    | Event.Send { src; lamport; _ } -> Hashtbl.replace sends (src, lamport) i
    | Event.Deliver { src; sent; _ } -> (
      match Hashtbl.find_opt sends (src, sent) with
      | Some j -> send_of.(i) <- j
      | None -> ())
    | _ -> ()
  done;
  { evs = arr; prev; send_of }

(* The gating chain from Op_start to Op_end. Forward pass: mark
   everything causally reachable from Op_start inside the index range
   (both edge kinds point forward in emission order, so one scan
   suffices). Backward pass: from Op_end, prefer the message edge at a
   Deliver — arrival is what released the handler — falling back to
   the process edge, which is necessarily reachable whenever the
   message edge is not (reachability had to come from somewhere).
   Indices strictly decrease, so the walk terminates at Op_start. *)
let critical_path dag ~start_idx ~end_idx =
  let base = start_idx in
  let m = end_idx - start_idx + 1 in
  let reach = Array.make m false in
  reach.(0) <- true;
  for i = start_idx + 1 to end_idx do
    let via_proc =
      let p = dag.prev.(i) in
      p >= base && reach.(p - base)
    in
    let via_msg =
      let s = dag.send_of.(i) in
      s >= base && s < i && reach.(s - base)
    in
    reach.(i - base) <- via_proc || via_msg
  done;
  if not reach.(end_idx - base) then None
  else begin
    let rec walk i acc =
      if i = start_idx then i :: acc
      else begin
        let s = dag.send_of.(i) in
        if s >= base && s < i && reach.(s - base) then walk s (i :: acc)
        else walk dag.prev.(i) (i :: acc)
      end
    in
    Some (walk end_idx [])
  end

(* ------------------------------------------------------------------ *)
(* Segments *)

let coalesce segs =
  List.fold_left
    (fun acc g ->
      match acc with
      | h :: t when h.g_kind = g.g_kind && h.g_kind <> Transit && h.g_node = g.g_node ->
        { h with g_to = g.g_to } :: t
      | _ -> g :: acc)
    [] segs
  |> List.rev

let raw_segments dag path =
  let seg_of a b =
    let ta = dag.evs.(a).Event.at and eb = dag.evs.(b) in
    let tb = eb.Event.at in
    if dag.send_of.(b) = a then begin
      match eb.Event.ev with
      | Event.Deliver { src; dst; kind; _ } ->
        { g_kind = Transit; g_from = ta; g_to = tb; g_node = dst; g_src = src; g_msg = kind }
      | _ -> assert false
    end
    else begin
      let node = proc_of eb.Event.ev in
      let k = if Time.diff tb ta = 0 then Compute else Timer in
      { g_kind = k; g_from = ta; g_to = tb; g_node = node; g_src = -1; g_msg = "" }
    end
  in
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (seg_of a b :: acc) rest
    | _ -> List.rev acc
  in
  coalesce (go [] path)

(* Relabelling windows split segments at their bounds, so the
   partition stays exact: sub-segment durations still telescope to
   the span latency. Half-open [lo, hi) intervals throughout — the
   quorum wait "first ack at t1 to k-th at tk" weighs tk - t1. *)
let relabel segs ~qwins ~rwins =
  if qwins = [] && rwins = [] then segs
  else begin
    let bounds =
      List.concat_map (fun (a, b) -> [ a; b ]) (qwins @ rwins)
      |> List.sort_uniq Int.compare
    in
    let inside t (a, b) = t >= a && t < b in
    let label_for t base =
      if List.exists (inside t) rwins then Retry
      else if List.exists (inside t) qwins then Quorum
      else base
    in
    List.concat_map
      (fun g ->
        let a = Time.to_int g.g_from and b = Time.to_int g.g_to in
        if b <= a then [ g ]
        else begin
          let cuts = List.filter (fun x -> x > a && x < b) bounds in
          let rec pieces = function
            | x :: (y :: _ as rest) ->
              {
                g with
                g_kind = label_for x g.g_kind;
                g_from = Time.of_int x;
                g_to = Time.of_int y;
              }
              :: pieces rest
            | _ -> []
          in
          pieces ((a :: cuts) @ [ b ])
        end)
      segs
    |> coalesce
  end

(* ------------------------------------------------------------------ *)
(* Per-span bookkeeping *)

type span_ix = {
  sx_start : int;
  mutable sx_quorum : int list;  (* indices, reversed *)
  mutable sx_phases : (string * int) list;  (* (name, tick), reversed *)
}

(* Quorum collection rounds: a [have] that fails to increase starts a
   fresh round (protocols reset their counts between collect phases).
   Each round that reaches [need] yields a relabel window from the
   round's first progress mark to the completing one, plus a straggler
   candidate naming the responder that completed it. *)
let quorum_analysis dag ~node qidxs =
  let info i =
    match dag.evs.(i).Event.ev with
    | Event.Quorum_progress { have; need; from; _ } -> (Time.to_int dag.evs.(i).Event.at, have, need, from, i)
    | _ -> assert false
  in
  let completing_msg ~at ~from j =
    (* The handler that emitted the completing Quorum_progress ran
       synchronously under its Deliver at the same tick; scan back for
       it to recover the wire kind. *)
    if from < 0 then ""
    else begin
      let rec back i =
        if i < 0 || Time.to_int dag.evs.(i).Event.at <> at then ""
        else begin
          match dag.evs.(i).Event.ev with
          | Event.Deliver { src; dst; kind; _ } when src = from && dst = node -> kind
          | _ -> back (i - 1)
        end
      in
      back j
    end
  in
  let rec rounds acc cur = function
    | [] -> List.rev (match cur with [] -> acc | c -> List.rev c :: acc)
    | i :: rest ->
      let _, have, _, _, _ = info i in
      (match cur with
      | [] -> rounds acc [ i ] rest
      | last :: _ ->
        let _, prev_have, _, _, _ = info last in
        if have > prev_have then rounds acc (i :: cur) rest
        else rounds (List.rev cur :: acc) [ i ] rest)
  in
  let wins = ref [] and stragglers = ref [] in
  List.iter
    (fun round ->
      match round with
      | [] -> ()
      | first :: _ ->
        let t0, _, _, _, _ = info first in
        let completed =
          List.find_opt
            (fun i ->
              let _, have, need, _, _ = info i in
              have >= need)
            round
        in
        (match completed with
        | None -> ()
        | Some j ->
          let t1, have, need, from, _ = info j in
          if t1 > t0 then wins := (t0, t1) :: !wins;
          if from >= 0 then
            stragglers :=
              {
                st_node = from;
                st_msg = completing_msg ~at:t1 ~from j;
                st_have = have;
                st_need = need;
                st_wait = t1 - t0;
                st_at = Time.of_int t1;
              }
              :: !stragglers))
    (rounds [] [] qidxs);
  (List.rev !wins, List.rev !stragglers)

(* Retry windows: the same Op_phase name marked more than once means
   the protocol restarted that stage (e.g. a sync join re-broadcasting
   its inquiry after an empty round); the stretch from the first mark
   to the last is churn-induced re-work. *)
let retry_windows phases =
  let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (name, t) ->
      match Hashtbl.find_opt tbl name with
      | None ->
        Hashtbl.add tbl name (t, t);
        order := name :: !order
      | Some (first, _) -> Hashtbl.replace tbl name (first, t))
    phases;
  List.rev !order
  |> List.filter_map (fun name ->
         match Hashtbl.find_opt tbl name with
         | Some (first, last) when last > first -> Some (first, last)
         | _ -> None)

let totals segs =
  List.fold_left
    (fun (c, x, q, t, r) g ->
      let d = seg_dur g in
      match g.g_kind with
      | Compute -> (c + d, x, q, t, r)
      | Transit -> (c, x + d, q, t, r)
      | Quorum -> (c, x, q + d, t, r)
      | Timer -> (c, x, q, t + d, r)
      | Retry -> (c, x, q, t, r + d))
    (0, 0, 0, 0, 0) segs

(* ------------------------------------------------------------------ *)
(* Analysis *)

let analyze ?bound evs =
  let dag = build evs in
  let n = Array.length dag.evs in
  let open_tbl : (int, span_ix) Hashtbl.t = Hashtbl.create 64 in
  let done_rev = ref [] in
  for i = 0 to n - 1 do
    match dag.evs.(i).Event.ev with
    | Event.Op_start { span; _ } ->
      Hashtbl.replace open_tbl span { sx_start = i; sx_quorum = []; sx_phases = [] }
    | Event.Op_phase { span; phase; _ } -> (
      match Hashtbl.find_opt open_tbl span with
      | Some sx -> sx.sx_phases <- (phase, Time.to_int dag.evs.(i).Event.at) :: sx.sx_phases
      | None -> ())
    | Event.Quorum_progress { span; _ } -> (
      match Hashtbl.find_opt open_tbl span with
      | Some sx -> sx.sx_quorum <- i :: sx.sx_quorum
      | None -> ())
    | Event.Op_end { span; node; op; outcome; _ } -> (
      match Hashtbl.find_opt open_tbl span with
      | None -> ()
      | Some sx -> (
        Hashtbl.remove open_tbl span;
        match critical_path dag ~start_idx:sx.sx_start ~end_idx:i with
        | None -> ()
        | Some path ->
          let started = dag.evs.(sx.sx_start).Event.at in
          let ended = dag.evs.(i).Event.at in
          let qwins, stragglers = quorum_analysis dag ~node (List.rev sx.sx_quorum) in
          let rwins = retry_windows (List.rev sx.sx_phases) in
          let raw = raw_segments dag path in
          let hops = List.length (List.filter (fun g -> g.g_kind = Transit) raw) in
          let segs = relabel raw ~qwins ~rwins in
          let compute, transit, quorum, timer, retry = totals segs in
          let straggler =
            List.fold_left
              (fun best st ->
                match best with
                | Some b when b.st_wait >= st.st_wait -> best
                | _ -> Some st)
              None stragglers
          in
          done_rev :=
            {
              a_span = span;
              a_node = node;
              a_op = op;
              a_outcome = outcome;
              a_started = started;
              a_ended = ended;
              a_latency = Time.diff ended started;
              a_compute = compute;
              a_transit = transit;
              a_quorum = quorum;
              a_timer = timer;
              a_retry = retry;
              a_hops = hops;
              a_segments = segs;
              a_straggler = straggler;
            }
            :: !done_rev))
    | _ -> ()
  done;
  let ops =
    List.rev !done_rev
    |> List.stable_sort (fun a b -> Time.compare a.a_started b.a_started)
  in
  let orphans =
    Hashtbl.fold (fun span _ acc -> span :: acc) open_tbl [] |> List.sort Int.compare
  in
  (* Aggregate: nearest-rank percentiles per op kind and phase. *)
  let pct sorted q =
    let m = Array.length sorted in
    if m = 0 then 0
    else sorted.(Stdlib.max 0 (int_of_float (Float.ceil (q *. float_of_int m)) - 1))
  in
  let agg_for op =
    let sel = List.filter (fun a -> a.a_op = op) ops in
    match sel with
    | [] -> None
    | _ ->
      let sorted f = List.map f sel |> List.sort Int.compare |> Array.of_list in
      let lats = sorted (fun a -> a.a_latency) in
      Some
        {
          og_op = op;
          og_count = List.length sel;
          og_lat_p50 = pct lats 0.50;
          og_lat_p99 = pct lats 0.99;
          og_lat_max = lats.(Array.length lats - 1);
          og_phases =
            List.map
              (fun k ->
                let vs = sorted (fun a -> phase_total a k) in
                {
                  pa_kind = k;
                  pa_p50 = pct vs 0.50;
                  pa_p99 = pct vs 0.99;
                  pa_max = vs.(Array.length vs - 1);
                })
              all_seg_kinds;
        }
  in
  let aggregate = List.filter_map agg_for [ Event.Join; Event.Read; Event.Write ] in
  let over_bound =
    match bound with
    | None -> []
    | Some b ->
      List.filter (fun a -> a.a_latency > b) ops
      |> List.stable_sort (fun a b ->
             match Int.compare b.a_latency a.a_latency with
             | 0 -> Time.compare a.a_started b.a_started
             | c -> c)
  in
  { r_ops = ops; r_aggregate = aggregate; r_bound = bound; r_over_bound = over_bound;
    r_orphans = orphans; r_events = n }

let slowest r k =
  List.stable_sort
    (fun a b ->
      match Int.compare b.a_latency a.a_latency with
      | 0 -> Time.compare a.a_started b.a_started
      | c -> c)
    r.r_ops
  |> List.filteri (fun i _ -> i < k)

let find_op r span = List.find_opt (fun a -> a.a_span = span) r.r_ops

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_attribution ppf a =
  let parts =
    List.filter_map
      (fun k ->
        let v = phase_total a k in
        if v > 0 then Some (Printf.sprintf "%s %d" (seg_kind_to_string k) v) else None)
      all_seg_kinds
  in
  let breakdown = match parts with [] -> "all instantaneous" | _ -> String.concat " + " parts in
  Format.fprintf ppf "#%d %s p%d [t=%d -> t=%d] latency %d = %s (%d hop%s%s)@."
    a.a_span
    (Event.op_kind_to_string a.a_op)
    a.a_node
    (Time.to_int a.a_started) (Time.to_int a.a_ended) a.a_latency breakdown a.a_hops
    (if a.a_hops = 1 then "" else "s")
    (match a.a_outcome with Event.Completed -> "" | Event.Aborted -> ", aborted");
  (match a.a_straggler with
  | Some st ->
    Format.fprintf ppf "    straggler: p%d%s completed %d/%d at t=%d after a %d-tick wait@."
      st.st_node
      (if st.st_msg = "" then "" else Printf.sprintf " (%s)" st.st_msg)
      st.st_have st.st_need (Time.to_int st.st_at) st.st_wait
  | None -> ());
  List.iter
    (fun g ->
      let where =
        match g.g_kind with
        | Transit -> Printf.sprintf "p%d -> p%d %s" g.g_src g.g_node g.g_msg
        | _ when g.g_src >= 0 && g.g_msg <> "" ->
          Printf.sprintf "at p%d (riding p%d -> p%d %s)" g.g_node g.g_src g.g_node g.g_msg
        | _ -> Printf.sprintf "at p%d" g.g_node
      in
      Format.fprintf ppf "    t=%-5d +%-4d %-7s %s@." (Time.to_int g.g_from) (seg_dur g)
        (seg_kind_to_string g.g_kind) where)
    a.a_segments

(* ------------------------------------------------------------------ *)
(* Export *)

let phases_json a =
  Json.Obj (List.map (fun k -> (seg_kind_to_string k, Json.Int (phase_total a k))) all_seg_kinds)

let segment_json g =
  Json.Obj
    ([
       ("kind", Json.String (seg_kind_to_string g.g_kind));
       ("from", Json.Int (Time.to_int g.g_from));
       ("to", Json.Int (Time.to_int g.g_to));
       ("node", Json.Int g.g_node);
     ]
    @ (if g.g_src >= 0 then [ ("src", Json.Int g.g_src) ] else [])
    @ if g.g_msg <> "" then [ ("msg", Json.String g.g_msg) ] else [])

let straggler_json st =
  Json.Obj
    [
      ("node", Json.Int st.st_node);
      ("msg", Json.String st.st_msg);
      ("have", Json.Int st.st_have);
      ("need", Json.Int st.st_need);
      ("wait", Json.Int st.st_wait);
      ("at", Json.Int (Time.to_int st.st_at));
    ]

let attribution_json ~bound a =
  Json.Obj
    [
      ("span", Json.Int a.a_span);
      ("node", Json.Int a.a_node);
      ("op", Json.String (Event.op_kind_to_string a.a_op));
      ("outcome", Json.String (Event.outcome_to_string a.a_outcome));
      ("start", Json.Int (Time.to_int a.a_started));
      ("end", Json.Int (Time.to_int a.a_ended));
      ("latency", Json.Int a.a_latency);
      ("phases", phases_json a);
      ("hops", Json.Int a.a_hops);
      ( "over_bound",
        Json.Bool (match bound with Some b -> a.a_latency > b | None -> false) );
      ( "straggler",
        match a.a_straggler with Some st -> straggler_json st | None -> Json.Null );
      ("path", Json.List (List.map segment_json a.a_segments));
    ]

let phase_agg_json p =
  Json.Obj
    [
      ("p50", Json.Int p.pa_p50); ("p99", Json.Int p.pa_p99); ("max", Json.Int p.pa_max);
    ]

let op_agg_json og =
  Json.Obj
    [
      ("op", Json.String (Event.op_kind_to_string og.og_op));
      ("count", Json.Int og.og_count);
      ( "latency",
        Json.Obj
          [
            ("p50", Json.Int og.og_lat_p50); ("p99", Json.Int og.og_lat_p99);
            ("max", Json.Int og.og_lat_max);
          ] );
      ( "phases",
        Json.Obj
          (List.map (fun p -> (seg_kind_to_string p.pa_kind, phase_agg_json p)) og.og_phases)
      );
    ]

let report_to_json r =
  Json.Obj
    [
      ("ops", Json.List (List.map (attribution_json ~bound:r.r_bound) r.r_ops));
      ("aggregate", Json.List (List.map op_agg_json r.r_aggregate));
      ("bound", match r.r_bound with Some b -> Json.Int b | None -> Json.Null);
      ("over_bound", Json.List (List.map (fun a -> Json.Int a.a_span) r.r_over_bound));
      ("orphans", Json.List (List.map (fun s -> Json.Int s) r.r_orphans));
      ("events", Json.Int r.r_events);
    ]

let chrome_of_report r =
  let lane_meta a =
    Json.Obj
      [
        ("ph", Json.String "M"); ("pid", Json.Int a.a_node); ("tid", Json.Int a.a_span);
        ("name", Json.String "thread_name");
        ( "args",
          Json.Obj
            [
              ( "name",
                Json.String
                  (Printf.sprintf "span #%d %s (%dt)" a.a_span
                     (Event.op_kind_to_string a.a_op) a.a_latency) );
            ] );
      ]
  in
  let node_meta =
    let nodes = List.sort_uniq Int.compare (List.map (fun a -> a.a_node) r.r_ops) in
    List.map
      (fun n ->
        Json.Obj
          [
            ("ph", Json.String "M"); ("pid", Json.Int n); ("tid", Json.Int 0);
            ("name", Json.String "process_name");
            ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "node p%d" n)) ]);
          ])
      nodes
  in
  let slices a =
    List.map
      (fun g ->
        let name =
          match g.g_kind with
          | Transit -> Printf.sprintf "transit %s" g.g_msg
          | k -> seg_kind_to_string k
        in
        Json.Obj
          ([
             ("ph", Json.String "X"); ("pid", Json.Int a.a_node); ("tid", Json.Int a.a_span);
             ("ts", Json.Int (Time.to_int g.g_from)); ("dur", Json.Int (seg_dur g));
             ("name", Json.String name); ("cat", Json.String "path");
           ]
          @
          if g.g_src >= 0 then [ ("args", Json.Obj [ ("src", Json.Int g.g_src) ]) ] else []))
      a.a_segments
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (node_meta @ List.map lane_meta r.r_ops @ List.concat_map slices r.r_ops)
      );
      ("displayTimeUnit", Json.String "ms");
    ]
