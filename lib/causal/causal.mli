open Dds_sim

(** Causal critical-path analysis and latency attribution over
    exported event traces.

    The trace layer already records everything needed to reconstruct
    the happens-before relation: every [Send] carries its sender's
    Lamport stamp, every [Deliver] echoes the matching [Send]'s stamp
    in [sent] (so [(src, sent)] pairs the two events), and events at
    one process appear in emission = chronological order. This module
    rebuilds that DAG, walks each completed operation span backwards
    from its [Op_end] along the {e gating} edges — at a [Deliver] the
    message edge, because in the discrete model a handler runs the
    instant its message arrives, so arrival is what determined the
    timing — and partitions the span's latency into attributed phases
    that provably sum to it exactly (every causal chain from
    [Op_start] to [Op_end] telescopes to the same total).

    Phases:
    - {b compute} — same-tick handler steps (always 0 in the paper's
      model, where local processing is instantaneous; kept so traces
      from a future real backend attribute correctly);
    - {b transit} — a [Send]→[Deliver] hop on the path;
    - {b quorum} — the window from the first [Quorum_progress] of a
      collection round to the one that reached [need], i.e. the time
      the op waited for its k-th response after the first arrived;
      path time inside the window is relabelled, and the completing
      responder is reported as the {e straggler};
    - {b timer} — a positive-gap process-order edge: the process woke
      spontaneously (a protocol timer), nothing causal arrived;
    - {b retry} — the window between the first and last occurrence of
      a repeated [Op_phase] name (e.g. a sync join re-broadcasting
      ["inquiry-sent"] after an empty round): churn-induced re-work.

    Retry relabelling takes precedence over quorum; both split path
    segments at window bounds, so exactness survives relabelling. *)

(** {1 Path segments} *)

type seg_kind = Compute | Transit | Quorum | Timer | Retry

val seg_kind_to_string : seg_kind -> string
(** ["compute"], ["transit"], ["quorum"], ["timer"], ["retry"]. *)

val all_seg_kinds : seg_kind list
(** In rendering order: compute, transit, quorum, timer, retry. *)

type segment = {
  g_kind : seg_kind;
  g_from : Time.t;  (** segment start (inclusive) *)
  g_to : Time.t;  (** segment end (exclusive); [g_from = g_to] marks a
                      zero-duration local step *)
  g_node : int;  (** the process this time is spent at (the receiver,
                     for transit) *)
  g_src : int;  (** transit sender, [-1] for local segments *)
  g_msg : string;  (** transit message kind, [""] for local segments *)
}

val seg_dur : segment -> int

(** {1 Per-operation attribution} *)

type straggler = {
  st_node : int;  (** the responder whose reply completed the quorum *)
  st_msg : string;  (** wire kind of the completing [Deliver] ([""] if
                        the trace predates the [from] field) *)
  st_have : int;
  st_need : int;
  st_wait : int;  (** ticks from the round's first response to this one *)
  st_at : Time.t;  (** completion instant *)
}

type attribution = {
  a_span : int;
  a_node : int;
  a_op : Event.op_kind;
  a_outcome : Event.outcome;
  a_started : Time.t;
  a_ended : Time.t;
  a_latency : int;
  a_compute : int;
  a_transit : int;
  a_quorum : int;
  a_timer : int;
  a_retry : int;
  a_hops : int;  (** message edges on the critical path *)
  a_segments : segment list;  (** the critical path, earliest first;
                                  durations sum to [a_latency] *)
  a_straggler : straggler option;
      (** the longest-waited quorum completion on this span *)
}

val phase_total : attribution -> seg_kind -> int

(** {1 Aggregate tables} *)

type phase_agg = { pa_kind : seg_kind; pa_p50 : int; pa_p99 : int; pa_max : int }

type op_agg = {
  og_op : Event.op_kind;
  og_count : int;
  og_lat_p50 : int;
  og_lat_p99 : int;
  og_lat_max : int;
  og_phases : phase_agg list;  (** one entry per {!all_seg_kinds} *)
}

type report = {
  r_ops : attribution list;  (** completed spans, by start time *)
  r_aggregate : op_agg list;  (** join/read/write order, present kinds only *)
  r_bound : int option;  (** the [k*delta] latency bound applied *)
  r_over_bound : attribution list;  (** ops with [a_latency > bound],
                                        slowest first — each carries its
                                        path as the witness *)
  r_orphans : int list;  (** span ids with no [Op_end] in the trace *)
  r_events : int;  (** events analyzed *)
}

val analyze : ?bound:int -> Event.stamped list -> report
(** Builds the happens-before DAG once, then attributes every
    completed span. Events must be in emission order (as sinks and
    exported traces guarantee). [bound] — typically the paper's
    [k*delta] — populates {!report.r_over_bound}. *)

val slowest : report -> int -> attribution list
(** The [k] highest-latency ops, slowest first (ties: earlier start
    first). *)

val find_op : report -> int -> attribution option
(** Attribution for one span id. *)

(** {1 Rendering and export} *)

val pp_attribution : Format.formatter -> attribution -> unit
(** Multi-line: a summary header, then one line per path segment. *)

val report_to_json : report -> Json.t
(** The attribution report: per-op phases + paths + stragglers,
    aggregate percentile tables, bound violations. Machine-checkable:
    for every op, the phase values sum to [latency]. *)

val chrome_of_report : report -> Json.t
(** Chrome trace_event JSON with one lane per operation ([pid] = the
    op's node, [tid] = span id, a [thread_name] per lane) and one "X"
    slice per critical-path segment, so a path reads left-to-right in
    the viewer with transit/quorum/timer/retry color-coded by name. *)
