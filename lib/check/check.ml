open Dds_sim
open Dds_net
open Dds_churn
open Dds_spec
open Dds_core
open Dds_fault
module Pool = Dds_engine.Pool

type stats = {
  schedules : int;
  truncated : int;
  state_prunes : int;
  sleep_skips : int;
  preempt_skips : int;
  max_depth : int;
  cache_entries : int;
  cache_peak : int;
}

type violation = { schedule : Schedule.t; lines : string list; at_schedule : int }

type outcome = { stats : stats; violation : violation option }

type replay = {
  decisions_used : int;
  regularity : Regularity.report;
  inversions : int;
  violations : string list;
}

(* ------------------------------------------------------------------ *)
(* Independence and sleep sets. Two events commute iff both are
   node-local (actor >= 0) and act on distinct nodes; everything else
   — scripted operations, crash decision ticks, fault choices — is
   conservatively dependent with everything. *)

let indep (a : Scheduler.tag) (b : Scheduler.tag) =
  a.Scheduler.actor >= 0 && b.Scheduler.actor >= 0 && a.Scheduler.actor <> b.Scheduler.actor

let tag_equal (a : Scheduler.tag) (b : Scheduler.tag) =
  a.Scheduler.actor = b.Scheduler.actor && String.equal a.Scheduler.kind b.Scheduler.kind

let in_sleep tag sleep = List.exists (tag_equal tag) sleep
let sleep_subset s1 s2 = List.for_all (fun t -> in_sleep t s2) s1

(* ------------------------------------------------------------------ *)
(* Exploration internals. *)

type prune = No_prune | Sleep_redundant | State_hit | Preempt_blocked

type point = {
  arity : int;
  labels : string array;
  tags : Scheduler.tag array;
  sched : bool;  (** scheduling point (preemption accounting applies) *)
}

type frame = {
  f_path : Schedule.decision list;  (** decisions before this point *)
  f_point : point;
  f_chosen : int;
  f_sleep : Scheduler.tag list;  (** sleep set on entry to this node *)
  f_preempts : int;  (** preemptions spent before this point *)
}

type run_result = {
  frames : frame list;  (** fresh points opened, shallow to deep *)
  decisions : Schedule.decision list;
  r_truncated : bool;
  pruned : prune;
  bad : string list;
  report : Regularity.report option;
  r_inversions : int;
}

type cache_entry = {
  ce_sleep : Scheduler.tag list;
  ce_depth_left : int;
  ce_preempt_left : int;
}

type cache = (string, cache_entry list ref) Hashtbl.t

(* The scripted workload: writes from the designated writer, reads
   round-robin over the other founding nodes starting just after a
   write's completion window, joins entering mid-run. Times are spaced
   so distinct operations never share a tick (the fingerprint
   distinguishes pending scripted events by time alone). *)
let op_schedule (c : Schedule.config) =
  let d6 = 6 * c.delta in
  let writes = List.init c.writes (fun k -> 2 + (k * d6)) in
  (* A write is two quorum round trips (4 message hops of delta each,
     self-messages included); reads start one tick after that window so
     a violating stale read is unambiguously non-concurrent. *)
  let reads = List.init c.reads (fun j -> 2 + (6 * c.delta) + (j * d6)) in
  let joins = List.init c.joins (fun i -> 3 + (i * d6)) in
  (writes, reads, joins)

let horizon_of c =
  let ws, rs, js = op_schedule c in
  List.fold_left Stdlib.max 2 (List.concat [ ws; rs; js ]) + (10 * c.delta)

let crash_ticks (c : Schedule.config) = [ 2 + c.delta; 2 + (3 * c.delta); 2 + (5 * c.delta) ]

let validate (c : Schedule.config) =
  if c.nodes < 1 then Error "check: nodes must be >= 1"
  else if c.delta < 1 then Error "check: delta must be >= 1"
  else if c.writes < 0 || c.reads < 0 || c.joins < 0 then
    Error "check: workload counts must be >= 0"
  else if c.drop_budget < 0 || c.crash_budget < 0 then Error "check: budgets must be >= 0"
  else if c.depth_bound < 1 then Error "check: depth bound must be >= 1"
  else if c.preempt_bound < 0 then Error "check: preemption bound must be >= 0"
  else Ok ()

(* One stateless re-execution: build a fresh deployment, force the
   scripted decision prefix, then descend (lowest awake branch first)
   opening up to [fresh_limit] new frames; beyond the depth bound or
   after a prune, every decision defaults to branch 0. Deterministic:
   checker deployments draw no randomness (adversarially constant
   delay, no churn engine, fixed workload), so the decision sequence
   alone determines the run. *)
let run_one (type p) (module D : Deployment.S with type Protocol.params = p) (params : p)
    ~atomic ~(cfg : Schedule.config) ~(script : Schedule.decision array) ~sleep0 ~preempts0
    ~fresh_limit ~por ~(cache : cache option) () : run_result =
  let dconfig =
    {
      Deployment.seed = 0;
      n = cfg.nodes;
      delay = Delay.adversarial (fun _ -> cfg.delta);
      churn_rate = 0.0;
      churn_profile = None;
      churn_policy = Churn.Uniform;
      protect_writer = true;
      initial_value = 0;
      broadcast_mode = Network.Primitive;
      trace_enabled = false;
      events_enabled = false;
      events_first_span = 0;
    }
  in
  let d = D.create dconfig params in
  let sched = D.scheduler d in
  let module A = Adversary.Make (D) in
  let adversary = ref None in
  let depth = ref 0 in
  let taken = ref [] in
  let frames = ref [] in
  let fresh_open = ref 0 in
  let truncated = ref false in
  let pruned = ref No_prune in
  let sleep = ref sleep0 in
  let preempts = ref preempts0 in
  (* Fingerprint of everything observable about the simulation state:
     virtual time, each present node's protocol-visible state, every
     in-flight event (including the popped ready set at a scheduling
     point), the adversary's spent budgets, and the full operation
     history. Sequence numbers are deliberately excluded — equivalent
     interleavings assign them differently. *)
  let fingerprint (ready_tags : Scheduler.tag array) =
    let b = Buffer.create 1024 in
    let addf fmt = Format.kasprintf (Buffer.add_string b) fmt in
    addf "t=%a;" Time.pp (D.now d);
    let present = List.sort Pid.compare (Network.attached (D.network d)) in
    List.iter
      (fun pid ->
        match D.node d pid with
        | None -> ()
        | Some nd ->
          addf "%a=%b,%b,%s,%s;" Pid.pp pid (D.Protocol.is_active nd) (D.Protocol.busy nd)
            (match D.Protocol.snapshot nd with
            | Some v -> Format.asprintf "%a" Value.pp v
            | None -> "-")
            (match D.Protocol.current_span nd with
            | Some (_, k) -> Event.op_kind_to_string k
            | None -> "-"))
      present;
    List.iter
      (fun cand ->
        let tag = Scheduler.candidate_tag cand in
        addf "q%a:%d:%s;" Time.pp (Scheduler.candidate_time cand) tag.Scheduler.actor
          tag.Scheduler.kind)
      (Scheduler.pending_candidates sched);
    Array.iter (fun (tag : Scheduler.tag) -> addf "r%d:%s;" tag.actor tag.kind) ready_tags;
    (match !adversary with
    | Some a -> addf "adv=%d,%d;" (A.drops_injected a) (A.crashes_injected a)
    | None -> ());
    Buffer.add_string b (History.to_csv (D.history d));
    Digest.to_hex (Digest.string (Buffer.contents b))
  in
  let record ch arity label =
    taken := { Schedule.chosen = ch; arity; label } :: !taken
  in
  let decide ~sched_point ~(tags : Scheduler.tag array) ~(labels : string array) =
    let arity = Array.length tags in
    let i = !depth in
    incr depth;
    if i < Array.length script then begin
      let dec = script.(i) in
      if dec.Schedule.arity <> arity then
        failwith
          (Printf.sprintf
             "check: schedule divergence at decision %d: point offers %d branch(es), \
              schedule recorded %d"
             i arity dec.Schedule.arity);
      record dec.Schedule.chosen arity labels.(dec.Schedule.chosen);
      dec.Schedule.chosen
    end
    else if !pruned <> No_prune || !fresh_open >= fresh_limit then begin
      record 0 arity labels.(0);
      0
    end
    else if i >= cfg.depth_bound then begin
      truncated := true;
      record 0 arity labels.(0);
      0
    end
    else begin
      let depth_left = cfg.depth_bound - i in
      let preempt_left = cfg.preempt_bound - !preempts in
      let cache_hit =
        match cache with
        | None -> false
        | Some cache -> (
          let fp = fingerprint tags in
          match Hashtbl.find_opt cache fp with
          | Some entries
            when List.exists
                   (fun e ->
                     e.ce_depth_left >= depth_left
                     && e.ce_preempt_left >= preempt_left
                     && sleep_subset e.ce_sleep !sleep)
                   !entries ->
            true
          | Some entries ->
            entries :=
              { ce_sleep = !sleep; ce_depth_left = depth_left; ce_preempt_left = preempt_left }
              :: !entries;
            false
          | None ->
            Hashtbl.add cache fp
              (ref
                 [
                   {
                     ce_sleep = !sleep;
                     ce_depth_left = depth_left;
                     ce_preempt_left = preempt_left;
                   };
                 ]);
            false)
      in
      if cache_hit then begin
        pruned := State_hit;
        record 0 arity labels.(0);
        0
      end
      else begin
        (* Lowest awake branch within the preemption budget. *)
        let choice = ref None in
        let any_awake = ref false in
        let j = ref 0 in
        while !choice = None && !j < arity do
          let t = tags.(!j) in
          if por && in_sleep t !sleep then ()
          else begin
            any_awake := true;
            if sched_point && !j > 0 && !preempts >= cfg.preempt_bound then ()
            else choice := Some !j
          end;
          incr j
        done;
        match !choice with
        | None ->
          pruned := (if !any_awake then Preempt_blocked else Sleep_redundant);
          record 0 arity labels.(0);
          0
        | Some a ->
          frames :=
            {
              f_path = List.rev !taken;
              f_point = { arity; labels; tags; sched = sched_point };
              f_chosen = a;
              f_sleep = !sleep;
              f_preempts = !preempts;
            }
            :: !frames;
          incr fresh_open;
          record a arity labels.(a);
          if sched_point && a > 0 then incr preempts;
          if por then sleep := List.filter (fun t -> indep tags.(a) t) !sleep;
          a
      end
    end
  in
  Scheduler.set_chooser sched
    (Some
       (fun candidates ->
         let tags = Array.map Scheduler.candidate_tag candidates in
         let labels =
           Array.map
             (fun c ->
               let t = Scheduler.candidate_tag c in
               if String.equal t.Scheduler.kind "" then
                 Format.asprintf "ev@%a" Time.pp (Scheduler.candidate_time c)
               else t.Scheduler.kind)
             candidates
         in
         decide ~sched_point:true ~tags ~labels));
  if cfg.drop_budget > 0 || cfg.crash_budget > 0 then begin
    let choose ~n ~label =
      let tags = Array.init n (fun _ -> { Scheduler.actor = -1; kind = label }) in
      let labels = Array.init n (fun j -> Printf.sprintf "%s=%d" label j) in
      decide ~sched_point:false ~tags ~labels
    in
    adversary :=
      Some
        (A.install ~choose ~drop_budget:cfg.drop_budget ~crash_budget:cfg.crash_budget
           ~crash_ticks:(crash_ticks cfg) d)
  end;
  let can_op pid =
    match D.node d pid with
    | Some nd -> D.Protocol.is_active nd && not (D.Protocol.busy nd)
    | None -> false
  in
  let ws, rs, js = op_schedule cfg in
  List.iter
    (fun t ->
      ignore
        (Scheduler.schedule_at sched (Time.of_int t) (fun () ->
             match D.writer d with
             | Some w when can_op w -> D.write d w
             | Some _ | None -> ())))
    ws;
  List.iteri
    (fun j t ->
      let reader = Pid.of_int (if cfg.nodes > 1 then 1 + (j mod (cfg.nodes - 1)) else 0) in
      ignore
        (Scheduler.schedule_at sched (Time.of_int t) (fun () ->
             if can_op reader then D.read d reader)))
    rs;
  List.iter
    (fun t ->
      ignore (Scheduler.schedule_at sched (Time.of_int t) (fun () -> ignore (D.spawn d))))
    js;
  D.run_until d (Time.of_int (horizon_of cfg));
  let report, inversions, bad =
    if !pruned <> No_prune then (None, 0, [])
    else begin
      let report = D.regularity d in
      let invs = if atomic then Atomicity.inversions (D.history d) else [] in
      let lines =
        List.map
          (Format.asprintf "%a" Regularity.pp_violation)
          report.Regularity.violations
        @ List.map (Format.asprintf "%a" Atomicity.pp_inversion) invs
      in
      (Some report, List.length invs, lines)
    end
  in
  {
    frames = List.rev !frames;
    decisions = List.rev !taken;
    r_truncated = !truncated;
    pruned = !pruned;
    bad;
    report;
    r_inversions = inversions;
  }

(* [make_exec] resolves the protocol's parameters once and closes over
   them: the returned function is one stateless re-execution. *)
let make_exec (p : Protocol.t) (cfg : Schedule.config) =
  let module R = (val p.Protocol.runner : Protocol.RUNNER) in
  match R.params { Protocol.n = cfg.nodes; delta = cfg.delta; quorum = cfg.quorum } with
  | Error e -> Error e
  | Ok params ->
    Ok
      (fun ~script ~sleep0 ~preempts0 ~fresh_limit ~por ~cache () ->
        run_one
          (module R.D)
          params ~atomic:p.Protocol.atomic ~cfg ~script ~sleep0 ~preempts0 ~fresh_limit ~por
          ~cache ())

(* ------------------------------------------------------------------ *)
(* DFS over one subtree, stateless-re-execution style: each iteration
   re-runs from the root with a longer forced prefix. *)

type node = {
  n_path : Schedule.decision list;
  n_sleep : Scheduler.tag list;
  n_preempts : int;
}

type leaf =
  | Done of {
      d_decisions : Schedule.decision list;
      d_truncated : bool;
      d_bad : string list;
      d_depth : int;
    }
  | Skip of prune

type job_result = {
  jr_stats : stats;
  jr_violation : (Schedule.decision list * string list * int) option;
      (** decisions, findings, schedules judged when found (job-local) *)
}

type fstate = { fs : frame; mutable tried : int; mutable dones : Scheduler.tag list }

let dfs ~exec ~por ~state_cache ~(cfg : Schedule.config) (root : node) : job_result =
  let cache : cache option = if state_cache then Some (Hashtbl.create 256) else None in
  let schedules = ref 0
  and truncated = ref 0
  and state_prunes = ref 0
  and sleep_skips = ref 0
  and preempt_skips = ref 0
  and max_depth = ref 0 in
  let violation = ref None in
  let stack : fstate list ref = ref [] in
  (* Branches below the first explored one were skipped at discovery:
     asleep, or awake but over the preemption budget. *)
  let discovery_skips (f : frame) =
    for i = 0 to f.f_chosen - 1 do
      if por && in_sleep f.f_point.tags.(i) f.f_sleep then incr sleep_skips
      else incr preempt_skips
    done
  in
  let run_path script sleep preempts =
    let rr =
      exec ~script:(Array.of_list script) ~sleep0:sleep ~preempts0:preempts
        ~fresh_limit:max_int ~por ~cache ()
    in
    List.iter discovery_skips rr.frames;
    (match rr.pruned with
    | No_prune ->
      incr schedules;
      if rr.r_truncated then incr truncated;
      max_depth := Stdlib.max !max_depth (List.length rr.decisions);
      if rr.bad <> [] && !violation = None then
        violation := Some (rr.decisions, rr.bad, !schedules)
    | Sleep_redundant -> incr sleep_skips
    | State_hit -> incr state_prunes
    | Preempt_blocked -> incr preempt_skips);
    List.iter (fun f -> stack := { fs = f; tried = f.f_chosen; dones = [] } :: !stack) rr.frames
  in
  run_path root.n_path root.n_sleep root.n_preempts;
  let running = ref true in
  while !running && !violation = None do
    match !stack with
    | [] -> running := false
    | top :: rest -> (
      top.dones <- top.fs.f_point.tags.(top.tried) :: top.dones;
      let arity = top.fs.f_point.arity in
      let next = ref None in
      let i = ref (top.tried + 1) in
      while !next = None && !i < arity do
        let t = top.fs.f_point.tags.(!i) in
        if por && in_sleep t top.fs.f_sleep then incr sleep_skips
        else if top.fs.f_point.sched && !i > 0 && top.fs.f_preempts >= cfg.preempt_bound then
          incr preempt_skips
        else next := Some !i;
        incr i
      done;
      match !next with
      | None -> stack := rest
      | Some i ->
        top.tried <- i;
        let dec =
          { Schedule.chosen = i; arity; label = top.fs.f_point.labels.(i) }
        in
        let child_sleep =
          if por then
            List.filter
              (fun t -> indep top.fs.f_point.tags.(i) t)
              (top.fs.f_sleep @ top.dones)
          else []
        in
        let child_preempts =
          top.fs.f_preempts + (if top.fs.f_point.sched && i > 0 then 1 else 0)
        in
        run_path (top.fs.f_path @ [ dec ]) child_sleep child_preempts)
  done;
  (* Entries are only ever added, so the cache's final population is
     its peak; every miss inserts exactly one entry, so this is also
     the miss count (hit rate = state_prunes / (state_prunes +
     cache_entries)). *)
  let cache_size =
    match cache with
    | None -> 0
    | Some c -> Hashtbl.fold (fun _ entries acc -> acc + List.length !entries) c 0
  in
  {
    jr_stats =
      {
        schedules = !schedules;
        truncated = !truncated;
        state_prunes = !state_prunes;
        sleep_skips = !sleep_skips;
        preempt_skips = !preempt_skips;
        max_depth = !max_depth;
        cache_entries = cache_size;
        cache_peak = cache_size;
      };
    jr_violation = !violation;
  }

(* ------------------------------------------------------------------ *)
(* Top-of-tree partitioning: one probe run discovers the first choice
   point below a prefix; its branches (in index order, with the sleep
   sets sequential DFS would give them) become the next frontier
   level. Probes use no state cache, so the frontier — and therefore
   every explored count — is a pure function of the tree shape. *)

let children ~exec ~por ~(cfg : Schedule.config) (nd : node) : (node, leaf) Either.t list =
  let rr =
    exec ~script:(Array.of_list nd.n_path) ~sleep0:nd.n_sleep ~preempts0:nd.n_preempts
      ~fresh_limit:1 ~por ~cache:None ()
  in
  match rr.pruned with
  | Sleep_redundant | State_hit | Preempt_blocked -> [ Either.Right (Skip rr.pruned) ]
  | No_prune -> (
    match rr.frames with
    | [] ->
      [
        Either.Right
          (Done
             {
               d_decisions = rr.decisions;
               d_truncated = rr.r_truncated;
               d_bad = rr.bad;
               d_depth = List.length rr.decisions;
             });
      ]
    | f :: _ ->
      let out = ref [] in
      let dones = ref [] in
      for i = 0 to f.f_point.arity - 1 do
        let t = f.f_point.tags.(i) in
        if por && in_sleep t f.f_sleep then out := Either.Right (Skip Sleep_redundant) :: !out
        else if f.f_point.sched && i > 0 && f.f_preempts >= cfg.preempt_bound then
          out := Either.Right (Skip Preempt_blocked) :: !out
        else begin
          let dec = { Schedule.chosen = i; arity = f.f_point.arity; label = f.f_point.labels.(i) } in
          let child_sleep =
            if por then List.filter (fun b -> indep t b) (f.f_sleep @ !dones) else []
          in
          let child_preempts = f.f_preempts + (if f.f_point.sched && i > 0 then 1 else 0) in
          out :=
            Either.Left
              { n_path = f.f_path @ [ dec ]; n_sleep = child_sleep; n_preempts = child_preempts }
            :: !out;
          dones := t :: !dones
        end
      done;
      List.rev !out)

(* ------------------------------------------------------------------ *)
(* Orchestration and merging. *)

let rec drop_while p = function x :: tl when p x -> drop_while p tl | l -> l

let trim_defaults decisions =
  List.rev (drop_while (fun d -> d.Schedule.chosen = 0) (List.rev decisions))

let zero =
  {
    schedules = 0;
    truncated = 0;
    state_prunes = 0;
    sleep_skips = 0;
    preempt_skips = 0;
    max_depth = 0;
    cache_entries = 0;
    cache_peak = 0;
  }

let merge (cfg : Schedule.config) (items : (job_result, leaf) Either.t list) : outcome =
  let st = ref zero in
  let violation = ref None in
  List.iter
    (fun item ->
      match item with
      | Either.Right (Done dn) ->
        (if dn.d_bad <> [] && !violation = None then
           violation := Some (dn.d_decisions, dn.d_bad, !st.schedules + 1));
        st :=
          {
            !st with
            schedules = !st.schedules + 1;
            truncated = (!st.truncated + if dn.d_truncated then 1 else 0);
            max_depth = Stdlib.max !st.max_depth dn.d_depth;
          }
      | Either.Right (Skip Sleep_redundant) -> st := { !st with sleep_skips = !st.sleep_skips + 1 }
      | Either.Right (Skip State_hit) -> st := { !st with state_prunes = !st.state_prunes + 1 }
      | Either.Right (Skip Preempt_blocked) ->
        st := { !st with preempt_skips = !st.preempt_skips + 1 }
      | Either.Right (Skip No_prune) -> ()
      | Either.Left jr ->
        (match jr.jr_violation with
        | Some (decs, lines, at) when !violation = None ->
          violation := Some (decs, lines, !st.schedules + at)
        | Some _ | None -> ());
        let s = jr.jr_stats in
        st :=
          {
            schedules = !st.schedules + s.schedules;
            truncated = !st.truncated + s.truncated;
            state_prunes = !st.state_prunes + s.state_prunes;
            sleep_skips = !st.sleep_skips + s.sleep_skips;
            preempt_skips = !st.preempt_skips + s.preempt_skips;
            max_depth = Stdlib.max !st.max_depth s.max_depth;
            cache_entries = !st.cache_entries + s.cache_entries;
            cache_peak = Stdlib.max !st.cache_peak s.cache_peak;
          })
    items;
  {
    stats = !st;
    violation =
      Option.map
        (fun (decs, lines, at) ->
          {
            schedule = { Schedule.config = cfg; decisions = trim_defaults decs };
            lines;
            at_schedule = at;
          })
        !violation;
  }

let run ?pool ?(por = true) ?(state_cache = true) ?(frontier = 64) (p : Protocol.t)
    (cfg : Schedule.config) : (outcome, string) result =
  let ( let* ) = Result.bind in
  let* () = validate cfg in
  let* () =
    if String.equal cfg.proto p.Protocol.name then Ok ()
    else
      Error
        (Printf.sprintf "check: config is for protocol %S, asked to check %S" cfg.proto
           p.Protocol.name)
  in
  let* exec = make_exec p cfg in
  let root = { n_path = []; n_sleep = []; n_preempts = 0 } in
  let go pool =
    let frontier_nodes =
      Pool.expand_frontier pool
        ~key:(fun nd -> Printf.sprintf "check:probe:d%d" (List.length nd.n_path))
        ~children:(children ~exec ~por ~cfg) ~max_levels:2 ~target:frontier [ root ]
    in
    let lefts =
      List.filter_map
        (function Either.Left nd -> Some nd | Either.Right _ -> None)
        frontier_nodes
    in
    let jresults =
      Pool.map pool
        ~key:(fun (i, _) -> Printf.sprintf "check:dfs:%d" i)
        ~f:(fun (_, nd) -> dfs ~exec ~por ~state_cache ~cfg nd)
        (List.mapi (fun i nd -> (i, nd)) lefts)
    in
    (* Splice job results back into frontier order. *)
    let rec splice fr js acc =
      match (fr, js) with
      | [], [] -> List.rev acc
      | Either.Right leafv :: fr, js -> splice fr js (Either.Right leafv :: acc)
      | Either.Left _ :: fr, jr :: js -> splice fr js (Either.Left jr :: acc)
      | Either.Left _ :: _, [] | [], _ :: _ -> assert false
    in
    merge cfg (splice frontier_nodes jresults [])
  in
  match pool with
  | Some pool -> Ok (go pool)
  | None -> Ok (Pool.with_pool ~jobs:1 go)

let replay_schedule (s : Schedule.t) : (replay, string) result =
  let ( let* ) = Result.bind in
  let cfg = s.Schedule.config in
  let* () = validate cfg in
  let* p =
    match Protocol.find cfg.proto with
    | Some p -> Ok p
    | None ->
      Error
        (Printf.sprintf "unknown protocol %S (%s)" cfg.proto
           (String.concat "|" Protocol.names))
  in
  let* exec = make_exec p cfg in
  match
    exec ~script:(Array.of_list s.Schedule.decisions) ~sleep0:[] ~preempts0:0 ~fresh_limit:0
      ~por:false ~cache:None ()
  with
  | exception Failure msg -> Error msg
  | rr ->
    let report =
      match rr.report with Some r -> r | None -> assert false (* fresh_limit 0 never prunes *)
    in
    Ok
      {
        decisions_used = List.length s.Schedule.decisions;
        regularity = report;
        inversions = rr.r_inversions;
        violations = rr.bad;
      }

