open Dds_core

(** Stateless bounded model checking of register deployments.

    [run] drives the deterministic simulator through {e every} schedule
    of a small scripted deployment, up to the configured bounds: at
    each point where two or more events are ready at the same virtual
    time the scheduler asks which fires next, and (budget permitting)
    the bounded adversary asks drop-or-deliver per transmission and
    crash-or-not at fixed decision ticks. A schedule is the sequence of
    branches taken; re-executing a schedule from scratch replays the
    identical run (the simulator has no other nondeterminism: checker
    runs use an adversarially constant delay, no churn engine and a
    fixed workload script — see DESIGN.md §11).

    Exploration is depth-first with two sound reductions and two
    bounds:
    - {b sleep sets} (partial-order reduction): deliveries to distinct
      nodes commute, so only one interleaving of a commuting pair is
      explored; events without a node tag are treated as dependent
      with everything (never unsound, merely unreduced);
    - {b state hashing}: a fingerprint of the full simulation state
      (clock, per-node register state, in-flight messages, operation
      history, adversary budgets) prunes prefixes that converge to a
      state already explored at least as permissively;
    - {b depth bound}: decisions beyond it take branch 0 (the run is
      judged but counted truncated);
    - {b preemption bound}: picking a non-FIFO branch at a scheduling
      point costs one preemption from a per-run budget.

    Terminal runs are judged by {!Dds_spec.Regularity.check} (and
    {!Dds_spec.Atomicity.inversions} for protocols that promise
    atomicity). The first violating schedule, in canonical
    (left-to-right DFS) order, is returned as a replayable
    {!Schedule.t}.

    With [?pool], the top of the choice tree is partitioned into a
    worker-count-independent frontier ({!Dds_engine.Pool.expand_frontier})
    whose subtrees are explored as parallel jobs with per-subtree
    caches; every job runs to completion, so explored counts — and the
    rendered report — are byte-identical at any [--jobs]. *)

type stats = {
  schedules : int;  (** terminal runs judged *)
  truncated : int;  (** of which hit the depth bound *)
  state_prunes : int;  (** descents cut by the state cache *)
  sleep_skips : int;  (** branches skipped by sleep-set POR *)
  preempt_skips : int;  (** branches skipped by the preemption budget *)
  max_depth : int;  (** deepest decision sequence executed *)
  cache_entries : int;
      (** fingerprint-cache entries inserted across all subtree caches
          — one per miss, so the hit rate is
          [state_prunes /. (state_prunes + cache_entries)] *)
  cache_peak : int;
      (** largest single subtree cache (entries are only added, so the
          final population is the peak) — the per-job memory cost of
          state caching *)
}

type violation = {
  schedule : Schedule.t;
      (** replayable counterexample, default-tail trimmed *)
  lines : string list;  (** rendered violation findings *)
  at_schedule : int;  (** 1-based index in canonical exploration order *)
}

type outcome = { stats : stats; violation : violation option }

val run :
  ?pool:Dds_engine.Pool.t ->
  ?por:bool ->
  ?state_cache:bool ->
  ?frontier:int ->
  Protocol.t ->
  Schedule.config ->
  (outcome, string) result
(** Explores every schedule of [cfg] under the given protocol.
    [por] / [state_cache] (default [true]) exist to measure the
    reductions (bench's naive-DFS comparison). [frontier] (default 64)
    is the partitioning width target; it is part of the exploration
    shape, so the same value must be used to compare explored counts.
    [Error] when the spec is invalid for the protocol (e.g. a quorum
    override on sync). *)

type replay = {
  decisions_used : int;
  regularity : Dds_spec.Regularity.report;
  inversions : int;
  violations : string list;  (** empty = clean *)
}

val replay_schedule : Schedule.t -> (replay, string) result
(** Re-executes one schedule exactly ([dds run --schedule]): decisions
    beyond the recorded sequence take branch 0. [Error] on unknown
    protocol, invalid spec, or divergence (a recorded arity that does
    not match the replayed choice point). *)

