type config = {
  proto : string;
  nodes : int;
  delta : int;
  writes : int;
  reads : int;
  joins : int;
  quorum : int option;
  drop_budget : int;
  crash_budget : int;
  depth_bound : int;
  preempt_bound : int;
}

type decision = { chosen : int; arity : int; label : string }

type t = { config : config; decisions : decision list }

let to_string t =
  let b = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let c = t.config in
  addf "# dds check schedule\n";
  addf "proto=%s\n" c.proto;
  addf "nodes=%d\n" c.nodes;
  addf "delta=%d\n" c.delta;
  addf "writes=%d\n" c.writes;
  addf "reads=%d\n" c.reads;
  addf "joins=%d\n" c.joins;
  (match c.quorum with Some q -> addf "quorum=%d\n" q | None -> ());
  addf "drop-budget=%d\n" c.drop_budget;
  addf "crash-budget=%d\n" c.crash_budget;
  addf "depth-bound=%d\n" c.depth_bound;
  addf "preempt-bound=%d\n" c.preempt_bound;
  List.iter (fun d -> addf "choice %d/%d %s\n" d.chosen d.arity d.label) t.decisions;
  Buffer.contents b

let pp ppf t = Format.pp_print_string ppf (to_string t)

let ( let* ) = Result.bind

let int_of field s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "schedule: bad integer for %s: %S" field s)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let fields : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let decisions = ref [] in
  let err = ref None in
  List.iteri
    (fun lineno line ->
      if !err = None then
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else if String.length line > 7 && String.sub line 0 7 = "choice " then begin
          (* choice <chosen>/<arity> <label> *)
          match String.split_on_char ' ' line with
          | [ _; frac; label ] -> (
            match String.split_on_char '/' frac with
            | [ ch; ar ] -> (
              match (int_of_string_opt ch, int_of_string_opt ar) with
              | Some chosen, Some arity when chosen >= 0 && chosen < arity ->
                decisions := { chosen; arity; label } :: !decisions
              | _ ->
                err :=
                  Some (Printf.sprintf "schedule line %d: bad choice %S" (lineno + 1) line))
            | _ ->
              err := Some (Printf.sprintf "schedule line %d: bad choice %S" (lineno + 1) line))
          | _ ->
            err := Some (Printf.sprintf "schedule line %d: bad choice %S" (lineno + 1) line)
        end
        else
          match String.index_opt line '=' with
          | Some i ->
            Hashtbl.replace fields
              (String.sub line 0 i)
              (String.sub line (i + 1) (String.length line - i - 1))
          | None ->
            err := Some (Printf.sprintf "schedule line %d: unparseable %S" (lineno + 1) line))
    lines;
  match !err with
  | Some e -> Error e
  | None ->
    let get field =
      match Hashtbl.find_opt fields field with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "schedule: missing %s=" field)
    in
    let get_int field =
      let* v = get field in
      int_of field v
    in
    let* proto = get "proto" in
    let* nodes = get_int "nodes" in
    let* delta = get_int "delta" in
    let* writes = get_int "writes" in
    let* reads = get_int "reads" in
    let* joins = get_int "joins" in
    let* quorum =
      match Hashtbl.find_opt fields "quorum" with
      | None -> Ok None
      | Some v ->
        let* q = int_of "quorum" v in
        Ok (Some q)
    in
    let* drop_budget = get_int "drop-budget" in
    let* crash_budget = get_int "crash-budget" in
    let* depth_bound = get_int "depth-bound" in
    let* preempt_bound = get_int "preempt-bound" in
    Ok
      {
        config =
          {
            proto;
            nodes;
            delta;
            writes;
            reads;
            joins;
            quorum;
            drop_budget;
            crash_budget;
            depth_bound;
            preempt_bound;
          };
        decisions = List.rev !decisions;
      }
