(** Replayable checker schedules.

    A schedule is everything needed to re-execute one explored run
    exactly: the deployment configuration the checker built (protocol,
    sizes, workload script, adversary budgets, bounds) plus the
    decision sequence — one line per choice point, recording which
    branch was taken out of how many, with a human-readable label.
    Decisions beyond the recorded sequence default to branch 0
    (deliver in FIFO order, inject nothing), so a truncated or
    violating prefix replays to the identical execution.

    The textual format is line-oriented and exact:
    [to_string >> of_string] is the identity, so a counterexample
    written by [dds check] replays byte-for-byte under
    [dds run --schedule]. *)

type config = {
  proto : string;
  nodes : int;
  delta : int;
  writes : int;  (** scripted writes, all from the designated writer *)
  reads : int;  (** scripted reads, round-robin over the other nodes *)
  joins : int;  (** scripted joiners entering mid-run *)
  quorum : int option;  (** ES quorum override (the mutation lever) *)
  drop_budget : int;  (** adversary may drop up to this many messages *)
  crash_budget : int;  (** ... and crash up to this many processes *)
  depth_bound : int;  (** max decisions per run; deeper points default *)
  preempt_bound : int;  (** max non-FIFO scheduling choices per run *)
}

type decision = {
  chosen : int;  (** branch taken, in [\[0, arity)] *)
  arity : int;  (** how many branches the point offered *)
  label : string;  (** the chosen branch, human-readable (no spaces) *)
}

type t = { config : config; decisions : decision list }

val to_string : t -> string
val of_string : string -> (t, string) result
val pp : Format.formatter -> t -> unit
