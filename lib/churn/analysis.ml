open Dds_sim

type span = { starts : int; ends : int option } (* active interval [starts, ends) *)

type t = {
  actives : span array;  (** one per process that ever became active *)
  presents : span array;  (** one per process ever present: [join, leave) *)
}

let of_records records =
  let actives =
    List.filter_map
      (fun (r : Membership.record) ->
        match r.active_time with
        | None -> None
        | Some a ->
          Some { starts = Time.to_int a; ends = Option.map Time.to_int r.leave_time })
      records
  in
  let presents =
    List.map
      (fun (r : Membership.record) ->
        { starts = Time.to_int r.join_time; ends = Option.map Time.to_int r.leave_time })
      records
  in
  { actives = Array.of_list actives; presents = Array.of_list presents }

let count_at spans tau =
  let tau = Time.to_int tau in
  Array.fold_left
    (fun acc s ->
      let alive = s.starts <= tau && (match s.ends with None -> true | Some e -> tau < e) in
      if alive then acc + 1 else acc)
    0 spans

let active_at t tau = count_at t.actives tau
let present_at t tau = count_at t.presents tau

(* |A(tau1, tau2)|: active at every instant of [tau1, tau2], i.e.
   became active by tau1 and still there just after tau2. *)
let covers s ~from_ ~until =
  s.starts <= from_ && (match s.ends with None -> true | Some e -> until < e)

let active_through t ~from_ ~until =
  if Time.(until < from_) then invalid_arg "Analysis.active_through: until < from_";
  let from_ = Time.to_int from_ and until = Time.to_int until in
  Array.fold_left (fun acc s -> if covers s ~from_ ~until then acc + 1 else acc) 0 t.actives

(* Sweep with a difference array: the span contributes to
   A(tau, tau+window) for tau in [starts, ends - window - 1]. *)
let min_active_window t ~window ~from_ ~until =
  if window < 0 then invalid_arg "Analysis.min_active_window: negative window";
  if Time.(until < from_) then invalid_arg "Analysis.min_active_window: until < from_";
  let lo = Time.to_int from_ and hi = Time.to_int until in
  let len = hi - lo + 1 in
  let diff = Array.make (len + 1) 0 in
  Array.iter
    (fun s ->
      let first = Stdlib.max lo s.starts in
      let last =
        match s.ends with None -> hi | Some e -> Stdlib.min hi (e - window - 1)
      in
      if first <= last then begin
        diff.(first - lo) <- diff.(first - lo) + 1;
        diff.(last - lo + 1) <- diff.(last - lo + 1) - 1
      end)
    t.actives;
  let best_tau = ref lo and best = ref max_int and running = ref 0 in
  for i = 0 to len - 1 do
    running := !running + diff.(i);
    if !running < !best then begin
      best := !running;
      best_tau := lo + i
    end
  done;
  (Time.of_int !best_tau, !best)

let min_active t ~from_ ~until = min_active_window t ~window:0 ~from_ ~until

let series_active t ~from_ ~until =
  let lo = Time.to_int from_ and hi = Time.to_int until in
  let rec build tau acc =
    if tau > hi then List.rev acc
    else build (tau + 1) ((Time.of_int tau, active_at t (Time.of_int tau)) :: acc)
  in
  build lo []
