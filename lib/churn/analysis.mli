open Dds_sim

(** Post-hoc analysis of a run's membership history.

    Reconstructs [A(tau)] (the set of processes active at time [tau])
    and [A(tau1, tau2)] (processes active during the whole interval)
    from lifecycle records, for checking the paper's set-size claims:

    - Lemma 2: for the synchronous protocol with [c < 1/(3 delta)],
      [|A(tau, tau + 3 delta)| >= n (1 - 3 delta c) > 0] at every tau;
    - the eventually-synchronous assumption [|A(tau)| >= n/2 + 1].

    Membership conventions: a process is in [A(tau)] when it became
    active at or before [tau] and had not left at [tau] (leaving at
    exactly [tau] removes it); it is in [A(tau1, tau2)] when it is in
    [A(tau)] for every [tau] in [\[tau1, tau2\]]. *)

type t

val of_records : Membership.record list -> t
(** Build an analysis from {!Membership.records}. *)

val active_at : t -> Time.t -> int
(** [|A(tau)|]. *)

val present_at : t -> Time.t -> int
(** Number of joining-or-active processes at [tau]. *)

val active_through : t -> from_:Time.t -> until:Time.t -> int
(** [|A(from_, until)|].
    @raise Invalid_argument if [until < from_]. *)

val min_active_window :
  t -> window:int -> from_:Time.t -> until:Time.t -> Time.t * int
(** [min_active_window ~window ~from_ ~until] scans every
    [tau in [from_, until]] and returns the [tau] minimising
    [|A(tau, tau + window)|], with that minimum. Runs in
    O(processes + interval length).
    @raise Invalid_argument if [until < from_] or [window < 0]. *)

val min_active : t -> from_:Time.t -> until:Time.t -> Time.t * int
(** [min_active_window] with a zero-length window: the worst
    instantaneous [|A(tau)|]. *)

val series_active : t -> from_:Time.t -> until:Time.t -> (Time.t * int) list
(** [|A(tau)|] sampled at every tick of the range, for plotting. *)
