open Dds_sim
open Dds_net

type leave_policy = Uniform | Oldest_first | Youngest_first | Active_first

let pp_policy ppf = function
  | Uniform -> Format.pp_print_string ppf "uniform"
  | Oldest_first -> Format.pp_print_string ppf "oldest"
  | Youngest_first -> Format.pp_print_string ppf "youngest"
  | Active_first -> Format.pp_print_string ppf "active"

let policy_of_string = function
  | "uniform" -> Ok Uniform
  | "oldest" -> Ok Oldest_first
  | "youngest" -> Ok Youngest_first
  | "active" -> Ok Active_first
  | s -> Error (Printf.sprintf "unknown leave policy %S (uniform|oldest|youngest|active)" s)

type rate_profile =
  | Constant of float
  | Bursty of { base : float; peak : float; period : int; burst : int }
  | Profile of (Time.t -> float)

let rate_at profile now =
  match profile with
  | Constant c -> c
  | Bursty { base; peak; period; burst } ->
    if Time.to_int now mod period < burst then peak else base
  | Profile f -> f now

type t = {
  sched : Scheduler.t;
  rng : Rng.t;
  membership : Membership.t;
  n : int;
  profile : rate_profile;
  policy : leave_policy;
  protect : Pid.t -> bool;
  spawn : unit -> unit;
  retire : Pid.t -> unit;
  mutable acc : float;
  mutable refreshed : int;
  mutable token : Scheduler.token option;
  mutable stopped : bool;
}

let create ~sched ~rng ~membership ~n ~rate ?profile ?(policy = Uniform)
    ?(protect = fun _ -> false) ~spawn ~retire () =
  if rate < 0.0 || rate >= 1.0 then invalid_arg "Churn.create: rate must be in [0, 1)";
  if n <= 0 then invalid_arg "Churn.create: n must be positive";
  let profile = match profile with Some p -> p | None -> Constant rate in
  {
    sched;
    rng;
    membership;
    n;
    profile;
    policy;
    protect;
    spawn;
    retire;
    acc = 0.0;
    refreshed = 0;
    token = None;
    stopped = false;
  }

(* Orders candidate victims most-preferred first, according to the
   policy. Protected processes are filtered out before ranking. *)
let rank_victims t =
  let eligible =
    List.filter (fun pid -> not (t.protect pid)) (Membership.present t.membership)
  in
  let join_time pid =
    match Membership.find_record t.membership pid with
    | Some r -> Time.to_int r.Membership.join_time
    | None -> 0
  in
  match t.policy with
  | Uniform ->
    let arr = Array.of_list eligible in
    Rng.shuffle_in_place t.rng arr;
    Array.to_list arr
  | Oldest_first ->
    List.sort (fun a b -> Int.compare (join_time a) (join_time b)) eligible
  | Youngest_first ->
    List.sort (fun a b -> Int.compare (join_time b) (join_time a)) eligible
  | Active_first ->
    let actives, joinings =
      List.partition (fun pid -> Membership.is_active t.membership pid) eligible
    in
    let shuffle l =
      let arr = Array.of_list l in
      Rng.shuffle_in_place t.rng arr;
      Array.to_list arr
    in
    shuffle actives @ shuffle joinings

let rec tick t ~until () =
  if not t.stopped then begin
    let rate = rate_at t.profile (Scheduler.now t.sched) in
    t.acc <- t.acc +. (float_of_int t.n *. rate);
    let k = int_of_float t.acc in
    if k > 0 then begin
      t.acc <- t.acc -. float_of_int k;
      let victims =
        let ranked = rank_victims t in
        List.filteri (fun i _ -> i < k) ranked
      in
      List.iter t.retire victims;
      (* One replacement per departure, so |present| stays n even when
         protection starves the victim list. *)
      List.iter (fun _ -> t.spawn ()) victims;
      t.refreshed <- t.refreshed + List.length victims
    end;
    if Time.(Scheduler.now t.sched < until) then
      t.token <- Some (Scheduler.schedule_after t.sched 1 (tick t ~until))
  end

let start t ~until = t.token <- Some (Scheduler.schedule_after t.sched 1 (tick t ~until))

let stop t =
  t.stopped <- true;
  (match t.token with Some tok -> Scheduler.cancel t.sched tok | None -> ());
  t.token <- None

let refreshed t = t.refreshed

let expected_per_tick t =
  match t.profile with
  | Constant c -> float_of_int t.n *. c
  | Bursty { base; peak; period; burst } ->
    let avg =
      ((base *. float_of_int (period - burst)) +. (peak *. float_of_int burst))
      /. float_of_int period
    in
    float_of_int t.n *. avg
  | Profile _ -> nan
