open Dds_sim
open Dds_net

(** The constant-churn engine.

    Section 2.1: with churn rate [c] (0 <= c < 1) and system size [n],
    every time unit [c * n] processes leave and [c * n] new processes
    enter, so [n] stays constant. Fractional products accumulate: with
    [n = 100], [c = 0.025], the engine refreshes 2 processes on most
    ticks and 3 on every other tick, averaging exactly 2.5.

    The engine decides {e who} leaves (policy below) and {e when}, and
    delegates the actual mechanics to callbacks supplied by the
    deployment (detach from the network, create the replacement node,
    invoke its [join], ...). Crashes need no separate treatment: the
    model equates a crash with an unannounced leave. *)

type leave_policy =
  | Uniform  (** victims drawn uniformly among present processes *)
  | Oldest_first  (** longest-present processes go first *)
  | Youngest_first  (** newest processes go first *)
  | Active_first
      (** prefer {e active} processes — the worst case of Lemma 2's
          proof ("the processes that left were present at time tau") *)

(** How the churn rate evolves over time. The paper analyses constant
    churn; realistic systems see diurnal and flash-crowd patterns
    (Ko, Hoque & Gupta [19]), so the engine also offers a square-wave
    bursty profile and an arbitrary function of time. A profile's
    value at a tick is the [c] applied on that tick. *)
type rate_profile =
  | Constant of float
  | Bursty of { base : float; peak : float; period : int; burst : int }
      (** [base] everywhere except the first [burst] ticks of every
          [period]-tick window, where the rate is [peak] *)
  | Profile of (Time.t -> float)
      (** arbitrary; must return values in [\[0, 1)] *)

val rate_at : rate_profile -> Time.t -> float
(** The rate a profile applies at a given tick. *)

val pp_policy : Format.formatter -> leave_policy -> unit

val policy_of_string : string -> (leave_policy, string) result
(** Parses ["uniform"], ["oldest"], ["youngest"], ["active"]. *)

type t

val create :
  sched:Scheduler.t ->
  rng:Rng.t ->
  membership:Membership.t ->
  n:int ->
  rate:float ->
  ?profile:rate_profile ->
  ?policy:leave_policy ->
  ?protect:(Pid.t -> bool) ->
  spawn:(unit -> unit) ->
  retire:(Pid.t -> unit) ->
  unit ->
  t
(** [create ~n ~rate ...] refreshes [n * rate] processes per tick.
    [profile] overrides [rate] with a time-varying one (then [rate] is
    ignored). [protect] shields specific processes (e.g. the
    designated writer, matching the paper's "does not leave the
    system" hypotheses) from selection — the engine then takes the
    next victim by the same policy, leaving the refresh count intact
    when possible. [spawn] must make one new process enter the system;
    [retire pid] must make it leave. [policy] defaults to [Uniform].
    @raise Invalid_argument if [rate] is outside [0, 1) or [n <= 0]. *)

val start : t -> until:Time.t -> unit
(** Schedules one refresh event per tick from [now + 1] to [until]. *)

val stop : t -> unit
(** Cancels all future refresh events. *)

val refreshed : t -> int
(** Total number of leave/join pairs performed so far. *)

val expected_per_tick : t -> float
(** [n * rate]. *)
