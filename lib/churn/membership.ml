open Dds_sim
open Dds_net

type status = Joining | Active | Left

type record = {
  pid : Pid.t;
  join_time : Time.t;
  mutable active_time : Time.t option;
  mutable leave_time : Time.t option;
  mutable crashed : bool;
}

type t = {
  metrics : Metrics.t option;
  events : Event.sink option;
  table : record Pid.Table.t;
  mutable joining_set : Pid.Set.t;
  mutable active_set : Pid.Set.t;
}

let create ?metrics ?events () =
  {
    metrics;
    events;
    table = Pid.Table.create 64;
    joining_set = Pid.Set.empty;
    active_set = Pid.Set.empty;
  }

let bump t name = match t.metrics with Some m -> Metrics.incr m name | None -> ()

let emitf t ~now mk =
  match t.events with
  | Some sink when Event.enabled sink -> Event.emit sink ~at:now (mk ())
  | Some _ | None -> ()

let add t pid ~now =
  if Pid.Table.mem t.table pid then
    invalid_arg (Format.asprintf "Membership.add: %a was already present" Pid.pp pid);
  Pid.Table.replace t.table pid
    { pid; join_time = now; active_time = None; leave_time = None; crashed = false };
  t.joining_set <- Pid.Set.add pid t.joining_set;
  bump t "churn.join";
  emitf t ~now (fun () -> Event.Node_join { node = Pid.to_int pid })

let set_active t pid ~now =
  if not (Pid.Set.mem pid t.joining_set) then
    invalid_arg (Format.asprintf "Membership.set_active: %a is not joining" Pid.pp pid);
  (match Pid.Table.find_opt t.table pid with
  | Some r -> r.active_time <- Some now
  | None -> assert false);
  t.joining_set <- Pid.Set.remove pid t.joining_set;
  t.active_set <- Pid.Set.add pid t.active_set;
  bump t "churn.activate"

let remove t ?(crashed = false) pid ~now =
  let present = Pid.Set.mem pid t.joining_set || Pid.Set.mem pid t.active_set in
  if not present then
    invalid_arg (Format.asprintf "Membership.remove: %a is not present" Pid.pp pid);
  (match Pid.Table.find_opt t.table pid with
  | Some r ->
    r.leave_time <- Some now;
    r.crashed <- crashed
  | None -> assert false);
  t.joining_set <- Pid.Set.remove pid t.joining_set;
  t.active_set <- Pid.Set.remove pid t.active_set;
  if crashed then begin
    bump t "churn.crash";
    emitf t ~now (fun () -> Event.Node_crash { node = Pid.to_int pid })
  end
  else begin
    bump t "churn.leave";
    emitf t ~now (fun () -> Event.Node_leave { node = Pid.to_int pid })
  end

let status t pid =
  match Pid.Table.find_opt t.table pid with
  | None -> None
  | Some _ when Pid.Set.mem pid t.joining_set -> Some Joining
  | Some _ when Pid.Set.mem pid t.active_set -> Some Active
  | Some _ -> Some Left

let is_present t pid = Pid.Set.mem pid t.joining_set || Pid.Set.mem pid t.active_set
let is_active t pid = Pid.Set.mem pid t.active_set
let n_present t = Pid.Set.cardinal t.joining_set + Pid.Set.cardinal t.active_set
let n_active t = Pid.Set.cardinal t.active_set
let n_joining t = Pid.Set.cardinal t.joining_set
let present t = Pid.Set.elements (Pid.Set.union t.joining_set t.active_set)
let active t = Pid.Set.elements t.active_set
let joining t = Pid.Set.elements t.joining_set
let find_record t pid = Pid.Table.find_opt t.table pid

let records t =
  Pid.Table.fold (fun _ r acc -> r :: acc) t.table []
  |> List.sort (fun a b -> Pid.compare a.pid b.pid)
