open Dds_sim
open Dds_net

(** Dynamic system composition.

    Tracks which processes are in the system and in which mode
    (Section 2.1): a process is {e joining} (listening mode) from the
    invocation of its [join] operation, {e active} once [join] returns,
    and gone forever once it leaves. The full lifecycle of every
    process ever present is kept, so experiments can reconstruct
    [A(tau)] and [A(tau1, tau2)] after the run (see {!Analysis}). *)

type status =
  | Joining  (** in listening mode, [join] not yet returned *)
  | Active  (** [join] returned; may invoke read/write and must answer inquiries *)
  | Left  (** departed (voluntarily or by crash); never comes back *)

type record = {
  pid : Pid.t;
  join_time : Time.t;  (** when the process entered (listening from here) *)
  mutable active_time : Time.t option;  (** when [join] returned, if it did *)
  mutable leave_time : Time.t option;  (** when it left, if it did *)
  mutable crashed : bool;
      (** the departure was a crash-stop, not a graceful leave — the
          model treats both identically (a crash {e is} an unannounced
          leave, Section 2.1), so this only feeds audit attribution *)
}

type t

val create : ?metrics:Metrics.t -> ?events:Event.sink -> unit -> t
(** An empty composition. [metrics] receives [churn.join],
    [churn.activate], [churn.leave] and [churn.crash] counters;
    [events] receives one typed [Node_join] per {!add} and one
    [Node_leave] — or [Node_crash] for a [~crashed] removal — per
    {!remove} (activation is visible as the join span's [Op_end]
    instead). *)

val add : t -> Pid.t -> now:Time.t -> unit
(** The process enters the system (status {!Joining}).
    @raise Invalid_argument if the pid was ever present before. *)

val set_active : t -> Pid.t -> now:Time.t -> unit
(** The process's [join] returned.
    @raise Invalid_argument if the pid is not currently {!Joining}. *)

val remove : t -> ?crashed:bool -> Pid.t -> now:Time.t -> unit
(** The process leaves, forever. [~crashed:true] (default [false])
    marks the departure as a crash-stop: same membership effect, but
    the record is flagged, the event is [Node_crash] and the counter is
    [churn.crash], so traces distinguish injected crashes from the
    churn engine's graceful departures.
    @raise Invalid_argument if the pid is not currently present. *)

val status : t -> Pid.t -> status option
(** [None] for a pid never seen. *)

val is_present : t -> Pid.t -> bool
(** Joining or active. *)

val is_active : t -> Pid.t -> bool

val n_present : t -> int

val n_active : t -> int

val n_joining : t -> int

val present : t -> Pid.t list
(** Ascending pid order. *)

val active : t -> Pid.t list
(** Ascending pid order. *)

val joining : t -> Pid.t list
(** Ascending pid order. *)

val find_record : t -> Pid.t -> record option

val records : t -> record list
(** Lifecycle records of every process ever present, ascending pid. *)
