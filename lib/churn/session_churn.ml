open Dds_sim
open Dds_net

type distribution = Fixed of int | Geometric of float | Pareto of { alpha : float; xmin : float }

let validate = function
  | Fixed l when l <= 0 -> invalid_arg "Session_churn: Fixed length must be positive"
  | Geometric m when m <= 0.0 -> invalid_arg "Session_churn: Geometric mean must be positive"
  | Pareto { alpha; xmin } when alpha <= 0.0 || xmin < 1.0 ->
    invalid_arg "Session_churn: Pareto needs alpha > 0 and xmin >= 1"
  | Fixed _ | Geometric _ | Pareto _ -> ()

let mean_session = function
  | Fixed l -> float_of_int l
  | Geometric m -> m
  | Pareto { alpha; xmin } ->
    if alpha <= 1.0 then infinity else alpha *. xmin /. (alpha -. 1.0)

let sample dist rng =
  match dist with
  | Fixed l -> l
  | Geometric m ->
    (* Inverse-transform of the geometric on {1, 2, ...} with mean m:
       success probability p = 1/m. *)
    let p = 1.0 /. m in
    let u = Rng.float rng 1.0 in
    let u = if u <= 0.0 then 1e-12 else u in
    Stdlib.max 1 (int_of_float (ceil (log u /. log (1.0 -. p))))
  | Pareto { alpha; xmin } ->
    let u = Rng.float rng 1.0 in
    let u = if u <= 0.0 then 1e-12 else u in
    Stdlib.max 1 (int_of_float (xmin /. (u ** (1.0 /. alpha))))

type t = {
  sched : Scheduler.t;
  rng : Rng.t;
  membership : Membership.t;
  distribution : distribution;
  spawn : unit -> Pid.t;
  retire : Pid.t -> unit;
  expiries : Time.t Pid.Table.t;
  mutable replaced : int;
  mutable started_at : Time.t;
  mutable token : Scheduler.token option;
  mutable stopped : bool;
}

let assign_lifetime t pid =
  let length = sample t.distribution t.rng in
  Pid.Table.replace t.expiries pid (Time.add (Scheduler.now t.sched) length)

let create ~sched ~rng ~membership ~distribution ~spawn ~retire () =
  validate distribution;
  let t =
    {
      sched;
      rng;
      membership;
      distribution;
      spawn;
      retire;
      expiries = Pid.Table.create 64;
      replaced = 0;
      started_at = Scheduler.now sched;
      token = None;
      stopped = false;
    }
  in
  List.iter (assign_lifetime t) (Membership.present membership);
  t

let rec tick t ~until () =
  if not t.stopped then begin
    let now = Scheduler.now t.sched in
    let expired =
      Pid.Table.fold
        (fun pid expiry acc -> if Time.(expiry <= now) then pid :: acc else acc)
        t.expiries []
      |> List.sort Pid.compare
    in
    List.iter
      (fun pid ->
        Pid.Table.remove t.expiries pid;
        if Membership.is_present t.membership pid then begin
          t.retire pid;
          let replacement = t.spawn () in
          assign_lifetime t replacement;
          t.replaced <- t.replaced + 1
        end)
      expired;
    if Time.(now < until) then
      t.token <- Some (Scheduler.schedule_after t.sched 1 (tick t ~until))
  end

let start t ~until =
  t.started_at <- Scheduler.now t.sched;
  t.token <- Some (Scheduler.schedule_after t.sched 1 (tick t ~until))

let stop t =
  t.stopped <- true;
  (match t.token with Some tok -> Scheduler.cancel t.sched tok | None -> ());
  t.token <- None

let replaced t = t.replaced

let measured_rate t ~n =
  let elapsed = Time.diff (Scheduler.now t.sched) t.started_at in
  if elapsed <= 0 then 0.0
  else float_of_int t.replaced /. float_of_int elapsed /. float_of_int n
