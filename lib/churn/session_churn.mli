open Dds_sim
open Dds_net

(** Lifetime-driven churn.

    The paper justifies constant churn by citing Ko, Hoque & Gupta's
    tractable churn models [19], which describe member {e session
    lengths} rather than a global refresh rate. This engine implements
    that view: every process receives a session length drawn from a
    distribution when it enters, leaves when it expires, and is
    replaced on the spot (so the population stays at [n], as in the
    paper's model). The resulting {e rate} is emergent:

    - {b Fixed} length [L]: a deterministic rotation, rate exactly
      [1/L] — but perfectly correlated departures (everyone who
      arrived together leaves together);
    - {b Geometric} with mean [m]: memoryless — stochastically the
      same as the constant-rate engine with uniform victim selection
      at [c = 1/m], with binomial per-tick counts instead of a
      deterministic quota;
    - {b Pareto} (heavy-tailed, as measured in real P2P systems):
      equal mean, very different shape — a sticky core of long-lived
      members plus a fast-cycling fringe.

    Experiment E23 runs the synchronous register under all three at
    the same average churn and compares against the constant-rate
    engine, probing how load-bearing the "constant c" abstraction is
    for the paper's citation of [19]. *)

type distribution =
  | Fixed of int  (** every session lasts exactly this many ticks *)
  | Geometric of float  (** mean session length (ticks); memoryless *)
  | Pareto of { alpha : float; xmin : float }
      (** heavy tail; mean [alpha*xmin/(alpha-1)] for [alpha > 1] *)

val mean_session : distribution -> float
(** Expected session length in ticks ([infinity] for Pareto with
    [alpha <= 1]). *)

val sample : distribution -> Rng.t -> int
(** One session length, at least 1 tick. *)

type t

val create :
  sched:Scheduler.t ->
  rng:Rng.t ->
  membership:Membership.t ->
  distribution:distribution ->
  spawn:(unit -> Pid.t) ->
  retire:(Pid.t -> unit) ->
  unit ->
  t
(** [spawn] must bring one process into the system and return its pid
    (the engine then assigns it a lifetime); [retire] must remove one.
    Processes already present at creation are adopted and given
    lifetimes too.
    @raise Invalid_argument on a non-positive [Fixed]/[Geometric]
    parameter or [Pareto] with [alpha <= 0] or [xmin < 1]. *)

val start : t -> until:Time.t -> unit
(** Schedules the per-tick expiry sweep. *)

val stop : t -> unit

val replaced : t -> int
(** Total expiry-driven replacements so far. *)

val measured_rate : t -> n:int -> float
(** Replacements per tick per member so far — the emergent [c]. *)
