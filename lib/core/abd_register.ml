open Dds_sim
open Dds_net
open Dds_runtime
open Dds_spec

type params = { group_size : int; read_write_back : bool }

let default_params ~group_size = { group_size; read_write_back = true }
let majority p = (p.group_size / 2) + 1

type msg =
  | Read_req of { r_sn : int }
  | Read_reply of { value : Value.t; r_sn : int }
  | Write_req of { value : Value.t; wid : int }
  | Write_ack of { wid : int }

let name = "abd"

let pp_msg ppf = function
  | Read_req { r_sn } -> Format.fprintf ppf "READ(r_sn=%d)" r_sn
  | Read_reply { value; r_sn } -> Format.fprintf ppf "READ_REPLY(%a,r_sn=%d)" Value.pp value r_sn
  | Write_req { value; wid } -> Format.fprintf ppf "WRITE(%a,wid=%d)" Value.pp value wid
  | Write_ack { wid } -> Format.fprintf ppf "WRITE_ACK(wid=%d)" wid

let msg_kind = function
  | Read_req _ -> "READ"
  | Read_reply _ -> "READ_REPLY"
  | Write_req _ -> "WRITE"
  | Write_ack _ -> "WRITE_ACK"

let put_msg b = function
  | Read_req { r_sn } ->
    Wire.put_u8 b 0;
    Wire.put_int b r_sn
  | Read_reply { value; r_sn } ->
    Wire.put_u8 b 1;
    Value.put b value;
    Wire.put_int b r_sn
  | Write_req { value; wid } ->
    Wire.put_u8 b 2;
    Value.put b value;
    Wire.put_int b wid
  | Write_ack { wid } ->
    Wire.put_u8 b 3;
    Wire.put_int b wid

let get_msg r =
  match Wire.get_u8 r with
  | 0 -> Read_req { r_sn = Wire.get_int r }
  | 1 ->
    let value = Value.get r in
    Read_reply { value; r_sn = Wire.get_int r }
  | 2 ->
    let value = Value.get r in
    Write_req { value; wid = Wire.get_int r }
  | 3 -> Write_ack { wid = Wire.get_int r }
  | t -> raise (Wire.Malformed (Printf.sprintf "abd message tag %d" t))

type pending =
  | Idle
  | Query of { k : Value.t -> unit; then_write : int option }
      (** phase 1: collect a majority of read replies. [then_write]
          carries the datum when the query belongs to a write. *)
  | Propagate of { k : Value.t -> unit; value : Value.t }
      (** phase 2: write-back (read) or dissemination (write). *)

type node = {
  rt : msg Runtime.t;
  params : params;
  pid : Pid.t;
  server : bool;
  mutable register : Value.t option;
  mutable active : bool;
  mutable left : bool;
  mutable r_sn : int;
  mutable wid : int;
  replies : Value.t Pid.Table.t;
  mutable acks : Pid.Set.t;
  mutable pending : pending;
  span : Op_span.t;
}

let pid t = t.pid
let is_active t = t.active
let busy t = match t.pending with Idle -> false | _ -> true
let snapshot t = t.register
let is_server t = t.server
let quorum t = majority t.params
let current_sn t = match t.register with Some v -> v.Value.sn | None -> -1
let send t dst msg = Runtime.send t.rt ~src:t.pid ~dst msg
let current_span t = Op_span.current t.span

let span_start ?value t op = Op_span.start ?value t.span ~rt:t.rt ~pid:t.pid op
let span_phase t name = Op_span.phase t.span ~rt:t.rt ~pid:t.pid name
let span_quorum ?from t ~have =
  Op_span.quorum ?from t.span ~rt:t.rt ~pid:t.pid ~have ~need:(quorum t)
let span_finish ?value t = Op_span.finish ?value t.span ~rt:t.rt ~pid:t.pid

let best_reply t =
  Pid.Table.fold
    (fun _ v acc -> match acc with None -> Some v | Some b -> Some (Value.newer b v))
    t.replies None

let start_propagate t value k =
  t.wid <- t.wid + 1;
  t.acks <- Pid.Set.empty;
  t.pending <- Propagate { k; value };
  span_phase t "write-back-sent";
  Runtime.broadcast t.rt ~src:t.pid (Write_req { value; wid = t.wid })

let check_completion t =
  match t.pending with
  | Idle -> ()
  | Query { k; then_write } ->
    if Pid.Table.length t.replies >= quorum t then begin
      span_phase t "query-quorum-met";
      let best = match best_reply t with Some v -> v | None -> assert false in
      if best.Value.sn > current_sn t then t.register <- Some best;
      let latest = match t.register with Some v -> v | None -> assert false in
      match then_write with
      | Some data ->
        (* Write phase 2 with a fresh sequence number. *)
        let value = Value.make ~data ~sn:(latest.Value.sn + 1) in
        t.register <- Some value;
        start_propagate t value k
      | None ->
        if t.params.read_write_back then start_propagate t latest k
        else begin
          t.pending <- Idle;
          span_finish ~value:latest t;
          k latest
        end
    end
  | Propagate { k; value } ->
    if Pid.Set.cardinal t.acks >= quorum t then begin
      t.pending <- Idle;
      span_finish ~value t;
      k value
    end

let handle t ~src msg =
  if not t.left then
    match msg with
    | Read_req { r_sn } ->
      (* Only founding members serve. *)
      if t.server then begin
        let value =
          match t.register with Some v -> v | None -> Value.initial 0 (* unreachable *)
        in
        send t src (Read_reply { value; r_sn })
      end
    | Read_reply { value; r_sn } ->
      if r_sn = t.r_sn then begin
        Pid.Table.replace t.replies src value;
        (match t.pending with
        | Query _ -> span_quorum t ~from:(Pid.to_int src) ~have:(Pid.Table.length t.replies)
        | Idle | Propagate _ -> ());
        check_completion t
      end
    | Write_req { value; wid } ->
      if t.server then begin
        if value.Value.sn > current_sn t then t.register <- Some value;
        send t src (Write_ack { wid })
      end
    | Write_ack { wid } ->
      if wid = t.wid then begin
        t.acks <- Pid.Set.add src t.acks;
        (match t.pending with
        | Propagate _ -> span_quorum t ~from:(Pid.to_int src) ~have:(Pid.Set.cardinal t.acks)
        | Idle | Query _ -> ());
        check_completion t
      end

let start_query t ~then_write k =
  t.r_sn <- t.r_sn + 1;
  Pid.Table.reset t.replies;
  t.pending <- Query { k; then_write };
  span_phase t "query-sent";
  Runtime.broadcast t.rt ~src:t.pid (Read_req { r_sn = t.r_sn })

let create ~rt ~params ~pid ~initial ~on_active =
  let t =
    {
      rt;
      params;
      pid;
      server = (match initial with Some _ -> true | None -> false);
      register = initial;
      active = false;
      left = false;
      r_sn = 0;
      wid = 0;
      replies = Pid.Table.create 16;
      acks = Pid.Set.empty;
      pending = Idle;
      span = Op_span.make ();
    }
  in
  Runtime.attach rt pid (fun ~src msg -> handle t ~src msg);
  (match initial with
  | Some v ->
    t.active <- true;
    on_active v
  | None ->
    (* A late arrival joins by performing a client read against the
       founding group — ABD has no membership change, so this is the
       best a static protocol can offer. *)
    span_start t Event.Join;
    start_query t ~then_write:None (fun value ->
        t.active <- true;
        span_finish t;
        on_active value));
  t

let read t ~k =
  if not t.active then invalid_arg "Abd_register.read: node is not active";
  if busy t then invalid_arg "Abd_register.read: node is busy";
  span_start t Event.Read;
  start_query t ~then_write:None k

let write t data ~k =
  if not t.active then invalid_arg "Abd_register.write: node is not active";
  if busy t then invalid_arg "Abd_register.write: node is busy";
  (* Sequence number fixed after the query phase; the Op_start carries
     the local guess, the Op_end the disseminated value. *)
  span_start t ~value:(Value.make ~data ~sn:(current_sn t + 1)) Event.Write;
  start_query t ~then_write:(Some data) k

let leave t =
  t.left <- true;
  Runtime.detach t.rt t.pid
