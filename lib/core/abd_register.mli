open Dds_spec

(** Static ABD-style atomic register (Attiya, Bar-Noy & Dolev, JACM
    1995 — the paper's reference [3]), as the baseline the dynamic
    protocols are measured against.

    ABD assumes a {e fixed} set of [n0] servers of which a majority
    never fails. Here the servers are the founding members; processes
    that join later act as clients only — they can read and write
    through the original group but never serve, because a static
    protocol has no way to induct them. Under churn the founding
    majority erodes and every quorum wait eventually blocks forever:
    experiment E10 measures exactly when. This is not a strawman
    implementation — reads and writes are the classic two-phase
    (query-majority then, optionally, write-back) algorithm and are
    linearizable while the founding majority survives.

    A joining process's "join" is a client read: it terminates when a
    majority of the founding group answers, and adopts the newest
    value heard. *)

type params = {
  group_size : int;  (** [n0], the founding server-group size *)
  read_write_back : bool;
      (** propagate the read value to a majority before returning
          (required for atomicity; [false] gives a regular register) *)
}

val default_params : group_size:int -> params
(** [read_write_back = true]. *)

val majority : params -> int
(** [floor(group_size/2) + 1]. *)

type msg =
  | Read_req of { r_sn : int }
  | Read_reply of { value : Value.t; r_sn : int }
  | Write_req of { value : Value.t; wid : int }
  | Write_ack of { wid : int }

include Register_intf.PROTOCOL with type msg := msg and type params := params

val is_server : node -> bool
(** Founding member (serves quorum requests). *)
