open Dds_sim
open Dds_net
open Dds_churn
open Dds_runtime
open Dds_spec

type config = {
  seed : int;
  n : int;
  delay : Delay.t;
  churn_rate : float;
  churn_profile : Churn.rate_profile option;
  churn_policy : Churn.leave_policy;
  protect_writer : bool;
  initial_value : int;
  broadcast_mode : Network.broadcast_mode;
  trace_enabled : bool;
  events_enabled : bool;
  events_first_span : int;
}

let default_config ~seed ~n ~delay ~churn_rate =
  {
    seed;
    n;
    delay;
    churn_rate;
    churn_profile = None;
    churn_policy = Churn.Uniform;
    protect_writer = true;
    initial_value = 0;
    broadcast_mode = Network.Primitive;
    trace_enabled = false;
    events_enabled = false;
    events_first_span = 0;
  }

(* Power-of-two tick buckets for the operation-latency histograms:
   1, 2, 4, ..., 1024 ticks, then the overflow bucket. *)
let latency_edges = Array.init 11 (fun i -> float_of_int (1 lsl i))

module type S = sig
  module Protocol : Register_intf.PROTOCOL

  type t

  val create : config -> Protocol.params -> t
  val config : t -> config
  val scheduler : t -> Scheduler.t
  val network : t -> Protocol.msg Network.t
  val membership : t -> Membership.t
  val history : t -> History.t
  val metrics : t -> Metrics.t
  val metrics_snapshot : t -> Metrics.snapshot
  val events : t -> Event.sink
  val trace : t -> Trace.t
  val workload_rng : t -> Rng.t
  val now : t -> Time.t
  val writer : t -> Pid.t option
  val elect_writer : t -> Pid.t option
  val node : t -> Pid.t -> Protocol.node option
  val spawn : t -> Pid.t
  val retire : t -> Pid.t -> unit
  val crash : t -> Pid.t -> unit
  val start_churn : t -> until:Time.t -> unit
  val stop_churn : t -> unit
  val read : t -> Pid.t -> unit
  val write : t -> Pid.t -> unit
  val write_value : t -> Pid.t -> int -> unit
  val idle_active : t -> Pid.t list
  val random_idle_active : ?exclude:Pid.t list -> t -> Pid.t option
  val run_until : t -> Time.t -> unit
  val run_to_quiescence : t -> ?max_events:int -> unit -> unit
  val regularity : t -> Regularity.report
  val staleness : t -> Staleness.report
  val analysis : t -> Analysis.t
end

module Make (P : Register_intf.PROTOCOL) = struct
  module Protocol = P
  type t = {
    cfg : config;
    sched : Scheduler.t;
    net : P.msg Network.t;
    rt : P.msg Runtime.t;
    membership : Membership.t;
    history : History.t;
    metrics : Metrics.t;
    events : Event.sink;
    trace : Trace.t;
    churn_rng : Rng.t;
    workload_rng : Rng.t;
    pid_gen : Pid.gen;
    nodes : P.node Pid.Table.t;
    pending_ops : History.op_id list ref Pid.Table.t;
    mutable writer : Pid.t option;
    mutable churn : Churn.t option;
    mutable write_counter : int;
    params : P.params;
  }

  let config t = t.cfg
  let scheduler t = t.sched
  let network t = t.net
  let membership t = t.membership
  let history t = t.history
  let metrics t = t.metrics
  let events t = t.events
  let trace t = t.trace
  let workload_rng t = t.workload_rng
  let now t = Scheduler.now t.sched

  let metrics_snapshot t =
    Metrics.set_gauge t.metrics "sched.events_fired"
      (float_of_int (Scheduler.events_fired t.sched));
    Metrics.set_gauge t.metrics "sched.now" (float_of_int (Time.to_int (Scheduler.now t.sched)));
    Metrics.set_gauge t.metrics "membership.active"
      (float_of_int (List.length (Membership.active t.membership)));
    Metrics.snapshot t.metrics
  let writer t = t.writer
  let node t pid = Pid.Table.find_opt t.nodes pid

  let track_op t pid op_id =
    let cell =
      match Pid.Table.find_opt t.pending_ops pid with
      | Some c -> c
      | None ->
        let c = ref [] in
        Pid.Table.replace t.pending_ops pid c;
        c
    in
    cell := op_id :: !cell

  let untrack_op t pid op_id =
    match Pid.Table.find_opt t.pending_ops pid with
    | Some c -> c := List.filter (fun id -> id <> op_id) !c
    | None -> ()

  let abort_pending t pid =
    match Pid.Table.find_opt t.pending_ops pid with
    | Some c ->
      List.iter (History.abort t.history) !c;
      c := []
    | None -> ()

  (* Brings one joiner into the system and records its join; the
     [on_active] callback closes the join record with the adopted
     value — unless the process left first, in which case the churn
     path already aborted the record. *)
  let spawn t =
    let pid = Pid.fresh t.pid_gen in
    let entered = now t in
    Membership.add t.membership pid ~now:entered;
    let op_id = History.begin_join t.history pid ~now:entered in
    track_op t pid op_id;
    let on_active value =
      if Membership.is_present t.membership pid then begin
        Membership.set_active t.membership pid ~now:(now t);
        History.end_join t.history op_id ~now:(now t) value;
        untrack_op t pid op_id;
        Metrics.observe t.metrics "latency.join" ~edges:latency_edges
          (float_of_int (Time.diff (now t) entered));
        Trace.recordf t.trace ~time:(now t) ~topic:"join" "%a active with %a" Pid.pp pid
          Value.pp value
      end
    in
    let node = P.create ~rt:t.rt ~params:t.params ~pid ~initial:None ~on_active in
    Pid.Table.replace t.nodes pid node;
    Trace.recordf t.trace ~time:(now t) ~topic:"join" "%a enters" Pid.pp pid;
    pid

  (* A crash-stop and a graceful leave are mechanically the same
     departure — the model equates them (a crash is an unannounced
     leave, and [P.leave] is already silent in every protocol) — so
     they share one path and differ only in bookkeeping: the membership
     record, the emitted event and the trace topic say which it was. *)
  let depart t ~crashed ~who pid =
    match Pid.Table.find_opt t.nodes pid with
    | None -> invalid_arg (Format.asprintf "Deployment.%s: unknown %a" who Pid.pp pid)
    | Some node ->
      (* Close the telemetry span of any operation the departure cuts
         short, so traces never carry an orphan [Op_start]. *)
      (match P.current_span node with
      | Some (span, op) ->
        Event.emit t.events ~at:(now t)
          (Event.Op_end { span; node = Pid.to_int pid; op; outcome = Event.Aborted; value = None })
      | None -> ());
      P.leave node;
      abort_pending t pid;
      Membership.remove t.membership ~crashed pid ~now:(now t);
      Pid.Table.remove t.nodes pid;
      if t.writer = Some pid then t.writer <- None;
      Trace.recordf t.trace ~time:(now t)
        ~topic:(if crashed then "crash" else "leave")
        "%a %s" Pid.pp pid
        (if crashed then "crash-stops" else "leaves")

  let retire t pid = depart t ~crashed:false ~who:"retire" pid
  let crash t pid = depart t ~crashed:true ~who:"crash" pid

  let create cfg params =
    (* Probe phases so an attached engine profiler can attribute cell
       setup cost; with no handler installed each is one ref load. *)
    Probe.span "deploy" @@ fun () ->
    let net_rng, churn_rng, workload_rng =
      Probe.span "rng" (fun () ->
          let root = Rng.create ~seed:cfg.seed in
          let net_rng = Rng.split root in
          let churn_rng = Rng.split root in
          let workload_rng = Rng.split root in
          (net_rng, churn_rng, workload_rng))
    in
    let sched = Scheduler.create () in
    let metrics = Metrics.create () in
    let events = Event.create ~first_span:cfg.events_first_span ~enabled:cfg.events_enabled () in
    let trace = Trace.create ~enabled:cfg.trace_enabled () in
    let net =
      Network.create ~sched ~rng:net_rng ~delay:cfg.delay ~metrics ~trace ~events
        ~pp_msg:P.pp_msg ~msg_kind:P.msg_kind ~broadcast_mode:cfg.broadcast_mode ()
    in
    let membership = Membership.create ~metrics ~events () in
    (* Stamp the eventually-synchronous model's stabilization instant
       into the trace. Scheduled only when telemetry is on, so disabled
       runs keep the exact same scheduler queue as before. *)
    (if cfg.events_enabled then
       match Delay.gst cfg.delay with
       | Some gst ->
         ignore
           (Scheduler.schedule_at sched gst (fun () ->
                Event.emit events ~at:gst Event.Gst_reached))
       | None -> ());
    let initial_value = Value.initial cfg.initial_value in
    let history = History.create ~initial:initial_value in
    let rt = Runtime.of_sim ~sched ~net in
    let t =
      {
        cfg;
        sched;
        net;
        rt;
        membership;
        history;
        metrics;
        events;
        trace;
        churn_rng;
        workload_rng;
        pid_gen = Pid.generator ();
        nodes = Pid.Table.create 64;
        pending_ops = Pid.Table.create 64;
        writer = None;
        churn = None;
        write_counter = 0;
        params;
      }
    in
    (* The n founding members, active from time 0 with the initial
       value; the lowest pid is the designated writer. *)
    for _ = 1 to cfg.n do
      let pid = Pid.fresh t.pid_gen in
      Membership.add t.membership pid ~now:Time.zero;
      let node =
        P.create ~rt ~params ~pid ~initial:(Some initial_value)
          ~on_active:(fun _ -> Membership.set_active t.membership pid ~now:Time.zero)
      in
      Pid.Table.replace t.nodes pid node;
      if t.writer = None then t.writer <- Some pid
    done;
    t

  let start_churn t ~until =
    let protect pid =
      (t.cfg.protect_writer && t.writer = Some pid)
      ||
      (* Never churn out a process mid-write: the termination lemmas
         assume the writer stays for the duration of its write. *)
      match Pid.Table.find_opt t.nodes pid with
      | Some node -> P.is_active node && P.busy node
      | None -> false
    in
    let churn =
      Churn.create ~sched:t.sched ~rng:t.churn_rng ~membership:t.membership ~n:t.cfg.n
        ~rate:t.cfg.churn_rate ?profile:t.cfg.churn_profile ~policy:t.cfg.churn_policy
        ~protect
        ~spawn:(fun () -> ignore (spawn t))
        ~retire:(fun pid -> retire t pid)
        ()
    in
    Churn.start churn ~until;
    t.churn <- Some churn

  let stop_churn t = match t.churn with Some c -> Churn.stop c | None -> ()

  let get_ready_node t pid ~op =
    match Pid.Table.find_opt t.nodes pid with
    | None -> invalid_arg (Printf.sprintf "Deployment.%s: unknown node" op)
    | Some node ->
      if not (P.is_active node) then
        invalid_arg (Printf.sprintf "Deployment.%s: node not active" op);
      if P.busy node then invalid_arg (Printf.sprintf "Deployment.%s: node busy" op);
      node

  let read t pid =
    let node = get_ready_node t pid ~op:"read" in
    let started = now t in
    let op_id = History.begin_read t.history pid ~now:started in
    track_op t pid op_id;
    Metrics.incr t.metrics "op.read";
    P.read node ~k:(fun value ->
        History.end_read t.history op_id ~now:(now t) value;
        untrack_op t pid op_id;
        Metrics.observe t.metrics "latency.read" ~edges:latency_edges
          (float_of_int (Time.diff (now t) started)))

  let write_value t pid data =
    let node = get_ready_node t pid ~op:"write" in
    let sn =
      (* The history needs the sn the write will carry; with the
         single-writer regime it is the node's current sn + 1. The
         exact value is patched in at completion (History.end_write). *)
      match P.snapshot node with
      | Some v when not (Value.is_bottom v) -> v.Value.sn + 1
      | Some _ | None -> 0
    in
    let started = now t in
    let op_id = History.begin_write t.history pid ~now:started (Value.make ~data ~sn) in
    track_op t pid op_id;
    Metrics.incr t.metrics "op.write";
    P.write node data ~k:(fun value ->
        History.end_write t.history op_id ~now:(now t) value;
        untrack_op t pid op_id;
        Metrics.observe t.metrics "latency.write" ~edges:latency_edges
          (float_of_int (Time.diff (now t) started)))

  let write t pid =
    t.write_counter <- t.write_counter + 1;
    write_value t pid t.write_counter

  let idle_active t =
    List.filter
      (fun pid ->
        match Pid.Table.find_opt t.nodes pid with
        | Some node -> P.is_active node && not (P.busy node)
        | None -> false)
      (Membership.active t.membership)

  let random_idle_active ?(exclude = []) t =
    let candidates =
      List.filter (fun pid -> not (List.exists (Pid.equal pid) exclude)) (idle_active t)
    in
    match candidates with
    | [] -> None
    | _ -> Some (Rng.pick_list t.workload_rng candidates)

  (* Footnote 1: any number of writers is fine as long as writes are
     never concurrent — one designation at a time guarantees that. *)
  let elect_writer t =
    match t.writer with
    | Some w when Pid.Table.mem t.nodes w -> Some w
    | Some _ | None -> (
      t.writer <- None;
      match random_idle_active t with
      | Some pid ->
        t.writer <- Some pid;
        Trace.recordf t.trace ~time:(now t) ~topic:"writer" "%a elected writer" Pid.pp pid;
        t.writer
      | None -> None)

  let run_until t horizon = Scheduler.run_until t.sched horizon
  let run_to_quiescence t ?max_events () = Scheduler.run t.sched ?max_events ()
  let regularity t = Regularity.check t.history
  let staleness t = Staleness.measure t.history
  let analysis t = Analysis.of_records (Membership.records t.membership)
end
