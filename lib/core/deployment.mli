open Dds_sim
open Dds_net
open Dds_churn
open Dds_spec

(** Wiring a register protocol into a full simulated system.

    [Make (P)] assembles, from one seed: a scheduler, a network with
    the requested delay model, a membership table, the churn engine,
    the history recorder, and [n] founding nodes (one of which is the
    designated writer — footnote 1's single-writer regime). Every
    operation issued through the deployment is recorded in the history;
    operations cut short because their process left are marked aborted,
    so the safety checkers judge exactly what the paper's specification
    covers. *)

type config = {
  seed : int;
  n : int;  (** constant system size *)
  delay : Delay.t;
  churn_rate : float;  (** the paper's [c] *)
  churn_profile : Churn.rate_profile option;
      (** overrides [churn_rate] with a time-varying profile *)
  churn_policy : Churn.leave_policy;
  protect_writer : bool;
      (** never churn out the designated writer (the termination lemmas
          assume the writer stays for its writes) *)
  initial_value : int;
  broadcast_mode : Network.broadcast_mode;
      (** the postulated primitive, or the flooding implementation of
          it (remember to scale the protocol's delta to
          [relay_depth * hop bound]) *)
  trace_enabled : bool;
  events_enabled : bool;
      (** record typed telemetry ({!Event.t}) for the whole run: every
          message copy, membership change, and operation span. Off by
          default — a disabled sink records nothing and allocates no
          event detail. *)
  events_first_span : int;
      (** base of this deployment's span-id counter (default 0). A
          multi-register store gives each shard's sink a disjoint base
          (shard * 1_000_000, mirroring the live runtime's per-node
          offsets) so span ids stay unique when per-shard traces are
          merged into one file. *)
}

val default_config : seed:int -> n:int -> delay:Delay.t -> churn_rate:float -> config
(** Uniform churn policy, protected writer, initial value 0, no trace,
    no typed events. *)

(** The interface a deployment presents, abstracted over its protocol
    so generic drivers (workload generators, sweep runners) can be
    written once for all three register implementations. *)
module type S = sig
  module Protocol : Register_intf.PROTOCOL

  type t

  val create : config -> Protocol.params -> t
  (** Builds the system at time 0: [n] founding members, all active and
      holding the initial value (Section 3.3's initialization). Churn
      has not started yet. *)

  (** {1 Substrate access} *)

  val config : t -> config
  val scheduler : t -> Scheduler.t
  val network : t -> Protocol.msg Network.t
  val membership : t -> Membership.t
  val history : t -> History.t
  val metrics : t -> Metrics.t

  val metrics_snapshot : t -> Metrics.snapshot
  (** Freezes the metrics registry, refreshing the deployment-level
      gauges first ([sched.events_fired], [sched.now],
      [membership.active]). *)

  val events : t -> Event.sink
  (** The run's typed-event sink (disabled unless
      {!config.events_enabled}); protocols, network and membership all
      feed it. On churn-retire the deployment closes the victim's
      in-flight span with an [Aborted] {!Event.Op_end}, so every
      [Op_start] in the record is matched. *)

  val trace : t -> Trace.t
  val workload_rng : t -> Rng.t
  (** A dedicated stream for workload decisions, so adding workload
      randomness never perturbs delay or churn draws. *)

  val now : t -> Time.t

  (** {1 Processes} *)

  val writer : t -> Pid.t option
  (** The designated writer, [None] once it has left. *)

  val elect_writer : t -> Pid.t option
  (** Re-designates the writer when the previous one has left,
      promoting a random idle active process (footnote 1: the
      protocols support any number of writers as long as writes are
      never concurrent, and designation-at-a-time guarantees that).
      Returns the current writer, old or new; [None] when nobody is
      active and idle. *)

  val node : t -> Pid.t -> Protocol.node option

  val spawn : t -> Pid.t
  (** Manually brings one new process into the system (its join is
      recorded in the history). The churn engine calls this internally;
      tests use it for hand-built scenarios. *)

  val retire : t -> Pid.t -> unit
  (** Manually makes a process leave; pending operations are aborted.
      @raise Invalid_argument if the pid is not present. *)

  val crash : t -> Pid.t -> unit
  (** Crash-stops a process: same departure as {!retire} — the model
      equates a crash with an unannounced leave (Section 2.1), and the
      leave protocol is silent in all three register implementations —
      but the membership record is flagged [crashed], the emitted event
      is [Node_crash] rather than [Node_leave], and the churn counter
      is [churn.crash], so traces and audits can attribute violations
      to injected crashes. The fault layer ([Dds_fault]) calls this;
      tests use it directly.
      @raise Invalid_argument if the pid is not present. *)

  val start_churn : t -> until:Time.t -> unit

  val stop_churn : t -> unit

  (** {1 Operations} (all recorded in the history) *)

  val read : t -> Pid.t -> unit
  (** @raise Invalid_argument if the node is absent, inactive or busy. *)

  val write : t -> Pid.t -> unit
  (** Writes the next datum from an internal counter (1, 2, 3, ...), so
      every write in a run carries a distinct value.
      @raise Invalid_argument as {!read}. *)

  val write_value : t -> Pid.t -> int -> unit
  (** Write an explicit datum. *)

  val idle_active : t -> Pid.t list
  (** Active processes with no operation in flight, ascending pid. *)

  val random_idle_active : ?exclude:Pid.t list -> t -> Pid.t option

  (** {1 Running} *)

  val run_until : t -> Time.t -> unit

  val run_to_quiescence : t -> ?max_events:int -> unit -> unit

  (** {1 Verdicts} *)

  val regularity : t -> Regularity.report

  val staleness : t -> Staleness.report

  val analysis : t -> Analysis.t
  (** Post-hoc membership analysis of the run so far. *)
end

module Make (P : Register_intf.PROTOCOL) : S with module Protocol = P
