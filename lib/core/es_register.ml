open Dds_sim
open Dds_net
open Dds_runtime
open Dds_spec

type params = { n : int; quorum_override : int option; read_repair : bool }

let default_params ~n = { n; quorum_override = None; read_repair = false }

let majority p =
  match p.quorum_override with Some q -> q | None -> (p.n / 2) + 1

type msg =
  | Inquiry of { r_sn : int }
  | Read_req of { r_sn : int }
  | Reply of { value : Value.t; r_sn : int }
  | Write_msg of { value : Value.t }
  | Ack of { sn : int }
  | Dl_prev of { r_sn : int }

let name = "es"

let pp_msg ppf = function
  | Inquiry { r_sn } -> Format.fprintf ppf "INQUIRY(r_sn=%d)" r_sn
  | Read_req { r_sn } -> Format.fprintf ppf "READ(r_sn=%d)" r_sn
  | Reply { value; r_sn } -> Format.fprintf ppf "REPLY(%a,r_sn=%d)" Value.pp value r_sn
  | Write_msg { value } -> Format.fprintf ppf "WRITE(%a)" Value.pp value
  | Ack { sn } -> Format.fprintf ppf "ACK(sn=%d)" sn
  | Dl_prev { r_sn } -> Format.fprintf ppf "DL_PREV(r_sn=%d)" r_sn

let msg_kind = function
  | Inquiry _ -> "INQUIRY"
  | Read_req _ -> "READ"
  | Reply _ -> "REPLY"
  | Write_msg _ -> "WRITE"
  | Ack _ -> "ACK"
  | Dl_prev _ -> "DL_PREV"

let put_msg b = function
  | Inquiry { r_sn } ->
    Wire.put_u8 b 0;
    Wire.put_int b r_sn
  | Read_req { r_sn } ->
    Wire.put_u8 b 1;
    Wire.put_int b r_sn
  | Reply { value; r_sn } ->
    Wire.put_u8 b 2;
    Value.put b value;
    Wire.put_int b r_sn
  | Write_msg { value } ->
    Wire.put_u8 b 3;
    Value.put b value
  | Ack { sn } ->
    Wire.put_u8 b 4;
    Wire.put_int b sn
  | Dl_prev { r_sn } ->
    Wire.put_u8 b 5;
    Wire.put_int b r_sn

let get_msg r =
  match Wire.get_u8 r with
  | 0 -> Inquiry { r_sn = Wire.get_int r }
  | 1 -> Read_req { r_sn = Wire.get_int r }
  | 2 ->
    let value = Value.get r in
    Reply { value; r_sn = Wire.get_int r }
  | 3 -> Write_msg { value = Value.get r }
  | 4 -> Ack { sn = Wire.get_int r }
  | 5 -> Dl_prev { r_sn = Wire.get_int r }
  | t -> raise (Wire.Malformed (Printf.sprintf "es message tag %d" t))

type pending =
  | Idle
  | Joining of { k : Value.t -> unit }
  | Reading of { k : Value.t -> unit }
  | Write_read of { data : int; k : Value.t -> unit }
      (** Figure 6 line 01: the read embedded in a write *)
  | Write_collect of { value : Value.t; k : Value.t -> unit }
  | Repairing of { value : Value.t; k : Value.t -> unit }
      (** read-repair: re-disseminating the adopted value before the
          read returns (regular-to-atomic transformation) *)

type node = {
  rt : msg Runtime.t;
  params : params;
  pid : Pid.t;
  mutable register : Value.t option;
  mutable active : bool;
  mutable reading : bool;
  mutable read_sn : int;  (** 0 identifies the join (footnote 7) *)
  mutable left : bool;
  replies : Value.t Pid.Table.t;  (** distinct repliers, current phase *)
  mutable reply_to : (Pid.t * int) list;
  mutable dl_prev : (Pid.t * int) list;
  mutable write_ack : Pid.Set.t;
  mutable write_sn : int;  (** sequence number of the in-flight write *)
  mutable pending : pending;
  span : Op_span.t;
}

let pid t = t.pid
let is_active t = t.active
let busy t = match t.pending with Idle -> false | _ -> true
let snapshot t = t.register
let is_reading t = t.reading
let read_sn t = t.read_sn
let replies_gathered t = Pid.Table.length t.replies
let current_sn t = match t.register with Some v -> v.Value.sn | None -> -1
let quorum t = majority t.params
let current_span t = Op_span.current t.span

let span_start ?value t op = Op_span.start ?value t.span ~rt:t.rt ~pid:t.pid op
let span_phase t name = Op_span.phase t.span ~rt:t.rt ~pid:t.pid name
let span_quorum ?from t ~have =
  Op_span.quorum ?from t.span ~rt:t.rt ~pid:t.pid ~have ~need:(quorum t)
let span_finish ?value t = Op_span.finish ?value t.span ~rt:t.rt ~pid:t.pid

let send t dst msg = Runtime.send t.rt ~src:t.pid ~dst msg

let add_once assoc entry =
  if List.exists (fun e -> e = entry) assoc then assoc else entry :: assoc

(* Figure 4 lines 05-06 / Figure 5 lines 05-06: adopt the newest value
   among the gathered replies if it beats the local copy. *)
let adopt_best t =
  let folded =
    Pid.Table.fold
      (fun _ v acc -> match acc with None -> Some v | Some b -> Some (Value.newer b v))
      t.replies None
  in
  match folded with
  | Some v when v.Value.sn > current_sn t -> t.register <- Some v
  | Some _ | None -> ()

(* Figure 4 lines 07-10: switch to active mode and release the replies
   promised to concurrent joiners (reply_to) and to the processes whose
   DL_PREV we recorded. *)
let activate t k =
  t.active <- true;
  t.pending <- Idle;
  let value = match t.register with Some v -> v | None -> assert false in
  let targets = List.rev_append t.reply_to (List.rev t.dl_prev) in
  t.reply_to <- [];
  t.dl_prev <- [];
  List.iter (fun (j, r_sn) -> send t j (Reply { value; r_sn })) targets;
  span_finish ~value t;
  k value

(* Figure 6 lines 02-05: the write proper, entered once the embedded
   read phase has fixed the latest sequence number. *)
let start_write_collect t data k =
  let sn = current_sn t + 1 in
  let value = Value.make ~data ~sn in
  t.register <- Some value;
  t.write_sn <- sn;
  t.write_ack <- Pid.Set.empty;
  t.pending <- Write_collect { value; k };
  span_phase t "write-broadcast";
  Runtime.broadcast t.rt ~src:t.pid (Write_msg { value })

let check_completion t =
  match t.pending with
  | Idle -> ()
  | Joining { k } ->
    if Pid.Table.length t.replies >= quorum t then begin
      span_phase t "quorum-met";
      adopt_best t;
      activate t k
    end
  | Reading { k } ->
    if Pid.Table.length t.replies >= quorum t then begin
      span_phase t "quorum-met";
      adopt_best t;
      t.reading <- false;
      let value = match t.register with Some v -> v | None -> assert false in
      if t.params.read_repair then begin
        (* Regular-to-atomic: make a majority hold the value we are
           about to return, so no later read can come back older. *)
        t.write_sn <- value.Value.sn;
        t.write_ack <- Pid.Set.empty;
        t.pending <- Repairing { value; k };
        span_phase t "repair-broadcast";
        Runtime.broadcast t.rt ~src:t.pid (Write_msg { value })
      end
      else begin
        t.pending <- Idle;
        span_finish ~value t;
        k value
      end
    end
  | Repairing { value; k } ->
    if Pid.Set.cardinal t.write_ack >= quorum t then begin
      t.pending <- Idle;
      span_finish ~value t;
      k value
    end
  | Write_read { data; k } ->
    if Pid.Table.length t.replies >= quorum t then begin
      span_phase t "read-quorum-met";
      adopt_best t;
      t.reading <- false;
      start_write_collect t data k
    end
  | Write_collect { value; k } ->
    if Pid.Set.cardinal t.write_ack >= quorum t then begin
      t.pending <- Idle;
      span_finish ~value t;
      k value
    end

let handle t ~src msg =
  if not t.left then
    match msg with
    | Inquiry { r_sn } ->
      (* Figure 4 lines 12-17. *)
      if t.active then begin
        let value = match t.register with Some v -> v | None -> assert false in
        send t src (Reply { value; r_sn });
        if t.reading then send t src (Dl_prev { r_sn = t.read_sn })
      end
      else begin
        t.reply_to <- add_once t.reply_to (src, r_sn);
        send t src (Dl_prev { r_sn = t.read_sn })
      end
    | Read_req { r_sn } ->
      (* Figure 5 lines 08-11. *)
      if t.active then begin
        let value = match t.register with Some v -> v | None -> assert false in
        send t src (Reply { value; r_sn })
      end
      else t.reply_to <- add_once t.reply_to (src, r_sn)
    | Reply { value; r_sn } ->
      (* Figure 4 lines 18-21; the ACK carries the replied value's
         sequence number (see the interface note on Lemma 7). *)
      if r_sn = t.read_sn then begin
        Pid.Table.replace t.replies src value;
        (match t.pending with
        | Joining _ | Reading _ | Write_read _ ->
          span_quorum t ~from:(Pid.to_int src) ~have:(Pid.Table.length t.replies)
        | Idle | Repairing _ | Write_collect _ -> ());
        send t src (Ack { sn = value.Value.sn });
        check_completion t
      end
    | Write_msg { value } ->
      (* Figure 6 lines 06-08. *)
      if value.Value.sn > current_sn t then t.register <- Some value;
      send t src (Ack { sn = value.Value.sn })
    | Ack { sn } ->
      (* Figure 6 lines 09-10 (and the read-repair's ack wait). *)
      (match t.pending with
      | (Write_collect _ | Repairing _) when sn = t.write_sn ->
        t.write_ack <- Pid.Set.add src t.write_ack;
        span_quorum t ~from:(Pid.to_int src) ~have:(Pid.Set.cardinal t.write_ack);
        check_completion t
      | _ -> ())
    | Dl_prev { r_sn } ->
      (* Figure 4 line 22 — plus the completion the listing leaves
         implicit: a DL_PREV can arrive after we already activated
         (its sender's REPLY may be the very message that completed
         our join), in which case the promised reply goes out now
         rather than rotting in a set nobody flushes again. *)
      if t.active then begin
        let value = match t.register with Some v -> v | None -> assert false in
        send t src (Reply { value; r_sn })
      end
      else t.dl_prev <- add_once t.dl_prev (src, r_sn)

let create ~rt ~params ~pid ~initial ~on_active =
  let t =
    {
      rt;
      params;
      pid;
      register = initial;
      active = false;
      reading = false;
      read_sn = 0;
      left = false;
      replies = Pid.Table.create 16;
      reply_to = [];
      dl_prev = [];
      write_ack = Pid.Set.empty;
      write_sn = -1;
      pending = Idle;
      span = Op_span.make ();
    }
  in
  Runtime.attach rt pid (fun ~src msg -> handle t ~src msg);
  (match initial with
  | Some v ->
    t.active <- true;
    on_active v
  | None ->
    (* Figure 4 lines 01-03: read_sn = 0 marks the join's inquiry. *)
    t.pending <- Joining { k = on_active };
    span_start t Event.Join;
    span_phase t "inquiry-sent";
    Runtime.broadcast rt ~src:pid (Inquiry { r_sn = 0 }));
  t

(* Figure 5 lines 01-03 — shared by reads and by the write's embedded
   read phase. *)
let start_read_phase t pending =
  t.read_sn <- t.read_sn + 1;
  Pid.Table.reset t.replies;
  t.reading <- true;
  t.pending <- pending;
  span_phase t "read-req-sent";
  Runtime.broadcast t.rt ~src:t.pid (Read_req { r_sn = t.read_sn })

let read t ~k =
  if not t.active then invalid_arg "Es_register.read: node is not active";
  if busy t then invalid_arg "Es_register.read: node is busy";
  span_start t Event.Read;
  start_read_phase t (Reading { k })

let write t data ~k =
  if not t.active then invalid_arg "Es_register.write: node is not active";
  if busy t then invalid_arg "Es_register.write: node is busy";
  (* The final sequence number is fixed only after the embedded read
     phase; the Op_start carries the local guess (what the deployment's
     history also records at invocation), the Op_end the true value. *)
  span_start t ~value:(Value.make ~data ~sn:(current_sn t + 1)) Event.Write;
  start_read_phase t (Write_read { data; k })

let leave t =
  t.left <- true;
  Runtime.detach t.rt t.pid
