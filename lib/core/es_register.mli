open Dds_spec

(** The eventually-synchronous regular-register protocol
    (Section 5, Figures 4-6).

    No delay bound is usable, so every wait is a {e quorum wait}:
    join, read and the write's acknowledgement phase each block until
    [floor(n/2) + 1] distinct processes have answered. Correctness
    rests on the assumptions of Section 5.2 — at every instant a
    majority of the [n] present processes is active, and
    [c <= 1/(3 delta n)] — plus eventual timely delivery after the
    (unknowable) global stabilization time.

    Protocol shape:

    - {b join} (Figure 4): broadcast [INQUIRY (i, 0)]; an active
      receiver replies immediately, a joining one postpones the reply
      until its own activation ([reply_to]) and meanwhile sends
      [DL_PREV] so the inquirer will symmetrically reply to {e it} upon
      activating — the handshake that makes concurrent joins unblock
      each other (Lemma 5). An active reader also sends [DL_PREV], so
      it will receive the joiner's value for its pending read.
    - {b read} (Figure 5): a simplified join — broadcast
      [READ (i, r_sn)], wait for a majority of replies tagged [r_sn],
      adopt the newest.
    - {b write} (Figure 6): an embedded read fetches the latest
      sequence number, then [WRITE (v, sn+1)] is broadcast and the
      writer waits for a majority of [ACK (sn+1)].

    Two implementation notes where Figure 4's listing is read charitably
    rather than literally:

    - line 20 acknowledges with the {e read} sequence number, while the
      write path (Figure 6 lines 09-10) matches acknowledgements against
      the {e data} sequence number; Lemma 7's proof makes clear the
      REPLY-triggered ACK must carry the replied value's sequence number
      so that a writer's reply to a joiner feeds its own acknowledgement
      quorum — we implement that reading;
    - line 22 only records a DL_PREV, and lines 08-09 flush the set once
      at activation; but a DL_PREV can arrive {e after} activation (its
      sender's REPLY may be the very message that completed the join), so
      an already-active recipient answers it immediately — otherwise the
      promised reply would never be sent and a reader could block, which
      Lemma 6 forbids. *)

type params = {
  n : int;  (** system size; the quorum threshold is [n/2 + 1] *)
  quorum_override : int option;
      (** replaces the majority threshold for {e every} wait (join,
          read, write acknowledgement). The paper's protocol is
          [None]; the E20 ablation sweeps this to show that majority
          is exactly the safety boundary — smaller quorums stop
          intersecting (stale reads slip through), larger ones only
          cost liveness under churn. *)
  read_repair : bool;
      (** the regular-to-atomic transformation, in the dynamic
          setting: before returning, a read propagates the value it
          adopted (a WRITE re-broadcast with the {e same} sequence
          number) and waits for a majority of acknowledgements, so any
          later read's quorum intersects a set that already holds it —
          no new/old inversion can form (this is ABD's read phase 2 /
          the classical transformations the paper's introduction cites
          [5, 7, 16, 21, 27, 29, 30]). Costs one extra round trip per
          read. [false] is the paper's regular register. *)
}

val default_params : n:int -> params
(** [quorum_override = None], [read_repair = false]. *)

val majority : params -> int
(** The effective threshold: [floor(n/2) + 1], or the override. *)

type msg =
  | Inquiry of { r_sn : int }  (** join's value request ([r_sn = 0]) *)
  | Read_req of { r_sn : int }  (** a read's value request *)
  | Reply of { value : Value.t; r_sn : int }
  | Write_msg of { value : Value.t }
  | Ack of { sn : int }
  | Dl_prev of { r_sn : int }
      (** "reply to me when you activate" (deferred-reply promise) *)

include Register_intf.PROTOCOL with type msg := msg and type params := params

val is_reading : node -> bool
(** The [reading_i] flag (true during reads, including a write's
    embedded read phase). White-box accessor for tests. *)

val read_sn : node -> int
(** Current read sequence number (0 until the first read). *)

val replies_gathered : node -> int
(** Distinct repliers in the current quorum wait. *)
