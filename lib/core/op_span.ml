open Dds_sim
open Dds_net
open Dds_spec

type t = { mutable current : (int * Event.op_kind) option }

let make () = { current = None }
let current t = t.current

let sink_of net = Network.events net

let payload_of (v : Value.t) = { Event.data = v.Value.data; sn = v.Value.sn }

let payload_opt = Option.map payload_of

let emit net sched ev =
  match sink_of net with
  | Some s -> Event.emit s ~at:(Scheduler.now sched) ev
  | None -> ()

let start ?value t ~net ~sched ~pid op =
  match sink_of net with
  | Some s when Event.enabled s ->
    let span = Event.fresh_span s in
    t.current <- Some (span, op);
    Event.emit s ~at:(Scheduler.now sched)
      (Event.Op_start { span; node = Pid.to_int pid; op; value = payload_opt value })
  | Some _ | None -> ()

let phase t ~net ~sched ~pid name =
  match t.current with
  | Some (span, _) ->
    emit net sched (Event.Op_phase { span; node = Pid.to_int pid; phase = name })
  | None -> ()

let quorum ?(from = -1) t ~net ~sched ~pid ~have ~need =
  match t.current with
  | Some (span, _) ->
    emit net sched (Event.Quorum_progress { span; node = Pid.to_int pid; have; need; from })
  | None -> ()

let finish ?(outcome = Event.Completed) ?value t ~net ~sched ~pid =
  match t.current with
  | Some (span, op) ->
    t.current <- None;
    emit net sched
      (Event.Op_end { span; node = Pid.to_int pid; op; outcome; value = payload_opt value })
  | None -> ()
