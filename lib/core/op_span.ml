open Dds_sim
open Dds_net
open Dds_runtime
open Dds_spec

type t = { mutable current : (int * Event.op_kind) option }

let make () = { current = None }
let current t = t.current

let payload_of (v : Value.t) = { Event.data = v.Value.data; sn = v.Value.sn }

let payload_opt = Option.map payload_of

let emit rt ev =
  match Runtime.events rt with
  | Some s -> Event.emit s ~at:(Runtime.now rt) ev
  | None -> ()

let start ?value t ~rt ~pid op =
  match Runtime.events rt with
  | Some s when Event.enabled s ->
    let span = Event.fresh_span s in
    t.current <- Some (span, op);
    Event.emit s ~at:(Runtime.now rt)
      (Event.Op_start { span; node = Pid.to_int pid; op; value = payload_opt value })
  | Some _ | None -> ()

let phase t ~rt ~pid name =
  match t.current with
  | Some (span, _) -> emit rt (Event.Op_phase { span; node = Pid.to_int pid; phase = name })
  | None -> ()

let quorum ?(from = -1) t ~rt ~pid ~have ~need =
  match t.current with
  | Some (span, _) ->
    emit rt (Event.Quorum_progress { span; node = Pid.to_int pid; have; need; from })
  | None -> ()

let finish ?(outcome = Event.Completed) ?value t ~rt ~pid =
  match t.current with
  | Some (span, op) ->
    t.current <- None;
    emit rt
      (Event.Op_end { span; node = Pid.to_int pid; op; outcome; value = payload_opt value })
  | None -> ()
