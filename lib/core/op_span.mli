open Dds_sim
open Dds_net
open Dds_runtime
open Dds_spec

(** Per-node operation-span bookkeeping, shared by the protocol
    implementations.

    A protocol node owns one {!t}; each join/read/write allocates one
    telemetry span ({!start}), marks its progress ({!phase},
    {!quorum}) and closes it exactly once ({!finish}) right before
    invoking the operation's continuation. The deployment closes
    still-open spans as [Aborted] when a process is churned out
    mid-operation (see {!Register_intf.PROTOCOL.current_span}).

    Every function is a no-op when the node's runtime carries no
    enabled {!Event.sink}, so an uninstrumented run pays one [option]
    match per call site and allocates nothing. *)

type t

val make : unit -> t
(** No span in flight. *)

val current : t -> (int * Event.op_kind) option
(** The open span, if any — what
    {!Register_intf.PROTOCOL.current_span} returns. *)

val start : ?value:Value.t -> t -> rt:'a Runtime.t -> pid:Pid.t -> Event.op_kind -> unit
(** Allocates a fresh span id and emits its [Op_start]. Overwrites any
    span still recorded (protocol drivers never overlap operations, so
    an overwrite only follows an abort already handled upstream).
    [value] is the operation's payload when known at start — for a
    write, the datum and the sequence number the writer expects to
    assign. *)

val phase : t -> rt:'a Runtime.t -> pid:Pid.t -> string -> unit
(** Emits an [Op_phase] mark on the open span (no-op without one). *)

val quorum : ?from:int -> t -> rt:'a Runtime.t -> pid:Pid.t -> have:int -> need:int -> unit
(** Emits a [Quorum_progress] on the open span (no-op without one).
    [from] is the responder whose message advanced the count (default
    [-1] = unknown); when [have = need] it names exactly which
    [Deliver] completed the quorum, which latency attribution
    ({!Dds_causal}) relies on. *)

val finish : ?outcome:Event.outcome -> ?value:Value.t -> t -> rt:'a Runtime.t -> pid:Pid.t -> unit
(** Emits the [Op_end] (default outcome [Completed]) and forgets the
    span. No-op without an open span, so a double finish is safe.
    [value] is the operation's result — the value a read or join
    returned, the value a write actually installed; omit it for
    aborts. *)
