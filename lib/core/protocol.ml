type spec = { n : int; delta : int; quorum : int option }

module type RUNNER = sig
  module D : Deployment.S

  val params : spec -> (D.Protocol.params, string) result
end

type t = {
  name : string;
  doc : string;
  atomic : bool;
  majority : bool;
  gst_liveness : bool;
  churn_bound : n:int -> delta:int -> float option;
  runner : (module RUNNER);
}

module Sync_runner = struct
  module D = Deployment.Make (Sync_register)

  let params (s : spec) =
    match s.quorum with
    | Some _ -> Error "protocol sync waits on time, not quorums: --quorum does not apply"
    | None -> Ok (Sync_register.default_params ~delta:s.delta)
end

module Es_runner = struct
  module D = Deployment.Make (Es_register)

  let params (s : spec) =
    let p = Es_register.default_params ~n:s.n in
    match s.quorum with
    | None -> Ok p
    | Some q when q >= 1 && q <= s.n -> Ok { p with Es_register.quorum_override = Some q }
    | Some q -> Error (Printf.sprintf "quorum %d out of range [1, %d]" q s.n)
end

module Abd_runner = struct
  module D = Deployment.Make (Abd_register)

  let params (s : spec) =
    match s.quorum with
    | Some _ -> Error "protocol abd fixes its quorum at majority: --quorum does not apply"
    | None -> Ok (Abd_register.default_params ~group_size:s.n)
end

(* The monitor metadata restates each protocol's theorem: sync's churn
   bound is 1/(3 delta) (Theorem 1 via Lemma 2) with liveness clocked
   from the invocation; ES assumes c <= 1/(3 delta n) plus a standing
   active majority, with liveness only promised after GST (Theorem 4);
   ABD assumes a stable majority of its founding group and bounds no
   churn. Only ABD promises atomicity. *)
let all =
  [
    {
      name = "sync";
      doc = "synchronous regular register (Figures 1-2; Theorem 1)";
      atomic = false;
      majority = false;
      gst_liveness = false;
      churn_bound = (fun ~n:_ ~delta -> Some (1.0 /. (3.0 *. float_of_int delta)));
      runner = (module Sync_runner : RUNNER);
    };
    {
      name = "es";
      doc = "eventually-synchronous quorum register (Figures 4-6; Theorem 4)";
      atomic = false;
      majority = true;
      gst_liveness = true;
      churn_bound =
        (fun ~n ~delta -> Some (1.0 /. (3.0 *. float_of_int delta *. float_of_int n)));
      runner = (module Es_runner : RUNNER);
    };
    {
      name = "abd";
      doc = "static-group ABD atomic register (the paper's baseline comparison)";
      atomic = true;
      majority = true;
      gst_liveness = true;
      churn_bound = (fun ~n:_ ~delta:_ -> None);
      runner = (module Abd_runner : RUNNER);
    };
  ]

let names = List.map (fun p -> p.name) all
let find name = List.find_opt (fun p -> String.equal p.name name) all

let find_exn name =
  match find name with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "unknown protocol %S (%s)" name (String.concat "|" names))
