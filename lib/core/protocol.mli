(** First-class protocol registry.

    One table owns everything the front ends need to know about a
    register protocol: its deployment functor instance, how to build
    its parameters from a generic {!spec}, and the monitor-relevant
    metadata its correctness theorem states (churn bound, standing
    majority assumption, whether liveness clocks start at GST, whether
    the protocol promises atomicity). `dds run`, `sweep`, `hunt` and
    `check` all select protocols from this table, so adding a protocol
    is one [entry] here — no string matching anywhere else. *)

type spec = {
  n : int;  (** system size *)
  delta : int;  (** message delay bound *)
  quorum : int option;
      (** quorum-threshold override, for protocols that have one (ES);
          the mutation lever the model checker's known-bad tests use *)
}

(** A protocol's deployment instance plus its parameter builder. *)
module type RUNNER = sig
  module D : Deployment.S

  val params : spec -> (D.Protocol.params, string) result
  (** [Error] when the spec asks for something the protocol does not
      have (e.g. a quorum override on a delta-based protocol). *)
end

type t = {
  name : string;
  doc : string;  (** one-line description, shown by [dds list] *)
  atomic : bool;
      (** promises atomicity: new/old inversions are counterexamples
          (ABD), not legitimate regular-register behaviour (sync, es) *)
  majority : bool;  (** standing active-majority assumption to monitor *)
  gst_liveness : bool;
      (** liveness clocks may start at GST when the delay model has
          one (eventually-synchronous protocols); [false] pins them to
          the invocation (synchronous protocols) *)
  churn_bound : n:int -> delta:int -> float option;
      (** the admissible churn rate the protocol's theorem assumes,
          [None] when it bounds no churn (ABD's static group) *)
  runner : (module RUNNER);
}

val all : t list
(** Every registered protocol, in canonical (registration) order. *)

val names : string list
(** Their names, same order — for error messages and CLI docs. *)

val find : string -> t option

val find_exn : string -> t
(** @raise Invalid_argument with the registered-name list when the
    protocol is unknown. *)
