open Dds_sim
open Dds_net
open Dds_runtime
open Dds_spec

(** Signature every register protocol implements.

    A protocol defines its wire message type, its static parameters,
    and a node state machine driven entirely by message deliveries and
    timers. Nodes are created either as {e founding members} (present
    at time 0, immediately active and holding the initial value —
    Section 3.3's initialization) or as {e joiners}, in which case
    [create] starts the protocol's [join] operation and [on_active]
    fires when it returns.

    Operations take continuations rather than blocking: the simulator
    is single-threaded and event-driven. A node must accept at most one
    operation at a time ({!busy}); drivers only submit to idle active
    nodes, matching the paper's sequential-process model. *)
module type PROTOCOL = sig
  type msg
  (** Wire messages (INQUIRY, REPLY, WRITE, ...). *)

  type params
  (** Static configuration: [delta] for the synchronous protocol, the
      system size [n] for the quorum-based ones. *)

  type node

  val name : string

  val pp_msg : Format.formatter -> msg -> unit

  val msg_kind : msg -> string
  (** The wire kind of a message (["INQUIRY"], ["REPLY"], ...):
      constant per constructor, used to label typed network telemetry
      and message-mix summaries. *)

  val put_msg : Buffer.t -> msg -> unit
  (** Binary codec for the Unix runtime's length-prefixed frames,
      built from {!Dds_net.Wire} primitives. *)

  val get_msg : Wire.reader -> msg
  (** Inverse of {!put_msg}.
      @raise Dds_net.Wire.Truncated if the payload ends mid-message.
      @raise Dds_net.Wire.Malformed on an unknown constructor tag. *)

  val create :
    rt:msg Runtime.t ->
    params:params ->
    pid:Pid.t ->
    initial:Value.t option ->
    on_active:(Value.t -> unit) ->
    node
  (** Brings a process into the system: attaches it to the runtime's
      transport (it is in listening mode from this instant, per
      Section 2.1) and either activates it immediately
      ([initial = Some v], founding member) or runs the join protocol
      ([initial = None]). [on_active] receives the local copy held
      when the join returned; for founding members it fires
      synchronously. The runtime is the {e only} environment a node
      touches — the same state machine runs over the simulator
      ({!Dds_runtime.Runtime.of_sim}) and over TCP
      ([Dds_runtime_unix.Node]). *)

  val pid : node -> Pid.t

  val is_active : node -> bool

  val busy : node -> bool
  (** An operation is in flight on this node. *)

  val snapshot : node -> Value.t option
  (** The node's local copy of the register, if it holds one. *)

  val current_span : node -> (int * Event.op_kind) option
  (** The telemetry span of the operation in flight on this node, if
      any — protocols allocate one span per join/read/write (see
      {!Event.fresh_span}) and emit its [Op_start]/[Op_phase]/[Op_end]
      events themselves; the deployment uses this accessor to close
      the span as [Aborted] when the process is churned out
      mid-operation. [None] whenever {!busy} is [false] and while no
      join is in progress, or when the network has no event sink. *)

  val read : node -> k:(Value.t -> unit) -> unit
  (** Invokes the read operation. [k] fires with the returned value at
      response time.
      @raise Invalid_argument if the node is not active or is busy. *)

  val write : node -> int -> k:(Value.t -> unit) -> unit
  (** Invokes the write operation with a fresh datum. [k] fires at
      response time with the value actually written — the protocol
      (not the caller) assigns the sequence number, and for the
      quorum-based protocols it is only fixed mid-operation.
      @raise Invalid_argument if the node is not active or is busy. *)

  val leave : node -> unit
  (** The process leaves the system: detaches from the network, cancels
      pending timers, and will never invoke a continuation again. In-
      flight operations on this node are lost, as the model prescribes. *)
end
