open Dds_sim
open Dds_net
open Dds_runtime
open Dds_spec

type empty_inquiry_behavior = Retry | Adopt_bottom

type params = {
  delta : int;
  join_wait : bool;
  on_empty_inquiry : empty_inquiry_behavior;
  p2p_delta : int option;
}

let default_params ~delta =
  { delta; join_wait = true; on_empty_inquiry = Retry; p2p_delta = None }

(* Footnote 4: the inquiry's round trip is one broadcast (<= delta)
   plus one point-to-point reply (<= delta' when known). *)
let inquiry_round_trip params =
  match params.p2p_delta with
  | Some p2p -> params.delta + p2p
  | None -> 2 * params.delta

type msg = Inquiry | Reply of Value.t | Write_msg of Value.t

let name = "sync"

let pp_msg ppf = function
  | Inquiry -> Format.pp_print_string ppf "INQUIRY"
  | Reply v -> Format.fprintf ppf "REPLY(%a)" Value.pp v
  | Write_msg v -> Format.fprintf ppf "WRITE(%a)" Value.pp v

let msg_kind = function Inquiry -> "INQUIRY" | Reply _ -> "REPLY" | Write_msg _ -> "WRITE"

let put_msg b = function
  | Inquiry -> Wire.put_u8 b 0
  | Reply v ->
    Wire.put_u8 b 1;
    Value.put b v
  | Write_msg v ->
    Wire.put_u8 b 2;
    Value.put b v

let get_msg r =
  match Wire.get_u8 r with
  | 0 -> Inquiry
  | 1 -> Reply (Value.get r)
  | 2 -> Write_msg (Value.get r)
  | t -> raise (Wire.Malformed (Printf.sprintf "sync message tag %d" t))

type op = Idle | Writing of { k : Value.t -> unit }

type node = {
  rt : msg Runtime.t;
  params : params;
  pid : Pid.t;
  on_active : Value.t -> unit;
  mutable register : Value.t option;
  mutable replies : Value.t list;  (** REPLY payloads gathered while inquiring *)
  mutable reply_to : Pid.t list;  (** inquiries postponed until activation *)
  mutable active : bool;
  mutable left : bool;
  mutable op : op;
  mutable timers : Runtime.timer list;
  mutable join_retries : int;
  span : Op_span.t;
}

let pid t = t.pid
let is_active t = t.active
let busy t = match t.op with Idle -> false | Writing _ -> true
let snapshot t = t.register
let join_retries t = t.join_retries
let joins_in_flight_reply_queue t = t.reply_to
let current_span t = Op_span.current t.span

let span_start ?value t op = Op_span.start ?value t.span ~rt:t.rt ~pid:t.pid op
let span_phase t name = Op_span.phase t.span ~rt:t.rt ~pid:t.pid name
let span_finish ?value t = Op_span.finish ?value t.span ~rt:t.rt ~pid:t.pid

let current_sn t =
  match t.register with
  | Some v when not (Value.is_bottom v) -> v.Value.sn
  | Some _ | None -> -1

let set_timer t d f =
  let cancel = Runtime.after t.rt ~who:t.pid d (fun () -> if not t.left then f ()) in
  t.timers <- cancel :: t.timers

(* Lines 10-11: become active, then answer the postponed inquiries. *)
let activate t =
  t.active <- true;
  let value = match t.register with Some v -> v | None -> assert false in
  List.iter (fun j -> Runtime.send t.rt ~src:t.pid ~dst:j (Reply value)) t.reply_to;
  t.reply_to <- [];
  span_finish ~value t;
  t.on_active value

(* Lines 07-09: adopt the highest-sequence-number value heard, then
   activate — unless the inquiry round came back completely empty
   (possible only above the churn bound), in which case we inquire
   again rather than activate valueless. *)
let rec finish_inquiry t () =
  (match Value.newest t.replies with
  | Some best ->
    if best.Value.sn > current_sn t then t.register <- Some best
  | None -> ());
  match t.register with
  | Some _ -> activate t
  | None -> (
    (* Empty inquiry round: only possible above the churn bound, where
       Lemma 2 no longer guarantees a surviving replier. *)
    match t.params.on_empty_inquiry with
    | Adopt_bottom ->
      t.register <- Some Value.bottom;
      activate t
    | Retry ->
      t.join_retries <- t.join_retries + 1;
      Runtime.incr t.rt "sync.join.retry";
      start_inquiry t)

(* Lines 04-06: broadcast INQUIRY and wait the 2*delta round trip. *)
and start_inquiry t =
  t.replies <- [];
  span_phase t "inquiry-sent";
  Runtime.broadcast t.rt ~src:t.pid Inquiry;
  set_timer t (inquiry_round_trip t.params) (finish_inquiry t)

(* Line 03: inquire only if no write reached us during the wait. *)
let after_join_wait t () =
  span_phase t "join-wait-over";
  match t.register with Some _ -> activate t | None -> start_inquiry t

let handle t ~src msg =
  if not t.left then
    match msg with
    | Inquiry ->
      (* Lines 13-16. *)
      if t.active then begin
        let value = match t.register with Some v -> v | None -> assert false in
        Runtime.send t.rt ~src:t.pid ~dst:src (Reply value)
      end
      else if not (List.exists (Pid.equal src) t.reply_to) then
        t.reply_to <- src :: t.reply_to
    | Reply v ->
      (* Line 17. *)
      t.replies <- v :: t.replies
    | Write_msg v ->
      (* Figure 2, lines 03-04. *)
      if v.Value.sn > current_sn t then t.register <- Some v

let create ~rt ~params ~pid ~initial ~on_active =
  let t =
    {
      rt;
      params;
      pid;
      on_active;
      register = initial;
      replies = [];
      reply_to = [];
      active = false;
      left = false;
      op = Idle;
      timers = [];
      join_retries = 0;
      span = Op_span.make ();
    }
  in
  Runtime.attach rt pid (fun ~src msg -> handle t ~src msg);
  (match initial with
  | Some _ ->
    (* Founding member: active from time 0 with the initial value. *)
    activate t
  | None ->
    span_start t Event.Join;
    if params.join_wait then set_timer t params.delta (after_join_wait t)
    else after_join_wait t ());
  t

let read t ~k =
  if not t.active then invalid_arg "Sync_register.read: node is not active";
  (* Fast read: purely local, responds in the same tick (Figure 2).
     The span still exists — zero-duration, one per completed read —
     and closes before [k] so a chained operation can open its own. *)
  match t.register with
  | Some v ->
    span_start t Event.Read;
    span_finish ~value:v t;
    k v
  | None -> assert false

let write t data ~k =
  if not t.active then invalid_arg "Sync_register.write: node is not active";
  if busy t then invalid_arg "Sync_register.write: node is busy";
  let value = Value.make ~data ~sn:(current_sn t + 1) in
  t.register <- Some value;
  span_start ~value t Event.Write;
  span_phase t "write-broadcast";
  Runtime.broadcast t.rt ~src:t.pid (Write_msg value);
  t.op <- Writing { k };
  (* Figure 2, line 02: the writer returns after delta ticks, by which
     time every process present at the broadcast that stayed holds v. *)
  set_timer t t.params.delta (fun () ->
      t.op <- Idle;
      span_finish ~value t;
      k value)

let leave t =
  t.left <- true;
  List.iter (fun cancel -> cancel ()) t.timers;
  t.timers <- [];
  Runtime.detach t.rt t.pid
