open Dds_net
open Dds_spec

(** The synchronous regular-register protocol (Section 3, Figures 1-2).

    One writer, many readers, churn rate [c], message delay bound
    [delta] known to everyone. Reads are {e fast}: purely local, no
    messages, no waiting. The work happens at join time:

    + the entering process waits [delta] ticks in listening mode — any
      write in flight when it entered reaches the whole system within
      that window, so the wait guarantees the joiner cannot have missed
      a {e completed} write (Figure 3's counterexample is exactly what
      happens without it);
    + if no write arrived during the wait, it broadcasts [INQUIRY] and
      waits the [2 delta] round-trip bound, then adopts the
      highest-sequence-number reply;
    + it then becomes active and answers the inquiries it postponed.

    A write broadcasts [WRITE (v, sn)] and waits [delta] before
    returning, so every process present at its start that stays holds
    the value by completion. Correct when [c < 1/(3 delta)] (Theorem
    1): during any join, at least [n (1 - 3 delta c) > 0] processes
    that hold the last value stay to answer (Lemma 2).

    Beyond the paper, [params] lets tests disable the initial wait
    (reproducing Figure 3a's incorrect run) and controls what a joiner
    does in the above-threshold regime where an inquiry round can come
    back empty (the paper leaves this undefined: we re-inquire). *)

type empty_inquiry_behavior =
  | Retry
      (** broadcast a fresh INQUIRY and wait another [2 delta] — a
          hardening of the paper: joins may then fail to terminate
          above the churn bound, but never adopt garbage *)
  | Adopt_bottom
      (** what Figure 1 does when read literally: line 07's maximum
          over an empty reply set leaves [register = ⊥] and the
          process activates anyway; later reads return ⊥ — the safety
          collapse the [c < 1/(3 delta)] bound exists to prevent *)

type params = {
  delta : int;  (** the known delay bound; must match the network's *)
  join_wait : bool;
      (** line 02's [wait delta]. [false] reproduces Figure 3a. *)
  on_empty_inquiry : empty_inquiry_behavior;
      (** only reachable above the churn bound (Lemma 2 guarantees a
          replier below it) *)
  p2p_delta : int option;
      (** footnote 4's optimization: when the point-to-point bound
          delta' is tighter than the broadcast bound, the inquiry
          round trip shrinks from [2 delta] to [delta + delta'].
          Sound only with a network honouring the tighter bound
          ({!Delay.synchronous_split}). [None]: the paper's plain
          [wait (2 delta)]. *)
}

val default_params : delta:int -> params
(** [join_wait = true], [on_empty_inquiry = Retry], [p2p_delta = None]. *)

type msg =
  | Inquiry  (** line 05: who has the current value? *)
  | Reply of Value.t  (** lines 11, 14: an active process's copy *)
  | Write_msg of Value.t  (** Figure 2: the disseminated write *)

include Register_intf.PROTOCOL with type msg := msg and type params := params

val join_retries : node -> int
(** How many extra inquiry rounds this node needed (0 in any run within
    the paper's churn bound; positive rounds witness threshold
    violation). *)

val joins_in_flight_reply_queue : node -> Pid.t list
(** The [reply_to] set: joiners whose inquiries this (still joining)
    node postponed. Exposed for white-box tests. *)
