(* Chase-Lev dynamic circular work-stealing deque (SPAA 2005), on
   OCaml 5 Atomics. [top] is advanced only by compare-and-set (thieves
   racing each other and the owner's last-element pop); [bottom] is
   written only by the owner. The buffer is an atomic ref to an
   immutable-once-published circular array: growth copies the live
   window [top, bottom) into a doubled array and swaps the reference,
   and a thief still holding the old array reads values that growth
   never overwrites (slots below [bottom] are only reused after [top]
   has advanced past them, which fails the thief's CAS). *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a option array Atomic.t;
}

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(capacity = 16) () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.make (round_pow2 (Stdlib.max capacity 2)) None);
  }

let size q =
  let b = Atomic.get q.bottom and t = Atomic.get q.top in
  Stdlib.max 0 (b - t)

(* Owner only. *)
let grow q ~bottom ~top =
  let old = Atomic.get q.buf in
  let n = Array.length old in
  let fresh = Array.make (2 * n) None in
  for i = top to bottom - 1 do
    fresh.(i land ((2 * n) - 1)) <- old.(i land (n - 1))
  done;
  Atomic.set q.buf fresh

let push q x =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  if b - t >= Array.length (Atomic.get q.buf) then grow q ~bottom:b ~top:t;
  let buf = Atomic.get q.buf in
  buf.(b land (Array.length buf - 1)) <- Some x;
  (* The Atomic.set publishes the slot write to thieves. *)
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* Already empty; restore the canonical empty state. *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let buf = Atomic.get q.buf in
    let x = buf.(b land (Array.length buf - 1)) in
    if b > t then begin
      buf.(b land (Array.length buf - 1)) <- None;
      x
    end
    else begin
      (* Last element: race thieves for it by advancing top. *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        buf.(b land (Array.length buf - 1)) <- None;
        x
      end
      else None
    end
  end

let rec steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get q.buf in
    let x = buf.(t land (Array.length buf - 1)) in
    if Atomic.compare_and_set q.top t (t + 1) then x
    else begin
      (* Lost the race (another thief or the owner's final pop);
         re-examine rather than reporting a spurious empty. *)
      Domain.cpu_relax ();
      steal q
    end
  end
