(** Chase-Lev work-stealing deque.

    The owner domain pushes and pops at the bottom (LIFO); thief
    domains steal from the top (FIFO), so the oldest work migrates and
    the owner keeps cache-hot recent work. Single-owner, multi-thief:
    {!push} and {!pop} must only ever be called from one domain, while
    {!steal} is safe from any number of other domains concurrently.

    The implementation is the classic Chase-Lev dynamic circular
    deque (SPAA 2005) on OCaml [Atomic]s: [top] advances by
    compare-and-set (thieves race each other and the owner's
    last-element pop), [bottom] is owner-written, and the buffer grows
    geometrically — old buffers stay valid for in-flight steals, so
    growth never blocks thieves. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 16, rounded up to a power of two) is only the
    initial buffer size; the deque grows without bound. *)

val push : 'a t -> 'a -> unit
(** Owner only: add at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only: remove the most recently pushed element, or [None]
    when the deque is empty (including losing the race for the last
    element to a thief). *)

val steal : 'a t -> 'a option
(** Any domain: remove the oldest element, or [None] when empty.
    Retries internally while losing CAS races, so [None] really means
    the deque was observed empty. *)

val size : 'a t -> int
(** Snapshot of the current length; racy under concurrency (use for
    stats and tests, not control flow). *)
