module Profile = Dds_profile.Profile

type 'r job = { key : string; run : unit -> 'r }

exception Job_failed of { key : string; exn : exn }

(* A submitted job, erased to unit: the wrapper writes its result into
   the batch's slot array, so aggregation is by submission index and
   the merged output is independent of which worker ran what. *)
type packed = { index : int; pkey : string; prun : unit -> unit }

type batch = {
  deques : packed Deque.t array;
  remaining : int Atomic.t;  (** jobs not yet finished (run or skipped) *)
  failed : (int * string * exn) option Atomic.t;
      (** first failure recorded; once set, unstarted jobs are skipped *)
  drained : int Atomic.t;
      (** spawned workers that have left [work]; the submitter waits
          for all of them before releasing the batch, so per-worker
          stats and profile buffers are quiescent when [run] returns *)
}

type state = Idle | Running of batch | Stopped

type t = {
  workers : int;  (* total workers; workers - 1 spawned domains *)
  mutable domains : unit Domain.t list;
  lock : Mutex.t;
  cond : Condition.t;
  mutable state : state;
  mutable generation : int;  (* bumped per batch so workers re-arm *)
  (* Per-worker stats: slot [w] is written only by worker [w]. *)
  stat_jobs : int array;
  stat_steals : int array;
  stat_busy : float array;
  mutable batch_count : int;
  mutable wall_total : float;
  profile : Profile.t option;
      (* When present, every instrumented site below records into the
         worker's own span buffer; when absent each site is one
         [option] branch — profiling off stays free. *)
}

let default_jobs () = Domain.recommended_domain_count ()

let record_failure batch index key exn =
  (* Keep the lowest-index failure so the reported key is stable. *)
  let rec go () =
    match Atomic.get batch.failed with
    | Some (i, _, _) when i <= index -> ()
    | cur ->
      if not (Atomic.compare_and_set batch.failed cur (Some (index, key, exn))) then go ()
  in
  go ()

let run_job t w batch (j : packed) =
  if Atomic.get batch.failed = None then begin
    let t0 = Unix.gettimeofday () in
    (match t.profile with
    | None ->
      (try j.prun () with exn -> record_failure batch j.index j.pkey exn);
      t.stat_busy.(w) <- t.stat_busy.(w) +. (Unix.gettimeofday () -. t0)
    | Some p ->
      let g0 = Gc.quick_stat () in
      (* quick_stat's minor_words only advances at minor-collection
         boundaries; Gc.minor_words reads the live young pointer, so
         jobs shorter than one minor heap still report their words.
         Both are domain-local, which is exactly what a per-job delta
         on the running domain needs. *)
      let m0 = Gc.minor_words () in
      (try j.prun () with exn -> record_failure batch j.index j.pkey exn);
      let t1 = Unix.gettimeofday () in
      let g1 = Gc.quick_stat () in
      Profile.record_job p ~worker:w ~label:j.pkey ~t0 ~t1
        ~minor:(Gc.minor_words () -. m0)
        ~promoted:(g1.Gc.promoted_words -. g0.Gc.promoted_words)
        ~major:(g1.Gc.major_words -. g0.Gc.major_words)
        ~minor_cols:(g1.Gc.minor_collections - g0.Gc.minor_collections)
        ~major_cols:(g1.Gc.major_collections - g0.Gc.major_collections);
      t.stat_busy.(w) <- t.stat_busy.(w) +. (t1 -. t0));
    t.stat_jobs.(w) <- t.stat_jobs.(w) + 1
  end;
  ignore (Atomic.fetch_and_add batch.remaining (-1))

(* Worker [w] drains the batch: own deque first, then steal round
   robin from the others; returns when every job has finished. The
   idle path spins briefly then sleeps, so a tail of long jobs on
   fewer cores than workers doesn't melt into busy-waiting. *)
let work t w batch =
  let n = Array.length batch.deques in
  let idle = ref 0 in
  (* With a recorder attached, stretches of not-finding-work coalesce
     into one Idle span [idle_since, end); nan means "not idle". *)
  let idle_since = ref Float.nan in
  let flush_idle t1 =
    if not (Float.is_nan !idle_since) then begin
      (match t.profile with
      | Some p when t1 > !idle_since ->
        Profile.record p ~worker:w ~kind:Profile.Idle ~label:"" ~t0:!idle_since ~t1
      | _ -> ());
      idle_since := Float.nan
    end
  in
  let rec loop () =
    match Deque.pop batch.deques.(w) with
    | Some j ->
      flush_idle (if t.profile = None then 0.0 else Unix.gettimeofday ());
      idle := 0;
      run_job t w batch j;
      loop ()
    | None ->
      let scan_t0 =
        match t.profile with
        | None -> 0.0
        | Some _ ->
          let now = Unix.gettimeofday () in
          if Float.is_nan !idle_since then idle_since := now;
          now
      in
      let stolen = ref None in
      let v = ref 1 in
      while !stolen = None && !v < n do
        (match Deque.steal batch.deques.((w + !v) mod n) with
        | Some j -> stolen := Some j
        | None -> ());
        incr v
      done;
      (match t.profile with
      | Some p when n > 1 -> Profile.steal_attempt p ~worker:w ~success:(!stolen <> None)
      | _ -> ());
      (match !stolen with
      | Some j ->
        (* Close the idle stretch at the scan start so the Steal span
           [scan_t0, now) stays disjoint from it. *)
        flush_idle scan_t0;
        (match t.profile with
        | Some p ->
          Profile.record p ~worker:w ~kind:Profile.Steal ~label:"" ~t0:scan_t0
            ~t1:(Unix.gettimeofday ())
        | None -> ());
        idle := 0;
        t.stat_steals.(w) <- t.stat_steals.(w) + 1;
        run_job t w batch j;
        loop ()
      | None ->
        if Atomic.get batch.remaining > 0 then begin
          incr idle;
          (* Exponential backoff. Steal scans almost never succeed once
             the deques have drained (~0.001% measured on sweep-shaped
             batches), so a fixed-cadence sleep still burns most of a
             core per idle worker re-scanning. Spin only for the first
             few scans (the window where a push is actually likely),
             then sleep with doubling duration up to a 1.6ms cap. The
             backoff only delays *when* an idle worker re-scans — job
             results land in the slot array by submission index — so
             merged output stays byte-identical. [idle] resets to 0 on
             every pop or successful steal. *)
          if !idle <= 32 then Domain.cpu_relax ()
          else Unix.sleepf (5e-5 *. float_of_int (1 lsl Stdlib.min (!idle - 33) 5));
          loop ()
        end
        else flush_idle (if t.profile = None then 0.0 else Unix.gettimeofday ()))
  in
  loop ()

let worker_loop t w =
  (* Bind this domain to its span buffer once: Probe phases raised by
     job bodies land in the right lane. Worker domains live and die
     with the pool, so there is nothing to restore. *)
  (match t.profile with Some p -> Profile.set_current p ~worker:w | None -> ());
  let rec wait last_gen =
    Mutex.lock t.lock;
    let rec block () =
      match t.state with
      | Stopped -> None
      | Running b when t.generation <> last_gen -> Some (t.generation, b)
      | Running _ | Idle ->
        Condition.wait t.cond t.lock;
        block ()
    in
    let next = block () in
    Mutex.unlock t.lock;
    match next with
    | None -> ()
    | Some (gen, batch) ->
      work t w batch;
      ignore (Atomic.fetch_and_add batch.drained 1);
      wait gen
  in
  wait 0

let create ?jobs ?minor_heap_words ?profile () =
  let workers = Stdlib.max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  (* Apply the requested minor-heap size on the submitting domain now
     and inside each spawned domain below: [Gc.set] is domain-local in
     OCaml 5, so setting it here alone would leave workers 1.. on the
     runtime default. *)
  let apply_gc () =
    match minor_heap_words with
    | Some words -> Gc.set { (Gc.get ()) with Gc.minor_heap_size = Stdlib.max 4096 words }
    | None -> ()
  in
  apply_gc ();
  (match profile with
  | Some p ->
    let g = Gc.get () in
    Profile.set_gc_params p
      [ ("minor_heap_words", g.Gc.minor_heap_size); ("space_overhead", g.Gc.space_overhead) ]
  | None -> ());
  let t =
    {
      workers;
      domains = [];
      lock = Mutex.create ();
      cond = Condition.create ();
      state = Idle;
      generation = 0;
      stat_jobs = Array.make workers 0;
      stat_steals = Array.make workers 0;
      stat_busy = Array.make workers 0.0;
      batch_count = 0;
      wall_total = 0.0;
      profile;
    }
  in
  t.domains <-
    List.init (workers - 1) (fun i ->
        Domain.spawn (fun () ->
            apply_gc ();
            worker_loop t (i + 1)));
  t

let jobs t = t.workers

let shutdown t =
  let stop =
    Mutex.lock t.lock;
    let was = t.state in
    if was <> Stopped then t.state <- Stopped;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    was <> Stopped
  in
  if stop then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let profile t = t.profile

let with_pool ?jobs ?minor_heap_words ?profile f =
  let t = create ?jobs ?minor_heap_words ?profile () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_batch t packed =
  let njobs = List.length packed in
  (match t.state with
  | Idle -> ()
  | Running _ -> invalid_arg "Pool.run: pool is already running a batch"
  | Stopped -> invalid_arg "Pool.run: pool is shut down");
  (* The submitting domain doubles as worker 0: bind it for the
     duration of the batch (and restore after — unlike the spawned
     domains it outlives the pool). *)
  let saved =
    match t.profile with
    | None -> None
    | Some p ->
      let prev = Profile.get_current () in
      Profile.set_current p ~worker:0;
      Some prev
  in
  Fun.protect
    ~finally:(fun () -> match saved with Some prev -> Profile.restore prev | None -> ())
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let failed =
    if t.workers = 1 || njobs <= 1 then begin
      let batch =
        {
          deques = [||];
          remaining = Atomic.make njobs;
          failed = Atomic.make None;
          drained = Atomic.make 0;
        }
      in
      List.iter (fun j -> run_job t 0 batch j) packed;
      Atomic.get batch.failed
    end
    else begin
      let deques = Array.init t.workers (fun _ -> Deque.create ()) in
      (* Round-robin pre-distribution: worker 0 gets indices 0, w, 2w,
         ... — the stealing protocol rebalances whatever this gets
         wrong, and the slot array makes placement invisible. *)
      List.iteri (fun i j -> Deque.push deques.(i mod t.workers) j) packed;
      let batch =
        {
          deques;
          remaining = Atomic.make njobs;
          failed = Atomic.make None;
          drained = Atomic.make 0;
        }
      in
      Mutex.lock t.lock;
      t.state <- Running batch;
      t.generation <- t.generation + 1;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      work t 0 batch;
      (* Drain barrier: the batch stays [Running] until here, so every
         spawned worker is guaranteed to enter [work] for this
         generation and acknowledge leaving it. Once all have, their
         final idle spans are flushed and no per-worker slot is being
         written — [stats] / profile reads after [run] see a settled
         batch. The wait is one last failed scan per worker, µs-scale. *)
      while Atomic.get batch.drained < t.workers - 1 do
        Domain.cpu_relax ()
      done;
      Mutex.lock t.lock;
      t.state <- Idle;
      Mutex.unlock t.lock;
      Atomic.get batch.failed
    end
  in
  t.batch_count <- t.batch_count + 1;
  t.wall_total <- t.wall_total +. (Unix.gettimeofday () -. t0);
  match failed with
  | Some (_, key, exn) -> raise (Job_failed { key; exn })
  | None -> ()

let run t (jobs : 'r job list) : 'r list =
  let n = List.length jobs in
  let out = Array.make (Stdlib.max n 1) None in
  let packed =
    List.mapi
      (fun i (j : 'r job) ->
        { index = i; pkey = j.key; prun = (fun () -> out.(i) <- Some (j.run ())) })
      jobs
  in
  run_batch t packed;
  let collect () =
    List.init n (fun i ->
        match out.(i) with
        | Some r -> r
        | None -> raise (Job_failed { key = (List.nth jobs i).key; exn = Exit }))
  in
  match t.profile with
  | None -> collect ()
  | Some p ->
    let t0 = Unix.gettimeofday () in
    let r = collect () in
    Profile.record p ~worker:0 ~kind:Profile.Merge ~label:"" ~t0 ~t1:(Unix.gettimeofday ());
    r

let map t ~key ~f xs = run t (List.map (fun x -> { key = key x; run = (fun () -> f x) }) xs)

let find_first t ~key ~f xs =
  let n = List.length xs in
  let best = Atomic.make max_int in
  let out = Array.make (Stdlib.max n 1) None in
  let jobs =
    List.mapi
      (fun i x ->
        {
          key = key x;
          run =
            (fun () ->
              (* Skip only elements strictly after a known hit: every
                 element before any hit is always evaluated, so the
                 lowest-index answer is worker-count-independent. *)
              if i < Atomic.get best then
                match f x with
                | None -> ()
                | Some r ->
                  out.(i) <- Some r;
                  let rec lower () =
                    let cur = Atomic.get best in
                    if i < cur && not (Atomic.compare_and_set best cur i) then lower ()
                  in
                  lower ());
        })
      xs
  in
  ignore (run t jobs : unit list);
  match Atomic.get best with
  | i when i = max_int -> None
  | i -> Some (i, Option.get out.(i))

let expand_frontier t ~key ~children ?(max_levels = 64) ~target roots =
  let rec loop level frontier =
    let branches =
      List.filter_map (function Either.Left x -> Some x | Either.Right _ -> None) frontier
    in
    if branches = [] || List.length frontier >= target || level >= max_levels then frontier
    else begin
      let expanded = map t ~key ~f:children branches in
      (* Positional stitch: each Left is replaced by its children (in
         their returned order), Rights pass through — so the frontier
         order is a pure function of the tree, not of scheduling. *)
      let rec stitch fr ex acc =
        match (fr, ex) with
        | [], [] -> List.rev acc
        | (Either.Right _ as leaf) :: fr, ex -> stitch fr ex (leaf :: acc)
        | Either.Left _ :: fr, kids :: ex -> stitch fr ex (List.rev_append kids acc)
        | Either.Left _ :: _, [] | [], _ :: _ -> assert false
      in
      loop (level + 1) (stitch frontier expanded [])
    end
  in
  loop 0 (List.map Either.left roots)

type worker_stat = { ws_jobs : int; ws_steals : int; ws_busy_s : float }

let stats t =
  List.init t.workers (fun w ->
      { ws_jobs = t.stat_jobs.(w); ws_steals = t.stat_steals.(w); ws_busy_s = t.stat_busy.(w) })

let batches t = t.batch_count
let wall_s t = t.wall_total

let metrics t =
  let m = Dds_sim.Metrics.create () in
  let total_jobs = Array.fold_left ( + ) 0 t.stat_jobs in
  let total_steals = Array.fold_left ( + ) 0 t.stat_steals in
  let total_busy = Array.fold_left ( +. ) 0.0 t.stat_busy in
  Dds_sim.Metrics.add m "engine.jobs" total_jobs;
  Dds_sim.Metrics.add m "engine.steals" total_steals;
  Dds_sim.Metrics.add m "engine.batches" t.batch_count;
  Dds_sim.Metrics.add m "engine.workers" t.workers;
  Dds_sim.Metrics.set_gauge m "engine.wall_s" t.wall_total;
  Dds_sim.Metrics.set_gauge m "engine.busy_s" total_busy;
  for w = 0 to t.workers - 1 do
    Dds_sim.Metrics.set_gauge m (Printf.sprintf "engine.w%d.jobs" w) (float_of_int t.stat_jobs.(w));
    Dds_sim.Metrics.set_gauge m
      (Printf.sprintf "engine.w%d.steals" w)
      (float_of_int t.stat_steals.(w));
    Dds_sim.Metrics.set_gauge m (Printf.sprintf "engine.w%d.busy_s" w) t.stat_busy.(w)
  done;
  m
