(** Deterministic multicore job runner.

    A pool owns [jobs - 1] worker domains (the submitting domain is
    worker 0) and runs batches of independent jobs over per-worker
    {!Deque}s with work stealing. Results are aggregated in
    {e canonical order} — the order the jobs were submitted in — so
    the merged output of a batch is byte-identical for any worker
    count: determinism is the contract, parallelism is invisible.

    The contract this requires from jobs: each [run] must be a pure
    function of its closure (typically a seeded simulation that builds
    its own {!Dds_sim.Rng.t}, deployment, metrics and event sink),
    sharing no mutable state with any other job and writing nothing to
    [stdout]/[stderr]. Every simulation in this repository already has
    that shape — a whole run is a function of its seed.

    A pool created with [jobs = 1] spawns no domains and runs batches
    inline in submission order, so sequential behaviour (including
    which job's exception wins) is the [jobs = 1] special case of the
    same code path. *)

type t

type 'r job = { key : string; run : unit -> 'r }
(** One unit of work: [run] is a pure seeded computation, [key] names
    it in errors and metrics (e.g. ["safety:ratio=0.9:seed=104"]). *)

exception Job_failed of { key : string; exn : exn }
(** Raised by {!run} / {!map} / {!find_first} when a job raised:
    the whole campaign fails, carrying the job's key. Remaining
    not-yet-started jobs are skipped once a failure is recorded. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs] defaults
    to. *)

val create : ?jobs:int -> ?minor_heap_words:int -> ?profile:Dds_profile.Profile.t -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (clamped to at
    least 1 total worker; default {!default_jobs}).

    When [minor_heap_words] is given, [Gc.set] applies it as the
    minor-heap size (clamped to at least 4096 words) on the submitting
    domain {e and} inside every spawned worker domain — GC parameters
    are domain-local in OCaml 5, so tuning only the submitter would
    leave the workers on the runtime default. The active parameters
    are recorded into [profile] (when present) and surface in its
    summary and Chrome metadata. Sizing the minor heap only moves
    {e when} collections happen, never what jobs compute: output stays
    byte-identical.

    When [profile] is given, the pool records per-domain activity
    spans into it — one [Job] span (with [Gc.quick_stat] deltas) per
    job, [Steal] spans for successful steal scans, coalesced [Idle]
    spans, a [Merge] span around result collection — and binds each
    worker domain so {!Dds_sim.Probe.span} phases inside job bodies
    land in the right lane. The recorder must have been created with
    [~workers] at least the pool's worker count. Without [profile]
    every instrumented site is a single [option] branch. Profiling
    never changes results: span recording is observation only. *)

val jobs : t -> int
(** Worker count, including the submitting domain. *)

val shutdown : t -> unit
(** Stops and joins every worker domain. Idempotent; after shutdown
    the pool rejects new batches ([Invalid_argument]). *)

val with_pool :
  ?jobs:int -> ?minor_heap_words:int -> ?profile:Dds_profile.Profile.t -> (t -> 'a) -> 'a
(** [create], run, and {!shutdown} even on exceptions. *)

val profile : t -> Dds_profile.Profile.t option
(** The recorder this pool was created with, if any. *)

val run : t -> 'r job list -> 'r list
(** Runs a batch and returns results in submission order (canonical
    order). @raise Job_failed if any job raised. *)

val map : t -> key:('a -> string) -> f:('a -> 'r) -> 'a list -> 'r list
(** [map p ~key ~f xs] is [List.map f xs] computed on the pool, in
    canonical order. *)

val find_first : t -> key:('a -> string) -> f:('a -> 'r option) -> 'a list -> (int * 'r) option
(** Parallel earliest-match search with early cancellation: returns
    [Some (i, r)] where [i] is the {e lowest} index at which [f]
    yields [Some r] — later elements are skipped once an earlier hit
    is known, but every element before a hit is always evaluated, so
    the answer is independent of the worker count. [None] when [f]
    yielded [None] everywhere. *)

val expand_frontier :
  t ->
  key:('a -> string) ->
  children:('a -> ('a, 'b) Either.t list) ->
  ?max_levels:int ->
  target:int ->
  'a list ->
  ('a, 'b) Either.t list
(** Deterministic breadth-first tree expansion — the job-tree
    primitive behind the model checker's top-of-tree partitioning.

    Starting from [roots] (all [Left]), each level expands {e every}
    pending branch in parallel ([children] returns a mix of [Left]
    sub-branches to expand further and [Right] leaves, possibly
    empty), splicing the results back in canonical order. Expansion
    stops once the frontier holds at least [target] elements, no
    branches remain, or [max_levels] (default 64) levels have run.

    Because levels are whole and stitching is positional, the
    resulting frontier — contents {e and} order — depends only on the
    tree shape and [target], never on the worker count: partitioning
    work via [expand_frontier] keeps downstream aggregation
    byte-identical at any [--jobs]. *)

(** {1 Engine metrics} *)

type worker_stat = {
  ws_jobs : int;  (** jobs this worker ran *)
  ws_steals : int;  (** jobs it took from another worker's deque *)
  ws_busy_s : float;  (** wall seconds spent inside job bodies *)
}

val stats : t -> worker_stat list
(** Per-worker counters, accumulated across all batches so far. Call
    between batches (not concurrently with one). *)

val batches : t -> int
val wall_s : t -> float
(** Total batches run and wall seconds spent inside {!run} calls. *)

val metrics : t -> Dds_sim.Metrics.t
(** The same numbers as a {!Dds_sim.Metrics.t} — counters
    [engine.jobs], [engine.steals], [engine.batches] and per-worker
    [engine.w<i>.*] gauges plus [engine.wall_s] / [engine.busy_s] —
    so engine telemetry flows through the existing
    {!Dds_sim.Export.metrics_to_json} path. *)
