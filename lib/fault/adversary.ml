open Dds_sim
open Dds_net
open Dds_churn
open Dds_core

module Make (D : Deployment.S) = struct
  type t = {
    d : D.t;
    choose : n:int -> label:string -> int;
    mutable drops_left : int;
    mutable crashes_left : int;
    mutable drops : int;
    mutable crashes : int;
  }

  let drop_label decision ~msg_kind =
    Format.asprintf "drop?%s:%a->%a" msg_kind Pid.pp decision.Delay.src Pid.pp
      decision.Delay.dst

  (* Every transmission is a binary choice point while budget remains:
     0 delivers, 1 drops. The plan is consulted by the network at send
     time, so the decision lands in the global decision stream exactly
     where the send happens — replay-stable by the simulator's
     determinism. *)
  let install_drops t =
    Network.set_fault_plan (D.network t.d) (fun decision ~msg_kind ->
        if t.drops_left <= 0 then Network.Pass
        else begin
          let label = drop_label decision ~msg_kind in
          if t.choose ~n:2 ~label = 1 then begin
            t.drops_left <- t.drops_left - 1;
            t.drops <- t.drops + 1;
            Network.Drop_msg
          end
          else Network.Pass
        end)

  (* Crash decision points: at each configured tick, the candidates
     are the active processes in pid order (minus the protected
     writer), and branch 0 is "nobody crashes". Arity-1 points (no
     candidates) are skipped outright. *)
  let crash_point t () =
    if t.crashes_left > 0 then begin
      let protected_writer =
        if (D.config t.d).Deployment.protect_writer then D.writer t.d else None
      in
      let victims =
        List.filter
          (fun pid ->
            match protected_writer with
            | Some w -> not (Pid.equal pid w)
            | None -> true)
          (Membership.active (D.membership t.d))
      in
      match victims with
      | [] -> ()
      | victims ->
        let label =
          Format.asprintf "crash@%a?%s" Time.pp (D.now t.d)
            (String.concat "," (List.map (Format.asprintf "%a" Pid.pp) victims))
        in
        let k = t.choose ~n:(1 + List.length victims) ~label in
        if k > 0 then begin
          t.crashes_left <- t.crashes_left - 1;
          t.crashes <- t.crashes + 1;
          D.crash t.d (List.nth victims (k - 1))
        end
    end

  let install ~choose ~drop_budget ~crash_budget ?(crash_ticks = []) d =
    let t =
      {
        d;
        choose;
        drops_left = drop_budget;
        crashes_left = crash_budget;
        drops = 0;
        crashes = 0;
      }
    in
    if drop_budget > 0 then install_drops t;
    if crash_budget > 0 then
      List.iter
        (fun tick ->
          ignore
            (Scheduler.schedule_at (D.scheduler d) (Time.of_int tick) (crash_point t)))
        crash_ticks;
    t

  let drops_injected t = t.drops
  let crashes_injected t = t.crashes
end
