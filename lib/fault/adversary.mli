open Dds_core

(** Bounded adversary choice points for the model checker.

    Where {!Injector} replays a fixed {!Nemesis.plan} and {!Hunt}
    samples random ones, [Adversary] exposes the fault dimension as
    {e explicit decision points} for exhaustive exploration
    ({!Dds_check.Check}): while budget remains, every message
    transmission asks the oracle drop-or-deliver, and every configured
    decision tick asks crash-or-not (and whom). The oracle sees each
    point's arity and a replay-stable label; which branch it picks is
    the explorer's business — the adversary merely enumerates what a
    fault environment {e could} do, bounded so the schedule tree stays
    finite.

    Faults flow through the same machinery as nemesis injection: drops
    via the network's fault plan (so they emit [Fault_injected] /
    [Drop] telemetry), crashes via [D.crash] (so pending operations
    abort and [Node_crash] is recorded). The designated writer is
    never offered as a crash victim when the deployment protects it —
    the same regime the churn engine honours. *)

module Make (D : Deployment.S) : sig
  type t

  val install :
    choose:(n:int -> label:string -> int) ->
    drop_budget:int ->
    crash_budget:int ->
    ?crash_ticks:int list ->
    D.t ->
    t
  (** Installs the drop hook (when [drop_budget > 0]) and schedules a
      crash decision point at each absolute tick of [crash_ticks]
      (consulted only while [crash_budget > 0]). Call once, before the
      run starts. [choose ~n ~label] must return an index in
      [\[0, n)]; index 0 is always "do nothing" (deliver / no crash).
      Decision points with a single branch are not offered. *)

  val drops_injected : t -> int
  val crashes_injected : t -> int
end
