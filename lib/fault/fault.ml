open Dds_sim
open Dds_net

type action = Drop | Dup of { copies : int } | Delay of { extra : int } | Corrupt

type rule = {
  name : string;
  srcs : int list;
  dsts : int list;
  kinds : string list;
  from_ : int;
  until_ : int;
  p : float;
  max_faults : int;
  action : action;
}

let action_name = function
  | Drop -> "drop"
  | Dup _ -> "dup"
  | Delay _ -> "delay"
  | Corrupt -> "corrupt"

let rule ?(name = "") ?(srcs = []) ?(dsts = []) ?(kinds = []) ?(from_ = 0) ?(until_ = max_int)
    ?(p = 1.0) ?(max_faults = max_int) action =
  let name = if String.equal name "" then action_name action else name in
  { name; srcs; dsts; kinds; from_; until_; p; max_faults; action }

let partition ?(name = "partition") ~a ~b ?(symmetric = true) ~from_ ~until_ () =
  let dir ~srcs ~dsts = { (rule ~srcs ~dsts ~from_ ~until_ Drop) with name } in
  if symmetric then [ dir ~srcs:a ~dsts:b; dir ~srcs:b ~dsts:a ] else [ dir ~srcs:a ~dsts:b ]

let matches r (decision : Delay.decision) ~msg_kind =
  let now = Time.to_int decision.Delay.now in
  now >= r.from_ && now <= r.until_
  && (r.kinds = [] || List.mem msg_kind r.kinds)
  && (r.srcs = [] || List.mem (Pid.to_int decision.Delay.src) r.srcs)
  && (r.dsts = [] || List.mem (Pid.to_int decision.Delay.dst) r.dsts)

let to_network_action = function
  | Drop -> Network.Drop_msg
  | Dup { copies } -> Network.Duplicate { copies }
  | Delay { extra } -> Network.Delay_by { extra }
  | Corrupt -> Network.Corrupt_tag

let compile ~rng rules =
  let rules = Array.of_list rules in
  let spent = Array.make (Array.length rules) 0 in
  fun decision ~msg_kind ->
    let rec first i =
      if i >= Array.length rules then Network.Pass
      else
        let r = rules.(i) in
        if
          matches r decision ~msg_kind
          && spent.(i) < r.max_faults
          (* Probability last, so rules with [p = 1.0] never draw and
             deterministic plans stay draw-free. *)
          && (r.p >= 1.0 || Rng.float rng 1.0 < r.p)
        then begin
          spent.(i) <- spent.(i) + 1;
          to_network_action r.action
        end
        else first (i + 1)
    in
    first 0
