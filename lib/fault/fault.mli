open Dds_sim
open Dds_net

(** Message-fault rules.

    A {!rule} is one thing the nemesis may do to messages: an
    {!action} (lose, duplicate, delay, corrupt the sender tag), a
    {e selector} saying which transmissions are eligible (by source,
    destination, wire kind and time window), and a {e budget} (apply
    probability and a hard cap on applications). A list of rules
    {!compile}s down to the {!Network.fault_plan} hook — first
    matching rule with remaining budget wins — so the fault layer
    never forks the network implementation.

    Every application is recorded by the network as a
    [Fault_injected] event and a [net.injected] metric tick; see
    {!Network.fault_action}. *)

(** What an applied rule does to the selected transmission. The four
    constructors mirror {!Network.fault_action} minus [Pass]. *)
type action =
  | Drop  (** lose it (within-model only if the protocol re-sends) *)
  | Dup of { copies : int }
      (** deliver [1 + copies] times; within-model for the register
          protocols (quorums dedup by pid, waits are time-based) *)
  | Delay of { extra : int }
      (** stretch the sampled delay by [extra] ticks — breaks the
          synchrony assumption when the total exceeds the delta the
          protocol believes *)
  | Corrupt  (** forge the sender tag (receiver sees itself as source) *)

type rule = {
  name : string;  (** label for traces and codecs; defaults to the action name *)
  srcs : int list;  (** eligible senders; [[]] = any *)
  dsts : int list;  (** eligible destinations; [[]] = any *)
  kinds : string list;  (** eligible wire kinds (e.g. ["INQUIRY"]); [[]] = any *)
  from_ : int;  (** window start (inclusive, send time) *)
  until_ : int;  (** window end (inclusive); [max_int] = open *)
  p : float;  (** apply probability for an eligible transmission *)
  max_faults : int;  (** hard cap on applications; [max_int] = unlimited *)
  action : action;
}

val action_name : action -> string
(** ["drop"], ["dup"], ["delay"], ["corrupt"]. *)

val rule :
  ?name:string ->
  ?srcs:int list ->
  ?dsts:int list ->
  ?kinds:string list ->
  ?from_:int ->
  ?until_:int ->
  ?p:float ->
  ?max_faults:int ->
  action ->
  rule
(** A rule with everything defaulted to "always, everywhere":
    empty selectors, window [[0, max_int]], [p = 1.0], unlimited
    budget. *)

val partition :
  ?name:string ->
  a:int list ->
  b:int list ->
  ?symmetric:bool ->
  from_:int ->
  until_:int ->
  unit ->
  rule list
(** A named network partition between process groups [a] and [b] over
    the given window, expressed as unbudgeted drop rules: one per
    direction when [symmetric] (the default), only [a] -> [b]
    otherwise (an asymmetric partition — [b] still reaches [a]). The
    heal is the window's end. *)

val matches : rule -> Delay.decision -> msg_kind:string -> bool
(** Selector check only (window, endpoints, kind) — budget and
    probability are the compiled plan's business. *)

val compile : rng:Rng.t -> rule list -> Network.fault_plan
(** Compiles rules into the network's interposition hook. For each
    transmission the first rule in list order that matches, has budget
    left and passes its probability draw supplies the action; no match
    means [Pass]. Budget counters are private to the returned plan
    (compiling twice gives two fresh budgets). [rng] drives the
    probability draws and must be a dedicated stream, so fault
    randomness never perturbs delay or churn draws. *)
