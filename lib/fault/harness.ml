open Dds_sim
open Dds_spec
open Dds_core

type spec = {
  horizon : int;
  drain : int;
  read_rate : float;
  write_every : int;
  monitor : Dds_monitor.Monitor.config option;
}

let default_spec ?monitor ~horizon ~drain () =
  { horizon; drain; read_rate = 1.0; write_every = 20; monitor }

module Make (D : Deployment.S) = struct
  module I = Injector.Make (D)

  (* The same single-writer read-mostly workload Generator drives, kept
     local so dds_fault stays below dds_workload in the library graph
     (the workload layer's sweeps depend on this module). *)
  let tick d ~read_rate ~write_every () =
    let rng = D.workload_rng d in
    let now = Time.to_int (D.now d) in
    (if write_every > 0 && now mod write_every = 0 then
       match D.elect_writer d with
       | Some w -> (
         match D.node d w with
         | Some node when D.Protocol.is_active node && not (D.Protocol.busy node) -> D.write d w
         | Some _ | None -> ())
       | None -> ());
    let base = int_of_float read_rate in
    let frac = read_rate -. float_of_int base in
    let n_reads = base + if Rng.float rng 1.0 < frac then 1 else 0 in
    for _ = 1 to n_reads do
      match D.random_idle_active d with Some pid -> D.read d pid | None -> ()
    done

  let run (cfg : Deployment.config) params spec plan =
    let cfg =
      { cfg with Deployment.events_enabled = cfg.Deployment.events_enabled || spec.monitor <> None }
    in
    let d = D.create cfg params in
    let inj = I.install ~rng:(Rng.split (D.workload_rng d)) d plan in
    let mon =
      match spec.monitor with
      | None -> None
      | Some mcfg ->
        let m = Dds_monitor.Monitor.create mcfg in
        let sink = D.events d in
        (* Catch up on the founding joins already buffered, then stream;
           findings are emitted back into the sink so exported traces
           carry them (Monitor.feed ignores Violation events). *)
        List.iter (fun st -> ignore (Dds_monitor.Monitor.feed m st)) (Event.events sink);
        Event.on_emit sink (fun st ->
            List.iter
              (fun (v : Dds_monitor.Monitor.violation) ->
                Event.emit sink ~at:v.Dds_monitor.Monitor.at (Dds_monitor.Monitor.to_event v))
              (Dds_monitor.Monitor.feed m st));
        Some m
    in
    D.start_churn d ~until:(Time.of_int spec.horizon);
    let sched = D.scheduler d in
    for tau = 1 to spec.horizon do
      ignore
        (Scheduler.schedule_at sched (Time.of_int tau)
           (tick d ~read_rate:spec.read_rate ~write_every:spec.write_every))
    done;
    D.run_until d (Time.of_int (spec.horizon + spec.drain));
    let monitor_violations =
      match mon with
      | None -> []
      | Some m ->
        let sink = D.events d in
        List.iter
          (fun (v : Dds_monitor.Monitor.violation) ->
            Event.emit sink ~at:v.Dds_monitor.Monitor.at (Dds_monitor.Monitor.to_event v))
          (Dds_monitor.Monitor.finalize m ~at:(D.now d));
        Event.clear_observer sink;
        List.map
          (Format.asprintf "%a" Dds_monitor.Monitor.pp_violation)
          (Dds_monitor.Monitor.violations m)
    in
    let reg = D.regularity d in
    let reg_violations =
      List.map (Format.asprintf "regularity: %a" Regularity.pp_violation) reg.Regularity.violations
    in
    {
      Hunt.violations = monitor_violations @ reg_violations;
      injected = I.total_injected inj;
    }
end
