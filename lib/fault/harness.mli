open Dds_core

(** One judged run under a nemesis plan.

    [Make (D)] packages the full experiment the hunter repeats: build
    the deployment from a config (one seed), arm the plan
    ({!Injector}), drive a generator-style read/write workload plus
    background churn, stream the live monitors over the typed events,
    then judge the run — monitor findings plus the regularity
    checker's verdict — as a {!Hunt.outcome}. Deterministic in
    [config.seed], which is exactly what {!Hunt.search} and
    {!Hunt.shrink} need from their runner. *)

type spec = {
  horizon : int;  (** workload and churn stop here *)
  drain : int;  (** extra ticks to let in-flight operations finish *)
  read_rate : float;  (** expected reads per tick *)
  write_every : int;  (** one write per this many ticks; [0] = never *)
  monitor : Dds_monitor.Monitor.config option;
      (** live assumption/safety monitors; their findings are both
          recorded as [Violation] events and counted in the outcome *)
}

val default_spec : ?monitor:Dds_monitor.Monitor.config -> horizon:int -> drain:int -> unit -> spec
(** [read_rate = 1.0], [write_every = 20]. *)

module Make (D : Deployment.S) : sig
  val run : Deployment.config -> D.Protocol.params -> spec -> Nemesis.plan -> Hunt.outcome
  (** Runs one full deployment and judges it. Typed events are forced
      on when a monitor is requested. The outcome's [violations]
      collects monitor findings then regularity violations, each
      pretty-printed; [injected] is {!Injector.Make.total_injected}. *)
end
