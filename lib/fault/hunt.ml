type outcome = { violations : string list; injected : int }

type runner = seed:int -> Nemesis.plan -> outcome

type found = { seed : int; plan : Nemesis.plan; violations : string list; runs : int }

let search ?pool ~runner ~gen seeds =
  let try_seed seed =
    let plan = gen ~seed in
    let o : outcome = runner ~seed plan in
    if o.violations = [] then None else Some (plan, o.violations)
  in
  match pool with
  | None ->
    let runs = ref 0 in
    List.find_map
      (fun seed ->
        incr runs;
        match try_seed seed with
        | None -> None
        | Some (plan, violations) -> Some { seed; plan; violations; runs = !runs })
      seeds
  | Some p ->
    (* Early-cancel parallel scan. [find_first] always evaluates every
       seed before a hit, so both the winning seed (the earliest in
       the list) and the run count (hit position + 1, matching the
       sequential count exactly) are worker-count-independent. *)
    Dds_engine.Pool.find_first p
      ~key:(fun seed -> Printf.sprintf "hunt:seed=%d" seed)
      ~f:try_seed seeds
    |> Option.map (fun (i, (plan, violations)) ->
           { seed = List.nth seeds i; plan; violations; runs = i + 1 })

let half x = Stdlib.max 1 (x / 2)

let halve_window ~from_ ~until_ =
  if until_ = max_int || until_ <= from_ then None
  else Some (from_ + ((until_ - from_) / 2))

let weaken step =
  match step with
  | Nemesis.Msg r ->
    let with_action action = Nemesis.Msg { r with Fault.action } in
    (match r.Fault.action with
    | Fault.Dup { copies } when copies > 1 -> [ with_action (Fault.Dup { copies = half copies }) ]
    | Fault.Delay { extra } when extra > 1 -> [ with_action (Fault.Delay { extra = half extra }) ]
    | Fault.Drop | Fault.Dup _ | Fault.Delay _ | Fault.Corrupt -> [])
    @ (if r.Fault.max_faults <> max_int && r.Fault.max_faults > 1 then
         [ Nemesis.Msg { r with Fault.max_faults = half r.Fault.max_faults } ]
       else [])
    @ (if r.Fault.p < 1.0 && r.Fault.p > 0.01 then
         [ Nemesis.Msg { r with Fault.p = r.Fault.p /. 2.0 } ]
       else [])
    @ (match halve_window ~from_:r.Fault.from_ ~until_:r.Fault.until_ with
      | Some until_ -> [ Nemesis.Msg { r with Fault.until_ } ]
      | None -> [])
  | Nemesis.Partition ({ from_; until_; _ } as p) -> (
    match halve_window ~from_ ~until_ with
    | Some until_ -> [ Nemesis.Partition { p with until_ } ]
    | None -> [])
  | Nemesis.Crash ({ k; _ } as c) when k > 1 -> [ Nemesis.Crash { c with k = half k } ]
  | Nemesis.Crash _ -> []
  | Nemesis.Storm ({ k; _ } as s) when k > 1 -> [ Nemesis.Storm { s with k = half k } ]
  | Nemesis.Storm _ -> []

let shrink ~runner found =
  let attempts = ref 0 in
  let fails plan =
    incr attempts;
    let o : outcome = runner ~seed:found.seed plan in
    if o.violations = [] then None else Some o.violations
  in
  (* Greedy descent: adopt the first single-change candidate that
     still violates and restart; stop when no removal or weakening
     keeps the violation alive. Candidate order tries removals first,
     so whole steps disappear before budgets get tuned. *)
  let rec improve plan violations =
    let n = List.length plan in
    let removals = List.init n (fun i -> List.filteri (fun j _ -> j <> i) plan) in
    let weakenings =
      List.concat
        (List.mapi
           (fun i s ->
             List.map
               (fun s' -> List.mapi (fun j x -> if j = i then s' else x) plan)
               (weaken s))
           plan)
    in
    let rec try_candidates = function
      | [] -> (plan, violations)
      | cand :: tl -> (
        match fails cand with
        | Some v -> improve cand v
        | None -> try_candidates tl)
    in
    try_candidates (removals @ weakenings)
  in
  let plan, violations = improve found.plan found.violations in
  { found with plan; violations; runs = !attempts }
