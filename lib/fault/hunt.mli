(** Randomized counterexample search with shrinking.

    The hunter is generic over how a run is judged: a {!runner} takes
    a seed and a nemesis plan, drives one full deployment (workload,
    churn, monitors, regularity check — see {!Harness}) and reports
    what fired. {!search} sweeps seeds, deriving each seed's plan
    deterministically, so a hit is reproducible from the seed alone;
    {!shrink} then delta-debugs the plan — dropping steps one at a
    time and halving budgets — down to a locally minimal
    counterexample whose every remaining fault is necessary. *)

type outcome = {
  violations : string list;  (** monitor + regularity findings; [[]] = clean run *)
  injected : int;  (** faults actually applied (message + process) *)
}

type runner = seed:int -> Nemesis.plan -> outcome
(** Must be deterministic: same seed and plan, same outcome. *)

type found = {
  seed : int;
  plan : Nemesis.plan;
  violations : string list;
  runs : int;  (** runs spent finding (search) or spent in total (shrink) *)
}

val search :
  ?pool:Dds_engine.Pool.t ->
  runner:runner ->
  gen:(seed:int -> Nemesis.plan) ->
  int list ->
  found option
(** [search ~runner ~gen seeds] runs each seed under [gen ~seed] in
    order and returns the first violating run, or [None] when every
    seed came back clean. With [?pool] the seeds run as parallel
    engine jobs with early cancellation; the reported seed is still
    the {e earliest} violating one in [seeds] and [runs] still counts
    the seeds up to and including it, exactly as in the sequential
    scan, whatever the worker count. Shrinking stays sequential — each
    candidate depends on the last verdict. *)

val shrink : runner:runner -> found -> found
(** Greedy minimization at the found seed: repeatedly try removing one
    step, then weakening one step (halve a dup's copies, a delay's
    extra, a rule's budget or probability, a crash/storm's [k]; narrow
    a window), keeping any candidate that still violates, until no
    single change does. The result's [violations] are the minimal
    plan's and [runs] counts the shrink attempts. A plan can shrink to
    [[]] — meaning the violation needs no faults at all. *)

val weaken : Nemesis.step -> Nemesis.step list
(** The single-step weakenings {!shrink} tries, strongest reduction
    first. Exposed for tests. *)
