open Dds_sim
open Dds_net
open Dds_churn
open Dds_core

module Make (D : Deployment.S) = struct
  type t = { d : D.t; rng : Rng.t; mutable process_faults : int }

  let emit_fault t ~fault ~src ~dst ~kind =
    Event.emit (D.events t.d) ~at:(D.now t.d) (Event.Fault_injected { fault; src; dst; kind })

  (* Crash [k] victims picked uniformly among the currently active
     processes (fewer if the system is smaller than that). The fault
     event goes out before the departure, so a trace reads
     cause-then-effect: [fault[crash] p3] then [crash p3]. *)
  let crash_some t ~fault k =
    let rec go crashed k =
      if k = 0 then crashed
      else
        match Membership.active (D.membership t.d) with
        | [] -> crashed
        | pool ->
          let victim = Rng.pick_list t.rng pool in
          t.process_faults <- t.process_faults + 1;
          Metrics.incr (D.metrics t.d) ("fault." ^ fault);
          emit_fault t ~fault ~src:(Pid.to_int victim) ~dst:(-1) ~kind:"";
          D.crash t.d victim;
          go (crashed + 1) (k - 1)
    in
    go 0 k

  let install ~rng d plan =
    let t = { d; rng; process_faults = 0 } in
    let sched = D.scheduler d in
    let schedule_at at f = ignore (Scheduler.schedule_at sched (Time.of_int at) f) in
    (* All message-level steps fold into one compiled plan, in plan
       order (earlier steps win ties). The compile rng is split off so
       probability draws stay independent of victim picks. *)
    let rules =
      List.concat_map
        (function
          | Nemesis.Msg r -> [ r ]
          | Nemesis.Partition { name; a; b; symmetric; from_; until_ } ->
            Fault.partition ~name ~a ~b ~symmetric ~from_ ~until_ ()
          | Nemesis.Crash _ | Nemesis.Storm _ -> [])
        plan
    in
    if rules <> [] then
      Network.set_fault_plan (D.network d) (Fault.compile ~rng:(Rng.split rng) rules);
    List.iter
      (function
        | Nemesis.Msg _ -> ()
        | Nemesis.Partition { name; from_; until_; _ } ->
          schedule_at from_ (fun () ->
              Metrics.incr (D.metrics d) "fault.partition";
              emit_fault t ~fault:"partition-start" ~src:(-1) ~dst:(-1) ~kind:name);
          if until_ < max_int then
            schedule_at (until_ + 1) (fun () ->
                emit_fault t ~fault:"partition-heal" ~src:(-1) ~dst:(-1) ~kind:name)
        | Nemesis.Crash { at; k; recover } ->
          schedule_at at (fun () ->
              let crashed = crash_some t ~fault:"crash" k in
              match recover with
              | Some after when crashed > 0 ->
                ignore
                  (Scheduler.schedule_after sched after (fun () ->
                       (* Crash-recovery with state loss: pids are never
                          reused, so recovery is fresh identities
                          re-joining from scratch. *)
                       emit_fault t ~fault:"recover" ~src:(-1) ~dst:(-1)
                         ~kind:(Printf.sprintf "k=%d" crashed);
                       for _ = 1 to crashed do
                         ignore (D.spawn d)
                       done))
              | Some _ | None -> ())
        | Nemesis.Storm { at; k } ->
          schedule_at at (fun () ->
              (* A churn burst: population is preserved, but the
                 instantaneous rate spikes by 2k events at one tick. *)
              emit_fault t ~fault:"storm" ~src:(-1) ~dst:(-1) ~kind:(Printf.sprintf "k=%d" k);
              Metrics.incr (D.metrics d) "fault.storm";
              let crashed = crash_some t ~fault:"storm" k in
              for _ = 1 to crashed do
                ignore (D.spawn d)
              done))
      plan;
    t

  let process_faults t = t.process_faults
  let total_injected t = t.process_faults + Network.faults_injected (D.network t.d)
end
