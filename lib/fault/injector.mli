open Dds_sim
open Dds_core

(** Arming a deployment with a nemesis plan.

    [Make (D)] schedules every step of a {!Nemesis.plan} against a
    freshly created deployment: message-fault and partition steps
    compile ({!Fault.compile}) into the network's interposition hook,
    process-fault steps become scheduler callbacks that pick victims
    and call [D.crash] / [D.spawn]. Installation must happen before
    the run starts (all times in the plan are absolute).

    Everything injected is visible in the run's telemetry:
    - message faults: a [Fault_injected] event plus [net.injected]
      tick per application (emitted by the network itself);
    - crashes and storms: one [Fault_injected] (fault ["crash"] /
      ["storm"], victim in [src]) immediately before the [Node_crash]
      the departure emits, plus a [fault.crash] / [fault.storm]
      counter tick;
    - partitions: [Fault_injected] markers (["partition-start"] /
      ["partition-heal"]) at the window edges, on top of the per-drop
      events;
    - recoveries: a [Fault_injected] (fault ["recover"]) when the
      replacement processes enter.

    Victim selection draws from the supplied [rng], a dedicated
    stream, so arming a plan never perturbs delay, churn or workload
    draws — a run with an empty plan is tick-for-tick identical to an
    unarmed one. *)

module Make (D : Deployment.S) : sig
  type t

  val install : rng:Rng.t -> D.t -> Nemesis.plan -> t
  (** Installs the network hook and schedules the process faults.
      Call once, at time 0, before running. *)

  val process_faults : t -> int
  (** Crash-stops injected so far (including storm victims). *)

  val total_injected : t -> int
  (** [process_faults] plus the network's {!Dds_net.Network.faults_injected}. *)
end
