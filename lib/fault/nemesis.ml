open Dds_sim

type step =
  | Msg of Fault.rule
  | Partition of {
      name : string;
      a : int list;
      b : int list;
      symmetric : bool;
      from_ : int;
      until_ : int;
    }
  | Crash of { at : int; k : int; recover : int option }
  | Storm of { at : int; k : int }

type plan = step list

(* --- DSL ----------------------------------------------------------- *)

type window = { from_ : int; until_ : int }

let at t = { from_ = t; until_ = t }

let during ~from_ ~until_ =
  if until_ < from_ then
    invalid_arg (Printf.sprintf "Nemesis.during: until %d < from %d" until_ from_);
  { from_; until_ }

let always = { from_ = 0; until_ = max_int }

let msg ?srcs ?dsts ?kinds ?p ?max_faults action w =
  Msg (Fault.rule ?srcs ?dsts ?kinds ?p ?max_faults ~from_:w.from_ ~until_:w.until_ action)

let drop ?srcs ?dsts ?kinds ?p ?max_faults w = msg ?srcs ?dsts ?kinds ?p ?max_faults Fault.Drop w

let dup ?(copies = 1) ?srcs ?dsts ?kinds ?p ?max_faults w =
  msg ?srcs ?dsts ?kinds ?p ?max_faults (Fault.Dup { copies }) w

let delay ~extra ?srcs ?dsts ?kinds ?p ?max_faults w =
  msg ?srcs ?dsts ?kinds ?p ?max_faults (Fault.Delay { extra }) w

let corrupt ?srcs ?dsts ?kinds ?p ?max_faults w =
  msg ?srcs ?dsts ?kinds ?p ?max_faults Fault.Corrupt w

let partition ?(name = "partition") ~a ~b ?(symmetric = true) w =
  Partition { name; a; b; symmetric; from_ = w.from_; until_ = w.until_ }

let crash ?recover ~k t = Crash { at = t; k; recover }

let storm ~k t = Storm { at = t; k }

let every ~start ~period ~count mk = List.init count (fun i -> mk (start + (i * period)))

let compose = List.concat

(* --- codec --------------------------------------------------------- *)

(* Pid lists print with ascending runs compressed ([0|1|2|9] as
   [0-2|9]); the parser expands both forms, so printing is one-to-one
   on the list itself whatever its order. *)
let string_of_ints xs =
  let rec runs = function
    | [] -> []
    | x :: rest ->
      let rec eat last = function
        | y :: tl when y = last + 1 -> eat y tl
        | tl -> (last, tl)
      in
      let stop, tl = eat x rest in
      (x, stop) :: runs tl
  in
  runs xs
  |> List.map (fun (a, b) ->
         if a = b then string_of_int a
         else if b = a + 1 then Printf.sprintf "%d|%d" a b
         else Printf.sprintf "%d-%d" a b)
  |> String.concat "|"

let parse_ints s =
  let part p =
    match String.index_opt p '-' with
    | Some i when i > 0 -> (
      match
        ( int_of_string_opt (String.sub p 0 i),
          int_of_string_opt (String.sub p (i + 1) (String.length p - i - 1)) )
      with
      | Some a, Some b when a <= b -> Some (List.init (b - a + 1) (fun j -> a + j))
      | _ -> None)
    | _ -> Option.map (fun v -> [ v ]) (int_of_string_opt p)
  in
  let rec all acc = function
    | [] -> Some (List.concat (List.rev acc))
    | p :: tl -> ( match part p with Some xs -> all (xs :: acc) tl | None -> None)
  in
  match all [] (String.split_on_char '|' s) with
  | Some xs -> Ok xs
  | None -> Error (Printf.sprintf "bad pid list %S" s)

let string_of_window { from_; until_ } =
  if from_ = 0 && until_ = max_int then ""
  else if from_ = until_ then Printf.sprintf "@%d" from_
  else if until_ = max_int then Printf.sprintf "@[%d,]" from_
  else Printf.sprintf "@[%d,%d]" from_ until_

let parse_window s =
  if String.equal s "" then Ok always
  else if String.length s < 2 || s.[0] <> '@' then Error (Printf.sprintf "bad window %S" s)
  else
    let body = String.sub s 1 (String.length s - 1) in
    if String.length body >= 2 && body.[0] = '[' && body.[String.length body - 1] = ']' then
      let inner = String.sub body 1 (String.length body - 2) in
      match String.split_on_char ',' inner with
      | [ a; b ] -> (
        let b = String.trim b in
        match
          (int_of_string_opt (String.trim a), if b = "" then Some max_int else int_of_string_opt b)
        with
        | Some from_, Some until_ when from_ <= until_ -> Ok { from_; until_ }
        | _ -> Error (Printf.sprintf "bad window %S" s))
      | _ -> Error (Printf.sprintf "bad window %S" s)
    else
      match int_of_string_opt body with
      | Some t -> Ok (at t)
      | None -> Error (Printf.sprintf "bad window %S" s)

let args_of_rule (r : Fault.rule) =
  (match r.Fault.action with
  | Fault.Dup { copies } -> [ Printf.sprintf "copies=%d" copies ]
  | Fault.Delay { extra } -> [ Printf.sprintf "extra=%d" extra ]
  | Fault.Drop | Fault.Corrupt -> [])
  @ (if String.equal r.Fault.name (Fault.action_name r.Fault.action) then []
     else [ "name=" ^ r.Fault.name ])
  @ (if r.Fault.kinds = [] then [] else [ "kind=" ^ String.concat "|" r.Fault.kinds ])
  @ (if r.Fault.srcs = [] then [] else [ "src=" ^ string_of_ints r.Fault.srcs ])
  @ (if r.Fault.dsts = [] then [] else [ "dst=" ^ string_of_ints r.Fault.dsts ])
  @ (if r.Fault.p >= 1.0 then [] else [ Printf.sprintf "p=%g" r.Fault.p ])
  @ if r.Fault.max_faults = max_int then [] else [ Printf.sprintf "max=%d" r.Fault.max_faults ]

let string_of_step = function
  | Msg r ->
    Printf.sprintf "%s(%s)%s"
      (Fault.action_name r.Fault.action)
      (String.concat "," (args_of_rule r))
      (string_of_window { from_ = r.Fault.from_; until_ = r.Fault.until_ })
  | Partition { name; a; b; symmetric; from_; until_ } ->
    Printf.sprintf "partition(%sa=%s,b=%s%s)%s"
      (if String.equal name "partition" then "" else "name=" ^ name ^ ",")
      (string_of_ints a) (string_of_ints b)
      (if symmetric then "" else ",oneway")
      (string_of_window { from_; until_ })
  | Crash { at; k; recover } ->
    Printf.sprintf "crash(k=%d%s)@%d" k
      (match recover with Some d -> Printf.sprintf ",recover=%d" d | None -> "")
      at
  | Storm { at; k } -> Printf.sprintf "storm(k=%d)@%d" k at

let to_string plan = String.concat ";" (List.map string_of_step plan)

let pp ppf plan = Format.pp_print_string ppf (to_string plan)

let ( let* ) = Result.bind

(* One clause is [head(k=v,...,flag,...)window]. *)
let parse_step clause =
  let clause = String.trim clause in
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "%s in %S" m clause)) fmt in
  match (String.index_opt clause '(', String.rindex_opt clause ')') with
  | Some i, Some j when i < j ->
    let head = String.sub clause 0 i in
    let args = String.sub clause (i + 1) (j - i - 1) in
    let* w = parse_window (String.trim (String.sub clause (j + 1) (String.length clause - j - 1))) in
    let* kvs, flags =
      List.fold_left
        (fun acc part ->
          let* kvs, flags = acc in
          let part = String.trim part in
          if String.equal part "" then Ok (kvs, flags)
          else
            match String.index_opt part '=' with
            | Some e ->
              Ok
                ( (String.sub part 0 e, String.sub part (e + 1) (String.length part - e - 1))
                  :: kvs,
                  flags )
            | None -> Ok (kvs, part :: flags))
        (Ok ([], []))
        (String.split_on_char ',' args)
    in
    let known keys =
      match List.find_opt (fun (k, _) -> not (List.mem k keys)) kvs with
      | Some (k, _) -> fail "unknown key %S" k
      | None -> (
        match flags with
        | [] -> Ok ()
        | f :: _ when List.mem ("flag:" ^ f) keys -> Ok ()
        | f :: _ -> fail "unknown flag %S" f)
    in
    let int_opt key =
      match List.assoc_opt key kvs with
      | None -> Ok None
      | Some v -> (
        match int_of_string_opt v with
        | Some n -> Ok (Some n)
        | None -> fail "bad integer %S for %s" v key)
    in
    let float_opt key =
      match List.assoc_opt key kvs with
      | None -> Ok None
      | Some v -> (
        match float_of_string_opt v with
        | Some f -> Ok (Some f)
        | None -> fail "bad float %S for %s" v key)
    in
    let ints_opt key =
      match List.assoc_opt key kvs with
      | None -> Ok None
      | Some v -> Result.map Option.some (parse_ints v)
    in
    let selector_and_budget () =
      let* kinds =
        Ok (Option.map (String.split_on_char '|') (List.assoc_opt "kind" kvs))
      in
      let* srcs = ints_opt "src" in
      let* dsts = ints_opt "dst" in
      let* p = float_opt "p" in
      let* max_faults = int_opt "max" in
      Ok (List.assoc_opt "name" kvs, kinds, srcs, dsts, p, max_faults)
    in
    let msg_step keys action =
      let* () = known ([ "name"; "kind"; "src"; "dst"; "p"; "max" ] @ keys) in
      let* name, kinds, srcs, dsts, p, max_faults = selector_and_budget () in
      Ok
        (Msg
           (Fault.rule ?name ?kinds ?srcs ?dsts ?p ?max_faults ~from_:w.from_ ~until_:w.until_
              action))
    in
    (match head with
    | "drop" -> msg_step [] Fault.Drop
    | "corrupt" -> msg_step [] Fault.Corrupt
    | "dup" ->
      let* copies = int_opt "copies" in
      let* step = msg_step [ "copies" ] (Fault.Dup { copies = Option.value ~default:1 copies }) in
      Ok step
    | "delay" -> (
      let* extra = int_opt "extra" in
      match extra with
      | None -> fail "delay needs extra=TICKS"
      | Some extra -> msg_step [ "extra" ] (Fault.Delay { extra }))
    | "partition" -> (
      let* () = known [ "name"; "a"; "b"; "flag:oneway" ] in
      let* a = ints_opt "a" in
      let* b = ints_opt "b" in
      match (a, b) with
      | Some a, Some b ->
        Ok
          (Partition
             {
               name = Option.value ~default:"partition" (List.assoc_opt "name" kvs);
               a;
               b;
               symmetric = not (List.mem "oneway" flags);
               from_ = w.from_;
               until_ = w.until_;
             })
      | _ -> fail "partition needs a= and b= pid lists")
    | "crash" ->
      let* () = known [ "k"; "recover" ] in
      let* k = int_opt "k" in
      let* recover = int_opt "recover" in
      Ok (Crash { at = w.from_; k = Option.value ~default:1 k; recover })
    | "storm" ->
      let* () = known [ "k" ] in
      let* k = int_opt "k" in
      Ok (Storm { at = w.from_; k = Option.value ~default:1 k })
    | other -> fail "unknown fault %S" other)
  | _, _ -> fail "expected head(args)@window"

let of_string s =
  let clauses =
    List.filter (fun c -> not (String.equal (String.trim c) "")) (String.split_on_char ';' s)
  in
  List.fold_left
    (fun acc clause ->
      let* steps = acc in
      let* step = parse_step clause in
      Ok (step :: steps))
    (Ok []) clauses
  |> Result.map List.rev

let equal (a : plan) (b : plan) = a = b

(* --- random plans -------------------------------------------------- *)

type profile = Within of { slack : int } | Any

let random ~rng ~n ~horizon ~delta profile =
  let nsteps = 1 + Rng.int rng (match profile with Within _ -> 2 | Any -> 3) in
  let win () =
    let from_ = 1 + Rng.int rng (Stdlib.max 1 (horizon - 1)) in
    let len = Rng.int rng (Stdlib.max 1 (horizon / 4)) in
    during ~from_ ~until_:(Stdlib.min horizon (from_ + len))
  in
  let instant () = 1 + Rng.int rng (Stdlib.max 1 (horizon - 1)) in
  let within slack =
    match Rng.int rng 4 with
    | 0 -> dup ~copies:(1 + Rng.int rng 2) (win ())
    | 1 when slack > 0 -> delay ~extra:(1 + Rng.int rng slack) (win ())
    | 1 -> dup ~copies:1 (win ())
    | 2 -> crash ~recover:(1 + Rng.int rng (3 * delta)) ~k:1 (instant ())
    | _ -> storm ~k:1 (instant ())
  in
  let any () =
    match Rng.int rng 7 with
    | 0 -> drop ~p:0.3 ~max_faults:(1 + Rng.int rng 20) (win ())
    | 1 -> dup ~copies:(1 + Rng.int rng 3) (win ())
    | 2 -> delay ~extra:(delta + Rng.int rng (5 * delta)) (win ())
    | 3 -> corrupt ~p:0.5 ~max_faults:(1 + Rng.int rng 10) (win ())
    | 4 ->
      (* Split the founding cohort [0, n); processes churned in later
         keep full connectivity (the partition names pids, and fresh
         pids are never reused). *)
      let cut = 1 + Rng.int rng (Stdlib.max 1 (n - 1)) in
      partition ~a:(List.init cut Fun.id)
        ~b:(List.init (n - cut) (fun i -> cut + i))
        ~symmetric:(Rng.bool rng) (win ())
    | 5 ->
      let recover = if Rng.bool rng then Some (1 + Rng.int rng (3 * delta)) else None in
      crash ?recover ~k:(1 + Rng.int rng (Stdlib.max 1 (n / 2))) (instant ())
    | _ -> storm ~k:(1 + Rng.int rng (Stdlib.max 1 (n / 3))) (instant ())
  in
  List.init nsteps (fun _ ->
      match profile with Within { slack } -> within slack | Any -> any ())
