open Dds_sim

(** Nemesis schedules.

    A {!plan} is a seed-replayable fault schedule: a list of {!step}s
    combining message faults ({!Fault.rule}s), named partitions, and
    process faults (crash-stop, crash-recovery, churn storms). Plans
    are built with the combinator DSL below, printed and parsed by a
    textual codec ([to_string] / [of_string] round-trip exactly), and
    drawn at random by {!random} — so a counterexample found by the
    [dds hunt] randomized search is reproducible from its seed alone,
    and shrinks to a plan string that pastes straight into
    [dds run --nemesis]. *)

(** One scheduled fault. *)
type step =
  | Msg of Fault.rule  (** a message-fault rule (window inside the rule) *)
  | Partition of {
      name : string;
      a : int list;
      b : int list;
      symmetric : bool;  (** [false]: only [a] -> [b] is cut *)
      from_ : int;
      until_ : int;  (** heal time (inclusive last cut tick) *)
    }
  | Crash of {
      at : int;
      k : int;  (** victims, chosen among active processes at [at] *)
      recover : int option;
          (** [Some d]: crash-recovery — [k] fresh processes are
              spawned [d] ticks later. State is lost by construction:
              the infinite-arrival model never reuses pids, so a
              recovered process is a new identity that must re-join. *)
    }
  | Storm of { at : int; k : int }
      (** a churn burst: [k] active processes crash and [k] fresh ones
          enter at the same instant — population preserved, but the
          instantaneous churn rate spikes *)

type plan = step list

(** {1 Combinator DSL} *)

type window = { from_ : int; until_ : int }

val at : int -> window
(** The single-instant window [[t, t]]. *)

val during : from_:int -> until_:int -> window
(** @raise Invalid_argument if [until_ < from_]. *)

val always : window
(** [[0, max_int]]. *)

val drop :
  ?srcs:int list -> ?dsts:int list -> ?kinds:string list -> ?p:float -> ?max_faults:int ->
  window -> step

val dup :
  ?copies:int -> ?srcs:int list -> ?dsts:int list -> ?kinds:string list -> ?p:float ->
  ?max_faults:int -> window -> step
(** [copies] defaults to 1 (each hit delivers twice). *)

val delay :
  extra:int -> ?srcs:int list -> ?dsts:int list -> ?kinds:string list -> ?p:float ->
  ?max_faults:int -> window -> step

val corrupt :
  ?srcs:int list -> ?dsts:int list -> ?kinds:string list -> ?p:float -> ?max_faults:int ->
  window -> step

val partition : ?name:string -> a:int list -> b:int list -> ?symmetric:bool -> window -> step

val crash : ?recover:int -> k:int -> int -> step
(** [crash ~k t]: crash-stop [k] active processes at [t]. *)

val storm : k:int -> int -> step

val every : start:int -> period:int -> count:int -> (int -> step) -> plan
(** [every ~start ~period ~count mk] is [mk] applied at [start],
    [start + period], ... ([count] times). *)

val compose : plan list -> plan
(** Concatenation; for message faults, earlier plans win ties (first
    matching rule applies). *)

(** {1 Codec}

    Grammar, one step per [;]-separated clause:
    {v
    drop(kind=INQUIRY|REPLY,src=1|2,dst=3,p=0.1,max=5)@[10,50]
    dup(copies=2)@[0,100]   delay(extra=9,kind=WRITE)@[40,60]
    corrupt()@7             partition(a=0-4,b=5-9,oneway)@[100,150]
    crash(k=2,recover=10)@120          storm(k=6)@200
    v}
    [@T] abbreviates [@[T,T]]; no [@] suffix means the open window;
    [@[T,]] is open-ended from [T]. Pid lists accept [|]-separated
    values and [lo-hi] ranges. [of_string (to_string p) = Ok p] for
    every plan [p]. *)

val to_string : plan -> string

val of_string : string -> (plan, string) result
(** [Error] carries a human-readable message naming the bad clause. *)

val pp : Format.formatter -> plan -> unit

val equal : plan -> plan -> bool

(** {1 Random plans} *)

(** What the generator may draw.

    [Within ~slack] stays inside the paper's assumptions — duplicates
    (quorums dedup by pid, waits are time-based), extra delay up to
    [slack] (the margin between the delta the protocol believes and
    the bound the network enforces), single crashes with recovery and
    small storms — so a run under such a plan must stay regular.

    [Any] adds the assumption-breaking arsenal: partitions, drops,
    unbounded delay, corruption, mass crashes. *)
type profile = Within of { slack : int } | Any

val random : rng:Rng.t -> n:int -> horizon:int -> delta:int -> profile -> plan
(** Draws 1-3 steps with windows inside [[1, horizon]]. Deterministic
    in the [rng] stream: the same seed always yields the same plan. *)
