type walker = {
  width : float;
  height : float;
  speed_ : float;
  mutable pos : Point.t;
  mutable goal : Point.t;
}

let create rng ~width ~height ~speed =
  if speed < 0.0 then invalid_arg "Mobility.create: negative speed";
  if width <= 0.0 || height <= 0.0 then invalid_arg "Mobility.create: degenerate box";
  let pos = Point.random_in_box rng ~width ~height in
  let goal = Point.random_in_box rng ~width ~height in
  { width; height; speed_ = speed; pos; goal }

let position w = w.pos
let speed w = w.speed_

let step w rng =
  if w.speed_ > 0.0 then begin
    w.pos <- Point.towards ~from:w.pos ~goal:w.goal ~step:w.speed_;
    if Point.distance w.pos w.goal = 0.0 then
      w.goal <- Point.random_in_box rng ~width:w.width ~height:w.height
  end

let teleport w p = w.pos <- p
