open Dds_sim

(** Random-waypoint walkers.

    The standard mobility model for MANET evaluation: each walker
    picks a uniform destination in the world box, moves towards it at
    its speed (distance units per tick), and picks a new destination
    on arrival. Walkers are pure state machines stepped by the zone
    world each tick — they know nothing about protocols. *)

type walker

val create : Rng.t -> width:float -> height:float -> speed:float -> walker
(** A walker at a uniform starting position with a first waypoint
    already chosen.
    @raise Invalid_argument if [speed < 0] or the box is degenerate. *)

val position : walker -> Point.t

val speed : walker -> float

val step : walker -> Rng.t -> unit
(** Advances one tick; picks a fresh waypoint upon arrival. *)

val teleport : walker -> Point.t -> unit
(** Test hook: place the walker somewhere specific (its waypoint is
    kept, so it resumes wandering from there). *)
