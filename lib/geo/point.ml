type t = { x : float; y : float }

let make ~x ~y = { x; y }
let origin = { x = 0.0; y = 0.0 }

let distance a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let within p ~center ~radius = distance p center <= radius

let towards ~from ~goal ~step =
  let d = distance from goal in
  if d <= step || d = 0.0 then goal
  else
    let f = step /. d in
    { x = from.x +. (f *. (goal.x -. from.x)); y = from.y +. (f *. (goal.y -. from.y)) }

let random_in_box rng ~width ~height =
  { x = Dds_sim.Rng.float rng width; y = Dds_sim.Rng.float rng height }

let pp ppf p = Format.fprintf ppf "(%.1f, %.1f)" p.x p.y
