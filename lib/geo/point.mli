(** Plane geometry for the mobile-node world. *)

type t = { x : float; y : float }

val make : x:float -> y:float -> t

val origin : t

val distance : t -> t -> float

val within : t -> center:t -> radius:float -> bool
(** Euclidean membership of the disc (boundary inclusive). *)

val towards : from:t -> goal:t -> step:float -> t
(** The point [step] along the segment from [from] to [goal]; lands on
    [goal] when the remaining distance is shorter than [step]. *)

val random_in_box : Dds_sim.Rng.t -> width:float -> height:float -> t
(** Uniform over [\[0,width\] x \[0,height\]]. *)

val pp : Format.formatter -> t -> unit
