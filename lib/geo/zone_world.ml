open Dds_sim
open Dds_net
open Dds_churn
open Dds_spec
open Dds_core

type config = {
  seed : int;
  walkers : int;
  width : float;
  height : float;
  zone_center : Point.t;
  zone_radius : float;
  speed : float;
  delta : int;
  initial_value : int;
}

let default_config ~seed ~speed =
  {
    seed;
    walkers = 40;
    width = 100.0;
    height = 100.0;
    zone_center = Point.make ~x:50.0 ~y:50.0;
    zone_radius = 25.0;
    speed;
    delta = 3;
    initial_value = 0;
  }

type slot = {
  walker : Mobility.walker;
  mutable pid : Pid.t option;  (** identity while inside the zone *)
  mutable node : Sync_register.node option;
  mutable pending : History.op_id list;
}

type t = {
  cfg : config;
  sched : Scheduler.t;
  move_rng : Rng.t;
  workload_rng : Rng.t;
  net : Sync_register.msg Network.t;
  membership : Membership.t;
  history : History.t;
  metrics : Metrics.t;
  pid_gen : Pid.gen;
  slots : slot array;
  population : Stats.t;
  mutable writer : Pid.t option;
  mutable write_counter : int;
  mutable entries : int;
  mutable exits : int;
  mutable ticks : int;
  mutable population_sum : int;
}

let scheduler t = t.sched
let membership t = t.membership
let history t = t.history
let metrics t = t.metrics
let now t = Scheduler.now t.sched
let zone_population t = Membership.n_present t.membership
let inside t p = Point.within p ~center:t.cfg.zone_center ~radius:t.cfg.zone_radius
let params t = Sync_register.default_params ~delta:t.cfg.delta

(* A walker crosses into the zone: a brand-new process joins. *)
let enter t slot ~founding =
  let pid = Pid.fresh t.pid_gen in
  slot.pid <- Some pid;
  Membership.add t.membership pid ~now:(now t);
  t.entries <- t.entries + 1;
  if founding then begin
    let node =
      Sync_register.create ~rt:(Dds_runtime.Runtime.of_sim ~sched:t.sched ~net:t.net)
        ~params:(params t) ~pid
        ~initial:(Some (Value.initial t.cfg.initial_value))
        ~on_active:(fun _ -> Membership.set_active t.membership pid ~now:(now t))
    in
    slot.node <- Some node
  end
  else begin
    let op = History.begin_join t.history pid ~now:(now t) in
    slot.pending <- op :: slot.pending;
    let node =
      Sync_register.create ~rt:(Dds_runtime.Runtime.of_sim ~sched:t.sched ~net:t.net)
        ~params:(params t) ~pid ~initial:None
        ~on_active:(fun value ->
          if Membership.is_present t.membership pid then begin
            Membership.set_active t.membership pid ~now:(now t);
            History.end_join t.history op ~now:(now t) value;
            slot.pending <- List.filter (fun o -> o <> op) slot.pending
          end)
    in
    slot.node <- Some node
  end

(* The walker leaves coverage: the process is gone forever. *)
let exit_zone t slot =
  (match slot.node with Some node -> Sync_register.leave node | None -> ());
  (match slot.pid with
  | Some pid ->
    List.iter (History.abort t.history) slot.pending;
    slot.pending <- [];
    Membership.remove t.membership pid ~now:(now t);
    if t.writer = Some pid then t.writer <- None;
    t.exits <- t.exits + 1
  | None -> ());
  slot.pid <- None;
  slot.node <- None

let create cfg =
  let root = Rng.create ~seed:cfg.seed in
  let move_rng = Rng.split root in
  let net_rng = Rng.split root in
  let workload_rng = Rng.split root in
  let sched = Scheduler.create () in
  let metrics = Metrics.create () in
  let net =
    Network.create ~sched ~rng:net_rng
      ~delay:(Delay.synchronous ~delta:cfg.delta)
      ~metrics ~pp_msg:Sync_register.pp_msg ()
  in
  let t =
    {
      cfg;
      sched;
      move_rng;
      workload_rng;
      net;
      membership = Membership.create ~metrics ();
      history = History.create ~initial:(Value.initial cfg.initial_value);
      metrics;
      pid_gen = Pid.generator ();
      slots =
        Array.init cfg.walkers (fun _ ->
            {
              walker =
                Mobility.create move_rng ~width:cfg.width ~height:cfg.height
                  ~speed:cfg.speed;
              pid = None;
              node = None;
              pending = [];
            });
      population = Stats.create ();
      writer = None;
      write_counter = 0;
      entries = 0;
      exits = 0;
      ticks = 0;
      population_sum = 0;
    }
  in
  (* The system must be born non-empty: if no walker landed inside the
     zone, place the first one at its centre. *)
  let any_inside =
    Array.exists (fun s -> inside t (Mobility.position s.walker)) t.slots
  in
  if not any_inside then Mobility.teleport t.slots.(0).walker t.cfg.zone_center;
  Array.iter
    (fun slot ->
      if inside t (Mobility.position slot.walker) then enter t slot ~founding:true)
    t.slots;
  t.entries <- 0;
  (* founders are not zone crossings *)
  (match Membership.present t.membership with
  | first :: _ -> t.writer <- Some first
  | [] -> assert false);
  t

(* One world tick: move everyone, process crossings, sample stats. *)
let world_tick t () =
  Array.iter
    (fun slot ->
      Mobility.step slot.walker t.move_rng;
      let is_in = inside t (Mobility.position slot.walker) in
      match slot.pid with
      | None when is_in -> enter t slot ~founding:false
      | Some _ when not is_in -> exit_zone t slot
      | Some _ | None -> ())
    t.slots;
  t.ticks <- t.ticks + 1;
  let pop = zone_population t in
  t.population_sum <- t.population_sum + pop;
  Stats.add_int t.population pop

let start t ~until =
  let rec schedule time =
    if Time.(time <= until) then begin
      ignore (Scheduler.schedule_at t.sched time (world_tick t));
      schedule (Time.add time 1)
    end
  in
  schedule (Time.add (now t) 1)

let node_ready t pid =
  Array.fold_left
    (fun acc slot ->
      match (acc, slot.pid, slot.node) with
      | None, Some p, Some node when Pid.equal p pid ->
        if Sync_register.is_active node && not (Sync_register.busy node) then Some node
        else None
      | acc, _, _ -> acc)
    None t.slots

let active_ready t =
  Array.to_list t.slots
  |> List.filter_map (fun slot ->
         match (slot.pid, slot.node) with
         | Some pid, Some node
           when Sync_register.is_active node && not (Sync_register.busy node) ->
           Some pid
         | _ -> None)

let do_read t pid node =
  let op = History.begin_read t.history pid ~now:(now t) in
  Sync_register.read node ~k:(fun value -> History.end_read t.history op ~now:(now t) value)

let do_write t pid node =
  t.write_counter <- t.write_counter + 1;
  let data = t.write_counter in
  let sn =
    match Sync_register.snapshot node with
    | Some v when not (Value.is_bottom v) -> v.Value.sn + 1
    | Some _ | None -> 0
  in
  let op = History.begin_write t.history pid ~now:(now t) (Value.make ~data ~sn) in
  (* The walker may wander out before the write's delta wait ends; the
     slot's pending list lets the exit path abort it. *)
  let slot =
    Array.to_list t.slots
    |> List.find (fun s -> match s.pid with Some p -> Pid.equal p pid | None -> false)
  in
  slot.pending <- op :: slot.pending;
  Sync_register.write node data ~k:(fun value ->
      History.end_write t.history op ~now:(now t) value;
      slot.pending <- List.filter (fun o -> o <> op) slot.pending)

let activity_tick t ~read_rate ~write_every () =
  let tick = Time.to_int (now t) in
  (if write_every > 0 && tick mod write_every = 0 then begin
     (* Re-elect if the writer wandered off. *)
     (match t.writer with
     | Some w when Membership.is_present t.membership w -> ()
     | Some _ | None -> (
       match active_ready t with
       | pid :: _ -> t.writer <- Some pid
       | [] -> t.writer <- None));
     match t.writer with
     | Some w -> (
       match node_ready t w with Some node -> do_write t w node | None -> ())
     | None -> ()
   end);
  let reads = int_of_float read_rate + (if Rng.float t.workload_rng 1.0 < (read_rate -. Float.of_int (int_of_float read_rate)) then 1 else 0) in
  for _ = 1 to reads do
    match active_ready t with
    | [] -> ()
    | candidates -> (
      let pid = Rng.pick_list t.workload_rng candidates in
      match node_ready t pid with Some node -> do_read t pid node | None -> ())
  done

let start_activity t ~read_rate ~write_every ~until =
  let rec schedule time =
    if Time.(time <= until) then begin
      ignore (Scheduler.schedule_at t.sched time (activity_tick t ~read_rate ~write_every));
      schedule (Time.add time 1)
    end
  in
  schedule (Time.add (now t) 1)

let run_until t horizon = Scheduler.run_until t.sched horizon
let regularity t = Regularity.check t.history
let staleness t = Staleness.measure t.history

let emergent_churn t =
  if t.ticks = 0 || t.population_sum = 0 then 0.0
  else
    let crossings_per_tick =
      float_of_int (t.entries + t.exits) /. 2.0 /. float_of_int t.ticks
    in
    let avg_population = float_of_int t.population_sum /. float_of_int t.ticks in
    crossings_per_tick /. avg_population

let population_stats t = t.population
let crossings t = (t.entries, t.exits)
