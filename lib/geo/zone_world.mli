open Dds_sim
open Dds_churn
open Dds_spec

(** The paper's wireless-zone example, made literal.

    Section 2.1 explains the join operation with "mobile nodes in a
    wireless network: the beginning of its join occurs when a process
    (node) enters the geographical zone within which it can receive
    messages". Here that sentence is the whole model: random-waypoint
    walkers roam a rectangle; a circular zone hosts a synchronous
    regular register (the Section 6 MANET setting); crossing into the
    zone {e is} the join invocation, wandering out {e is} the leave.
    Churn is therefore {e emergent} — a function of node speed, zone
    size and population — rather than a scheduled rate, and the zone
    population fluctuates instead of staying at the paper's constant
    n. Experiment E19 measures how the [c < 1/(3 delta)] analysis
    translates into a speed limit.

    A walker that re-enters the zone joins as a brand-new process
    (fresh identity), exactly as the model prescribes for re-entry. *)

type config = {
  seed : int;
  walkers : int;  (** mobile nodes roaming the world *)
  width : float;
  height : float;
  zone_center : Point.t;
  zone_radius : float;
  speed : float;  (** distance units per tick, all walkers *)
  delta : int;  (** radio delay bound inside the zone *)
  initial_value : int;
}

val default_config : seed:int -> speed:float -> config
(** 40 walkers in a 100x100 world, zone of radius 25 at the centre,
    delta = 3. *)

type t

val create : config -> t
(** Builds the world at time 0. Walkers already inside the zone are
    the founding members (one is teleported inside if none landed
    there, so the system is never born empty); the lowest-pid founder
    is the first writer. *)

val scheduler : t -> Scheduler.t

val membership : t -> Membership.t

val history : t -> History.t

val metrics : t -> Metrics.t

val zone_population : t -> int
(** Present processes (walkers currently inside the zone). *)

val start : t -> until:Time.t -> unit
(** Schedules the per-tick world step (move walkers, process zone
    crossings) up to [until]. *)

val start_activity : t -> read_rate:float -> write_every:int -> until:Time.t -> unit
(** Register workload: reads from random active zone members; writes
    from a writer re-elected among active members whenever the
    previous one wandered off (non-concurrent by designation). *)

val run_until : t -> Time.t -> unit

val regularity : t -> Regularity.report

val staleness : t -> Staleness.report

val emergent_churn : t -> float
(** Measured churn rate: zone crossings (in + out) / 2, per tick, per
    average present member — the quantity the paper calls [c],
    recovered from mobility. *)

val population_stats : t -> Stats.t
(** Distribution of the per-tick zone population. *)

val crossings : t -> int * int
(** Total (entries, exits) so far. *)
