open Dds_sim

type config = {
  n : int;
  delta : int;
  churn_bound : float option;
  churn_window : int;
  majority : bool;
  liveness_bound : int option;
  liveness_from_gst : bool;
  inversions : bool;
}

let default ~n ~delta =
  {
    n;
    delta;
    churn_bound = None;
    churn_window = 3 * delta;
    majority = false;
    liveness_bound = Some (10 * delta);
    liveness_from_gst = false;
    inversions = true;
  }

type violation = { monitor : string; at : Time.t; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "%a [%s] %s" Time.pp v.at v.monitor v.detail

let to_event v = Event.Violation { monitor = v.monitor; detail = v.detail }

(* ------------------------------------------------------------------ *)

type membership_change = { when_ : Time.t; join : bool }

type open_span = {
  o_node : int;
  o_op : Event.op_kind;
  o_started : Time.t;
  mutable o_overdue : bool;  (** liveness violation already reported *)
}

type t = {
  cfg : config;
  mutable seen : int;  (** events fed, for sanity reporting *)
  mutable out_rev : violation list;
  (* churn: membership changes inside the sliding window, oldest first *)
  mutable window : membership_change list;
  mutable churn_armed : bool;
  (* majority *)
  active : (int, unit) Hashtbl.t;
  mutable majority_armed : bool;
  (* liveness *)
  open_spans : (int, open_span) Hashtbl.t;
  mutable overdue_rev : int list;  (** span ids the liveness monitor flagged *)
  mutable gst : Time.t option;
  mutable last_seen : Time.t;
  (* inversions: completed reads as (responded, running max sn),
     responded nondecreasing — binary search by invocation time *)
  mutable reads : (Time.t * int) array;
  mutable nreads : int;
}

let create cfg =
  {
    cfg;
    seen = 0;
    out_rev = [];
    window = [];
    churn_armed = true;
    active = Hashtbl.create 64;
    majority_armed = true;
    open_spans = Hashtbl.create 64;
    overdue_rev = [];
    gst = None;
    last_seen = Time.zero;
    reads = Array.make 64 (Time.zero, 0);
    nreads = 0;
  }

let violations t = List.rev t.out_rev

let overdue_spans t = List.sort_uniq Int.compare t.overdue_rev

let fire t ~monitor ~at detail =
  let v = { monitor; at; detail } in
  t.out_rev <- v :: t.out_rev;
  v

(* --- churn-rate ---------------------------------------------------- *)

(* The empirical churn rate over the trailing window, measured the way
   the model defines c: a fraction of n entering (and leaving) per time
   unit. Joins and leaves are rated separately and the worse one is
   compared against the bound, so a join-only burst and a leave-only
   burst are both caught. *)
let churn_check t ~at =
  match t.cfg.churn_bound with
  | None -> []
  | Some bound ->
    let horizon = Time.to_int at - t.cfg.churn_window in
    t.window <- List.filter (fun m -> Time.to_int m.when_ > horizon) t.window;
    let joins = List.length (List.filter (fun m -> m.join) t.window) in
    let leaves = List.length t.window - joins in
    let per_tick count =
      float_of_int count /. (float_of_int t.cfg.churn_window *. float_of_int t.cfg.n)
    in
    let rate = Float.max (per_tick joins) (per_tick leaves) in
    if rate > bound then
      if t.churn_armed then begin
        t.churn_armed <- false;
        [
          fire t ~monitor:"churn" ~at
            (Printf.sprintf
               "churn rate %.5f exceeds bound %.5f (%d joins / %d leaves in last %d ticks, n=%d)"
               rate bound joins leaves t.cfg.churn_window t.cfg.n);
        ]
      end
      else []
    else begin
      t.churn_armed <- true;
      []
    end

let membership_change t ~at ~join =
  (* Founding members appear as joins at t=0; they are the population,
     not churn. *)
  if Time.to_int at = 0 then []
  else begin
    t.window <- t.window @ [ { when_ = at; join } ];
    churn_check t ~at
  end

(* --- active majority ----------------------------------------------- *)

let majority_need t = (t.cfg.n / 2) + 1

let majority_check t ~at =
  if not t.cfg.majority then []
  else if Time.to_int at = 0 then [] (* founding still assembling *)
  else begin
    let have = Hashtbl.length t.active in
    let need = majority_need t in
    if have < need then
      if t.majority_armed then begin
        t.majority_armed <- false;
        [
          fire t ~monitor:"majority" ~at
            (Printf.sprintf "active processes %d below majority %d (n=%d)" have need t.cfg.n);
        ]
      end
      else []
    else begin
      t.majority_armed <- true;
      []
    end
  end

(* --- span liveness ------------------------------------------------- *)

let deadline t (s : open_span) =
  match t.cfg.liveness_bound with
  | None -> None
  | Some bound ->
    if t.cfg.liveness_from_gst then
      match t.gst with
      | None -> None (* clock starts at stabilization *)
      | Some g -> Some (Time.to_int (Time.max s.o_started g) + bound)
    else Some (Time.to_int s.o_started + bound)

let liveness_scan t ~at =
  if t.cfg.liveness_bound = None then []
  else
    Hashtbl.fold
      (fun span s acc ->
        if s.o_overdue then acc
        else
          match deadline t s with
          | Some d when Time.to_int at > d ->
            s.o_overdue <- true;
            t.overdue_rev <- span :: t.overdue_rev;
            fire t ~monitor:"liveness" ~at
              (Printf.sprintf "%s by p%d (span %d) open since t=%d, past deadline t=%d"
                 (Event.op_kind_to_string s.o_op)
                 s.o_node span
                 (Time.to_int s.o_started)
                 d)
            :: acc
          | Some _ | None -> acc)
      t.open_spans []
    |> List.rev

(* --- new/old inversion --------------------------------------------- *)

let push_read t ~responded ~sn =
  if t.nreads = Array.length t.reads then begin
    let bigger = Array.make (2 * t.nreads) (Time.zero, 0) in
    Array.blit t.reads 0 bigger 0 t.nreads;
    t.reads <- bigger
  end;
  let running = if t.nreads = 0 then sn else Stdlib.max sn (snd t.reads.(t.nreads - 1)) in
  t.reads.(t.nreads) <- (responded, running);
  t.nreads <- t.nreads + 1

(* Greatest running max among reads that responded strictly before
   [invoked] — binary search over the responded-ordered array. *)
let max_sn_before t ~invoked =
  let lo = ref 0 and hi = ref t.nreads in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Time.(fst t.reads.(mid) < invoked) then lo := mid + 1 else hi := mid
  done;
  if !lo = 0 then None else Some (snd t.reads.(!lo - 1))

let inversion_check t ~at ~node ~span ~invoked ~sn =
  if not t.cfg.inversions then []
  else
    let older =
      match max_sn_before t ~invoked with Some m when m > sn -> Some m | _ -> None
    in
    push_read t ~responded:at ~sn;
    match older with
    | Some m ->
      [
        fire t ~monitor:"inversion" ~at
          (Printf.sprintf
             "read by p%d (span %d) returned sn=%d, but a read completed before its \
              invocation at t=%d had already returned sn=%d"
             node span sn (Time.to_int invoked) m);
      ]
    | None -> []

(* ------------------------------------------------------------------ *)

let feed t ({ at; ev } : Event.stamped) =
  t.seen <- t.seen + 1;
  let timed = if Time.(at > t.last_seen) then liveness_scan t ~at else [] in
  t.last_seen <- Time.max t.last_seen at;
  let direct =
    match ev with
    | Event.Node_join { node } ->
      (* A join at t=0 is a founding member: active immediately. *)
      if Time.to_int at = 0 then Hashtbl.replace t.active node ();
      membership_change t ~at ~join:true
    | Event.Node_leave { node } | Event.Node_crash { node } ->
      (* A crash-stop is an unannounced leave: the model equates the
         two, so the assumption monitors count both as departures. *)
      Hashtbl.remove t.active node;
      membership_change t ~at ~join:false @ majority_check t ~at
    | Event.Op_start { span; node; op; _ } ->
      Hashtbl.replace t.open_spans span
        { o_node = node; o_op = op; o_started = at; o_overdue = false };
      []
    | Event.Op_end { span; node; op; outcome; value } -> (
      let started =
        match Hashtbl.find_opt t.open_spans span with
        | Some s -> Some s.o_started
        | None -> None
      in
      Hashtbl.remove t.open_spans span;
      match (outcome, op) with
      | Event.Completed, Event.Join ->
        Hashtbl.replace t.active node ();
        majority_check t ~at
      | Event.Completed, Event.Read -> (
        match (value, started) with
        | Some { Event.sn; _ }, Some invoked -> inversion_check t ~at ~node ~span ~invoked ~sn
        | _ -> [])
      | _ -> [])
    | Event.Gst_reached ->
      t.gst <- Some at;
      []
    | Event.Send _ | Event.Deliver _ | Event.Drop _ | Event.Op_phase _
    | Event.Quorum_progress _ | Event.Violation _ | Event.Fault_injected _ ->
      []
  in
  timed @ direct

let finalize t ~at =
  let timed = if Time.(at > t.last_seen) then liveness_scan t ~at else [] in
  t.last_seen <- Time.max t.last_seen at;
  timed

let run cfg events =
  let t = create cfg in
  let during = List.concat_map (fun st -> feed t st) events in
  let last =
    List.fold_left (fun acc ({ at; _ } : Event.stamped) -> Time.max acc at) Time.zero events
  in
  during @ finalize t ~at:last
