open Dds_sim

(** Streaming checkers for the paper's assumptions and safety
    properties, consuming the {!Event} stream — live (wired into a
    sink with {!Event.on_emit}) or replayed from an exported JSONL
    trace ([dds audit]).

    Four monitors, each guarding one pillar of the correctness
    arguments:

    - {b churn} — the empirical churn rate over a trailing window
      against the protocol's admissible bound: [c < 1/(3 delta)] for
      the synchronous protocol (Theorem 1 via Lemma 2), [c <= 1/(3
      delta n)] for the eventually-synchronous one (Theorem 4).
    - {b majority} — the eventually-synchronous model's standing
      assumption that a majority of the n-sized population is active:
      [|A(tau)| >= n/2 + 1] at every instant.
    - {b liveness} — operations must respond within a bounded number
      of ticks (after stabilization, for the ES model where
      pre-GST delays are unbounded); an operation span open past its
      deadline is flagged once.
    - {b inversion} — new/old inversions across read results: a read
      that returns a sequence number older than one returned by a read
      completing strictly before its invocation. A regular register
      {e permits} this when both reads are concurrent with the write
      (the paper's Section 1 diagram); it is a counterexample only
      against an atomicity promise, so callers enable it for atomic
      protocols (the registry's [atomic] flag) and leave it off for
      the regular-only ones.

    Monitors are streaming and incremental: {!feed} each event in
    order and collect the violations it triggers; nothing buffers the
    whole trace. Violations fire per {e episode} — once when a bound
    is first crossed, re-arming when the system returns below it — so
    a sustained overload reads as one finding, not thousands. *)

type config = {
  n : int;  (** founding population size (the paper's n) *)
  delta : int;  (** the (eventual) message-delay bound *)
  churn_bound : float option;
      (** admissible churn rate in fraction-of-n per tick; [None]
          disables the churn monitor *)
  churn_window : int;  (** trailing window width in ticks *)
  majority : bool;  (** check [|A(tau)| >= n/2 + 1] *)
  liveness_bound : int option;
      (** max ticks an operation may stay open; [None] disables *)
  liveness_from_gst : bool;
      (** start the liveness clock at stabilization (ES model: before
          GST delays are unbounded, so nothing is overdue) *)
  inversions : bool;  (** detect new/old inversions across reads *)
}

val default : n:int -> delta:int -> config
(** Everything off except liveness (bound [10 * delta], from the
    start) and inversions; callers enable the assumption monitors that
    match their protocol's theorem. *)

type violation = { monitor : string; at : Time.t; detail : string }
(** [monitor] is one of ["churn"], ["majority"], ["liveness"],
    ["inversion"]; [at] the tick at which it fired (for a churn
    episode, the first offending tick). *)

val pp_violation : Format.formatter -> violation -> unit

val to_event : violation -> Event.t
(** The {!Event.Violation} carrying this finding, for live runs that
    record monitor output into the same trace they monitor. *)

type t

val create : config -> t

val feed : t -> Event.stamped -> violation list
(** Advances every monitor by one event; returns the violations this
    event triggered (usually none). Events must arrive in
    nondecreasing time order, as sinks and exported traces guarantee.
    {!Event.Violation} events are ignored, so a monitor wired as a
    sink observer never reacts to its own findings. *)

val finalize : t -> at:Time.t -> violation list
(** One last liveness sweep at the trace's end instant, catching
    operations still open past their deadline when the record stops
    (they would otherwise escape: {!feed} only scans when time
    advances). *)

val violations : t -> violation list
(** Everything fired so far, in firing order. *)

val overdue_spans : t -> int list
(** Span ids the liveness monitor has flagged, sorted. The structural
    counterpart of the ["liveness"] violations' detail strings: causal
    analysis ({!Dds_causal}) cross-references these ids to attach a
    critical-path witness to each bound violation without parsing
    prose. *)

val run : config -> Event.stamped list -> violation list
(** [feed]s the whole trace, then {!finalize}s at its last timestamp. *)
