open Dds_sim
type kind = Point_to_point | Broadcast

type decision = { now : Time.t; src : Pid.t; dst : Pid.t; kind : kind }
type adversary = decision -> int

type t =
  | Synchronous of { delta : int }
  | Synchronous_split of { broadcast : int; p2p : int }
  | Eventually_synchronous of { gst : Time.t; delta : int; wild : int }
  | Asynchronous of { wild : int }
  | Adversarial of adversary

let synchronous ~delta =
  if delta < 1 then invalid_arg "Delay.synchronous: delta must be >= 1";
  Synchronous { delta }

let synchronous_split ~broadcast ~p2p =
  if p2p < 1 then invalid_arg "Delay.synchronous_split: p2p bound must be >= 1";
  if broadcast < p2p then
    invalid_arg "Delay.synchronous_split: broadcast bound must be >= p2p bound";
  Synchronous_split { broadcast; p2p }

let eventually_synchronous ~gst ~delta ~wild =
  if delta < 1 then invalid_arg "Delay.eventually_synchronous: delta must be >= 1";
  if wild < delta then invalid_arg "Delay.eventually_synchronous: wild must be >= delta";
  Eventually_synchronous { gst; delta; wild }

let asynchronous ~wild =
  if wild < 1 then invalid_arg "Delay.asynchronous: wild must be >= 1";
  Asynchronous { wild }

let adversarial f = Adversarial f

let sample t ~rng decision =
  match t with
  | Synchronous { delta } -> Rng.int_in_range rng ~lo:1 ~hi:delta
  | Synchronous_split { broadcast; p2p } ->
    let hi = match decision.kind with Broadcast -> broadcast | Point_to_point -> p2p in
    Rng.int_in_range rng ~lo:1 ~hi
  | Eventually_synchronous { gst; delta; wild } ->
    let hi = if Time.(decision.now >= gst) then delta else wild in
    Rng.int_in_range rng ~lo:1 ~hi
  | Asynchronous { wild } -> Rng.int_in_range rng ~lo:1 ~hi:wild
  | Adversarial f ->
    let d = f decision in
    if d < 1 then invalid_arg "Delay.sample: adversary returned a delay < 1";
    d

let gst = function
  | Eventually_synchronous { gst; _ } -> Some gst
  | Synchronous _ | Synchronous_split _ | Asynchronous _ | Adversarial _ -> None

let known_bound = function
  | Synchronous { delta } -> Some delta
  | Synchronous_split { broadcast; _ } -> Some broadcast
  | Eventually_synchronous _ | Asynchronous _ | Adversarial _ -> None

let pp ppf = function
  | Synchronous { delta } -> Format.fprintf ppf "synchronous(delta=%d)" delta
  | Synchronous_split { broadcast; p2p } ->
    Format.fprintf ppf "synchronous(broadcast<=%d,p2p<=%d)" broadcast p2p
  | Eventually_synchronous { gst; delta; wild } ->
    Format.fprintf ppf "eventually-synchronous(gst=%a,delta=%d,wild=%d)" Time.pp gst delta wild
  | Asynchronous { wild } -> Format.fprintf ppf "asynchronous(wild=%d)" wild
  | Adversarial _ -> Format.fprintf ppf "adversarial"
