open Dds_sim
(** Message-delay models.

    The three system types in the paper differ only in what they
    guarantee about message transfer delays:

    - {b Synchronous} (Section 3.2): every message/broadcast sent at
      [tau] is delivered by [tau + delta], with [delta] known to the
      processes.
    - {b Eventually synchronous} (Section 5.1): there are a time [gst]
      (global stabilization time) and a bound [delta], both unknowable
      to the processes, such that anything sent at [tau' >= gst] is
      delivered by [tau' + delta]. Messages sent earlier are delivered
      eventually, with no bound.
    - {b Fully asynchronous} (Section 4): no bound at all — the model
      in which Theorem 2 shows the register impossible.

    A {!t} also admits an {!adversary}: a deterministic function that
    picks each delay, used to build the paper's constructed executions
    (Figure 3, the new/old inversion, the impossibility witness). *)

type kind =
  | Point_to_point  (** [send m to p_j] *)
  | Broadcast  (** the timely broadcast primitive *)

type decision = {
  now : Time.t;  (** send time *)
  src : Pid.t;
  dst : Pid.t;
  kind : kind;
}
(** Everything an adversary may look at when choosing a delay. *)

type adversary = decision -> int
(** Must return a delay [>= 1]. *)

type t =
  | Synchronous of { delta : int }
      (** Delays uniform in [\[1, delta\]]. [delta >= 1]. *)
  | Synchronous_split of { broadcast : int; p2p : int }
      (** Footnote 4's refinement: the broadcast primitive is bounded
          by [broadcast] (the paper's delta) while point-to-point
          responses respect a possibly tighter [p2p] (the paper's
          delta'), letting the join shorten its inquiry wait from
          [2 delta] to [delta + delta']. [p2p <= broadcast]. *)
  | Eventually_synchronous of { gst : Time.t; delta : int; wild : int }
      (** Before [gst], delays uniform in [\[1, wild\]] ([wild] is the
          simulated stand-in for "finite but unbounded"); at or after
          [gst], uniform in [\[1, delta\]]. *)
  | Asynchronous of { wild : int }
      (** No synchrony ever: delays uniform in [\[1, wild\]]. *)
  | Adversarial of adversary
      (** Fully scripted delays for constructed executions. *)

val synchronous : delta:int -> t
(** @raise Invalid_argument if [delta < 1]. *)

val synchronous_split : broadcast:int -> p2p:int -> t
(** @raise Invalid_argument if [p2p < 1] or [broadcast < p2p]. *)

val eventually_synchronous : gst:Time.t -> delta:int -> wild:int -> t
(** @raise Invalid_argument if [delta < 1] or [wild < delta]. *)

val asynchronous : wild:int -> t
(** @raise Invalid_argument if [wild < 1]. *)

val adversarial : adversary -> t

val sample : t -> rng:Rng.t -> decision -> int
(** Draws the delay for one message. Always [>= 1].
    @raise Invalid_argument if an adversary returns a delay [< 1]. *)

val gst : t -> Time.t option
(** The global stabilization time of an eventually-synchronous model,
    [None] for every other model. This is {e observer} information —
    processes cannot know it; the telemetry layer uses it to stamp a
    [Gst_reached] event so latency tails can be split pre/post GST. *)

val known_bound : t -> int option
(** The delay bound processes may rely on: [Some delta] for the
    synchronous model, [None] otherwise (eventual synchrony's [delta]
    exists but is not knowable, so it is not exposed here). *)

val pp : Format.formatter -> t -> unit
