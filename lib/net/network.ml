open Dds_sim

type 'a handler = src:Pid.t -> 'a -> unit

type broadcast_mode = Primitive | Flooding of { relay_depth : int }

type fault_action =
  | Pass
  | Drop_msg
  | Duplicate of { copies : int }
  | Delay_by of { extra : int }
  | Corrupt_tag

type fault_plan = Delay.decision -> msg_kind:string -> fault_action

let fault_action_name = function
  | Pass -> "pass"
  | Drop_msg -> "drop"
  | Duplicate _ -> "dup"
  | Delay_by _ -> "delay"
  | Corrupt_tag -> "corrupt"

type 'a t = {
  sched : Scheduler.t;
  rng : Rng.t;
  delay : Delay.t;
  metrics : Metrics.t option;
  trace : Trace.t option;
  events : Event.sink option;
  pp_msg : (Format.formatter -> 'a -> unit) option;
  msg_kind : ('a -> string) option;
  mode : broadcast_mode;
  handlers : 'a handler Pid.Table.t;
  mutable fault : fault_plan option;
  mutable injected : int;
  mutable flying : int;
  mutable broadcast_counter : int;
  flood_seen : (int * int * int, unit) Hashtbl.t;
      (** (destination, origin, broadcast id) already delivered *)
  clocks : int Pid.Table.t;
      (** per-process Lamport clocks, maintained only while an enabled
          event sink is wired (the stamps are observable nowhere else) *)
}

let create ~sched ~rng ~delay ?metrics ?trace ?events ?pp_msg ?msg_kind
    ?(broadcast_mode = Primitive) ?fault () =
  (match broadcast_mode with
  | Flooding { relay_depth } when relay_depth < 1 ->
    invalid_arg "Network.create: flooding relay depth must be >= 1"
  | Flooding _ | Primitive -> ());
  {
    sched;
    rng;
    delay;
    metrics;
    trace;
    events;
    pp_msg;
    msg_kind;
    mode = broadcast_mode;
    handlers = Pid.Table.create 64;
    fault;
    injected = 0;
    flying = 0;
    broadcast_counter = 0;
    flood_seen = Hashtbl.create 256;
    clocks = Pid.Table.create 64;
  }

let bump t name = match t.metrics with Some m -> Metrics.incr m name | None -> ()

let tracef t fmt_thunk =
  match t.trace with
  | Some tr when Trace.enabled tr -> fmt_thunk tr
  | Some _ | None -> ()

let pp_payload t ppf msg =
  match t.pp_msg with Some pp -> pp ppf msg | None -> Format.pp_print_string ppf "<msg>"

(* Typed telemetry. The thunk keeps event construction (and the
   msg_kind string) off the hot path when no enabled sink is wired. *)
let emitf t mk =
  match t.events with
  | Some sink when Event.enabled sink -> Event.emit sink ~at:(Scheduler.now t.sched) (mk ())
  | Some _ | None -> ()

let kind_of t msg = match t.msg_kind with Some f -> f msg | None -> "msg"

let events_live t = match t.events with Some s -> Event.enabled s | None -> false

(* Lamport stamping. [tick_send] advances the sender's clock by one;
   [tick_recv] applies the max(local, sent) + 1 receive rule. Both are
   called only under [events_live], so uninstrumented runs never touch
   the table. *)
let clock t pid = match Pid.Table.find_opt t.clocks pid with Some c -> c | None -> 0

let tick_send t pid =
  let c = clock t pid + 1 in
  Pid.Table.replace t.clocks pid c;
  c

let tick_recv t pid ~sent =
  let c = Stdlib.max (clock t pid) sent + 1 in
  Pid.Table.replace t.clocks pid c;
  c

let attach t pid handler =
  if Pid.Table.mem t.handlers pid then
    invalid_arg (Format.asprintf "Network.attach: %a already attached" Pid.pp pid);
  Pid.Table.replace t.handlers pid handler

let detach t pid = Pid.Table.remove t.handlers pid
let is_attached t pid = Pid.Table.mem t.handlers pid
let attached t = Pid.Table.fold (fun pid _ acc -> pid :: acc) t.handlers []
let attached_sorted t = List.sort Pid.compare (attached t)
let set_fault_plan t plan = t.fault <- Some plan

let set_fault t pred =
  t.fault <- Some (fun decision ~msg_kind:_ -> if pred decision then Drop_msg else Pass)

let clear_fault t = t.fault <- None
let faults_injected t = t.injected
let in_flight t = t.flying
let metrics t = t.metrics
let events t = t.events

(* Schedules one point-to-point transmission; consults the fault plan
   at send time and checks attachment at delivery time. [on_arrival]
   runs instead of the plain handler call when provided (flooding uses
   it to dedup and relay). *)
let transmit t ~kind ~src ~dst ?on_arrival msg =
  let decision = { Delay.now = Scheduler.now t.sched; src; dst; kind } in
  (* One Send event (and one net.transmit tick) per point-to-point
     copy, so [count Send events = net.transmit] holds for any trace;
     each Send is later resolved by exactly one Deliver or Drop. An
     injected duplicate is one more copy, with its own Send. *)
  let announce () =
    bump t "net.transmit";
    let sent_lc = if events_live t then tick_send t src else 0 in
    emitf t (fun () ->
        Event.Send
          {
            src = Pid.to_int src;
            dst = Pid.to_int dst;
            kind = kind_of t msg;
            broadcast = (match kind with Delay.Broadcast -> true | Delay.Point_to_point -> false);
            lamport = sent_lc;
          });
    sent_lc
  in
  (* [as_src] is the sender identity the protocol handler observes —
     forged by an injected Corrupt_tag; the Send/Deliver telemetry
     keeps the true wire endpoints so causal pairing stays intact.
     [extra] stretches the sampled delay (injected Delay_by). *)
  let copy ~as_src ~extra =
    let sent_lc = announce () in
    let d = Delay.sample t.delay ~rng:t.rng decision + extra in
    t.flying <- t.flying + 1;
    (* Under a chooser (model checking), deliveries carry a tag naming
       the acting node and the full rendered payload: the actor feeds
       the partial-order reduction (deliveries to different nodes
       commute) and the kind string feeds schedule rendering and state
       fingerprints. Ordinary runs skip the rendering cost. *)
    let tag =
      if Scheduler.choosing t.sched then
        Some
          {
            Scheduler.actor = Pid.to_int dst;
            kind =
              Format.asprintf "deliver:%s:%a->%a:%a" (kind_of t msg) Pid.pp src Pid.pp dst
                (pp_payload t) msg;
          }
      else None
    in
    ignore
      (Scheduler.schedule_after t.sched ?tag d (fun () ->
           t.flying <- t.flying - 1;
           match Pid.Table.find_opt t.handlers dst with
           | Some handler ->
             bump t "net.delivered";
             let recv_lc = if events_live t then tick_recv t dst ~sent:sent_lc else 0 in
             emitf t (fun () ->
                 Event.Deliver
                   {
                     src = Pid.to_int src;
                     dst = Pid.to_int dst;
                     kind = kind_of t msg;
                     lamport = recv_lc;
                     sent = sent_lc;
                   });
             tracef t (fun tr ->
                 Trace.recordf tr ~time:(Scheduler.now t.sched) ~topic:"net"
                   "deliver %a->%a: %a" Pid.pp src Pid.pp dst (pp_payload t) msg);
             (match on_arrival with
             | Some f -> f handler
             | None -> handler ~src:as_src msg)
           | None ->
             (* Destination left the system before delivery. *)
             bump t "net.dropped";
             emitf t (fun () ->
                 Event.Drop
                   {
                     src = Pid.to_int src;
                     dst = Pid.to_int dst;
                     kind = kind_of t msg;
                     reason = Departed;
                   });
             tracef t (fun tr ->
                 Trace.recordf tr ~time:(Scheduler.now t.sched) ~topic:"net"
                   "drop(left) %a->%a: %a" Pid.pp src Pid.pp dst (pp_payload t) msg)))
  in
  let action =
    match t.fault with
    | Some plan -> plan decision ~msg_kind:(kind_of t msg)
    | None -> Pass
  in
  (match action with
  | Pass -> ()
  | faulted ->
    t.injected <- t.injected + 1;
    bump t "net.injected";
    emitf t (fun () ->
        Event.Fault_injected
          {
            fault = fault_action_name faulted;
            src = Pid.to_int src;
            dst = Pid.to_int dst;
            kind = kind_of t msg;
          });
    tracef t (fun tr ->
        Trace.recordf tr ~time:(Scheduler.now t.sched) ~topic:"fault" "inject %s %a->%a: %a"
          (fault_action_name faulted) Pid.pp src Pid.pp dst (pp_payload t) msg));
  match action with
  | Pass -> copy ~as_src:src ~extra:0
  | Drop_msg ->
    let _lc = announce () in
    bump t "net.faulted";
    emitf t (fun () ->
        Event.Drop
          { src = Pid.to_int src; dst = Pid.to_int dst; kind = kind_of t msg; reason = Faulted });
    tracef t (fun tr ->
        Trace.recordf tr ~time:(Scheduler.now t.sched) ~topic:"net" "fault-drop %a->%a: %a"
          Pid.pp src Pid.pp dst (pp_payload t) msg)
  | Delay_by { extra } -> copy ~as_src:src ~extra:(Stdlib.max 0 extra)
  | Corrupt_tag ->
    (* The sender tag is scrambled: the receiver observes itself as the
       source, so replies routed by sender identity are misdirected. *)
    copy ~as_src:dst ~extra:0
  | Duplicate { copies } ->
    for _ = 0 to Stdlib.max 0 copies do
      copy ~as_src:src ~extra:0
    done

let send t ~src ~dst msg =
  if Pid.Table.mem t.handlers dst then begin
    bump t "net.sent";
    transmit t ~kind:Delay.Point_to_point ~src ~dst msg
  end
  else bump t "net.dropped"

(* One flooding hop: deliver-once at [dst], then relay to everyone the
   relayer currently sees while hops remain. The per-destination seen
   set makes delivery idempotent; relays travel as point-to-point
   messages, so link faults only cost redundancy, not delivery. *)
let rec flood_hop t ~origin ~id ~ttl ~src ~dst msg =
  let on_arrival handler =
    let key = (Pid.to_int dst, Pid.to_int origin, id) in
    if Hashtbl.mem t.flood_seen key then bump t "net.duplicate"
    else begin
      Hashtbl.replace t.flood_seen key ();
      handler ~src:origin msg;
      if ttl > 0 then begin
        let next = List.filter (fun y -> not (Pid.equal y dst)) (attached_sorted t) in
        List.iter
          (fun y ->
            bump t "net.relayed";
            flood_hop t ~origin ~id ~ttl:(ttl - 1) ~src:dst ~dst:y msg)
          next
      end
    end
  in
  transmit t ~kind:Delay.Broadcast ~src ~dst ~on_arrival msg

let broadcast t ~src msg =
  bump t "net.broadcast";
  match t.mode with
  | Primitive ->
    (* Snapshot the present set: only processes in the system at
       broadcast time may deliver (timely-delivery property). Sorted so
       that delay draws happen in a reproducible order. *)
    List.iter
      (fun dst -> transmit t ~kind:Delay.Broadcast ~src ~dst msg)
      (attached_sorted t)
  | Flooding { relay_depth } ->
    let id = t.broadcast_counter in
    t.broadcast_counter <- t.broadcast_counter + 1;
    List.iter
      (fun dst -> flood_hop t ~origin:src ~id ~ttl:(relay_depth - 1) ~src ~dst msg)
      (attached_sorted t)
