open Dds_sim

(** Reliable message-passing with pluggable synchrony.

    Implements the two communication primitives of Sections 3.2 and
    5.1 over the discrete-event scheduler:

    - {b point-to-point} [send]: reliable (no loss, duplication or
      corruption), delivered within the bound the {!Delay.t} model
      grants;
    - {b timely broadcast} ([broadcast]/deliver): the message reaches
      every process {e present in the system at broadcast time} that
      has not left by delivery time, within the same bound. A process
      that enters afterwards does {e not} get it — this is exactly the
      hazard motivating the join protocol's initial [delta] wait
      (Figure 3).

    Presence is tracked by handler attachment: a process in listening
    mode (from the start of its [join], Section 2.1) is attached; a
    process that leaves is detached, and anything still in flight
    towards it is dropped at delivery time, since a departed process
    "does no longer send or receive messages".

    The payload type ['a] is the protocol's message type; each
    deployment instantiates one network per protocol. *)

type 'a t
(** A network carrying ['a] payloads. *)

type 'a handler = src:Pid.t -> 'a -> unit
(** Invoked at delivery time, with the scheduler clock already advanced
    to the delivery instant. *)

(** How {!broadcast} disseminates.

    [Primitive] is the paper's postulated service: one timely delivery
    to every process present at broadcast time (Section 3.2).

    [Flooding] {e implements} that service from point-to-point links,
    discharging the assumption inside the model (the paper imports it
    from Hadzilacos-Toueg [15] / Friedman-Raynal-Travers [10]): each
    first delivery is relayed once to every process the relayer
    currently sees, for up to [relay_depth] hops, with per-(origin,
    broadcast) duplicate suppression at every process. Over links
    bounded by [h], delivery to everyone present-and-staying happens
    within [relay_depth * h] — so a protocol run over flooding must
    take [delta = relay_depth * h]. Flooding is also more robust than
    the primitive: processes that {e enter} during dissemination can
    still be reached through relays, and single-link faults are routed
    around. E17 measures the cost. *)
type broadcast_mode =
  | Primitive
  | Flooding of { relay_depth : int }

(** What the fault plan may do to one point-to-point transmission,
    decided at send time. Everything except [Pass] steps outside the
    paper's reliable-network assumption and is recorded as a
    [Fault_injected] event plus a [net.injected] metric tick, so every
    deviation is attributable in the exported trace. *)
type fault_action =
  | Pass  (** deliver normally — the default plan everywhere *)
  | Drop_msg  (** lose the message ([Drop] with reason [Faulted]) *)
  | Duplicate of { copies : int }
      (** deliver, plus [copies] extra copies, each with its own
          sampled delay (and so its own ordering) and its own [Send]
          event *)
  | Delay_by of { extra : int }
      (** stretch the sampled delay by [extra] ticks — the instrument
          for violating the synchrony bound [delta] *)
  | Corrupt_tag
      (** deliver with a forged sender identity (the receiver observes
          itself as the source); wire-level telemetry keeps the true
          endpoints *)

type fault_plan = Delay.decision -> msg_kind:string -> fault_action
(** Consulted once per point-to-point transmission (a broadcast asks
    once per destination). [msg_kind] is the payload's wire kind (e.g.
    ["INQUIRY"]), letting plans target protocol phases. *)

val create :
  sched:Scheduler.t ->
  rng:Rng.t ->
  delay:Delay.t ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  ?events:Event.sink ->
  ?pp_msg:(Format.formatter -> 'a -> unit) ->
  ?msg_kind:('a -> string) ->
  ?broadcast_mode:broadcast_mode ->
  ?fault:fault_plan ->
  unit ->
  'a t
(** A network with no attached processes. [metrics] (counters
    [net.sent], [net.broadcast], [net.transmit], [net.delivered],
    [net.dropped], [net.faulted], [net.injected], [net.relayed],
    [net.duplicate]) and [trace] are optional observability sinks;
    [events] receives typed [Send]/[Deliver]/[Drop] telemetry, one
    [Send] per point-to-point copy (a broadcast fans out into one per
    present destination, an injected duplicate adds one more), so a
    trace's [Send] count always equals the [net.transmit] counter.
    [pp_msg] renders payloads in string traces; [msg_kind] names each
    payload's wire kind (e.g. ["INQUIRY"]) in typed events.
    [broadcast_mode] defaults to [Primitive].

    The reliability guarantee in the header is the behavior of the
    {e default} fault plan (none installed, i.e. [Pass] for every
    message). Passing [fault] — or installing a plan later with
    {!set_fault_plan} — interposes a nemesis on every transmission;
    see {!fault_action} for what it may do and [Dds_fault] for the
    plan combinators built on top of this hook.
    @raise Invalid_argument if a [Flooding] relay depth is [< 1]. *)

val attach : 'a t -> Pid.t -> 'a handler -> unit
(** Puts a process in listening mode.
    @raise Invalid_argument if the pid is already attached. *)

val detach : 'a t -> Pid.t -> unit
(** Removes a process (it has left the system). Unknown pids are
    ignored: detaching twice is harmless. *)

val is_attached : 'a t -> Pid.t -> bool

val attached : 'a t -> Pid.t list
(** Processes currently in the system, in unspecified order. *)

val send : 'a t -> src:Pid.t -> dst:Pid.t -> 'a -> unit
(** Point-to-point send. Delivery is scheduled even if [dst] is not
    currently attached only when it {e is} attached at send time;
    sending to an absent process silently drops (the sender "knows"
    stale membership — the model allows that). Delivery checks
    attachment again: a process that left meanwhile receives nothing. *)

val broadcast : 'a t -> src:Pid.t -> 'a -> unit
(** Timely broadcast to every attached process, including the sender. *)

val set_fault_plan : 'a t -> fault_plan -> unit
(** Installs (or replaces) the fault plan consulted on every
    subsequent transmission. *)

val set_fault : 'a t -> (Delay.decision -> bool) -> unit
(** Predicate sugar over {!set_fault_plan}: messages for which the
    predicate returns [true] get {!Drop_msg}, everything else
    [Pass]. *)

val clear_fault : 'a t -> unit
(** Restores the default (reliable) plan. *)

val faults_injected : 'a t -> int
(** Number of transmissions on which the plan returned something other
    than [Pass] so far — the cheap budget check nemesis schedules use
    without consulting metrics. *)

val in_flight : 'a t -> int
(** Messages sent or broadcast but not yet delivered/dropped. *)

val metrics : 'a t -> Metrics.t option
(** The metrics sink this network reports to, if any — also used by
    protocol nodes to record protocol-level counters (e.g. the
    synchronous join's re-inquiry rounds) without extra plumbing. *)

val events : 'a t -> Event.sink option
(** The typed-event sink, if any — protocol nodes use it to emit
    operation spans, phase marks and quorum progress (same plumbing
    shortcut as {!metrics}). *)
