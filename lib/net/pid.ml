type t = int
type gen = { mutable next : int }

let generator () = { next = 0 }

let fresh g =
  let id = g.next in
  g.next <- g.next + 1;
  id

let issued g = g.next
let to_int t = t

let of_int x =
  if x < 0 then invalid_arg "Pid.of_int: negative identifier";
  x

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp ppf t = Format.fprintf ppf "p%d" t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
module Table = Hashtbl.Make (Hashed)
