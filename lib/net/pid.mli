(** Process identities under the infinite-arrival model.

    The paper assumes infinitely many uniquely-identified processes may
    join over a run, finitely many being present at any instant
    (Section 2.1, after Merritt-Taubenfeld). A {!t} is such an
    identity; a {!gen} hands them out in arrival order and never reuses
    one — a process that leaves and comes back gets a fresh identity,
    exactly as the model prescribes. *)

type t = private int
(** A unique process identifier. *)

type gen
(** A monotone identifier source. *)

val generator : unit -> gen
(** A fresh source starting at identifier 0. *)

val fresh : gen -> t
(** The next never-before-issued identifier. *)

val issued : gen -> int
(** How many identifiers this source has handed out. *)

val to_int : t -> int

val of_int : int -> t
(** For tests and table decoding.
    @raise Invalid_argument on negative input. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [p<i>]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
