exception Truncated
exception Malformed of string

let max_frame = 16 * 1024 * 1024

(* --- wire protocol versions ----------------------------------------- *)

let v1 = 1
let v2 = 2
let max_version = v2

let version_supported v = v = v1 || v = v2

(* --- writers -------------------------------------------------------- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_int b v =
  (* 8 bytes big-endian two's complement: OCaml ints are 63-bit, so an
     Int64 round-trip is exact, and min_int sentinels survive. *)
  Buffer.add_int64_be b (Int64.of_int v)

let put_bool b v = put_u8 b (if v then 1 else 0)

let put_string b s =
  put_int b (String.length s);
  Buffer.add_string b s

let put_key b k =
  if k < 0 then raise (Malformed (Printf.sprintf "key %d negative" k));
  put_int b k

(* --- readers -------------------------------------------------------- *)

type reader = { buf : string; mutable pos : int }

let reader s = { buf = s; pos = 0 }
let remaining r = String.length r.buf - r.pos

let need r n = if remaining r < n then raise Truncated

let get_u8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_be r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> raise (Malformed (Printf.sprintf "bool byte %d" v))

let get_string r =
  let len = get_int r in
  if len < 0 || len > max_frame then raise (Malformed (Printf.sprintf "string length %d" len));
  need r len;
  let s = String.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  s

let get_key r =
  let k = get_int r in
  if k < 0 then raise (Malformed (Printf.sprintf "key %d negative" k));
  k

let expect_end r =
  if remaining r <> 0 then
    raise (Malformed (Printf.sprintf "%d trailing bytes after message" (remaining r)))

(* --- framing -------------------------------------------------------- *)

let frame b =
  let len = Buffer.length b in
  if len > max_frame then raise (Malformed (Printf.sprintf "frame length %d" len));
  let out = Buffer.create (len + 4) in
  Buffer.add_int32_be out (Int32.of_int len);
  Buffer.add_buffer out b;
  Buffer.contents out

type deframer = { acc : Buffer.t }

let deframer () = { acc = Buffer.create 4096 }

let peek_len d =
  if Buffer.length d.acc < 4 then None
  else begin
    let len = Int32.to_int (String.get_int32_be (Buffer.sub d.acc 0 4) 0) in
    if len < 0 || len > max_frame then raise (Malformed (Printf.sprintf "frame length %d" len));
    Some len
  end

let feed d chunk len =
  Buffer.add_subbytes d.acc chunk 0 len;
  (* Validate the prefix eagerly so a hostile length kills the
     connection before it makes us buffer toward it. *)
  ignore (peek_len d)

let next_frame d =
  match peek_len d with
  | Some len when Buffer.length d.acc >= 4 + len ->
    let payload = Buffer.sub d.acc 4 len in
    let rest = Buffer.sub d.acc (4 + len) (Buffer.length d.acc - 4 - len) in
    Buffer.clear d.acc;
    Buffer.add_string d.acc rest;
    Some payload
  | Some _ | None -> None

let pending_bytes d = Buffer.length d.acc
