(** Length-prefixed binary framing and codec primitives.

    The Unix runtime backend speaks frames over TCP: a 4-byte
    big-endian payload length followed by the payload. Payloads are
    built with the [put_*] writers into a [Buffer.t] and decoded with
    the [get_*] readers; every protocol implements its message codec
    ([put_msg]/[get_msg] in {!Dds_core.Register_intf.PROTOCOL}) from
    these primitives, so the framing layer never learns message
    shapes.

    Decoding is strict: a reader that runs out of bytes raises
    {!Truncated}, a structurally impossible payload (bad tag,
    oversized length, trailing garbage at the frame level) raises
    {!Malformed}. Nothing here touches sockets — the deframer is a
    pure accumulator fed arbitrary chunks — which is what makes the
    codec qcheck-testable without I/O. *)

exception Truncated
(** The payload ended mid-field. *)

exception Malformed of string
(** The bytes cannot be a frame/message (bad tag, absurd length...). *)

val max_frame : int
(** Upper bound on a payload length (16 MiB); a length prefix above it
    raises [Malformed] rather than allocating attacker-chosen
    buffers. *)

(** {1 Wire protocol versions}

    The envelope layer ({!Dds_runtime_unix.Frame}) is versioned: v1 is
    the PR 8 single-register layout, v2 adds a 63-bit key to client
    operations and a shard id to peer messages. The version is
    negotiated per connection by the first [Hello]/[Client_hello]
    frame; these constants name the versions so codec and negotiation
    code never hard-codes integers. *)

val v1 : int
(** Original single-register wire protocol (no keys on the wire). *)

val v2 : int
(** Keyed wire protocol: [Read_req]/[Write_req]/[Resp] carry a key,
    [Msg] carries a shard id. *)

val max_version : int
(** Highest version this build understands (= {!v2}). *)

val version_supported : int -> bool
(** Whether this build can speak the given version. *)

(** {1 Writers} *)

val put_u8 : Buffer.t -> int -> unit
(** Low 8 bits of the argument. *)

val put_int : Buffer.t -> int -> unit
(** Full-range OCaml [int], 8 bytes big-endian two's complement
    (safe for [min_int] sentinels like {!Dds_spec.Value.bottom}'s
    sequence number). *)

val put_bool : Buffer.t -> bool -> unit

val put_string : Buffer.t -> string -> unit
(** [put_int] length then raw bytes. *)

val put_key : Buffer.t -> int -> unit
(** A 63-bit non-negative register key, encoded like [put_int].
    @raise Malformed on a negative key (keys are hashes masked to the
    low 62 bits, so a negative key is a caller bug, not data). *)

(** {1 Readers} *)

type reader
(** A cursor over one decoded payload. *)

val reader : string -> reader
val remaining : reader -> int

val get_u8 : reader -> int
val get_int : reader -> int
val get_bool : reader -> bool
val get_string : reader -> string

val get_key : reader -> int
(** @raise Malformed on a negative key. *)

val expect_end : reader -> unit
(** @raise Malformed if undecoded bytes remain — a frame must be
    exactly one message. *)

(** {1 Framing} *)

val frame : Buffer.t -> string
(** The buffer's contents wrapped in a 4-byte big-endian length
    prefix, ready to write to a socket.
    @raise Malformed if the payload exceeds {!max_frame}. *)

type deframer
(** Incremental frame extractor: feed it chunks as they arrive off a
    socket, pop complete payloads. *)

val deframer : unit -> deframer

val feed : deframer -> bytes -> int -> unit
(** [feed d chunk len] appends the first [len] bytes of [chunk].
    @raise Malformed as soon as a length prefix exceeds
    {!max_frame}. *)

val next_frame : deframer -> string option
(** The next complete payload, if one is buffered. *)

val pending_bytes : deframer -> int
(** Bytes buffered but not yet popped as frames (diagnostic: non-zero
    at connection close means the peer died mid-frame). *)
