type kind = Job | Steal | Idle | Merge | Phase

let kind_to_string = function
  | Job -> "job"
  | Steal -> "steal"
  | Idle -> "idle"
  | Merge -> "merge"
  | Phase -> "phase"

let kind_tag = function Job -> 0 | Steal -> 1 | Idle -> 2 | Merge -> 3 | Phase -> 4
let kind_of_tag = function 0 -> Job | 1 -> Steal | 2 -> Idle | 3 -> Merge | _ -> Phase

(* One buffer per worker, written only by its owner: parallel arrays
   grown by doubling up to [max_spans], so a record is bounds check +
   stores, no per-span allocation beyond the label it was handed. *)
type buf = {
  mutable len : int;
  mutable kinds : int array;
  mutable labels : string array;
  mutable t0s : float array;
  mutable t1s : float array;
  mutable minors : float array;
  mutable promoteds : float array;
  mutable majors : float array;
  mutable minor_cols : int array;
  mutable major_cols : int array;
  mutable dropped : int;
  mutable steal_attempts : int;
  mutable steal_successes : int;
  (* Open Probe phases on this worker, innermost first: name, start
     time, minor words at entry. *)
  mutable stack : (string * float * float) list;
}

let new_buf cap =
  {
    len = 0;
    kinds = Array.make cap 0;
    labels = Array.make cap "";
    t0s = Array.make cap 0.0;
    t1s = Array.make cap 0.0;
    minors = Array.make cap 0.0;
    promoteds = Array.make cap 0.0;
    majors = Array.make cap 0.0;
    minor_cols = Array.make cap 0;
    major_cols = Array.make cap 0;
    dropped = 0;
    steal_attempts = 0;
    steal_successes = 0;
    stack = [];
  }

type t = {
  origin : float;
  nworkers : int;
  max_spans : int;
  bufs : buf array;
  mutable gc_params : (string * int) list;
      (* active GC settings noted by the engine (e.g. minor_heap_words);
         surfaced in the summary and as Chrome metadata *)
}

let workers t = t.nworkers
let set_gc_params t params = t.gc_params <- params
let gc_params t = t.gc_params
let now () = Unix.gettimeofday ()

let grow b =
  let cap = Array.length b.kinds in
  let ncap = cap * 2 in
  let extend mk a =
    let n = mk ncap in
    Array.blit a 0 n 0 cap;
    n
  in
  b.kinds <- extend (fun n -> Array.make n 0) b.kinds;
  b.labels <- extend (fun n -> Array.make n "") b.labels;
  b.t0s <- extend (fun n -> Array.make n 0.0) b.t0s;
  b.t1s <- extend (fun n -> Array.make n 0.0) b.t1s;
  b.minors <- extend (fun n -> Array.make n 0.0) b.minors;
  b.promoteds <- extend (fun n -> Array.make n 0.0) b.promoteds;
  b.majors <- extend (fun n -> Array.make n 0.0) b.majors;
  b.minor_cols <- extend (fun n -> Array.make n 0) b.minor_cols;
  b.major_cols <- extend (fun n -> Array.make n 0) b.major_cols

let push t b ~kind ~label ~t0 ~t1 ~minor ~promoted ~major ~mc ~jc =
  if b.len >= t.max_spans then b.dropped <- b.dropped + 1
  else begin
    if b.len >= Array.length b.kinds then grow b;
    let i = b.len in
    b.kinds.(i) <- kind_tag kind;
    b.labels.(i) <- label;
    b.t0s.(i) <- t0 -. t.origin;
    b.t1s.(i) <- t1 -. t.origin;
    b.minors.(i) <- minor;
    b.promoteds.(i) <- promoted;
    b.majors.(i) <- major;
    b.minor_cols.(i) <- mc;
    b.major_cols.(i) <- jc;
    b.len <- i + 1
  end

let record t ~worker ~kind ~label ~t0 ~t1 =
  push t t.bufs.(worker) ~kind ~label ~t0 ~t1 ~minor:0.0 ~promoted:0.0 ~major:0.0 ~mc:0
    ~jc:0

let record_job t ~worker ~label ~t0 ~t1 ~minor ~promoted ~major ~minor_cols ~major_cols =
  push t t.bufs.(worker) ~kind:Job ~label ~t0 ~t1 ~minor ~promoted ~major ~mc:minor_cols
    ~jc:major_cols

let steal_attempt t ~worker ~success =
  let b = t.bufs.(worker) in
  b.steal_attempts <- b.steal_attempts + 1;
  if success then b.steal_successes <- b.steal_successes + 1

(* ------------------------------------------------------------------ *)
(* The per-domain recorder binding and the Probe handler. The handler
   is process-wide and inert on domains with no binding; it is
   installed once, the first time any recorder is created. *)

let current : (t * int) option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get_current () = Domain.DLS.get current
let set_current t ~worker = Domain.DLS.set current (Some (t, worker))
let restore prev = Domain.DLS.set current prev

let probe_enter name =
  match Domain.DLS.get current with
  | None -> ()
  | Some (t, w) ->
    let b = t.bufs.(w) in
    b.stack <- (name, now (), Gc.minor_words ()) :: b.stack

let probe_exit name =
  match Domain.DLS.get current with
  | None -> ()
  | Some (t, w) -> (
    let b = t.bufs.(w) in
    match b.stack with
    | (n, t0, m0) :: rest when String.equal n name ->
      b.stack <- rest;
      push t b ~kind:Phase ~label:name ~t0 ~t1:(now ())
        ~minor:(Gc.minor_words () -. m0)
        ~promoted:0.0 ~major:0.0 ~mc:0 ~jc:0
    | _ ->
      (* Mismatched exit (an exception unwound past a probe whose
         enter this domain never saw, e.g. after a rebind): drop it
         rather than corrupt the stack. *)
      ())

let handler_installed = Atomic.make false

let install_handler () =
  if not (Atomic.exchange handler_installed true) then
    Dds_sim.Probe.set_handler (Some { Dds_sim.Probe.enter = probe_enter; exit = probe_exit })

let create ?(max_spans = 65536) ~workers () =
  if workers < 1 then invalid_arg "Profile.create: workers must be >= 1";
  install_handler ();
  {
    origin = now ();
    nworkers = workers;
    max_spans;
    bufs = Array.init workers (fun _ -> new_buf 1024);
    gc_params = [];
  }

(* ------------------------------------------------------------------ *)
(* Read-back *)

type span = {
  sp_worker : int;
  sp_kind : kind;
  sp_label : string;
  sp_t0 : float;
  sp_t1 : float;
  sp_minor : float;
  sp_promoted : float;
  sp_major : float;
  sp_minor_cols : int;
  sp_major_cols : int;
}

let spans t =
  let acc = ref [] in
  for w = t.nworkers - 1 downto 0 do
    let b = t.bufs.(w) in
    for i = b.len - 1 downto 0 do
      acc :=
        {
          sp_worker = w;
          sp_kind = kind_of_tag b.kinds.(i);
          sp_label = b.labels.(i);
          sp_t0 = b.t0s.(i);
          sp_t1 = b.t1s.(i);
          sp_minor = b.minors.(i);
          sp_promoted = b.promoteds.(i);
          sp_major = b.majors.(i);
          sp_minor_cols = b.minor_cols.(i);
          sp_major_cols = b.major_cols.(i);
        }
        :: !acc
    done
  done;
  !acc

type worker_summary = {
  w_id : int;
  w_jobs : int;
  w_busy_s : float;
  w_idle_s : float;
  w_steal_attempts : int;
  w_steals : int;
  w_busy_fraction : float;
}

type summary = {
  s_workers : worker_summary list;
  s_wall_s : float;
  s_jobs : int;
  s_busy_fraction : float;
  s_steal_attempts : int;
  s_steals : int;
  s_steal_success_rate : float;
  s_minor_words : float;
  s_promoted_words : float;
  s_major_words : float;
  s_minor_cols : int;
  s_major_cols : int;
  s_minor_words_per_job : float;
  s_phases : (string * int * float) list;
  s_top_jobs : (string * float * float) list;
  s_dropped : int;
  s_dominant : string;
  s_gc_params : (string * int) list;
}

let summary ?(top = 5) t =
  let wall_lo = ref infinity and wall_hi = ref neg_infinity in
  let phase_tbl : (string, (int * float) ref) Hashtbl.t = Hashtbl.create 16 in
  let phase_order = ref [] in
  let jobs_all = ref [] in
  let minor = ref 0.0 and promoted = ref 0.0 and major = ref 0.0 in
  let mcols = ref 0 and jcols = ref 0 in
  let dropped = ref 0 in
  let per_worker =
    Array.to_list
      (Array.init t.nworkers (fun w ->
           let b = t.bufs.(w) in
           dropped := !dropped + b.dropped;
           let busy = ref 0.0 and idle = ref 0.0 and njobs = ref 0 in
           for i = 0 to b.len - 1 do
             let dur = b.t1s.(i) -. b.t0s.(i) in
             if b.t0s.(i) < !wall_lo then wall_lo := b.t0s.(i);
             if b.t1s.(i) > !wall_hi then wall_hi := b.t1s.(i);
             (match kind_of_tag b.kinds.(i) with
             | Job ->
               busy := !busy +. dur;
               incr njobs;
               minor := !minor +. b.minors.(i);
               promoted := !promoted +. b.promoteds.(i);
               major := !major +. b.majors.(i);
               mcols := !mcols + b.minor_cols.(i);
               jcols := !jcols + b.major_cols.(i);
               jobs_all := (b.labels.(i), dur, b.minors.(i)) :: !jobs_all
             | Idle -> idle := !idle +. dur
             | Phase ->
               (match Hashtbl.find_opt phase_tbl b.labels.(i) with
               | Some cell ->
                 let n, s = !cell in
                 cell := (n + 1, s +. dur)
               | None ->
                 Hashtbl.add phase_tbl b.labels.(i) (ref (1, dur));
                 phase_order := b.labels.(i) :: !phase_order)
             | Steal | Merge -> ())
           done;
           ( w,
             !njobs,
             !busy,
             !idle,
             b.steal_attempts,
             b.steal_successes )))
  in
  let wall = if !wall_hi > !wall_lo then !wall_hi -. !wall_lo else 0.0 in
  let frac x = if wall > 0.0 then x /. wall else 0.0 in
  let wsums =
    List.map
      (fun (w, j, busy, idle, sa, ss) ->
        {
          w_id = w;
          w_jobs = j;
          w_busy_s = busy;
          w_idle_s = idle;
          w_steal_attempts = sa;
          w_steals = ss;
          w_busy_fraction = frac busy;
        })
      per_worker
  in
  let total f = List.fold_left (fun a w -> a +. f w) 0.0 wsums in
  let totali f = List.fold_left (fun a w -> a + f w) 0 wsums in
  let busy_total = total (fun w -> w.w_busy_s) in
  let idle_total = total (fun w -> w.w_idle_s) in
  let jobs_total = totali (fun w -> w.w_jobs) in
  let attempts = totali (fun w -> w.w_steal_attempts) in
  let steals = totali (fun w -> w.w_steals) in
  let phases =
    List.rev_map
      (fun name ->
        let n, s = !(Hashtbl.find phase_tbl name) in
        (name, n, s))
      !phase_order
    |> List.stable_sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
  in
  let top_jobs =
    let sorted =
      List.stable_sort (fun (_, a, _) (_, b, _) -> Float.compare b a) (List.rev !jobs_all)
    in
    List.filteri (fun i _ -> i < top) sorted
  in
  (* Dominant cost: the largest share of total worker-seconds among
     idle time, each probe phase, and job time not inside any phase.
     Phase spans nest inside job spans, so job-minus-phases is the
     engine/simulator remainder. *)
  let denom = wall *. float_of_int t.nworkers in
  let phase_sum = List.fold_left (fun a (_, _, s) -> a +. s) 0.0 phases in
  let candidates =
    ("idle", idle_total)
    :: ("job (outside phases)", Stdlib.max 0.0 (busy_total -. phase_sum))
    :: List.map (fun (name, _, s) -> ("phase " ^ name, s)) phases
  in
  let dom_name, dom_s =
    List.fold_left
      (fun (bn, bs) (n, s) -> if s > bs then (n, s) else (bn, bs))
      ("idle", idle_total) candidates
  in
  let dominant =
    if denom <= 0.0 then "no spans recorded"
    else
      Printf.sprintf "%s: %.0f%% of worker-seconds (%.3fs of %.3fs across %d worker(s))"
        dom_name
        (100.0 *. dom_s /. denom)
        dom_s denom t.nworkers
  in
  {
    s_workers = wsums;
    s_wall_s = wall;
    s_jobs = jobs_total;
    s_busy_fraction = (if denom > 0.0 then busy_total /. denom else 0.0);
    s_steal_attempts = attempts;
    s_steals = steals;
    s_steal_success_rate =
      (if attempts > 0 then float_of_int steals /. float_of_int attempts else 0.0);
    s_minor_words = !minor;
    s_promoted_words = !promoted;
    s_major_words = !major;
    s_minor_cols = !mcols;
    s_major_cols = !jcols;
    s_minor_words_per_job =
      (if jobs_total > 0 then !minor /. float_of_int jobs_total else 0.0);
    s_phases = phases;
    s_top_jobs = top_jobs;
    s_dropped = !dropped;
    s_dominant = dominant;
    s_gc_params = t.gc_params;
  }

let pp_summary ppf s =
  Format.fprintf ppf "profile    : %d job(s), wall %.3fs, busy fraction %.2f@." s.s_jobs
    s.s_wall_s s.s_busy_fraction;
  Format.fprintf ppf "  steals   : %d/%d scan(s) succeeded (%.0f%%)@." s.s_steals
    s.s_steal_attempts
    (100.0 *. s.s_steal_success_rate);
  Format.fprintf ppf
    "  alloc    : %.3g minor words (%.3g/job), %.3g promoted, %d minor / %d major GCs@."
    s.s_minor_words s.s_minor_words_per_job s.s_promoted_words s.s_minor_cols s.s_major_cols;
  if s.s_gc_params <> [] then
    Format.fprintf ppf "  gc       : %s@."
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) s.s_gc_params));
  List.iter
    (fun (name, n, secs) ->
      Format.fprintf ppf "  phase    : %-10s %6d span(s) %8.3fs@." name n secs)
    s.s_phases;
  List.iter
    (fun w ->
      Format.fprintf ppf
        "  domain %d : %5d job(s) busy %6.3fs (%.2f) idle %6.3fs steals %d/%d@." w.w_id
        w.w_jobs w.w_busy_s w.w_busy_fraction w.w_idle_s w.w_steals w.w_steal_attempts)
    s.s_workers;
  List.iter
    (fun (key, secs, minor) ->
      Format.fprintf ppf "  slowest  : %-40s %8.3fs %.3g minor words@." key secs minor)
    s.s_top_jobs;
  if s.s_dropped > 0 then
    Format.fprintf ppf "  dropped  : %d span(s) over the per-domain buffer cap@." s.s_dropped;
  Format.fprintf ppf "  dominant : %s@." s.s_dominant

(* ------------------------------------------------------------------ *)
(* Exports *)

let us x = int_of_float (x *. 1e6)

let to_chrome t =
  let module J = Dds_sim.Json in
  let meta =
    J.Obj
      [
        ("ph", J.String "M"); ("pid", Int 0); ("tid", Int 0); ("name", String "process_name");
        ("args", Obj [ ("name", String "dds engine") ]);
      ]
    :: List.init t.nworkers (fun w ->
           J.Obj
             [
               ("ph", J.String "M"); ("pid", Int 0); ("tid", Int w);
               ("name", String "thread_name");
               ("args", Obj [ ("name", String (Printf.sprintf "domain %d" w)) ]);
             ])
  in
  let meta =
    if t.gc_params = [] then meta
    else
      meta
      @ [
          J.Obj
            [
              ("ph", J.String "M"); ("pid", Int 0); ("tid", Int 0);
              ("name", String "gc_params");
              ("args", Obj (List.map (fun (k, v) -> (k, J.Int v)) t.gc_params));
            ];
        ]
  in
  let span_events =
    List.map
      (fun s ->
        let gc_args =
          match s.sp_kind with
          | Job ->
            [
              ("minor_words", J.Float s.sp_minor);
              ("promoted_words", J.Float s.sp_promoted);
              ("major_words", J.Float s.sp_major);
              ("minor_collections", J.Int s.sp_minor_cols);
              ("major_collections", J.Int s.sp_major_cols);
            ]
          | Phase -> [ ("minor_words", J.Float s.sp_minor) ]
          | Steal | Idle | Merge -> []
        in
        J.Obj
          [
            ("ph", J.String "X");
            ("pid", Int 0);
            ("tid", Int s.sp_worker);
            ("ts", Int (us s.sp_t0));
            ("dur", Int (Stdlib.max 0 (us s.sp_t1 - us s.sp_t0)));
            ("name", String (if s.sp_label = "" then kind_to_string s.sp_kind else s.sp_label));
            ("cat", String (kind_to_string s.sp_kind));
            ("args", Obj gc_args);
          ])
      (spans t)
  in
  J.Obj [ ("traceEvents", J.List (meta @ span_events)); ("displayTimeUnit", String "ms") ]

let summary_json s =
  let module J = Dds_sim.Json in
  J.Obj
    [
      ("wall_s", J.Float s.s_wall_s);
      ("jobs", J.Int s.s_jobs);
      ("busy_fraction", J.Float s.s_busy_fraction);
      ("steal_attempts", J.Int s.s_steal_attempts);
      ("steals", J.Int s.s_steals);
      ("steal_success_rate", J.Float s.s_steal_success_rate);
      ("minor_words", J.Float s.s_minor_words);
      ("promoted_words", J.Float s.s_promoted_words);
      ("major_words", J.Float s.s_major_words);
      ("minor_collections", J.Int s.s_minor_cols);
      ("major_collections", J.Int s.s_major_cols);
      ("minor_words_per_job", J.Float s.s_minor_words_per_job);
      ("dropped_spans", J.Int s.s_dropped);
      ("dominant", J.String s.s_dominant);
      ("gc_params", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) s.s_gc_params));
      ( "workers",
        J.List
          (List.map
             (fun w ->
               J.Obj
                 [
                   ("id", J.Int w.w_id);
                   ("jobs", J.Int w.w_jobs);
                   ("busy_s", J.Float w.w_busy_s);
                   ("idle_s", J.Float w.w_idle_s);
                   ("busy_fraction", J.Float w.w_busy_fraction);
                   ("steal_attempts", J.Int w.w_steal_attempts);
                   ("steals", J.Int w.w_steals);
                 ])
             s.s_workers) );
      ( "phases",
        J.Obj
          (List.map
             (fun (name, n, secs) ->
               (name, J.Obj [ ("count", J.Int n); ("total_s", J.Float secs) ]))
             s.s_phases) );
      ( "top_jobs",
        J.List
          (List.map
             (fun (key, secs, minor) ->
               J.Obj
                 [
                   ("key", J.String key); ("wall_s", J.Float secs);
                   ("minor_words", J.Float minor);
                 ])
             s.s_top_jobs) );
    ]

let to_json ?top t =
  match to_chrome t with
  | Dds_sim.Json.Obj fields ->
    Dds_sim.Json.Obj (fields @ [ ("summary", summary_json (summary ?top t)) ])
  | j -> j
