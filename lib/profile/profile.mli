(** Low-overhead profiling of the multicore experiment engine.

    A recorder owns one span buffer per worker domain. Each buffer is
    written only by its owning worker (single-writer, no locks) into
    pre-sized parallel arrays, so recording a span is a handful of
    array stores — cheap enough to leave in the hot paths of
    {!Dds_engine.Pool}. When no recorder is attached the engine pays
    one [option] branch per instrumented site and the simulator pays
    one load per {!Dds_sim.Probe.span}: profiling off is free.

    What gets recorded, per worker:
    - [Job] spans: one per engine job, labelled with the job key,
      carrying the {!Gc.quick_stat} deltas of the job body (minor /
      promoted / major words, minor / major collections) — the
      allocation telemetry ROADMAP Open item 1 asks for;
    - [Steal] spans: each successful steal scan;
    - [Idle] spans: coalesced stretches where a worker found no runnable
      job (failed scans are counted as steal attempts);
    - [Merge] spans: the canonical-order result copy on worker 0;
    - [Phase] spans: simulator-side sections bracketed by
      {!Dds_sim.Probe.span} (deployment construction, rng seeding),
      attributed to whichever worker ran the enclosing job.

    Timestamps are [Unix.gettimeofday] seconds, the same clock the
    pool's existing busy accounting uses; spans store offsets from the
    recorder's creation instant. Buffers are merged {e canonically} at
    read time — per worker in record order, workers in index order —
    so exports are a deterministic function of what each domain did.

    Thread-safety contract: [record]/probe writes happen only from the
    owning worker during a batch; {!spans}, {!summary} and the exports
    must be called between batches (not concurrently with one). *)

type t

type kind = Job | Steal | Idle | Merge | Phase

val kind_to_string : kind -> string

val create : ?max_spans:int -> workers:int -> unit -> t
(** A recorder for [workers] worker domains (worker 0 is the
    submitting domain). Each worker's buffer holds at most [max_spans]
    spans (default 65536); spans beyond the cap are counted as dropped
    rather than recorded. Creating a recorder installs the process-wide
    {!Dds_sim.Probe} handler (idempotent); the handler is inert for
    any domain with no current recorder slot. *)

val workers : t -> int

val now : unit -> float
(** The recorder's clock ([Unix.gettimeofday]). *)

(** {1 Recording} (engine-facing) *)

val set_current : t -> worker:int -> unit
(** Bind the calling domain to [worker]'s buffer: subsequent
    {!Dds_sim.Probe.span} phases on this domain are recorded there.
    Returns the previous binding via {!get_current}/{!restore}. *)

val get_current : unit -> (t * int) option
val restore : (t * int) option -> unit

val record : t -> worker:int -> kind:kind -> label:string -> t0:float -> t1:float -> unit
(** Record one span with no GC payload. Owner-only. *)

val record_job :
  t ->
  worker:int ->
  label:string ->
  t0:float ->
  t1:float ->
  minor:float ->
  promoted:float ->
  major:float ->
  minor_cols:int ->
  major_cols:int ->
  unit
(** Record one [Job] span with its [Gc.quick_stat] deltas. Owner-only. *)

val steal_attempt : t -> worker:int -> success:bool -> unit
(** Count one steal scan (over every victim deque) by [worker]. *)

val set_gc_params : t -> (string * int) list -> unit
(** Note the GC settings active in the engine's domains (e.g.
    [("minor_heap_words", 262144)]) — {!Dds_engine.Pool.create} calls
    this so the tuning in effect travels with the recording. Surfaced
    in {!summary} ([s_gc_params]), {!summary_json} (["gc_params"]) and
    as a ["gc_params"] metadata event in {!to_chrome}. *)

val gc_params : t -> (string * int) list

(** {1 Reading back} *)

type span = {
  sp_worker : int;
  sp_kind : kind;
  sp_label : string;
  sp_t0 : float;  (** seconds since the recorder was created *)
  sp_t1 : float;
  sp_minor : float;  (** minor words allocated during the span (jobs only) *)
  sp_promoted : float;
  sp_major : float;
  sp_minor_cols : int;
  sp_major_cols : int;
}

val spans : t -> span list
(** Canonical merge: worker 0's spans in record order, then worker 1's,
    ... Record order per worker is start-time order (spans are closed
    in stack discipline per worker, recorded at close). *)

type worker_summary = {
  w_id : int;
  w_jobs : int;
  w_busy_s : float;  (** total Job span seconds *)
  w_idle_s : float;
  w_steal_attempts : int;
  w_steals : int;
  w_busy_fraction : float;  (** busy / recorder wall span *)
}

type summary = {
  s_workers : worker_summary list;
  s_wall_s : float;  (** latest span end minus earliest span start; 0 with no spans *)
  s_jobs : int;
  s_busy_fraction : float;  (** total busy / (wall * workers) *)
  s_steal_attempts : int;
  s_steals : int;
  s_steal_success_rate : float;  (** steals / attempts; 0 with no attempts *)
  s_minor_words : float;
  s_promoted_words : float;
  s_major_words : float;
  s_minor_cols : int;
  s_major_cols : int;
  s_minor_words_per_job : float;
  s_phases : (string * int * float) list;
      (** phase name, count, total seconds — sorted by descending total *)
  s_top_jobs : (string * float * float) list;
      (** slowest jobs: key, seconds, minor words — descending, up to [top] *)
  s_dropped : int;
  s_dominant : string;
      (** one line naming the dominant cost: the largest share of
          worker-seconds among idle time, each phase, and
          non-phase job time *)
  s_gc_params : (string * int) list;
      (** GC settings active in the engine's domains, as noted via
          {!set_gc_params}; empty when the engine never noted any *)
}

val summary : ?top:int -> t -> summary
(** [top] bounds [s_top_jobs] (default 5). *)

val pp_summary : Format.formatter -> summary -> unit

(** {1 Exports} *)

val to_chrome : t -> Dds_sim.Json.t
(** Chrome [trace_event] JSON: one process ("dds engine"), one thread
    lane per worker domain, [X] duration events with microsecond
    timestamps, GC deltas in [args] — loads in chrome://tracing or
    Perfetto next to the simulator traces. *)

val summary_json : summary -> Dds_sim.Json.t

val to_json : ?top:int -> t -> Dds_sim.Json.t
(** {!to_chrome} with the {!summary_json} attached under a top-level
    ["summary"] member (trace viewers ignore unknown top-level keys),
    so one [--profile-out] file is both the timeline and the report. *)
