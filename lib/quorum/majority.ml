open Dds_net

let threshold ~n =
  if n <= 0 then invalid_arg "Majority.threshold: n must be positive";
  (n / 2) + 1

let is_quorum ~n ~size = size >= threshold ~n
let max_simultaneously_absent ~n = n - threshold ~n
let guaranteed_intersection ~n = (2 * threshold ~n) - n
let sets_intersect a b = not (Pid.Set.is_empty (Pid.Set.inter a b))

let all_pairwise_intersect quorums =
  let rec loop = function
    | [] -> true
    | q :: rest -> List.for_all (sets_intersect q) rest && loop rest
  in
  loop quorums
