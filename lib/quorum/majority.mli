open Dds_net

(** Majority-quorum arithmetic.

    The eventually-synchronous protocol's waits are all majority
    waits; this module centralizes the size computations and the
    intersection reasoning its proofs rely on (two majorities of the
    same [n] always share a process, which is how a join's reply set
    is guaranteed to contain the last written value — Theorem 4). *)

val threshold : n:int -> int
(** [floor(n/2) + 1].
    @raise Invalid_argument if [n <= 0]. *)

val is_quorum : n:int -> size:int -> bool
(** [size >= threshold n]. *)

val max_simultaneously_absent : n:int -> int
(** How many of [n] processes can be non-active before the
    majority-active assumption breaks: [n - threshold n]. *)

val guaranteed_intersection : n:int -> int
(** Minimum overlap of two majorities of the same [n]:
    [2 * threshold n - n] (always [>= 1]). *)

val sets_intersect : Pid.Set.t -> Pid.Set.t -> bool

val all_pairwise_intersect : Pid.Set.t list -> bool
(** Every pair of the given quorums shares at least one process — the
    defining property of a quorum system. *)
