open Dds_sim
open Dds_net
open Dds_churn

type t = { members : Pid.Set.t; acquired : Time.t; lifetime : int }

let acquire ~membership ~rng ~now ~size ~lifetime =
  if size <= 0 then invalid_arg "Timed_quorum.acquire: size must be positive";
  if lifetime < 0 then invalid_arg "Timed_quorum.acquire: negative lifetime";
  let active = Array.of_list (Membership.active membership) in
  if Array.length active < size then None
  else begin
    Rng.shuffle_in_place rng active;
    let members = ref Pid.Set.empty in
    for i = 0 to size - 1 do
      members := Pid.Set.add active.(i) !members
    done;
    Some { members = !members; acquired = now; lifetime }
  end

let expired t ~now = Time.diff now t.acquired > t.lifetime
let survivors t membership = Pid.Set.filter (Membership.is_present membership) t.members
let holds t membership ~threshold = Pid.Set.cardinal (survivors t membership) >= threshold

let intersecting_survivors a b membership =
  Pid.Set.inter (survivors a membership) (survivors b membership)

let expected_survivors ~size ~c ~elapsed =
  float_of_int size *. ((1.0 -. c) ** float_of_int elapsed)

let recommended_size ~n ~c ~lifetime =
  let majority = (n / 2) + 1 in
  let rec search q =
    if q >= n then n
    else if expected_survivors ~size:q ~c ~elapsed:lifetime >= float_of_int majority then q
    else search (q + 1)
  in
  search majority

let pp ppf t =
  Format.fprintf ppf "quorum(|%d| acquired=%a lifetime=%d)" (Pid.Set.cardinal t.members)
    Time.pp t.acquired t.lifetime
