open Dds_sim
open Dds_net
open Dds_churn

(** Timed quorums for dynamic systems — the paper's Section 7 future
    work, after Gramoli & Raynal's Timed Quorum Systems (OPODIS 2007,
    the paper's reference [13]).

    A timed quorum is a set of processes sampled from the active
    population, trusted only for a bounded lifetime: under churn rate
    [c] with uniform departures, each member independently survives one
    tick with probability [1 - c], so a quorum of size [q] still holds
    [q * (1 - c)^t] members in expectation after [t] ticks. As long as
    two quorums acquired within each other's lifetimes still intersect
    with high probability, they can substitute for static majorities —
    which is the road to letting {e any} process write at any time
    (the paper's open question).

    This module provides acquisition, decay tracking and the analytic
    survival law; the E12 experiment measures empirical intersection
    probabilities against it. *)

type t = private {
  members : Pid.Set.t;
  acquired : Time.t;
  lifetime : int;  (** ticks the quorum is trusted for *)
}

val acquire :
  membership:Membership.t -> rng:Rng.t -> now:Time.t -> size:int -> lifetime:int -> t option
(** Samples [size] distinct active processes uniformly. [None] when
    fewer than [size] processes are active.
    @raise Invalid_argument if [size <= 0] or [lifetime < 0]. *)

val expired : t -> now:Time.t -> bool
(** The trust window has passed. *)

val survivors : t -> Membership.t -> Pid.Set.t
(** Members still present (joining or active) now. *)

val holds : t -> Membership.t -> threshold:int -> bool
(** At least [threshold] members survive. *)

val intersecting_survivors : t -> t -> Membership.t -> Pid.Set.t
(** Present processes common to both quorums — what a reader's quorum
    still shares with a writer's. *)

val expected_survivors : size:int -> c:float -> elapsed:int -> float
(** The analytic decay law [size * (1 - c)^elapsed]. *)

val recommended_size : n:int -> c:float -> lifetime:int -> int
(** Smallest [q] such that the {e expected} survivor count after
    [lifetime] ticks still reaches a majority of [n]; capped at [n].
    A rule of thumb, not a probabilistic guarantee. *)

val pp : Format.formatter -> t -> unit
