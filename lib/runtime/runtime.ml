open Dds_sim
open Dds_net

type timer = unit -> unit

type 'msg t = {
  now : unit -> Time.t;
  after : who:Pid.t -> int -> (unit -> unit) -> timer;
  send : src:Pid.t -> dst:Pid.t -> 'msg -> unit;
  broadcast : src:Pid.t -> 'msg -> unit;
  attach : Pid.t -> (src:Pid.t -> 'msg -> unit) -> unit;
  detach : Pid.t -> unit;
  events : Event.sink option;
  incr : string -> unit;
}

let of_sim ~sched ~net =
  {
    now = (fun () -> Scheduler.now sched);
    after =
      (fun ~who d f ->
        (* Tags are only worth building under a chooser: the checker
           needs them for POR, plain simulations never look at them. *)
        let tag =
          if Scheduler.choosing sched then
            Some
              { Scheduler.actor = Pid.to_int who; kind = Format.asprintf "timer:%a" Pid.pp who }
          else None
        in
        let tok = Scheduler.schedule_after sched ?tag d f in
        fun () -> Scheduler.cancel sched tok);
    send = (fun ~src ~dst m -> Network.send net ~src ~dst m);
    broadcast = (fun ~src m -> Network.broadcast net ~src m);
    attach = (fun pid h -> Network.attach net pid h);
    detach = (fun pid -> Network.detach net pid);
    events = Network.events net;
    incr =
      (fun name ->
        match Network.metrics net with Some m -> Metrics.incr m name | None -> ());
  }

let now t = t.now ()
let after t ~who d f = t.after ~who d f
let send t ~src ~dst m = t.send ~src ~dst m
let broadcast t ~src m = t.broadcast ~src m
let attach t pid h = t.attach pid h
let detach t pid = t.detach pid
let events t = t.events
let incr t name = t.incr name
