open Dds_sim
open Dds_net

(** The environment a register protocol runs in.

    Every protocol in [lib/core] is a state machine driven by message
    deliveries and timer expiries; the only things it asks of the
    outside world are a clock, one-shot timers, point-to-point send,
    timely broadcast, attach/detach (presence), and two observability
    sinks. A ['msg t] packages exactly those capabilities as a record
    of closures, so the same protocol code runs unchanged over

    - the {e simulator} ({!of_sim}: {!Dds_sim.Scheduler} +
      {!Dds_net.Network} — deterministic, virtual time), and
    - the {e wire} ([Dds_runtime_unix.Node]: a select loop + TCP
      sockets — real time, one process per node).

    The record is deliberately first-order (no functor): a backend is
    one allocation, protocols stay non-functorized modules, and the
    simulator path compiles to the same calls it always made.

    {b Time.} [now]/[after] speak the protocol's tick unit. In the
    simulator a tick is the scheduler's abstract unit; on the wire the
    backend fixes 1 tick = 1 ms, so a protocol configured with
    [delta = 50] means a 50 ms synchrony bound (see DESIGN.md §14 for
    the mapping and its audit implications). *)

type timer = unit -> unit
(** Cancels the timer. Idempotent; cancelling after expiry is a
    no-op. *)

type 'msg t = {
  now : unit -> Time.t;  (** current time, in ticks *)
  after : who:Pid.t -> int -> (unit -> unit) -> timer;
      (** [after ~who d f] runs [f] once, [d] ticks from now. [who] is
          the node the timer acts upon — the simulator backend uses it
          to tag the event for the model checker's partial-order
          reduction; other backends may ignore it. *)
  send : src:Pid.t -> dst:Pid.t -> 'msg -> unit;
      (** Reliable point-to-point send; silently drops when [dst] is
          not present (stale membership is allowed by the model). *)
  broadcast : src:Pid.t -> 'msg -> unit;
      (** Timely broadcast to every process present at broadcast time,
          including the sender. *)
  attach : Pid.t -> (src:Pid.t -> 'msg -> unit) -> unit;
      (** Enter listening mode: deliveries for this pid invoke the
          handler with the clock already at the delivery instant. *)
  detach : Pid.t -> unit;  (** Leave the system; in-flight messages to this pid are dropped. *)
  events : Event.sink option;
      (** Typed-telemetry sink for operation spans, if the backend
          records one. *)
  incr : string -> unit;  (** Bump a protocol-level counter (e.g. ["sync.join.retry"]). *)
}

val of_sim : sched:Scheduler.t -> net:'msg Network.t -> 'msg t
(** The simulator backend: virtual clock from [sched], transport from
    [net], timers as scheduler events (tagged with the owning pid when
    a chooser is installed, so the checker can commute independent
    timers), [events]/[incr] wired to the network's sinks. Building
    one is a single record allocation; protocols driven through it
    behave byte-for-byte as they did when they called the scheduler
    and network directly. *)

(** {1 Call-through helpers} — so protocol code reads
    [Runtime.send t.rt ~src ~dst m] rather than spelling record
    application. *)

val now : 'msg t -> Time.t
val after : 'msg t -> who:Pid.t -> int -> (unit -> unit) -> timer
val send : 'msg t -> src:Pid.t -> dst:Pid.t -> 'msg -> unit
val broadcast : 'msg t -> src:Pid.t -> 'msg -> unit
val attach : 'msg t -> Pid.t -> (src:Pid.t -> 'msg -> unit) -> unit
val detach : 'msg t -> Pid.t -> unit
val events : 'msg t -> Event.sink option
val incr : 'msg t -> string -> unit
