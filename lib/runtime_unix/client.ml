open Dds_net
open Dds_spec

(** Blocking one-shot client for [dds client]: connect, send one
    request frame, wait for the response. Scripting convenience — the
    load generator has its own non-blocking connections.

    Speaks wire v2 by default: the connect handshake sends a versioned
    [Client_hello] and waits for the server's [Hello] ack naming the
    agreed version (the server clamps a request above its own maximum,
    so a future client degrades automatically), and every operation
    carries a key (default 0). [connect ~wire:Wire.v1] instead emits
    byte-identical v1 frames and expects no ack — the escape hatch for
    talking to a pre-v2 server, which can only ever serve key 0. *)

type t = {
  fd : Unix.file_descr;
  df : Wire.deframer;
  mutable next_req : int;
  mutable version : int;  (** negotiated wire version for this conn *)
}

let version t = t.version

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_frame t b =
  let s = Wire.frame b in
  let rec go off =
    if off < String.length s then
      go (off + Unix.write_substring t.fd s off (String.length s - off))
  in
  go 0

let chunk = Bytes.create 65536

let rec wait_frame t =
  match Wire.next_frame t.df with
  | Some payload -> payload
  | None -> (
    match Unix.read t.fd chunk 0 (Bytes.length chunk) with
    | 0 -> failwith "connection closed by node"
    | n ->
      Wire.feed t.df chunk n;
      wait_frame t)

let connect ?(wire = Wire.v2) ~host ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  let t = { fd; df = Wire.deframer (); next_req = 0; version = wire } in
  send_frame t (Frame.buf_client_hello ~version:wire ());
  (* v1 never had an ack; for v2+ the server answers with the agreed
     version before we may issue keyed operations (issuing them
     optimistically against a v1-only server would be misparsed — the
     key bytes would read as the write's data). *)
  if wire > Wire.v1 then begin
    match Frame.decode ~version:wire (wait_frame t) with
    | Frame.Hello { version = agreed; _ } -> t.version <- Stdlib.min wire agreed
    | Frame.Err { reason; _ } ->
      close t;
      failwith (Printf.sprintf "server refused handshake: %s" reason)
    | _ ->
      close t;
      failwith "server sent a non-handshake frame during negotiation"
  end;
  t

let rec wait_resp t req =
  match Frame.decode ~version:t.version (wait_frame t) with
  | Frame.Resp { req = r; value; _ } when r = req -> Ok value
  | Frame.Err { req = r; reason } when r = req || r = Frame.no_req -> Error reason
  | _ -> wait_resp t req

let request t ~key op =
  let req = t.next_req in
  t.next_req <- req + 1;
  if t.version = Wire.v1 && key <> 0 then
    Error "wire v1 cannot address keys (only key 0 exists)"
  else begin
    (match op with
    | `Read -> send_frame t (Frame.buf_read_req ~version:t.version ~req ~key ())
    | `Write data -> send_frame t (Frame.buf_write_req ~version:t.version ~req ~key ~data ()));
    wait_resp t req
  end

let read ?(key = 0) t : (Value.t, string) result = request t ~key `Read
let write ?(key = 0) t data : (Value.t, string) result = request t ~key (`Write data)
