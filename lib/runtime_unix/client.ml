open Dds_net
open Dds_spec

(** Blocking one-shot client for [dds client]: connect, send one
    request frame, wait for the response. Scripting convenience — the
    load generator has its own non-blocking connections. *)

type t = { fd : Unix.file_descr; df : Wire.deframer; mutable next_req : int }

let connect ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  let t = { fd; df = Wire.deframer (); next_req = 0 } in
  let b = Buffer.create 4 in
  Buffer.add_string b (Wire.frame (Frame.buf_client_hello ()));
  let s = Buffer.contents b in
  ignore (Unix.write_substring t.fd s 0 (String.length s));
  t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_frame t b =
  let s = Wire.frame b in
  let rec go off =
    if off < String.length s then
      go (off + Unix.write_substring t.fd s off (String.length s - off))
  in
  go 0

let chunk = Bytes.create 65536

let rec wait_frame t =
  match Wire.next_frame t.df with
  | Some payload -> payload
  | None -> (
    match Unix.read t.fd chunk 0 (Bytes.length chunk) with
    | 0 -> failwith "connection closed by node"
    | n ->
      Wire.feed t.df chunk n;
      wait_frame t)

let rec wait_resp t req =
  match Frame.decode (wait_frame t) with
  | Frame.Resp { req = r; value } when r = req -> Ok value
  | Frame.Err { req = r; reason } when r = req -> Error reason
  | _ -> wait_resp t req

let request t op =
  let req = t.next_req in
  t.next_req <- req + 1;
  (match op with
  | `Read -> send_frame t (Frame.buf_read_req ~req)
  | `Write data -> send_frame t (Frame.buf_write_req ~req ~data));
  wait_resp t req

let read t : (Value.t, string) result = request t `Read
let write t data : (Value.t, string) result = request t (`Write data)
