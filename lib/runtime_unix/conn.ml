open Dds_net

(** One buffered, non-blocking TCP connection on a {!Loop}.

    Reads feed a {!Wire.deframer} and surface complete payloads
    through [on_frame]; writes go straight to the socket while it
    accepts them and spill into an output buffer (with write-interest
    registered on the loop) when it does not — so a slow peer can
    never deadlock two nodes writing to each other. [on_close] fires
    exactly once, for EOF, error, or {!close}. *)

type t = {
  fd : Unix.file_descr;
  loop : Loop.t;
  df : Wire.deframer;
  out : Buffer.t;
  mutable closed : bool;
  mutable on_frame : t -> string -> unit;
  mutable on_close : t -> unit;
}

let chunk = Bytes.create 65536

let close t =
  if not t.closed then begin
    t.closed <- true;
    Loop.unwatch_read t.loop t.fd;
    Loop.unwatch_write t.loop t.fd;
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    t.on_close t
  end

let rec flush_out t =
  if (not t.closed) && Buffer.length t.out > 0 then begin
    let data = Buffer.to_bytes t.out in
    match Unix.write t.fd data 0 (Bytes.length data) with
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
      Loop.watch_write t.loop t.fd (fun () -> flush_out t)
    | exception Unix.Unix_error _ -> close t
    | n ->
      Buffer.clear t.out;
      if n < Bytes.length data then begin
        Buffer.add_subbytes t.out data n (Bytes.length data - n);
        Loop.watch_write t.loop t.fd (fun () -> flush_out t)
      end
      else Loop.unwatch_write t.loop t.fd
  end
  else Loop.unwatch_write t.loop t.fd

let write t s =
  if not t.closed then begin
    Buffer.add_string t.out s;
    flush_out t
  end

let write_frame t b = write t (Wire.frame b)

let on_readable t () =
  if not t.closed then begin
    match Unix.read t.fd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close t
    | 0 -> close t
    | n -> (
      match Wire.feed t.df chunk n with
      | exception Wire.Malformed _ -> close t
      | () ->
        let continue = ref true in
        while !continue && not t.closed do
          match Wire.next_frame t.df with
          | Some payload -> t.on_frame t payload
          | None -> continue := false
        done)
  end

let create ~loop ~fd ~on_frame ~on_close =
  Unix.set_nonblock fd;
  let t = { fd; loop; df = Wire.deframer (); out = Buffer.create 4096; closed = false; on_frame; on_close } in
  Loop.watch_read loop fd (on_readable t);
  t
