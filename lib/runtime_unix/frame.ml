open Dds_net
open Dds_spec

(** Node-level envelope inside each {!Wire} frame.

    The protocol message codec ([put_msg]/[get_msg]) only knows how to
    encode its own constructors; the envelope adds who is speaking and
    why — a peer introducing itself, a stamped protocol message, or a
    client request/response. Decoding is deferred for [Msg]: the
    envelope hands back the raw remainder reader so the node can apply
    its protocol's [get_msg] (the envelope layer stays
    protocol-agnostic).

    The envelope is versioned (see {!Wire.v1}/{!Wire.v2}). [Hello] and
    [Client_hello] are self-describing — a trailing version byte marks
    v2, its absence marks v1 — and negotiate the version for the rest
    of the connection. Every other frame is decoded at the connection's
    negotiated version: v2 adds a key to [Read_req]/[Write_req]/[Resp]
    and a shard id to [Msg]; a v1 frame decodes with key 0 and shard 0,
    which is exactly what a v1 peer means, so old clients keep working
    against a 1-shard server. [Err] is identical in both versions
    ([req = -1] marks a connection-level error such as a version the
    server refuses to speak). *)

type 'r t =
  | Hello of { pid : int; version : int }
      (** outgoing peer link introduces its sender and wire version *)
  | Client_hello of { version : int }
  | Msg of { src : int; lamport : int; shard : int; rest : 'r }
      (** a protocol message, Lamport-stamped at send time; [rest] is
          the still-encoded payload (a {!Wire.reader} on decode) *)
  | Read_req of { req : int; key : int }
  | Write_req of { req : int; key : int; data : int }
  | Resp of { req : int; key : int; value : Value.t }
  | Err of { req : int; reason : string }

(* A connection-level [Err] (version refused, shard not owned) answers
   no particular request; clients must fail every pending op on it. *)
let no_req = -1

let buf_hello ?(version = Wire.v2) pid =
  let b = Buffer.create 16 in
  Wire.put_u8 b 0;
  Wire.put_int b pid;
  if version > Wire.v1 then Wire.put_u8 b version;
  b

let buf_client_hello ?(version = Wire.v2) () =
  let b = Buffer.create 4 in
  Wire.put_u8 b 1;
  if version > Wire.v1 then Wire.put_u8 b version;
  b

(* The caller appends the protocol payload with its own [put_msg]. *)
let buf_msg_header ?(version = Wire.v2) ~src ~lamport ~shard () =
  let b = Buffer.create 64 in
  Wire.put_u8 b 2;
  Wire.put_int b src;
  Wire.put_int b lamport;
  if version > Wire.v1 then Wire.put_int b shard;
  b

let buf_read_req ?(version = Wire.v2) ~req ~key () =
  let b = Buffer.create 24 in
  Wire.put_u8 b 3;
  Wire.put_int b req;
  if version > Wire.v1 then Wire.put_key b key;
  b

let buf_write_req ?(version = Wire.v2) ~req ~key ~data () =
  let b = Buffer.create 32 in
  Wire.put_u8 b 4;
  Wire.put_int b req;
  if version > Wire.v1 then Wire.put_key b key;
  Wire.put_int b data;
  b

let buf_resp ?(version = Wire.v2) ~req ~key value =
  let b = Buffer.create 40 in
  Wire.put_u8 b 5;
  Wire.put_int b req;
  if version > Wire.v1 then Wire.put_key b key;
  Value.put b value;
  b

let buf_err ~req reason =
  let b = Buffer.create 32 in
  Wire.put_u8 b 6;
  Wire.put_int b req;
  Wire.put_string b reason;
  b

(* Hello frames pre-date negotiation, so their version marker is
   positional: v1 ended the payload after the fixed fields, v2 appends
   one version byte. *)
let trailing_version r = if Wire.remaining r > 0 then Wire.get_u8 r else Wire.v1

(* Every branch but [Msg] checks [expect_end]: a frame is exactly one
   message, and with versioned layouts a length mismatch is the first
   symptom of a negotiation bug — better a typed [Malformed] than a
   silently misread field. [Msg] hands its remainder to the protocol
   codec, which runs its own [expect_end] after [get_msg]. *)
let decode ?(version = Wire.v1) payload =
  let keyed = version > Wire.v1 in
  let r = Wire.reader payload in
  let finish frame =
    Wire.expect_end r;
    frame
  in
  match Wire.get_u8 r with
  | 0 ->
    let pid = Wire.get_int r in
    finish (Hello { pid; version = trailing_version r })
  | 1 -> finish (Client_hello { version = trailing_version r })
  | 2 ->
    let src = Wire.get_int r in
    let lamport = Wire.get_int r in
    let shard = if keyed then Wire.get_int r else 0 in
    Msg { src; lamport; shard; rest = r }
  | 3 ->
    let req = Wire.get_int r in
    finish (Read_req { req; key = (if keyed then Wire.get_key r else 0) })
  | 4 ->
    let req = Wire.get_int r in
    let key = if keyed then Wire.get_key r else 0 in
    finish (Write_req { req; key; data = Wire.get_int r })
  | 5 ->
    let req = Wire.get_int r in
    let key = if keyed then Wire.get_key r else 0 in
    finish (Resp { req; key; value = Value.get r })
  | 6 ->
    let req = Wire.get_int r in
    finish (Err { req; reason = Wire.get_string r })
  | t -> raise (Wire.Malformed (Printf.sprintf "envelope tag %d" t))

(* Introspection table for [dds list]: one row per frame kind, with the
   field layout at each version. Kept next to the codec so the two
   cannot drift silently without a reviewer noticing. *)
let catalog =
  [ ("Hello", 0, "pid:int64", "pid:int64 version:u8");
    ("Client_hello", 1, "(empty)", "version:u8");
    ( "Msg",
      2,
      "src:int64 lamport:int64 payload...",
      "src:int64 lamport:int64 shard:int64 payload..." );
    ("Read_req", 3, "req:int64", "req:int64 key:int63");
    ( "Write_req",
      4,
      "req:int64 data:int64",
      "req:int64 key:int63 data:int64" );
    ("Resp", 5, "req:int64 value", "req:int64 key:int63 value");
    ("Err", 6, "req:int64 reason:string", "req:int64 reason:string") ]
