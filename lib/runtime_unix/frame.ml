open Dds_net
open Dds_spec

(** Node-level envelope inside each {!Wire} frame.

    The protocol message codec ([put_msg]/[get_msg]) only knows how to
    encode its own constructors; the envelope adds who is speaking and
    why — a peer introducing itself, a stamped protocol message, or a
    client request/response. Decoding is deferred for [Msg]: the
    envelope hands back the raw remainder reader so the node can apply
    its protocol's [get_msg] (the envelope layer stays
    protocol-agnostic). *)

type 'r t =
  | Hello of { pid : int }  (** outgoing peer link introduces its sender *)
  | Client_hello
  | Msg of { src : int; lamport : int; rest : 'r }
      (** a protocol message, Lamport-stamped at send time; [rest] is
          the still-encoded payload (a {!Wire.reader} on decode) *)
  | Read_req of { req : int }
  | Write_req of { req : int; data : int }
  | Resp of { req : int; value : Value.t }
  | Err of { req : int; reason : string }

let buf_hello pid =
  let b = Buffer.create 16 in
  Wire.put_u8 b 0;
  Wire.put_int b pid;
  b

let buf_client_hello () =
  let b = Buffer.create 4 in
  Wire.put_u8 b 1;
  b

(* The caller appends the protocol payload with its own [put_msg]. *)
let buf_msg_header ~src ~lamport =
  let b = Buffer.create 64 in
  Wire.put_u8 b 2;
  Wire.put_int b src;
  Wire.put_int b lamport;
  b

let buf_read_req ~req =
  let b = Buffer.create 16 in
  Wire.put_u8 b 3;
  Wire.put_int b req;
  b

let buf_write_req ~req ~data =
  let b = Buffer.create 24 in
  Wire.put_u8 b 4;
  Wire.put_int b req;
  Wire.put_int b data;
  b

let buf_resp ~req value =
  let b = Buffer.create 32 in
  Wire.put_u8 b 5;
  Wire.put_int b req;
  Value.put b value;
  b

let buf_err ~req reason =
  let b = Buffer.create 32 in
  Wire.put_u8 b 6;
  Wire.put_int b req;
  Wire.put_string b reason;
  b

let decode payload =
  let r = Wire.reader payload in
  match Wire.get_u8 r with
  | 0 -> Hello { pid = Wire.get_int r }
  | 1 -> Client_hello
  | 2 ->
    let src = Wire.get_int r in
    let lamport = Wire.get_int r in
    Msg { src; lamport; rest = r }
  | 3 -> Read_req { req = Wire.get_int r }
  | 4 ->
    let req = Wire.get_int r in
    Write_req { req; data = Wire.get_int r }
  | 5 ->
    let req = Wire.get_int r in
    Resp { req; value = Value.get r }
  | 6 ->
    let req = Wire.get_int r in
    Err { req; reason = Wire.get_string r }
  | t -> raise (Wire.Malformed (Printf.sprintf "envelope tag %d" t))
