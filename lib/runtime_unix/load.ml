open Dds_sim

(** Closed-loop load generator for [dds load].

    [clients] concurrent connections are spread round-robin over the
    node addresses; each issues one operation, waits for its response,
    and immediately issues the next, for [duration] seconds. Writes
    respect the single-writer regime the protocols' correctness
    arguments assume: every write goes to node 0 (which serializes
    concurrent client writes through its operation queue), reads go to
    the connection's assigned node. Latencies land in microsecond
    histograms and flow out through the same {!Dds_sim.Histogram} /
    {!Dds_sim.Metrics} pipeline the simulator's latency tables use. *)

type report = {
  ops : int;
  reads : int;
  writes : int;
  errors : int;
  elapsed_s : float;
  read_lat_us : Histogram.t;
  write_lat_us : Histogram.t;
}

let ops_per_s r = if r.elapsed_s > 0. then float_of_int r.ops /. r.elapsed_s else 0.

(* 50 us .. ~1.6 s in x2 buckets — loopback round trips sit low in
   this range, a congested mesh stretches to the top. *)
let lat_edges = Array.init 15 (fun i -> 50. *. (2. ** float_of_int i))

type conn_state = {
  conn : Conn.t;
  node : int;  (** the node this connection reads from *)
  mutable req : int;
  mutable issued_at : float;  (** ms, of the op in flight *)
  mutable writing : bool;  (** the op in flight is a write *)
}

type t = {
  loop : Loop.t;
  addrs : (string * int) array;
  write_ratio : float;
  deadline_ms : float;
  rng : Rng.t;
  mutable live : int;  (** connections still draining *)
  mutable ops : int;
  mutable reads : int;
  mutable writes : int;
  mutable errors : int;
  mutable next_datum : int;
  read_lat : Histogram.t;
  write_lat : Histogram.t;
}

let issue t st =
  if Loop.now_ms () >= t.deadline_ms then begin
    t.live <- t.live - 1;
    Conn.close st.conn;
    if t.live = 0 then Loop.stop t.loop
  end
  else begin
    st.req <- st.req + 1;
    st.issued_at <- Loop.now_ms ();
    let write = Rng.float t.rng 1.0 < t.write_ratio in
    st.writing <- write;
    if write then begin
      t.next_datum <- t.next_datum + 1;
      (* Single-writer regime: all writes funnel through node 0. This
         connection may be assigned elsewhere for reads, so writes ride
         a dedicated frame to node 0's address via the same socket only
         when assigned there — otherwise fall back to a read. *)
      if st.node = 0 then Conn.write_frame st.conn (Frame.buf_write_req ~req:st.req ~data:t.next_datum)
      else begin
        st.writing <- false;
        Conn.write_frame st.conn (Frame.buf_read_req ~req:st.req)
      end
    end
    else Conn.write_frame st.conn (Frame.buf_read_req ~req:st.req)
  end

let on_frame t st payload =
  match Frame.decode payload with
  | Frame.Resp { req; value = _ } when req = st.req ->
    let lat_us = (Loop.now_ms () -. st.issued_at) *. 1000. in
    t.ops <- t.ops + 1;
    if st.writing then begin
      t.writes <- t.writes + 1;
      Histogram.add t.write_lat lat_us
    end
    else begin
      t.reads <- t.reads + 1;
      Histogram.add t.read_lat lat_us
    end;
    issue t st
  | Frame.Err { req; reason = _ } when req = st.req ->
    t.errors <- t.errors + 1;
    issue t st
  | _ -> ()

let connect_one t i =
  (* Writes only happen on node 0, so bias connection assignment: the
     requested write_ratio share of connections sit on node 0, the
     rest round-robin over the whole mesh for reads. *)
  let n = Array.length t.addrs in
  let node =
    if t.write_ratio > 0. && i mod (Stdlib.max 1 (int_of_float (1. /. t.write_ratio))) = 0
    then 0
    else i mod n
  in
  let host, port = t.addrs.(node) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port)) with
  | exception Unix.Unix_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    None
  | () ->
    let st_ref = ref None in
    let conn =
      Conn.create ~loop:t.loop ~fd
        ~on_frame:(fun _ payload ->
          match !st_ref with Some st -> on_frame t st payload | None -> ())
        ~on_close:(fun _ ->
          match !st_ref with
          | Some st when st.issued_at >= 0. ->
            (* Node died mid-op; count the connection out. *)
            t.live <- t.live - 1;
            if t.live = 0 then Loop.stop t.loop
          | _ -> ())
    in
    let st = { conn; node; req = -1; issued_at = -1.; writing = false } in
    st_ref := Some st;
    Conn.write_frame conn (Frame.buf_client_hello ());
    Some st

let run ~addrs ~clients ~duration_s ~write_ratio ~seed =
  let loop = Loop.create () in
  let started = Loop.now_ms () in
  let t =
    {
      loop;
      addrs;
      write_ratio;
      deadline_ms = started +. (duration_s *. 1000.);
      rng = Rng.create ~seed;
      live = 0;
      ops = 0;
      reads = 0;
      writes = 0;
      errors = 0;
      next_datum = 1_000_000;  (* distinct from anything dds client writes by hand *)
      read_lat = Histogram.create ~edges:lat_edges;
      write_lat = Histogram.create ~edges:lat_edges;
    }
  in
  let states = List.filter_map (connect_one t) (List.init clients (fun i -> i)) in
  t.live <- List.length states;
  if t.live = 0 then failwith "load: no connection could be established";
  List.iter (fun st -> issue t st) states;
  Loop.run loop;
  {
    ops = t.ops;
    reads = t.reads;
    writes = t.writes;
    errors = t.errors;
    elapsed_s = (Loop.now_ms () -. started) /. 1000.;
    read_lat_us = t.read_lat;
    write_lat_us = t.write_lat;
  }

let metrics_of_report r =
  let m = Metrics.create () in
  let fill name src =
    (* Rebuild the latencies inside a Metrics.t histogram so the
       snapshot path (Export.metrics_to_json) renders them like every
       simulator latency; bucket midpoints stand in for the raw
       samples, which percentile extraction cannot tell apart. *)
    let dst = Metrics.histogram m name ~edges:lat_edges in
    Array.iteri
      (fun i count ->
        let v =
          if i = 0 then lat_edges.(0) /. 2.
          else lat_edges.(Stdlib.min (i - 1) (Array.length lat_edges - 1))
        in
        for _ = 1 to count do
          Histogram.add dst v
        done)
      (Histogram.counts src)
  in
  fill "latency.read_us" r.read_lat_us;
  fill "latency.write_us" r.write_lat_us;
  Metrics.add m "load.ops" r.ops;
  Metrics.add m "load.reads" r.reads;
  Metrics.add m "load.writes" r.writes;
  Metrics.add m "load.errors" r.errors;
  Metrics.set_gauge m "load.ops_per_s" (ops_per_s r);
  m
