open Dds_sim

(** Closed-loop load generator for [dds load].

    [clients] concurrent clients each issue one operation, wait for its
    response, and immediately issue the next, for [duration] seconds.
    Where each operation lands is the routing policy:

    - [Fixed] (the default, the historical behavior): each client sits
      on one node; writes respect the single-writer regime the
      protocols' correctness arguments assume, so only the clients
      assigned to node 0 write (node 0 serializes concurrent client
      writes through its operation queue) and everyone else reads from
      their own node. Every op addresses key 0.
    - [Round_robin]: each client holds one connection per node and
      walks the mesh, op [k] to node [k mod n] — reads and writes
      alike, a uniform spread that deliberately exercises the
      multi-writer path. Every op addresses key 0.
    - [Key_hash]: real keyed traffic against the sharded store. Each
      op draws a key from a zipfian popularity curve ({!Dds_workload.Skew},
      exponent [skew] over [keys] keys), carries it on the wire
      (protocol v2), and lands on a node of the key's shard under
      [placement] — reads on any owner, writes on the shard's
      designated writer, preserving the per-shard single-writer
      regime. Latencies are additionally split into hot (top 1% of
      ranks) and cold key classes, so the report shows what skew does
      to the head of the popularity curve vs the tail.

    Latencies land in microsecond histograms and flow out through the
    same {!Dds_sim.Histogram} / {!Dds_sim.Metrics} pipeline the
    simulator's latency tables use. *)

type route = Fixed | Round_robin | Key_hash

let route_to_string = function
  | Fixed -> "fixed"
  | Round_robin -> "round-robin"
  | Key_hash -> "key-hash"

type report = {
  ops : int;
  reads : int;
  writes : int;
  errors : int;
  elapsed_s : float;
  read_lat_us : Histogram.t;
  write_lat_us : Histogram.t;
  hot_lat_us : Histogram.t;  (** ops on hot keys; empty off [Key_hash] *)
  cold_lat_us : Histogram.t;  (** ops on cold keys; empty off [Key_hash] *)
  hot_keys : int;  (** size of the hot class (0 off [Key_hash]) *)
}

let ops_per_s r = if r.elapsed_s > 0. then float_of_int r.ops /. r.elapsed_s else 0.

(* 50 us .. ~1.6 s in x2 buckets — loopback round trips sit low in
   this range, a congested mesh stretches to the top. *)
let lat_edges = Array.init 15 (fun i -> 50. *. (2. ** float_of_int i))

(* The default synthetic key space for Key_hash; overridable with
   ~keys. Any span well above the shard count spreads fine. *)
let default_keys = 4096

type client = {
  conns : Conn.t option array;  (** index = node; [Fixed] fills only [home] *)
  home : int;  (** this client's node under [Fixed] *)
  mutable req : int;
  mutable issued_at : float;  (** ms, of the op in flight *)
  mutable writing : bool;  (** the op in flight is a write *)
  mutable hot : bool;  (** the op in flight addresses a hot key *)
  mutable dead : bool;  (** counted out of [t.live] already *)
}

type t = {
  loop : Loop.t;
  addrs : (string * int) array;
  placement : Placement.t;
  sampler : Dds_workload.Skew.sampler option;  (** [Some] iff Key_hash *)
  write_ratio : float;
  route : route;
  deadline_ms : float;
  rng : Rng.t;
  mutable live : int;  (** clients still draining *)
  mutable ops : int;
  mutable reads : int;
  mutable writes : int;
  mutable errors : int;
  mutable next_datum : int;
  read_lat : Histogram.t;
  write_lat : Histogram.t;
  hot_lat : Histogram.t;
  cold_lat : Histogram.t;
}

let count_out t st =
  if not st.dead then begin
    st.dead <- true;
    t.live <- t.live - 1;
    if t.live = 0 then Loop.stop t.loop
  end

let issue t st =
  if Loop.now_ms () >= t.deadline_ms then begin
    (* Mark dead before closing: each close fires on_close, which must
       not count this client out a second time. *)
    count_out t st;
    Array.iter (function Some c -> Conn.close c | None -> ()) st.conns
  end
  else begin
    st.req <- st.req + 1;
    st.issued_at <- Loop.now_ms ();
    let n = Array.length t.addrs in
    let want_write = Rng.float t.rng 1.0 < t.write_ratio in
    let key, target, write, hot =
      match t.route with
      | Fixed ->
        (* Fixed keeps the single-writer funnel: only node-0 clients
           write, everyone else falls back to a read (the historical
           behavior). *)
        (0, st.home, want_write && st.home = 0, false)
      | Round_robin -> (0, st.req mod n, want_write, false)
      | Key_hash ->
        let sm = Option.get t.sampler in
        let key, rank = Dds_workload.Skew.draw sm in
        let shard = Placement.route t.placement ~key in
        let owners = Placement.owners t.placement shard in
        (* Writes funnel to the shard's designated writer; reads land
           on a random owner — any replica of the shard serves them. *)
        let target =
          if want_write then Placement.writer t.placement shard
          else List.nth owners (Rng.int t.rng (List.length owners))
        in
        (key, target, want_write, rank < Dds_workload.Skew.hot_ranks sm)
    in
    let conn =
      match st.conns.(target) with
      | Some _ as c -> c
      | None ->
        (* That node was unreachable at start (or died): any live
           connection still measures a round trip. *)
        Array.fold_left
          (fun acc c -> match acc with Some _ -> acc | None -> c)
          None st.conns
    in
    match conn with
    | None -> count_out t st
    | Some conn ->
      st.writing <- write;
      st.hot <- hot;
      if write then begin
        t.next_datum <- t.next_datum + 1;
        Conn.write_frame conn (Frame.buf_write_req ~req:st.req ~key ~data:t.next_datum ())
      end
      else Conn.write_frame conn (Frame.buf_read_req ~req:st.req ~key ())
  end

let on_frame t st payload =
  match Frame.decode ~version:Dds_net.Wire.v2 payload with
  | Frame.Resp { req; _ } when req = st.req ->
    let lat_us = (Loop.now_ms () -. st.issued_at) *. 1000. in
    t.ops <- t.ops + 1;
    if st.writing then begin
      t.writes <- t.writes + 1;
      Histogram.add t.write_lat lat_us
    end
    else begin
      t.reads <- t.reads + 1;
      Histogram.add t.read_lat lat_us
    end;
    if t.route = Key_hash then
      Histogram.add (if st.hot then t.hot_lat else t.cold_lat) lat_us;
    issue t st
  | Frame.Err { req; reason = _ } when req = st.req ->
    t.errors <- t.errors + 1;
    issue t st
  | _ -> ()

let dial t node =
  let host, port = t.addrs.(node) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port)) with
  | exception Unix.Unix_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    None
  | () -> Some fd

let connect_client t i =
  let n = Array.length t.addrs in
  let home =
    match t.route with
    | Fixed ->
      (* Writes only happen on node 0 under Fixed, so bias assignment:
         the requested write_ratio share of clients sit on node 0, the
         rest round-robin over the whole mesh for reads. *)
      if t.write_ratio > 0. && i mod (Stdlib.max 1 (int_of_float (1. /. t.write_ratio))) = 0
      then 0
      else i mod n
    | Round_robin | Key_hash -> i mod n
  in
  let st_ref = ref None in
  let mk node =
    match dial t node with
    | None -> None
    | Some fd ->
      let conn =
        Conn.create ~loop:t.loop ~fd
          ~on_frame:(fun _ payload ->
            match !st_ref with Some st -> on_frame t st payload | None -> ())
          ~on_close:(fun _ ->
            match !st_ref with
            | Some st when st.issued_at >= 0. ->
              (* Node died mid-op; count the client out. *)
              count_out t st
            | _ -> ())
      in
      (* v2 hello: the server acks with its Hello, which [on_frame]
         skips (it only matches Resp/Err on the op in flight). The
         pipelined first op is safe — the server fixes the connection's
         version on the hello before decoding anything later. *)
      Conn.write_frame conn (Frame.buf_client_hello ());
      Some conn
  in
  let conns = Array.make n None in
  (match t.route with
  | Fixed -> conns.(home) <- mk home
  | Round_robin | Key_hash ->
    for node = 0 to n - 1 do
      conns.(node) <- mk node
    done);
  if Array.for_all Option.is_none conns then None
  else begin
    let st =
      { conns; home; req = -1; issued_at = -1.; writing = false; hot = false; dead = false }
    in
    st_ref := Some st;
    Some st
  end

let run ?placement ?(keys = default_keys) ?(skew = 0.0) ~addrs ~clients ~duration_s
    ~write_ratio ~route ~seed () =
  let n = Array.length addrs in
  let placement =
    match placement with
    | Some p -> p
    (* Default for keyed routing: as many shards as nodes, everyone
       owning everything — the spread [Shard.route ~shards:n] gave
       before placements existed. *)
    | None -> Placement.all ~nodes:n ~shards:n
  in
  let loop = Loop.create () in
  let started = Loop.now_ms () in
  let rng = Rng.create ~seed in
  let t =
    {
      loop;
      addrs;
      placement;
      sampler =
        (match route with
        | Key_hash -> Some (Dds_workload.Skew.sampler ~rng ~keys ~s:skew)
        | Fixed | Round_robin -> None);
      write_ratio;
      route;
      deadline_ms = started +. (duration_s *. 1000.);
      rng;
      live = 0;
      ops = 0;
      reads = 0;
      writes = 0;
      errors = 0;
      next_datum = 1_000_000;  (* distinct from anything dds client writes by hand *)
      read_lat = Histogram.create ~edges:lat_edges;
      write_lat = Histogram.create ~edges:lat_edges;
      hot_lat = Histogram.create ~edges:lat_edges;
      cold_lat = Histogram.create ~edges:lat_edges;
    }
  in
  let states = List.filter_map (connect_client t) (List.init clients (fun i -> i)) in
  t.live <- List.length states;
  if t.live = 0 then failwith "load: no connection could be established";
  List.iter (fun st -> issue t st) states;
  Loop.run loop;
  {
    ops = t.ops;
    reads = t.reads;
    writes = t.writes;
    errors = t.errors;
    elapsed_s = (Loop.now_ms () -. started) /. 1000.;
    read_lat_us = t.read_lat;
    write_lat_us = t.write_lat;
    hot_lat_us = t.hot_lat;
    cold_lat_us = t.cold_lat;
    hot_keys =
      (match t.sampler with Some sm -> Dds_workload.Skew.hot_ranks sm | None -> 0);
  }

let metrics_of_report r =
  let m = Metrics.create () in
  let fill name src =
    (* Rebuild the latencies inside a Metrics.t histogram so the
       snapshot path (Export.metrics_to_json) renders them like every
       simulator latency; bucket midpoints stand in for the raw
       samples, which percentile extraction cannot tell apart. *)
    let dst = Metrics.histogram m name ~edges:lat_edges in
    Array.iteri
      (fun i count ->
        let v =
          if i = 0 then lat_edges.(0) /. 2.
          else lat_edges.(Stdlib.min (i - 1) (Array.length lat_edges - 1))
        in
        for _ = 1 to count do
          Histogram.add dst v
        done)
      (Histogram.counts src)
  in
  fill "latency.read_us" r.read_lat_us;
  fill "latency.write_us" r.write_lat_us;
  if r.hot_keys > 0 then begin
    fill "latency.hot_us" r.hot_lat_us;
    fill "latency.cold_us" r.cold_lat_us
  end;
  Metrics.add m "load.ops" r.ops;
  Metrics.add m "load.reads" r.reads;
  Metrics.add m "load.writes" r.writes;
  Metrics.add m "load.errors" r.errors;
  Metrics.set_gauge m "load.ops_per_s" (ops_per_s r);
  m
