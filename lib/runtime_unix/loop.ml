type timer = {
  deadline : float;  (* absolute ms *)
  seq : int;
  f : unit -> unit;
  mutable alive : bool;
}

(* Binary min-heap on (deadline, seq) — same tie-break as the
   simulator scheduler, so two timers set in the same millisecond fire
   in creation order. *)
type t = {
  mutable heap : timer array;
  mutable heap_size : int;
  mutable next_seq : int;
  mutable readers : (Unix.file_descr * (unit -> unit)) list;
  mutable writers : (Unix.file_descr * (unit -> unit)) list;
  mutable stop : bool;
}

let now_ms () = Unix.gettimeofday () *. 1000.

let dummy = { deadline = 0.; seq = 0; f = ignore; alive = false }

let create () =
  {
    heap = Array.make 64 dummy;
    heap_size = 0;
    next_seq = 0;
    readers = [];
    writers = [];
    stop = false;
  }

let before a b = a.deadline < b.deadline || (a.deadline = b.deadline && a.seq < b.seq)

let push t tm =
  if t.heap_size = Array.length t.heap then begin
    let bigger = Array.make (2 * Array.length t.heap) dummy in
    Array.blit t.heap 0 bigger 0 t.heap_size;
    t.heap <- bigger
  end;
  let i = ref t.heap_size in
  t.heap_size <- t.heap_size + 1;
  t.heap.(!i) <- tm;
  while !i > 0 && before t.heap.(!i) t.heap.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = t.heap.(p) in
    t.heap.(p) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := p
  done

let pop t =
  let top = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  t.heap.(0) <- t.heap.(t.heap_size);
  t.heap.(t.heap_size) <- dummy;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.heap_size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.heap_size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
  done;
  top

let after_ms t d f =
  let d = Stdlib.max 0 d in
  let tm = { deadline = now_ms () +. float_of_int d; seq = t.next_seq; f; alive = true } in
  t.next_seq <- t.next_seq + 1;
  push t tm;
  fun () -> tm.alive <- false

let watch_read t fd cb = t.readers <- (fd, cb) :: List.remove_assoc fd t.readers
let watch_write t fd cb = t.writers <- (fd, cb) :: List.remove_assoc fd t.writers
let unwatch_read t fd = t.readers <- List.remove_assoc fd t.readers
let unwatch_write t fd = t.writers <- List.remove_assoc fd t.writers

let stop t = t.stop <- true
let stopped t = t.stop

let fire_due t =
  let continue = ref true in
  while !continue && t.heap_size > 0 do
    let top = t.heap.(0) in
    if not top.alive then ignore (pop t)
    else if top.deadline <= now_ms () then begin
      ignore (pop t);
      top.f ()
    end
    else continue := false
  done

let next_deadline t =
  let rec skim () =
    if t.heap_size = 0 then None
    else if not t.heap.(0).alive then begin
      ignore (pop t);
      skim ()
    end
    else Some t.heap.(0).deadline
  in
  skim ()

let iterate t =
  fire_due t;
  if not t.stop then begin
    let timeout =
      match next_deadline t with
      | Some d -> Stdlib.min 0.25 (Stdlib.max 0. ((d -. now_ms ()) /. 1000.))
      | None -> 0.25
    in
    let rfds = List.map fst t.readers and wfds = List.map fst t.writers in
    match Unix.select rfds wfds [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready_r, ready_w, _ ->
      (* Look the callback up at fire time: an earlier callback in the
         same batch may have closed and unwatched a later fd. *)
      List.iter
        (fun fd -> match List.assoc_opt fd t.readers with Some cb -> cb () | None -> ())
        ready_r;
      List.iter
        (fun fd -> match List.assoc_opt fd t.writers with Some cb -> cb () | None -> ())
        ready_w
  end

let run t =
  t.stop <- false;
  while not t.stop do
    iterate t
  done

let run_while t pred =
  t.stop <- false;
  while (not t.stop) && pred () do
    iterate t
  done
