(** A select(2) event loop with a timer wheel.

    One loop drives everything a process does: socket readability and
    writability callbacks plus one-shot timers ordered by deadline.
    Multiple nodes and load clients can share a single loop (the
    in-process tests and the bench run a whole 3-node deployment plus
    its clients on one), or a [dds serve] process runs one node on its
    own loop.

    The clock is [Unix.gettimeofday] in milliseconds — the only clock
    the vendored OCaml [unix] library exposes; a monotonic source
    would be preferable and the abstraction confines the substitution
    to {!now_ms} if one becomes available. Timer deadlines are
    absolute ms; firing order is (deadline, creation seq), matching
    the simulator scheduler's FIFO tie-break. *)

type t

val create : unit -> t

val now_ms : unit -> float
(** Wall-clock milliseconds (Unix epoch). *)

val watch_read : t -> Unix.file_descr -> (unit -> unit) -> unit
(** [watch_read t fd cb] invokes [cb] whenever [fd] selects readable.
    Re-registering an fd replaces its callback. *)

val watch_write : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Write-interest, used while a connection has buffered output;
    removed with {!unwatch_write} once drained. *)

val unwatch_read : t -> Unix.file_descr -> unit
val unwatch_write : t -> Unix.file_descr -> unit

val after_ms : t -> int -> (unit -> unit) -> unit -> unit
(** [after_ms t d f] schedules [f] in [d] ms (clamped to [>= 0]) and
    returns its cancel thunk (idempotent). *)

val stop : t -> unit
(** Makes {!run} return after the current iteration. *)

val stopped : t -> bool

val run : t -> unit
(** Dispatches until {!stop}: fires due timers, then selects on the
    watched fds with a timeout bounded by the next deadline (250 ms
    cap so [stop] from a signal handler is honoured promptly).
    [EINTR] retries. *)

val run_while : t -> (unit -> bool) -> unit
(** Like {!run} but also returns once the predicate turns false —
    what drives in-process tests ("run until these ops finished"). *)
