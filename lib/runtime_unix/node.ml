(** One live register node: the v1 single-register face of {!Store}.

    Historically this module {e was} the TCP runtime; the wire-v2
    keyed redesign moved the mesh, negotiation and per-shard protocol
    hosting into {!Store}, and [Node] remains as the 1-shard special
    case — same config surface, same wire behavior as the original
    runtime (a 1-shard store writes untagged traces, speaks to v1
    clients, and uses the [pid × 10⁶] span bases, all of which
    {!Store} degenerates to at [shards = 1]). Existing deployments,
    tests and benches keep working unchanged; keyed deployments use
    {!Store} directly. *)

let default_epoch_ms = Store.default_epoch_ms

type config = {
  self : int;  (** index into [addrs] = this node's pid *)
  addrs : (string * int) array;  (** the whole mesh, index = pid *)
  join : bool;  (** enter via the protocol's join instead of founding *)
  initial_value : int;  (** founding members' initial register datum *)
  epoch_ms : float;  (** shared time origin (unix ms) *)
  events_enabled : bool;
  trace_path : string option;  (** stream events to this JSONL file *)
  listen_fd : Unix.file_descr option;
      (** pre-bound listening socket (in-process tests use ephemeral
          ports and need the port known before nodes dial each other) *)
}

let default_config ~self ~addrs =
  {
    self;
    addrs;
    join = false;
    initial_value = 0;
    epoch_ms = default_epoch_ms ();
    events_enabled = true;
    trace_path = None;
    listen_fd = None;
  }

let store_config cfg =
  {
    Store.self = cfg.self;
    addrs = cfg.addrs;
    placement = Placement.all ~nodes:(Array.length cfg.addrs) ~shards:1;
    join = cfg.join;
    initial_value = cfg.initial_value;
    epoch_ms = cfg.epoch_ms;
    events_enabled = cfg.events_enabled;
    trace_path = cfg.trace_path;
    listen_fd = cfg.listen_fd;
  }

module Make (P : Dds_core.Register_intf.PROTOCOL) = struct
  module S = Store.Make (P)

  type t = S.t

  let create ~loop cfg params = S.create ~loop (store_config cfg) (fun _shard -> params)
  let shutdown = S.shutdown
  let metrics = S.metrics
  let pid = S.pid
  let sink t = S.sink t 0
  let node t = S.node t 0
  let active t = S.active t 0
end
