open Dds_sim
open Dds_net
open Dds_runtime

(** One live register node: a protocol state machine from [lib/core]
    run over TCP instead of the simulator.

    The mesh is total and directional: node [i] dials an {e outgoing}
    link to every other address in the mesh and uses it exclusively
    for sending; everything it receives arrives on links its peers
    dialed to it (or on client connections). An outgoing link opens
    with a [Hello] naming the dialer, so the acceptor knows which pid
    is speaking before the first protocol message.

    Presence mirrors the simulator's attachment rule: a peer is
    "attached" while our outgoing link to it is connected — sends to a
    disconnected peer drop silently ([net.dropped]), exactly as the
    simulator drops sends to detached pids. Crash-stop is process
    exit: the dead peer's links error out, every copy in flight to it
    is gone, and the survivors' fault plans need no coordination.
    Dialing retries every 250 ms, which also absorbs staggered process
    start-up at deployment time.

    {b Time and telemetry.} 1 simulator tick = 1 ms: [delta] given to
    the protocol params is a bound in milliseconds, timers run on the
    shared {!Loop}, and every event is stamped with
    [ms since the configured epoch] — all nodes of one deployment must
    share the epoch (default: today's midnight UTC) so their traces
    merge on one time line. Each node Lamport-stamps its sends and
    applies the max(local,sent)+1 receive rule, emitting the same
    [Send]/[Deliver]/[Drop] events as {!Dds_net.Network.transmit};
    span ids are offset by [pid * 1_000_000] per node so a merged
    trace still has globally unique spans. The result: [dds audit] and
    [dds explain] run unchanged on wire traces. *)

let default_epoch_ms () =
  (* Midnight UTC today: processes of one deployment started the same
     day agree on it without coordination; cross-midnight deployments
     pass --epoch explicitly. *)
  let t = Unix.gettimeofday () in
  let tm = Unix.gmtime t in
  let midnight, _ = Unix.mktime { tm with tm_hour = 0; tm_min = 0; tm_sec = 0 } in
  (* mktime interprets in local time; correct by the difference between
     gmtime and localtime of the same instant. *)
  let local, _ = Unix.mktime (Unix.localtime t) in
  let gm_as_local, _ = Unix.mktime (Unix.gmtime t) in
  (midnight -. (gm_as_local -. local)) *. 1000.

type config = {
  self : int;  (** index into [addrs] = this node's pid *)
  addrs : (string * int) array;  (** the whole mesh, index = pid *)
  join : bool;  (** enter via the protocol's join instead of founding *)
  initial_value : int;  (** founding members' initial register datum *)
  epoch_ms : float;  (** shared time origin (unix ms) *)
  events_enabled : bool;
  trace_path : string option;  (** stream events to this JSONL file *)
  listen_fd : Unix.file_descr option;
      (** pre-bound listening socket (in-process tests use ephemeral
          ports and need the port known before nodes dial each other) *)
}

let default_config ~self ~addrs =
  {
    self;
    addrs;
    join = false;
    initial_value = 0;
    epoch_ms = default_epoch_ms ();
    events_enabled = true;
    trace_path = None;
    listen_fd = None;
  }

module Make (P : Dds_core.Register_intf.PROTOCOL) = struct
  type link = {
    peer : int;
    mutable conn : Conn.t option;  (** established, hello sent *)
    mutable dialing : bool;
  }

  type client_op = Do_read | Do_write of int

  type t = {
    cfg : config;
    loop : Loop.t;
    pid : Pid.t;
    sink : Event.sink;
    metrics : Metrics.t;
    mutable lamport : int;
    links : link array;  (** outgoing, index = peer pid; [self] unused *)
    mutable listen : Unix.file_descr option;
    mutable handler : (src:Pid.t -> P.msg -> unit) option;
    mutable node : P.node option;
    mutable left : bool;
    queue : (Conn.t * int * client_op) Queue.t;
    mutable op_busy : bool;
    mutable trace_chan : out_channel option;
    mutable stop_flush : unit -> unit;
  }

  let pid t = t.pid
  let sink t = t.sink
  let metrics t = t.metrics
  let node t = match t.node with Some n -> n | None -> assert false
  let active t = match t.node with Some n -> P.is_active n | None -> false

  (* --- clock ------------------------------------------------------- *)

  let now t =
    let ms = int_of_float (Loop.now_ms () -. t.cfg.epoch_ms) in
    Time.of_int (Stdlib.max 0 ms)

  let emit t ev = if Event.enabled t.sink then Event.emit t.sink ~at:(now t) ev

  let tick_send t =
    t.lamport <- t.lamport + 1;
    t.lamport

  let tick_recv t ~sent =
    t.lamport <- Stdlib.max t.lamport sent + 1;
    t.lamport

  (* --- transport --------------------------------------------------- *)

  let self_i t = t.cfg.self

  let announce t ~bcast ~dst msg =
    Metrics.incr t.metrics "net.transmit";
    let lc = if Event.enabled t.sink then tick_send t else 0 in
    emit t
      (Event.Send
         { src = self_i t; dst; kind = P.msg_kind msg; broadcast = bcast; lamport = lc });
    lc

  (* A copy to ourselves: broadcasts include the sender, and the sync
     protocol's joiner answers its own INQUIRY queue through this
     path. Delivery is deferred to the next loop turn so a handler
     never re-enters itself — the simulator's >= 1 tick delay gives
     the same guarantee there. *)
  let after_ms_ignore loop d f = ignore (Loop.after_ms loop d f : unit -> unit)

  let deliver_local t ~sent_lc msg =
    after_ms_ignore t.loop 0 (fun () ->
           match t.handler with
           | Some h when not t.left ->
             Metrics.incr t.metrics "net.delivered";
             let recv_lc = if Event.enabled t.sink then tick_recv t ~sent:sent_lc else 0 in
             emit t
               (Event.Deliver
                  {
                    src = self_i t;
                    dst = self_i t;
                    kind = P.msg_kind msg;
                    lamport = recv_lc;
                    sent = sent_lc;
                  });
             h ~src:t.pid msg
           | Some _ | None ->
             Metrics.incr t.metrics "net.dropped";
             emit t
               (Event.Drop
                  { src = self_i t; dst = self_i t; kind = P.msg_kind msg; reason = Event.Departed }))

  let link_ready t peer =
    peer <> self_i t
    && match t.links.(peer).conn with Some c -> not c.Conn.closed | None -> false

  let transmit t ~bcast dst msg =
    if dst = self_i t then begin
      let lc = announce t ~bcast ~dst msg in
      deliver_local t ~sent_lc:lc msg
    end
    else
      match t.links.(dst).conn with
      | Some conn when not conn.Conn.closed ->
        let lc = announce t ~bcast ~dst msg in
        let b = Frame.buf_msg_header ~src:(self_i t) ~lamport:lc in
        P.put_msg b msg;
        Conn.write_frame conn b
      | Some _ | None -> Metrics.incr t.metrics "net.dropped"

  let rt_send t ~src:_ ~dst msg =
    let dst = Pid.to_int dst in
    let attached = (dst = self_i t && t.handler <> None) || link_ready t dst in
    if attached then begin
      Metrics.incr t.metrics "net.sent";
      transmit t ~bcast:false dst msg
    end
    else Metrics.incr t.metrics "net.dropped"

  let rt_broadcast t ~src:_ msg =
    Metrics.incr t.metrics "net.broadcast";
    (* Present set = ourselves plus every peer our outgoing link
       reaches, in pid order — the wire analogue of the simulator's
       sorted attached snapshot. *)
    for dst = 0 to Array.length t.cfg.addrs - 1 do
      if (dst = self_i t && t.handler <> None) || link_ready t dst then
        transmit t ~bcast:true dst msg
    done

  let runtime t : P.msg Runtime.t =
    {
      Runtime.now = (fun () -> now t);
      after = (fun ~who:_ d f -> Loop.after_ms t.loop d f);
      send = (fun ~src ~dst m -> rt_send t ~src ~dst m);
      broadcast = (fun ~src m -> rt_broadcast t ~src m);
      attach =
        (fun pid h ->
          if not (Pid.equal pid t.pid) then invalid_arg "Node runtime: foreign attach";
          t.handler <- Some h);
      detach =
        (fun pid -> if Pid.equal pid t.pid then begin t.handler <- None; t.left <- true end);
      events = Some t.sink;
      incr = (fun name -> Metrics.incr t.metrics name);
    }

  (* --- incoming frames --------------------------------------------- *)

  let respond t conn req value =
    ignore t;
    Conn.write_frame conn (Frame.buf_resp ~req value)

  let rec pump t =
    if (not t.op_busy) && not (Queue.is_empty t.queue) then
      match t.node with
      | Some node when P.is_active node && not (P.busy node) -> (
        let conn, req, op = Queue.pop t.queue in
        t.op_busy <- true;
        let k value =
          t.op_busy <- false;
          respond t conn req value;
          pump t
        in
        match op with
        | Do_read -> P.read node ~k
        | Do_write data -> P.write node data ~k)
      | Some _ | None -> ()

  let on_peer_msg t ~src ~lamport rest =
    match P.get_msg rest with
    | exception (Wire.Truncated | Wire.Malformed _) ->
      Metrics.incr t.metrics "net.malformed"
    | msg -> (
      Wire.expect_end rest;
      match t.handler with
      | Some h when not t.left ->
        Metrics.incr t.metrics "net.delivered";
        let recv_lc = if Event.enabled t.sink then tick_recv t ~sent:lamport else 0 in
        emit t
          (Event.Deliver
             { src; dst = self_i t; kind = P.msg_kind msg; lamport = recv_lc; sent = lamport });
        h ~src:(Pid.of_int src) msg;
        pump t
      | Some _ | None ->
        Metrics.incr t.metrics "net.dropped";
        emit t
          (Event.Drop { src; dst = self_i t; kind = P.msg_kind msg; reason = Event.Departed }))

  let on_incoming_frame t conn payload =
    match Frame.decode payload with
    | exception (Wire.Truncated | Wire.Malformed _) ->
      Metrics.incr t.metrics "net.malformed";
      Conn.close conn
    | Frame.Hello _ | Frame.Client_hello -> ()
    | Frame.Msg { src; lamport; rest } -> on_peer_msg t ~src ~lamport rest
    | Frame.Read_req { req } ->
      Queue.push (conn, req, Do_read) t.queue;
      pump t
    | Frame.Write_req { req; data } ->
      Queue.push (conn, req, Do_write data) t.queue;
      pump t
    | Frame.Resp _ | Frame.Err _ -> Metrics.incr t.metrics "net.malformed"

  (* --- outgoing links ---------------------------------------------- *)

  let rec dial t link =
    if (not link.dialing) && (not t.left) && not (Loop.stopped t.loop) then begin
      link.dialing <- true;
      let host, port = t.cfg.addrs.(link.peer) in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.set_nonblock fd;
      let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
      let finish ok =
        Loop.unwatch_write t.loop fd;
        if ok then begin
          Unix.clear_nonblock fd;
          let conn =
            Conn.create ~loop:t.loop ~fd
              ~on_frame:(fun _ _ -> (* the reply direction is unused *) ())
              ~on_close:(fun _ ->
                link.conn <- None;
                retry t link)
          in
          link.conn <- Some conn;
          link.dialing <- false;
          Conn.write_frame conn (Frame.buf_hello (self_i t))
        end
        else begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          link.dialing <- false;
          retry t link
        end
      in
      match Unix.connect fd addr with
      | () -> finish true
      | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) ->
        Loop.watch_write t.loop fd (fun () ->
            let ok = Unix.getsockopt_error fd = None in
            finish ok)
      | exception Unix.Unix_error _ -> finish false
    end

  and retry t link =
    if (not t.left) && not (Loop.stopped t.loop) then
      after_ms_ignore t.loop 250 (fun () -> dial t link)

  (* --- listener ---------------------------------------------------- *)

  let listen_socket cfg =
    match cfg.listen_fd with
    | Some fd -> fd
    | None ->
      let host, port = cfg.addrs.(cfg.self) in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen fd 512;
      fd

  let accept_loop t fd =
    Loop.watch_read t.loop fd (fun () ->
        match Unix.accept fd with
        | exception Unix.Unix_error _ -> ()
        | client_fd, _ ->
          ignore
            (Conn.create ~loop:t.loop ~fd:client_fd
               ~on_frame:(fun conn payload -> on_incoming_frame t conn payload)
               ~on_close:(fun _ -> ())))

  (* --- trace streaming --------------------------------------------- *)

  let start_trace t =
    match t.cfg.trace_path with
    | None -> ()
    | Some path ->
      let chan = open_out path in
      t.trace_chan <- Some chan;
      Event.on_emit t.sink (fun stamped ->
          output_string chan (Json.to_string (Export.event_to_json stamped));
          output_char chan '\n');
      (* Flush on a timer rather than per event: a SIGTERM'd process
         loses at most the last partial line, which the lenient JSONL
         readers tolerate. *)
      let rec flush_later () =
        t.stop_flush <-
          Loop.after_ms t.loop 200 (fun () ->
              flush chan;
              flush_later ())
      in
      flush_later ()

  (* --- lifecycle --------------------------------------------------- *)

  let create ~loop cfg params =
    let events_on = cfg.events_enabled || cfg.trace_path <> None in
    let sink = Event.create ~first_span:(cfg.self * 1_000_000) ~enabled:events_on () in
    let t =
      {
        cfg;
        loop;
        pid = Pid.of_int cfg.self;
        sink;
        metrics = Metrics.create ();
        lamport = 0;
        links = Array.init (Array.length cfg.addrs) (fun peer -> { peer; conn = None; dialing = false });
        listen = None;
        handler = None;
        node = None;
        left = false;
        queue = Queue.create ();
        op_busy = false;
        trace_chan = None;
        stop_flush = ignore;
      }
    in
    start_trace t;
    let fd = listen_socket cfg in
    t.listen <- Some fd;
    accept_loop t fd;
    Array.iter (fun link -> if link.peer <> cfg.self then dial t link) t.links;
    (* Founding members are active from the origin of the deployment's
       time line; a joiner announces its entry at the instant it starts
       listening, then runs the protocol's join (its Join span comes
       from the protocol itself, as in the simulator). *)
    if cfg.join then begin
      emit t (Event.Node_join { node = cfg.self });
      (* A joiner dialing a mesh that is already up must not broadcast
         its INQUIRY into the void: wait until the outgoing links reach
         a majority of the mesh (counting ourselves) before starting
         the protocol's join. *)
      let need_links = (Array.length cfg.addrs / 2) + 1 - 1 in
      let rec when_connected () =
        let ready = ref 0 in
        Array.iteri (fun peer _ -> if link_ready t peer then incr ready) cfg.addrs;
        if !ready >= need_links then
          t.node <-
            Some
              (P.create ~rt:(runtime t) ~params ~pid:t.pid ~initial:None
                 ~on_active:(fun _ -> pump t))
        else after_ms_ignore t.loop 50 when_connected
      in
      when_connected ()
    end
    else begin
      (* Founding members are active from the origin of the
         deployment's shared time line. *)
      if Event.enabled sink then
        Event.emit sink ~at:Time.zero (Event.Node_join { node = cfg.self });
      t.node <-
        Some
          (P.create ~rt:(runtime t) ~params ~pid:t.pid
             ~initial:(Some (Dds_spec.Value.initial cfg.initial_value))
             ~on_active:(fun _ -> pump t))
    end;
    t

  let shutdown t =
    t.left <- true;
    (match t.listen with
    | Some fd ->
      Loop.unwatch_read t.loop fd;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.listen <- None
    | None -> ());
    Array.iter
      (fun link -> match link.conn with Some c -> Conn.close c | None -> ())
      t.links;
    t.stop_flush ();
    (match t.trace_chan with
    | Some chan ->
      flush chan;
      close_out_noerr chan;
      t.trace_chan <- None
    | None -> ())
end
