(** Static shard placement for a live keyed deployment.

    The wire protocol's v2 keyed operations need one more piece of
    shared configuration beyond the [--peers] list: which node hosts
    which shard. The placement is static (no rebalancing — ROADMAP
    item 3's migration follow-on) and must be quoted identically to
    every [dds serve] process and to [dds load]/[dds client], exactly
    like the peers list: the server uses it to decide which shards to
    instantiate and where to send each shard's protocol messages, the
    client uses it to route a key's operation to a node that owns the
    key's shard.

    The spec grammar is [--owned a,b;c;a,c]: one [,]-separated group
    of shard ids per node, groups separated by [;], node order = peers
    order. A single group with no [;] replicates to every node (the
    common "everybody hosts everything" deployment), and omitting the
    flag means exactly that for all shards. Keys map to shards through
    {!Dds_shard.Shard.route} — the same SplitMix64 placement hash the
    simulated store uses, so a live mesh and a simulated run spread
    one key-space identically. *)

type t = {
  shards : int;
  owned : int list array;  (** node -> shards it hosts, ascending *)
  owners : int list array;  (** shard -> nodes hosting it, ascending *)
}

let shards t = t.shards
let owned t node = t.owned.(node)
let owners t shard = t.owners.(shard)

(* The designated writer of a shard: its lowest owner. The per-shard
   single-writer regime the protocols' correctness arguments assume
   needs one agreed funnel per shard; lowest-pid is the same rule the
   simulated store's writer election starts from. *)
let writer t shard = List.hd t.owners.(shard)

let route t ~key = Dds_shard.Shard.route ~shards:t.shards ~key

let of_owned ~shards owned =
  let nodes = Array.length owned in
  let owners = Array.make shards [] in
  Array.iteri
    (fun node os ->
      List.iter (fun s -> owners.(s) <- node :: owners.(s)) os)
    owned;
  let owners = Array.map (fun l -> List.sort_uniq compare l) owners in
  let orphan = ref None in
  Array.iteri (fun s os -> if os = [] && !orphan = None then orphan := Some s) owners;
  match !orphan with
  | Some s -> Error (Printf.sprintf "shard %d has no owner (%d node(s))" s nodes)
  | None -> Ok { shards; owned = Array.map (List.sort_uniq compare) owned; owners }

(* Every node owns every shard — the default placement, and the only
   one a v1 (single-register) deployment can express. *)
let all ~nodes ~shards =
  let every = List.init shards (fun s -> s) in
  { shards; owned = Array.make nodes every; owners = Array.make shards (List.init nodes (fun n -> n)) }

let parse_group ~shards group =
  let parts = String.split_on_char ',' (String.trim group) in
  let rec go acc = function
    | [] -> Ok (List.sort_uniq compare (List.rev acc))
    | p :: rest -> (
      match int_of_string_opt (String.trim p) with
      | Some s when s >= 0 && s < shards -> go (s :: acc) rest
      | Some s -> Error (Printf.sprintf "shard %d out of range [0, %d)" s shards)
      | None -> Error (Printf.sprintf "cannot parse shard id %S" p))
  in
  go [] parts

let make ~nodes ~shards ~spec =
  if shards <= 0 then Error (Printf.sprintf "--shards %d must be positive" shards)
  else if nodes <= 0 then Error "empty mesh"
  else
    match spec with
    | None -> Ok (all ~nodes ~shards)
    | Some spec -> (
      let groups = String.split_on_char ';' spec in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | g :: rest -> (
          match parse_group ~shards g with Ok os -> go (os :: acc) rest | Error e -> Error e)
      in
      match go [] groups with
      | Error e -> Error e
      | Ok [ one ] when nodes > 1 ->
        (* One group, many nodes: the group is every node's owned set. *)
        of_owned ~shards (Array.make nodes one)
      | Ok many when List.length many = nodes -> of_owned ~shards (Array.of_list many)
      | Ok many ->
        Error
          (Printf.sprintf "--owned lists %d node group(s) for a %d-node mesh"
             (List.length many) nodes))

let to_string t =
  String.concat ";"
    (Array.to_list
       (Array.map
          (fun os -> String.concat "," (List.map string_of_int os))
          t.owned))
