open Dds_sim
open Dds_net
open Dds_runtime

(** A live keyed store node: one process hosting one protocol instance
    per owned shard, all served over a single TCP mesh.

    This is the wire-protocol-v2 redesign of {!Node}: where a v1 node
    {e is} one register, a store node {e hosts} registers — shard [s]
    of a [Placement.t] is a full, independent instance of the protocol
    state machine (own event sink, own Lamport clock, own operation
    queue, own membership via the owners of [s]), and every client
    operation carries a 63-bit key that routes to
    [Placement.route ~key] — the same SplitMix64 placement hash the
    simulated sharded store uses, so a live mesh and a [dds run
    --shards] simulation spread one key-space identically.

    {b The mesh is shared, the registers are not.} Node [i] keeps one
    outgoing TCP link per peer exactly as before; a protocol message
    now travels in a [Msg] frame stamped with its shard id, and the
    receiver demultiplexes to that shard's instance (dropping frames
    for shards it does not own — a misrouted frame is a peer's
    placement bug, counted in [net.misrouted]). Per-shard sends go
    only to the shard's owners, so a heterogeneous placement really
    does confine each register's traffic to its replica set.

    {b Version negotiation.} Every connection starts at wire v1; the
    first frame — [Hello] from a dialing peer, [Client_hello] from a
    client — is self-describing (a trailing version byte marks v2) and
    fixes the version every later frame on that connection is decoded
    and answered at. A v2+ [Client_hello] is acknowledged with a
    [Hello] naming the agreed version (the minimum of requested and
    {!Wire.max_version}); a version below v1 is refused with a typed
    [Err] ([req = -1]) and a close, never a crash. A v1 client's
    requests decode as key 0 — against a 1-shard placement that is
    exactly the old single-register service.

    {b Telemetry.} Each instance's span ids start at
    [(self * shards + shard) * 1_000_000] — the shard×10⁶ convention
    of the simulated store composed with the node×10⁶ convention of
    the v1 runtime (for [shards = 1] it degenerates to exactly the old
    per-node bases), so spans stay globally unique in a merged trace.
    With [shards > 1] the trace stream tags every line with its
    ["shard"] index — the PR 9 JSONL field — so [dds audit] groups the
    merged per-node traces back into independently checkable
    registers; a 1-shard store writes untagged v1-style traces. *)

let default_epoch_ms () =
  (* Midnight UTC today: processes of one deployment started the same
     day agree on it without coordination; cross-midnight deployments
     pass --epoch explicitly. *)
  let t = Unix.gettimeofday () in
  let tm = Unix.gmtime t in
  let midnight, _ = Unix.mktime { tm with tm_hour = 0; tm_min = 0; tm_sec = 0 } in
  (* mktime interprets in local time; correct by the difference between
     gmtime and localtime of the same instant. *)
  let local, _ = Unix.mktime (Unix.localtime t) in
  let gm_as_local, _ = Unix.mktime (Unix.gmtime t) in
  (midnight -. (gm_as_local -. local)) *. 1000.

let span_base ~self ~shards ~shard = ((self * shards) + shard) * 1_000_000

type config = {
  self : int;  (** index into [addrs] = this node's pid *)
  addrs : (string * int) array;  (** the whole mesh, index = pid *)
  placement : Placement.t;  (** the static shard map, shared mesh-wide *)
  join : bool;  (** enter via the protocol's join instead of founding *)
  initial_value : int;  (** founding members' initial register datum *)
  epoch_ms : float;  (** shared time origin (unix ms) *)
  events_enabled : bool;
  trace_path : string option;  (** stream events to this JSONL file *)
  listen_fd : Unix.file_descr option;
      (** pre-bound listening socket (in-process tests use ephemeral
          ports and need the port known before nodes dial each other) *)
}

let default_config ~self ~addrs =
  {
    self;
    addrs;
    placement = Placement.all ~nodes:(Array.length addrs) ~shards:1;
    join = false;
    initial_value = 0;
    epoch_ms = default_epoch_ms ();
    events_enabled = true;
    trace_path = None;
    listen_fd = None;
  }

module Make (P : Dds_core.Register_intf.PROTOCOL) = struct
  type link = {
    peer : int;
    mutable conn : Conn.t option;  (** established, hello sent *)
    mutable dialing : bool;
  }

  type client_op = Do_read | Do_write of int

  type pending = {
    p_conn : Conn.t;
    p_version : int;  (** the connection's wire version, for the Resp *)
    p_req : int;
    p_key : int;
    p_op : client_op;
  }

  type instance = {
    shard : int;
    sink : Event.sink;
    mutable lamport : int;
    mutable handler : (src:Pid.t -> P.msg -> unit) option;
    mutable node : P.node option;
    mutable left : bool;
    queue : pending Queue.t;
    mutable op_busy : bool;
  }

  type t = {
    cfg : config;
    loop : Loop.t;
    metrics : Metrics.t;
    links : link array;  (** outgoing, index = peer pid; [self] unused *)
    mutable listen : Unix.file_descr option;
    instances : instance option array;  (** index = shard; [Some] iff owned *)
    mutable left : bool;
    mutable trace_chan : out_channel option;
    mutable stop_flush : unit -> unit;
  }

  let self_i t = t.cfg.self
  let pid t = Pid.of_int t.cfg.self
  let metrics t = t.metrics
  let shards t = Placement.shards t.cfg.placement
  let owned_shards t = Placement.owned t.cfg.placement t.cfg.self

  let instance t shard =
    if shard < 0 || shard >= Array.length t.instances then None else t.instances.(shard)

  let instance_exn t shard =
    match instance t shard with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Store: shard %d not owned" shard)

  let sink t shard = (instance_exn t shard).sink
  let node t shard = match (instance_exn t shard).node with Some n -> n | None -> assert false

  let active t shard =
    match instance t shard with
    | Some { node = Some n; _ } -> P.is_active n
    | Some { node = None; _ } | None -> false

  (* --- clock ------------------------------------------------------- *)

  let now t =
    let ms = int_of_float (Loop.now_ms () -. t.cfg.epoch_ms) in
    Time.of_int (Stdlib.max 0 ms)

  let emit t inst ev =
    if Event.enabled inst.sink then Event.emit inst.sink ~at:(now t) ev

  let tick_send inst =
    inst.lamport <- inst.lamport + 1;
    inst.lamport

  let tick_recv inst ~sent =
    inst.lamport <- Stdlib.max inst.lamport sent + 1;
    inst.lamport

  (* --- transport --------------------------------------------------- *)

  let announce t inst ~bcast ~dst msg =
    Metrics.incr t.metrics "net.transmit";
    let lc = if Event.enabled inst.sink then tick_send inst else 0 in
    emit t inst
      (Event.Send
         { src = self_i t; dst; kind = P.msg_kind msg; broadcast = bcast; lamport = lc });
    lc

  (* A copy to ourselves: broadcasts include the sender, and the sync
     protocol's joiner answers its own INQUIRY queue through this
     path. Delivery is deferred to the next loop turn so a handler
     never re-enters itself — the simulator's >= 1 tick delay gives
     the same guarantee there. *)
  let after_ms_ignore loop d f = ignore (Loop.after_ms loop d f : unit -> unit)

  let rec pump t inst =
    if (not inst.op_busy) && not (Queue.is_empty inst.queue) then
      match inst.node with
      | Some node when P.is_active node && not (P.busy node) -> (
        let p = Queue.pop inst.queue in
        inst.op_busy <- true;
        let k value =
          inst.op_busy <- false;
          Conn.write_frame p.p_conn
            (Frame.buf_resp ~version:p.p_version ~req:p.p_req ~key:p.p_key value);
          pump t inst
        in
        match p.p_op with
        | Do_read -> P.read node ~k
        | Do_write data -> P.write node data ~k)
      | Some _ | None -> ()

  let deliver_local t inst ~sent_lc msg =
    after_ms_ignore t.loop 0 (fun () ->
        match inst.handler with
        | Some h when not inst.left ->
          Metrics.incr t.metrics "net.delivered";
          let recv_lc =
            if Event.enabled inst.sink then tick_recv inst ~sent:sent_lc else 0
          in
          emit t inst
            (Event.Deliver
               {
                 src = self_i t;
                 dst = self_i t;
                 kind = P.msg_kind msg;
                 lamport = recv_lc;
                 sent = sent_lc;
               });
          h ~src:(pid t) msg
        | Some _ | None ->
          Metrics.incr t.metrics "net.dropped";
          emit t inst
            (Event.Drop
               { src = self_i t; dst = self_i t; kind = P.msg_kind msg; reason = Event.Departed }))

  let link_ready t peer =
    peer <> self_i t
    && match t.links.(peer).conn with Some c -> not c.Conn.closed | None -> false

  let transmit t inst ~bcast dst msg =
    if dst = self_i t then begin
      let lc = announce t inst ~bcast ~dst msg in
      deliver_local t inst ~sent_lc:lc msg
    end
    else
      match t.links.(dst).conn with
      | Some conn when not conn.Conn.closed ->
        let lc = announce t inst ~bcast ~dst msg in
        let b = Frame.buf_msg_header ~src:(self_i t) ~lamport:lc ~shard:inst.shard () in
        P.put_msg b msg;
        Conn.write_frame conn b
      | Some _ | None -> Metrics.incr t.metrics "net.dropped"

  (* A shard's messages are confined to its owners: a send to a
     non-owner is a protocol bug surfaced as a dropped message, not a
     wire frame the peer would have to discard. *)
  let rt_send t inst ~src:_ ~dst msg =
    let dst = Pid.to_int dst in
    let owners = Placement.owners t.cfg.placement inst.shard in
    let attached =
      List.mem dst owners
      && ((dst = self_i t && inst.handler <> None) || link_ready t dst)
    in
    if attached then begin
      Metrics.incr t.metrics "net.sent";
      transmit t inst ~bcast:false dst msg
    end
    else Metrics.incr t.metrics "net.dropped"

  let rt_broadcast t inst ~src:_ msg =
    Metrics.incr t.metrics "net.broadcast";
    (* Present set = ourselves plus every owner of this shard our
       outgoing link reaches, in pid order — the wire analogue of the
       simulator's sorted attached snapshot, restricted to the shard's
       replica set. *)
    List.iter
      (fun dst ->
        if (dst = self_i t && inst.handler <> None) || link_ready t dst then
          transmit t inst ~bcast:true dst msg)
      (Placement.owners t.cfg.placement inst.shard)

  let runtime t inst : P.msg Runtime.t =
    {
      Runtime.now = (fun () -> now t);
      after = (fun ~who:_ d f -> Loop.after_ms t.loop d f);
      send = (fun ~src ~dst m -> rt_send t inst ~src ~dst m);
      broadcast = (fun ~src m -> rt_broadcast t inst ~src m);
      attach =
        (fun p h ->
          if not (Pid.equal p (pid t)) then invalid_arg "Store runtime: foreign attach";
          inst.handler <- Some h);
      detach =
        (fun p ->
          if Pid.equal p (pid t) then begin
            inst.handler <- None;
            inst.left <- true
          end);
      events = Some inst.sink;
      incr = (fun name -> Metrics.incr t.metrics name);
    }

  (* --- incoming frames --------------------------------------------- *)

  let on_peer_msg t inst ~src ~lamport rest =
    match P.get_msg rest with
    | exception (Wire.Truncated | Wire.Malformed _) ->
      Metrics.incr t.metrics "net.malformed"
    | msg -> (
      Wire.expect_end rest;
      match inst.handler with
      | Some h when not inst.left ->
        Metrics.incr t.metrics "net.delivered";
        let recv_lc = if Event.enabled inst.sink then tick_recv inst ~sent:lamport else 0 in
        emit t inst
          (Event.Deliver
             { src; dst = self_i t; kind = P.msg_kind msg; lamport = recv_lc; sent = lamport });
        h ~src:(Pid.of_int src) msg;
        pump t inst
      | Some _ | None ->
        Metrics.incr t.metrics "net.dropped";
        emit t inst
          (Event.Drop { src; dst = self_i t; kind = P.msg_kind msg; reason = Event.Departed }))

  let err t conn ~req reason =
    Metrics.incr t.metrics "net.refused";
    Conn.write_frame conn (Frame.buf_err ~req reason)

  let enqueue_client_op t conn ~version ~req ~key op =
    let shard = Placement.route t.cfg.placement ~key in
    match instance t shard with
    | None ->
      err t conn ~req
        (Printf.sprintf "shard %d (key %d) not owned by node %d (owned: %s)" shard key
           (self_i t)
           (String.concat "," (List.map string_of_int (owned_shards t))))
    | Some inst ->
      Queue.push { p_conn = conn; p_version = version; p_req = req; p_key = key; p_op = op }
        inst.queue;
      pump t inst

  (* Each accepted connection tracks the wire version its first
     [Hello]/[Client_hello] negotiated; every later frame is decoded
     and answered at it. *)
  let on_incoming_frame t conn version payload =
    match Frame.decode ~version:!version payload with
    | exception (Wire.Truncated | Wire.Malformed _) ->
      Metrics.incr t.metrics "net.malformed";
      Conn.close conn
    | Frame.Hello { pid = _; version = v } ->
      (* A dialing peer announces the version its Msg frames use; a
         version this build cannot decode is refused outright. *)
      if Wire.version_supported v then version := v
      else begin
        err t conn ~req:Frame.no_req (Printf.sprintf "unsupported wire version %d" v);
        Conn.close conn
      end
    | Frame.Client_hello { version = v } ->
      if v < Wire.v1 then begin
        err t conn ~req:Frame.no_req (Printf.sprintf "unsupported wire version %d" v);
        Conn.close conn
      end
      else begin
        (* Clamp a futuristic client down to what we speak and say so:
           the ack names the agreed version, and v2+ clients wait for
           it before issuing keyed operations. v1 clients never sent a
           version and expect no ack — stay silent for them. *)
        let agreed = Stdlib.min v Wire.max_version in
        version := agreed;
        if v > Wire.v1 then
          Conn.write_frame conn (Frame.buf_hello ~version:agreed (self_i t))
      end
    | Frame.Msg { src; lamport; shard; rest } -> (
      match instance t shard with
      | Some inst -> on_peer_msg t inst ~src ~lamport rest
      | None -> Metrics.incr t.metrics "net.misrouted")
    | Frame.Read_req { req; key } ->
      enqueue_client_op t conn ~version:!version ~req ~key Do_read
    | Frame.Write_req { req; key; data } ->
      enqueue_client_op t conn ~version:!version ~req ~key (Do_write data)
    | Frame.Resp _ | Frame.Err _ -> Metrics.incr t.metrics "net.malformed"

  (* --- outgoing links ---------------------------------------------- *)

  let rec dial t link =
    if (not link.dialing) && (not t.left) && not (Loop.stopped t.loop) then begin
      link.dialing <- true;
      let host, port = t.cfg.addrs.(link.peer) in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.set_nonblock fd;
      let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
      let finish ok =
        Loop.unwatch_write t.loop fd;
        if ok then begin
          Unix.clear_nonblock fd;
          let conn =
            Conn.create ~loop:t.loop ~fd
              ~on_frame:(fun _ _ -> (* the reply direction is unused *) ())
              ~on_close:(fun _ ->
                link.conn <- None;
                retry t link)
          in
          link.conn <- Some conn;
          link.dialing <- false;
          Conn.write_frame conn (Frame.buf_hello ~version:Wire.v2 (self_i t))
        end
        else begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          link.dialing <- false;
          retry t link
        end
      in
      match Unix.connect fd addr with
      | () -> finish true
      | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) ->
        Loop.watch_write t.loop fd (fun () ->
            let ok = Unix.getsockopt_error fd = None in
            finish ok)
      | exception Unix.Unix_error _ -> finish false
    end

  and retry t link =
    if (not t.left) && not (Loop.stopped t.loop) then
      after_ms_ignore t.loop 250 (fun () -> dial t link)

  (* --- listener ---------------------------------------------------- *)

  let listen_socket cfg =
    match cfg.listen_fd with
    | Some fd -> fd
    | None ->
      let host, port = cfg.addrs.(cfg.self) in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen fd 512;
      fd

  let accept_loop t fd =
    Loop.watch_read t.loop fd (fun () ->
        match Unix.accept fd with
        | exception Unix.Unix_error _ -> ()
        | client_fd, _ ->
          let version = ref Wire.v1 in
          ignore
            (Conn.create ~loop:t.loop ~fd:client_fd
               ~on_frame:(fun conn payload -> on_incoming_frame t conn version payload)
               ~on_close:(fun _ -> ())))

  (* --- trace streaming --------------------------------------------- *)

  let start_trace t =
    match t.cfg.trace_path with
    | None -> ()
    | Some path ->
      let chan = open_out path in
      t.trace_chan <- Some chan;
      let tag shard = if shards t > 1 then Some shard else None in
      Array.iter
        (function
          | None -> ()
          | Some inst ->
            Event.on_emit inst.sink (fun stamped ->
                output_string chan
                  (Json.to_string (Export.tagged_event_to_json (tag inst.shard) stamped));
                output_char chan '\n'))
        t.instances;
      (* Flush on a timer rather than per event: a SIGTERM'd process
         loses at most the last partial line, which the lenient JSONL
         readers tolerate. *)
      let rec flush_later () =
        t.stop_flush <-
          Loop.after_ms t.loop 200 (fun () ->
              flush chan;
              flush_later ())
      in
      flush_later ()

  (* --- lifecycle --------------------------------------------------- *)

  let start_instance t inst params =
    if t.cfg.join then begin
      emit t inst (Event.Node_join { node = self_i t });
      (* A joiner dialing a mesh that is already up must not broadcast
         its INQUIRY into the void: wait until the outgoing links reach
         a majority of this shard's owners (counting ourselves) before
         starting the protocol's join. *)
      let owners = Placement.owners t.cfg.placement inst.shard in
      let need_links = (List.length owners / 2) + 1 - 1 in
      let rec when_connected () =
        let ready =
          List.length (List.filter (fun peer -> link_ready t peer) owners)
        in
        if ready >= need_links then
          inst.node <-
            Some
              (P.create ~rt:(runtime t inst) ~params ~pid:(pid t) ~initial:None
                 ~on_active:(fun _ -> pump t inst))
        else after_ms_ignore t.loop 50 when_connected
      in
      when_connected ()
    end
    else begin
      (* Founding members are active from the origin of the
         deployment's shared time line. *)
      if Event.enabled inst.sink then
        Event.emit inst.sink ~at:Time.zero (Event.Node_join { node = self_i t });
      inst.node <-
        Some
          (P.create ~rt:(runtime t inst) ~params ~pid:(pid t)
             ~initial:(Some (Dds_spec.Value.initial t.cfg.initial_value))
             ~on_active:(fun _ -> pump t inst))
    end

  let create ~loop cfg params_of =
    let nshards = Placement.shards cfg.placement in
    let events_on = cfg.events_enabled || cfg.trace_path <> None in
    let owned = Placement.owned cfg.placement cfg.self in
    let instances =
      Array.init nshards (fun shard ->
          if List.mem shard owned then
            Some
              {
                shard;
                sink =
                  Event.create
                    ~first_span:(span_base ~self:cfg.self ~shards:nshards ~shard)
                    ~enabled:events_on ();
                lamport = 0;
                handler = None;
                node = None;
                left = false;
                queue = Queue.create ();
                op_busy = false;
              }
          else None)
    in
    let t =
      {
        cfg;
        loop;
        metrics = Metrics.create ();
        links =
          Array.init (Array.length cfg.addrs) (fun peer ->
              { peer; conn = None; dialing = false });
        listen = None;
        instances;
        left = false;
        trace_chan = None;
        stop_flush = ignore;
      }
    in
    start_trace t;
    let fd = listen_socket cfg in
    t.listen <- Some fd;
    accept_loop t fd;
    Array.iter (fun link -> if link.peer <> cfg.self then dial t link) t.links;
    Array.iter
      (function Some inst -> start_instance t inst (params_of inst.shard) | None -> ())
      t.instances;
    t

  let shutdown t =
    t.left <- true;
    Array.iter
      (function Some (inst : instance) -> inst.left <- true | None -> ())
      t.instances;
    (match t.listen with
    | Some fd ->
      Loop.unwatch_read t.loop fd;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.listen <- None
    | None -> ());
    Array.iter
      (fun link -> match link.conn with Some c -> Conn.close c | None -> ())
      t.links;
    t.stop_flush ();
    (match t.trace_chan with
    | Some chan ->
      flush chan;
      close_out_noerr chan;
      t.trace_chan <- None
    | None -> ())
end
