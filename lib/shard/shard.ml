open Dds_sim
open Dds_core
open Dds_spec

(* SplitMix64 finalizer (same constants as Rng.mix): the route must be
   a pure function of the key alone — reseeding a run moves the
   traffic, never the placement — so it cannot draw from any rng. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Low 62 bits: always a non-negative OCaml int (63-bit native ints —
   a logical shift by 1 can still land on the sign bit). *)
let to_nonneg_int h = Int64.to_int (Int64.logand h 0x3FFF_FFFF_FFFF_FFFFL)

let route ~shards ~key =
  if shards <= 0 then invalid_arg "Shard.route: shards must be positive";
  to_nonneg_int (mix64 (Int64.of_int key)) mod shards

let seed_for ~seed ~shard =
  (* Mix the shard index through the same finalizer, offset so shard 0
     of seed s never collides with shard 1 of seed s-1. *)
  to_nonneg_int
    (mix64
       (Int64.add (Int64.of_int seed) (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (shard + 1)))))

let span_base shard = shard * 1_000_000

type config = { shards : int; keys : int; base : Deployment.config }
type op_kind = Read | Write of int
type op = { at : Time.t; key : int; kind : op_kind }

type shard_report = {
  sr_shard : int;
  sr_scheduled : int;
  sr_issued : int;
  sr_skipped : int;
  sr_regularity : Regularity.report;
}

module type S = sig
  module D : Deployment.S

  type t

  val create : config -> D.Protocol.params -> t
  val config : t -> config
  val shards : t -> int
  val deployment : t -> int -> D.t
  val route_key : t -> int -> int
  val read : t -> key:int -> bool
  val write : t -> key:int -> value:int -> bool
  val load : t -> op list -> unit
  val start_churn : t -> until:Time.t -> unit
  val run_until : t -> Time.t -> unit
  val scheduled : t -> int
  val issued : t -> int
  val skipped : t -> int
  val reports : t -> shard_report list
  val regular : t -> bool
  val tagged_events : t -> (int option * Event.stamped) list
end

module Make (D : Deployment.S) = struct
  module D = D

  type t = {
    cfg : config;
    deployments : D.t array;
    scheduled : int array;
    issued : int array;
    skipped : int array;
  }

  let create cfg params =
    if cfg.shards <= 0 then invalid_arg "Shard.create: shards must be positive";
    if cfg.keys <= 0 then invalid_arg "Shard.create: keys must be positive";
    let deployments =
      Array.init cfg.shards (fun s ->
          D.create
            {
              cfg.base with
              Deployment.seed = seed_for ~seed:cfg.base.Deployment.seed ~shard:s;
              events_first_span = span_base s;
            }
            params)
    in
    {
      cfg;
      deployments;
      scheduled = Array.make cfg.shards 0;
      issued = Array.make cfg.shards 0;
      skipped = Array.make cfg.shards 0;
    }

  let config t = t.cfg
  let shards t = t.cfg.shards
  let deployment t s = t.deployments.(s)
  let route_key t key = route ~shards:t.cfg.shards ~key

  (* Issue-time paths mirror the workload generator: reads land on a
     random idle active process, writes re-elect the shard's designated
     writer on the fly. A shard mid-churn may have nobody able to take
     the op this tick; the caller's plan accounting (skipped) keeps the
     conservation invariant checkable: scheduled = issued + skipped. *)
  let read_on t s =
    let d = t.deployments.(s) in
    match D.random_idle_active d with
    | Some pid ->
      D.read d pid;
      true
    | None -> false

  let write_on t s value =
    let d = t.deployments.(s) in
    match D.elect_writer d with
    | Some w -> (
      match D.node d w with
      | Some node when D.Protocol.is_active node && not (D.Protocol.busy node) ->
        D.write_value d w value;
        true
      | Some _ | None -> false)
    | None -> false

  let read t ~key = read_on t (route_key t key)
  let write t ~key ~value = write_on t (route_key t key) value

  let issue t s kind =
    let ok = match kind with Read -> read_on t s | Write v -> write_on t s v in
    if ok then t.issued.(s) <- t.issued.(s) + 1 else t.skipped.(s) <- t.skipped.(s) + 1

  let load t ops =
    List.iter
      (fun op ->
        let s = route_key t op.key in
        t.scheduled.(s) <- t.scheduled.(s) + 1;
        let d = t.deployments.(s) in
        let sched = D.scheduler d in
        if Time.(op.at <= Scheduler.now sched) then t.skipped.(s) <- t.skipped.(s) + 1
        else ignore (Scheduler.schedule_at sched op.at (fun () -> issue t s op.kind)))
      ops

  let start_churn t ~until = Array.iter (fun d -> D.start_churn d ~until) t.deployments
  let run_until t horizon = Array.iter (fun d -> D.run_until d horizon) t.deployments
  let sum a = Array.fold_left ( + ) 0 a
  let scheduled t = sum t.scheduled
  let issued t = sum t.issued
  let skipped t = sum t.skipped

  let reports t =
    List.init t.cfg.shards (fun s ->
        {
          sr_shard = s;
          sr_scheduled = t.scheduled.(s);
          sr_issued = t.issued.(s);
          sr_skipped = t.skipped.(s);
          sr_regularity = D.regularity t.deployments.(s);
        })

  let regular t =
    Array.for_all (fun d -> Regularity.is_ok (D.regularity d)) t.deployments

  let tagged_events t =
    let all =
      List.concat
        (List.init t.cfg.shards (fun s ->
             List.map (fun ev -> (Some s, ev)) (Event.events (D.events t.deployments.(s)))))
    in
    List.stable_sort
      (fun ((_, a) : _ * Event.stamped) (_, b) -> Time.compare a.Event.at b.Event.at)
      all
end
