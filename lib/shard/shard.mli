open Dds_sim
open Dds_core
open Dds_spec

(** A sharded multi-register key-space.

    The paper implements one register; a store serves millions of
    keys. This layer hash-partitions a key-space across [shards]
    independent register instances — each a full {!Deployment} with
    its own scheduler, network, membership table, churn process,
    metrics registry and event sink — behind a single
    [read k] / [write k v] facade. Shards share nothing: key [k]
    always lives on shard [route ~shards ~key:k], every per-shard
    stream of operations is a pure function of that shard's derived
    seed, and the per-shard safety verdicts are exactly the paper's
    single-register regularity checks run [shards] times.

    The layer is registry-aware by construction: {!Make} takes any
    {!Deployment.S}, so every protocol in {!Protocol.all} (and any
    future registry entry) shards the same way — unpack the entry's
    packed {!Protocol.RUNNER} and apply {!Make} to its [D]. *)

val route : shards:int -> key:int -> int
(** The owning shard of [key]: a SplitMix64-finalizer hash of the key
    reduced mod [shards]. Pure and seed-independent — the placement of
    a key never moves when a run is reseeded, only the traffic drawn
    against it does.
    @raise Invalid_argument when [shards <= 0]. *)

val seed_for : seed:int -> shard:int -> int
(** The shard's deployment seed, mixed from the store seed and the
    shard index — the engine rule applied to sharding: each
    independent instance builds its own rng streams from its own
    seed, so shards stay deterministic under any execution order. *)

val span_base : int -> int
(** [shard * 1_000_000]: the shard's span-id base
    ({!Deployment.config.events_first_span}), mirroring the live
    runtime's per-node offsets, so span ids stay unique when the
    per-shard traces are merged into one tagged file. *)

type config = {
  shards : int;  (** independent register instances *)
  keys : int;  (** key-space size; keys are [0 .. keys-1] *)
  base : Deployment.config;
      (** per-shard deployment template: shard [s] runs it with
          [seed = seed_for ~seed:base.seed ~shard:s] and
          [events_first_span = span_base s], everything else as
          given. [n] is the per-shard system size. *)
}

type op_kind = Read | Write of int  (** the datum a write stores *)

type op = { at : Time.t; key : int; kind : op_kind }
(** One keyed operation of a pre-drawn workload plan (see
    [Dds_workload.Skew]). *)

type shard_report = {
  sr_shard : int;
  sr_scheduled : int;  (** plan ops routed to this shard *)
  sr_issued : int;  (** ops actually started on an idle node *)
  sr_skipped : int;  (** ops dropped: no process could take them *)
  sr_regularity : Regularity.report;
}

module type S = sig
  module D : Deployment.S

  type t

  val create : config -> D.Protocol.params -> t
  (** Builds all [shards] deployments at time 0.
      @raise Invalid_argument when [shards <= 0] or [keys <= 0]. *)

  val config : t -> config
  val shards : t -> int

  val deployment : t -> int -> D.t
  (** Direct access to one shard's deployment (metrics, history,
      events, membership — everything {!Deployment.S} exposes). *)

  val route_key : t -> int -> int
  (** [route ~shards] for this store. *)

  (** {1 The facade} *)

  val read : t -> key:int -> bool
  (** Issues a read of [key] on a random idle active process of its
      owning shard, at that shard's current time. [false] when no
      process could take it this instant (nobody idle). *)

  val write : t -> key:int -> value:int -> bool
  (** Issues a write through the owning shard's designated writer
      (re-electing one if the previous writer churned out — the
      single-writer regime holds {e per shard}). [false] when no
      writer is available or it is busy. *)

  (** {1 Driving a plan} *)

  val load : t -> op list -> unit
  (** Schedules every op on its owning shard's scheduler at [op.at]
      (issued through the facade when the clock gets there). Ops in
      the past of a shard's clock are counted skipped. *)

  val start_churn : t -> until:Time.t -> unit
  (** Starts every shard's own churn process. *)

  val run_until : t -> Time.t -> unit
  (** Advances every shard to the horizon, in shard order. Shards
      share no state, so the order is invisible in the results; it is
      fixed anyway so wall-clock observations are stable too. *)

  (** {1 Verdicts and telemetry} *)

  val scheduled : t -> int
  val issued : t -> int
  val skipped : t -> int

  val reports : t -> shard_report list
  (** One per shard, ascending: scheduled/issued/skipped counts plus
      the shard's own regularity verdict. *)

  val regular : t -> bool
  (** Every shard's register is regular. *)

  val tagged_events : t -> (int option * Event.stamped) list
  (** All shards' typed events, each tagged with its shard index,
      stable-merged on the shared timeline — feed to
      {!Export.jsonl_of_tagged_events} for a single auditable trace
      file. *)
end

module Make (D : Deployment.S) : S with module D = D
