type op_kind = Join | Read | Write

type outcome = Completed | Aborted

type drop_reason = Departed | Faulted

type payload = { data : int; sn : int }

type t =
  | Node_join of { node : int }
  | Node_leave of { node : int }
  | Node_crash of { node : int }
  | Send of { src : int; dst : int; kind : string; broadcast : bool; lamport : int }
  | Deliver of { src : int; dst : int; kind : string; lamport : int; sent : int }
  | Drop of { src : int; dst : int; kind : string; reason : drop_reason }
  | Op_start of { span : int; node : int; op : op_kind; value : payload option }
  | Op_phase of { span : int; node : int; phase : string }
  | Op_end of { span : int; node : int; op : op_kind; outcome : outcome; value : payload option }
  | Quorum_progress of { span : int; node : int; have : int; need : int; from : int }
  | Gst_reached
  | Violation of { monitor : string; detail : string }
  | Fault_injected of { fault : string; src : int; dst : int; kind : string }

type stamped = { at : Time.t; ev : t }

let op_kind_to_string = function Join -> "join" | Read -> "read" | Write -> "write"

let op_kind_of_string = function
  | "join" -> Some Join
  | "read" -> Some Read
  | "write" -> Some Write
  | _ -> None

let outcome_to_string = function Completed -> "completed" | Aborted -> "aborted"

let outcome_of_string = function
  | "completed" -> Some Completed
  | "aborted" -> Some Aborted
  | _ -> None

let drop_reason_to_string = function Departed -> "departed" | Faulted -> "faulted"

let drop_reason_of_string = function
  | "departed" -> Some Departed
  | "faulted" -> Some Faulted
  | _ -> None

let pp_payload ppf { data; sn } = Format.fprintf ppf "%d#%d" data sn

let pp_value_opt ppf = function
  | Some p -> Format.fprintf ppf " %a" pp_payload p
  | None -> ()

let pp ppf = function
  | Node_join { node } -> Format.fprintf ppf "join p%d" node
  | Node_leave { node } -> Format.fprintf ppf "leave p%d" node
  | Node_crash { node } -> Format.fprintf ppf "crash p%d" node
  | Send { src; dst; kind; broadcast; lamport } ->
    Format.fprintf ppf "send%s p%d->p%d %s lc=%d" (if broadcast then "(bcast)" else "") src dst
      kind lamport
  | Deliver { src; dst; kind; lamport; sent } ->
    Format.fprintf ppf "deliver p%d->p%d %s lc=%d slc=%d" src dst kind lamport sent
  | Drop { src; dst; kind; reason } ->
    Format.fprintf ppf "drop(%s) p%d->p%d %s" (drop_reason_to_string reason) src dst kind
  | Op_start { span; node; op; value } ->
    Format.fprintf ppf "op-start #%d p%d %s%a" span node (op_kind_to_string op) pp_value_opt
      value
  | Op_phase { span; node; phase } -> Format.fprintf ppf "op-phase #%d p%d %s" span node phase
  | Op_end { span; node; op; outcome; value } ->
    Format.fprintf ppf "op-end #%d p%d %s %s%a" span node (op_kind_to_string op)
      (outcome_to_string outcome) pp_value_opt value
  | Quorum_progress { span; node; have; need; from } ->
    if from < 0 then Format.fprintf ppf "quorum #%d p%d %d/%d" span node have need
    else Format.fprintf ppf "quorum #%d p%d %d/%d from p%d" span node have need from
  | Gst_reached -> Format.pp_print_string ppf "gst-reached"
  | Violation { monitor; detail } -> Format.fprintf ppf "violation[%s] %s" monitor detail
  | Fault_injected { fault; src; dst; kind } ->
    if src < 0 && dst < 0 then Format.fprintf ppf "fault[%s] %s" fault kind
    else Format.fprintf ppf "fault[%s] p%d->p%d %s" fault src dst kind

(* The buffer mirrors Stats: a doubling array, no per-event boxing
   beyond the stamped record itself. *)
type sink = {
  enabled : bool;
  mutable buf : stamped array;
  mutable size : int;
  mutable next_span : int;
  mutable observer : (stamped -> unit) option;
}

let dummy = { at = Time.zero; ev = Gst_reached }

let create ?(capacity = 256) ?(first_span = 0) ~enabled () =
  {
    enabled;
    buf = (if enabled then Array.make (Stdlib.max capacity 1) dummy else [||]);
    size = 0;
    next_span = first_span;
    observer = None;
  }

let enabled s = s.enabled

let on_emit s f = if s.enabled then s.observer <- Some f

let clear_observer s = s.observer <- None

let emit s ~at ev =
  if s.enabled then begin
    let cap = Array.length s.buf in
    if s.size = cap then begin
      let buf = Array.make (2 * cap) dummy in
      Array.blit s.buf 0 buf 0 s.size;
      s.buf <- buf
    end;
    let st = { at; ev } in
    s.buf.(s.size) <- st;
    s.size <- s.size + 1;
    match s.observer with Some f -> f st | None -> ()
  end

let fresh_span s =
  let id = s.next_span in
  s.next_span <- id + 1;
  id

let events s = Array.to_list (Array.sub s.buf 0 s.size)
let length s = s.size
let clear s = s.size <- 0

let unclosed_spans evs =
  let open_spans = Hashtbl.create 64 in
  List.iter
    (fun { ev; _ } ->
      match ev with
      | Op_start { span; _ } -> Hashtbl.replace open_spans span ()
      | Op_end { span; _ } -> Hashtbl.remove open_spans span
      | _ -> ())
    evs;
  Hashtbl.fold (fun span () acc -> span :: acc) open_spans [] |> List.sort Int.compare
