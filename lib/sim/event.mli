(** Typed telemetry events.

    Where {!Trace} records free-form strings for human eyes, an
    {!Event.t} is a structured fact about the run — a membership
    change, one message transmission, one operation phase — that
    exporters ({!Export}), tests and the [dds inspect] summarizer can
    all consume without parsing prose. Node identities are carried as
    raw integers (the underlying value of a [Pid.t]) so the event
    model lives below the network layer.

    Operations are described by {e spans}: a span id is allocated when
    an operation starts ({!fresh_span}), marks its progress with
    [Op_phase] / [Quorum_progress] events, and is closed by exactly
    one [Op_end]. Span ids are unique within a sink, so join, read and
    write latencies decompose per phase after the fact (see
    {!Export.spans_of_events}).

    Spans carry operation {e payloads} (the datum/sequence-number pair
    being written, the value a read or join returned) and message
    events carry {e Lamport-clock stamps}, so a recorded trace is
    semantically complete: the register specification checkers can
    replay it without the in-process history, and the causal message
    graph reconstructs from the [Send]/[Deliver] pairs alone. *)

type op_kind = Join | Read | Write

type outcome =
  | Completed
  | Aborted  (** the process left before the operation responded *)

type drop_reason =
  | Departed  (** destination left between send and delivery *)
  | Faulted  (** lost by an injected network fault *)

type payload = { data : int; sn : int }
(** An operation's value, as raw integers (the event model lives below
    [Dds_spec.Value]). A negative [sn] encodes the bottom value. *)

type t =
  | Node_join of { node : int }  (** process enters (listening mode) *)
  | Node_leave of { node : int }  (** process leaves for good *)
  | Node_crash of { node : int }
      (** process crash-stops: gone for good like a leave, but injected
          by the fault layer rather than the churn engine's graceful
          departure path — kept distinct so audits can attribute a
          violation to the crash that caused it *)
  | Send of { src : int; dst : int; kind : string; broadcast : bool; lamport : int }
      (** one point-to-point transmission (a broadcast emits one per
          destination present at broadcast time). [lamport] is the
          sender's logical clock after stamping this send; successive
          sends by one process carry strictly increasing stamps, so
          [(src, lamport)] identifies the transmission. *)
  | Deliver of { src : int; dst : int; kind : string; lamport : int; sent : int }
      (** [lamport] is the receiver's clock after the
          [max(local, sent) + 1] update; [sent] echoes the matching
          [Send]'s stamp, which is what pairs the two events. *)
  | Drop of { src : int; dst : int; kind : string; reason : drop_reason }
  | Op_start of { span : int; node : int; op : op_kind; value : payload option }
      (** [value] is [Some] for writes: the datum and the sequence
          number the writer expects to assign (quorum protocols fix
          the final number mid-operation; completed writes carry the
          true one on their [Op_end]). *)
  | Op_phase of { span : int; node : int; phase : string }
      (** a named intermediate mark, e.g. ["inquiry-sent"] or
          ["quorum-met"] *)
  | Op_end of { span : int; node : int; op : op_kind; outcome : outcome; value : payload option }
      (** [value] is the operation's result when [Completed]: the value
          a read or join returned, the value a write actually wrote.
          [None] when [Aborted]. *)
  | Quorum_progress of { span : int; node : int; have : int; need : int; from : int }
      (** [from] is the process whose reply advanced the count to
          [have] ([-1] when unknown, e.g. traces written before the
          field existed). When [have = need] it names the responder
          that completed the quorum, which is what lets latency
          attribution ({!Dds_causal}) name stragglers exactly. *)
  | Gst_reached  (** the delay model's global stabilization time *)
  | Violation of { monitor : string; detail : string }
      (** an online monitor ({!Dds_monitor.Monitor}) caught an
          assumption or safety violation during a live run; [monitor]
          names the checker, [detail] is its human-readable finding *)
  | Fault_injected of { fault : string; src : int; dst : int; kind : string }
      (** the fault-injection layer ({!Dds_fault}) acted: [fault] names
          the action (["drop"], ["dup"], ["delay"], ["corrupt"],
          ["crash"], ["storm"], ["partition-start"], ...), [src]/[dst]
          the processes concerned ([-1] when not applicable — e.g. the
          single victim of a crash travels in [src]), [kind] the wire
          kind of the message hit ([""] for process faults). Every
          injected fault appears in the trace, so [dds audit] can
          attribute a violation to the fault that caused it. *)

type stamped = { at : Time.t; ev : t }

val op_kind_to_string : op_kind -> string
(** ["join"], ["read"], ["write"]. *)

val op_kind_of_string : string -> op_kind option

val outcome_to_string : outcome -> string
(** ["completed"], ["aborted"]. *)

val outcome_of_string : string -> outcome option

val drop_reason_to_string : drop_reason -> string
(** ["departed"], ["faulted"]. *)

val drop_reason_of_string : string -> drop_reason option

val pp : Format.formatter -> t -> unit

(** {1 Sinks}

    A sink buffers stamped events in emission order. Like {!Trace}, a
    sink created disabled drops everything without allocating, so the
    hot path of a million-operation sweep pays one branch per
    potential event. *)

type sink

val create : ?capacity:int -> ?first_span:int -> enabled:bool -> unit -> sink
(** [capacity] is an initial-buffer hint. [first_span] (default 0)
    offsets the {!fresh_span} counter — a live deployment gives each
    node's sink a disjoint base so span ids stay unique when per-node
    wire traces are merged for a single audit. *)

val enabled : sink -> bool
(** Callers building event payloads should test this first so a
    disabled sink allocates nothing. *)

val emit : sink -> at:Time.t -> t -> unit
(** Appends one event (no-op when disabled), then hands it to the
    observer if one is attached. *)

val on_emit : sink -> (stamped -> unit) -> unit
(** Attaches the streaming observer: every subsequent {!emit} calls it
    with the event just buffered (live monitors hook in here). One
    observer at a time — a second call replaces the first. The
    observer may itself [emit] (e.g. a [Violation]); such re-entrant
    events are buffered and observed in turn, so an observer must not
    react to the events it produces. No-op on a disabled sink. *)

val clear_observer : sink -> unit

val fresh_span : sink -> int
(** Allocates the next span id. Ids are unique per sink, starting at
    0, and are handed out even when the sink is disabled (they are
    just a counter, and protocol state machines carry them either
    way). *)

val events : sink -> stamped list
(** All events, oldest first. *)

val length : sink -> int

val clear : sink -> unit
(** Drops buffered events; span ids keep increasing. *)

val unclosed_spans : stamped list -> int list
(** Span ids with an [Op_start] but no matching [Op_end], ascending —
    the span-pairing invariant checked by tests ([[]] on a quiescent
    run) and reported by [dds inspect] on truncated ones. *)
