(** Typed telemetry events.

    Where {!Trace} records free-form strings for human eyes, an
    {!Event.t} is a structured fact about the run — a membership
    change, one message transmission, one operation phase — that
    exporters ({!Export}), tests and the [dds inspect] summarizer can
    all consume without parsing prose. Node identities are carried as
    raw integers (the underlying value of a [Pid.t]) so the event
    model lives below the network layer.

    Operations are described by {e spans}: a span id is allocated when
    an operation starts ({!fresh_span}), marks its progress with
    [Op_phase] / [Quorum_progress] events, and is closed by exactly
    one [Op_end]. Span ids are unique within a sink, so join, read and
    write latencies decompose per phase after the fact (see
    {!Export.spans_of_events}). *)

type op_kind = Join | Read | Write

type outcome =
  | Completed
  | Aborted  (** the process left before the operation responded *)

type drop_reason =
  | Departed  (** destination left between send and delivery *)
  | Faulted  (** lost by an injected network fault *)

type t =
  | Node_join of { node : int }  (** process enters (listening mode) *)
  | Node_leave of { node : int }  (** process leaves for good *)
  | Send of { src : int; dst : int; kind : string; broadcast : bool }
      (** one point-to-point transmission (a broadcast emits one per
          destination present at broadcast time) *)
  | Deliver of { src : int; dst : int; kind : string }
  | Drop of { src : int; dst : int; kind : string; reason : drop_reason }
  | Op_start of { span : int; node : int; op : op_kind }
  | Op_phase of { span : int; node : int; phase : string }
      (** a named intermediate mark, e.g. ["inquiry-sent"] or
          ["quorum-met"] *)
  | Op_end of { span : int; node : int; op : op_kind; outcome : outcome }
  | Quorum_progress of { span : int; node : int; have : int; need : int }
  | Gst_reached  (** the delay model's global stabilization time *)

type stamped = { at : Time.t; ev : t }

val op_kind_to_string : op_kind -> string
(** ["join"], ["read"], ["write"]. *)

val op_kind_of_string : string -> op_kind option

val outcome_to_string : outcome -> string
(** ["completed"], ["aborted"]. *)

val outcome_of_string : string -> outcome option

val drop_reason_to_string : drop_reason -> string
(** ["departed"], ["faulted"]. *)

val drop_reason_of_string : string -> drop_reason option

val pp : Format.formatter -> t -> unit

(** {1 Sinks}

    A sink buffers stamped events in emission order. Like {!Trace}, a
    sink created disabled drops everything without allocating, so the
    hot path of a million-operation sweep pays one branch per
    potential event. *)

type sink

val create : ?capacity:int -> enabled:bool -> unit -> sink
(** [capacity] is an initial-buffer hint. *)

val enabled : sink -> bool
(** Callers building event payloads should test this first so a
    disabled sink allocates nothing. *)

val emit : sink -> at:Time.t -> t -> unit
(** Appends one event (no-op when disabled). *)

val fresh_span : sink -> int
(** Allocates the next span id. Ids are unique per sink, starting at
    0, and are handed out even when the sink is disabled (they are
    just a counter, and protocol state machines carry them either
    way). *)

val events : sink -> stamped list
(** All events, oldest first. *)

val length : sink -> int

val clear : sink -> unit
(** Drops buffered events; span ids keep increasing. *)

val unclosed_spans : stamped list -> int list
(** Span ids with an [Op_start] but no matching [Op_end], ascending —
    the span-pairing invariant checked by tests ([[]] on a quiescent
    run) and reported by [dds inspect] on truncated ones. *)
