open Event

(* ------------------------------------------------------------------ *)
(* JSONL *)

(* Payload fields are flattened into the event object (["data"], ["sn"])
   and simply absent when the event carries no value, so traces from
   before the payload extension still parse. *)
let payload_fields = function
  | Some { Event.data; sn } -> [ ("data", Json.Int data); ("sn", Json.Int sn) ]
  | None -> []

let event_to_json { at; ev } =
  let t = ("t", Json.Int (Time.to_int at)) in
  match ev with
  | Node_join { node } -> Json.Obj [ t; ("e", String "node_join"); ("node", Int node) ]
  | Node_leave { node } -> Json.Obj [ t; ("e", String "node_leave"); ("node", Int node) ]
  | Node_crash { node } -> Json.Obj [ t; ("e", String "node_crash"); ("node", Int node) ]
  | Send { src; dst; kind; broadcast; lamport } ->
    Json.Obj
      [
        t; ("e", String "send"); ("src", Int src); ("dst", Int dst); ("kind", String kind);
        ("bcast", Bool broadcast); ("lc", Int lamport);
      ]
  | Deliver { src; dst; kind; lamport; sent } ->
    Json.Obj
      [
        t; ("e", String "deliver"); ("src", Int src); ("dst", Int dst); ("kind", String kind);
        ("lc", Int lamport); ("slc", Int sent);
      ]
  | Drop { src; dst; kind; reason } ->
    Json.Obj
      [
        t; ("e", String "drop"); ("src", Int src); ("dst", Int dst); ("kind", String kind);
        ("reason", String (drop_reason_to_string reason));
      ]
  | Op_start { span; node; op; value } ->
    Json.Obj
      ([
         t; ("e", String "op_start"); ("span", Int span); ("node", Int node);
         ("op", String (op_kind_to_string op));
       ]
      @ payload_fields value)
  | Op_phase { span; node; phase } ->
    Json.Obj
      [
        t; ("e", String "op_phase"); ("span", Int span); ("node", Int node);
        ("phase", String phase);
      ]
  | Op_end { span; node; op; outcome; value } ->
    Json.Obj
      ([
         t; ("e", String "op_end"); ("span", Int span); ("node", Int node);
         ("op", String (op_kind_to_string op));
         ("outcome", String (outcome_to_string outcome));
       ]
      @ payload_fields value)
  | Quorum_progress { span; node; have; need; from } ->
    Json.Obj
      ([
         t; ("e", String "quorum"); ("span", Int span); ("node", Int node); ("have", Int have);
         ("need", Int need);
       ]
      @ if from >= 0 then [ ("from", Json.Int from) ] else [])
  | Gst_reached -> Json.Obj [ t; ("e", String "gst") ]
  | Violation { monitor; detail } ->
    Json.Obj
      [ t; ("e", String "violation"); ("monitor", String monitor); ("detail", String detail) ]
  | Fault_injected { fault; src; dst; kind } ->
    Json.Obj
      [
        t; ("e", String "fault"); ("fault", String fault); ("src", Int src); ("dst", Int dst);
        ("kind", String kind);
      ]

let event_of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  let int name = field name Json.to_int_opt in
  let str name = field name Json.to_string_opt in
  (* Absent on traces that predate the field; 0 is the neutral stamp. *)
  let int_default name d =
    match Option.bind (Json.member name j) Json.to_int_opt with Some v -> v | None -> d
  in
  let payload =
    match (Option.bind (Json.member "data" j) Json.to_int_opt,
           Option.bind (Json.member "sn" j) Json.to_int_opt)
    with
    | Some data, Some sn -> Some { Event.data; sn }
    | _, _ -> None
  in
  let* tick = int "t" in
  if tick < 0 then Error "negative timestamp"
  else begin
    let at = Time.of_int tick in
    let* tag = str "e" in
    let* ev =
      match tag with
      | "node_join" ->
        let* node = int "node" in
        Ok (Node_join { node })
      | "node_leave" ->
        let* node = int "node" in
        Ok (Node_leave { node })
      | "node_crash" ->
        let* node = int "node" in
        Ok (Node_crash { node })
      | "send" ->
        let* src = int "src" in
        let* dst = int "dst" in
        let* kind = str "kind" in
        let broadcast =
          match Option.map (fun v -> v = Json.Bool true) (Json.member "bcast" j) with
          | Some b -> b
          | None -> false
        in
        Ok (Send { src; dst; kind; broadcast; lamport = int_default "lc" 0 })
      | "deliver" ->
        let* src = int "src" in
        let* dst = int "dst" in
        let* kind = str "kind" in
        Ok (Deliver { src; dst; kind; lamport = int_default "lc" 0; sent = int_default "slc" 0 })
      | "drop" ->
        let* src = int "src" in
        let* dst = int "dst" in
        let* kind = str "kind" in
        let* reason_s = str "reason" in
        (match drop_reason_of_string reason_s with
        | Some reason -> Ok (Drop { src; dst; kind; reason })
        | None -> Error (Printf.sprintf "unknown drop reason %S" reason_s))
      | "op_start" ->
        let* span = int "span" in
        let* node = int "node" in
        let* op_s = str "op" in
        (match op_kind_of_string op_s with
        | Some op -> Ok (Op_start { span; node; op; value = payload })
        | None -> Error (Printf.sprintf "unknown op kind %S" op_s))
      | "op_phase" ->
        let* span = int "span" in
        let* node = int "node" in
        let* phase = str "phase" in
        Ok (Op_phase { span; node; phase })
      | "op_end" ->
        let* span = int "span" in
        let* node = int "node" in
        let* op_s = str "op" in
        let* outcome_s = str "outcome" in
        (match (op_kind_of_string op_s, outcome_of_string outcome_s) with
        | Some op, Some outcome -> Ok (Op_end { span; node; op; outcome; value = payload })
        | None, _ -> Error (Printf.sprintf "unknown op kind %S" op_s)
        | _, None -> Error (Printf.sprintf "unknown outcome %S" outcome_s))
      | "quorum" ->
        let* span = int "span" in
        let* node = int "node" in
        let* have = int "have" in
        let* need = int "need" in
        Ok (Quorum_progress { span; node; have; need; from = int_default "from" (-1) })
      | "gst" -> Ok Gst_reached
      | "violation" ->
        let* monitor = str "monitor" in
        let* detail = str "detail" in
        Ok (Violation { monitor; detail })
      | "fault" ->
        let* fault = str "fault" in
        let* src = int "src" in
        let* dst = int "dst" in
        let* kind = str "kind" in
        Ok (Fault_injected { fault; src; dst; kind })
      | other -> Error (Printf.sprintf "unknown event tag %S" other)
    in
    Ok { at; ev }
  end

let jsonl_of_events evs =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Json.to_buffer buf (event_to_json e);
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf

let events_of_jsonl text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) acc rest
      else begin
        match Json.parse line with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok j -> (
          match event_of_json j with
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
          | Ok ev -> go (lineno + 1) (ev :: acc) rest)
      end
  in
  go 1 [] lines

(* Shard-tagged JSONL: the same per-line encoding with one extra
   ["shard"] field. [event_of_json] never looks at unknown fields, so
   tagged traces stay readable by every untagged consumer; the tagged
   reader below is what [dds audit] uses to split a merged multi-shard
   trace back into independently checkable registers. *)
let tagged_event_to_json shard e =
  match (shard, event_to_json e) with
  | Some s, Json.Obj fields -> Json.Obj (fields @ [ ("shard", Json.Int s) ])
  | (None | Some _), j -> j

let jsonl_of_tagged_events evs =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (shard, e) ->
      Json.to_buffer buf (tagged_event_to_json shard e);
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf

let tagged_events_of_jsonl text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) acc rest
      else begin
        match Json.parse line with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok j -> (
          match event_of_json j with
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
          | Ok ev ->
            let shard = Option.bind (Json.member "shard" j) Json.to_int_opt in
            go (lineno + 1) ((shard, ev) :: acc) rest)
      end
  in
  go 1 [] lines

(* Tolerant variant for killed runs: a malformed *final* line is the
   signature of a process that died mid-write, so it is skipped with a
   warning; a malformed line anywhere else still aborts the parse
   (that is corruption, not truncation). *)
let events_of_jsonl_lenient text =
  let lines = String.split_on_char '\n' text in
  let last_nonblank =
    List.fold_left
      (fun (i, last) line -> (i + 1, if String.trim line = "" then last else i))
      (1, 0) lines
    |> snd
  in
  let rec go lineno acc warnings = function
    | [] -> Ok (List.rev acc, List.rev warnings)
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) acc warnings rest
      else begin
        let parsed =
          match Json.parse line with
          | Error e -> Error e
          | Ok j -> event_of_json j
        in
        match parsed with
        | Ok ev -> go (lineno + 1) (ev :: acc) warnings rest
        | Error e when lineno = last_nonblank ->
          let w =
            Printf.sprintf "line %d: partial final line skipped (truncated run?): %s" lineno e
          in
          go (lineno + 1) acc (w :: warnings) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
      end
  in
  go 1 [] [] lines

(* The lenient reader for merged multi-shard live traces: keeps each
   line's shard tag (None when untagged) while still skipping one
   malformed final line. [dds audit] uses this as its single parse
   path — the strict/lenient choice must not change whether tags are
   seen, or a killed node's shards silently collapse into one. *)
let tagged_events_of_jsonl_lenient text =
  let lines = String.split_on_char '\n' text in
  let last_nonblank =
    List.fold_left
      (fun (i, last) line -> (i + 1, if String.trim line = "" then last else i))
      (1, 0) lines
    |> snd
  in
  let rec go lineno acc warnings = function
    | [] -> Ok (List.rev acc, List.rev warnings)
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) acc warnings rest
      else begin
        let parsed =
          match Json.parse line with
          | Error e -> Error (e, None)
          | Ok j -> (
            match event_of_json j with
            | Error e -> Error (e, None)
            | Ok ev -> Ok (Option.bind (Json.member "shard" j) Json.to_int_opt, ev))
        in
        match parsed with
        | Ok tagged -> go (lineno + 1) (tagged :: acc) warnings rest
        | Error (e, _) when lineno = last_nonblank ->
          let w =
            Printf.sprintf "line %d: partial final line skipped (truncated run?): %s" lineno e
          in
          go (lineno + 1) acc (w :: warnings) rest
        | Error (e, _) -> Error (Printf.sprintf "line %d: %s" lineno e)
      end
  in
  go 1 [] [] lines

(* ------------------------------------------------------------------ *)
(* Spans *)

type span = {
  id : int;
  node : int;
  op : Event.op_kind;
  started : Time.t;
  ended : Time.t;
  outcome : Event.outcome;
  phases : (string * Time.t) list;
}

type partial = {
  p_node : int;
  p_op : Event.op_kind;
  p_started : Time.t;
  mutable p_phases : (string * Time.t) list;  (* reversed *)
}

let spans_of_events evs =
  let open_tbl : (int, partial) Hashtbl.t = Hashtbl.create 64 in
  let done_rev = ref [] in
  List.iter
    (fun { at; ev } ->
      match ev with
      | Op_start { span; node; op; _ } ->
        Hashtbl.replace open_tbl span { p_node = node; p_op = op; p_started = at; p_phases = [] }
      | Op_phase { span; phase; _ } -> (
        match Hashtbl.find_opt open_tbl span with
        | Some p -> p.p_phases <- (phase, at) :: p.p_phases
        | None -> ())
      | Op_end { span; outcome; _ } -> (
        match Hashtbl.find_opt open_tbl span with
        | Some p ->
          Hashtbl.remove open_tbl span;
          done_rev :=
            {
              id = span;
              node = p.p_node;
              op = p.p_op;
              started = p.p_started;
              ended = at;
              outcome;
              phases = List.rev p.p_phases;
            }
            :: !done_rev
        | None -> ())
      | _ -> ())
    evs;
  let orphans =
    Hashtbl.fold (fun span _ acc -> span :: acc) open_tbl [] |> List.sort Int.compare
  in
  let completed =
    List.rev !done_rev
    |> List.stable_sort (fun a b -> Time.compare a.started b.started)
  in
  (completed, orphans)

let phase_durations s =
  let rec go prev = function
    | [] -> [ ("end", Time.diff s.ended prev) ]
    | (name, at) :: rest -> (name, Time.diff at prev) :: go at rest
  in
  go s.started s.phases

(* ------------------------------------------------------------------ *)
(* Chrome trace_event *)

let chrome_of_events evs =
  let spans, _orphans = spans_of_events evs in
  let nodes = Hashtbl.create 32 in
  let note_node n = if not (Hashtbl.mem nodes n) then Hashtbl.add nodes n () in
  List.iter
    (fun { ev; _ } ->
      match ev with
      | Node_join { node } | Node_leave { node } | Node_crash { node } -> note_node node
      | Op_start { node; _ } | Op_end { node; _ } -> note_node node
      | Send { src; dst; _ } | Deliver { src; dst; _ } | Drop { src; dst; _ } ->
        note_node src;
        note_node dst
      | Op_phase _ | Quorum_progress _ | Gst_reached | Violation _ | Fault_injected _ -> ())
    evs;
  let metadata =
    Hashtbl.fold (fun n () acc -> n :: acc) nodes []
    |> List.sort Int.compare
    |> List.map (fun n ->
           Json.Obj
             [
               ("ph", Json.String "M"); ("pid", Int n); ("tid", Int 0);
               ("name", String "process_name");
               ("args", Obj [ ("name", String (Printf.sprintf "node p%d" n)) ]);
             ])
  in
  let span_events =
    List.map
      (fun s ->
        Json.Obj
          [
            ("ph", Json.String "X");
            ("pid", Int s.node);
            ("tid", Int 0);
            ("ts", Int (Time.to_int s.started));
            ("dur", Int (Time.diff s.ended s.started));
            ("name", String (op_kind_to_string s.op));
            ("cat", String "op");
            ( "args",
              Obj
                [
                  ("span", Int s.id);
                  ("outcome", String (outcome_to_string s.outcome));
                  ( "phases",
                    Obj (List.map (fun (p, at) -> (p, Json.Int (Time.to_int at))) s.phases) );
                ] );
          ])
      spans
  in
  let instant ~pid ~ts ~name ~cat ~scope =
    Json.Obj
      [
        ("ph", Json.String "i"); ("pid", Int pid); ("tid", Int 0); ("ts", Int ts);
        ("name", String name); ("cat", String cat); ("s", String scope);
      ]
  in
  let instants =
    List.filter_map
      (fun { at; ev } ->
        let ts = Time.to_int at in
        match ev with
        | Node_join { node } -> Some (instant ~pid:node ~ts ~name:"enter" ~cat:"churn" ~scope:"p")
        | Node_leave { node } -> Some (instant ~pid:node ~ts ~name:"leave" ~cat:"churn" ~scope:"p")
        | Node_crash { node } -> Some (instant ~pid:node ~ts ~name:"crash" ~cat:"churn" ~scope:"p")
        | Fault_injected { fault; kind; src; _ } ->
          Some
            (instant
               ~pid:(Stdlib.max src 0)
               ~ts
               ~name:(if kind = "" then fault else Printf.sprintf "%s %s" fault kind)
               ~cat:"fault" ~scope:"p")
        | Drop { dst; kind; reason; _ } ->
          Some
            (instant ~pid:dst ~ts
               ~name:(Printf.sprintf "drop %s (%s)" kind (drop_reason_to_string reason))
               ~cat:"net" ~scope:"p")
        | Gst_reached -> Some (instant ~pid:0 ~ts ~name:"GST" ~cat:"model" ~scope:"g")
        | _ -> None)
      evs
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ span_events @ instants));
      ("displayTimeUnit", String "ms");
    ]

(* The chrome rendering keeps every span (id, outcome, phase marks in
   its [args]) and the churn/GST instants, so those reconstruct
   exactly; Send/Deliver are rendered only in aggregate and are gone.
   Net drop instants are also skipped on readback: their src is not
   recoverable from the instant's label. *)
let events_of_chrome json =
  let ( let* ) r f = Result.bind r f in
  let int name j =
    match Option.bind (Json.member name j) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  let str name j =
    match Option.bind (Json.member name j) Json.to_string_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  match Json.member "traceEvents" json with
  | Some (Json.List items) ->
    let rec go acc = function
      | [] -> Ok (List.concat (List.rev acc))
      | item :: rest ->
        let* evs =
          match Json.member "ph" item with
          | Some (Json.String "X") ->
            let* node = int "pid" item in
            let* ts = int "ts" item in
            let* dur = int "dur" item in
            let* op_s = str "name" item in
            let* op =
              match op_kind_of_string op_s with
              | Some op -> Ok op
              | None -> Error (Printf.sprintf "unknown op kind %S" op_s)
            in
            let* args =
              match Json.member "args" item with
              | Some a -> Ok a
              | None -> Error "span event without args"
            in
            let* span = int "span" args in
            let* outcome_s = str "outcome" args in
            let* outcome =
              match outcome_of_string outcome_s with
              | Some o -> Ok o
              | None -> Error (Printf.sprintf "unknown outcome %S" outcome_s)
            in
            let phases =
              match Json.member "phases" args with
              | Some (Json.Obj fields) ->
                List.filter_map
                  (fun (p, v) -> Option.map (fun t -> (p, t)) (Json.to_int_opt v))
                  fields
              | Some _ | None -> []
            in
            Ok
              (({ at = Time.of_int ts; ev = Op_start { span; node; op; value = None } }
               :: List.map
                    (fun (phase, t) ->
                      { at = Time.of_int t; ev = Op_phase { span; node; phase } })
                    phases)
              @ [
                  {
                    at = Time.of_int (ts + dur);
                    ev = Op_end { span; node; op; outcome; value = None };
                  };
                ])
          | Some (Json.String "i") -> (
            match (Json.member "cat" item, Json.member "name" item) with
            | Some (Json.String "churn"), Some (Json.String nm) -> (
              let* node = int "pid" item in
              let* ts = int "ts" item in
              match nm with
              | "enter" -> Ok [ { at = Time.of_int ts; ev = Node_join { node } } ]
              | "leave" -> Ok [ { at = Time.of_int ts; ev = Node_leave { node } } ]
              | "crash" -> Ok [ { at = Time.of_int ts; ev = Node_crash { node } } ]
              | _ -> Ok [])
            | Some (Json.String "model"), _ ->
              let* ts = int "ts" item in
              Ok [ { at = Time.of_int ts; ev = Gst_reached } ]
            | _ -> Ok [])
          | _ -> Ok []
        in
        go (evs :: acc) rest
    in
    let* all = go [] items in
    (* Per-span events are emitted start → phases → end with
       nondecreasing stamps, so a stable sort by time recovers a valid
       emission order. *)
    Ok (List.stable_sort (fun a b -> Time.compare a.at b.at) all)
  | Some _ | None -> Error "missing traceEvents array"

(* ------------------------------------------------------------------ *)
(* Causal message graph (DOT) *)

(* Each Send/Deliver is a vertex named [p<proc>_<lamport>] — unique
   because a process's Lamport clock strictly increases on both kinds
   of step. Edges: the process order (consecutive stamps on one
   process, drawn solid) and the message order (Send -> its Deliver,
   matched on the receiver's echoed [sent] stamp, drawn dashed). *)
let dot_of_events evs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph causality {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  (* Per-process chains, in emission order. *)
  let chains : (int, (int * string) list ref) Hashtbl.t = Hashtbl.create 32 in
  let push proc lamport label =
    let cell =
      match Hashtbl.find_opt chains proc with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.add chains proc c;
        c
    in
    cell := (lamport, label) :: !cell
  in
  List.iter
    (fun { at; ev } ->
      match ev with
      | Send { src; dst; kind; lamport; _ } ->
        push src lamport (Printf.sprintf "t=%d snd %s to p%d" (Time.to_int at) kind dst)
      | Deliver { src; dst; kind; lamport; _ } ->
        push dst lamport (Printf.sprintf "t=%d rcv %s from p%d" (Time.to_int at) kind src)
      | _ -> ())
    evs;
  let procs =
    Hashtbl.fold (fun p _ acc -> p :: acc) chains [] |> List.sort Int.compare
  in
  List.iter
    (fun p ->
      let entries = List.rev !(Hashtbl.find chains p) in
      List.iter
        (fun (lc, label) ->
          Buffer.add_string buf
            (Printf.sprintf "  p%d_%d [label=\"p%d.%d %s\"];\n" p lc p lc label))
        entries;
      let rec link = function
        | (a, _) :: ((b, _) :: _ as rest) ->
          Buffer.add_string buf (Printf.sprintf "  p%d_%d -> p%d_%d;\n" p a p b);
          link rest
        | [ _ ] | [] -> ()
      in
      link entries)
    procs;
  (* Message edges: a Deliver's (src, sent) names its Send vertex. *)
  List.iter
    (fun { ev; _ } ->
      match ev with
      | Deliver { src; dst; kind; lamport; sent } ->
        Buffer.add_string buf
          (Printf.sprintf "  p%d_%d -> p%d_%d [style=dashed, label=\"%s\", fontsize=8];\n" src
             sent dst lamport kind)
      | _ -> ())
    evs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Metrics *)

let metrics_to_json (s : Metrics.snapshot) =
  let hist (h : Metrics.histogram_snapshot) =
    Json.Obj
      [
        ("edges", Json.List (Array.to_list (Array.map (fun e -> Json.Float e) h.edges)));
        ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)));
        ("count", Int h.count);
        ("sum", Float h.sum);
        ("min", Float h.min);
        ("max", Float h.max);
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauge_values));
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist h)) s.histogram_values) );
    ]
