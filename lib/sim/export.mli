(** Serializing telemetry: JSONL event dumps, Chrome [trace_event]
    files, metrics snapshots.

    Three machine-readable views of one run:

    - {b JSONL} — one compact JSON object per event, in emission
      order. Lossless: {!events_of_jsonl} inverts {!jsonl_of_events},
      which is what [dds inspect] and cross-PR tooling consume.
    - {b Chrome trace} — the [trace_event] format loadable in
      [chrome://tracing] / Perfetto: one pid per node, every completed
      operation span as a ["X"] duration event (phase marks in its
      [args]), membership changes / drops / GST as instants.
    - {b metrics JSON} — a {!Metrics.snapshot} with counters, gauges
      and histogram buckets.

    All output is deterministic for a deterministic run: same seed,
    same bytes. *)

val event_to_json : Event.stamped -> Json.t

val event_of_json : Json.t -> (Event.stamped, string) result

val jsonl_of_events : Event.stamped list -> string
(** One event per line, each line a complete JSON object, trailing
    newline included. *)

val events_of_jsonl : string -> (Event.stamped list, string) result
(** Inverse of {!jsonl_of_events}; blank lines are skipped. Fails on
    the first malformed line, naming its 1-based number. *)

val tagged_event_to_json : int option -> Event.stamped -> Json.t
(** One event as the JSONL object {!jsonl_of_tagged_events} would
    write: [Some shard] appends the ["shard"] field, [None] is exactly
    {!event_to_json}. The live runtime streams through this so wire
    traces and simulated exports stay byte-compatible. *)

val jsonl_of_tagged_events : (int option * Event.stamped) list -> string
(** Like {!jsonl_of_events} with an extra ["shard"] field on every
    event carrying [Some shard] — how a sharded store exports the
    merged trace of its independent registers into one file. Untagged
    consumers ({!events_of_jsonl}, [dds inspect], [dds explain]) read
    the same file and simply ignore the tag. *)

val tagged_events_of_jsonl : string -> ((int option * Event.stamped) list, string) result
(** Inverse of {!jsonl_of_tagged_events}: each event paired with its
    shard tag ([None] on untagged lines, so plain traces parse too).
    [dds audit] groups on the tag to check each shard's register
    independently. *)

val events_of_jsonl_lenient : string -> (Event.stamped list * string list, string) result
(** Like {!events_of_jsonl} but tolerant of truncation: a malformed
    {e final} non-blank line — the signature of a run killed mid-write
    — is skipped and reported as a warning instead of aborting the
    parse. Malformed lines anywhere else (corruption rather than
    truncation) still fail. Returns [(events, warnings)]. *)

val tagged_events_of_jsonl_lenient :
  string -> ((int option * Event.stamped) list * string list, string) result
(** {!tagged_events_of_jsonl} with the truncation tolerance of
    {!events_of_jsonl_lenient} — the parse path for merged live traces,
    where a SIGTERM'd node leaves a partial final line but its shard
    tags must survive. *)

(** {1 Spans} *)

type span = {
  id : int;
  node : int;
  op : Event.op_kind;
  started : Time.t;
  ended : Time.t;
  outcome : Event.outcome;
  phases : (string * Time.t) list;  (** marks in emission order *)
}
(** One completed operation reconstructed from its
    [Op_start]/[Op_phase]/[Op_end] events. *)

val spans_of_events : Event.stamped list -> span list * int list
(** [(completed, orphans)]: completed spans in start order, plus the
    ids of spans opened but never closed (operations still in flight
    when the trace stopped). *)

val phase_durations : span -> (string * int) list
(** Decomposes the span into consecutive segments: each phase mark is
    charged the ticks since the previous mark (or the start), and a
    final ["end"] segment covers last-mark to response. The segments
    sum to the span's total latency. *)

(** {1 Whole-file renderings} *)

val chrome_of_events : Event.stamped list -> Json.t
(** An [Obj] with a [traceEvents] array — spans as ["X"] events
    ([ts]/[dur] in ticks, reported as microseconds), process-name
    metadata per node, instants for joins, leaves, drops and GST. *)

val events_of_chrome : Json.t -> (Event.stamped list, string) result
(** Partial inverse of {!chrome_of_events}, for [dds inspect] on a
    chrome-format file: spans (with phases and outcome), membership
    changes and GST reconstruct exactly; per-message [Send]/[Deliver]
    events are not representable in the chrome rendering and are
    absent from the result. *)

val dot_of_events : Event.stamped list -> string
(** The causal message graph in Graphviz DOT: one vertex per [Send] /
    [Deliver] (named [p<proc>_<lamport>]), solid edges for the
    process order (consecutive Lamport stamps on one process), dashed
    edges for the message order (each [Send] to the [Deliver] that
    echoes its stamp). Render with [dot -Tsvg]. *)

val metrics_to_json : Metrics.snapshot -> Json.t
