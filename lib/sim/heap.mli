(** Imperative binary min-heap.

    The simulator's event queue needs [insert], [pop_min] and [peek] in
    O(log n) with stable behaviour under millions of operations. The
    heap is polymorphic in its elements and takes the ordering at
    creation time. *)

type 'a t
(** A mutable min-heap of ['a] values. *)

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val insert : 'a t -> 'a -> unit
(** Adds an element. O(log n). *)

val peek : 'a t -> 'a option
(** The minimum element, without removing it. O(1). *)

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. O(log n). *)

val clear : 'a t -> unit
(** Removes every element. *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructive: the heap contents in ascending order. O(n log n);
    intended for tests and debugging. *)
