type t = {
  edges : float array;  (* strictly increasing upper edges *)
  counts : int array;  (* length edges + 1; last is overflow *)
  mutable n : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let create ~edges =
  let k = Array.length edges in
  if k = 0 then invalid_arg "Histogram.create: no bucket edges";
  for i = 1 to k - 1 do
    if edges.(i) <= edges.(i - 1) then
      invalid_arg "Histogram.create: edges must be strictly increasing"
  done;
  { edges = Array.copy edges; counts = Array.make (k + 1) 0; n = 0; sum = 0.0; min = infinity; max = neg_infinity }

let linear ~lo ~step ~buckets =
  if step <= 0.0 then invalid_arg "Histogram.linear: step must be > 0";
  if buckets < 1 then invalid_arg "Histogram.linear: buckets must be >= 1";
  create ~edges:(Array.init buckets (fun i -> lo +. (float_of_int i *. step)))

let exponential ~lo ~factor ~buckets =
  if lo <= 0.0 then invalid_arg "Histogram.exponential: lo must be > 0";
  if factor <= 1.0 then invalid_arg "Histogram.exponential: factor must be > 1";
  if buckets < 1 then invalid_arg "Histogram.exponential: buckets must be >= 1";
  let e = Array.make buckets lo in
  for i = 1 to buckets - 1 do
    e.(i) <- e.(i - 1) *. factor
  done;
  create ~edges:e

(* First bucket whose upper edge is >= x; the overflow bucket when x
   is above every edge. *)
let bucket_of t x =
  let k = Array.length t.edges in
  if x > t.edges.(k - 1) then k
  else begin
    let lo = ref 0 and hi = ref (k - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if x <= t.edges.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

let add t x =
  let b = bucket_of t x in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_int t x = add t (float_of_int x)
let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n
let min_value t = if t.n = 0 then nan else t.min
let max_value t = if t.n = 0 then nan else t.max

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p outside [0,100]";
  if t.n = 0 then nan
  else begin
    let rank = Stdlib.max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.n))) in
    let k = Array.length t.edges in
    let acc = ref 0 and found = ref None in
    (try
       for i = 0 to k do
         acc := !acc + t.counts.(i);
         if !acc >= rank then begin
           found := Some i;
           raise Exit
         end
       done
     with Exit -> ());
    match !found with
    | Some i when i < k -> t.edges.(i)
    | Some _ -> t.max (* overflow bucket: the exact max is the tightest bound we have *)
    | None -> t.max
  end

let median t = percentile t 50.0
let edges t = Array.copy t.edges
let counts t = Array.copy t.counts

let merge a b =
  if a.edges <> b.edges then invalid_arg "Histogram.merge: bucket layouts differ";
  let m = create ~edges:a.edges in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.n <- a.n + b.n;
  m.sum <- a.sum +. b.sum;
  m.min <- Stdlib.min a.min b.min;
  m.max <- Stdlib.max a.max b.max;
  m

let pp_summary ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.2f p50<=%.2f p99<=%.2f max=%.2f" t.n (mean t) (median t)
      (percentile t 99.0) t.max
