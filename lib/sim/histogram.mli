(** Fixed-bucket streaming histograms.

    The memory-bounded counterpart of {!Stats}: instead of keeping
    every sample (exact percentiles, O(n) memory), a histogram keeps
    one counter per pre-declared bucket plus running sum/min/max —
    O(buckets) memory regardless of how many samples flow through, at
    the cost of percentiles quantized to bucket upper edges. Use
    {!Stats} for end-of-run tables over thousands of samples; use this
    for million-operation sweeps and for metrics snapshots exported
    mid-run (see {!Metrics.histogram}). *)

type t

val create : edges:float array -> t
(** [create ~edges] has [Array.length edges + 1] buckets: sample [x]
    falls in the first bucket whose upper edge satisfies
    [x <= edges.(i)], and above the last edge in the implicit
    overflow bucket.
    @raise Invalid_argument if [edges] is empty or not strictly
    increasing. *)

val linear : lo:float -> step:float -> buckets:int -> t
(** Edges [lo, lo+step, ..., lo + (buckets-1)*step].
    @raise Invalid_argument if [step <= 0] or [buckets < 1]. *)

val exponential : lo:float -> factor:float -> buckets:int -> t
(** Edges [lo, lo*factor, lo*factor^2, ...].
    @raise Invalid_argument if [lo <= 0], [factor <= 1] or
    [buckets < 1]. *)

val add : t -> float -> unit

val add_int : t -> int -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** Exact (from the running sum); [nan] when empty. *)

val min_value : t -> float
(** Exact; [nan] when empty. *)

val max_value : t -> float
(** Exact; [nan] when empty. *)

val percentile : t -> float -> float
(** Nearest-rank percentile quantized up to the containing bucket's
    upper edge; samples in the overflow bucket report the exact
    maximum. [nan] when empty.
    @raise Invalid_argument if [p] is outside [\[0, 100\]]. *)

val median : t -> float

val edges : t -> float array
(** The bucket upper edges, as given at creation (a copy). *)

val counts : t -> int array
(** Per-bucket counts, one per edge plus the trailing overflow
    bucket (a copy). *)

val merge : t -> t -> t
(** Fresh histogram holding both inputs' mass.
    @raise Invalid_argument if the two bucket layouts differ. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line [n/mean/p50/p99/max] rendering, like
    {!Stats.pp_summary}. *)
