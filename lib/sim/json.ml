type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string x =
  if Float.is_nan x then "null" (* JSON has no nan; degrade gracefully *)
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x -> Buffer.add_string buf (float_to_string x)
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      members;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing — a plain recursive-descent reader over the string. *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
               in
               (* Encode the code point as UTF-8; surrogate pairs are
                  left as-is (two separate 3-byte sequences), which is
                  lossy but sufficient for telemetry payloads. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end;
               pos := !pos + 5
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d = ref 0 in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance (); incr d
      done;
      !d
    in
    if digits () = 0 then fail "expected digits";
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      if digits () = 0 then fail "expected fraction digits"
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      if digits () = 0 then fail "expected exponent digits"
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        List (elements [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function Obj ms -> List.assoc_opt key ms | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | Float x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_float_opt = function Float x -> Some x | Int n -> Some (float_of_int n) | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
