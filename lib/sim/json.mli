(** Minimal JSON values, printing and parsing.

    The repository deliberately depends on no JSON library; this is
    just enough of RFC 8259 for the telemetry exporters ({!Export})
    to write JSONL / Chrome-trace / metrics files and for
    [dds inspect] and the golden-file tests to read them back.
    Printing is compact (no whitespace) and deterministic: object
    members keep the order they were built in, floats render with
    [%.17g] round-tripping only when needed. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Parses one JSON document (surrounding whitespace allowed). Numbers
    without ['.'], ['e'] or ['E'] parse as [Int], everything else as
    [Float]. Errors carry a character offset. *)

(** {1 Accessors} (total — [None] on shape mismatch) *)

val member : string -> t -> t option
(** First member with that key, for [Obj]. *)

val to_int_opt : t -> int option
(** [Int n] or integral [Float]. *)

val to_float_opt : t -> float option

val to_string_opt : t -> string option

val to_list_opt : t -> t list option
