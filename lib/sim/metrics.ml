type t = {
  counters : (string, int ref) Hashtbl.t;
  gauge_tbl : (string, float ref) Hashtbl.t;
  hist_tbl : (string, Histogram.t) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32; gauge_tbl = Hashtbl.create 8; hist_tbl = Hashtbl.create 8 }

let cell t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let add t name v = cell t name := !(cell t name) + v
let incr t name = add t name 1
let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let sorted_bindings fold extract tbl =
  fold (fun k v acc -> (k, extract v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_list t = sorted_bindings Hashtbl.fold (fun r -> !r) t.counters

let set_gauge t name v =
  match Hashtbl.find_opt t.gauge_tbl name with
  | Some r -> r := v
  | None -> Hashtbl.add t.gauge_tbl name (ref v)

let gauge t name = Option.map ( ! ) (Hashtbl.find_opt t.gauge_tbl name)
let gauges t = sorted_bindings Hashtbl.fold (fun r -> !r) t.gauge_tbl

let histogram t name ~edges =
  match Hashtbl.find_opt t.hist_tbl name with
  | Some h -> h
  | None ->
    let h = Histogram.create ~edges in
    Hashtbl.add t.hist_tbl name h;
    h

let observe t name ~edges x = Histogram.add (histogram t name ~edges) x
let histograms t = sorted_bindings Hashtbl.fold (fun h -> h) t.hist_tbl

type histogram_snapshot = {
  edges : float array;
  counts : int array;
  count : int;
  sum : float;
  min : float;
  max : float;
}

type snapshot = {
  counters : (string * int) list;
  gauge_values : (string * float) list;
  histogram_values : (string * histogram_snapshot) list;
}

let snapshot_histogram h =
  {
    edges = Histogram.edges h;
    counts = Histogram.counts h;
    count = Histogram.count h;
    sum = Histogram.total h;
    min = Histogram.min_value h;
    max = Histogram.max_value h;
  }

let snapshot t =
  {
    counters = to_list t;
    gauge_values = gauges t;
    histogram_values = List.map (fun (k, h) -> (k, snapshot_histogram h)) (histograms t);
  }

let reset (t : t) =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauge_tbl;
  Hashtbl.reset t.hist_tbl

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-24s %d@." k v) (to_list t);
  List.iter (fun (k, v) -> Format.fprintf ppf "%-24s %g@." k v) (gauges t);
  List.iter
    (fun (k, h) -> Format.fprintf ppf "%-24s %a@." k Histogram.pp_summary h)
    (histograms t)
