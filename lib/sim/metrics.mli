(** Named counters, gauges and histograms for a simulated run.

    Subsystems bump counters ("msg.sent", "msg.dropped", "churn.join",
    ...), set gauges (last-write-wins point-in-time values) and feed
    streaming {!Histogram}s (e.g. per-operation latencies) through a
    shared registry; experiment reports read them back at the end of a
    run, and {!snapshot} freezes the whole registry into a plain value
    the {!Export} layer can serialize. Purely in-memory and
    per-deployment — not a global singleton — so concurrent
    deployments never share state.

    {b Domain safety.} A registry is unsynchronized mutable state:
    like {!Rng.t} it must stay confined to one domain. Parallel
    engine jobs each create their own deployment (hence their own
    registry); the pool's own cross-domain bookkeeping lives in
    [Dds_engine.Pool] behind atomics, not here. *)

type t

val create : unit -> t

(** {1 Counters} *)

val incr : t -> string -> unit
(** Adds 1 to the named counter, creating it at 0 first if needed. *)

val add : t -> string -> int -> unit
(** Adds an arbitrary amount. *)

val get : t -> string -> int
(** Current value; 0 for a counter never touched. *)

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Gauges} *)

val set_gauge : t -> string -> float -> unit
(** Sets a point-in-time value (last write wins). *)

val gauge : t -> string -> float option
(** Current value; [None] for a gauge never set. *)

val gauges : t -> (string * float) list
(** All gauges, sorted by name. *)

(** {1 Histograms} *)

val histogram : t -> string -> edges:float array -> Histogram.t
(** The named histogram, created with [edges] on first use. Later
    calls return the existing histogram and ignore [edges] (layouts
    are fixed at first registration). *)

val observe : t -> string -> edges:float array -> float -> unit
(** [Histogram.add (histogram t name ~edges) x]. *)

val histograms : t -> (string * Histogram.t) list
(** All histograms, sorted by name. *)

(** {1 Snapshot} *)

type histogram_snapshot = {
  edges : float array;
  counts : int array;  (** one per edge, plus the overflow bucket *)
  count : int;
  sum : float;
  min : float;  (** [nan] when empty *)
  max : float;  (** [nan] when empty *)
}

type snapshot = {
  counters : (string * int) list;
  gauge_values : (string * float) list;
  histogram_values : (string * histogram_snapshot) list;
}
(** All three families, each sorted by name — a stable, immutable
    image of the registry. *)

val snapshot : t -> snapshot

val reset : t -> unit
(** Forgets every counter, gauge and histogram. *)

val pp : Format.formatter -> t -> unit
