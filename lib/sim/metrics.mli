(** Named counters for a simulated run.

    Subsystems bump counters ("msg.sent", "msg.dropped", "churn.join",
    ...) through a shared registry; experiment reports read them back
    at the end of a run. Purely in-memory and per-deployment — not a
    global singleton — so concurrent deployments never share state. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Adds 1 to the named counter, creating it at 0 first if needed. *)

val add : t -> string -> int -> unit
(** Adds an arbitrary amount. *)

val get : t -> string -> int
(** Current value; 0 for a counter never touched. *)

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
