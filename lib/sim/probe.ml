type handler = { enter : string -> unit; exit : string -> unit }

let handler : handler option ref = ref None

let set_handler h = handler := h

let span name f =
  match !handler with
  | None -> f ()
  | Some h ->
    h.enter name;
    Fun.protect ~finally:(fun () -> h.exit name) f
