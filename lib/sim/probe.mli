(** Settable phase-timing hook.

    [span name f] times [f] under [name] when a handler is installed
    and is a plain call otherwise — one load and one branch, so
    instrumented hot paths (deployment construction, rng seeding,
    result merging) cost nothing in unprofiled runs.

    The simulator side only ever {e emits} through this interface; the
    engine profiler (lib/profile) installs the one handler at startup
    when profiling is requested. Handlers must be installed before any
    worker domain is spawned and left in place until the process
    exits: the reference is written once and then only read. *)

type handler = {
  enter : string -> unit;  (** called with the phase name before [f] *)
  exit : string -> unit;  (** called with the same name after [f], even on exceptions *)
}

val set_handler : handler option -> unit
(** Install (or clear) the process-wide handler. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], bracketed by the handler when one is
    installed. Exceptions propagate; [exit] still runs. *)
