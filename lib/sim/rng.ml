type t = { mutable state : int64 }

(* SplitMix64 constants, from the reference implementation. *)
let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = Int64.of_int seed }

let bits64 g =
  g.state <- Int64.add g.state gamma;
  mix g.state

let split g =
  let seed = bits64 g in
  { state = mix seed }

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling: draw a 63-bit value and retry when it falls in
     the final partial block of size [max_int mod bound], so every
     residue class is equally likely. *)
  let bound64 = Int64.of_int bound in
  let limit = Int64.(sub max_int (rem max_int bound64)) in
  let rec loop () =
    let raw = Int64.shift_right_logical (bits64 g) 1 in
    if Int64.compare raw limit >= 0 then loop ()
    else Int64.to_int (Int64.rem raw bound64)
  in
  loop ()

let int_in_range g ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int g (hi - lo + 1)

let float g bound =
  let raw = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float raw *. (1.0 /. 9007199254740992.0) *. bound

let bool g = Int64.(logand (bits64 g) 1L) = 1L

let pick g arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int g (Array.length arr))

let pick_list g l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int g (List.length l))

let shuffle_in_place g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
