(** Deterministic pseudo-random number generation.

    Every source of randomness in the simulator (message delays, churn
    victim selection, workload arrival times) draws from an explicit
    {!t} value seeded at deployment creation, so a whole simulated
    execution is a pure function of its seed. The generator is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny state, good
    statistical quality, and cheap {!split}ting into independent
    streams so that subsystems cannot perturb each other's draws.

    {b Domain safety.} A [t] is plain mutable state with no lock: it
    must stay confined to the domain that created it. The module keeps
    no global state (in particular it never touches [Stdlib.Random]),
    so the engine's rule — each parallel job builds its own generator
    from its own seed — makes concurrent simulations both safe and
    bit-for-bit identical to sequential ones. *)

type t
(** A mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] is a fresh generator determined entirely by [seed]. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    independent of the remainder of [g]'s stream. Used to give each
    subsystem (network, churn, workload) its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range g ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val pick : t -> 'a array -> 'a
(** [pick g arr] is a uniformly chosen element of [arr].
    @raise Invalid_argument if [arr] is empty. *)

val pick_list : t -> 'a list -> 'a
(** [pick_list g l] is a uniformly chosen element of [l].
    @raise Invalid_argument if [l] is empty. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle of [arr], in place. *)
