type tag = { actor : int; kind : string }

let untagged = { actor = -1; kind = "" }

type event = {
  time : Time.t;
  seq : int;
  tag : tag;
  callback : unit -> unit;
  mutable cancelled : bool;
}

type token = event

type candidate = event

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable fired : int;
  mutable chooser : (candidate array -> int) option;
  queue : event Heap.t;
}

let compare_events a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    clock = Time.zero;
    next_seq = 0;
    fired = 0;
    chooser = None;
    queue = Heap.create ~cmp:compare_events ();
  }

let now s = s.clock

let schedule_at s ?(tag = untagged) time callback =
  if Time.(time < s.clock) then
    invalid_arg
      (Format.asprintf "Scheduler.schedule_at: %a is in the past (now %a)" Time.pp time
         Time.pp s.clock);
  let ev = { time; seq = s.next_seq; tag; callback; cancelled = false } in
  s.next_seq <- s.next_seq + 1;
  Heap.insert s.queue ev;
  ev

let schedule_after s ?tag d callback =
  if d < 0 then invalid_arg "Scheduler.schedule_after: negative delay";
  schedule_at s ?tag (Time.add s.clock d) callback

let cancel _s token = token.cancelled <- true
let pending s = Heap.length s.queue

let set_chooser s chooser = s.chooser <- chooser
let choosing s = Option.is_some s.chooser

let candidate_time (ev : candidate) = ev.time
let candidate_tag (ev : candidate) = ev.tag
let candidate_seq (ev : candidate) = ev.seq

let fire s ev =
  s.clock <- ev.time;
  s.fired <- s.fired + 1;
  ev.callback ()

(* Pop every non-cancelled event sharing the minimal time, in seq
   order. Cancelled events encountered on the way are dropped. *)
let pop_ready s =
  let rec head () =
    match Heap.pop s.queue with
    | None -> None
    | Some ev when ev.cancelled -> head ()
    | Some ev -> Some ev
  in
  match head () with
  | None -> []
  | Some first ->
    let rec rest acc =
      match Heap.peek s.queue with
      | Some ev when ev.cancelled ->
        ignore (Heap.pop s.queue);
        rest acc
      | Some ev when Time.compare ev.time first.time = 0 ->
        ignore (Heap.pop s.queue);
        rest (ev :: acc)
      | Some _ | None -> List.rev acc
    in
    first :: rest []

let pending_candidates s =
  List.filter (fun ev -> not ev.cancelled) (Heap.to_sorted_list s.queue)

let step s =
  match s.chooser with
  | None ->
    let rec next () =
      match Heap.pop s.queue with
      | None -> false
      | Some ev when ev.cancelled -> next ()
      | Some ev ->
        fire s ev;
        true
    in
    next ()
  | Some choose -> (
    match pop_ready s with
    | [] -> false
    | [ ev ] ->
      fire s ev;
      true
    | ready ->
      let arr = Array.of_list ready in
      let i = choose arr in
      if i < 0 || i >= Array.length arr then
        invalid_arg
          (Printf.sprintf "Scheduler.step: chooser picked %d of %d candidates" i
             (Array.length arr));
      Array.iteri (fun j ev -> if j <> i then Heap.insert s.queue ev) arr;
      fire s arr.(i);
      true)

let run_until s horizon =
  let rec loop () =
    match Heap.peek s.queue with
    | Some ev when ev.cancelled ->
      ignore (Heap.pop s.queue);
      loop ()
    | Some ev when Time.(ev.time <= horizon) ->
      if step s then loop ()
    | Some _ | None -> ()
  in
  loop ();
  if Time.(horizon > s.clock) then s.clock <- horizon

let run s ?max_events () =
  let budget = match max_events with None -> max_int | Some b -> b in
  let rec loop remaining = if remaining > 0 && step s then loop (remaining - 1) in
  loop budget

let events_fired s = s.fired
