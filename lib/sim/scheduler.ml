type event = {
  time : Time.t;
  seq : int;
  callback : unit -> unit;
  mutable cancelled : bool;
}

type token = event

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable fired : int;
  queue : event Heap.t;
}

let compare_events a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  { clock = Time.zero; next_seq = 0; fired = 0; queue = Heap.create ~cmp:compare_events () }

let now s = s.clock

let schedule_at s time callback =
  if Time.(time < s.clock) then
    invalid_arg
      (Format.asprintf "Scheduler.schedule_at: %a is in the past (now %a)" Time.pp time
         Time.pp s.clock);
  let ev = { time; seq = s.next_seq; callback; cancelled = false } in
  s.next_seq <- s.next_seq + 1;
  Heap.insert s.queue ev;
  ev

let schedule_after s d callback =
  if d < 0 then invalid_arg "Scheduler.schedule_after: negative delay";
  schedule_at s (Time.add s.clock d) callback

let cancel _s token = token.cancelled <- true
let pending s = Heap.length s.queue

let step s =
  let rec next () =
    match Heap.pop s.queue with
    | None -> false
    | Some ev when ev.cancelled -> next ()
    | Some ev ->
      s.clock <- ev.time;
      s.fired <- s.fired + 1;
      ev.callback ();
      true
  in
  next ()

let run_until s horizon =
  let rec loop () =
    match Heap.peek s.queue with
    | Some ev when ev.cancelled ->
      ignore (Heap.pop s.queue);
      loop ()
    | Some ev when Time.(ev.time <= horizon) ->
      if step s then loop ()
    | Some _ | None -> ()
  in
  loop ();
  if Time.(horizon > s.clock) then s.clock <- horizon

let run s ?max_events () =
  let budget = match max_events with None -> max_int | Some b -> b in
  let rec loop remaining = if remaining > 0 && step s then loop (remaining - 1) in
  loop budget

let events_fired s = s.fired
