(** Discrete-event scheduler.

    The heart of the simulation substrate: a virtual clock plus an
    ordered queue of pending events. An event is an arbitrary callback
    scheduled for a time point; events at the same time fire in the
    order they were scheduled (FIFO tie-breaking via a sequence
    number), which keeps whole executions deterministic.

    Callbacks may schedule further events, including at the current
    time (they fire later in the same tick). Scheduling in the past is
    an error: the model's causality must be respected by construction.

    {b Choice points.} The model checker ({!Dds_check.Check}) needs to
    explore {e every} order in which same-time events could fire, not
    just the FIFO one. Installing a chooser with {!set_chooser} turns
    each tick with two or more ready events into an explicit choice
    point: the scheduler gathers all non-cancelled events at the
    minimal queued time (in seq order — a canonical, replay-stable
    enumeration) and asks the chooser which fires next; the rest are
    re-queued and offered again. Without a chooser the behaviour is
    exactly the historical FIFO order, so ordinary simulations are
    untouched. *)

type t
(** A scheduler instance: clock + event queue. *)

type token
(** Handle to a scheduled event, used to cancel it (e.g. a node's
    pending timer when the node leaves the system). *)

type tag = { actor : int; kind : string }
(** Checker-facing identity of an event. [actor] is the node the event
    acts upon ([Pid.to_int]), or [-1] for global/untagged events; the
    partial-order reduction only commutes events whose actors are both
    non-negative and distinct. [kind] is a human-readable label
    ("deliver write_ack p2->p0 ...", "timer", ...) used in rendered
    schedules and state fingerprints. Events scheduled without a tag
    get [{actor = -1; kind = ""}] and are treated as dependent with
    everything — always sound, never unsound, merely less reduced. *)

type candidate
(** A ready event offered at a choice point. *)

val create : unit -> t
(** A scheduler with the clock at {!Time.zero} and no pending events. *)

val now : t -> Time.t
(** The current virtual time. *)

val schedule_at : t -> ?tag:tag -> Time.t -> (unit -> unit) -> token
(** [schedule_at s time f] queues [f] to run when the clock reaches
    [time].
    @raise Invalid_argument if [time] is before [now s]. *)

val schedule_after : t -> ?tag:tag -> int -> (unit -> unit) -> token
(** [schedule_after s d f] is [schedule_at s (Time.add (now s) d) f].
    @raise Invalid_argument if [d < 0]. *)

val cancel : t -> token -> unit
(** Cancels a pending event. Cancelling an already-fired or
    already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    swept; useful only as an upper bound). *)

val set_chooser : t -> (candidate array -> int) option -> unit
(** [set_chooser s (Some f)] routes every subsequent tick with two or
    more ready events through [f]: it receives the candidates in seq
    order and returns the index to fire; the others are re-queued.
    [set_chooser s None] restores FIFO order.
    A chooser returning an out-of-range index raises
    [Invalid_argument] at the next {!step}. *)

val choosing : t -> bool
(** Whether a chooser is currently installed. Subsystems use this to
    decide whether paying for descriptive event tags is worthwhile. *)

val candidate_time : candidate -> Time.t
val candidate_tag : candidate -> tag
val candidate_seq : candidate -> int

val pending_candidates : t -> candidate list
(** All non-cancelled queued events in (time, seq) order. O(n log n);
    used by the checker to fingerprint scheduler state, and by tests. *)

val step : t -> bool
(** Fires the single next event, advancing the clock to its time.
    Returns [false] when the queue is empty (clock unchanged). *)

val run_until : t -> Time.t -> unit
(** [run_until s horizon] fires every event scheduled strictly before
    or at [horizon], then sets the clock to [horizon]. *)

val run : t -> ?max_events:int -> unit -> unit
(** Runs until the queue is empty, or until [max_events] events have
    fired ([max_events] guards against runaway executions; default
    unlimited). *)

val events_fired : t -> int
(** Total number of callbacks executed so far. *)
