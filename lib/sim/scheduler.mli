(** Discrete-event scheduler.

    The heart of the simulation substrate: a virtual clock plus an
    ordered queue of pending events. An event is an arbitrary callback
    scheduled for a time point; events at the same time fire in the
    order they were scheduled (FIFO tie-breaking via a sequence
    number), which keeps whole executions deterministic.

    Callbacks may schedule further events, including at the current
    time (they fire later in the same tick). Scheduling in the past is
    an error: the model's causality must be respected by construction. *)

type t
(** A scheduler instance: clock + event queue. *)

type token
(** Handle to a scheduled event, used to cancel it (e.g. a node's
    pending timer when the node leaves the system). *)

val create : unit -> t
(** A scheduler with the clock at {!Time.zero} and no pending events. *)

val now : t -> Time.t
(** The current virtual time. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> token
(** [schedule_at s time f] queues [f] to run when the clock reaches
    [time].
    @raise Invalid_argument if [time] is before [now s]. *)

val schedule_after : t -> int -> (unit -> unit) -> token
(** [schedule_after s d f] is [schedule_at s (Time.add (now s) d) f].
    @raise Invalid_argument if [d < 0]. *)

val cancel : t -> token -> unit
(** Cancels a pending event. Cancelling an already-fired or
    already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    swept; useful only as an upper bound). *)

val step : t -> bool
(** Fires the single next event, advancing the clock to its time.
    Returns [false] when the queue is empty (clock unchanged). *)

val run_until : t -> Time.t -> unit
(** [run_until s horizon] fires every event scheduled strictly before
    or at [horizon], then sets the clock to [horizon]. *)

val run : t -> ?max_events:int -> unit -> unit
(** Runs until the queue is empty, or until [max_events] events have
    fired ([max_events] guards against runaway executions; default
    unlimited). *)

val events_fired : t -> int
(** Total number of callbacks executed so far. *)
