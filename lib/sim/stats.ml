type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : float array option; (* cache invalidated on add *)
}

let create () = { data = [||]; size = 0; sorted = None }

let add s x =
  let cap = Array.length s.data in
  if s.size = cap then begin
    let data = Array.make (if cap = 0 then 16 else cap * 2) 0.0 in
    Array.blit s.data 0 data 0 s.size;
    s.data <- data
  end;
  s.data.(s.size) <- x;
  s.size <- s.size + 1;
  s.sorted <- None

let add_int s x = add s (float_of_int x)
let count s = s.size

let total s =
  let acc = ref 0.0 in
  for i = 0 to s.size - 1 do
    acc := !acc +. s.data.(i)
  done;
  !acc

let mean s = if s.size = 0 then nan else total s /. float_of_int s.size

let fold f init s =
  let acc = ref init in
  for i = 0 to s.size - 1 do
    acc := f !acc s.data.(i)
  done;
  !acc

let min_value s = if s.size = 0 then nan else fold Float.min infinity s
let max_value s = if s.size = 0 then nan else fold Float.max neg_infinity s

let stddev s =
  if s.size = 0 then nan
  else begin
    let m = mean s in
    let sq = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 s in
    sqrt (sq /. float_of_int s.size)
  end

let sorted_samples s =
  match s.sorted with
  | Some arr -> arr
  | None ->
    let arr = Array.sub s.data 0 s.size in
    Array.sort Float.compare arr;
    s.sorted <- Some arr;
    arr

let percentile s p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  if s.size = 0 then nan
  else begin
    let arr = sorted_samples s in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int s.size)) in
    let idx = Stdlib.max 0 (Stdlib.min (s.size - 1) (rank - 1)) in
    arr.(idx)
  end

let median s = percentile s 50.0

let merge a b =
  let m = create () in
  for i = 0 to a.size - 1 do
    add m a.data.(i)
  done;
  for i = 0 to b.size - 1 do
    add m b.data.(i)
  done;
  m

let samples s = Array.sub s.data 0 s.size

let pp_summary ppf s =
  if s.size = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.2f p50=%.2f p99=%.2f max=%.2f" s.size (mean s) (median s)
      (percentile s 99.0) (max_value s)
