(** Streaming summary statistics.

    Experiment runners accumulate per-operation observations (latencies
    in ticks, message counts, staleness distances) into a {!t} and
    report count/mean/min/max/percentiles at the end of a run. Samples
    are kept, so percentiles are exact. *)

type t
(** A mutable collection of [float] samples. *)

val create : unit -> t
(** An empty collection. *)

val add : t -> float -> unit
(** Records one sample. *)

val add_int : t -> int -> unit
(** [add_int s x] is [add s (float_of_int x)]. *)

val count : t -> int

val total : t -> float

val mean : t -> float
(** Arithmetic mean; [nan] when empty. *)

val min_value : t -> float
(** Smallest sample; [nan] when empty. *)

val max_value : t -> float
(** Largest sample; [nan] when empty. *)

val stddev : t -> float
(** Population standard deviation; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile s p] with [p] in [\[0, 100\]], nearest-rank method;
    [nan] when empty.
    @raise Invalid_argument if [p] is outside [\[0, 100\]]. *)

val median : t -> float
(** [median s] is [percentile s 50.0]. *)

val merge : t -> t -> t
(** [merge a b] is a fresh collection holding all samples of both. *)

val samples : t -> float array
(** A copy of the samples, in insertion order. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line [count/mean/p50/p99/max] rendering. *)
