(** Exact summary statistics (sample-keeping).

    Experiment runners accumulate per-operation observations (latencies
    in ticks, message counts, staleness distances) into a {!t} and
    report count/mean/min/max/percentiles at the end of a run.

    {b Memory tradeoff.} Every sample is kept (8 bytes each, in a
    doubling array), which is what makes percentiles {e exact} and
    {!samples}/{!merge} possible — and what makes this type wrong for
    unbounded streams: a million-operation sweep holds 8 MB per
    statistic and pays an O(n log n) sort on the first percentile
    query after each batch of adds. End-of-run tables over at most a
    few hundred thousand samples are fine; anything high-volume or
    long-lived (per-operation latencies recorded inside {!Metrics},
    telemetry exported mid-run) should use the fixed-bucket
    {!Histogram} instead: O(buckets) memory, O(log buckets) insert,
    percentiles quantized to bucket upper edges. *)

type t
(** A mutable collection of [float] samples. *)

val create : unit -> t
(** An empty collection. *)

val add : t -> float -> unit
(** Records one sample. *)

val add_int : t -> int -> unit
(** [add_int s x] is [add s (float_of_int x)]. *)

val count : t -> int

val total : t -> float

val mean : t -> float
(** Arithmetic mean; [nan] when empty. *)

val min_value : t -> float
(** Smallest sample; [nan] when empty. *)

val max_value : t -> float
(** Largest sample; [nan] when empty. *)

val stddev : t -> float
(** Population standard deviation; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile s p] with [p] in [\[0, 100\]], nearest-rank method;
    [nan] when empty.
    @raise Invalid_argument if [p] is outside [\[0, 100\]]. *)

val median : t -> float
(** [median s] is [percentile s 50.0]. *)

val merge : t -> t -> t
(** [merge a b] is a fresh collection holding all samples of both. *)

val samples : t -> float array
(** A copy of the samples, in insertion order. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line [count/mean/p50/p99/max] rendering. *)
