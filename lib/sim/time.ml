type t = int

let zero = 0

let of_int x =
  if x < 0 then invalid_arg "Time.of_int: negative time";
  x

let to_int t = t

let add t d =
  let r = t + d in
  if r < 0 then invalid_arg "Time.add: resulting time is negative";
  r

let diff later earlier = later - earlier
let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) (b : t) = a <= b
let ( < ) (a : t) (b : t) = a < b
let ( >= ) (a : t) (b : t) = a >= b
let ( > ) (a : t) (b : t) = a > b
let min (a : t) (b : t) = Stdlib.min a b
let max (a : t) (b : t) = Stdlib.max a b
let pp ppf t = Format.fprintf ppf "t=%d" t
