(** Discrete simulated time.

    The paper's time model is the set of positive integers (Section 2.1):
    local processing is instantaneous, messages take between 1 and [delta]
    time units, and churn refreshes [c * n] processes per time unit. A
    value of type {!t} is a point on that integer time line; durations are
    plain [int]s. *)

type t = private int
(** A point in simulated time. Never negative. *)

val zero : t
(** The origin of the simulation clock. *)

val of_int : int -> t
(** [of_int x] is the time point [x].
    @raise Invalid_argument if [x < 0]. *)

val to_int : t -> int
(** [to_int t] is the underlying integer tick count. *)

val add : t -> int -> t
(** [add t d] is the time point [d] ticks after [t].
    @raise Invalid_argument if the result would be negative. *)

val diff : t -> t -> int
(** [diff later earlier] is [to_int later - to_int earlier]. The result is
    negative when [later] precedes [earlier]. *)

val compare : t -> t -> int
(** Total order on time points. *)

val equal : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( < ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val min : t -> t -> t

val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints a time point as [t=<ticks>]. *)
