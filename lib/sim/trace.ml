type entry = { time : Time.t; topic : string; detail : string }

type t = { enabled : bool; mutable entries : entry list; mutable length : int }

let create ?capacity:_ ~enabled () = { enabled; entries = []; length = 0 }
let enabled t = t.enabled

let record t ~time ~topic detail =
  if t.enabled then begin
    t.entries <- { time; topic; detail } :: t.entries;
    t.length <- t.length + 1
  end

let recordf t ~time ~topic fmt =
  if t.enabled then
    Format.kasprintf (fun detail -> record t ~time ~topic detail) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t = List.rev t.entries

let find t ~topic =
  List.filter (fun e -> String.equal e.topic topic) (entries t)

let length t = t.length

let clear t =
  t.entries <- [];
  t.length <- 0

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "[%a] %-10s %s@." Time.pp e.time e.topic e.detail)
    (entries t)
