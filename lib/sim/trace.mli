(** Structured execution traces.

    A trace records what happened in a simulated run — joins, leaves,
    message sends and deliveries, operation invocations and responses —
    as timestamped entries. Scenario tests assert against the trace;
    the CLI can dump it for debugging. Recording is optional: a trace
    created with [enabled:false] drops entries with no allocation, so
    large sweeps pay nothing. *)

type entry = { time : Time.t; topic : string; detail : string }
(** One trace line: when, which subsystem, free-form description. *)

type t

val create : ?capacity:int -> enabled:bool -> unit -> t
(** [create ~enabled ()] is a trace sink. [capacity] is a hint for the
    initial buffer size. *)

val enabled : t -> bool

val record : t -> time:Time.t -> topic:string -> string -> unit
(** Appends an entry (no-op when disabled). *)

val recordf :
  t -> time:Time.t -> topic:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Format-string variant of {!record}. The message is only built when
    the trace is enabled. *)

val entries : t -> entry list
(** All entries, oldest first. *)

val find : t -> topic:string -> entry list
(** Entries for one topic, oldest first. *)

val length : t -> int

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** Dumps the whole trace, one line per entry. *)
