open Dds_sim

type inversion = {
  first : History.op;
  second : History.op;
  first_sn : int;
  second_sn : int;
}

let read_like ~include_joins history =
  let reads = History.completed_reads history in
  let joins = if include_joins then History.completed_joins history else [] in
  List.filter_map
    (fun (o : History.op) ->
      match (o.kind, o.responded) with
      | (History.Read (Some v) | History.Join (Some v)), Some r -> Some (o, v, r)
      | _, _ -> None)
    (reads @ joins)

let inversions ?(include_joins = false) history =
  let ops = read_like ~include_joins history in
  (* Sweep in invocation order while consuming a response-ordered queue:
     [best] tracks the highest-sn read fully completed so far, so each
     op is compared against the strongest earlier witness. *)
  let by_invocation =
    List.sort (fun (a, _, _) (b, _, _) -> Time.compare a.History.invoked b.History.invoked) ops
  in
  let by_response =
    ref (List.sort (fun (_, _, ra) (_, _, rb) -> Time.compare ra rb) ops)
  in
  let best : (History.op * int) option ref = ref None in
  let consider (o, (v : Value.t)) =
    match !best with
    | Some (_, sn) when sn >= v.Value.sn -> ()
    | Some _ | None -> best := Some (o, v.Value.sn)
  in
  let found = ref [] in
  List.iter
    (fun ((o : History.op), (v : Value.t), _) ->
      (* Absorb every read that responded strictly before o's invocation. *)
      let rec absorb () =
        match !by_response with
        | (p, pv, resp) :: rest when Time.(resp < o.invoked) ->
          consider (p, pv);
          by_response := rest;
          absorb ()
        | _ -> ()
      in
      absorb ();
      match !best with
      | Some (witness, wsn) when wsn > v.Value.sn ->
        found :=
          { first = witness; second = o; first_sn = wsn; second_sn = v.Value.sn } :: !found
      | Some _ | None -> ())
    by_invocation;
  List.rev !found

let is_atomic history =
  Regularity.is_ok (Regularity.check history) && inversions history = []

let pp_inversion ppf i =
  Format.fprintf ppf "%a (sn=%d) precedes %a (sn=%d)" History.pp_op i.first i.first_sn
    History.pp_op i.second i.second_sn
