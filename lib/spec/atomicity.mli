(** New/old inversion detection.

    A regular register may exhibit the {e new/old inversion} pictured
    in the paper's introduction: two reads [r1], [r2] with [r1]
    preceding [r2] in real time, where [r1] returns the value of a
    {e newer} write than [r2] does. An atomic register is exactly a
    regular register with no such inversion (for a single-writer
    register this equivalence is folklore; see also Lamport [20]).

    This checker finds inversions in a recorded history; the E1
    experiment uses it to show the synchronous protocol is regular but
    {e not} atomic, reproducing the introduction's scenario. *)

type inversion = {
  first : History.op;  (** the earlier read — returned the newer value *)
  second : History.op;  (** the later read — returned the older value *)
  first_sn : int;
  second_sn : int;
}

val inversions : ?include_joins:bool -> History.t -> inversion list
(** All witnessed inversions, judged with strict real-time precedence
    ([first.responded < second.invoked]). [include_joins] (default
    [false]) also treats join-adopted values as reads. *)

val is_atomic : History.t -> bool
(** Regular ({!Regularity.is_ok}) and inversion-free. *)

val pp_inversion : Format.formatter -> inversion -> unit
