open Dds_sim
open Dds_net

type op_id = int

type kind = Read of Value.t option | Write of Value.t | Join of Value.t option

(* Internal mutable record; frozen into [op] on export. *)
type cell = {
  id : op_id;
  pid : Pid.t;
  mutable kind : kind;
  invoked : Time.t;
  mutable responded : Time.t option;
  mutable aborted : bool;
}

type op = {
  id : op_id;
  pid : Pid.t;
  kind : kind;
  invoked : Time.t;
  responded : Time.t option;
  aborted : bool;
}

type t = {
  initial : Value.t;
  mutable cells : cell list; (* newest first *)
  by_id : (op_id, cell) Hashtbl.t;
  mutable next_id : int;
}

let create ~initial = { initial; cells = []; by_id = Hashtbl.create 256; next_id = 0 }
let initial t = t.initial

let register t pid ~now kind =
  let cell : cell =
    { id = t.next_id; pid; kind; invoked = now; responded = None; aborted = false }
  in
  t.next_id <- t.next_id + 1;
  t.cells <- cell :: t.cells;
  Hashtbl.replace t.by_id cell.id cell;
  cell.id

let cell t id =
  match Hashtbl.find_opt t.by_id id with
  | Some c -> c
  | None -> invalid_arg "History: unknown operation id"

let respond t id ~now update =
  let c = cell t id in
  if c.responded <> None then invalid_arg "History: operation already responded";
  if c.aborted then invalid_arg "History: operation was aborted";
  (* Validate (and patch) the kind first: a failed call must leave the
     record untouched, not half-responded. *)
  update c;
  c.responded <- Some now

let begin_read t pid ~now = register t pid ~now (Read None)

let end_read t id ~now value =
  respond t id ~now (fun c ->
      match c.kind with
      | Read None -> c.kind <- Read (Some value)
      | Read (Some _) | Write _ | Join _ -> invalid_arg "History.end_read: not a pending read")

let begin_write t pid ~now value = register t pid ~now (Write value)

let end_write t id ~now value =
  respond t id ~now (fun c ->
      match c.kind with
      | Write _ -> c.kind <- Write value
      | Read _ | Join _ -> invalid_arg "History.end_write: not a write")

let begin_join t pid ~now = register t pid ~now (Join None)

let end_join t id ~now value =
  respond t id ~now (fun c ->
      match c.kind with
      | Join None -> c.kind <- Join (Some value)
      | Join (Some _) | Read _ | Write _ -> invalid_arg "History.end_join: not a pending join")

let abort t id =
  let c = cell t id in
  if c.responded <> None then invalid_arg "History.abort: operation already responded";
  c.aborted <- true

let freeze (c : cell) =
  {
    id = c.id;
    pid = c.pid;
    kind = c.kind;
    invoked = c.invoked;
    responded = c.responded;
    aborted = c.aborted;
  }

let ops t = List.rev_map freeze t.cells

let filter_ops t pred = List.filter pred (ops t)

let completed_reads t =
  filter_ops t (fun o ->
      (not o.aborted) && o.responded <> None
      && match o.kind with Read _ -> true | Write _ | Join _ -> false)

let completed_writes t =
  filter_ops t (fun o ->
      (not o.aborted) && o.responded <> None
      && match o.kind with Write _ -> true | Read _ | Join _ -> false)

let all_writes t =
  filter_ops t (fun o ->
      (not o.aborted) && match o.kind with Write _ -> true | Read _ | Join _ -> false)

let disseminated_writes t =
  filter_ops t (fun o -> match o.kind with Write _ -> true | Read _ | Join _ -> false)

let completed_joins t =
  filter_ops t (fun o ->
      (not o.aborted) && o.responded <> None
      && match o.kind with Join _ -> true | Read _ | Write _ -> false)

let pending t = filter_ops t (fun o -> (not o.aborted) && o.responded = None)
let aborted t = filter_ops t (fun o -> o.aborted)
let count t = t.next_id

let pp_kind ppf = function
  | Read None -> Format.pp_print_string ppf "read:?"
  | Read (Some v) -> Format.fprintf ppf "read:%a" Value.pp v
  | Write v -> Format.fprintf ppf "write:%a" Value.pp v
  | Join None -> Format.pp_print_string ppf "join:?"
  | Join (Some v) -> Format.fprintf ppf "join:%a" Value.pp v

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "id,pid,kind,data,sn,invoked,responded,aborted\n";
  let value_cells = function
    | Some (v : Value.t) -> (string_of_int v.Value.data, string_of_int v.Value.sn)
    | None -> ("", "")
  in
  List.iter
    (fun o ->
      let kind, (data, sn) =
        match o.kind with
        | Read v -> ("read", value_cells v)
        | Write v -> ("write", value_cells (Some v))
        | Join v -> ("join", value_cells v)
      in
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%s,%s,%s,%d,%s,%b\n" o.id
           (Pid.to_int o.pid)
           kind data sn
           (Time.to_int o.invoked)
           (match o.responded with Some r -> string_of_int (Time.to_int r) | None -> "")
           o.aborted))
    (ops t);
  Buffer.contents buf

let pp_op ppf o =
  Format.fprintf ppf "[%a %a %a..%s%s]" Pid.pp o.pid pp_kind o.kind Time.pp o.invoked
    (match o.responded with Some r -> Format.asprintf "%a" Time.pp r | None -> "pending")
    (if o.aborted then " aborted" else "")
