open Dds_sim
open Dds_net

(** Timestamped operation histories.

    Every operation a deployment runs — reads, writes, and joins — is
    recorded here with its invocation and response instants, so the
    checkers ({!Regularity}, {!Atomicity}, {!Staleness}) can replay the
    run against the register specification of Section 2.2. Joins are
    recorded because Lemma 3 gives them a read-like guarantee: the
    value held when [join] returns is the last value written before the
    join, or one written concurrently with it.

    Operations of processes that leave mid-operation are marked
    {!aborted}; the safety checkers ignore them (the paper's liveness
    clause only covers processes that stay). *)

type op_id
(** Dense handle for an in-flight operation. *)

type kind =
  | Read of Value.t option  (** value returned; [None] while pending *)
  | Write of Value.t  (** value (and sn) being written; known at invocation *)
  | Join of Value.t option  (** local copy adopted when the join returned *)

type op = {
  id : op_id;
  pid : Pid.t;
  kind : kind;
  invoked : Time.t;
  responded : Time.t option;  (** [None]: pending at horizon *)
  aborted : bool;  (** process left before responding *)
}

type t

val create : initial:Value.t -> t
(** [initial] is the register's value at time 0, held by every founding
    process — it acts as a virtual write that completed before the run. *)

val initial : t -> Value.t

val begin_read : t -> Pid.t -> now:Time.t -> op_id
val end_read : t -> op_id -> now:Time.t -> Value.t -> unit

val begin_write : t -> Pid.t -> now:Time.t -> Value.t -> op_id
(** The value passed here is the caller's best guess (datum plus
    expected sequence number); quorum-based protocols fix the sequence
    number only mid-operation. *)

val end_write : t -> op_id -> now:Time.t -> Value.t -> unit
(** Also patches the recorded value with the one actually written, so
    completed writes always carry their true sequence number. *)

val begin_join : t -> Pid.t -> now:Time.t -> op_id
val end_join : t -> op_id -> now:Time.t -> Value.t -> unit

val abort : t -> op_id -> unit
(** The process left the system with the operation pending. *)

val ops : t -> op list
(** Every recorded operation, in invocation order. *)

val completed_reads : t -> op list
(** Reads that responded and were not aborted, invocation order. *)

val completed_writes : t -> op list
(** Writes that responded and were not aborted, invocation order. *)

val all_writes : t -> op list
(** Completed {e and} pending writes (a write pending at the horizon is
    concurrent with everything after its invocation), excluding aborted
    ones; invocation order. *)

val disseminated_writes : t -> op list
(** {!all_writes} plus {e aborted} writes: a writer that left
    mid-operation may already have broadcast its value, so its datum
    can legally surface in reads. The regularity checker draws its
    allowed sets from these, while judging write sequentiality on
    {!all_writes} only (an aborted write stopped at an unknown
    instant and cannot be convicted of overlap). *)

val completed_joins : t -> op list

val pending : t -> op list
(** Unresponded, unaborted operations (blocked or cut off by horizon). *)

val aborted : t -> op list

val count : t -> int

val pp_op : Format.formatter -> op -> unit

val to_csv : t -> string
(** The whole history as CSV ([id,pid,kind,data,sn,invoked,responded,
    aborted], header included, one operation per line, invocation
    order). Pending fields render as empty cells; the initial value is
    not a row (it is no operation). For offline analysis of runs
    produced by the CLI's [--dump-history]. *)
