open Dds_sim

let recommended_max_ops = 9

type event = { value : Value.t; is_write : bool; invoked : Time.t; responded : Time.t }

let events_of history =
  let ops = History.ops history in
  let convert (o : History.op) =
    match (o.History.kind, o.History.responded) with
    | History.Write v, Some r ->
      Some { value = v; is_write = true; invoked = o.History.invoked; responded = r }
    | (History.Read (Some v) | History.Join (Some v)), Some r ->
      Some { value = v; is_write = false; invoked = o.History.invoked; responded = r }
    | _, _ -> None
  in
  if List.exists (fun (o : History.op) -> o.History.aborted || o.History.responded = None) ops
  then None
  else Some (List.filter_map convert ops)

(* e1 must precede e2 in any linearization: strict real-time order,
   plus the single writer's program order — consecutive writes may
   share a tick boundary (response = next invocation) without being
   reorderable, because they come from one sequential process. *)
let precedes e1 e2 =
  Time.(e1.responded < e2.invoked)
  || (e1.is_write && e2.is_write && e1.value.Value.sn < e2.value.Value.sn)

(* Depth-first search over linearization prefixes: at each step pick a
   remaining event none of whose predecessors remain, apply the
   sequential semantics, recurse. *)
let linearizable ~initial events =
  let rec search current remaining =
    match remaining with
    | [] -> true
    | _ ->
      List.exists
        (fun candidate ->
          let minimal =
            not (List.exists (fun other -> precedes other candidate) remaining)
          in
          minimal
          &&
          if candidate.is_write then
            search candidate.value
              (List.filter (fun e -> e != candidate) remaining)
          else
            Value.same_data candidate.value current
            && search current (List.filter (fun e -> e != candidate) remaining)
        )
        remaining
  in
  search initial events

let check ?(max_ops = recommended_max_ops) history =
  match events_of history with
  | None -> None
  | Some events when List.length events > max_ops -> None
  | Some events -> Some (linearizable ~initial:(History.initial history) events)
