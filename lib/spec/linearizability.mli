(** Brute-force linearizability, for validating the fast checkers.

    {!Atomicity.is_atomic} decides atomicity as "regular and free of
    new/old inversions" — a classical equivalence for single-writer
    registers, but an easy thing to get subtly wrong in code. This
    module provides the ground truth on {e small} histories: try every
    interleaving that respects real-time precedence — plus the single
    writer's program order, so back-to-back writes sharing a tick
    boundary stay ordered — and check it against the sequential
    register semantics (a read returns the latest preceding write, or
    the initial value). The equivalence property test in the suite
    cross-checks the two on random histories (10^6 histories at the
    time of writing, zero disagreements).

    Exponential in the number of operations — intended for histories
    of at most {!recommended_max_ops} operations, i.e. tests only. *)

val recommended_max_ops : int
(** 9: beyond this, the search space is unreasonable. *)

val check : ?max_ops:int -> History.t -> bool option
(** [Some true] if a linearization exists, [Some false] if provably
    none does, [None] when the history exceeds [max_ops] (default
    {!recommended_max_ops}) or contains pending/aborted operations
    (completed operations only — trim the history first). Joins are
    treated as reads of their adopted value. *)
