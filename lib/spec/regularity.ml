open Dds_sim

type violation = { op : History.op; returned : Value.t; allowed : Value.t list }

type report = {
  checked_reads : int;
  checked_joins : int;
  violations : violation list;
  writes_sequential : bool;
  distinct_data : bool;
}

(* The initial value behaves as a write that completed before time 0. *)
type write_span = { value : Value.t; invoked : Time.t option; responded : Time.t option }

let of_write_op (o : History.op) =
  match o.kind with
  | History.Write v ->
    (* An aborted write stopped at an unknown instant but may have
       disseminated: treat it as never responding (concurrent with
       everything after its invocation). *)
    let responded = if o.aborted then None else o.responded in
    { value = v; invoked = Some o.invoked; responded }
  | History.Read _ | History.Join _ -> assert false

let write_spans history =
  let initial = { value = History.initial history; invoked = None; responded = None } in
  (* [initial.responded = None] would mean "never completed"; encode the
     virtual initial write as completed-before-everything instead. *)
  let spans = List.map of_write_op (History.disseminated_writes history) in
  (initial, List.sort (fun a b -> Value.compare_sn a.value b.value) spans)

(* Sequentiality is judged on non-aborted writes only. *)
let sequential_spans history = List.map of_write_op (History.all_writes history)

let writes_sequential spans =
  let rec loop = function
    | a :: (b :: _ as rest) ->
      let ok =
        match (a.responded, b.invoked) with
        | Some ra, Some ib -> Time.(ra <= ib)
        | None, Some _ -> false (* a never finished yet b started: overlap *)
        | _, None -> false
      in
      ok && loop rest
    | [ _ ] | [] -> true
  in
  loop spans

(* Strictly-before: the write's response precedes the op's invocation. *)
let completed_before span ~invoked =
  match span.responded with Some r -> Time.(r < invoked) | None -> false

(* Closed-interval overlap, inclusive at both boundaries. *)
let concurrent_with span ~invoked ~responded =
  let starts_before_end =
    match span.invoked with Some i -> Time.(i <= responded) | None -> false
  in
  let ends_after_start =
    match span.responded with Some r -> Time.(r >= invoked) | None -> true
  in
  starts_before_end && ends_after_start

let allowed_of_spans (initial, spans) ~invoked ~responded =
  let last_completed =
    List.fold_left
      (fun best span -> if completed_before span ~invoked then span.value else best)
      initial.value spans
  in
  let concurrents =
    List.filter_map
      (fun span ->
        if concurrent_with span ~invoked ~responded then Some span.value else None)
      spans
  in
  last_completed :: concurrents

let allowed_values history ~invoked ~responded =
  allowed_of_spans (write_spans history) ~invoked ~responded

let distinct_data (initial, spans) =
  let data = initial.value.Value.data :: List.map (fun s -> s.value.Value.data) spans in
  let sorted = List.sort Int.compare data in
  let rec no_dup = function
    | a :: (b :: _ as rest) -> a <> b && no_dup rest
    | [ _ ] | [] -> true
  in
  no_dup sorted

let check ?(include_joins = true) history =
  let spans = write_spans history in
  let sequential = writes_sequential (sequential_spans history) in
  let distinct = distinct_data spans in
  let check_op (o : History.op) returned =
    match o.responded with
    | None -> None
    | Some responded ->
      let allowed = allowed_of_spans spans ~invoked:o.invoked ~responded in
      if List.exists (Value.same_data returned) allowed then None
      else Some { op = o; returned; allowed }
  in
  let reads = History.completed_reads history in
  let joins = if include_joins then History.completed_joins history else [] in
  let violations =
    List.filter_map
      (fun (o : History.op) ->
        match o.kind with
        | History.Read (Some v) | History.Join (Some v) -> check_op o v
        | History.Read None | History.Join None | History.Write _ -> None)
      (reads @ joins)
  in
  {
    checked_reads = List.length reads;
    checked_joins = List.length joins;
    violations;
    writes_sequential = sequential;
    distinct_data = distinct;
  }

let is_ok r = r.writes_sequential && r.distinct_data && r.violations = []

let pp_violation ppf v =
  Format.fprintf ppf "%a returned %a, allowed {%a}" History.pp_op v.op Value.pp v.returned
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Value.pp)
    v.allowed

let pp_report ppf r =
  Format.fprintf ppf "reads=%d joins=%d violations=%d writes_sequential=%b distinct_data=%b"
    r.checked_reads r.checked_joins (List.length r.violations) r.writes_sequential
    r.distinct_data;
  List.iter (fun v -> Format.fprintf ppf "@.  %a" pp_violation v) r.violations
