(** The regular-register safety checker.

    Section 2.2's safety property: {e a read returns the last value
    written before the read invocation, or a value written by a write
    concurrent with it}. This module replays a recorded history and
    flags every read (and, optionally, every join — Lemma 3 promises
    joins the same guarantee) whose returned value is outside its
    allowed set.

    Timestamps are tick-granular while the scheduler interleaves many
    events inside one tick, so precedence is judged {e permissively}:
    a write is "completed before" a read only when its response is
    strictly before the read's invocation, and "concurrent" whenever
    their closed intervals intersect. A value allowed under either
    reading of a tick-boundary tie is accepted — the checker never
    reports a violation that some legal interleaving could explain.

    The checker assumes the single-writer regime of the paper
    (footnote 1 / Section 5.3): writes must not overlap. Overlapping
    writes are reported via [writes_sequential = false] and the safety
    verdict is then not meaningful. *)

type violation = {
  op : History.op;  (** the offending read or join *)
  returned : Value.t;
  allowed : Value.t list;  (** what regularity would have accepted *)
}

type report = {
  checked_reads : int;
  checked_joins : int;
  violations : violation list;
  writes_sequential : bool;
      (** writes were totally ordered by real time, as assumed *)
  distinct_data : bool;
      (** every write (and the initial value) carried a distinct datum,
          so datum-level matching is exact. Values are matched by datum
          because a write pending at the horizon has not fixed its
          sequence number yet. *)
}

val check : ?include_joins:bool -> History.t -> report
(** Replays the history. [include_joins] (default [true]) also applies
    the read rule to completed joins per Lemma 3. Pending and aborted
    operations are skipped. *)

val is_ok : report -> bool
(** No violations and writes were sequential. *)

val allowed_values : History.t -> invoked:Dds_sim.Time.t -> responded:Dds_sim.Time.t -> Value.t list
(** The set of values regularity permits an operation spanning
    [\[invoked, responded\]] to return — exposed for tests and for the
    brute-force oracle cross-check. *)

val pp_violation : Format.formatter -> violation -> unit

val pp_report : Format.formatter -> report -> unit
