open Dds_sim
open Dds_net

let value_of_payload { Event.data; sn } =
  if sn < 0 then Value.bottom else Value.make ~data ~sn

let history_of_events ?(initial = Value.initial 0) events =
  let h = History.create ~initial in
  let open_ops : (int, History.op_id) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun { Event.at; ev } ->
      match ev with
      | Event.Op_start { span; node; op; value } ->
        let pid = Pid.of_int node in
        let id =
          match op with
          | Event.Join -> History.begin_join h pid ~now:at
          | Event.Read -> History.begin_read h pid ~now:at
          | Event.Write ->
            (* A write's Op_start carries the writer's sequence-number
               guess — the same value the deployment hands to
               [History.begin_write] — so an aborted or pending write
               reconstructs with the value it may have disseminated. *)
            let v = match value with Some p -> value_of_payload p | None -> Value.bottom in
            History.begin_write h pid ~now:at v
        in
        Hashtbl.replace open_ops span id
      | Event.Op_end { span; op; outcome; value; _ } -> (
        match Hashtbl.find_opt open_ops span with
        | None -> () (* trace truncated before this span's start *)
        | Some id ->
          Hashtbl.remove open_ops span;
          (match outcome with
          | Event.Aborted -> History.abort h id
          | Event.Completed ->
            let v = match value with Some p -> value_of_payload p | None -> Value.bottom in
            (match op with
            | Event.Join -> History.end_join h id ~now:at v
            | Event.Read -> History.end_read h id ~now:at v
            | Event.Write -> History.end_write h id ~now:at v)))
      | _ -> ())
    events;
  h
