open Dds_sim

(** Reconstructing an operation {!History} from an exported event
    trace.

    Operation spans carry their payloads since the telemetry model
    became semantically complete: a write's [Op_start] records the
    writer's datum and sequence-number guess (exactly what the
    deployment passes to {!History.begin_write}), and every completed
    span's [Op_end] records the value the operation returned. Replaying
    those events therefore rebuilds the same history the deployment
    accumulated in process — same operations, same invocation order,
    same timestamps, same abort marks — which is what lets [dds audit]
    run the {!Regularity} / {!Atomicity} checkers on a trace file long
    after the run that produced it. *)

val value_of_payload : Event.payload -> Value.t
(** A negative sequence number decodes to {!Value.bottom} (the event
    model's encoding of ⊥). *)

val history_of_events : ?initial:Value.t -> Event.stamped list -> History.t
(** Folds the trace's [Op_start] / [Op_end] events into a history.
    [initial] is the register's time-0 value, which no event records
    (it is no operation) — it must match the run's [--initial-value]
    for the virtual initial write to carry the right datum; defaults to
    [Value.initial 0], the CLI default. Spans still open when the trace
    ends become pending operations; [Op_end]s whose start fell before a
    truncated trace's first line are ignored. *)
