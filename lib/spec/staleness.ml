open Dds_sim

type report = {
  per_read : (History.op * int) list;
  stats : Stats.t;
  max_staleness : int;
}

let measure ?(include_joins = false) history =
  let write_resp_sns =
    (* (response, sn) of each completed write, response-ascending. *)
    List.filter_map
      (fun (o : History.op) ->
        match (o.kind, o.responded) with
        | History.Write v, Some r -> Some (r, v.Value.sn)
        | _, _ -> None)
      (History.completed_writes history)
    |> List.sort (fun (a, _) (b, _) -> Time.compare a b)
  in
  let last_sn_before invoked =
    List.fold_left
      (fun acc (resp, sn) -> if Time.(resp < invoked) then Stdlib.max acc sn else acc)
      0 write_resp_sns
  in
  let reads = History.completed_reads history in
  let joins = if include_joins then History.completed_joins history else [] in
  let per_read =
    List.filter_map
      (fun (o : History.op) ->
        match o.kind with
        | History.Read (Some v) | History.Join (Some v) ->
          let sn = if Value.is_bottom v then -1 else v.Value.sn in
          Some (o, Stdlib.max 0 (last_sn_before o.invoked - sn))
        | History.Read None | History.Join None | History.Write _ -> None)
      (reads @ joins)
    |> List.sort (fun ((a : History.op), _) (b, _) -> Time.compare a.invoked b.invoked)
  in
  let stats = Stats.create () in
  List.iter (fun (_, s) -> Stats.add_int stats s) per_read;
  let max_staleness = List.fold_left (fun acc (_, s) -> Stdlib.max acc s) 0 per_read in
  { per_read; stats; max_staleness }

let pp_report ppf r =
  Format.fprintf ppf "staleness: %a (max=%d)" Stats.pp_summary r.stats r.max_staleness
