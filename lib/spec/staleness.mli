open Dds_sim

(** How far behind reads run.

    For each completed read, its {e staleness} is the number of writes
    it lags: [max(0, last_sn_completed_before_invocation - returned_sn)].
    A regular register always has staleness 0 (modulo concurrent
    writes); the asynchronous impossibility experiment (Theorem 2 / E7)
    shows staleness growing without bound as the horizon stretches —
    the quantitative face of "the value obtained is always older than
    the last value written". *)

type report = {
  per_read : (History.op * int) list;  (** invocation order *)
  stats : Stats.t;  (** distribution of staleness values *)
  max_staleness : int;  (** 0 when there are no reads *)
}

val measure : ?include_joins:bool -> History.t -> report
(** [include_joins] defaults to [false]. *)

val pp_report : Format.formatter -> report -> unit
