type t = { data : int; sn : int }

let initial v = { data = v; sn = 0 }

let make ~data ~sn =
  if sn < 0 then invalid_arg "Value.make: negative sequence number";
  { data; sn }

let bottom = { data = min_int; sn = min_int }
let is_bottom v = v.sn = min_int
let newer a b = if b.sn > a.sn then b else a

let newest = function
  | [] -> None
  | first :: rest -> Some (List.fold_left newer first rest)

let put b v =
  Dds_net.Wire.put_int b v.data;
  Dds_net.Wire.put_int b v.sn

let get r =
  let data = Dds_net.Wire.get_int r in
  let sn = Dds_net.Wire.get_int r in
  { data; sn }

let equal a b = a.data = b.data && a.sn = b.sn
let same_data a b = a.data = b.data
let compare_sn a b = Int.compare a.sn b.sn
let pp ppf t =
  if is_bottom t then Format.pp_print_string ppf "_|_"
  else Format.fprintf ppf "%d#%d" t.data t.sn
