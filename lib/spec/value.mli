(** Register values.

    Both protocols pair the written datum with a sequence number
    assigned by the writer; with a single (non-concurrent) writer the
    sequence number totally orders the writes, which is what every
    correctness argument in the paper leans on. The datum itself is an
    [int] — the register's value domain is irrelevant to the
    protocols. *)

type t = { data : int; sn : int }
(** [data] is the written value, [sn] its sequence number. *)

val initial : int -> t
(** [initial v] is the value every founding process holds at time 0:
    datum [v], sequence number 0. *)

val make : data:int -> sn:int -> t
(** @raise Invalid_argument if [sn < 0]. *)

val bottom : t
(** The "no value" placeholder (the paper's ⊥): what a joiner holds
    when, above the churn bound, its inquiry round comes back empty
    and the protocol (read literally) activates it anyway. [bottom]
    loses every sequence-number comparison, is never a written value,
    and therefore turns into a safety violation the moment a read
    returns it — exactly the failure mode the threshold guards
    against. *)

val is_bottom : t -> bool

val newer : t -> t -> t
(** The value with the strictly greater sequence number; the first
    argument wins ties (matching the protocols' [if sn > sn_i] guard:
    an equal incoming sn does not overwrite). *)

val newest : t list -> t option
(** Highest-sequence-number element; [None] on the empty list. *)

val put : Buffer.t -> t -> unit
(** Wire codec: datum then sequence number, each a full-range
    {!Dds_net.Wire.put_int} — so {!bottom}'s [min_int] sentinels
    survive the round trip ([make] would reject them). *)

val get : Dds_net.Wire.reader -> t
(** @raise Dds_net.Wire.Truncated if the payload ends mid-value. *)

val equal : t -> t -> bool

val same_data : t -> t -> bool
(** Datum equality, ignoring sequence numbers. The safety checkers
    match values this way and therefore require workloads to write
    pairwise-distinct data (which {!Regularity.check} verifies). *)

val compare_sn : t -> t -> int
(** Orders by sequence number only. *)

val pp : Format.formatter -> t -> unit
(** Prints as [<data>#<sn>]. *)
