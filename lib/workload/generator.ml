open Dds_sim
open Dds_core

type config = { read_rate : float; write_every : int; start : Time.t; until : Time.t }

let default ~until = { read_rate = 1.0; write_every = 20; start = Time.of_int 1; until }

module Make (D : Deployment.S) = struct
  let reads_this_tick rng rate =
    let base = int_of_float rate in
    let frac = rate -. float_of_int base in
    base + (if Rng.float rng 1.0 < frac then 1 else 0)

  let tick d cfg () =
    let rng = D.workload_rng d in
    (* Writer first so reads of this tick can race with the write. *)
    let now = Time.to_int (D.now d) in
    if cfg.write_every > 0 && now mod cfg.write_every = 0 then begin
      (* Re-elect on the fly if the previous writer left (footnote 1:
         many writers are fine as long as writes never overlap, which
         one-designation-at-a-time guarantees). *)
      match D.elect_writer d with
      | Some w ->
        (match D.node d w with
        | Some node
          when D.Protocol.is_active node && not (D.Protocol.busy node) ->
          D.write d w
        | Some _ | None -> ())
      | None -> ()
    end;
    let n_reads = reads_this_tick rng cfg.read_rate in
    for _ = 1 to n_reads do
      match D.random_idle_active d with
      | Some pid -> D.read d pid
      | None -> () (* nobody able to read this tick *)
    done

  let run d cfg =
    let sched = D.scheduler d in
    let rec schedule time =
      if Time.(time <= cfg.until) then begin
        ignore (Scheduler.schedule_at sched time (tick d cfg));
        schedule (Time.add time 1)
      end
    in
    schedule (Time.max cfg.start (Time.add (Scheduler.now sched) 1))
end
