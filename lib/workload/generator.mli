open Dds_sim
open Dds_core

(** Randomized read/write workloads over a deployment.

    The generator drives the paper's intended usage pattern: a single
    designated writer updating the register periodically, while any
    active process may read at any time (the synchronous protocol is
    explicitly "targeted for applications where the number of reads
    outperforms the number of writes"). Reads are issued from random
    idle active processes; every operation goes through the deployment
    so it lands in the history for checking. *)

type config = {
  read_rate : float;
      (** expected number of reads started per tick (may exceed 1) *)
  write_every : int;
      (** one write every this many ticks; [0] disables writes. When
          the designated writer has left, a new one is elected on the
          spot ({!Deployment.S.elect_writer}) — writes stay
          non-concurrent, as footnote 1 requires. *)
  start : Time.t;  (** first tick of workload activity *)
  until : Time.t;  (** last tick of workload activity *)
}

val default : until:Time.t -> config
(** [read_rate = 1.0], [write_every = 20], starting at tick 1. *)

module Make (D : Deployment.S) : sig
  val run : D.t -> config -> unit
  (** Schedules the workload's events on the deployment's scheduler
      (the caller still runs it). Ticks where no idle active process
      exists are skipped silently — under extreme churn there may be
      nobody to issue from, which is itself a measurable outcome. *)
end
