type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~headers ?(notes = []) rows = { title; headers; rows; notes }
let cell_int = string_of_int

let cell_float ?(decimals = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x

let cell_bool b = if b then "yes" else "no"

let widths t =
  let all = t.headers :: t.rows in
  let cols = List.fold_left (fun acc row -> Stdlib.max acc (List.length row)) 0 all in
  let w = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> w.(i) <- Stdlib.max w.(i) (String.length cell)) row)
    all;
  w

let pp ppf t =
  let w = widths t in
  let pp_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Format.fprintf ppf "  ";
        Format.fprintf ppf "%-*s" w.(i) cell)
      row;
    Format.fprintf ppf "@."
  in
  let rule () =
    let total = Array.fold_left (fun acc x -> acc + x + 2) (-2) w in
    Format.fprintf ppf "%s@." (String.make (Stdlib.max total 4) '-')
  in
  Format.fprintf ppf "@.== %s ==@." t.title;
  rule ();
  pp_row t.headers;
  rule ();
  List.iter pp_row t.rows;
  rule ();
  List.iter (fun n -> Format.fprintf ppf "  %s@." n) t.notes

let print t = pp Format.std_formatter t

let to_json t =
  let module J = Dds_sim.Json in
  let strings l = J.List (List.map (fun s -> J.String s) l) in
  J.Obj
    [
      ("title", J.String t.title);
      ("headers", strings t.headers);
      ("rows", J.List (List.map strings t.rows));
      ("notes", strings t.notes);
    ]
