(** Fixed-width table rendering for experiment output.

    Every experiment runner produces one of these; the bench harness
    and the CLI print them, and EXPERIMENTS.md quotes them. Cells are
    plain strings so runners control their own numeric formatting. *)

type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;  (** free-form caption lines printed below *)
}

val make : title:string -> headers:string list -> ?notes:string list -> string list list -> t

val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string
(** Default 2 decimals; renders nan as ["-"]. *)

val cell_bool : bool -> string
(** ["yes"] / ["no"]. *)

val pp : Format.formatter -> t -> unit

val print : t -> unit
(** [pp] on stdout. *)

val to_json : t -> Dds_sim.Json.t
(** The table as a JSON object ([title]/[headers]/[rows]/[notes],
    cells as strings) — what the bench harness aggregates into
    [BENCH_results.json]. *)
