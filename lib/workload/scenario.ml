open Dds_sim
open Dds_net
open Dds_spec
open Dds_core

module Sync_d = Deployment.Make (Sync_register)

let pid = Pid.of_int
let time = Time.of_int

(* ------------------------------------------------------------------ *)
(* Figure 3: why the join operation must first wait delta.

   System: p0 (writer), p1, p2 founding; delta = 5.
   t=10  p0 starts write(1): broadcasts WRITE, will return at t=15.
   t=11  p3 enters the system. It entered after the broadcast, so it
         will never deliver that WRITE.
   t=16  p0 leaves (its write is complete). Its reply to p3's inquiry
         can therefore never arrive.
   t=40  p3 reads.

   Delay schedule (all within the delta = 5 bound):
   - p0's WRITE broadcast takes the full 5 ticks;
   - everything addressed to p0 takes 5 ticks (so p3's INQUIRY reaches
     p0 only at t >= 16, after p0 left);
   - every other message takes 1 tick.

   Without the initial wait (Figure 3a): p3 inquires at t=11; p1 and p2
   answer at t=12 with the old value 0 (their WRITE arrives only at
   t=15); p3 adopts 0 — legal so far, the write is concurrent with the
   join — but its t=40 read still returns 0 after write(1) completed at
   t=15: safety violation.

   With the wait (Figure 3b): p3 inquires at t=16 > 15; p1 and p2
   already hold 1, so the join adopts 1 and the read is correct. *)

type fig3_outcome = {
  join_value : Value.t option;
  read_value : Value.t option;
  report : Regularity.report;
  join_duration : int option;
}

let fig3_delta = 5

let fig3_delay (dec : Delay.decision) =
  if Delay.(dec.kind = Broadcast) && Pid.equal dec.src (pid 0) then fig3_delta
  else if Pid.equal dec.dst (pid 0) then fig3_delta
  else 1

let fig3 ~join_wait =
  let cfg =
    {
      Deployment.seed = 1;
      n = 3;
      delay = Delay.adversarial fig3_delay;
      churn_rate = 0.0;
      churn_profile = None;
      churn_policy = Dds_churn.Churn.Uniform;
      protect_writer = true;
      initial_value = 0;
      broadcast_mode = Network.Primitive;
      trace_enabled = false;
      events_enabled = false;
      events_first_span = 0;
    }
  in
  let d =
    Sync_d.create cfg
      { (Sync_register.default_params ~delta:fig3_delta) with Sync_register.join_wait }
  in
  let sched = Sync_d.scheduler d in
  let joiner = ref None in
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> Sync_d.write d (pid 0)));
  ignore (Scheduler.schedule_at sched (time 11) (fun () -> joiner := Some (Sync_d.spawn d)));
  ignore (Scheduler.schedule_at sched (time 16) (fun () -> Sync_d.retire d (pid 0)));
  ignore
    (Scheduler.schedule_at sched (time 40) (fun () ->
         match !joiner with Some j -> Sync_d.read d j | None -> ()));
  Sync_d.run_until d (time 60);
  let history = Sync_d.history d in
  let value_of (o : History.op) =
    match o.History.kind with
    | History.Read v | History.Join v -> v
    | History.Write v -> Some v
  in
  let join_op =
    match History.completed_joins history with [ j ] -> Some j | _ -> None
  in
  {
    join_value = Option.bind join_op value_of;
    read_value =
      (match History.completed_reads history with [ r ] -> value_of r | _ -> None);
    report = Regularity.check history;
    join_duration =
      Option.bind join_op (fun (j : History.op) ->
          Option.map (fun r -> Time.diff r j.History.invoked) j.History.responded);
  }

(* ------------------------------------------------------------------ *)
(* The introduction's new/old inversion.

   p0 writes 1 then 2. The WRITE(2) broadcast reaches p1 in 1 tick but
   p2 only after the full 5 ticks. Two purely local reads in between:
   r1 at p1 (t=12) returns 2; r2 at p2 (t=13) still returns 1 although
   r1 finished before r2 started. Regular — both reads are concurrent
   with write(2) or read the last completed value — but not atomic. *)

type inversion_outcome = {
  inversions : Atomicity.inversion list;
  report : Regularity.report;
  fast_read : Value.t option;
  slow_read : Value.t option;
}

let inversion_delay (dec : Delay.decision) =
  if Pid.equal dec.dst (pid 2) then 5 else 1

let inversion () =
  let cfg =
    {
      Deployment.seed = 2;
      n = 3;
      delay = Delay.adversarial inversion_delay;
      churn_rate = 0.0;
      churn_profile = None;
      churn_policy = Dds_churn.Churn.Uniform;
      protect_writer = true;
      initial_value = 0;
      broadcast_mode = Network.Primitive;
      trace_enabled = false;
      events_enabled = false;
      events_first_span = 0;
    }
  in
  let d = Sync_d.create cfg (Sync_register.default_params ~delta:5) in
  let sched = Sync_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 1) (fun () -> Sync_d.write d (pid 0)));
  (* write(1) completes at t=6; everyone holds 1#1 by then. *)
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> Sync_d.write d (pid 0)));
  (* WRITE(2) reaches p1 at t=11, p2 at t=15. *)
  ignore (Scheduler.schedule_at sched (time 12) (fun () -> Sync_d.read d (pid 1)));
  ignore (Scheduler.schedule_at sched (time 13) (fun () -> Sync_d.read d (pid 2)));
  Sync_d.run_until d (time 30);
  let history = Sync_d.history d in
  let reads = History.completed_reads history in
  let value_of (o : History.op) =
    match o.History.kind with History.Read v -> v | _ -> None
  in
  let read_of p =
    List.find_opt (fun (o : History.op) -> Pid.equal o.History.pid p) reads
  in
  {
    inversions = Atomicity.inversions history;
    report = Regularity.check history;
    fast_read = Option.bind (read_of (pid 1)) value_of;
    slow_read = Option.bind (read_of (pid 2)) value_of;
  }

(* ------------------------------------------------------------------ *)
(* Theorem 2 witness: unbounded delays defeat any wait-based protocol.

   The synchronous protocol runs unchanged (it believes delta = 5) but
   the network delivers the writer's broadcasts to everyone else only
   after an enormous delay, while inquiry traffic stays fast. Writes
   keep completing (the writer's wait is a local timer), readers join,
   inquire, and adopt evidence that is forever stale. Read staleness
   then grows with the number of completed writes, i.e. linearly in
   the horizon: the quantitative face of the impossibility. *)

type async_outcome = {
  staleness : Staleness.report;
  completed_writes : int;
  horizon : int;
}

let async_staleness ~horizon =
  let huge = (4 * horizon) + 10 in
  let delay (dec : Delay.decision) =
    if Pid.equal dec.src (pid 0) && not (Pid.equal dec.dst (pid 0)) then huge else 1
  in
  let cfg =
    {
      Deployment.seed = 3;
      n = 4;
      delay = Delay.adversarial delay;
      churn_rate = 0.0;
      churn_profile = None;
      churn_policy = Dds_churn.Churn.Uniform;
      protect_writer = true;
      initial_value = 0;
      broadcast_mode = Network.Primitive;
      trace_enabled = false;
      events_enabled = false;
      events_first_span = 0;
    }
  in
  let d = Sync_d.create cfg (Sync_register.default_params ~delta:5) in
  let sched = Sync_d.scheduler d in
  let writer = pid 0 in
  (* One write every 20 ticks; one read from a non-writer every 20
     ticks, offset so reads never overlap writes. *)
  let rec drive t =
    if t <= horizon then begin
      ignore
        (Scheduler.schedule_at sched (time t) (fun () ->
             match Sync_d.node d writer with
             | Some node
               when Sync_register.is_active node && not (Sync_register.busy node) ->
               Sync_d.write d writer
             | Some _ | None -> ()));
      ignore
        (Scheduler.schedule_at sched (time (t + 10)) (fun () ->
             match Sync_d.random_idle_active ~exclude:[ writer ] d with
             | Some p -> Sync_d.read d p
             | None -> ()));
      drive (t + 20)
    end
  in
  drive 20;
  Sync_d.run_until d (time horizon);
  let history = Sync_d.history d in
  {
    staleness = Staleness.measure history;
    completed_writes = List.length (History.completed_writes history);
    horizon;
  }

(* ------------------------------------------------------------------ *)
(* The ES protocol's new/old inversion, and the read-repair fix.

   n = 5 (majority 3), writer p0. The WRITE dissemination is stalled
   (broadcasts from p0 crawl once its embedded read finished at t6),
   so only p0 holds the new value for a long while. r1 (by p1, t20)
   catches p0's reply in its majority and returns the new value; r2
   (by p4, t40) is cut off from p0 and p1 (their messages to p4
   crawl), collects {p4, p2, p3} — all stale — and returns the old
   value: a new/old inversion, legal for the regular register.

   With read_repair on, r1 re-disseminates the value it adopted and
   waits for a majority of acknowledgements before returning; p2 and
   p3 then hold the new value, r2's majority must include one of them,
   and the inversion disappears: the classical regular-to-atomic
   transformation, working in the dynamic setting. *)

module Es_d = Deployment.Make (Es_register)

let es_inversion_delay (dec : Delay.decision) =
  let src = Pid.to_int dec.Delay.src and dst = Pid.to_int dec.Delay.dst in
  if
    src = 0
    && dec.Delay.kind = Delay.Broadcast
    && dst <> 0
    && Time.to_int dec.Delay.now >= 6
  then 200
  else if (src = 3 || src = 4) && dst = 1 then 200
  else if (src = 0 || src = 1) && dst = 4 then 200
  else 2

let es_inversion ~read_repair () =
  let cfg =
    {
      Deployment.seed = 4;
      n = 5;
      delay = Delay.adversarial es_inversion_delay;
      churn_rate = 0.0;
      churn_profile = None;
      churn_policy = Dds_churn.Churn.Uniform;
      protect_writer = true;
      initial_value = 0;
      broadcast_mode = Network.Primitive;
      trace_enabled = false;
      events_enabled = false;
      events_first_span = 0;
    }
  in
  let d =
    Es_d.create cfg { (Es_register.default_params ~n:5) with Es_register.read_repair }
  in
  let sched = Es_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 2) (fun () -> Es_d.write d (pid 0)));
  ignore (Scheduler.schedule_at sched (time 20) (fun () -> Es_d.read d (pid 1)));
  ignore (Scheduler.schedule_at sched (time 40) (fun () -> Es_d.read d (pid 4)));
  Es_d.run_until d (time 600);
  let history = Es_d.history d in
  let reads = History.completed_reads history in
  let value_of (o : History.op) =
    match o.History.kind with History.Read v -> v | _ -> None
  in
  let read_of p =
    List.find_opt (fun (o : History.op) -> Pid.equal o.History.pid p) reads
  in
  {
    inversions = Atomicity.inversions history;
    report = Regularity.check history;
    fast_read = Option.bind (read_of (pid 1)) value_of;
    slow_read = Option.bind (read_of (pid 4)) value_of;
  }
