open Dds_net
open Dds_spec

(** The paper's constructed executions, reproduced as deterministic
    scenarios (adversarially scheduled message delays, scripted
    operation times). Each returns enough of the run's evidence for
    tests to assert on and for the bench harness to print.

    - {!fig3}: the Section 3.3 "why the join must wait delta"
      execution (Figures 3a / 3b). A write completes while a process
      joins; with the initial wait disabled the joiner adopts the old
      value and a {e later} read returns it — a regularity violation.
      With the wait (the actual protocol) the run is clean.
    - {!inversion}: the introduction's new/old inversion — two
      sequential reads returning values in write-opposite order, legal
      for a regular register, flagged by the atomicity checker.
    - {!async_staleness}: the Theorem 2 witness — under unbounded
      delays plus churn, read staleness grows with the horizon: no
      wait-based protocol can bound how stale reads get. *)

type fig3_outcome = {
  join_value : Value.t option;  (** value the joiner adopted *)
  read_value : Value.t option;  (** the joiner's post-write read *)
  report : Regularity.report;
  join_duration : int option;  (** ticks the join took *)
}

val fig3 : join_wait:bool -> fig3_outcome
(** [join_wait:false] is Figure 3a (exactly one violation expected);
    [join_wait:true] is Figure 3b (clean). Uses delta = 5 and the
    delay schedule described in the module source. *)

type inversion_outcome = {
  inversions : Atomicity.inversion list;
  report : Regularity.report;
  fast_read : Value.t option;  (** the earlier read (new value) *)
  slow_read : Value.t option;  (** the later read (old value) *)
}

val inversion : unit -> inversion_outcome
(** Expected: regular (no violation) but exactly one inversion. *)

type async_outcome = {
  staleness : Staleness.report;
  completed_writes : int;
  horizon : int;
}

val async_staleness : horizon:int -> async_outcome
(** Runs the synchronous protocol over a network that silently ignores
    its delay bound (delays are finite but enormous), with continuous
    joins replacing readers. Staleness of the last read grows linearly
    in [horizon]. *)

val pid : int -> Pid.t
(** Convenience re-export for callers asserting on specific processes. *)

val es_inversion : read_repair:bool -> unit -> inversion_outcome
(** The quorum protocol's own new/old inversion (E21): a stalled WRITE
    dissemination lets an early read return the new value from the
    writer\'s reply while a later, cut-off read returns the old one.
    [read_repair:true] switches on the regular-to-atomic
    transformation ({!Dds_core.Es_register.params}) and the inversion
    must disappear. *)
