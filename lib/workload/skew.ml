open Dds_sim
open Dds_shard

type storm = { storm_start : Time.t; storm_until : Time.t; storm_bias : float }

type config = {
  keys : int;
  s : float;
  read_rate : float;
  write_every : int;
  start : Time.t;
  until : Time.t;
  storm : storm option;
  rotate_every : int;
}

let default ~keys ~s ~until =
  {
    keys;
    s;
    read_rate = 1.0;
    write_every = 20;
    start = Time.of_int 1;
    until;
    storm = None;
    rotate_every = 0;
  }

(* Zipfian sampling by inverse CDF over ranks: weight(r) = (r+1)^-s,
   cumulated and normalized once per plan, then each draw is one
   uniform float and a binary search. s = 0 degenerates to uniform. *)
let zipf_cdf ~keys ~s =
  let cdf = Array.make keys 0.0 in
  let total = ref 0.0 in
  for r = 0 to keys - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (r + 1)) s);
    cdf.(r) <- !total
  done;
  let norm = !total in
  Array.map (fun c -> c /. norm) cdf

let sample_rank rng cdf =
  let u = Rng.float rng 1.0 in
  (* First rank whose cumulative weight reaches u. *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(* One-at-a-time draws for live load generation: same popularity curve
   and seed-shuffled rank->key permutation as [plan], without the
   up-front materialization (a closed-loop generator does not know how
   many ops it will issue). The rank comes back with the key so the
   caller can classify hot vs cold traffic. *)
type sampler = { cdf : float array; perm : int array; rng : Rng.t; hot_ranks : int }

let sampler ~rng ~keys ~s =
  if keys <= 0 then invalid_arg "Skew.sampler: keys must be positive";
  if s < 0.0 then invalid_arg "Skew.sampler: negative zipf exponent";
  let perm = Array.init keys (fun i -> i) in
  Rng.shuffle_in_place rng perm;
  {
    cdf = zipf_cdf ~keys ~s;
    perm;
    rng;
    (* The "hot" class: the top 1% of ranks (at least one key). Under
       s ~ 1 that is where most of the mass sits; under s = 0 the
       class is arbitrary but harmless — every key performs alike. *)
    hot_ranks = Stdlib.max 1 (keys / 100);
  }

let hot_ranks sm = sm.hot_ranks

let draw sm =
  let rank = sample_rank sm.rng sm.cdf in
  (sm.perm.(rank), rank)

let plan ~rng cfg =
  if cfg.keys <= 0 then invalid_arg "Skew.plan: keys must be positive";
  if cfg.s < 0.0 then invalid_arg "Skew.plan: negative zipf exponent";
  let cdf = zipf_cdf ~keys:cfg.keys ~s:cfg.s in
  (* Rank -> key through a seed-shuffled permutation plus a drifting
     offset: rotation shifts which concrete keys are hot without
     touching the popularity curve — key churn as the workload sees
     it. The permutation draws from the same rng, so the whole plan
     stays one deterministic stream. *)
  let perm = Array.init cfg.keys (fun i -> i) in
  Rng.shuffle_in_place rng perm;
  let offset = ref 0 in
  let key_of_rank r = perm.((r + !offset) mod cfg.keys) in
  let in_storm at st = Time.(st.storm_start <= at) && Time.(at < st.storm_until) in
  let draw_key at =
    let stormed =
      match cfg.storm with
      | Some st when in_storm at st -> Rng.float rng 1.0 < st.storm_bias
      | Some _ | None -> false
    in
    if stormed then key_of_rank 0 else key_of_rank (sample_rank rng cdf)
  in
  let next_value = ref 0 in
  let acc = ref [] in
  let emit at kind key = acc := { Shard.at; key; kind } :: !acc in
  let start = Stdlib.max 1 (Time.to_int cfg.start) in
  for tick = start to Time.to_int cfg.until do
    let at = Time.of_int tick in
    if cfg.rotate_every > 0 && tick mod cfg.rotate_every = 0 then
      offset := (!offset + 1) mod cfg.keys;
    if cfg.write_every > 0 && tick mod cfg.write_every = 0 then begin
      incr next_value;
      emit at (Shard.Write !next_value) (draw_key at)
    end;
    let base = int_of_float cfg.read_rate in
    let frac = cfg.read_rate -. float_of_int base in
    let reads = base + (if Rng.float rng 1.0 < frac then 1 else 0) in
    for _ = 1 to reads do
      emit at Shard.Read (draw_key at)
    done
  done;
  List.rev !acc

let key_histogram ops ~keys =
  let h = Array.make keys 0 in
  List.iter (fun (op : Shard.op) -> h.(op.Shard.key) <- h.(op.Shard.key) + 1) ops;
  h
