open Dds_sim
open Dds_shard

(** Skewed mass-scale key workloads.

    Where {!Generator} drives one register, [Skew.plan] draws a keyed
    operation stream for a whole sharded store: zipfian key popularity
    with configurable exponent, optional hot-key storms, and key churn
    (the identity of the hot keys drifts over time). The plan is drawn
    up front from one dedicated rng, so it is a pure function of
    [(rng seed, config)] — routing it across any number of shards
    re-partitions the same ops, which is what makes per-shard op
    counts conserve and sweeps byte-identical at any worker count. *)

type storm = {
  storm_start : Time.t;
  storm_until : Time.t;  (** window [storm_start, storm_until) *)
  storm_bias : float;
      (** probability an op inside the window is redirected to the
          current hottest key, on top of its zipfian popularity *)
}

type config = {
  keys : int;  (** key-space size *)
  s : float;  (** zipf exponent: 0 = uniform, ~1 = classic zipf *)
  read_rate : float;  (** expected reads per tick, whole store *)
  write_every : int;  (** one write every this many ticks (0: never) *)
  start : Time.t;
  until : Time.t;
  storm : storm option;
  rotate_every : int;
      (** key churn: every this many ticks the rank->key mapping
          rotates one step, so popularity drifts across the key space
          (0: the hot set is fixed for the whole run) *)
}

val default : keys:int -> s:float -> until:Time.t -> config
(** [read_rate 1.0], one write every 20 ticks, no storm, no rotation,
    starting at tick 1. *)

val plan : rng:Rng.t -> config -> Shard.op list
(** The operation stream, in time order (within a tick: the write
    first, then the reads — same convention as {!Generator}). Write
    values are globally unique (1, 2, 3, ... in plan order), so any
    read's provenance is visible across the whole store. *)

val key_histogram : Shard.op list -> keys:int -> int array
(** Ops per key — how tests and tables measure the skew actually
    drawn. *)

(** {1 Live sampling}

    The closed-loop load generator cannot pre-draw a plan (it issues
    until a deadline, not a count); a [sampler] hands out one key at a
    time from the same zipfian popularity curve and seed-shuffled
    rank→key permutation [plan] uses. *)

type sampler

val sampler : rng:Rng.t -> keys:int -> s:float -> sampler

val draw : sampler -> int * int
(** [(key, rank)] — rank 0 is the most popular. The rank lets the
    caller split traffic into key classes (hot head vs cold tail). *)

val hot_ranks : sampler -> int
(** Ranks classified "hot": the top 1% of the key space, at least 1. *)
