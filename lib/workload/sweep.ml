open Dds_sim
open Dds_net
open Dds_churn
open Dds_spec
open Dds_core

module Sync_d = Deployment.Make (Sync_register)
module Es_d = Deployment.Make (Es_register)
module Abd_d = Deployment.Make (Abd_register)
module Sync_gen = Generator.Make (Sync_d)
module Es_gen = Generator.Make (Es_d)
module Abd_gen = Generator.Make (Abd_d)

let time = Time.of_int

(* Engine plumbing: every multi-cell runner submits its independent
   (seed, params) cells through the pool when one is given. Each cell
   builds its own deployment (rng, metrics, history, event sink) from
   its seed, so cells share nothing; [Pool.map] aggregates in
   submission order, which keeps every table byte-identical for any
   worker count. Without a pool the same cells run inline. *)
let pmap ?pool ~key f xs =
  match pool with
  | None -> List.map f xs
  | Some p -> Dds_engine.Pool.map p ~key ~f xs

(* Heavy-first, chunked scheduling for skewed batches.

   [pmap] submits one job per cell; when a few cells are super-linearly
   heavier than the rest (E24's dup plan duplicates every copy of every
   broadcast for the whole horizon, so its work scales with traffic,
   not ticks), the batch's wall clock is set by whichever worker draws
   a heavy cell last, while the tiny cells pay per-job overhead.
   [pmap_partitioned ~heavy] submits the predicted-heavy cells first,
   each as its own job, and folds the light cells into chunks of
   [chunk] so their fixed costs amortize. Results are spliced back into
   submission order, so the output is byte-identical to [pmap] at any
   worker count — jobs stay pure, only the schedule changes. *)
let pmap_partitioned ?pool ~key ~heavy ?(chunk = 3) f xs =
  match pool with
  | None -> List.map f xs
  | Some p ->
    let indexed = List.mapi (fun i x -> (i, x)) xs in
    let heavies, lights = List.partition (fun (_, x) -> heavy x) indexed in
    let rec chunks = function
      | [] -> []
      | l ->
        let rec take k acc rest =
          match (k, rest) with
          | 0, rest | _, ([] as rest) -> (List.rev acc, rest)
          | k, y :: rest -> take (k - 1) (y :: acc) rest
        in
        let c, rest = take chunk [] l in
        c :: chunks rest
    in
    let job_of_cells cells =
      {
        Dds_engine.Pool.key = String.concat "+" (List.map (fun (_, x) -> key x) cells);
        run = (fun () -> List.map (fun (i, x) -> (i, f x)) cells);
      }
    in
    let jobs =
      List.map (fun c -> job_of_cells [ c ]) heavies @ List.map job_of_cells (chunks lights)
    in
    Dds_engine.Pool.run p jobs
    |> List.concat
    |> List.sort (fun (i, _) (j, _) -> Stdlib.compare i j)
    |> List.map snd

let latency_of (o : History.op) =
  Option.map (fun r -> Time.diff r o.History.invoked) o.History.responded

let latency_stats ops =
  let s = Stats.create () in
  List.iter (fun o -> match latency_of o with Some l -> Stats.add_int s l | None -> ()) ops;
  s

let is_read (o : History.op) =
  match o.History.kind with History.Read _ -> true | _ -> false

let is_write (o : History.op) =
  match o.History.kind with History.Write _ -> true | _ -> false

let is_join (o : History.op) =
  match o.History.kind with History.Join _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* E4 *)

type lemma2_row = {
  l2_c : float;
  l2_ratio : float;
  l2_bound : float;
  l2_measured_min : int;
  l2_instant_min : int;
}

let lemma2 ?pool ~n ~delta ~ratios ~horizon ~seed () =
  pmap ?pool
    ~key:(fun ratio -> Printf.sprintf "lemma2:ratio=%g" ratio)
    (fun ratio ->
      let c = ratio /. (3.0 *. float_of_int delta) in
      let cfg =
        {
          (Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta)
             ~churn_rate:c)
          with
          Deployment.churn_policy = Churn.Active_first;
        }
      in
      let d = Sync_d.create cfg (Sync_register.default_params ~delta) in
      Sync_d.start_churn d ~until:(time horizon);
      Sync_d.run_until d (time (horizon + (4 * delta)));
      let analysis = Sync_d.analysis d in
      let warmup = 4 * delta in
      let _, window_min =
        Analysis.min_active_window analysis ~window:(3 * delta) ~from_:(time warmup)
          ~until:(time (horizon - (3 * delta) - 1))
      in
      let _, instant_min =
        Analysis.min_active analysis ~from_:(time warmup) ~until:(time (horizon - 1))
      in
      {
        l2_c = c;
        l2_ratio = ratio;
        l2_bound = float_of_int n *. (1.0 -. (3.0 *. float_of_int delta *. c));
        l2_measured_min = window_min;
        l2_instant_min = instant_min;
      })
    ratios

(* ------------------------------------------------------------------ *)
(* E5 *)

type safety_row = {
  sf_ratio : float;
  sf_c : float;
  sf_runs : int;
  sf_violations : int;
  sf_runs_with_violation : int;
  sf_join_retries : int;
  sf_incomplete_joins : int;
}

let sync_safety ?(on_empty = Sync_register.Retry) ?pool ~n ~delta ~ratios ~seeds ~horizon () =
  (* The (ratio, seed) grid is the job unit: every run is a pure
     function of its cell, and the per-ratio totals are folded back in
     canonical grid order afterwards. *)
  let run_one (ratio, seed) =
    let c = ratio /. (3.0 *. float_of_int delta) in
    let cfg =
      {
        (Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta)
           ~churn_rate:c)
        with
        Deployment.churn_policy = Churn.Active_first;
      }
    in
    let d =
      Sync_d.create cfg
        { (Sync_register.default_params ~delta) with Sync_register.on_empty_inquiry = on_empty }
    in
    Sync_d.start_churn d ~until:(time horizon);
    Sync_gen.run d
      { Generator.read_rate = 1.0; write_every = 5 * delta; start = time 1;
        until = time horizon };
    Sync_d.run_until d (time (horizon + (4 * delta)));
    let report = Sync_d.regularity d in
    let violations = List.length report.Regularity.violations in
    let retries = Metrics.get (Sync_d.metrics d) "sync.join.retry" in
    let pending_joins =
      List.length (List.filter is_join (History.pending (Sync_d.history d)))
    in
    (violations, retries, pending_joins)
  in
  let grid = List.concat_map (fun ratio -> List.map (fun seed -> (ratio, seed)) seeds) ratios in
  let outcomes =
    pmap ?pool
      ~key:(fun (ratio, seed) -> Printf.sprintf "safety:ratio=%g:seed=%d" ratio seed)
      run_one grid
  in
  let cells = List.combine grid outcomes in
  List.map
    (fun ratio ->
      let v, rwv, jr, pj =
        List.fold_left
          (fun (v, rwv, jr, pj) ((r, _), (violations, retries, pending)) ->
            if r <> ratio then (v, rwv, jr, pj)
            else
              ( v + violations,
                (rwv + if violations > 0 then 1 else 0),
                jr + retries,
                pj + pending ))
          (0, 0, 0, 0) cells
      in
      {
        sf_ratio = ratio;
        sf_c = ratio /. (3.0 *. float_of_int delta);
        sf_runs = List.length seeds;
        sf_violations = v;
        sf_runs_with_violation = rwv;
        sf_join_retries = jr;
        sf_incomplete_joins = pj;
      })
    ratios

(* ------------------------------------------------------------------ *)
(* E6 / E8 *)

type latency_row = {
  lat_protocol : string;
  lat_phase : string;
  lat_op : string;
  lat_stats : Stats.t;
}

let rows_for ~protocol ~phase ops =
  [
    { lat_protocol = protocol; lat_phase = phase; lat_op = "join";
      lat_stats = latency_stats (List.filter is_join ops) };
    { lat_protocol = protocol; lat_phase = phase; lat_op = "read";
      lat_stats = latency_stats (List.filter is_read ops) };
    { lat_protocol = protocol; lat_phase = phase; lat_op = "write";
      lat_stats = latency_stats (List.filter is_write ops) };
  ]

let completed_ops history =
  List.filter
    (fun (o : History.op) -> (not o.History.aborted) && o.History.responded <> None)
    (History.ops history)

let sync_latency ~n ~delta ~c ~horizon ~seed =
  let cfg =
    Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta) ~churn_rate:c
  in
  let d = Sync_d.create cfg (Sync_register.default_params ~delta) in
  Sync_d.start_churn d ~until:(time horizon);
  Sync_gen.run d
    { Generator.read_rate = 1.0; write_every = 4 * delta; start = time 1;
      until = time horizon };
  Sync_d.run_until d (time (horizon + (4 * delta)));
  rows_for ~protocol:"sync" ~phase:"synchronous" (completed_ops (Sync_d.history d))

let es_latency ~n ~gst ~delta ~wild ~horizon ~seed =
  let delay = Delay.eventually_synchronous ~gst:(time gst) ~delta ~wild in
  let cfg = Deployment.default_config ~seed ~n ~delay ~churn_rate:0.005 in
  let d = Es_d.create cfg (Es_register.default_params ~n) in
  Es_d.start_churn d ~until:(time horizon);
  Es_gen.run d
    { Generator.read_rate = 0.3; write_every = 10 * delta; start = time 1;
      until = time horizon };
  Es_d.run_until d (time (horizon + (20 * wild)));
  let ops = completed_ops (Es_d.history d) in
  let pre, post =
    List.partition (fun (o : History.op) -> Time.to_int o.History.invoked < gst) ops
  in
  rows_for ~protocol:"es" ~phase:"pre-GST" pre @ rows_for ~protocol:"es" ~phase:"post-GST" post

(* ------------------------------------------------------------------ *)
(* E7 *)

type async_row = {
  as_horizon : int;
  as_completed_writes : int;
  as_max_staleness : int;
  as_mean_staleness : float;
}

let async_series ?pool ~horizons () =
  pmap ?pool
    ~key:(fun horizon -> Printf.sprintf "async:horizon=%d" horizon)
    (fun horizon ->
      let o = Scenario.async_staleness ~horizon in
      {
        as_horizon = horizon;
        as_completed_writes = o.Scenario.completed_writes;
        as_max_staleness = o.Scenario.staleness.Staleness.max_staleness;
        as_mean_staleness = Stats.mean o.Scenario.staleness.Staleness.stats;
      })
    horizons

(* ------------------------------------------------------------------ *)
(* E9 *)

type boundary_row = {
  bd_c : float;
  bd_completed : int;
  bd_pending : int;
  bd_aborted : int;
  bd_min_active : int;
  bd_majority : int;
  bd_violations : int;
}

let es_boundary ?pool ~n ~rates ~horizon ~seed () =
  pmap ?pool
    ~key:(fun c -> Printf.sprintf "boundary:c=%g" c)
    (fun c ->
      let cfg =
        {
          (Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta:3)
             ~churn_rate:c)
          with
          Deployment.churn_policy = Churn.Active_first;
        }
      in
      let d = Es_d.create cfg (Es_register.default_params ~n) in
      Es_d.start_churn d ~until:(time horizon);
      Es_gen.run d
        { Generator.read_rate = 0.5; write_every = 25; start = time 1; until = time horizon };
      Es_d.run_until d (time (horizon + 50));
      let h = Es_d.history d in
      let analysis = Es_d.analysis d in
      let _, min_active = Analysis.min_active analysis ~from_:(time 10) ~until:(time horizon) in
      {
        bd_c = c;
        bd_completed = List.length (completed_ops h);
        bd_pending = List.length (History.pending h);
        bd_aborted = List.length (History.aborted h);
        bd_min_active = min_active;
        bd_majority = (n / 2) + 1;
        bd_violations = List.length (Es_d.regularity d).Regularity.violations;
      })
    rates

(* ------------------------------------------------------------------ *)
(* E10 *)

type versus_row = {
  vs_protocol : string;
  vs_completed : int;
  vs_pending : int;
  vs_violations : int;
  vs_last_completed_at : int;
  vs_founders_alive_at_end : int;
}

let last_completed_tick history =
  List.fold_left
    (fun acc (o : History.op) ->
      match o.History.responded with
      | Some r when not o.History.aborted -> Stdlib.max acc (Time.to_int r)
      | _ -> acc)
    0 (History.ops history)

let founders_alive membership ~n =
  List.length
    (List.filter
       (fun pid -> Pid.to_int pid < n)
       (Membership.present membership))

let abd_vs_dynamic ?pool ~n ~delta ~c ~horizon ~seed () =
  let gen_cfg =
    { Generator.read_rate = 0.5; write_every = 10 * delta; start = time 1;
      until = time horizon }
  in
  let base_cfg =
    Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta) ~churn_rate:c
  in
  let run_sync () =
    let d = Sync_d.create base_cfg (Sync_register.default_params ~delta) in
    Sync_d.start_churn d ~until:(time horizon);
    Sync_gen.run d gen_cfg;
    Sync_d.run_until d (time (horizon + 50));
    let h = Sync_d.history d in
    {
      vs_protocol = "sync";
      vs_completed = List.length (completed_ops h);
      vs_pending = List.length (History.pending h);
      vs_violations = List.length (Sync_d.regularity d).Regularity.violations;
      vs_last_completed_at = last_completed_tick h;
      vs_founders_alive_at_end = founders_alive (Sync_d.membership d) ~n;
    }
  in
  let run_es () =
    let d = Es_d.create base_cfg (Es_register.default_params ~n) in
    Es_d.start_churn d ~until:(time horizon);
    Es_gen.run d gen_cfg;
    Es_d.run_until d (time (horizon + 50));
    let h = Es_d.history d in
    {
      vs_protocol = "es";
      vs_completed = List.length (completed_ops h);
      vs_pending = List.length (History.pending h);
      vs_violations = List.length (Es_d.regularity d).Regularity.violations;
      vs_last_completed_at = last_completed_tick h;
      vs_founders_alive_at_end = founders_alive (Es_d.membership d) ~n;
    }
  in
  let run_abd () =
    let d = Abd_d.create base_cfg (Abd_register.default_params ~group_size:n) in
    Abd_d.start_churn d ~until:(time horizon);
    Abd_gen.run d gen_cfg;
    Abd_d.run_until d (time (horizon + 50));
    let h = Abd_d.history d in
    {
      vs_protocol = "abd";
      vs_completed = List.length (completed_ops h);
      vs_pending = List.length (History.pending h);
      vs_violations = List.length (Abd_d.regularity d).Regularity.violations;
      vs_last_completed_at = last_completed_tick h;
      vs_founders_alive_at_end = founders_alive (Abd_d.membership d) ~n;
    }
  in
  pmap ?pool
    ~key:(fun (name, _) -> "versus:" ^ name)
    (fun (_, f) -> f ())
    [ ("sync", run_sync); ("es", run_es); ("abd", run_abd) ]

(* ------------------------------------------------------------------ *)
(* E11 *)

type msg_row = {
  mc_protocol : string;
  mc_n : int;
  mc_per_read : float;
  mc_per_write : float;
  mc_per_join : float;
}

(* Transmissions = every scheduled point-to-point delivery attempt
   (a broadcast to n processes counts n). *)
let transmissions metrics =
  Metrics.get metrics "net.delivered" + Metrics.get metrics "net.dropped"
  + Metrics.get metrics "net.faulted"

(* Runs [ops] identical operations with no churn and divides the
   transmission delta by the count. [quiesce] must run the system to
   quiescence between phases. *)
let measure_phase ~metrics ~quiesce ~ops ~issue =
  quiesce ();
  let before = transmissions metrics in
  for i = 1 to ops do
    issue i;
    quiesce ()
  done;
  float_of_int (transmissions metrics - before) /. float_of_int ops

let msg_complexity ?pool ~ns ~delta ~seed () =
  let ops = 10 in
  let row_for (n, protocol) =
    let cfg =
      Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta) ~churn_rate:0.0
    in
    match protocol with
    | "sync" ->
        let d = Sync_d.create cfg (Sync_register.default_params ~delta) in
        let metrics = Sync_d.metrics d in
        let quiesce () = Sync_d.run_to_quiescence d () in
        let writer = Option.get (Sync_d.writer d) in
        let per_read =
          measure_phase ~metrics ~quiesce ~ops ~issue:(fun _ -> Sync_d.read d (Pid.of_int 1))
        in
        let per_write =
          measure_phase ~metrics ~quiesce ~ops ~issue:(fun _ -> Sync_d.write d writer)
        in
        let per_join =
          measure_phase ~metrics ~quiesce ~ops ~issue:(fun _ -> ignore (Sync_d.spawn d))
        in
        { mc_protocol = "sync"; mc_n = n; mc_per_read = per_read; mc_per_write = per_write;
          mc_per_join = per_join }
    | "es" ->
        let d = Es_d.create cfg (Es_register.default_params ~n) in
        let metrics = Es_d.metrics d in
        let quiesce () = Es_d.run_to_quiescence d () in
        let writer = Option.get (Es_d.writer d) in
        let per_read =
          measure_phase ~metrics ~quiesce ~ops ~issue:(fun _ -> Es_d.read d (Pid.of_int 1))
        in
        let per_write =
          measure_phase ~metrics ~quiesce ~ops ~issue:(fun _ -> Es_d.write d writer)
        in
        let per_join =
          measure_phase ~metrics ~quiesce ~ops ~issue:(fun _ -> ignore (Es_d.spawn d))
        in
        { mc_protocol = "es"; mc_n = n; mc_per_read = per_read; mc_per_write = per_write;
          mc_per_join = per_join }
    | _ ->
        let d = Abd_d.create cfg (Abd_register.default_params ~group_size:n) in
        let metrics = Abd_d.metrics d in
        let quiesce () = Abd_d.run_to_quiescence d () in
        let writer = Option.get (Abd_d.writer d) in
        let per_read =
          measure_phase ~metrics ~quiesce ~ops ~issue:(fun _ -> Abd_d.read d (Pid.of_int 1))
        in
        let per_write =
          measure_phase ~metrics ~quiesce ~ops ~issue:(fun _ -> Abd_d.write d writer)
        in
        let per_join =
          measure_phase ~metrics ~quiesce ~ops ~issue:(fun _ -> ignore (Abd_d.spawn d))
        in
        { mc_protocol = "abd"; mc_n = n; mc_per_read = per_read; mc_per_write = per_write;
          mc_per_join = per_join }
  in
  let cells =
    List.concat_map (fun n -> List.map (fun p -> (n, p)) [ "sync"; "es"; "abd" ]) ns
  in
  pmap ?pool ~key:(fun (n, p) -> Printf.sprintf "msgs:%s:n=%d" p n) row_for cells

(* ------------------------------------------------------------------ *)
(* E12 *)

type tq_row = {
  tq_c : float;
  tq_size : int;
  tq_lifetime : int;
  tq_hold_rate : float;
  tq_expected_survivors : float;
  tq_measured_survivors : float;
  tq_intersect_rate : float;
}

let timed_quorum ?pool ~n ~cs ~lifetime ~trials ~seed () =
  pmap ?pool
    ~key:(fun c -> Printf.sprintf "quorum:c=%g" c)
    (fun c ->
      let size = (n / 2) + 1 in
      let held = ref 0 and intersected = ref 0 and survivors_total = ref 0 in
      for trial = 1 to trials do
        let rng = Rng.create ~seed:(seed + (trial * 7919)) in
        let sched = Scheduler.create () in
        let membership = Membership.create () in
        let gen = Pid.generator () in
        for _ = 1 to n do
          let p = Pid.fresh gen in
          Membership.add membership p ~now:Time.zero;
          Membership.set_active membership p ~now:Time.zero
        done;
        let spawn () =
          let p = Pid.fresh gen in
          Membership.add membership p ~now:(Scheduler.now sched);
          Membership.set_active membership p ~now:(Scheduler.now sched)
        in
        let retire p = Membership.remove membership p ~now:(Scheduler.now sched) in
        let churn =
          Churn.create ~sched ~rng:(Rng.split rng) ~membership ~n ~rate:c ~spawn ~retire ()
        in
        Churn.start churn ~until:(time (lifetime + 2));
        let qa =
          Dds_quorum.Timed_quorum.acquire ~membership ~rng ~now:Time.zero ~size ~lifetime
        in
        let qb =
          Dds_quorum.Timed_quorum.acquire ~membership ~rng ~now:Time.zero ~size ~lifetime
        in
        Scheduler.run_until sched (time lifetime);
        match (qa, qb) with
        | Some qa, Some qb ->
          let surv = Dds_quorum.Timed_quorum.survivors qa membership in
          survivors_total := !survivors_total + Pid.Set.cardinal surv;
          if Dds_quorum.Timed_quorum.holds qa membership ~threshold:((size / 2) + 1) then
            incr held;
          if
            not
              (Pid.Set.is_empty
                 (Dds_quorum.Timed_quorum.intersecting_survivors qa qb membership))
          then incr intersected
        | _ -> ()
      done;
      let ft = float_of_int trials in
      {
        tq_c = c;
        tq_size = size;
        tq_lifetime = lifetime;
        tq_hold_rate = float_of_int !held /. ft;
        tq_expected_survivors =
          Dds_quorum.Timed_quorum.expected_survivors ~size ~c ~elapsed:lifetime;
        tq_measured_survivors = float_of_int !survivors_total /. ft;
        tq_intersect_rate = float_of_int !intersected /. ft;
      })
    cs

(* ------------------------------------------------------------------ *)
(* E13 *)

type threshold_row = {
  th_delta : int;
  th_paper_bound : float;
  th_empirical : float;
  th_step : float;
  th_ratio : float;
}

(* One probe run at rate [c]; returns true when the run was clean:
   no safety violation and no join stuck at the horizon. *)
let sync_probe ~n ~delta ~seed ~horizon c =
  let cfg =
    {
      (Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta) ~churn_rate:c)
      with
      Deployment.churn_policy = Churn.Active_first;
    }
  in
  let d =
    Sync_d.create cfg
      {
        (Sync_register.default_params ~delta) with
        Sync_register.on_empty_inquiry = Sync_register.Adopt_bottom;
      }
  in
  Sync_d.start_churn d ~until:(time horizon);
  Sync_gen.run d
    { Generator.read_rate = 1.0; write_every = 5 * delta; start = time 1;
      until = time horizon };
  Sync_d.run_until d (time (horizon + (4 * delta)));
  let report = Sync_d.regularity d in
  let stuck =
    List.exists is_join (History.pending (Sync_d.history d))
  in
  report.Regularity.violations = [] && not stuck

(* The upward scan inside each cell is adaptive (each probe depends on
   the previous one passing), so the parallel unit is the delta, not
   the probe. *)
let churn_threshold ?pool ~n ~deltas ~seeds ~horizon () =
  pmap ?pool
    ~key:(fun delta -> Printf.sprintf "threshold:delta=%d" delta)
    (fun delta ->
      let bound = 1.0 /. (3.0 *. float_of_int delta) in
      let step = bound /. 10.0 in
      (* Scan upward from the paper bound's first decile until a probe
         fails for some seed; cap the scan at 4x the bound. *)
      let clean c = List.for_all (fun seed -> sync_probe ~n ~delta ~seed ~horizon c) seeds in
      let rec scan c best =
        if c > 4.0 *. bound || c >= 0.99 then best
        else if clean c then scan (c +. step) c
        else best
      in
      let empirical = scan step 0.0 in
      {
        th_delta = delta;
        th_paper_bound = bound;
        th_empirical = empirical;
        th_step = step;
        th_ratio = empirical /. bound;
      })
    deltas

(* ------------------------------------------------------------------ *)
(* E14 *)

type burst_row = {
  br_label : string;
  br_avg_c : float;
  br_peak_c : float;
  br_violations : int;
  br_stuck_joins : int;
  br_runs : int;
}

let bursty_churn ?pool ~n ~delta ~seeds ~horizon () =
  let threshold = 1.0 /. (3.0 *. float_of_int delta) in
  let avg = 0.6 *. threshold in
  (* Same average rate, increasing peakedness: constant; peak at the
     threshold; peak well above it. Period 40 ticks, 10-tick bursts. *)
  let period = 40 and burst = 10 in
  let mk_peak peak =
    (* base so that (base*(period-burst) + peak*burst)/period = avg *)
    let base =
      ((avg *. float_of_int period) -. (peak *. float_of_int burst))
      /. float_of_int (period - burst)
    in
    (Stdlib.max 0.0 base, peak)
  in
  let profiles =
    [
      ("constant", Churn.Constant avg, avg);
      (let base, peak = mk_peak threshold in
       ( "peak = bound",
         Churn.Bursty { base; peak; period; burst },
         peak ));
      (let base, peak = mk_peak (2.0 *. threshold) in
       ("peak = 2x bound", Churn.Bursty { base; peak; period; burst }, peak));
      (let base, peak = mk_peak (3.2 *. threshold) in
       ("peak = 3.2x bound", Churn.Bursty { base; peak; period; burst }, peak));
    ]
  in
  (* Flattened (profile, seed) grid: the per-profile totals are folded
     back in canonical order after the cells come home. *)
  let run_one ((_, profile, _), seed) =
    let cfg =
      {
        (Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta)
           ~churn_rate:avg)
        with
        Deployment.churn_profile = Some profile;
        Deployment.churn_policy = Churn.Active_first;
      }
    in
    let d =
      Sync_d.create cfg
        {
          (Sync_register.default_params ~delta) with
          Sync_register.on_empty_inquiry = Sync_register.Adopt_bottom;
        }
    in
    Sync_d.start_churn d ~until:(time horizon);
    Sync_gen.run d
      { Generator.read_rate = 1.0; write_every = 5 * delta; start = time 1;
        until = time horizon };
    Sync_d.run_until d (time (horizon + (4 * delta)));
    ( List.length (Sync_d.regularity d).Regularity.violations,
      List.length (List.filter is_join (History.pending (Sync_d.history d))) )
  in
  let grid = List.concat_map (fun p -> List.map (fun s -> (p, s)) seeds) profiles in
  let outcomes =
    pmap ?pool
      ~key:(fun ((label, _, _), seed) -> Printf.sprintf "burst:%s:seed=%d" label seed)
      run_one grid
  in
  let cells = List.combine grid outcomes in
  List.map
    (fun (label, _, peak) ->
      let violations, stuck =
        List.fold_left
          (fun (v, s) (((l, _, _), _), (dv, ds)) ->
            if l <> label then (v, s) else (v + dv, s + ds))
          (0, 0) cells
      in
      {
        br_label = label;
        br_avg_c = avg;
        br_peak_c = peak;
        br_violations = violations;
        br_stuck_joins = stuck;
        br_runs = List.length seeds;
      })
    profiles

(* ------------------------------------------------------------------ *)
(* E15 *)

type loss_row = {
  ls_protocol : string;
  ls_loss : float;
  ls_completed : int;
  ls_pending : int;
  ls_violations : int;
}

let message_loss ?pool ~n ~delta ~losses ~horizon ~seed () =
  let gen_cfg =
    { Generator.read_rate = 0.5; write_every = 5 * delta; start = time 1;
      until = time horizon }
  in
  let row_for (loss, protocol) =
    let cfg =
      Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta)
        ~churn_rate:0.01
    in
    let fault rng (_ : Delay.decision) = Rng.float rng 1.0 < loss in
    match protocol with
    | "sync" ->
        let d = Sync_d.create cfg (Sync_register.default_params ~delta) in
        if loss > 0.0 then
          Network.set_fault (Sync_d.network d) (fault (Rng.create ~seed:(seed + 1)));
        Sync_d.start_churn d ~until:(time horizon);
        Sync_gen.run d gen_cfg;
        Sync_d.run_until d (time (horizon + (4 * delta)));
        let h = Sync_d.history d in
        {
          ls_protocol = "sync";
          ls_loss = loss;
          ls_completed = List.length (completed_ops h);
          ls_pending = List.length (History.pending h);
          ls_violations = List.length (Sync_d.regularity d).Regularity.violations;
        }
    | _ ->
        let d = Es_d.create cfg (Es_register.default_params ~n) in
        if loss > 0.0 then
          Network.set_fault (Es_d.network d) (fault (Rng.create ~seed:(seed + 2)));
        Es_d.start_churn d ~until:(time horizon);
        Es_gen.run d gen_cfg;
        Es_d.run_until d (time (horizon + (4 * delta)));
        let h = Es_d.history d in
        {
          ls_protocol = "es";
          ls_loss = loss;
          ls_completed = List.length (completed_ops h);
          ls_pending = List.length (History.pending h);
          ls_violations = List.length (Es_d.regularity d).Regularity.violations;
        }
  in
  let cells = List.concat_map (fun loss -> [ (loss, "sync"); (loss, "es") ]) losses in
  pmap ?pool ~key:(fun (loss, p) -> Printf.sprintf "loss:%s:p=%g" p loss) row_for cells

(* ------------------------------------------------------------------ *)
(* E16 *)

type join_opt_row = {
  jo_variant : string;
  jo_p2p : int;
  jo_join_mean : float;
  jo_join_max : float;
  jo_joins : int;
  jo_violations : int;
}

let join_wait_optimization ?pool ~n ~delta ~p2ps ~horizon ~seed () =
  let run (variant, p2p, params) =
    let cfg =
      Deployment.default_config ~seed ~n
        ~delay:(Delay.synchronous_split ~broadcast:delta ~p2p)
        ~churn_rate:0.02
    in
    let d = Sync_d.create cfg params in
    Sync_d.start_churn d ~until:(time horizon);
    Sync_gen.run d
      { Generator.read_rate = 0.5; write_every = 5 * delta; start = time 1;
        until = time horizon };
    Sync_d.run_until d (time (horizon + (4 * delta)));
    let joins = List.filter is_join (completed_ops (Sync_d.history d)) in
    let stats = latency_stats joins in
    {
      jo_variant = variant;
      jo_p2p = p2p;
      jo_join_mean = Stats.mean stats;
      jo_join_max = Stats.max_value stats;
      jo_joins = Stats.count stats;
      jo_violations = List.length (Sync_d.regularity d).Regularity.violations;
    }
  in
  let variants =
    ("wait 2*delta (paper)", delta, Sync_register.default_params ~delta)
    :: List.map
         (fun p2p ->
           ( Printf.sprintf "wait delta+%d (footnote 4)" p2p,
             p2p,
             { (Sync_register.default_params ~delta) with Sync_register.p2p_delta = Some p2p }
           ))
         p2ps
  in
  pmap ?pool ~key:(fun (variant, _, _) -> "join:" ^ variant) run variants

(* ------------------------------------------------------------------ *)
(* E17 *)

type broadcast_row = {
  bc_mode : string;
  bc_loss : float;
  bc_completed : int;
  bc_violations : int;
  bc_transmissions : int;
}

let broadcast_robustness ?pool ~n ~losses ~horizon ~seed () =
  (* Per-hop bound 2, flooding depth 2: the protocol-level delta is
     depth * hop = 4 in both modes so runs are comparable. *)
  let hop = 2 in
  let depth = 2 in
  let delta = depth * hop in
  let run (loss, mode, mode_name) =
    let cfg =
      {
        (Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta:hop)
           ~churn_rate:0.01)
        with
        Deployment.broadcast_mode = mode;
      }
    in
    let d = Sync_d.create cfg (Sync_register.default_params ~delta) in
    if loss > 0.0 then begin
      let rng = Rng.create ~seed:(seed + 13) in
      Network.set_fault (Sync_d.network d) (fun _ -> Rng.float rng 1.0 < loss)
    end;
    Sync_d.start_churn d ~until:(time horizon);
    Sync_gen.run d
      { Generator.read_rate = 0.5; write_every = 5 * delta; start = time 1;
        until = time horizon };
    Sync_d.run_until d (time (horizon + (4 * delta)));
    let metrics = Sync_d.metrics d in
    {
      bc_mode = mode_name;
      bc_loss = loss;
      bc_completed = List.length (completed_ops (Sync_d.history d));
      bc_violations = List.length (Sync_d.regularity d).Regularity.violations;
      bc_transmissions = transmissions metrics;
    }
  in
  let cells =
    List.concat_map
      (fun loss ->
        [
          (loss, Network.Primitive, "primitive");
          (loss, Network.Flooding { relay_depth = depth }, "flooding");
        ])
      losses
  in
  pmap ?pool ~key:(fun (loss, _, name) -> Printf.sprintf "bcast:%s:loss=%g" name loss) run cells

(* ------------------------------------------------------------------ *)
(* E18 *)

type consensus_row = {
  cn_c : float;
  cn_protected : bool;
  cn_present : int;
  cn_decided : int;
  cn_attempts : int;
  cn_first_decision : int option;
  cn_agreement : bool;
  cn_validity : bool;
}

let consensus_under_churn ?pool ~n ~k ~cs ~horizon ~seed () =
  let open Dds_alpha in
  let run ~c ~protected_participants =
    (* Participants are the first k founders; protection (when on)
       shields them from churn so a leader eventually persists. *)
    let participants = ref [] in
    let protect pid = protected_participants && List.exists (Pid.equal pid) !participants in
    let arr =
      Register_array.create ~seed ~n ~k ~delay:(Delay.synchronous ~delta:3) ~churn_rate:c
        ~protect ()
    in
    participants := List.filteri (fun i _ -> i < k) (Register_array.founding arr);
    let cons = Consensus.create arr ~retry_every:20 () in
    List.iteri (fun i pid -> Consensus.propose cons pid (100 + i)) !participants;
    if c > 0.0 then Register_array.start_churn arr ~until:(time horizon);
    Consensus.start cons ~until:(time horizon);
    Scheduler.run_until (Register_array.scheduler arr) (time (horizon + 100));
    {
      cn_c = c;
      cn_protected = protected_participants;
      cn_present = Membership.n_present (Register_array.membership arr);
      cn_decided = Consensus.decided_count cons;
      cn_attempts = Consensus.attempts_used cons;
      cn_first_decision =
        Option.map Time.to_int (Consensus.first_decision_at cons);
      cn_agreement = Consensus.agreement_ok cons;
      cn_validity = Consensus.validity_ok cons;
    }
  in
  let cells =
    List.map (fun c -> (c, true)) cs
    @ [ (List.fold_left Float.max 0.0 cs, false) ]
  in
  pmap ?pool
    ~key:(fun (c, prot) -> Printf.sprintf "consensus:c=%g:protected=%b" c prot)
    (fun (c, protected_participants) -> run ~c ~protected_participants)
    cells

(* ------------------------------------------------------------------ *)
(* E19 *)

type geo_row = {
  geo_speed : float;
  geo_churn : float;  (** emergent churn rate, measured *)
  geo_threshold_ratio : float;  (** emergent c / (1/(3 delta)) *)
  geo_mean_population : float;
  geo_joins : int;
  geo_reads : int;
  geo_violations : int;
}

let geo_speed ?pool ~speeds ~horizon ~seed () =
  pmap ?pool
    ~key:(fun speed -> Printf.sprintf "geo:speed=%g" speed)
    (fun speed ->
      let open Dds_geo in
      let cfg = Zone_world.default_config ~seed ~speed in
      let w = Zone_world.create cfg in
      Zone_world.start w ~until:(time horizon);
      Zone_world.start_activity w ~read_rate:1.0 ~write_every:15 ~until:(time horizon);
      Zone_world.run_until w (time (horizon + 50));
      let r = Zone_world.regularity w in
      let churn = Zone_world.emergent_churn w in
      {
        geo_speed = speed;
        geo_churn = churn;
        geo_threshold_ratio = churn *. 3.0 *. float_of_int cfg.Zone_world.delta;
        geo_mean_population = Stats.mean (Zone_world.population_stats w);
        geo_joins = r.Regularity.checked_joins;
        geo_reads = r.Regularity.checked_reads;
        geo_violations = List.length r.Regularity.violations;
      })
    speeds

(* ------------------------------------------------------------------ *)
(* E20 *)

type quorum_row = {
  qa_quorum : int;
  qa_majority : int;
  qa_completed : int;
  qa_pending : int;
  qa_violations : int;
  qa_inversions : int;
}

let quorum_ablation ?(loss = 0.0) ?pool ~n ~quorums ~c ~horizon ~seed () =
  pmap ?pool
    ~key:(fun quorum -> Printf.sprintf "ablate:q=%d" quorum)
    (fun quorum ->
      let cfg =
        Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta:3)
          ~churn_rate:c
      in
      let d =
        Es_d.create cfg
          { (Es_register.default_params ~n) with Es_register.quorum_override = Some quorum }
      in
      if loss > 0.0 then begin
        let rng = Rng.create ~seed:(seed + 3) in
        Network.set_fault (Es_d.network d) (fun _ -> Rng.float rng 1.0 < loss)
      end;
      Es_d.start_churn d ~until:(time horizon);
      Es_gen.run d
        { Generator.read_rate = 1.0; write_every = 20; start = time 1; until = time horizon };
      Es_d.run_until d (time (horizon + 60));
      let h = Es_d.history d in
      {
        qa_quorum = quorum;
        qa_majority = (n / 2) + 1;
        qa_completed = List.length (completed_ops h);
        qa_pending = List.length (History.pending h);
        qa_violations = List.length (Es_d.regularity d).Regularity.violations;
        qa_inversions = List.length (Atomicity.inversions h);
      })
    quorums

(* ------------------------------------------------------------------ *)
(* E21 *)

type repair_row = {
  rp_variant : string;
  rp_scenario_inversions : int;  (** the constructed execution *)
  rp_run_inversions : int;  (** a randomized churn run *)
  rp_read_mean : float;  (** read latency in that run *)
  rp_violations : int;
}

let read_repair_ablation ?pool ~n ~horizon ~seed () =
  let run read_repair =
    let scenario = Scenario.es_inversion ~read_repair () in
    let cfg =
      Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta:3)
        ~churn_rate:0.01
    in
    let d =
      Es_d.create cfg { (Es_register.default_params ~n) with Es_register.read_repair }
    in
    Es_d.start_churn d ~until:(time horizon);
    Es_gen.run d
      { Generator.read_rate = 0.5; write_every = 25; start = time 1; until = time horizon };
    Es_d.run_until d (time (horizon + 60));
    let h = Es_d.history d in
    {
      rp_variant = (if read_repair then "read-repair (atomic)" else "plain (regular)");
      rp_scenario_inversions = List.length scenario.Scenario.inversions;
      rp_run_inversions = List.length (Atomicity.inversions h);
      rp_read_mean = Stats.mean (latency_stats (List.filter is_read (completed_ops h)));
      rp_violations = List.length (Es_d.regularity d).Regularity.violations;
    }
  in
  pmap ?pool
    ~key:(fun rr -> Printf.sprintf "repair:on=%b" rr)
    run [ false; true ]

(* ------------------------------------------------------------------ *)
(* E22 *)

type calibration_row = {
  cb_believed : int;  (** the delta the protocol waits on *)
  cb_actual : int;  (** the network's real bound *)
  cb_violations : int;
  cb_join_mean : float;
  cb_joins : int;
}

let delta_calibration ?pool ~n ~actual ~believed ~horizon ~seed () =
  pmap ?pool
    ~key:(fun believed_delta -> Printf.sprintf "calib:believed=%d" believed_delta)
    (fun believed_delta ->
      let cfg =
        Deployment.default_config ~seed ~n
          ~delay:(Delay.synchronous ~delta:actual)
          ~churn_rate:0.02
      in
      let d = Sync_d.create cfg (Sync_register.default_params ~delta:believed_delta) in
      Sync_d.start_churn d ~until:(time horizon);
      Sync_gen.run d
        { Generator.read_rate = 1.0; write_every = 6 * actual; start = time 1;
          until = time horizon };
      Sync_d.run_until d (time (horizon + (6 * actual)));
      let joins = List.filter is_join (completed_ops (Sync_d.history d)) in
      {
        cb_believed = believed_delta;
        cb_actual = actual;
        cb_violations = List.length (Sync_d.regularity d).Regularity.violations;
        cb_join_mean = Stats.mean (latency_stats joins);
        cb_joins = List.length joins;
      })
    believed

(* ------------------------------------------------------------------ *)
(* E23 *)

type session_row = {
  ss_model : string;
  ss_mean_session : float;
  ss_measured_c : float;
  ss_checked : int;  (** reads + joins checked *)
  ss_violations : int;
  ss_stuck_joins : int;
  ss_min_window : int;  (** min |A(tau, tau+3delta)| *)
}

let session_models ?pool ~n ~delta ~mean ~horizon ~seed () =
  let threshold_window d =
    let analysis = Analysis.of_records (Membership.records (Sync_d.membership d)) in
    snd
      (Analysis.min_active_window analysis ~window:(3 * delta) ~from_:(time (4 * delta))
         ~until:(time (horizon - (3 * delta) - 1)))
  in
  let params =
    {
      (Sync_register.default_params ~delta) with
      Sync_register.on_empty_inquiry = Sync_register.Adopt_bottom;
    }
  in
  let workload d =
    Sync_gen.run d
      { Generator.read_rate = 1.0; write_every = 5 * delta; start = time 1;
        until = time horizon }
  in
  let finish ~model ~measured d =
    let report = Sync_d.regularity d in
    {
      ss_model = model;
      ss_mean_session = mean;
      ss_measured_c = measured;
      ss_checked = report.Regularity.checked_reads + report.Regularity.checked_joins;
      ss_violations = List.length report.Regularity.violations;
      ss_stuck_joins =
        List.length (List.filter is_join (History.pending (Sync_d.history d)));
      ss_min_window = threshold_window d;
    }
  in
  let constant_row () =
    let c = 1.0 /. mean in
    let cfg =
      Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta) ~churn_rate:c
    in
    let d = Sync_d.create cfg params in
    Sync_d.start_churn d ~until:(time horizon);
    workload d;
    Sync_d.run_until d (time (horizon + (4 * delta)));
    finish ~model:"constant rate (paper)" ~measured:c d
  in
  let session_row ~model ~distribution =
    let cfg =
      Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta) ~churn_rate:0.0
    in
    let d = Sync_d.create cfg params in
    let engine =
      Session_churn.create ~sched:(Sync_d.scheduler d)
        ~rng:(Rng.create ~seed:(seed + 101))
        ~membership:(Sync_d.membership d) ~distribution
        ~spawn:(fun () -> Sync_d.spawn d)
        ~retire:(fun pid -> Sync_d.retire d pid)
        ()
    in
    Session_churn.start engine ~until:(time horizon);
    workload d;
    Sync_d.run_until d (time (horizon + (4 * delta)));
    finish ~model ~measured:(Session_churn.measured_rate engine ~n) d
  in
  let variants =
    [
      ("constant rate (paper)", constant_row);
      ( "fixed sessions (synchronized)",
        fun () ->
          session_row ~model:"fixed sessions (synchronized)"
            ~distribution:(Session_churn.Fixed (int_of_float mean)) );
      ( "geometric sessions (memoryless)",
        fun () ->
          session_row ~model:"geometric sessions (memoryless)"
            ~distribution:(Session_churn.Geometric mean) );
      ( "pareto sessions (heavy tail)",
        fun () ->
          let alpha = 1.5 in
          let xmin = mean *. (alpha -. 1.0) /. alpha in
          session_row ~model:"pareto sessions (heavy tail)"
            ~distribution:(Session_churn.Pareto { alpha; xmin }) );
    ]
  in
  pmap ?pool ~key:(fun (name, _) -> "session:" ^ name) (fun (_, f) -> f ()) variants

(* ------------------------------------------------------------------ *)
(* E24 *)

type nemesis_row = {
  nm_plan : string;
  nm_profile : string;
  nm_protocol : string;
  nm_injected : int;
  nm_findings : int;
  nm_flagged : bool;
}

module Sync_fh = Dds_fault.Harness.Make (Sync_d)
module Es_fh = Dds_fault.Harness.Make (Es_d)

let nemesis_matrix ?pool ~n ~delta ~horizon ~seed () =
  (* The monitor each protocol's theorem calls for; inversions stay
     off because sync/es only promise regularity. *)
  let base = Dds_monitor.Monitor.default ~n ~delta in
  let sync_mon =
    {
      base with
      Dds_monitor.Monitor.churn_bound = Some (1.0 /. (3.0 *. float_of_int delta));
      inversions = false;
    }
  in
  let es_mon =
    {
      base with
      Dds_monitor.Monitor.churn_bound =
        Some (1.0 /. (3.0 *. float_of_int delta *. float_of_int n));
      majority = true;
      inversions = false;
    }
  in
  let open Dds_fault in
  let mid = horizon / 2 and third = horizon / 3 in
  (* One write fires every 20 ticks (the harness default), so windows
     anchored at multiples of 20 straddle a dissemination. *)
  let plans =
    [
      ("within", [ Nemesis.dup ~copies:2 (Nemesis.during ~from_:1 ~until_:horizon) ]);
      ("within", [ Nemesis.crash ~recover:(2 * delta) ~k:1 third ]);
      ("within", [ Nemesis.storm ~k:1 mid ]);
      ( "breaking",
        [
          Nemesis.partition
            ~a:(List.init ((n / 2) + 1) Fun.id)
            ~b:(List.init (n - (n / 2) - 1) (fun i -> (n / 2) + 1 + i))
            ~symmetric:false
            (Nemesis.during ~from_:(mid - 5) ~until_:(mid + 5));
        ] );
      ( "breaking",
        [ Nemesis.delay ~extra:(4 * delta) (Nemesis.during ~from_:(third - 2) ~until_:(2 * third)) ] );
      ("breaking", [ Nemesis.crash ~k:((n / 2) + 1) mid ]);
    ]
  in
  let cfg =
    Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta) ~churn_rate:0.0
  in
  let cell ((profile, plan), protocol) =
    let row (o : Hunt.outcome) =
      {
        nm_plan = Nemesis.to_string plan;
        nm_profile = profile;
        nm_protocol = protocol;
        nm_injected = o.Hunt.injected;
        nm_findings = List.length o.Hunt.violations;
        nm_flagged = o.Hunt.violations <> [];
      }
    in
    match protocol with
    | "sync" ->
      let spec = Harness.default_spec ~monitor:sync_mon ~horizon ~drain:(20 * delta) () in
      row (Sync_fh.run cfg (Sync_register.default_params ~delta) spec plan)
    | _ ->
      let spec = Harness.default_spec ~monitor:es_mon ~horizon ~drain:(20 * delta) () in
      row (Es_fh.run cfg (Es_register.default_params ~n) spec plan)
  in
  let cells = List.concat_map (fun p -> [ (p, "sync"); (p, "es") ]) plans in
  (* The dup cells are the matrix's one super-linear load: every copy
     of every broadcast over the whole horizon is re-injected, so
     their cost scales with traffic (es at n=10 pays ~200x the crash
     cells). Schedule them first as dedicated jobs and chunk the rest. *)
  let heavy ((_, plan), _) =
    let s = Nemesis.to_string plan in
    String.length s >= 4 && String.equal (String.sub s 0 4) "dup("
  in
  pmap_partitioned ?pool ~heavy
    ~key:(fun ((_, plan), protocol) ->
      Printf.sprintf "nemesis:%s:%s" protocol (Nemesis.to_string plan))
    cell cells

(* ------------------------------------------------------------------ *)
(* E25 *)

type shard_row = {
  sh_shards : int;
  sh_skew : float;
  sh_churn : float;
  sh_scheduled : int;
  sh_issued : int;
  sh_completed : int;
  sh_throughput : float;
  sh_read_stats : Stats.t;
  sh_write_stats : Stats.t;
  sh_hot_frac : float;
  sh_regular : bool;
}

let shard_scaling ?pool ~protocol ~n ~delta ~shards ~skews ~churns ~keys ~read_rate
    ~write_every ~horizon ~seed () =
  let cells =
    List.concat_map
      (fun sh -> List.concat_map (fun sk -> List.map (fun c -> (sh, sk, c)) churns) skews)
      shards
  in
  let cell (shard_count, skew, churn) =
    let p = Protocol.find_exn protocol in
    let module R = (val p.Protocol.runner : Protocol.RUNNER) in
    let module Sh = Dds_shard.Shard.Make (R.D) in
    let params =
      match R.params { Protocol.n; delta; quorum = None } with
      | Ok p -> p
      | Error e -> invalid_arg ("Sweep.shard_scaling: " ^ e)
    in
    let base =
      Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta) ~churn_rate:churn
    in
    let store = Sh.create { Dds_shard.Shard.shards = shard_count; keys; base } params in
    (* One plan per (seed, skew): the identical op stream re-partitions
       across every shard count, so rows down a shards column measure
       routing and parallel registers, never a different workload. *)
    let plan =
      Skew.plan
        ~rng:(Rng.create ~seed)
        { (Skew.default ~keys ~s:skew ~until:(time horizon)) with
          Skew.read_rate; write_every }
    in
    Sh.start_churn store ~until:(time horizon);
    Sh.load store plan;
    Sh.run_until store (time (horizon + (20 * delta)));
    let reads = Stats.create () and writes = Stats.create () in
    let completed = ref 0 in
    for s = 0 to shard_count - 1 do
      let h = R.D.history (Sh.deployment store s) in
      let cr = History.completed_reads h and cw = History.completed_writes h in
      completed := !completed + List.length cr + List.length cw;
      List.iter
        (fun o -> match latency_of o with Some l -> Stats.add_int reads l | None -> ())
        cr;
      List.iter
        (fun o -> match latency_of o with Some l -> Stats.add_int writes l | None -> ())
        cw
    done;
    let per_shard = List.map (fun r -> r.Dds_shard.Shard.sr_scheduled) (Sh.reports store) in
    let total_sched = Sh.scheduled store in
    {
      sh_shards = shard_count;
      sh_skew = skew;
      sh_churn = churn;
      sh_scheduled = total_sched;
      sh_issued = Sh.issued store;
      sh_completed = !completed;
      sh_throughput = float_of_int !completed /. float_of_int horizon;
      sh_read_stats = reads;
      sh_write_stats = writes;
      sh_hot_frac =
        (if total_sched = 0 then 0.0
         else float_of_int (List.fold_left Stdlib.max 0 per_shard) /. float_of_int total_sched);
      sh_regular = Sh.regular store;
    }
  in
  pmap ?pool
    ~key:(fun (sh, sk, c) -> Printf.sprintf "shard:shards=%d:skew=%g:churn=%g" sh sk c)
    cell cells
