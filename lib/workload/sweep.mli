open Dds_sim

(** Parameter-sweep experiment runners.

    One function per experiment of the DESIGN.md index (E4-E24). Each
    returns typed rows; {!Tables} renders them, the bench harness
    prints them, and EXPERIMENTS.md quotes them. All runners are
    deterministic in their [seed]/[seeds] arguments.

    Every multi-cell runner takes [?pool]: given a
    {!Dds_engine.Pool.t}, its independent (seed, params) cells run as
    engine jobs and the rows come back in canonical submission order,
    so the output is byte-identical to the sequential run for any
    worker count. Without a pool the cells run inline. *)

(** {1 E4 — Lemma 2's continuously-active-set bound} *)

type lemma2_row = {
  l2_c : float;  (** churn rate *)
  l2_ratio : float;  (** c as a fraction of the 1/(3 delta) threshold *)
  l2_bound : float;  (** the paper's bound n (1 - 3 delta c) *)
  l2_measured_min : int;  (** empirical min over tau of |A(tau, tau+3delta)| *)
  l2_instant_min : int;  (** empirical min over tau of |A(tau)| *)
}

val lemma2 :
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  delta:int ->
  ratios:float list ->
  horizon:int ->
  seed:int ->
  unit ->
  lemma2_row list
(** Full synchronous-protocol deployments (joins take up to 3 delta,
    so the steady-state active set sits {e below} n) under adversarial
    Active_first churn at [ratio / (3 delta)] each. *)

(** {1 E5 — synchronous safety across the churn threshold} *)

type safety_row = {
  sf_ratio : float;  (** c relative to 1/(3 delta) *)
  sf_c : float;
  sf_runs : int;
  sf_violations : int;  (** total violating reads+joins across runs *)
  sf_runs_with_violation : int;
  sf_join_retries : int;  (** empty inquiry rounds (above-threshold symptom) *)
  sf_incomplete_joins : int;  (** joins pending at horizon *)
}

val sync_safety :
  ?on_empty:Dds_core.Sync_register.empty_inquiry_behavior ->
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  delta:int ->
  ratios:float list ->
  seeds:int list ->
  horizon:int ->
  unit ->
  safety_row list
(** [on_empty] (default [Retry]) picks what a joiner does when an
    inquiry round returns nothing: [Adopt_bottom] is the paper's
    literal Figure 1 and exhibits the safety cliff above the
    threshold; [Retry] trades it for a liveness failure (retry
    counts in [sf_join_retries]). *)

(** {1 E6 / E8 — operation latencies} *)

type latency_row = {
  lat_protocol : string;
  lat_phase : string;  (** "sync", "pre-GST", "post-GST", ... *)
  lat_op : string;  (** "join" | "read" | "write" *)
  lat_stats : Stats.t;  (** latencies in ticks *)
}

val sync_latency : n:int -> delta:int -> c:float -> horizon:int -> seed:int -> latency_row list
(** E6: join <= 3 delta, write = delta, read = 0 (Lemma 1's bounds). *)

val es_latency :
  n:int -> gst:int -> delta:int -> wild:int -> horizon:int -> seed:int -> latency_row list
(** E8: rows for operations invoked before vs after GST. *)

(** {1 E7 — the asynchronous impossibility curve} *)

type async_row = {
  as_horizon : int;
  as_completed_writes : int;
  as_max_staleness : int;
  as_mean_staleness : float;
}

val async_series : ?pool:Dds_engine.Pool.t -> horizons:int list -> unit -> async_row list

(** {1 E9 — ES liveness at the majority boundary} *)

type boundary_row = {
  bd_c : float;
  bd_completed : int;
  bd_pending : int;  (** operations blocked at the horizon *)
  bd_aborted : int;
  bd_min_active : int;  (** worst instantaneous |A(tau)| *)
  bd_majority : int;  (** the n/2+1 the protocol needs *)
  bd_violations : int;
}

val es_boundary :
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  rates:float list ->
  horizon:int ->
  seed:int ->
  unit ->
  boundary_row list

(** {1 E10 — static ABD vs the dynamic protocols under churn} *)

type versus_row = {
  vs_protocol : string;
  vs_completed : int;
  vs_pending : int;
  vs_violations : int;
  vs_last_completed_at : int;  (** tick of the last successful operation *)
  vs_founders_alive_at_end : int;
}

val abd_vs_dynamic :
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  delta:int ->
  c:float ->
  horizon:int ->
  seed:int ->
  unit ->
  versus_row list

(** {1 E11 — message complexity} *)

type msg_row = {
  mc_protocol : string;
  mc_n : int;
  mc_per_read : float;  (** point-to-point transmissions per operation *)
  mc_per_write : float;
  mc_per_join : float;
}

val msg_complexity :
  ?pool:Dds_engine.Pool.t -> ns:int list -> delta:int -> seed:int -> unit -> msg_row list

(** {1 E12 — timed quorums (Section 7 future work)} *)

type tq_row = {
  tq_c : float;
  tq_size : int;
  tq_lifetime : int;
  tq_hold_rate : float;  (** fraction of quorums still majority-alive *)
  tq_expected_survivors : float;  (** analytic size (1-c)^lifetime *)
  tq_measured_survivors : float;
  tq_intersect_rate : float;  (** two same-aged quorums still intersect *)
}

val timed_quorum :
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  cs:float list ->
  lifetime:int ->
  trials:int ->
  seed:int ->
  unit ->
  tq_row list

(** {1 E13 — the greatest tolerable churn (Section 7's open question)} *)

type threshold_row = {
  th_delta : int;
  th_paper_bound : float;  (** 1 / (3 delta) *)
  th_empirical : float;
      (** largest c (granularity {!th_step}) with zero violations and
          zero non-terminating joins across all probe seeds *)
  th_step : float;
  th_ratio : float;  (** empirical / paper bound *)
}

val churn_threshold :
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  deltas:int list ->
  seeds:int list ->
  horizon:int ->
  unit ->
  threshold_row list
(** Scans c upward (paper-literal adopt-bottom joins, adversarial
    Active_first departures) until a safety violation or a stuck join
    appears, per delta. Answers the paper's "can the greatest value of
    c be characterized?" empirically: how much slack the analysis
    leaves against this adversary. *)

(** {1 E14 — bursty churn: how robust is the constant-c analysis?} *)

type burst_row = {
  br_label : string;
  br_avg_c : float;  (** time-averaged churn rate *)
  br_peak_c : float;
  br_violations : int;
  br_stuck_joins : int;
  br_runs : int;
}

val bursty_churn :
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  delta:int ->
  seeds:int list ->
  horizon:int ->
  unit ->
  burst_row list
(** Profiles with the same average rate but increasing peakedness; the
    paper's bound constrains the {e constant} rate, and bursts whose
    peak exceeds the threshold break the protocol even when the
    average sits well below it. *)

(** {1 E15 — message loss (outside the paper's reliable-network model)} *)

type loss_row = {
  ls_protocol : string;
  ls_loss : float;  (** per-message drop probability *)
  ls_completed : int;
  ls_pending : int;
  ls_violations : int;
}

val message_loss :
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  delta:int ->
  losses:float list ->
  horizon:int ->
  seed:int ->
  unit ->
  loss_row list
(** Fault injection: each message is independently dropped with the
    given probability. The sync protocol's timer-based waits keep
    "succeeding" and safety erodes; the quorum-based ES protocol loses
    liveness instead. Both behaviours are outside the paper's model —
    this quantifies how load-bearing the reliable-network assumption
    is. *)

(** {1 E16 — footnote 4: the delta + delta' join optimization} *)

type join_opt_row = {
  jo_variant : string;
  jo_p2p : int;  (** the point-to-point bound delta' *)
  jo_join_mean : float;
  jo_join_max : float;
  jo_joins : int;
  jo_violations : int;
}

val join_wait_optimization :
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  delta:int ->
  p2ps:int list ->
  horizon:int ->
  seed:int ->
  unit ->
  join_opt_row list
(** Runs the synchronous protocol over a split-bound network
    ({!Dds_net.Delay.synchronous_split}) with the inquiry wait
    shortened to [delta + delta'], against the unoptimized [2 delta]
    baseline; joins get faster, safety must stay intact. *)

(** {1 E17 — implementing the broadcast: primitive vs flooding} *)

type broadcast_row = {
  bc_mode : string;
  bc_loss : float;
  bc_completed : int;
  bc_violations : int;
  bc_transmissions : int;
}

val broadcast_robustness :
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  losses:float list ->
  horizon:int ->
  seed:int ->
  unit ->
  broadcast_row list
(** The synchronous register over the postulated one-shot broadcast vs
    the flooding implementation ({!Dds_net.Network.broadcast_mode}),
    with the per-message fault injector sweeping link-loss rates. Same
    effective delta in both modes. *)

(** {1 E18 — consensus from the registers (the introduction's application)} *)

type consensus_row = {
  cn_c : float;
  cn_protected : bool;  (** participants shielded from churn *)
  cn_present : int;  (** processes in the system at the horizon *)
  cn_decided : int;  (** processes that learned the decision *)
  cn_attempts : int;  (** alpha attempts launched *)
  cn_first_decision : int option;  (** tick of the first decision *)
  cn_agreement : bool;
  cn_validity : bool;
}

val consensus_under_churn :
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  k:int ->
  cs:float list ->
  horizon:int ->
  seed:int ->
  unit ->
  consensus_row list
(** Omega + alpha over the dynamic register array: one consensus
    instance per churn rate with protected participants, plus a final
    unprotected run at the highest rate (leaders then crash
    mid-attempt; safety must hold regardless). *)

(** {1 E19 — the churn bound as a speed limit (Section 2.1's wireless zone)} *)

type geo_row = {
  geo_speed : float;  (** walker speed, distance units per tick *)
  geo_churn : float;  (** measured emergent churn rate *)
  geo_threshold_ratio : float;  (** emergent c relative to 1/(3 delta) *)
  geo_mean_population : float;
  geo_joins : int;  (** joins that completed *)
  geo_reads : int;
  geo_violations : int;
}

val geo_speed :
  ?pool:Dds_engine.Pool.t ->
  speeds:float list ->
  horizon:int ->
  seed:int ->
  unit ->
  geo_row list
(** Random-waypoint walkers crossing a radio zone that hosts the
    synchronous register: zone crossings are the joins/leaves, so the
    churn rate is an emergent function of speed. Below the threshold
    the register hums; above it nodes transit faster than the 3*delta
    join and the zone goes silent — the paper's bound as physics. *)

(** {1 E20 — quorum-size ablation: majority is the safety boundary} *)

type quorum_row = {
  qa_quorum : int;  (** the threshold every ES wait uses *)
  qa_majority : int;  (** what the paper prescribes *)
  qa_completed : int;
  qa_pending : int;
  qa_violations : int;
  qa_inversions : int;
}

val quorum_ablation :
  ?loss:float ->
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  quorums:int list ->
  c:float ->
  horizon:int ->
  seed:int ->
  unit ->
  quorum_row list
(** The ES protocol with its majority threshold replaced by arbitrary
    quorum sizes. On a reliable network the full WRITE broadcast hides
    the difference (every replica converges within delta); [loss]
    injects per-message drops so dissemination is partial and quorum
    {e intersection} becomes load-bearing: below the majority, a
    write's ack set and a later read's reply set can miss each other
    and stale reads appear; at and above it they cannot. *)

(** {1 E21 — the regular-to-atomic transformation, in the dynamic system} *)

type repair_row = {
  rp_variant : string;
  rp_scenario_inversions : int;  (** in the constructed E21 execution *)
  rp_run_inversions : int;  (** in a randomized churn run *)
  rp_read_mean : float;  (** mean read latency in that run, ticks *)
  rp_violations : int;
}

val read_repair_ablation :
  ?pool:Dds_engine.Pool.t -> n:int -> horizon:int -> seed:int -> unit -> repair_row list
(** The ES register with and without {!Dds_core.Es_register.params}'
    [read_repair]: the constructed inversion must vanish, randomized
    runs stay inversion-free, and the price is one extra round trip
    per read — the introduction's "same computational power" claim
    exercised in the churn setting. *)

(** {1 E22 — delta mis-calibration: what the synchrony assumption buys} *)

type calibration_row = {
  cb_believed : int;  (** the delta the protocol's waits use *)
  cb_actual : int;  (** the network's true bound *)
  cb_violations : int;
  cb_join_mean : float;
  cb_joins : int;
}

val delta_calibration :
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  actual:int ->
  believed:int list ->
  horizon:int ->
  seed:int ->
  unit ->
  calibration_row list
(** The synchronous protocol run with a wrong belief about delta.
    Underestimating it re-creates the asynchronous impossibility in
    miniature (waits expire before evidence arrives: stale joins and
    reads); overestimating is safe and merely slows every join and
    write down — the protocol consumes the bound, it cannot detect
    it. *)

(** {1 E23 — session-lifetime churn: testing the paper's citation of [19]} *)

type session_row = {
  ss_model : string;
  ss_mean_session : float;  (** ticks; the common average across models *)
  ss_measured_c : float;  (** emergent churn rate *)
  ss_checked : int;
  ss_violations : int;
  ss_stuck_joins : int;
  ss_min_window : int;  (** min |A(tau, tau+3delta)| over the run *)
}

val session_models :
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  delta:int ->
  mean:float ->
  horizon:int ->
  seed:int ->
  unit ->
  session_row list
(** The synchronous register (paper-literal joins) under four churn
    processes with the same average rate: the paper's constant-rate
    refresh, and three session-lifetime models after Ko et al. [19] —
    fixed (fully synchronized departures), geometric (memoryless) and
    Pareto (heavy-tailed, as measured in deployed P2P systems). *)

(** {1 E24 — nemesis fault matrix: within-model vs assumption-breaking} *)

type nemesis_row = {
  nm_plan : string;  (** the plan in [Nemesis.to_string] syntax *)
  nm_profile : string;  (** ["within"] or ["breaking"] *)
  nm_protocol : string;
  nm_injected : int;  (** faults actually applied *)
  nm_findings : int;  (** monitor findings + regularity violations *)
  nm_flagged : bool;
}

val nemesis_matrix :
  ?pool:Dds_engine.Pool.t ->
  n:int ->
  delta:int ->
  horizon:int ->
  seed:int ->
  unit ->
  nemesis_row list
(** Six fixed nemesis plans (duplicates, minority crash-with-recovery,
    single-process storm; one-way majority partition, over-delta
    delay, majority crash) against the sync and es registers, each run
    judged by the protocol's theorem-matched monitors plus the
    regularity checker. Within-model rows must come back unflagged;
    breaking rows demonstrate which assumption each protocol leans
    on. *)

(** {1 E25 — sharded key-space scaling} *)

type shard_row = {
  sh_shards : int;
  sh_skew : float;  (** zipf exponent s *)
  sh_churn : float;  (** per-shard churn rate *)
  sh_scheduled : int;  (** plan ops routed (sum over shards) *)
  sh_issued : int;  (** ops that found an idle process *)
  sh_completed : int;  (** reads + writes that responded *)
  sh_throughput : float;  (** completed ops per tick *)
  sh_read_stats : Stats.t;  (** read latency, ticks *)
  sh_write_stats : Stats.t;
  sh_hot_frac : float;  (** hottest shard's share of the plan *)
  sh_regular : bool;  (** every shard's register is regular *)
}

val shard_scaling :
  ?pool:Dds_engine.Pool.t ->
  protocol:string ->
  n:int ->
  delta:int ->
  shards:int list ->
  skews:float list ->
  churns:float list ->
  keys:int ->
  read_rate:float ->
  write_every:int ->
  horizon:int ->
  seed:int ->
  unit ->
  shard_row list
(** The full (shards x skew x churn) matrix over the named registry
    protocol: each cell draws one zipfian plan ({!Skew.plan}, the same
    per seed+skew regardless of shard count), hash-routes it across
    [shards] independent per-shard deployments of [n] processes each
    ([Dds_shard.Shard]), runs them under per-shard churn, and reports
    store-wide throughput, latency and the conjunction of the
    per-shard regularity verdicts.
    @raise Invalid_argument on an unknown protocol name. *)
