open Dds_sim
open Dds_spec

let fint = Report.cell_int
let ffloat = Report.cell_float
let fval = function Some v -> Format.asprintf "%a" Value.pp v | None -> "-"

let fig3 without_wait with_wait =
  let row name (o : Scenario.fig3_outcome) =
    [
      name;
      fval o.Scenario.join_value;
      fval o.Scenario.read_value;
      (match o.Scenario.join_duration with Some d -> fint d | None -> "-");
      fint (List.length o.Scenario.report.Regularity.violations);
    ]
  in
  Report.make ~title:"E2/E3 — Figure 3: the join's initial delta wait"
    ~headers:[ "variant"; "join adopted"; "later read"; "join ticks"; "violations" ]
    ~notes:
      [
        "Figure 3a (wait disabled): the joiner misses the in-flight write and a read";
        "issued after the write completed still returns the old value (1 violation).";
        "Figure 3b (the actual protocol): the wait pushes the inquiry past the write's";
        "delivery bound, the join adopts the new value, and the run is clean.";
      ]
    [ row "fig3a (no wait)" without_wait; row "fig3b (with wait)" with_wait ]

let inversion (o : Scenario.inversion_outcome) =
  Report.make ~title:"E1 — new/old inversion (introduction's scenario)"
    ~headers:[ "read"; "returned"; "verdict" ]
    ~notes:
      [
        "The earlier read returns the newer value, the later read the older one:";
        "legal for a regular register, impossible for an atomic one — the checker";
        "confirms regularity and flags exactly the inversion.";
      ]
    [
      [ "r1 (fast replica)"; fval o.Scenario.fast_read; "fresh" ];
      [ "r2 (slow replica)"; fval o.Scenario.slow_read; "old: inversion" ];
      [ "regular?"; Report.cell_bool (Regularity.is_ok o.Scenario.report); "" ];
      [ "inversions"; fint (List.length o.Scenario.inversions); "" ];
    ]

let lemma2 ~n ~delta rows =
  Report.make
    ~title:
      (Printf.sprintf "E4 — Lemma 2: min |A(tau, tau+3*delta)| vs n(1-3*delta*c), n=%d delta=%d"
         n delta)
    ~headers:[ "c/(1/3d)"; "c"; "paper bound"; "measured min"; "min |A(tau)|" ]
    ~notes:
      [
        "Adversarial Active_first churn. The paper's bound assumes the window starts";
        "fully active; with real joins in the pipeline (up to 3*delta ticks) the";
        "steady-state active set sits below n, so the measured minimum can fall under";
        "the bound while remaining positive below the threshold — see EXPERIMENTS.md.";
      ]
    (List.map
       (fun (r : Sweep.lemma2_row) ->
         [
           ffloat r.Sweep.l2_ratio;
           ffloat ~decimals:4 r.Sweep.l2_c;
           ffloat r.Sweep.l2_bound;
           fint r.Sweep.l2_measured_min;
           fint r.Sweep.l2_instant_min;
         ])
       rows)

let sync_safety ~n ~delta ~variant rows =
  Report.make
    ~title:
      (Printf.sprintf
         "E5 — synchronous safety across the churn threshold (%s), n=%d delta=%d" variant n
         delta)
    ~headers:
      [ "c/(1/3d)"; "c"; "runs"; "violations"; "bad runs"; "join retries"; "joins pending" ]
    ~notes:
      [
        "Theorem 1 predicts zero violations for c < 1/(3*delta). Above the threshold";
        "the guarantee lapses; how it lapses depends on what a joiner does with an";
        "empty inquiry round: the paper's literal protocol (adopt-bottom) violates";
        "safety, the retry hardening turns the failure into join non-termination.";
      ]
    (List.map
       (fun (r : Sweep.safety_row) ->
         [
           ffloat r.Sweep.sf_ratio;
           ffloat ~decimals:4 r.Sweep.sf_c;
           fint r.Sweep.sf_runs;
           fint r.Sweep.sf_violations;
           fint r.Sweep.sf_runs_with_violation;
           fint r.Sweep.sf_join_retries;
           fint r.Sweep.sf_incomplete_joins;
         ])
       rows)

let latency ~title rows =
  Report.make ~title
    ~headers:[ "protocol"; "phase"; "op"; "n"; "mean"; "p50"; "p99"; "max" ]
    (List.map
       (fun (r : Sweep.latency_row) ->
         let s = r.Sweep.lat_stats in
         [
           r.Sweep.lat_protocol;
           r.Sweep.lat_phase;
           r.Sweep.lat_op;
           fint (Stats.count s);
           ffloat (Stats.mean s);
           ffloat (Stats.median s);
           ffloat (Stats.percentile s 99.0);
           ffloat (Stats.max_value s);
         ])
       rows)

let async_impossibility rows =
  Report.make ~title:"E7 — Theorem 2 witness: staleness under unbounded delays"
    ~headers:[ "horizon"; "writes completed"; "max staleness"; "mean staleness" ]
    ~notes:
      [
        "The synchronous protocol run over an asynchronous network: writes keep";
        "'completing' on local timers while readers' evidence never arrives, so the";
        "returned values fall unboundedly far behind — no wait-based protocol can";
        "implement a regular register here (Theorem 2).";
      ]
    (List.map
       (fun (r : Sweep.async_row) ->
         [
           fint r.Sweep.as_horizon;
           fint r.Sweep.as_completed_writes;
           fint r.Sweep.as_max_staleness;
           ffloat r.Sweep.as_mean_staleness;
         ])
       rows)

let es_boundary ~n rows =
  Report.make
    ~title:(Printf.sprintf "E9 — ES protocol at the majority boundary, n=%d" n)
    ~headers:
      [ "c"; "completed"; "blocked"; "aborted"; "min |A(tau)|"; "majority"; "violations" ]
    ~notes:
      [
        "As churn erodes the active majority (min |A| < majority), quorum waits";
        "start blocking: liveness degrades while safety violations stay at zero —";
        "the protocol fails safe, exactly as Theorems 3-4 divide the labour.";
      ]
    (List.map
       (fun (r : Sweep.boundary_row) ->
         [
           ffloat ~decimals:3 r.Sweep.bd_c;
           fint r.Sweep.bd_completed;
           fint r.Sweep.bd_pending;
           fint r.Sweep.bd_aborted;
           fint r.Sweep.bd_min_active;
           fint r.Sweep.bd_majority;
           fint r.Sweep.bd_violations;
         ])
       rows)

let abd_vs_dynamic ~n ~c ~horizon rows =
  Report.make
    ~title:
      (Printf.sprintf "E10 — static ABD vs dynamic protocols, n=%d c=%.3f horizon=%d" n c
         horizon)
    ~headers:
      [ "protocol"; "completed"; "blocked"; "violations"; "last op at"; "founders left" ]
    ~notes:
      [
        "ABD's server group is the founding set: churn drains it below a majority and";
        "every later quorum wait blocks (watch 'last op at' freeze early). The dynamic";
        "protocols keep completing operations to the horizon.";
      ]
    (List.map
       (fun (r : Sweep.versus_row) ->
         [
           r.Sweep.vs_protocol;
           fint r.Sweep.vs_completed;
           fint r.Sweep.vs_pending;
           fint r.Sweep.vs_violations;
           fint r.Sweep.vs_last_completed_at;
           fint r.Sweep.vs_founders_alive_at_end;
         ])
       rows)

let msg_complexity rows =
  Report.make ~title:"E11 — message complexity (point-to-point transmissions per op)"
    ~headers:[ "protocol"; "n"; "per read"; "per write"; "per join" ]
    ~notes:
      [
        "sync: reads are free (local), writes and joins cost one broadcast (n";
        "transmissions) plus replies. es/abd: every operation pays a broadcast";
        "plus a majority of replies/acks, so costs grow linearly in n.";
      ]
    (List.map
       (fun (r : Sweep.msg_row) ->
         [
           r.Sweep.mc_protocol;
           fint r.Sweep.mc_n;
           ffloat ~decimals:1 r.Sweep.mc_per_read;
           ffloat ~decimals:1 r.Sweep.mc_per_write;
           ffloat ~decimals:1 r.Sweep.mc_per_join;
         ])
       rows)

let timed_quorum ~n rows =
  Report.make
    ~title:(Printf.sprintf "E12 — timed quorums under churn (Section 7 future work), n=%d" n)
    ~headers:
      [ "c"; "size"; "lifetime"; "hold rate"; "E[survivors]"; "measured"; "intersect rate" ]
    ~notes:
      [
        "Majority-sized quorums sampled from the active set, trusted for a bounded";
        "lifetime. Measured survivor counts track the analytic size*(1-c)^t law;";
        "intersection probability of two same-aged quorums is what a dynamic";
        "multi-writer register would build on (Gramoli-Raynal [13]).";
      ]
    (List.map
       (fun (r : Sweep.tq_row) ->
         [
           ffloat ~decimals:3 r.Sweep.tq_c;
           fint r.Sweep.tq_size;
           fint r.Sweep.tq_lifetime;
           ffloat r.Sweep.tq_hold_rate;
           ffloat r.Sweep.tq_expected_survivors;
           ffloat r.Sweep.tq_measured_survivors;
           ffloat r.Sweep.tq_intersect_rate;
         ])
       rows)

let churn_threshold ~n rows =
  Report.make
    ~title:(Printf.sprintf "E13 — greatest tolerable churn (Section 7's question), n=%d" n)
    ~headers:[ "delta"; "paper 1/(3d)"; "empirical c*"; "scan step"; "c*/bound" ]
    ~notes:
      [
        "Largest constant c at which every probe run (adversarial Active_first";
        "departures, paper-literal joins) stayed clean. Empirically the cliff";
        "sits right around 1/(3*delta) (0.8x-1.1x across deltas): against this";
        "randomized adversary the paper's sufficient condition is nearly tight.";
      ]
    (List.map
       (fun (r : Sweep.threshold_row) ->
         [
           fint r.Sweep.th_delta;
           ffloat ~decimals:4 r.Sweep.th_paper_bound;
           ffloat ~decimals:4 r.Sweep.th_empirical;
           ffloat ~decimals:4 r.Sweep.th_step;
           ffloat r.Sweep.th_ratio;
         ])
       rows)

let bursty_churn ~n ~delta rows =
  Report.make
    ~title:
      (Printf.sprintf
         "E14 — bursty churn at a fixed average rate, n=%d delta=%d (bound=%.4f)" n delta
         (1.0 /. (3.0 *. float_of_int delta)))
    ~headers:[ "profile"; "avg c"; "peak c"; "runs"; "violations"; "stuck joins" ]
    ~notes:
      [
        "All profiles share the same time-averaged churn (0.6x the bound). The";
        "paper's analysis constrains the constant rate: bursts whose peak exceeds";
        "the threshold can break safety even though the average is comfortably";
        "below it — constant-c is a real modelling assumption, not a convenience.";
      ]
    (List.map
       (fun (r : Sweep.burst_row) ->
         [
           r.Sweep.br_label;
           ffloat ~decimals:4 r.Sweep.br_avg_c;
           ffloat ~decimals:4 r.Sweep.br_peak_c;
           fint r.Sweep.br_runs;
           fint r.Sweep.br_violations;
           fint r.Sweep.br_stuck_joins;
         ])
       rows)

let message_loss ~n rows =
  Report.make
    ~title:(Printf.sprintf "E15 — message loss (outside the reliable-network model), n=%d" n)
    ~headers:[ "protocol"; "loss"; "completed"; "blocked"; "violations" ]
    ~notes:
      [
        "Each message independently dropped with probability 'loss'. The sync";
        "protocol's timer waits expire regardless, so lost WRITE broadcasts turn";
        "into stale reads (safety erosion); the quorum-based ES protocol instead";
        "stops completing operations (liveness erosion). The paper's reliable";
        "broadcast is load-bearing for both, in opposite directions.";
      ]
    (List.map
       (fun (r : Sweep.loss_row) ->
         [
           r.Sweep.ls_protocol;
           ffloat r.Sweep.ls_loss;
           fint r.Sweep.ls_completed;
           fint r.Sweep.ls_pending;
           fint r.Sweep.ls_violations;
         ])
       rows)

let join_wait_optimization ~n ~delta rows =
  Report.make
    ~title:
      (Printf.sprintf "E16 — footnote 4: inquiry wait delta+delta' vs 2*delta, n=%d delta=%d"
         n delta)
    ~headers:[ "variant"; "delta'"; "joins"; "mean join"; "max join"; "violations" ]
    ~notes:
      [
        "With a tighter point-to-point bound delta' the join's inquiry round trip";
        "shrinks from 2*delta to delta+delta' with safety intact — the paper's";
        "footnote 4 optimization, validated under churn.";
      ]
    (List.map
       (fun (r : Sweep.join_opt_row) ->
         [
           r.Sweep.jo_variant;
           fint r.Sweep.jo_p2p;
           fint r.Sweep.jo_joins;
           ffloat r.Sweep.jo_join_mean;
           ffloat r.Sweep.jo_join_max;
           fint r.Sweep.jo_violations;
         ])
       rows)

let broadcast_robustness ~n rows =
  Report.make
    ~title:
      (Printf.sprintf
         "E17 — postulated broadcast vs flooding implementation under link faults, n=%d" n)
    ~headers:[ "broadcast"; "loss"; "completed"; "violations"; "transmissions" ]
    ~notes:
      [
        "Same effective delta (per-hop bound 2, relay depth 2). With reliable";
        "links both modes are clean and flooding just costs redundancy. Under";
        "per-message loss the primitive's single copies go missing (stale reads,";
        "violations); flooding's relay diversity absorbs far more loss — the";
        "paper's 'appropriate broadcast' assumption, priced.";
      ]
    (List.map
       (fun (r : Sweep.broadcast_row) ->
         [
           r.Sweep.bc_mode;
           ffloat r.Sweep.bc_loss;
           fint r.Sweep.bc_completed;
           fint r.Sweep.bc_violations;
           fint r.Sweep.bc_transmissions;
         ])
       rows)

let consensus ~n ~k rows =
  Report.make
    ~title:
      (Printf.sprintf
         "E18 — consensus from regular registers + Omega (intro's application), n=%d k=%d" n
         k)
    ~headers:
      [ "c"; "protected"; "present"; "decided"; "attempts"; "first decision";
        "agreement"; "validity" ]
    ~notes:
      [
        "Guerraoui-Raynal alpha over the k-register array plus the Omega oracle:";
        "one leader attempt usually suffices; churn replaces the audience but the";
        "decision keeps propagating to joiners. The last row removes participant";
        "protection: leaders can crash mid-attempt — progress needs whoever is";
        "left, and agreement/validity must survive no matter what.";
      ]
    (List.map
       (fun (r : Sweep.consensus_row) ->
         [
           ffloat ~decimals:3 r.Sweep.cn_c;
           Report.cell_bool r.Sweep.cn_protected;
           fint r.Sweep.cn_present;
           fint r.Sweep.cn_decided;
           fint r.Sweep.cn_attempts;
           (match r.Sweep.cn_first_decision with Some t -> fint t | None -> "-");
           Report.cell_bool r.Sweep.cn_agreement;
           Report.cell_bool r.Sweep.cn_validity;
         ])
       rows)

let geo_speed ~delta rows =
  Report.make
    ~title:
      (Printf.sprintf
         "E19 — the churn bound as a speed limit (wireless zone, delta=%d, bound=%.4f)" delta
         (1.0 /. (3.0 *. float_of_int delta)))
    ~headers:
      [ "speed"; "emergent c"; "c/(1/3d)"; "mean pop"; "joins"; "reads"; "violations" ]
    ~notes:
      [
        "Section 2.1's mobile-node example, literally: crossing into the radio";
        "zone is the join, wandering out is the leave, so churn is a function of";
        "node speed. Emergent c grows linearly with speed; once it crosses the";
        "1/(3*delta) threshold, nodes transit the zone faster than the 3*delta";
        "join protocol and activity collapses — the paper's bound as a speed";
        "limit for participating in a MANET register.";
      ]
    (List.map
       (fun (r : Sweep.geo_row) ->
         [
           ffloat ~decimals:1 r.Sweep.geo_speed;
           ffloat ~decimals:4 r.Sweep.geo_churn;
           ffloat r.Sweep.geo_threshold_ratio;
           ffloat ~decimals:1 r.Sweep.geo_mean_population;
           fint r.Sweep.geo_joins;
           fint r.Sweep.geo_reads;
           fint r.Sweep.geo_violations;
         ])
       rows)

let quorum_ablation ~n ~c ~loss rows =
  Report.make
    ~title:
      (Printf.sprintf "E20 — ES quorum-size ablation, n=%d c=%.3f loss=%.2f (majority=%d)"
         n c loss ((n / 2) + 1))
    ~headers:[ "quorum"; "completed"; "blocked"; "violations"; "inversions" ]
    ~notes:
      [
        "Every ES wait (join, read, write-ack) with the threshold forced to the";
        "given size, under heavy per-message loss so dissemination is partial";
        "and quorum intersection is what guarantees freshness. Tiny quorums are";
        "fast but stale (violations and even new/old inversions); quorums at or";
        "above the majority never return stale values but pay steeply in";
        "liveness under loss. The paper's n/2+1 is the exact pivot.";
      ]
    (List.map
       (fun (r : Sweep.quorum_row) ->
         [
           (let tag = if r.Sweep.qa_quorum = r.Sweep.qa_majority then " (majority)" else "" in
            Printf.sprintf "%d%s" r.Sweep.qa_quorum tag);
           fint r.Sweep.qa_completed;
           fint r.Sweep.qa_pending;
           fint r.Sweep.qa_violations;
           fint r.Sweep.qa_inversions;
         ])
       rows)

let read_repair ~n rows =
  Report.make
    ~title:
      (Printf.sprintf
         "E21 — regular-to-atomic: ES read-repair ablation, n=%d" n)
    ~headers:
      [ "variant"; "scenario inversions"; "run inversions"; "read mean"; "violations" ]
    ~notes:
      [
        "The constructed execution (stalled dissemination, one informed reader,";
        "one cut-off reader) exhibits the quorum protocol's own new/old";
        "inversion; read-repair — propagate what you are about to return to a";
        "majority first — eliminates it at the price of a second round trip per";
        "read. The introduction's computability claim (regular = atomic in";
        "power), realized on the dynamic substrate.";
      ]
    (List.map
       (fun (r : Sweep.repair_row) ->
         [
           r.Sweep.rp_variant;
           fint r.Sweep.rp_scenario_inversions;
           fint r.Sweep.rp_run_inversions;
           ffloat r.Sweep.rp_read_mean;
           fint r.Sweep.rp_violations;
         ])
       rows)

let delta_calibration ~n ~actual rows =
  Report.make
    ~title:
      (Printf.sprintf
         "E22 — delta mis-calibration: protocol belief vs network bound %d, n=%d" actual n)
    ~headers:[ "believed delta"; "actual"; "joins"; "join mean"; "violations" ]
    ~notes:
      [
        "The synchronous protocol cannot observe delta; it consumes it. Waits";
        "sized below the true bound expire before the evidence arrives — the";
        "asynchronous impossibility in miniature (stale joins, violations).";
        "Waits sized above it are safe and merely slow: the cost of synchrony";
        "assumptions is asymmetric, which is why eventually-synchronous designs";
        "(Section 5) drop the bound entirely and pay with quorum waits.";
      ]
    (List.map
       (fun (r : Sweep.calibration_row) ->
         [
           fint r.Sweep.cb_believed;
           fint r.Sweep.cb_actual;
           fint r.Sweep.cb_joins;
           ffloat r.Sweep.cb_join_mean;
           fint r.Sweep.cb_violations;
         ])
       rows)

let session_models ~n ~delta rows =
  Report.make
    ~title:
      (Printf.sprintf
         "E23 — churn process shape at equal average rate, n=%d delta=%d (bound=%.4f)" n
         delta
         (1.0 /. (3.0 *. float_of_int delta)))
    ~headers:
      [ "session model"; "mean"; "measured c"; "checked"; "violations"; "stuck joins";
        "min |A(t,t+3d)|" ]
    ~notes:
      [
        "The paper cites Ko et al. [19] to argue constant churn is realistic;";
        "here four churn processes share one average rate. Memoryless and";
        "heavy-tailed (Pareto) sessions behave like the paper's constant-rate";
        "model: clean runs, active window always positive. Fully synchronized";
        "sessions are the hidden failure mode: the whole cohort departs at";
        "once — instantaneous churn far above the bound, an empty 3*delta";
        "window — and the register collapses despite a compliant average.";
        "'Constant c' is really an anti-correlation assumption on departures.";
      ]
    (List.map
       (fun (r : Sweep.session_row) ->
         [
           r.Sweep.ss_model;
           ffloat ~decimals:1 r.Sweep.ss_mean_session;
           ffloat ~decimals:4 r.Sweep.ss_measured_c;
           fint r.Sweep.ss_checked;
           fint r.Sweep.ss_violations;
           fint r.Sweep.ss_stuck_joins;
           fint r.Sweep.ss_min_window;
         ])
       rows)

type scaling_row = { sc_jobs : int; sc_wall_s : float; sc_speedup : float }

let engine_scaling ~case rows =
  Report.make
    ~title:(Printf.sprintf "engine — worker scaling on %s" case)
    ~headers:[ "jobs"; "wall s"; "speedup" ]
    ~notes:
      [
        "The same sweep submitted through the engine at increasing worker";
        "counts. Output is byte-identical at every worker count (canonical-";
        "order aggregation); only the wall clock moves. Speedup is relative";
        "to jobs=1 and is bounded by the host's cores and the longest cell.";
      ]
    (List.map
       (fun r ->
         [ fint r.sc_jobs; ffloat ~decimals:2 r.sc_wall_s; ffloat r.sc_speedup ])
       rows)

let nemesis_matrix ~n ~delta rows =
  Report.make
    ~title:
      (Printf.sprintf "E24 — nemesis fault matrix, n=%d delta=%d (write every 20 ticks)" n
         delta)
    ~headers:[ "plan"; "profile"; "protocol"; "injected"; "findings"; "verdict" ]
    ~notes:
      [
        "Within-model plans (duplicates, minority crash-with-recovery, single-";
        "process storms) must leave both registers unflagged — Theorems 1 and 4";
        "tolerate them. Breaking plans each target one assumption: the one-way";
        "majority partition starves dissemination/quorums, the over-delta delay";
        "voids the synchrony bound, the majority crash kills the ES model's";
        "standing active-majority hypothesis. 'findings' counts monitor";
        "episodes plus regularity violations; dds hunt shrinks any flagged";
        "plan to a minimal counterexample.";
      ]
    (List.map
       (fun (r : Sweep.nemesis_row) ->
         [
           r.Sweep.nm_plan;
           r.Sweep.nm_profile;
           r.Sweep.nm_protocol;
           fint r.Sweep.nm_injected;
           fint r.Sweep.nm_findings;
           (if r.Sweep.nm_flagged then "FLAGGED" else "ok");
         ])
       rows)

let shard_scaling ~protocol ~n ~keys ~horizon rows =
  Report.make
    ~title:
      (Printf.sprintf
         "E25 — sharded key-space scaling (%s), n=%d/shard, %d keys, horizon %d" protocol n
         keys horizon)
    ~headers:
      [ "shards"; "zipf s"; "churn"; "ops"; "issued"; "done"; "ops/tick"; "read p50";
        "read p99"; "write p99"; "hot shard"; "regular" ]
    ~notes:
      [
        "One zipfian op stream per (seed, skew), hash-partitioned across N";
        "independent registers, each with its own membership and churn process.";
        "'hot shard' is the busiest shard's share of the plan: skew concentrates";
        "keys, but hashing spreads ranks, so the share shrinks as shards grow.";
        "'regular' is the conjunction of the per-shard regularity verdicts —";
        "sharding multiplies the paper's theorem, it never weakens it.";
      ]
    (List.map
       (fun (r : Sweep.shard_row) ->
         [
           fint r.Sweep.sh_shards;
           ffloat ~decimals:1 r.Sweep.sh_skew;
           ffloat ~decimals:3 r.Sweep.sh_churn;
           fint r.Sweep.sh_scheduled;
           fint r.Sweep.sh_issued;
           fint r.Sweep.sh_completed;
           ffloat r.Sweep.sh_throughput;
           ffloat ~decimals:1 (Stats.percentile r.Sweep.sh_read_stats 50.0);
           ffloat ~decimals:1 (Stats.percentile r.Sweep.sh_read_stats 99.0);
           ffloat ~decimals:1 (Stats.percentile r.Sweep.sh_write_stats 99.0);
           ffloat ~decimals:2 r.Sweep.sh_hot_frac;
           Report.cell_bool r.Sweep.sh_regular;
         ])
       rows)
