(** Renders sweep results as {!Report} tables.

    One function per experiment; the bench harness and the CLI print
    these, and EXPERIMENTS.md quotes their output. *)

val fig3 : Scenario.fig3_outcome -> Scenario.fig3_outcome -> Report.t
(** [fig3 without_wait with_wait]. *)

val inversion : Scenario.inversion_outcome -> Report.t

val lemma2 : n:int -> delta:int -> Sweep.lemma2_row list -> Report.t

val sync_safety : n:int -> delta:int -> variant:string -> Sweep.safety_row list -> Report.t

val latency : title:string -> Sweep.latency_row list -> Report.t

val async_impossibility : Sweep.async_row list -> Report.t

val es_boundary : n:int -> Sweep.boundary_row list -> Report.t

val abd_vs_dynamic : n:int -> c:float -> horizon:int -> Sweep.versus_row list -> Report.t

val msg_complexity : Sweep.msg_row list -> Report.t

val timed_quorum : n:int -> Sweep.tq_row list -> Report.t

val churn_threshold : n:int -> Sweep.threshold_row list -> Report.t

val bursty_churn : n:int -> delta:int -> Sweep.burst_row list -> Report.t

val message_loss : n:int -> Sweep.loss_row list -> Report.t

val join_wait_optimization : n:int -> delta:int -> Sweep.join_opt_row list -> Report.t

val broadcast_robustness : n:int -> Sweep.broadcast_row list -> Report.t

val consensus : n:int -> k:int -> Sweep.consensus_row list -> Report.t

val geo_speed : delta:int -> Sweep.geo_row list -> Report.t

val quorum_ablation : n:int -> c:float -> loss:float -> Sweep.quorum_row list -> Report.t

val read_repair : n:int -> Sweep.repair_row list -> Report.t

val delta_calibration : n:int -> actual:int -> Sweep.calibration_row list -> Report.t

val session_models : n:int -> delta:int -> Sweep.session_row list -> Report.t

val nemesis_matrix : n:int -> delta:int -> Sweep.nemesis_row list -> Report.t

(** {1 Engine scaling (bench)} *)

type scaling_row = {
  sc_jobs : int;  (** worker count the sweep ran with *)
  sc_wall_s : float;
  sc_speedup : float;  (** wall(jobs=1) / wall(this row) *)
}

val engine_scaling : case:string -> scaling_row list -> Report.t
(** One representative sweep timed at increasing [--jobs]; the rows
    land in BENCH_results.json. *)

(** {1 E25 — sharded key-space scaling} *)

val shard_scaling :
  protocol:string -> n:int -> keys:int -> horizon:int -> Sweep.shard_row list -> Report.t
