(* Tests for the consensus stack built on the register array: codec,
   omega, register array composition, the alpha abstraction, and
   leader-driven consensus — the application the paper's introduction
   motivates regular registers with. *)

open Dds_sim
open Dds_net
open Dds_churn
open Dds_alpha

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let time = Time.of_int

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_codec_roundtrip () =
  let cases =
    [
      Codec.bottom;
      { Codec.lre = 1; lrww = 0; v = 0 };
      { Codec.lre = 12345; lrww = 12345; v = 999 };
      { Codec.lre = Codec.field_max - 1; lrww = Codec.field_max - 1; v = Codec.field_max - 1 };
    ]
  in
  List.iter
    (fun r ->
      let r' = Codec.unpack (Codec.pack r) in
      check_bool "roundtrip" true (r = r'))
    cases;
  check_int "bottom packs to zero" 0 (Codec.pack Codec.bottom)

let test_codec_bounds () =
  check_bool "negative field" true
    (try
       ignore (Codec.pack { Codec.lre = -1; lrww = 0; v = 0 });
       false
     with Invalid_argument _ -> true);
  check_bool "overflow field" true
    (try
       ignore (Codec.pack { Codec.lre = Codec.field_max; lrww = 0; v = 0 });
       false
     with Invalid_argument _ -> true)

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"codec pack/unpack roundtrip" ~count:500
    QCheck2.Gen.(
      triple (int_range 0 (Codec.field_max - 1)) (int_range 0 (Codec.field_max - 1))
        (int_range 0 (Codec.field_max - 1)))
    (fun (lre, lrww, v) ->
      let r = { Codec.lre; lrww; v } in
      Codec.unpack (Codec.pack r) = r)

(* ------------------------------------------------------------------ *)
(* Omega *)

let test_omega () =
  let m = Membership.create () in
  let p i = Pid.of_int i in
  List.iter
    (fun i ->
      Membership.add m (p i) ~now:Time.zero;
      Membership.set_active m (p i) ~now:Time.zero)
    [ 0; 1; 2 ];
  let participants = [ p 0; p 1; p 2 ] in
  check_bool "lowest present" true (Omega.leader m ~participants = Some (p 0));
  Membership.remove m (p 0) ~now:(time 1);
  check_bool "next after departure" true (Omega.leader m ~participants = Some (p 1));
  check_bool "is_leader" true (Omega.is_leader m ~participants (p 1));
  check_bool "not leader" false (Omega.is_leader m ~participants (p 2));
  Membership.remove m (p 1) ~now:(time 2);
  Membership.remove m (p 2) ~now:(time 2);
  check_bool "none left" true (Omega.leader m ~participants = None)

(* ------------------------------------------------------------------ *)
(* Register array *)

let make_array ?(seed = 5) ?(n = 6) ?(k = 3) ?(churn = 0.0) ?protect () =
  Register_array.create ~seed ~n ~k ~delay:(Delay.synchronous ~delta:3) ~churn_rate:churn
    ?protect ()

let test_array_founding_active () =
  let arr = make_array () in
  check_int "k registers" 3 (Register_array.k arr);
  check_int "founding" 6 (List.length (Register_array.founding arr));
  List.iter
    (fun pid -> check_bool "founder active" true (Register_array.is_active arr pid))
    (Register_array.founding arr);
  check_bool "owner 0 is founder 0" true
    (Pid.equal (Register_array.owner arr ~reg:0) (List.hd (Register_array.founding arr)))

let test_array_write_then_read () =
  let arr = make_array () in
  let sched = Register_array.scheduler arr in
  let o0 = Register_array.owner arr ~reg:0 in
  let reader = List.nth (Register_array.founding arr) 4 in
  let record = { Codec.lre = 7; lrww = 7; v = 42 } in
  let observed = ref None in
  ignore
    (Scheduler.schedule_at sched (time 5) (fun () ->
         Register_array.write arr ~self:o0 ~reg:0 ~record ~k:(fun () -> ())));
  ignore
    (Scheduler.schedule_at sched (time 50) (fun () ->
         Register_array.read arr ~self:reader ~reg:0 ~k:(fun r -> observed := Some r)));
  Scheduler.run_until sched (time 100);
  check_bool "read returns the write" true (!observed = Some record);
  (* Register 1 is untouched. *)
  let other = ref None in
  ignore
    (Scheduler.schedule_at sched (time 110) (fun () ->
         Register_array.read arr ~self:reader ~reg:1 ~k:(fun r -> other := Some r)));
  Scheduler.run_until sched (time 160);
  check_bool "independent registers" true (!other = Some Codec.bottom)

let test_array_owner_only_writes () =
  let arr = make_array () in
  let intruder = List.nth (Register_array.founding arr) 5 in
  check_bool "non-owner write rejected" true
    (try
       Register_array.write arr ~self:intruder ~reg:0 ~record:Codec.bottom ~k:(fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_array_joiner_joins_all_registers () =
  let arr = make_array () in
  let sched = Register_array.scheduler arr in
  let joiner = ref None in
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> joiner := Some (Register_array.spawn arr)));
  Scheduler.run_until sched (time 200);
  match !joiner with
  | Some pid ->
    check_bool "joiner became active" true (Register_array.is_active arr pid);
    (* It can read every register. *)
    let reads = ref 0 in
    ignore
      (Scheduler.schedule_at sched (time 210) (fun () ->
           for reg = 0 to 2 do
             Register_array.read arr ~self:pid ~reg ~k:(fun _ -> incr reads)
           done));
    Scheduler.run_until sched (time 300);
    check_int "parallel reads of all registers" 3 !reads
  | None -> Alcotest.fail "joiner missing"

let test_array_retire_aborts () =
  let arr = make_array () in
  let sched = Register_array.scheduler arr in
  let victim = List.nth (Register_array.founding arr) 3 in
  let fired = ref false in
  ignore
    (Scheduler.schedule_at sched (time 5) (fun () ->
         Register_array.read arr ~self:victim ~reg:0 ~k:(fun _ -> fired := true)));
  ignore (Scheduler.schedule_at sched (time 6) (fun () -> Register_array.retire arr victim));
  Scheduler.run_until sched (time 100);
  check_bool "continuation never fires after leave" false !fired;
  let h = (Register_array.histories arr).(0) in
  check_int "read aborted in history" 1 (List.length (Dds_spec.History.aborted h))

(* ------------------------------------------------------------------ *)
(* Alpha *)

let test_alpha_solo_commit () =
  let arr = make_array () in
  let sched = Register_array.scheduler arr in
  let o0 = Register_array.owner arr ~reg:0 in
  let outcome = ref None in
  ignore
    (Scheduler.schedule_at sched (time 5) (fun () ->
         Alpha.propose arr ~self:o0 ~self_reg:0
           ~round:(Alpha.round_for ~participant_index:0 ~attempt:1 ~k:3)
           ~value:77
           ~k:(fun o -> outcome := Some o)));
  Scheduler.run_until sched (time 300);
  check_bool "solo proposer commits own value" true (!outcome = Some (Alpha.Commit 77))

let test_alpha_adopts_previous_commit () =
  (* After o0 commits 77, a later attempt by o1 with a higher round
     must adopt 77, not its own 88 — the agreement mechanism. *)
  let arr = make_array () in
  let sched = Register_array.scheduler arr in
  let o0 = Register_array.owner arr ~reg:0 in
  let o1 = Register_array.owner arr ~reg:1 in
  let second = ref None in
  ignore
    (Scheduler.schedule_at sched (time 5) (fun () ->
         Alpha.propose arr ~self:o0 ~self_reg:0
           ~round:(Alpha.round_for ~participant_index:0 ~attempt:1 ~k:3)
           ~value:77
           ~k:(fun _ -> ())));
  ignore
    (Scheduler.schedule_at sched (time 300) (fun () ->
         Alpha.propose arr ~self:o1 ~self_reg:1
           ~round:(Alpha.round_for ~participant_index:1 ~attempt:1 ~k:3)
           ~value:88
           ~k:(fun o -> second := Some o)));
  Scheduler.run_until sched (time 700);
  check_bool "later round adopts the committed value" true
    (!second = Some (Alpha.Commit 77))

let test_alpha_low_round_aborts () =
  (* o1 runs round 2 to completion first; then o0 tries round 1 and
     must abort (it sees lre/lrww = 2 > 1). *)
  let arr = make_array () in
  let sched = Register_array.scheduler arr in
  let o0 = Register_array.owner arr ~reg:0 in
  let o1 = Register_array.owner arr ~reg:1 in
  let late = ref None in
  ignore
    (Scheduler.schedule_at sched (time 5) (fun () ->
         Alpha.propose arr ~self:o1 ~self_reg:1 ~round:2 ~value:88 ~k:(fun _ -> ())));
  ignore
    (Scheduler.schedule_at sched (time 300) (fun () ->
         Alpha.propose arr ~self:o0 ~self_reg:0 ~round:1 ~value:77
           ~k:(fun o -> late := Some o)));
  Scheduler.run_until sched (time 700);
  check_bool "stale round aborts" true
    (match !late with Some (Alpha.Abort _) -> true | _ -> false)

(* Property: alpha never commits two different values, under random
   interleavings of two contending proposers. *)
let prop_alpha_agreement =
  QCheck2.Test.make ~name:"alpha agreement under contention" ~count:40
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 60))
    (fun (seed, offset) ->
      let arr = make_array ~seed () in
      let sched = Register_array.scheduler arr in
      let commits = ref [] in
      let launch ~index ~value ~at =
        let self = Register_array.owner arr ~reg:index in
        let attempts = ref 0 in
        let rec go () =
          if !attempts < 6 then begin
            incr attempts;
            Alpha.propose arr ~self ~self_reg:index
              ~round:(Alpha.round_for ~participant_index:index ~attempt:!attempts ~k:3)
              ~value
              ~k:(function
                | Alpha.Commit v -> commits := v :: !commits
                | Alpha.Abort _ ->
                  ignore (Scheduler.schedule_after sched 10 go))
          end
        in
        ignore (Scheduler.schedule_at sched (time at) go)
      in
      launch ~index:0 ~value:111 ~at:5;
      launch ~index:1 ~value:222 ~at:(5 + offset);
      Scheduler.run_until sched (time 3000);
      match List.sort_uniq Int.compare !commits with
      | [] | [ _ ] -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Consensus *)

let test_consensus_stable_run () =
  let arr = make_array ~n:6 ~k:3 () in
  let c = Consensus.create arr ~retry_every:20 () in
  List.iteri
    (fun i pid -> if i < 3 then Consensus.propose c pid (100 + i))
    (Register_array.founding arr);
  Consensus.start c ~until:(time 1000);
  Scheduler.run_until (Register_array.scheduler arr) (time 1200);
  check_bool "agreement" true (Consensus.agreement_ok c);
  check_bool "validity" true (Consensus.validity_ok c);
  (* The stable leader is participant 0: its proposal wins. *)
  check_bool "leader's value decided" true
    (match Consensus.decisions c with (_, v) :: _ -> v = 100 | [] -> false);
  check_int "every founder learned it" 6 (Consensus.decided_count c)

let test_consensus_leader_crash () =
  (* The first leader leaves before it can finish; the next
     participant takes over and everyone still decides one value. *)
  let arr = make_array ~n:6 ~k:3 () in
  let sched = Register_array.scheduler arr in
  let c = Consensus.create arr ~retry_every:20 () in
  List.iteri
    (fun i pid -> if i < 3 then Consensus.propose c pid (100 + i))
    (Register_array.founding arr);
  let first = List.hd (Register_array.founding arr) in
  ignore (Scheduler.schedule_at sched (time 25) (fun () -> Register_array.retire arr first));
  Consensus.start c ~until:(time 2000);
  Scheduler.run_until sched (time 2400);
  check_bool "agreement after crash" true (Consensus.agreement_ok c);
  check_bool "validity after crash" true (Consensus.validity_ok c);
  check_bool "someone decided" true (Consensus.decided_count c >= 5);
  check_bool "the crashed leader is not among deciders" true
    (Consensus.decision_of c first = None)

let test_consensus_joiners_learn () =
  let protect_participants arr_ref pid =
    match !arr_ref with
    | Some arr ->
      List.exists (Pid.equal pid)
        (List.filteri (fun i _ -> i < 3) (Register_array.founding arr))
    | None -> false
  in
  let arr_ref = ref None in
  let arr =
    Register_array.create ~seed:9 ~n:8 ~k:3 ~delay:(Delay.synchronous ~delta:3)
      ~churn_rate:0.01
      ~protect:(protect_participants arr_ref)
      ()
  in
  arr_ref := Some arr;
  let c = Consensus.create arr ~retry_every:20 () in
  List.iteri
    (fun i pid -> if i < 3 then Consensus.propose c pid (100 + i))
    (Register_array.founding arr);
  Register_array.start_churn arr ~until:(time 1500);
  Consensus.start c ~until:(time 1500);
  Scheduler.run_until (Register_array.scheduler arr) (time 1800);
  check_bool "agreement under churn" true (Consensus.agreement_ok c);
  check_bool "validity under churn" true (Consensus.validity_ok c);
  (* Processes that joined long after the decision still learned it
     through re-announcements. *)
  let late_learners =
    List.filter
      (fun (pid, _) -> not (List.mem pid (Register_array.founding arr)))
      (Consensus.decisions c)
  in
  check_bool "late joiners learned the decision" true (late_learners <> [])

let test_consensus_propose_validation () =
  let arr = make_array () in
  let c = Consensus.create arr () in
  let p0 = List.hd (Register_array.founding arr) in
  let outsider = List.nth (Register_array.founding arr) 5 in
  check_bool "non participant" true
    (try
       Consensus.propose c outsider 5;
       false
     with Invalid_argument _ -> true);
  Consensus.propose c p0 5;
  check_bool "double proposal" true
    (try
       Consensus.propose c p0 6;
       false
     with Invalid_argument _ -> true);
  check_bool "zero reserved" true
    (try
       Consensus.propose c (List.nth (Register_array.founding arr) 1) 0;
       false
     with Invalid_argument _ -> true)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dds_alpha"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "bounds" `Quick test_codec_bounds;
        ] );
      ("omega", [ Alcotest.test_case "leader selection" `Quick test_omega ]);
      ( "register-array",
        [
          Alcotest.test_case "founding active" `Quick test_array_founding_active;
          Alcotest.test_case "write then read" `Quick test_array_write_then_read;
          Alcotest.test_case "owner only writes" `Quick test_array_owner_only_writes;
          Alcotest.test_case "joiner joins all registers" `Quick
            test_array_joiner_joins_all_registers;
          Alcotest.test_case "retire aborts" `Quick test_array_retire_aborts;
        ] );
      ( "alpha",
        [
          Alcotest.test_case "solo commit" `Quick test_alpha_solo_commit;
          Alcotest.test_case "adopts previous commit" `Quick test_alpha_adopts_previous_commit;
          Alcotest.test_case "low round aborts" `Quick test_alpha_low_round_aborts;
        ] );
      ( "consensus",
        [
          Alcotest.test_case "stable run" `Quick test_consensus_stable_run;
          Alcotest.test_case "leader crash" `Quick test_consensus_leader_crash;
          Alcotest.test_case "joiners learn" `Slow test_consensus_joiners_learn;
          Alcotest.test_case "propose validation" `Quick test_consensus_propose_validation;
        ] );
      qsuite "alpha-props" [ prop_codec_roundtrip; prop_alpha_agreement ];
    ]
