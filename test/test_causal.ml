(* Tests for the causal critical-path analyzer (lib/causal): every
   attribution is exact (phases and path segments sum to the span
   latency), every critical path is causally well-formed, a
   nemesis-delayed quorum names its straggler on the slowest op's
   path, lenient JSONL parsing tolerates a truncated final line, and
   the monitor's structural overdue-span hook stays empty on a
   compliant run. *)

open Dds_sim
open Dds_net
open Dds_core
module Generator = Dds_workload.Generator
module Nemesis = Dds_fault.Nemesis
module Causal = Dds_causal.Causal

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let time = Time.of_int

module Es_d = Deployment.Make (Es_register)
module Es_gen = Generator.Make (Es_d)
module Es_inj = Dds_fault.Injector.Make (Es_d)
module Sync_d = Deployment.Make (Sync_register)
module Sync_gen = Generator.Make (Sync_d)

(* One seeded ES run with the sink on, optionally armed with a
   nemesis plan, returning the full event record. *)
let es_trace ?(seed = 11) ?(n = 5) ?(churn = 0.0) ?(horizon = 120) ?plan () =
  let cfg =
    {
      (Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta:3)
         ~churn_rate:churn)
      with
      Deployment.events_enabled = true;
    }
  in
  let d = Es_d.create cfg (Es_register.default_params ~n) in
  (match plan with
  | Some p -> ignore (Es_inj.install ~rng:(Rng.create ~seed:(seed + 7919)) d p)
  | None -> ());
  if churn > 0.0 then Es_d.start_churn d ~until:(time horizon);
  Es_gen.run d
    {
      (Generator.default ~until:(time horizon)) with
      Generator.read_rate = 0.4;
      write_every = 15;
    };
  Es_d.run_until d (time (horizon + 60));
  Event.events (Es_d.events d)

let sync_trace ~seed ~churn ~horizon =
  let cfg =
    {
      (Deployment.default_config ~seed ~n:10 ~delay:(Delay.synchronous ~delta:3)
         ~churn_rate:churn)
      with
      Deployment.events_enabled = true;
    }
  in
  let d = Sync_d.create cfg (Sync_register.default_params ~delta:3) in
  Sync_d.start_churn d ~until:(time horizon);
  Sync_gen.run d (Generator.default ~until:(time horizon));
  Sync_d.run_until d (time (horizon + 40));
  Event.events (Sync_d.events d)

(* ------------------------------------------------------------------ *)
(* Exactness and well-formedness, checked on one attribution *)

let phase_sum (a : Causal.attribution) =
  a.Causal.a_compute + a.Causal.a_transit + a.Causal.a_quorum + a.Causal.a_timer
  + a.Causal.a_retry

(* The defining invariants of an attribution:
   - latency is the span window, and the attributed phases sum to it
     exactly (the machine-checkable contract `dds explain` prints);
   - the critical path tiles that window: contiguous segments from
     Op_start to Op_end, each respecting causal (Lamport/time) order,
     so no segment — and no phase — can exceed the span duration;
   - transit segments carry a real sender and wire kind. *)
let well_formed (a : Causal.attribution) =
  let lat = a.Causal.a_latency in
  lat = Time.to_int a.Causal.a_ended - Time.to_int a.Causal.a_started
  && lat >= 0
  && phase_sum a = lat
  && List.fold_left (fun s g -> s + Causal.seg_dur g) 0 a.Causal.a_segments = lat
  && List.for_all
       (fun (g : Causal.segment) ->
         Causal.seg_dur g >= 0
         && Causal.seg_dur g <= lat
         && Time.compare a.Causal.a_started g.Causal.g_from <= 0
         && Time.compare g.Causal.g_to a.Causal.a_ended <= 0
         && (g.Causal.g_kind <> Causal.Transit || String.length g.Causal.g_msg > 0))
       a.Causal.a_segments
  &&
  (* Contiguity: each segment starts where the previous one ended. *)
  let rec chain = function
    | g1 :: (g2 : Causal.segment) :: rest ->
      Time.compare g1.Causal.g_to g2.Causal.g_from = 0 && chain (g2 :: rest)
    | [ last ] -> Time.compare last.Causal.g_to a.Causal.a_ended = 0
    | [] -> lat = 0
  in
  match a.Causal.a_segments with
  | [] -> lat = 0
  | first :: _ -> Time.compare first.Causal.g_from a.Causal.a_started = 0 && chain a.Causal.a_segments

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_attribution_exact =
  QCheck2.Test.make ~name:"every es attribution is exact and well-formed" ~count:12
    QCheck2.Gen.(pair (int_range 0 5_000) (int_range 0 2))
    (fun (seed, churn_i) ->
      let churn = float_of_int churn_i *. 0.004 in
      let r = Causal.analyze (es_trace ~seed ~n:6 ~churn ()) in
      r.Causal.r_ops <> [] && List.for_all well_formed r.Causal.r_ops)

let prop_sync_attribution_exact =
  QCheck2.Test.make ~name:"every sync attribution is exact and well-formed" ~count:8
    QCheck2.Gen.(int_range 0 5_000)
    (fun seed ->
      let r = Causal.analyze (sync_trace ~seed ~churn:0.02 ~horizon:150) in
      r.Causal.r_ops <> [] && List.for_all well_formed r.Causal.r_ops)

let prop_analyze_deterministic =
  QCheck2.Test.make ~name:"analyze is a pure function of the trace" ~count:6
    QCheck2.Gen.(int_range 0 5_000)
    (fun seed ->
      let evs = es_trace ~seed ~n:5 ~churn:0.003 () in
      Causal.analyze ~bound:30 evs = Causal.analyze ~bound:30 evs)

(* ------------------------------------------------------------------ *)
(* Straggler attribution under an injected delay *)

(* n=5 ES, majority quorum 3: the client's own response and p1's come
   back fast, while REPLY/ACK from p2-p4 ride a +6-tick nemesis
   delay. Every quorum therefore completes on a delayed responder —
   the analyzer must name one of them as the straggler of the slowest
   op and put that responder's hop on its critical path. This is the
   acceptance scenario: a nemesis-delayed run names the straggler
   node/message on the slowest op's path. *)
let test_nemesis_straggler () =
  let plan =
    [
      Nemesis.delay ~extra:6 ~srcs:[ 2; 3; 4 ] ~kinds:[ "REPLY"; "ACK" ] Nemesis.always
    ]
  in
  let evs = es_trace ~seed:11 ~n:5 ~horizon:120 ~plan () in
  let r = Causal.analyze ~bound:30 evs in
  check_bool "attributed ops exist" true (r.Causal.r_ops <> []);
  check_bool "all exact under nemesis" true (List.for_all well_formed r.Causal.r_ops);
  match Causal.slowest r 1 with
  | [] -> Alcotest.fail "no slowest op"
  | slow :: _ -> (
    match slow.Causal.a_straggler with
    | None -> Alcotest.fail "slowest op has no straggler"
    | Some st ->
      check_bool "straggler is a delayed responder" true
        (List.mem st.Causal.st_node [ 2; 3; 4 ]);
      check_bool "straggler message kind named" true
        (List.mem st.Causal.st_msg [ "REPLY"; "ACK" ]);
      check_bool "straggler waited" true (st.Causal.st_wait > 0);
      check_bool "straggler's hop is on the critical path" true
        (List.exists
           (fun (g : Causal.segment) -> g.Causal.g_src = st.Causal.st_node)
           slow.Causal.a_segments);
      (* The quorum wait the straggler caused is attributed, and the
         delayed run is slower than the clean one. *)
      check_bool "quorum phase is charged" true (slow.Causal.a_quorum > 0);
      let clean = Causal.analyze (es_trace ~seed:11 ~n:5 ~horizon:120 ()) in
      match Causal.slowest clean 1 with
      | [] -> Alcotest.fail "clean run has no ops"
      | clean_slow :: _ ->
        check_bool "delay shows up in the slowest latency" true
          (slow.Causal.a_latency > clean_slow.Causal.a_latency))

(* ------------------------------------------------------------------ *)
(* Bound flagging *)

let test_over_bound_witnesses () =
  let evs = es_trace ~seed:3 ~n:6 ~churn:0.004 () in
  let r = Causal.analyze ~bound:1 evs in
  check_bool "tiny bound flags ops" true (r.Causal.r_over_bound <> []);
  check_bool "every flagged op exceeds the bound" true
    (List.for_all (fun a -> a.Causal.a_latency > 1) r.Causal.r_over_bound);
  (* Slowest first, and each witness is itself a well-formed path. *)
  let rec sorted = function
    | a :: b :: rest ->
      a.Causal.a_latency >= b.Causal.a_latency && sorted (b :: rest)
    | _ -> true
  in
  check_bool "witnesses sorted slowest-first" true (sorted r.Causal.r_over_bound);
  check_bool "witness paths are well-formed" true
    (List.for_all well_formed r.Causal.r_over_bound);
  let generous = Causal.analyze ~bound:10_000 evs in
  check Alcotest.(list int) "generous bound flags nothing" []
    (List.map (fun a -> a.Causal.a_span) generous.Causal.r_over_bound)

(* ------------------------------------------------------------------ *)
(* Aggregate table *)

let test_aggregate_counts () =
  let evs = es_trace ~seed:5 ~n:6 ~churn:0.003 () in
  let r = Causal.analyze evs in
  let agg_total =
    List.fold_left (fun s og -> s + og.Causal.og_count) 0 r.Causal.r_aggregate
  in
  check_int "aggregate rows cover every op" (List.length r.Causal.r_ops) agg_total;
  List.iter
    (fun og ->
      check_int "one phase row per kind" (List.length Causal.all_seg_kinds)
        (List.length og.Causal.og_phases);
      check_bool "p50 <= p99 <= max" true
        (og.Causal.og_lat_p50 <= og.Causal.og_lat_p99
        && og.Causal.og_lat_p99 <= og.Causal.og_lat_max))
    r.Causal.r_aggregate

(* ------------------------------------------------------------------ *)
(* Lenient JSONL parsing (truncated trace files) *)

let test_truncated_jsonl () =
  let evs = es_trace ~seed:7 ~n:5 () in
  let s = Export.jsonl_of_events evs in
  (* Cut the file mid-way through its final line, as a crashed or
     killed run would leave it. *)
  let cut = String.length s - 9 in
  let truncated = String.sub s 0 cut in
  match Export.events_of_jsonl_lenient truncated with
  | Error e -> Alcotest.failf "lenient parse failed outright: %s" e
  | Ok (evs', warnings) ->
    check_int "exactly the final line dropped" (List.length evs - 1) (List.length evs');
    check_bool "truncation warned about" true (warnings <> []);
    (* The analyzer runs on what survived; spans cut open by the
       truncation surface as orphans, not failures. *)
    let r = Causal.analyze evs' in
    check_bool "attribution still exact" true (List.for_all well_formed r.Causal.r_ops)

let test_json_report_exactness () =
  let evs = es_trace ~seed:13 ~n:6 ~churn:0.004 () in
  let r = Causal.analyze ~bound:30 evs in
  match Causal.report_to_json r with
  | Json.Obj members ->
    let ops =
      match List.assoc_opt "ops" members with Some (Json.List l) -> l | _ -> []
    in
    check_int "one JSON op per attribution" (List.length r.Causal.r_ops) (List.length ops);
    List.iter
      (fun op ->
        let phases =
          match Json.member "phases" op with
          | Some (Json.Obj ps) ->
            List.fold_left
              (fun s (_, v) -> s + Option.value ~default:0 (Json.to_int_opt v))
              0 ps
          | _ -> -1
        in
        let lat =
          Option.bind (Json.member "latency" op) Json.to_int_opt
          |> Option.value ~default:(-2)
        in
        check_int "JSON phases sum to JSON latency" lat phases)
      ops
  | _ -> Alcotest.fail "report_to_json did not return an object"

(* ------------------------------------------------------------------ *)
(* Monitor overdue-span hook *)

let test_monitor_overdue_empty_on_compliant_run () =
  let evs = es_trace ~seed:11 ~n:8 ~churn:0.003 ~horizon:150 () in
  let cfg =
    {
      (Dds_monitor.Monitor.default ~n:8 ~delta:3) with
      Dds_monitor.Monitor.majority = true;
      inversions = false;
    }
  in
  let m = Dds_monitor.Monitor.create cfg in
  List.iter (fun st -> ignore (Dds_monitor.Monitor.feed m st)) evs;
  let last_at =
    List.fold_left (fun a (st : Event.stamped) -> Time.max a st.Event.at) Time.zero evs
  in
  ignore (Dds_monitor.Monitor.finalize m ~at:last_at);
  check Alcotest.(list int) "no structurally overdue spans" []
    (Dds_monitor.Monitor.overdue_spans m)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dds_causal"
    [
      ( "attribution",
        [
          Alcotest.test_case "nemesis delay names the straggler" `Quick
            test_nemesis_straggler;
          Alcotest.test_case "over-bound ops carry witnesses" `Quick
            test_over_bound_witnesses;
          Alcotest.test_case "aggregate covers every op" `Quick test_aggregate_counts;
          Alcotest.test_case "JSON report is machine-checkably exact" `Quick
            test_json_report_exactness;
        ] );
      ( "io",
        [
          Alcotest.test_case "truncated final JSONL line tolerated" `Quick
            test_truncated_jsonl;
          Alcotest.test_case "monitor overdue hook empty when compliant" `Quick
            test_monitor_overdue_empty_on_compliant_run;
        ] );
      qsuite "properties"
        [
          prop_attribution_exact;
          prop_sync_attribution_exact;
          prop_analyze_deterministic;
        ];
    ]
