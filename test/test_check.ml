(* Tests for the schedule explorer: choice-point plumbing in the
   scheduler, frontier expansion, the schedule codec, clean bounded
   checks of all three protocols, the ES quorum mutation finding a
   replayable counterexample, and worker-count invariance of explored
   counts. *)

open Dds_sim
open Dds_core
open Dds_check
module Pool = Dds_engine.Pool

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Scheduler choice points *)

let test_chooser_orders_ready_set () =
  let s = Scheduler.create () in
  let fired = ref [] in
  let tag actor = { Scheduler.actor; kind = Printf.sprintf "ev%d" actor } in
  List.iter
    (fun a ->
      ignore
        (Scheduler.schedule_at s ~tag:(tag a) (Time.of_int 5) (fun () ->
             fired := a :: !fired)))
    [ 0; 1; 2 ];
  (* Pick the highest-index candidate each time: reverse of FIFO. *)
  Scheduler.set_chooser s (Some (fun cands -> Array.length cands - 1));
  Scheduler.run s ();
  check_bool "chooser controls firing order" true (List.rev !fired = [ 2; 1; 0 ]);
  check_int "time advanced once" 5 (Time.to_int (Scheduler.now s))

let test_chooser_skipped_for_singletons () =
  let s = Scheduler.create () in
  let asked = ref 0 in
  let fired = ref 0 in
  ignore (Scheduler.schedule_at s (Time.of_int 1) (fun () -> incr fired));
  ignore (Scheduler.schedule_at s (Time.of_int 2) (fun () -> incr fired));
  Scheduler.set_chooser s
    (Some
       (fun _ ->
         incr asked;
         0));
  Scheduler.run s ();
  check_int "both fired" 2 !fired;
  check_int "no decision point for a lone ready event" 0 !asked

let test_chooser_candidates_expose_tags () =
  let s = Scheduler.create () in
  let seen = ref [] in
  let tag actor kind = { Scheduler.actor; kind } in
  ignore (Scheduler.schedule_at s ~tag:(tag 3 "a") (Time.of_int 1) ignore);
  ignore (Scheduler.schedule_at s ~tag:(tag 7 "b") (Time.of_int 1) ignore);
  Scheduler.set_chooser s
    (Some
       (fun cands ->
         seen :=
           Array.to_list (Array.map (fun c -> (Scheduler.candidate_tag c).Scheduler.actor) cands);
         0));
  Scheduler.run s ();
  check_bool "tags visible in seq order" true (!seen = [ 3; 7 ])

(* ------------------------------------------------------------------ *)
(* Frontier expansion *)

(* A synthetic binary tree of depth [d]: node = path as int list,
   leaves at depth d carry the path. *)
let tree_children d path =
  if List.length path >= d then [ Either.Right path ]
  else [ Either.Left (0 :: path); Either.Left (1 :: path) ]

let test_expand_frontier_deterministic () =
  let run jobs target =
    Pool.with_pool ~jobs (fun p ->
        Pool.expand_frontier p
          ~key:(fun path -> String.concat "." (List.map string_of_int path))
          ~children:(tree_children 4) ~target [ [] ])
  in
  let render fr =
    String.concat ";"
      (List.map
         (function
           | Either.Left path -> "L" ^ String.concat "" (List.map string_of_int path)
           | Either.Right path -> "R" ^ String.concat "" (List.map string_of_int path))
         fr)
  in
  let reference = render (run 1 6) in
  List.iter
    (fun jobs -> check_string "frontier independent of workers" reference (render (run jobs 6)))
    [ 2; 4 ];
  (* Target beyond the whole tree: everything dissolves into leaves. *)
  let full = run 4 1000 in
  check_int "full dissolution" 16 (List.length full);
  check_bool "all leaves" true
    (List.for_all (function Either.Right _ -> true | Either.Left _ -> false) full)

(* ------------------------------------------------------------------ *)
(* Schedule codec *)

let config ?(proto = "sync") ?(nodes = 3) ?(delta = 1) ?(writes = 1) ?(reads = 1) ?(joins = 0)
    ?quorum ?(drop_budget = 0) ?(crash_budget = 0) ?(depth_bound = 12) ?(preempt_bound = 2) ()
    =
  {
    Schedule.proto;
    nodes;
    delta;
    writes;
    reads;
    joins;
    quorum;
    drop_budget;
    crash_budget;
    depth_bound;
    preempt_bound;
  }

let test_codec_roundtrip () =
  let t =
    {
      Schedule.config = config ~proto:"es" ~quorum:1 ~drop_budget:1 ();
      decisions =
        [
          { Schedule.chosen = 2; arity = 3; label = "deliver:WRITE:p0->p2:1#1" };
          { Schedule.chosen = 1; arity = 2; label = "drop?WRITE:p0->p1=1" };
          { Schedule.chosen = 0; arity = 2; label = "timer:p1" };
        ];
    }
  in
  match Schedule.of_string (Schedule.to_string t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    check_bool "round-trip is identity" true (t = t');
    check_string "and stable as text" (Schedule.to_string t) (Schedule.to_string t')

let test_codec_rejects_garbage () =
  let bad text =
    match Schedule.of_string text with Ok _ -> Alcotest.fail "expected parse error" | Error _ -> ()
  in
  bad "nodes=3\n";
  bad "proto=sync\nnodes=three\n";
  bad "proto=sync\nnodes=3\ndelta=1\nwrites=1\nreads=1\njoins=0\ndrop-budget=0\ncrash-budget=0\ndepth-bound=8\npreempt-bound=2\nchoice 5/3 oops\n";
  bad "what is this line\n"

let prop_codec_roundtrip =
  let gen =
    QCheck.Gen.(
      let label = oneofl [ "deliver:W:p0->p1:1#1"; "timer:p2"; "drop?READ:p1->p0=1"; "ev@t=4" ] in
      let decision =
        int_range 1 5 >>= fun arity ->
        int_range 0 (arity - 1) >>= fun chosen ->
        label >|= fun label -> { Schedule.chosen; arity; label }
      in
      list_size (int_range 0 12) decision >|= fun decisions ->
      { Schedule.config = config (); decisions })
  in
  QCheck.Test.make ~count:50 ~name:"schedule codec round-trips"
    (QCheck.make ~print:Schedule.to_string gen)
    (fun t ->
      match Schedule.of_string (Schedule.to_string t) with
      | Ok t' -> t = t'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Clean bounded checks: all three protocols, 3 nodes, no adversary. *)

let clean_check name =
  let p = Protocol.find_exn name in
  match Check.run p (config ~proto:name ()) with
  | Error e -> Alcotest.fail e
  | Ok { stats; violation } ->
    check_bool (name ^ " explored some schedules") true (stats.Check.schedules > 0);
    (match violation with
    | None -> ()
    | Some v ->
      Alcotest.failf "%s violated: %s\n%s" name
        (String.concat "; " v.Check.lines)
        (Schedule.to_string v.Check.schedule))

let test_clean_sync () = clean_check "sync"
let test_clean_es () = clean_check "es"
let test_clean_abd () = clean_check "abd"

(* ------------------------------------------------------------------ *)
(* The ES quorum mutation: with the write/read quorum forced to 1 (the
   paper requires a majority, 2 of 3) a single dropped WRITE lets a
   read return the old value after the write completed — a regularity
   violation the checker must find, emit as a replayable schedule, and
   the replay must reproduce. *)

let es_mutation_outcome =
  lazy
    (let p = Protocol.find_exn "es" in
     Check.run p (config ~proto:"es" ~quorum:1 ~drop_budget:1 ~depth_bound:20 ()))

let test_es_mutation_caught () =
  match Lazy.force es_mutation_outcome with
  | Error e -> Alcotest.fail e
  | Ok { violation = None; _ } -> Alcotest.fail "quorum-1 mutation not caught"
  | Ok { violation = Some v; _ } ->
    check_bool "violation rendered" true (v.Check.lines <> []);
    check_bool "counterexample is positive" true (v.Check.at_schedule >= 1);
    (* Minimal: the trimmed schedule ends on a real (non-default) choice. *)
    (match List.rev v.Check.schedule.Schedule.decisions with
    | [] -> Alcotest.fail "empty counterexample"
    | last :: _ -> check_bool "no default tail" true (last.Schedule.chosen > 0))

let test_es_mutation_replays () =
  match Lazy.force es_mutation_outcome with
  | Error e -> Alcotest.fail e
  | Ok { violation = None; _ } -> Alcotest.fail "quorum-1 mutation not caught"
  | Ok { violation = Some v; _ } -> (
    (* Round-trip through the textual format, as the CLI does. *)
    match Schedule.of_string (Schedule.to_string v.Check.schedule) with
    | Error e -> Alcotest.fail e
    | Ok sched -> (
      match Check.replay_schedule sched with
      | Error e -> Alcotest.fail e
      | Ok r ->
        check_bool "replay reproduces the violation" true (r.Check.violations <> []);
        check_int "same findings" (List.length v.Check.lines) (List.length r.Check.violations)))

let test_es_majority_tolerates_drop () =
  (* Same deployment, paper-faithful majority quorum: one drop is
     absorbed and no schedule violates regularity. *)
  let p = Protocol.find_exn "es" in
  match Check.run p (config ~proto:"es" ~drop_budget:1 ~depth_bound:20 ()) with
  | Error e -> Alcotest.fail e
  | Ok { violation = Some v; _ } ->
    Alcotest.failf "majority ES violated under one drop: %s" (String.concat "; " v.Check.lines)
  | Ok { violation = None; stats } ->
    check_bool "explored some schedules" true (stats.Check.schedules > 0)

(* ------------------------------------------------------------------ *)
(* Worker-count invariance: explored counts and the counterexample are
   byte-identical for jobs in {1, 2, 4}. *)

let render_outcome (o : Check.outcome) =
  let s = o.Check.stats in
  Printf.sprintf "%d/%d/%d/%d/%d/%d|%s" s.Check.schedules s.Check.truncated s.Check.state_prunes
    s.Check.sleep_skips s.Check.preempt_skips s.Check.max_depth
    (match o.Check.violation with
    | None -> "clean"
    | Some v ->
      Printf.sprintf "#%d:%s:%s" v.Check.at_schedule
        (String.concat ";" v.Check.lines)
        (Schedule.to_string v.Check.schedule))

let prop_jobs_invariant =
  QCheck.Test.make ~count:4 ~name:"check outcome byte-identical for jobs in {1,2,4}"
    QCheck.(
      triple (oneofl [ "sync"; "es" ]) (int_range 0 1) (oneofl [ (0, 0); (1, 0); (0, 1) ]))
    (fun (name, joins, (drop_budget, crash_budget)) ->
      let cfg =
        config ~proto:name ~joins ~drop_budget ~crash_budget ~depth_bound:10 ~preempt_bound:1 ()
      in
      let p = Protocol.find_exn name in
      let run pool =
        match Check.run ?pool p cfg with Error e -> Alcotest.fail e | Ok o -> render_outcome o
      in
      let reference = run None in
      List.for_all
        (fun jobs -> Pool.with_pool ~jobs (fun pl -> String.equal reference (run (Some pl))))
        [ 1; 2; 4 ])

let () =
  Alcotest.run "dds-check"
    [
      ( "scheduler",
        [
          Alcotest.test_case "chooser orders ready set" `Quick test_chooser_orders_ready_set;
          Alcotest.test_case "singleton bypass" `Quick test_chooser_skipped_for_singletons;
          Alcotest.test_case "candidate tags" `Quick test_chooser_candidates_expose_tags;
        ] );
      ( "frontier",
        [ Alcotest.test_case "deterministic expansion" `Quick test_expand_frontier_deterministic ]
      );
      ( "codec",
        [
          Alcotest.test_case "round-trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          QCheck_alcotest.to_alcotest ~long:false prop_codec_roundtrip;
        ] );
      ( "clean",
        [
          Alcotest.test_case "sync 3 nodes" `Quick test_clean_sync;
          Alcotest.test_case "es 3 nodes" `Quick test_clean_es;
          Alcotest.test_case "abd 3 nodes" `Quick test_clean_abd;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "es quorum-1 caught" `Quick test_es_mutation_caught;
          Alcotest.test_case "counterexample replays" `Quick test_es_mutation_replays;
          Alcotest.test_case "majority absorbs one drop" `Quick test_es_majority_tolerates_drop;
        ] );
      ("determinism", [ QCheck_alcotest.to_alcotest ~long:false prop_jobs_invariant ]);
    ]
