(* Tests for membership lifecycle, the constant-churn engine, and the
   post-hoc A(tau) analysis backing the Lemma 2 experiments. *)

open Dds_sim
open Dds_net
open Dds_churn

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let time = Time.of_int
let pid = Pid.of_int

(* ------------------------------------------------------------------ *)
(* Membership *)

let test_membership_lifecycle () =
  let m = Membership.create () in
  Membership.add m (pid 0) ~now:(time 1);
  check Alcotest.(option bool) "joining" (Some true)
    (match Membership.status m (pid 0) with
    | Some Membership.Joining -> Some true
    | _ -> Some false);
  check_int "present" 1 (Membership.n_present m);
  check_int "active" 0 (Membership.n_active m);
  Membership.set_active m (pid 0) ~now:(time 5);
  check_bool "now active" true (Membership.is_active m (pid 0));
  check_int "joining count" 0 (Membership.n_joining m);
  Membership.remove m (pid 0) ~now:(time 9);
  check_bool "gone" false (Membership.is_present m (pid 0));
  match Membership.find_record m (pid 0) with
  | Some r ->
    check_int "join time" 1 (Time.to_int r.Membership.join_time);
    check Alcotest.(option int) "active time" (Some 5)
      (Option.map Time.to_int r.Membership.active_time);
    check Alcotest.(option int) "leave time" (Some 9)
      (Option.map Time.to_int r.Membership.leave_time)
  | None -> Alcotest.fail "record missing"

let test_membership_rejects_reentry () =
  let m = Membership.create () in
  Membership.add m (pid 3) ~now:(time 0);
  Membership.remove m (pid 3) ~now:(time 1);
  check_bool "reentry rejected" true
    (try
       Membership.add m (pid 3) ~now:(time 2);
       false
     with Invalid_argument _ -> true)

let test_membership_invalid_transitions () =
  let m = Membership.create () in
  check_bool "activate unknown" true
    (try
       Membership.set_active m (pid 7) ~now:(time 0);
       false
     with Invalid_argument _ -> true);
  check_bool "remove unknown" true
    (try
       Membership.remove m (pid 7) ~now:(time 0);
       false
     with Invalid_argument _ -> true);
  Membership.add m (pid 7) ~now:(time 0);
  Membership.set_active m (pid 7) ~now:(time 0);
  check_bool "activate twice" true
    (try
       Membership.set_active m (pid 7) ~now:(time 1);
       false
     with Invalid_argument _ -> true)

let test_membership_listings () =
  let m = Membership.create () in
  List.iter (fun i -> Membership.add m (pid i) ~now:(time 0)) [ 2; 0; 1 ];
  Membership.set_active m (pid 1) ~now:(time 1);
  Alcotest.(check (list int)) "present sorted" [ 0; 1; 2 ]
    (List.map Pid.to_int (Membership.present m));
  Alcotest.(check (list int)) "active" [ 1 ] (List.map Pid.to_int (Membership.active m));
  Alcotest.(check (list int)) "joining" [ 0; 2 ] (List.map Pid.to_int (Membership.joining m))

(* ------------------------------------------------------------------ *)
(* Churn engine *)

(* A miniature deployment: processes are just membership entries;
   spawn adds a joining process that becomes active 2 ticks later. *)
type mini = {
  sched : Scheduler.t;
  membership : Membership.t;
  gen : Pid.gen;
  mutable spawned : int;
  mutable retired : Pid.t list;
}

let mini_world ?(seed = 77) ?(n = 20) ?(rate = 0.1) ?(policy = Churn.Uniform) ?protect
    ?(activation_delay = 2) () =
  let sched = Scheduler.create () in
  let membership = Membership.create () in
  let gen = Pid.generator () in
  let w = { sched; membership; gen; spawned = 0; retired = [] } in
  for _ = 1 to n do
    let p = Pid.fresh gen in
    Membership.add membership p ~now:Time.zero;
    Membership.set_active membership p ~now:Time.zero
  done;
  let spawn () =
    let p = Pid.fresh w.gen in
    w.spawned <- w.spawned + 1;
    Membership.add w.membership p ~now:(Scheduler.now sched);
    let activate () =
      if Membership.is_present w.membership p then
        Membership.set_active w.membership p ~now:(Scheduler.now sched)
    in
    if activation_delay = 0 then activate ()
    else ignore (Scheduler.schedule_after sched activation_delay activate)
  in
  let retire p =
    w.retired <- p :: w.retired;
    Membership.remove w.membership p ~now:(Scheduler.now sched)
  in
  let churn =
    Churn.create ~sched ~rng:(Rng.create ~seed) ~membership ~n ~rate ~policy ?protect ~spawn
      ~retire ()
  in
  (w, churn)

let test_churn_constant_size () =
  let w, churn = mini_world ~n:20 ~rate:0.1 () in
  Churn.start churn ~until:(time 100);
  Scheduler.run w.sched ();
  check_int "size constant" 20 (Membership.n_present w.membership);
  (* 20 * 0.1 = 2 per tick, 100 ticks -> 200 refreshes. *)
  check_int "refresh count" 200 (Churn.refreshed churn);
  check_int "spawned = retired" (List.length w.retired) w.spawned

let test_churn_fractional_accumulation () =
  (* n*rate = 0.5: one refresh every other tick, 50 over 100 ticks. *)
  let w, churn = mini_world ~n:10 ~rate:0.05 () in
  Churn.start churn ~until:(time 100);
  Scheduler.run w.sched ();
  check_int "fractional accumulates" 50 (Churn.refreshed churn);
  check_int "size constant" 10 (Membership.n_present w.membership)

let test_churn_zero_rate () =
  let w, churn = mini_world ~n:10 ~rate:0.0 () in
  Churn.start churn ~until:(time 50);
  Scheduler.run w.sched ();
  check_int "no refresh" 0 (Churn.refreshed churn);
  check_int "nobody left" 0 (List.length w.retired)

let test_churn_protection () =
  let protected_pid = pid 0 in
  let w, churn =
    mini_world ~n:5 ~rate:0.2 ~protect:(fun p -> Pid.equal p protected_pid) ()
  in
  Churn.start churn ~until:(time 200);
  Scheduler.run w.sched ();
  check_bool "protected never retired" false
    (List.exists (Pid.equal protected_pid) w.retired);
  check_bool "protected still present" true (Membership.is_present w.membership protected_pid)

let test_churn_stop () =
  let w, churn = mini_world ~n:20 ~rate:0.1 () in
  Churn.start churn ~until:(time 1000);
  Scheduler.run_until w.sched (time 10);
  let after_ten = Churn.refreshed churn in
  Churn.stop churn;
  Scheduler.run w.sched ();
  check_int "no refresh after stop" after_ten (Churn.refreshed churn)

let test_churn_oldest_first () =
  let w, churn = mini_world ~n:10 ~rate:0.1 ~policy:Churn.Oldest_first () in
  Churn.start churn ~until:(time 10);
  Scheduler.run w.sched ();
  (* 1 refresh per tick for 10 ticks: exactly the 10 founding members
     (pids 0..9) go, oldest first. *)
  Alcotest.(check (list int)) "founders retired in order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev_map Pid.to_int w.retired)

let test_churn_active_first () =
  let w, churn = mini_world ~n:10 ~rate:0.3 ~policy:Churn.Active_first () in
  Churn.start churn ~until:(time 30);
  Scheduler.run w.sched ();
  (* With a 2-tick activation delay and 3 victims/tick, joining
     processes exist at every refresh; Active_first must still prefer
     active victims whenever enough are available. Just sanity-check
     the run kept the size constant and made progress. *)
  check_int "size constant" 10 (Membership.n_present w.membership);
  check_bool "progress" true (Churn.refreshed churn >= 80)

let test_policy_parsing () =
  check_bool "uniform" true (Churn.policy_of_string "uniform" = Ok Churn.Uniform);
  check_bool "oldest" true (Churn.policy_of_string "oldest" = Ok Churn.Oldest_first);
  check_bool "youngest" true (Churn.policy_of_string "youngest" = Ok Churn.Youngest_first);
  check_bool "active" true (Churn.policy_of_string "active" = Ok Churn.Active_first);
  check_bool "junk" true
    (match Churn.policy_of_string "junk" with Error _ -> true | Ok _ -> false)

let test_rate_profiles () =
  let bursty = Churn.Bursty { base = 0.0; peak = 0.5; period = 10; burst = 3 } in
  check_bool "burst ticks" true (Churn.rate_at bursty (time 0) = 0.5);
  check_bool "burst tick 2" true (Churn.rate_at bursty (time 2) = 0.5);
  check_bool "calm tick" true (Churn.rate_at bursty (time 3) = 0.0);
  check_bool "periodic" true (Churn.rate_at bursty (time 12) = 0.5);
  check_bool "constant" true (Churn.rate_at (Churn.Constant 0.25) (time 99) = 0.25);
  check_bool "custom" true
    (Churn.rate_at (Churn.Profile (fun t -> if Time.to_int t > 5 then 0.1 else 0.0)) (time 9)
    = 0.1)

let test_bursty_engine_refresh_count () =
  (* n=10, base 0 / peak 0.3 for 5 of every 20 ticks: average 0.075,
     i.e. 0.75 refreshes per tick -> 75 over 100 ticks (bursts at ticks
     t mod 20 < 5; ticks 1..100 contain 25 burst ticks * 3 victims). *)
  let profile = Churn.Bursty { base = 0.0; peak = 0.3; period = 20; burst = 5 } in
  let sched = Scheduler.create () in
  let membership = Membership.create () in
  let gen = Pid.generator () in
  for _ = 1 to 10 do
    let p = Pid.fresh gen in
    Membership.add membership p ~now:Time.zero;
    Membership.set_active membership p ~now:Time.zero
  done;
  let spawn () =
    let p = Pid.fresh gen in
    Membership.add membership p ~now:(Scheduler.now sched);
    Membership.set_active membership p ~now:(Scheduler.now sched)
  in
  let retire p = Membership.remove membership p ~now:(Scheduler.now sched) in
  let churn =
    Churn.create ~sched ~rng:(Rng.create ~seed:5) ~membership ~n:10 ~rate:0.0 ~profile
      ~spawn ~retire ()
  in
  Churn.start churn ~until:(time 100);
  Scheduler.run sched ();
  (* Ticks 1..100 with t mod 20 < 5: {1..4}, {20..24}, {40..44},
     {60..64}, {80..84}, {100} = 25 burst ticks at 3 victims each. *)
  check_int "burst refreshes" 75 (Churn.refreshed churn);
  check_int "size constant" 10 (Membership.n_present membership)

let test_churn_invalid_args () =
  let sched = Scheduler.create () in
  let membership = Membership.create () in
  let mk rate n =
    try
      ignore
        (Churn.create ~sched ~rng:(Rng.create ~seed:0) ~membership ~n ~rate
           ~spawn:(fun () -> ())
           ~retire:(fun _ -> ())
           ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "rate 1.0 rejected" true (mk 1.0 10);
  check_bool "negative rate rejected" true (mk (-0.1) 10);
  check_bool "n 0 rejected" true (mk 0.1 0)

(* ------------------------------------------------------------------ *)
(* Session churn *)

let test_session_sampling () =
  let rng = Rng.create ~seed:5 in
  check_int "fixed" 7 (Session_churn.sample (Session_churn.Fixed 7) rng);
  check_bool "geometric positive" true
    (Session_churn.sample (Session_churn.Geometric 10.0) rng >= 1);
  check_bool "pareto >= xmin-ish" true
    (Session_churn.sample (Session_churn.Pareto { alpha = 1.5; xmin = 5.0 }) rng >= 5);
  check_bool "fixed mean" true (Session_churn.mean_session (Session_churn.Fixed 7) = 7.0);
  check_bool "pareto mean" true
    (Float.abs (Session_churn.mean_session (Session_churn.Pareto { alpha = 1.5; xmin = 5.0 }) -. 15.0)
    < 1e-9);
  check_bool "pareto infinite mean" true
    (Session_churn.mean_session (Session_churn.Pareto { alpha = 0.9; xmin = 5.0 }) = infinity);
  check_bool "bad params" true
    (try
       ignore
         (Session_churn.create ~sched:(Scheduler.create ()) ~rng
            ~membership:(Membership.create ())
            ~distribution:(Session_churn.Fixed 0)
            ~spawn:(fun () -> Pid.of_int 0)
            ~retire:(fun _ -> ())
            ());
       false
     with Invalid_argument _ -> true)

let test_session_geometric_mean () =
  let rng = Rng.create ~seed:11 in
  let total = ref 0 in
  let trials = 5000 in
  for _ = 1 to trials do
    total := !total + Session_churn.sample (Session_churn.Geometric 12.0) rng
  done;
  let mean = float_of_int !total /. float_of_int trials in
  check_bool "empirical mean near 12" true (Float.abs (mean -. 12.0) < 1.0)

let test_session_engine_rotation () =
  (* Fixed sessions: the initial cohort expires together. *)
  let sched = Scheduler.create () in
  let membership = Membership.create () in
  let gen = Pid.generator () in
  let spawn () =
    let p = Pid.fresh gen in
    Membership.add membership p ~now:(Scheduler.now sched);
    Membership.set_active membership p ~now:(Scheduler.now sched);
    p
  in
  let retire p = Membership.remove membership p ~now:(Scheduler.now sched) in
  for _ = 1 to 10 do
    ignore (spawn ())
  done;
  let engine =
    Session_churn.create ~sched ~rng:(Rng.create ~seed:3) ~membership
      ~distribution:(Session_churn.Fixed 20) ~spawn ~retire ()
  in
  Session_churn.start engine ~until:(time 100);
  Scheduler.run_until sched (time 19);
  check_int "nobody expired yet" 0 (Session_churn.replaced engine);
  Scheduler.run_until sched (time 20);
  check_int "whole cohort rotated at t=20" 10 (Session_churn.replaced engine);
  check_int "population constant" 10 (Membership.n_present membership);
  Scheduler.run_until sched (time 100);
  (* Cohorts keep rotating every 20 ticks: t=20,40,60,80,100. *)
  check_int "five rotations" 50 (Session_churn.replaced engine);
  check_bool "measured rate near 1/20" true
    (Float.abs (Session_churn.measured_rate engine ~n:10 -. 0.05) < 0.01)

(* ------------------------------------------------------------------ *)
(* Analysis *)

let record ~p ~join ?active ?leave () =
  {
    Membership.pid = pid p;
    join_time = time join;
    active_time = Option.map time active;
    leave_time = Option.map time leave;
    crashed = false;
  }

let test_analysis_counts () =
  let a =
    Analysis.of_records
      [
        record ~p:0 ~join:0 ~active:0 ();
        record ~p:1 ~join:0 ~active:0 ~leave:10 ();
        record ~p:2 ~join:5 ~active:8 ();
        record ~p:3 ~join:5 () (* never activated *);
      ]
  in
  check_int "A(0)" 2 (Analysis.active_at a (time 0));
  check_int "A(8)" 3 (Analysis.active_at a (time 8));
  check_int "A(10): leaver gone at its leave tick" 2 (Analysis.active_at a (time 10));
  check_int "present(6)" 4 (Analysis.present_at a (time 6));
  check_int "A(0,9)" 2 (Analysis.active_through a ~from_:(time 0) ~until:(time 9));
  check_int "A(0,10): leave at 10 excludes p1" 1
    (Analysis.active_through a ~from_:(time 0) ~until:(time 10))

let test_analysis_min_window () =
  let a =
    Analysis.of_records
      [
        record ~p:0 ~join:0 ~active:0 ();
        record ~p:1 ~join:0 ~active:0 ~leave:5 ();
        record ~p:2 ~join:4 ~active:6 ();
      ]
  in
  (* Window 3: at tau=2..4, p1 is within 3 ticks of leaving and p2 not
     yet active -> only p0 covers. *)
  let tau, min = Analysis.min_active_window a ~window:3 ~from_:(time 0) ~until:(time 10) in
  check_int "min count" 1 min;
  check_bool "witness in the gap" true (Time.to_int tau >= 2 && Time.to_int tau <= 4);
  (* Consistency with the direct computation at the witness point. *)
  check_int "cross-check" min
    (Analysis.active_through a ~from_:tau ~until:(Time.add tau 3))

let test_analysis_series () =
  let a = Analysis.of_records [ record ~p:0 ~join:0 ~active:2 ~leave:4 () ] in
  Alcotest.(check (list (pair int int)))
    "series"
    [ (0, 0); (1, 0); (2, 1); (3, 1); (4, 0) ]
    (List.map
       (fun (t, c) -> (Time.to_int t, c))
       (Analysis.series_active a ~from_:(time 0) ~until:(time 4)))

(* Property: the churn engine keeps |present| = n at all times, and the
   analysis agrees with live counts. *)
let prop_constant_size =
  QCheck2.Test.make ~name:"churn keeps |present| = n at every tick" ~count:50
    QCheck2.Gen.(triple (int_range 5 40) (int_range 0 30) (int_range 0 10_000))
    (fun (n, rate_pct, seed) ->
      let rate = float_of_int rate_pct /. 100.0 in
      let w, churn = mini_world ~seed ~n ~rate () in
      Churn.start churn ~until:(time 60);
      let ok = ref true in
      let rec probe t =
        if t <= 60 then begin
          ignore
            (Scheduler.schedule_at w.sched (time t) (fun () ->
                 if Membership.n_present w.membership <> n then ok := false));
          probe (t + 1)
        end
      in
      probe 1;
      Scheduler.run w.sched ();
      !ok)

(* Property: Lemma 2's bound |A(tau, tau+3delta)| >= n(1-3*delta*c) > 0
   under the adversarial Active_first policy, in the regime the lemma's
   proof covers: windows starting from a fully-active configuration
   (instant activation) and c < 1/(3 delta). We pick c = 1/n with
   n > 3*delta so that n*c is integral (no fractional-carry slack). *)
let prop_lemma2_bound =
  QCheck2.Test.make ~name:"Lemma 2 bound |A(tau,tau+3d)| >= n(1-3dc)" ~count:40
    QCheck2.Gen.(triple (int_range 1 5) (int_range 2 25) (int_range 0 10_000))
    (fun (delta, extra, seed) ->
      let n = (3 * delta) + extra in
      let c = 1.0 /. float_of_int n in
      let w, churn =
        mini_world ~seed ~n ~rate:c ~policy:Churn.Active_first ~activation_delay:0 ()
      in
      Churn.start churn ~until:(time 200);
      Scheduler.run w.sched ();
      let analysis = Analysis.of_records (Membership.records w.membership) in
      let _, min_count =
        Analysis.min_active_window analysis ~window:(3 * delta) ~from_:(time 0)
          ~until:(time (200 - (3 * delta) - 1))
      in
      let bound = float_of_int n *. (1.0 -. (3.0 *. float_of_int delta *. c)) in
      float_of_int min_count >= bound -. 1e-6 && min_count > 0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dds_churn"
    [
      ( "membership",
        [
          Alcotest.test_case "lifecycle" `Quick test_membership_lifecycle;
          Alcotest.test_case "no reentry" `Quick test_membership_rejects_reentry;
          Alcotest.test_case "invalid transitions" `Quick test_membership_invalid_transitions;
          Alcotest.test_case "listings" `Quick test_membership_listings;
        ] );
      ( "churn",
        [
          Alcotest.test_case "constant size" `Quick test_churn_constant_size;
          Alcotest.test_case "fractional accumulation" `Quick
            test_churn_fractional_accumulation;
          Alcotest.test_case "zero rate" `Quick test_churn_zero_rate;
          Alcotest.test_case "protection" `Quick test_churn_protection;
          Alcotest.test_case "stop" `Quick test_churn_stop;
          Alcotest.test_case "oldest first" `Quick test_churn_oldest_first;
          Alcotest.test_case "active first" `Quick test_churn_active_first;
          Alcotest.test_case "policy parsing" `Quick test_policy_parsing;
          Alcotest.test_case "rate profiles" `Quick test_rate_profiles;
          Alcotest.test_case "bursty refresh count" `Quick test_bursty_engine_refresh_count;
          Alcotest.test_case "invalid args" `Quick test_churn_invalid_args;
        ] );
      ( "session-churn",
        [
          Alcotest.test_case "sampling" `Quick test_session_sampling;
          Alcotest.test_case "geometric mean" `Quick test_session_geometric_mean;
          Alcotest.test_case "engine rotation" `Quick test_session_engine_rotation;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "counts" `Quick test_analysis_counts;
          Alcotest.test_case "min window" `Quick test_analysis_min_window;
          Alcotest.test_case "series" `Quick test_analysis_series;
        ] );
      qsuite "churn-props" [ prop_constant_size; prop_lemma2_bound ];
    ]
