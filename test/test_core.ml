(* Tests for the register protocols (synchronous, eventually
   synchronous, ABD baseline) and the deployment wiring, including the
   paper's constructed executions (Figure 3, the new/old inversion). *)

open Dds_sim
open Dds_net
open Dds_spec
open Dds_core
open Dds_workload

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let time = Time.of_int
let pid = Pid.of_int

module Sync_d = Deployment.Make (Sync_register)
module Es_d = Deployment.Make (Es_register)
module Abd_d = Deployment.Make (Abd_register)

let sync_cfg ?(seed = 7) ?(n = 5) ?(delta = 3) ?(churn = 0.0) () =
  Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta) ~churn_rate:churn

let sync_params ?(delta = 3) () = Sync_register.default_params ~delta

let value_of (o : History.op) =
  match o.History.kind with
  | History.Read v | History.Join v -> v
  | History.Write v -> Some v

let data_of o = Option.map (fun v -> v.Value.data) (value_of o)

(* ------------------------------------------------------------------ *)
(* Synchronous protocol *)

let test_sync_founders_active () =
  let d = Sync_d.create (sync_cfg ()) (sync_params ()) in
  check_int "n active at t=0" 5 (Dds_churn.Membership.n_active (Sync_d.membership d));
  check_bool "writer designated" true (Sync_d.writer d <> None);
  (* A founding member holds the initial value. *)
  match Sync_d.node d (pid 1) with
  | Some node ->
    check_bool "holds initial" true
      (match Sync_register.snapshot node with
      | Some v -> Value.equal v (Value.initial 0)
      | None -> false)
  | None -> Alcotest.fail "founder missing"

let test_sync_read_is_fast () =
  let d = Sync_d.create (sync_cfg ()) (sync_params ()) in
  let sched = Sync_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 5) (fun () -> Sync_d.read d (pid 1)));
  Sync_d.run_until d (time 20);
  match History.completed_reads (Sync_d.history d) with
  | [ r ] ->
    check Alcotest.(option int) "zero latency" (Some 5)
      (Option.map Time.to_int r.History.responded);
    check Alcotest.(option int) "initial value" (Some 0) (data_of r)
  | _ -> Alcotest.fail "expected one read"

let test_sync_write_latency_and_visibility () =
  let delta = 3 in
  let d = Sync_d.create (sync_cfg ~delta ()) (sync_params ~delta ()) in
  let sched = Sync_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> Sync_d.write d (pid 0)));
  (* Strictly after the write completes, every member must return it. *)
  ignore (Scheduler.schedule_at sched (time 14) (fun () -> Sync_d.read d (pid 4)));
  Sync_d.run_until d (time 40);
  let h = Sync_d.history d in
  (match History.completed_writes h with
  | [ w ] ->
    check Alcotest.(option int) "write takes delta" (Some (10 + delta))
      (Option.map Time.to_int w.History.responded)
  | _ -> Alcotest.fail "expected one write");
  (match History.completed_reads h with
  | [ r ] -> check Alcotest.(option int) "fresh value" (Some 1) (data_of r)
  | _ -> Alcotest.fail "expected one read");
  check_bool "regular" true (Regularity.is_ok (Sync_d.regularity d))

let test_sync_concurrent_read_legal () =
  let d = Sync_d.create (sync_cfg ()) (sync_params ()) in
  let sched = Sync_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> Sync_d.write d (pid 0)));
  (* During the write window some member may still return the old value. *)
  ignore (Scheduler.schedule_at sched (time 11) (fun () -> Sync_d.read d (pid 3)));
  Sync_d.run_until d (time 40);
  check_bool "still regular" true (Regularity.is_ok (Sync_d.regularity d))

let test_sync_join_adopts_latest () =
  let delta = 3 in
  let d = Sync_d.create (sync_cfg ~delta ()) (sync_params ~delta ()) in
  let sched = Sync_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 5) (fun () -> Sync_d.write d (pid 0)));
  (* Spawn well after the write completed: the join must adopt it. *)
  ignore (Scheduler.schedule_at sched (time 20) (fun () -> ignore (Sync_d.spawn d)));
  Sync_d.run_until d (time 60);
  match History.completed_joins (Sync_d.history d) with
  | [ j ] ->
    check Alcotest.(option int) "join adopted latest" (Some 1) (data_of j);
    let latency = Time.diff (Option.get j.History.responded) j.History.invoked in
    check_bool "join within 3 delta" true (latency <= 3 * delta);
    check_bool "regular incl. join" true (Regularity.is_ok (Sync_d.regularity d))
  | _ -> Alcotest.fail "expected one join"

let test_sync_join_fast_path_on_concurrent_write () =
  (* A write broadcast lands during the joiner's initial wait: the
     joiner skips the inquiry round entirely and activates at delta. *)
  let delta = 5 in
  let cfg =
    { (sync_cfg ~delta ()) with Deployment.delay = Delay.adversarial (fun _ -> 1) }
  in
  let d = Sync_d.create cfg (sync_params ~delta ()) in
  let sched = Sync_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> ignore (Sync_d.spawn d)));
  ignore (Scheduler.schedule_at sched (time 11) (fun () -> Sync_d.write d (pid 0)));
  Sync_d.run_until d (time 40);
  match History.completed_joins (Sync_d.history d) with
  | [ j ] ->
    check Alcotest.(option int) "activated at exactly delta" (Some (10 + delta))
      (Option.map Time.to_int j.History.responded);
    check Alcotest.(option int) "adopted the in-flight write" (Some 1) (data_of j)
  | _ -> Alcotest.fail "expected one join"

let test_sync_joiner_answers_postponed_inquiries () =
  (* Two concurrent joiners: the second's inquiry reaches the first
     while the first is still joining; the first must reply after it
     activates, and both must end with the correct value. *)
  let delta = 3 in
  let d = Sync_d.create (sync_cfg ~delta ~n:3 ()) (sync_params ~delta ()) in
  let sched = Sync_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> ignore (Sync_d.spawn d)));
  ignore (Scheduler.schedule_at sched (time 11) (fun () -> ignore (Sync_d.spawn d)));
  Sync_d.run_until d (time 60);
  let joins = History.completed_joins (Sync_d.history d) in
  check_int "both joins completed" 2 (List.length joins);
  List.iter
    (fun j -> check Alcotest.(option int) "correct value" (Some 0) (data_of j))
    joins

let test_sync_churn_below_threshold_safe () =
  (* c = 1/(6 delta), half the bound; adversarial Active_first leaves;
     steady reads and writes for 400 ticks. Expect: no safety
     violation, no join retries. *)
  let delta = 3 and n = 20 in
  let c = 1.0 /. (6.0 *. float_of_int delta) in
  let cfg =
    {
      (sync_cfg ~seed:11 ~n ~delta ~churn:c ()) with
      Deployment.churn_policy = Dds_churn.Churn.Active_first;
    }
  in
  let d = Sync_d.create cfg (sync_params ~delta ()) in
  let module G = Generator.Make (Sync_d) in
  Sync_d.start_churn d ~until:(time 400);
  G.run d { Generator.read_rate = 1.0; write_every = 15; start = time 1; until = time 400 };
  Sync_d.run_until d (time 450);
  let report = Sync_d.regularity d in
  check_bool "no violations" true (Regularity.is_ok report);
  check_bool "plenty of reads checked" true (report.Regularity.checked_reads > 200);
  check_bool "joins happened and were checked" true (report.Regularity.checked_joins > 20)

let test_sync_deployment_determinism () =
  let run () =
    let d = Sync_d.create (sync_cfg ~seed:99 ~churn:0.05 ()) (sync_params ()) in
    let module G = Generator.Make (Sync_d) in
    Sync_d.start_churn d ~until:(time 200);
    G.run d (Generator.default ~until:(time 200));
    Sync_d.run_until d (time 220);
    List.map
      (fun (o : History.op) ->
        (Pid.to_int o.History.pid, Time.to_int o.History.invoked, data_of o))
      (History.ops (Sync_d.history d))
  in
  check_bool "same seed, same history" true (run () = run ())

let test_sync_join_retries_when_system_empties () =
  (* All founders leave before a joiner's inquiry can be answered: the
     (hardened) joiner re-inquires forever instead of activating. *)
  let d = Sync_d.create (sync_cfg ~n:3 ()) (sync_params ()) in
  let sched = Sync_d.scheduler d in
  ignore
    (Scheduler.schedule_at sched (time 5) (fun () ->
         List.iter (fun i -> Sync_d.retire d (pid i)) [ 0; 1; 2 ]));
  let joiner = ref None in
  ignore (Scheduler.schedule_at sched (time 6) (fun () -> joiner := Some (Sync_d.spawn d)));
  Sync_d.run_until d (time 200);
  let j = Option.get !joiner in
  (match Sync_d.node d j with
  | Some node ->
    check_bool "never active" false (Sync_register.is_active node);
    check_bool "kept retrying" true (Sync_register.join_retries node > 3)
  | None -> Alcotest.fail "joiner disappeared");
  check_int "retry metric counted" (Sync_register.join_retries (Option.get (Sync_d.node d j)))
    (Dds_sim.Metrics.get (Sync_d.metrics d) "sync.join.retry");
  check_int "join pending forever" 1 (List.length (History.pending (Sync_d.history d)))

let test_sync_adopt_bottom_violates () =
  (* Same situation under the paper-literal policy: the joiner
     activates holding bottom and its read is a detectable violation. *)
  let params = { (sync_params ()) with Sync_register.on_empty_inquiry = Sync_register.Adopt_bottom } in
  let d = Sync_d.create (sync_cfg ~n:3 ()) params in
  let sched = Sync_d.scheduler d in
  ignore
    (Scheduler.schedule_at sched (time 5) (fun () ->
         List.iter (fun i -> Sync_d.retire d (pid i)) [ 0; 1; 2 ]));
  let joiner = ref None in
  ignore (Scheduler.schedule_at sched (time 6) (fun () -> joiner := Some (Sync_d.spawn d)));
  ignore
    (Scheduler.schedule_at sched (time 100) (fun () ->
         match !joiner with Some j -> Sync_d.read d j | None -> ()));
  Sync_d.run_until d (time 200);
  (match Sync_d.node d (Option.get !joiner) with
  | Some node ->
    check_bool "active with bottom" true (Sync_register.is_active node);
    check_bool "snapshot is bottom" true
      (match Sync_register.snapshot node with Some v -> Value.is_bottom v | None -> false)
  | None -> Alcotest.fail "joiner disappeared");
  let report = Sync_d.regularity d in
  check_bool "bottom read + join flagged" true
    (List.length report.Regularity.violations >= 1)

let test_sync_over_flooding_broadcast () =
  (* The protocol over the *implemented* broadcast: per-hop bound 2,
     depth 2, protocol delta = 4 — still regular under churn. *)
  let cfg =
    {
      (Deployment.default_config ~seed:61 ~n:12 ~delay:(Delay.synchronous ~delta:2)
         ~churn_rate:0.03)
      with
      Deployment.broadcast_mode = Network.Flooding { relay_depth = 2 };
    }
  in
  let d = Sync_d.create cfg (sync_params ~delta:4 ()) in
  let module G = Generator.Make (Sync_d) in
  Sync_d.start_churn d ~until:(time 300);
  G.run d { Generator.read_rate = 0.5; write_every = 20; start = time 1; until = time 300 };
  Sync_d.run_until d (time 340);
  check_bool "regular over flooding" true (Regularity.is_ok (Sync_d.regularity d));
  check_bool "relays occurred" true
    (Dds_sim.Metrics.get (Sync_d.metrics d) "net.relayed" > 0)

let test_es_whitebox_read_state () =
  let cfg =
    Deployment.default_config ~seed:13 ~n:10 ~delay:(Delay.synchronous ~delta:3)
      ~churn_rate:0.0
  in
  let d = Es_d.create cfg (Es_register.default_params ~n:10) in
  let sched = Es_d.scheduler d in
  let node () = Option.get (Es_d.node d (pid 2)) in
  ignore
    (Scheduler.schedule_at sched (time 5) (fun () ->
         Es_d.read d (pid 2);
         check_bool "reading flag set" true (Es_register.is_reading (node ()));
         check_int "read_sn bumped" 1 (Es_register.read_sn (node ()));
         check_bool "busy" true (Es_register.busy (node ()))));
  Es_d.run_until d (time 60);
  check_bool "reading flag cleared" false (Es_register.is_reading (node ()));
  check_bool "gathered at least a majority" true (Es_register.replies_gathered (node ()) >= 6);
  ignore
    (Scheduler.schedule_at sched (time 70) (fun () -> Es_d.read d (pid 2)));
  Es_d.run_until d (time 130);
  check_int "read_sn monotone" 2 (Es_register.read_sn (node ()))

(* ------------------------------------------------------------------ *)
(* Figure 3 and the inversion scenarios *)

let test_fig3a_violation () =
  let o = Scenario.fig3 ~join_wait:false in
  check Alcotest.(option int) "joiner adopted stale 0" (Some 0)
    (Option.map (fun v -> v.Value.data) o.Scenario.join_value);
  check Alcotest.(option int) "read returned stale 0" (Some 0)
    (Option.map (fun v -> v.Value.data) o.Scenario.read_value);
  check_int "exactly one violation" 1
    (List.length o.Scenario.report.Regularity.violations);
  (* The violating operation is the read, not the join: adopting the old
     value was legal (the write was concurrent with the join). *)
  match o.Scenario.report.Regularity.violations with
  | [ v ] ->
    check_bool "violation is a read" true
      (match v.Regularity.op.History.kind with History.Read _ -> true | _ -> false)
  | _ -> ()

let test_fig3b_correct () =
  let o = Scenario.fig3 ~join_wait:true in
  check Alcotest.(option int) "joiner adopted fresh 1" (Some 1)
    (Option.map (fun v -> v.Value.data) o.Scenario.join_value);
  check Alcotest.(option int) "read returned 1" (Some 1)
    (Option.map (fun v -> v.Value.data) o.Scenario.read_value);
  check_bool "no violations" true (Regularity.is_ok o.Scenario.report)

let test_inversion_scenario () =
  let o = Scenario.inversion () in
  check Alcotest.(option int) "fast read saw new value" (Some 2)
    (Option.map (fun v -> v.Value.data) o.Scenario.fast_read);
  check Alcotest.(option int) "slow read saw old value" (Some 1)
    (Option.map (fun v -> v.Value.data) o.Scenario.slow_read);
  check_int "one inversion" 1 (List.length o.Scenario.inversions);
  check_bool "yet regular" true (Regularity.is_ok o.Scenario.report)

let test_es_inversion_and_read_repair () =
  let plain = Scenario.es_inversion ~read_repair:false () in
  check Alcotest.(option int) "informed reader saw new" (Some 1)
    (Option.map (fun v -> v.Value.data) plain.Scenario.fast_read);
  check Alcotest.(option int) "cut-off reader saw old" (Some 0)
    (Option.map (fun v -> v.Value.data) plain.Scenario.slow_read);
  check_int "quorum protocol inverts too" 1 (List.length plain.Scenario.inversions);
  check_bool "yet regular" true (Regularity.is_ok plain.Scenario.report);
  let repaired = Scenario.es_inversion ~read_repair:true () in
  check_int "read-repair removes the inversion" 0
    (List.length repaired.Scenario.inversions);
  check Alcotest.(option int) "second reader now sees new" (Some 1)
    (Option.map (fun v -> v.Value.data) repaired.Scenario.slow_read)

let test_async_staleness_grows () =
  let short = Scenario.async_staleness ~horizon:500 in
  let long = Scenario.async_staleness ~horizon:2000 in
  check_bool "stale at all" true (short.Scenario.staleness.Staleness.max_staleness > 3);
  check_bool "staleness grows with horizon" true
    (long.Scenario.staleness.Staleness.max_staleness
    >= 2 * short.Scenario.staleness.Staleness.max_staleness);
  check_bool "writes kept completing" true
    (long.Scenario.completed_writes > short.Scenario.completed_writes)

(* ------------------------------------------------------------------ *)
(* Eventually synchronous protocol *)

let es_cfg ?(seed = 13) ?(n = 10) ?(churn = 0.0) ?(delay = Delay.synchronous ~delta:3) () =
  Deployment.default_config ~seed ~n ~delay ~churn_rate:churn

let test_es_majority () =
  check_int "n=10 -> 6" 6 (Es_register.majority (Es_register.default_params ~n:10));
  check_int "n=9 -> 5" 5 (Es_register.majority (Es_register.default_params ~n:9));
  check_int "n=2 -> 2" 2 (Es_register.majority (Es_register.default_params ~n:2));
  check_int "override wins" 4
    (Es_register.majority
       { (Es_register.default_params ~n:10) with Es_register.quorum_override = Some 4 })

let test_es_write_read_roundtrip () =
  let d = Es_d.create (es_cfg ()) (Es_register.default_params ~n:10) in
  let sched = Es_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> Es_d.write d (pid 0)));
  ignore (Scheduler.schedule_at sched (time 50) (fun () -> Es_d.read d (pid 3)));
  Es_d.run_until d (time 100);
  let h = Es_d.history d in
  check_int "write completed" 1 (List.length (History.completed_writes h));
  (match History.completed_reads h with
  | [ r ] -> check Alcotest.(option int) "read fresh" (Some 1) (data_of r)
  | _ -> Alcotest.fail "expected one read");
  check_bool "regular" true (Regularity.is_ok (Es_d.regularity d))

let test_es_read_needs_majority_replies () =
  let d = Es_d.create (es_cfg ()) (Es_register.default_params ~n:10) in
  let sched = Es_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 5) (fun () -> Es_d.read d (pid 2)));
  Es_d.run_until d (time 50);
  match History.completed_reads (Es_d.history d) with
  | [ r ] ->
    let latency = Time.diff (Option.get r.History.responded) r.History.invoked in
    (* Broadcast + reply, each <= 3 under the synchronous test delay. *)
    check_bool "read took a round trip" true (latency >= 2 && latency <= 6)
  | _ -> Alcotest.fail "expected one read"

let test_es_join_adopts_latest () =
  let d = Es_d.create (es_cfg ()) (Es_register.default_params ~n:10) in
  let sched = Es_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 5) (fun () -> Es_d.write d (pid 0)));
  ignore (Scheduler.schedule_at sched (time 40) (fun () -> ignore (Es_d.spawn d)));
  Es_d.run_until d (time 120);
  match History.completed_joins (Es_d.history d) with
  | [ j ] ->
    check Alcotest.(option int) "join adopted latest" (Some 1) (data_of j);
    check_bool "regular incl. join" true (Regularity.is_ok (Es_d.regularity d))
  | _ -> Alcotest.fail "expected one join"

let test_es_concurrent_joins_unblock_each_other () =
  (* Several simultaneous joiners: DL_PREV bookkeeping must let all of
     them finish (Lemma 5's mechanism). *)
  let d = Es_d.create (es_cfg ~n:6 ()) (Es_register.default_params ~n:6) in
  let sched = Es_d.scheduler d in
  ignore
    (Scheduler.schedule_at sched (time 10) (fun () ->
         ignore (Es_d.spawn d);
         ignore (Es_d.spawn d);
         ignore (Es_d.spawn d)));
  Es_d.run_until d (time 200);
  check_int "all three joins completed" 3
    (List.length (History.completed_joins (Es_d.history d)))

let test_es_write_embeds_read () =
  (* Writes from different nodes must still produce strictly increasing
     sequence numbers thanks to the embedded read phase. *)
  let d = Es_d.create (es_cfg ()) (Es_register.default_params ~n:10) in
  let sched = Es_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> Es_d.write_value d (pid 0) 101));
  ignore (Scheduler.schedule_at sched (time 60) (fun () -> Es_d.write_value d (pid 5) 102));
  ignore (Scheduler.schedule_at sched (time 120) (fun () -> Es_d.read d (pid 8)));
  Es_d.run_until d (time 200);
  let h = Es_d.history d in
  let writes = History.completed_writes h in
  check_int "two writes" 2 (List.length writes);
  let sns =
    List.filter_map
      (fun (o : History.op) ->
        match o.History.kind with History.Write v -> Some v.Value.sn | _ -> None)
      writes
  in
  Alcotest.(check (list int)) "sns strictly increase" [ 1; 2 ] sns;
  (match History.completed_reads h with
  | [ r ] -> check Alcotest.(option int) "read sees second write" (Some 102) (data_of r)
  | _ -> Alcotest.fail "expected one read");
  check_bool "regular" true (Regularity.is_ok (Es_d.regularity d))

let test_es_pre_gst_still_safe_and_live () =
  (* Wild delays before GST at t=300: operations take long but finish,
     and safety never wavers. *)
  let delay = Delay.eventually_synchronous ~gst:(time 300) ~delta:3 ~wild:40 in
  let d = Es_d.create (es_cfg ~seed:21 ~delay ()) (Es_register.default_params ~n:10) in
  let module G = Generator.Make (Es_d) in
  G.run d { Generator.read_rate = 0.2; write_every = 60; start = time 1; until = time 600 };
  Es_d.run_until d (time 800);
  let report = Es_d.regularity d in
  check_bool "regular throughout" true (Regularity.is_ok report);
  check_bool "reads completed" true (report.Regularity.checked_reads > 50);
  check_int "nothing pending at horizon" 0
    (List.length (History.pending (Es_d.history d)))

let test_es_churn_with_majority_safe () =
  (* Churn well within the assumption: 10 nodes, c = 0.01 (one refresh
     every 10 ticks), synchronous-speed delays. *)
  let d =
    Es_d.create
      { (es_cfg ~seed:31 ~churn:0.01 ()) with Deployment.protect_writer = true }
      (Es_register.default_params ~n:10)
  in
  let module G = Generator.Make (Es_d) in
  Es_d.start_churn d ~until:(time 500);
  G.run d { Generator.read_rate = 0.5; write_every = 40; start = time 1; until = time 500 };
  Es_d.run_until d (time 700);
  let report = Es_d.regularity d in
  check_bool "regular under churn" true (Regularity.is_ok report);
  check_bool "joins checked" true (report.Regularity.checked_joins >= 3)

let test_es_blocks_without_active_majority () =
  (* Retire actives until fewer than a majority remain: a read must
     block forever (liveness loss, not corruption). *)
  let d = Es_d.create (es_cfg ~n:5 ()) (Es_register.default_params ~n:5) in
  let sched = Es_d.scheduler d in
  ignore
    (Scheduler.schedule_at sched (time 5) (fun () ->
         Es_d.retire d (pid 1);
         Es_d.retire d (pid 2);
         Es_d.retire d (pid 3)));
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> Es_d.read d (pid 4)));
  Es_d.run_until d (time 300);
  let h = Es_d.history d in
  check_int "read still pending" 1 (List.length (History.pending h));
  check_int "no read completed" 0 (List.length (History.completed_reads h))

(* ------------------------------------------------------------------ *)
(* ABD baseline *)

let abd_cfg ?(seed = 41) ?(n = 7) ?(churn = 0.0) () =
  Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta:3) ~churn_rate:churn

let test_abd_write_read () =
  let d = Abd_d.create (abd_cfg ()) (Abd_register.default_params ~group_size:7) in
  let sched = Abd_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> Abd_d.write d (pid 0)));
  ignore (Scheduler.schedule_at sched (time 40) (fun () -> Abd_d.read d (pid 3)));
  Abd_d.run_until d (time 100);
  (match History.completed_reads (Abd_d.history d) with
  | [ r ] -> check Alcotest.(option int) "fresh read" (Some 1) (data_of r)
  | _ -> Alcotest.fail "expected one read");
  check_bool "regular" true (Regularity.is_ok (Abd_d.regularity d))

let test_abd_atomic_with_write_back () =
  let d = Abd_d.create (abd_cfg ~seed:43 ()) (Abd_register.default_params ~group_size:7) in
  let module G = Generator.Make (Abd_d) in
  G.run d { Generator.read_rate = 0.5; write_every = 25; start = time 1; until = time 400 };
  Abd_d.run_until d (time 500);
  check_bool "regular" true (Regularity.is_ok (Abd_d.regularity d));
  check_int "no inversions (atomic)" 0
    (List.length (Atomicity.inversions (Abd_d.history d)))

let test_abd_joiner_reads_through_group () =
  let d = Abd_d.create (abd_cfg ()) (Abd_register.default_params ~group_size:7) in
  let sched = Abd_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 5) (fun () -> Abd_d.write d (pid 0)));
  ignore (Scheduler.schedule_at sched (time 30) (fun () -> ignore (Abd_d.spawn d)));
  Abd_d.run_until d (time 100);
  match History.completed_joins (Abd_d.history d) with
  | [ j ] -> check Alcotest.(option int) "client join got value" (Some 1) (data_of j)
  | _ -> Alcotest.fail "expected one join"

let test_abd_blocks_once_majority_left () =
  (* Retire 4 of 7 founders: every subsequent operation blocks. *)
  let d = Abd_d.create (abd_cfg ()) (Abd_register.default_params ~group_size:7) in
  let sched = Abd_d.scheduler d in
  ignore
    (Scheduler.schedule_at sched (time 5) (fun () ->
         List.iter (fun i -> Abd_d.retire d (pid i)) [ 1; 2; 3; 4 ]));
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> Abd_d.read d (pid 5)));
  ignore (Scheduler.schedule_at sched (time 15) (fun () -> Abd_d.write d (pid 0)));
  Abd_d.run_until d (time 400);
  let h = Abd_d.history d in
  check_int "both ops pending forever" 2 (List.length (History.pending h));
  check_int "none completed" 0
    (List.length (History.completed_reads h) + List.length (History.completed_writes h))

let test_abd_write_back_ablation () =
  (* Without the read's write-back phase ABD degrades from atomic to
     regular: while a write is still collecting acknowledgements, a
     fast replica answers one reader with the new value and a slow
     quorum answers a later reader with the old one — a new/old
     inversion. Write-back propagates the read value to a majority
     first, restoring atomicity. The delay schedule (n = 5, writer p0,
     fast replica p1, isolated reader p4):
     - p0's broadcasts crawl to everyone but p0/p1;
     - anything p0 or p1 sends p4 crawls;
     - p1's point-to-point messages to p0 crawl (stalling the ack
       quorum, so the write stays in flight across both reads). *)
  let slow = 100 in
  let delay (dec : Delay.decision) =
    let src = Pid.to_int dec.Delay.src and dst = Pid.to_int dec.Delay.dst in
    if src = 0 && dec.Delay.kind = Delay.Broadcast && dst <> 0 && dst <> 1 then slow
    else if src = 1 && dst = 0 then slow
    else if (src = 0 || src = 1) && dst = 4 then slow
    else 1
  in
  let run ~write_back =
    let cfg =
      Deployment.default_config ~seed:67 ~n:5 ~delay:(Delay.adversarial delay)
        ~churn_rate:0.0
    in
    let d =
      Abd_d.create cfg { Abd_register.group_size = 5; read_write_back = write_back }
    in
    let sched = Abd_d.scheduler d in
    ignore (Scheduler.schedule_at sched (time 10) (fun () -> Abd_d.write d (pid 0)));
    ignore (Scheduler.schedule_at sched (time 120) (fun () -> Abd_d.read d (pid 1)));
    ignore (Scheduler.schedule_at sched (time 130) (fun () -> Abd_d.read d (pid 4)));
    Abd_d.run_until d (time 500);
    let h = Abd_d.history d in
    (Regularity.is_ok (Abd_d.regularity d), List.length (Atomicity.inversions h))
  in
  let regular_no_wb, inversions_no_wb = run ~write_back:false in
  check_bool "still regular without write-back" true regular_no_wb;
  check_int "inversion without write-back" 1 inversions_no_wb;
  let regular_wb, inversions_wb = run ~write_back:true in
  check_bool "regular with write-back" true regular_wb;
  check_int "write-back restores atomicity" 0 inversions_wb

let test_es_joiner_defers_reply_to_reader () =
  (* Figure 5 lines 08-11: a joining process postpones its reply to a
     READ and delivers it upon activation. Observable as the reader
     gathering one more reply than the active population: n founders
     (all reply, including itself) + the joiner. *)
  let cfg =
    Deployment.default_config ~seed:71 ~n:4 ~delay:(Delay.adversarial (fun _ -> 2))
      ~churn_rate:0.0
  in
  let d = Es_d.create cfg (Es_register.default_params ~n:4) in
  let sched = Es_d.scheduler d in
  (* Joiner enters first; its join (two message rounds at delay 2)
     completes at ~t5. The read starts at t2: its READ broadcast
     reaches the still-joining process, which must defer. *)
  ignore (Scheduler.schedule_at sched (time 1) (fun () -> ignore (Es_d.spawn d)));
  ignore (Scheduler.schedule_at sched (time 2) (fun () -> Es_d.read d (pid 3)));
  Es_d.run_until d (time 100);
  let h = Es_d.history d in
  check_int "read completed" 1 (List.length (History.completed_reads h));
  check_int "join completed" 1 (List.length (History.completed_joins h));
  match Es_d.node d (pid 3) with
  | Some node ->
    check_int "reader eventually heard founders + joiner" 5
      (Es_register.replies_gathered node)
  | None -> Alcotest.fail "reader missing"

let test_es_reader_dl_prev_to_joiner () =
  (* Figure 4 line 14: an active reading process sends DL_PREV along
     with its reply, so the joiner will send it a fresh value upon
     activating — even though the joiner never saw the READ broadcast
     (it entered afterwards). *)
  let cfg =
    Deployment.default_config ~seed:73 ~n:4 ~delay:(Delay.adversarial (fun _ -> 3))
      ~churn_rate:0.0
  in
  let d = Es_d.create cfg (Es_register.default_params ~n:4) in
  let sched = Es_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 1) (fun () -> Es_d.read d (pid 3)));
  (* The joiner enters after the READ broadcast left: only the DL_PREV
     channel can route its reply back to the reader. *)
  ignore (Scheduler.schedule_at sched (time 2) (fun () -> ignore (Es_d.spawn d)));
  Es_d.run_until d (time 100);
  match Es_d.node d (pid 3) with
  | Some node ->
    check_int "reader heard the joiner via DL_PREV" 5
      (Es_register.replies_gathered node)
  | None -> Alcotest.fail "reader missing"

(* ------------------------------------------------------------------ *)
(* Deployment mechanics *)

let test_deployment_abort_on_leave () =
  (* An ES read in flight when the reader leaves must be aborted, not
     counted against safety or liveness. *)
  let d = Es_d.create (es_cfg ()) (Es_register.default_params ~n:10) in
  let sched = Es_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 5) (fun () -> Es_d.read d (pid 2)));
  ignore (Scheduler.schedule_at sched (time 6) (fun () -> Es_d.retire d (pid 2)));
  Es_d.run_until d (time 100);
  let h = Es_d.history d in
  check_int "aborted" 1 (List.length (History.aborted h));
  check_int "not pending" 0 (List.length (History.pending h));
  check_bool "still regular" true (Regularity.is_ok (Es_d.regularity d))

let test_deployment_crash_cancels_timers () =
  (* A crash-stop mid-write: the sync writer's completion timer is
     pending in the scheduler when the process dies. Scheduler.cancel
     (via the protocol's leave) must keep it from firing — the write
     ends aborted, never responded — and the crash is attributed in
     the membership record and churn counters. *)
  let d = Sync_d.create (sync_cfg ~n:5 ()) (sync_params ()) in
  let sched = Sync_d.scheduler d in
  let w = Option.get (Sync_d.writer d) in
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> Sync_d.write d w));
  (* delta = 3: the completion timer sits at t = 13 when the crash
     lands at t = 11. *)
  ignore (Scheduler.schedule_at sched (time 11) (fun () -> Sync_d.crash d w));
  Sync_d.run_until d (time 40);
  let h = Sync_d.history d in
  check_int "no completed writes" 0 (List.length (History.completed_writes h));
  check_int "write aborted" 1 (List.length (History.aborted h));
  check_int "not pending" 0 (List.length (History.pending h));
  check_int "crash counted" 1 (Metrics.get (Sync_d.metrics d) "churn.crash");
  check_bool "writer designation cleared" true (Sync_d.writer d = None);
  (* The cancelled timer must not resurrect the write after the fact:
     drain everything and re-check. *)
  Sync_d.run_to_quiescence d ();
  check_int "still no completed writes" 0 (List.length (History.completed_writes h));
  check_bool "still regular" true (Regularity.is_ok (Sync_d.regularity d))

let test_deployment_busy_and_idle_listing () =
  let d = Es_d.create (es_cfg ~n:4 ()) (Es_register.default_params ~n:4) in
  let sched = Es_d.scheduler d in
  ignore
    (Scheduler.schedule_at sched (time 5) (fun () ->
         Es_d.read d (pid 1);
         check_int "busy node excluded" 3 (List.length (Es_d.idle_active d));
         check_bool "double-issue rejected" true
           (try
              Es_d.read d (pid 1);
              false
            with Invalid_argument _ -> true)));
  Es_d.run_until d (time 100);
  check_int "idle again" 4 (List.length (Es_d.idle_active d))

let test_deployment_retire_writer_clears_designation () =
  let d = Sync_d.create (sync_cfg ()) (sync_params ()) in
  let w = Option.get (Sync_d.writer d) in
  ignore (Scheduler.schedule_at (Sync_d.scheduler d) (time 1) (fun () -> Sync_d.retire d w));
  Sync_d.run_until d (time 10);
  check_bool "writer gone" true (Sync_d.writer d = None)

let test_deployment_writer_rotation () =
  (* Unprotected writer under churn: elect_writer promotes a successor
     and the (non-concurrent) writes from changing writers stay safe.
     Exercised on ES, whose write embeds a read to catch up on sn. *)
  let cfg =
    { (es_cfg ~seed:55 ~churn:0.02 ()) with Deployment.protect_writer = false }
  in
  let d = Es_d.create cfg (Es_register.default_params ~n:10) in
  let module G = Generator.Make (Es_d) in
  Es_d.start_churn d ~until:(time 600);
  G.run d { Generator.read_rate = 0.5; write_every = 30; start = time 1; until = time 600 };
  Es_d.run_until d (time 800);
  let h = Es_d.history d in
  let writers =
    History.completed_writes h
    |> List.map (fun (o : History.op) -> Pid.to_int o.History.pid)
    |> List.sort_uniq Int.compare
  in
  check_bool "more than one writer over the run" true (List.length writers > 1);
  check_bool "still regular" true (Regularity.is_ok (Es_d.regularity d));
  (* Writes by successive writers carry strictly increasing sns. *)
  let sns =
    List.filter_map
      (fun (o : History.op) ->
        match o.History.kind with History.Write v -> Some v.Value.sn | _ -> None)
      (History.completed_writes h)
  in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | [ _ ] | [] -> true
  in
  check_bool "sns strictly increase across writers" true (strictly_increasing sns)

let test_deployment_trace_records_lifecycle () =
  let cfg = { (sync_cfg ~churn:0.05 ()) with Deployment.trace_enabled = true } in
  let d = Sync_d.create cfg (sync_params ()) in
  Sync_d.start_churn d ~until:(time 60);
  Sync_d.run_until d (time 80);
  let tr = Sync_d.trace d in
  check_bool "join entries" true (Trace.find tr ~topic:"join" <> []);
  check_bool "leave entries" true (Trace.find tr ~topic:"leave" <> []);
  check_bool "net entries" true (Trace.find tr ~topic:"net" <> [])

let test_history_csv_export () =
  let d = Sync_d.create (sync_cfg ()) (sync_params ()) in
  let sched = Sync_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 5) (fun () -> Sync_d.write d (pid 0)));
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> Sync_d.read d (pid 1)));
  Sync_d.run_until d (time 30);
  let csv = History.to_csv (Sync_d.history d) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 2 ops" 3 (List.length lines);
  check Alcotest.string "header" "id,pid,kind,data,sn,invoked,responded,aborted"
    (List.hd lines);
  check_bool "write row" true
    (List.exists (fun l -> String.length l > 0 && String.sub l 0 9 = "0,0,write") lines);
  check_bool "read row" true
    (List.exists
       (fun l -> String.length l > 8 && String.sub l 0 8 = "1,1,read")
       lines)

let test_deployment_ops_on_unknown_rejected () =
  let d = Sync_d.create (sync_cfg ()) (sync_params ()) in
  check_bool "unknown pid" true
    (try
       Sync_d.read d (pid 77);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties *)

(* The synchronous protocol is safe for random seeds and churn rates
   below the threshold. *)
let prop_sync_safe_below_threshold =
  QCheck2.Test.make ~name:"sync protocol regular below churn bound" ~count:25
    QCheck2.Gen.(triple (int_range 0 10_000) (int_range 2 4) (int_range 10 25))
    (fun (seed, delta, n) ->
      let c = 0.8 /. (3.0 *. float_of_int delta) /. 2.0 in
      let cfg =
        {
          (sync_cfg ~seed ~n ~delta ~churn:c ()) with
          Deployment.churn_policy = Dds_churn.Churn.Active_first;
        }
      in
      let d = Sync_d.create cfg (sync_params ~delta ()) in
      let module G = Generator.Make (Sync_d) in
      Sync_d.start_churn d ~until:(time 300);
      G.run d { Generator.read_rate = 0.5; write_every = 17; start = time 1; until = time 300 };
      Sync_d.run_until d (time 340);
      Regularity.is_ok (Sync_d.regularity d))

(* The ES protocol is safe for random pre-GST wildness. *)
let prop_es_safe_random_gst =
  QCheck2.Test.make ~name:"es protocol regular across random GST/wildness" ~count:15
    QCheck2.Gen.(triple (int_range 0 10_000) (int_range 0 400) (int_range 5 30))
    (fun (seed, gst, wild) ->
      let delay = Delay.eventually_synchronous ~gst:(time gst) ~delta:4 ~wild:(4 + wild) in
      let d = Es_d.create (es_cfg ~seed ~delay ()) (Es_register.default_params ~n:10) in
      let module G = Generator.Make (Es_d) in
      G.run d { Generator.read_rate = 0.3; write_every = 50; start = time 1; until = time 500 };
      Es_d.run_until d (time 900);
      Regularity.is_ok (Es_d.regularity d))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dds_core"
    [
      ( "sync",
        [
          Alcotest.test_case "founders active" `Quick test_sync_founders_active;
          Alcotest.test_case "read is fast" `Quick test_sync_read_is_fast;
          Alcotest.test_case "write latency and visibility" `Quick
            test_sync_write_latency_and_visibility;
          Alcotest.test_case "concurrent read legal" `Quick test_sync_concurrent_read_legal;
          Alcotest.test_case "join adopts latest" `Quick test_sync_join_adopts_latest;
          Alcotest.test_case "join fast path" `Quick
            test_sync_join_fast_path_on_concurrent_write;
          Alcotest.test_case "joiner answers postponed inquiries" `Quick
            test_sync_joiner_answers_postponed_inquiries;
          Alcotest.test_case "churn below threshold safe" `Slow
            test_sync_churn_below_threshold_safe;
          Alcotest.test_case "determinism" `Quick test_sync_deployment_determinism;
          Alcotest.test_case "join retries when system empties" `Quick
            test_sync_join_retries_when_system_empties;
          Alcotest.test_case "adopt-bottom violates" `Quick test_sync_adopt_bottom_violates;
          Alcotest.test_case "over flooding broadcast" `Quick
            test_sync_over_flooding_broadcast;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "fig3a violation" `Quick test_fig3a_violation;
          Alcotest.test_case "fig3b correct" `Quick test_fig3b_correct;
          Alcotest.test_case "new/old inversion" `Quick test_inversion_scenario;
          Alcotest.test_case "es inversion + read repair" `Quick
            test_es_inversion_and_read_repair;
          Alcotest.test_case "async staleness grows" `Slow test_async_staleness_grows;
        ] );
      ( "es",
        [
          Alcotest.test_case "majority arithmetic" `Quick test_es_majority;
          Alcotest.test_case "write/read roundtrip" `Quick test_es_write_read_roundtrip;
          Alcotest.test_case "read quorum latency" `Quick test_es_read_needs_majority_replies;
          Alcotest.test_case "join adopts latest" `Quick test_es_join_adopts_latest;
          Alcotest.test_case "concurrent joins unblock" `Quick
            test_es_concurrent_joins_unblock_each_other;
          Alcotest.test_case "write embeds read" `Quick test_es_write_embeds_read;
          Alcotest.test_case "pre-GST safe and live" `Slow test_es_pre_gst_still_safe_and_live;
          Alcotest.test_case "churn with majority safe" `Slow test_es_churn_with_majority_safe;
          Alcotest.test_case "blocks without majority" `Quick
            test_es_blocks_without_active_majority;
          Alcotest.test_case "white-box read state" `Quick test_es_whitebox_read_state;
          Alcotest.test_case "joiner defers reply to reader" `Quick
            test_es_joiner_defers_reply_to_reader;
          Alcotest.test_case "reader DL_PREV to joiner" `Quick
            test_es_reader_dl_prev_to_joiner;
        ] );
      ( "abd",
        [
          Alcotest.test_case "write/read" `Quick test_abd_write_read;
          Alcotest.test_case "atomic with write-back" `Slow test_abd_atomic_with_write_back;
          Alcotest.test_case "joiner reads through group" `Quick
            test_abd_joiner_reads_through_group;
          Alcotest.test_case "blocks once majority left" `Quick
            test_abd_blocks_once_majority_left;
          Alcotest.test_case "write-back ablation" `Quick test_abd_write_back_ablation;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "abort on leave" `Quick test_deployment_abort_on_leave;
          Alcotest.test_case "crash cancels timers" `Quick
            test_deployment_crash_cancels_timers;
          Alcotest.test_case "busy and idle listing" `Quick
            test_deployment_busy_and_idle_listing;
          Alcotest.test_case "retire writer" `Quick
            test_deployment_retire_writer_clears_designation;
          Alcotest.test_case "writer rotation" `Slow test_deployment_writer_rotation;
          Alcotest.test_case "trace lifecycle" `Quick test_deployment_trace_records_lifecycle;
          Alcotest.test_case "history csv" `Quick test_history_csv_export;
          Alcotest.test_case "unknown pid rejected" `Quick
            test_deployment_ops_on_unknown_rejected;
        ] );
      qsuite "core-props" [ prop_sync_safe_below_threshold; prop_es_safe_random_gst ];
    ]
