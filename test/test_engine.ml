(* Tests for the experiment engine: the work-stealing deque under
   contention, the domain pool's determinism contract (canonical-order
   results, lowest-index find_first, byte-identical tables at any
   worker count), failure propagation, and shutdown hygiene. *)

open Dds_engine
open Dds_workload

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Deque *)

let test_deque_lifo_owner () =
  let d = Deque.create () in
  for i = 1 to 10 do
    Deque.push d i
  done;
  check_int "size" 10 (Deque.size d);
  (* Owner pops newest-first. *)
  for i = 10 downto 1 do
    match Deque.pop d with
    | Some v -> check_int "pop order" i v
    | None -> Alcotest.fail "premature empty"
  done;
  check_bool "empty" true (Deque.pop d = None)

let test_deque_fifo_thief () =
  let d = Deque.create () in
  for i = 1 to 10 do
    Deque.push d i
  done;
  (* A thief steals oldest-first, from the opposite end. *)
  for i = 1 to 10 do
    match Deque.steal d with
    | Some v -> check_int "steal order" i v
    | None -> Alcotest.fail "premature empty"
  done;
  check_bool "empty" true (Deque.steal d = None)

let test_deque_growth () =
  let d = Deque.create ~capacity:2 () in
  for i = 1 to 1000 do
    Deque.push d i
  done;
  check_int "all retained across growth" 1000 (Deque.size d);
  let sum = ref 0 in
  let rec drain () =
    match Deque.pop d with
    | Some v ->
      sum := !sum + v;
      drain ()
    | None -> ()
  in
  drain ();
  check_int "no element lost or duplicated" (1000 * 1001 / 2) !sum

(* One owner pushing and popping, several thieves stealing: every value
   must surface exactly once across all parties. *)
let test_deque_contention () =
  let d = Deque.create () in
  let total = 20_000 in
  let stolen = Array.make 4 0 in
  let stop = Atomic.make false in
  let thieves =
    List.init 4 (fun t ->
        Domain.spawn (fun () ->
            let acc = ref 0 in
            while not (Atomic.get stop) do
              match Deque.steal d with
              | Some v -> acc := !acc + v
              | None -> Domain.cpu_relax ()
            done;
            (* Drain what is left after the owner signalled stop. *)
            let rec drain () =
              match Deque.steal d with
              | Some v ->
                acc := !acc + v;
                drain ()
              | None -> ()
            in
            drain ();
            stolen.(t) <- !acc))
  in
  let owner_sum = ref 0 in
  for i = 1 to total do
    Deque.push d i;
    (* Interleave pops so the owner races the thieves at the bottom. *)
    if i mod 3 = 0 then
      match Deque.pop d with
      | Some v -> owner_sum := !owner_sum + v
      | None -> ()
  done;
  Atomic.set stop true;
  List.iter Domain.join thieves;
  let grand = Array.fold_left ( + ) !owner_sum stolen in
  check_int "every value surfaced exactly once" (total * (total + 1) / 2) grand

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_map_order () =
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 100 Fun.id in
      let ys =
        Pool.map p ~key:(Printf.sprintf "sq:%d") ~f:(fun x -> x * x) xs
      in
      check_bool "canonical order" true (ys = List.map (fun x -> x * x) xs))

let test_pool_matches_sequential () =
  (* Satellite 1: a concurrent batch of full simulation runs must give
     the same per-seed results as running them one at a time — i.e. no
     hidden shared state between cells. *)
  let cell seed =
    Sweep.lemma2 ~n:12 ~delta:2 ~ratios:[ 0.5; 0.9 ] ~horizon:150 ~seed ()
  in
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let sequential = List.map cell seeds in
  let concurrent =
    Pool.with_pool ~jobs:4 (fun p ->
        Pool.map p ~key:(Printf.sprintf "cell:%d") ~f:cell seeds)
  in
  check_bool "concurrent == sequential" true (concurrent = sequential)

let test_pool_failure_carries_key () =
  Pool.with_pool ~jobs:2 (fun p ->
      match
        Pool.map p
          ~key:(Printf.sprintf "job:%d")
          ~f:(fun x -> if x = 7 then failwith "boom" else x)
          (List.init 16 Fun.id)
      with
      | _ -> Alcotest.fail "expected Job_failed"
      | exception Pool.Job_failed { key; exn } ->
        check Alcotest.string "failing job named" "job:7" key;
        check_bool "original exception kept" true (exn = Failure "boom"))

let test_pool_shutdown () =
  let p = Pool.create ~jobs:3 () in
  check_int "worker count" 3 (Pool.jobs p);
  ignore (Pool.map p ~key:(Printf.sprintf "warm:%d") ~f:Fun.id [ 1; 2; 3 ]);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  match Pool.map p ~key:(Printf.sprintf "late:%d") ~f:Fun.id [ 1 ] with
  | _ -> Alcotest.fail "map after shutdown must raise"
  | exception Invalid_argument _ -> ()

let test_find_first_lowest () =
  Pool.with_pool ~jobs:8 (fun p ->
      (* Several matches; the lowest index must win regardless of which
         worker finishes first, and the examined count must equal the
         sequential prefix length. *)
      let xs = List.init 64 Fun.id in
      for _ = 1 to 20 do
        match
          Pool.find_first p
            ~key:(Printf.sprintf "probe:%d")
            ~f:(fun x -> if x >= 13 && x mod 2 = 1 then Some (x * 10) else None)
            xs
        with
        | None -> Alcotest.fail "expected a hit"
        | Some (i, v) ->
          check_int "lowest matching index" 13 i;
          check_int "its payload" 130 v
      done)

let test_find_first_none () =
  Pool.with_pool ~jobs:4 (fun p ->
      check_bool "no match -> None" true
        (Pool.find_first p ~key:(Printf.sprintf "miss:%d") ~f:(fun _ -> None)
           (List.init 32 Fun.id)
        = None))

(* ------------------------------------------------------------------ *)
(* Determinism property: a rendered sweep table is byte-identical for
   any worker count (satellite 3). *)

let render_lemma2 ~pool ~n ~ratios ~seed =
  Format.asprintf "%a" Report.pp
    (Tables.lemma2 ~n ~delta:2 (Sweep.lemma2 ?pool ~n ~delta:2 ~ratios ~horizon:120 ~seed ()))

let prop_tables_jobs_invariant =
  QCheck.Test.make ~count:8 ~name:"sweep tables byte-identical for jobs in {1,2,4,8}"
    QCheck.(
      pair (int_range 6 14)
        (pair (int_range 1 1000) (list_of_size Gen.(int_range 1 4) (float_range 0.2 1.5))))
    (fun (n, (seed, ratios)) ->
      let ratios = if ratios = [] then [ 0.5 ] else ratios in
      let reference = render_lemma2 ~pool:None ~n ~ratios ~seed in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun p ->
              String.equal reference (render_lemma2 ~pool:(Some p) ~n ~ratios ~seed)))
        [ 1; 2; 4; 8 ])

let () =
  Alcotest.run "dds-engine"
    [
      ( "deque",
        [
          Alcotest.test_case "owner LIFO" `Quick test_deque_lifo_owner;
          Alcotest.test_case "thief FIFO" `Quick test_deque_fifo_thief;
          Alcotest.test_case "growth" `Quick test_deque_growth;
          Alcotest.test_case "contention" `Slow test_deque_contention;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map canonical order" `Quick test_pool_map_order;
          Alcotest.test_case "concurrent == sequential" `Slow test_pool_matches_sequential;
          Alcotest.test_case "failure carries key" `Quick test_pool_failure_carries_key;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "find_first lowest" `Quick test_find_first_lowest;
          Alcotest.test_case "find_first none" `Quick test_find_first_none;
        ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest ~long:false prop_tables_jobs_invariant ] );
    ]
