(* Tests for the fault-injection subsystem: the nemesis plan codec,
   within-model plans leaving runs regular vs assumption-breaking
   plans getting flagged, the hunter's search/shrink loop, and the
   visibility of every injected fault in the typed-event record. *)

open Dds_sim
open Dds_net
open Dds_core
open Dds_fault

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let time = Time.of_int
let pid = Pid.of_int

module Sync_d = Deployment.Make (Sync_register)
module Es_d = Deployment.Make (Es_register)
module Sync_h = Harness.Make (Sync_d)
module Es_h = Harness.Make (Es_d)

(* The monitor each protocol's theorem calls for, as dds hunt wires
   it: inversions stay off because sync/es implement only a regular
   register (Figure 4's inversion is legitimate there). *)
let sync_monitor ~n ~delta =
  {
    (Dds_monitor.Monitor.default ~n ~delta) with
    Dds_monitor.Monitor.churn_bound = Some (1.0 /. (3.0 *. float_of_int delta));
    inversions = false;
  }

let es_monitor ~n ~delta =
  {
    (Dds_monitor.Monitor.default ~n ~delta) with
    Dds_monitor.Monitor.churn_bound =
      Some (1.0 /. (3.0 *. float_of_int delta *. float_of_int n));
    majority = true;
    inversions = false;
  }

(* Judged runs: no background churn, so any violation is the plan's
   doing. [proto_delta] > [delta] opens a slack window between the
   bound the network enforces and the one the protocol believes. *)
let run_sync ?(seed = 11) ?(n = 10) ?(delta = 3) ?proto_delta ~horizon plan =
  let pdelta = Option.value proto_delta ~default:delta in
  let cfg =
    Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta) ~churn_rate:0.0
  in
  let spec =
    Harness.default_spec ~monitor:(sync_monitor ~n ~delta:pdelta) ~horizon
      ~drain:(20 * pdelta) ()
  in
  Sync_h.run cfg (Sync_register.default_params ~delta:pdelta) spec plan

let run_es ?(seed = 11) ?(n = 10) ?(delta = 3) ~horizon plan =
  let cfg =
    Deployment.default_config ~seed ~n ~delay:(Delay.synchronous ~delta) ~churn_rate:0.0
  in
  let spec =
    Harness.default_spec ~monitor:(es_monitor ~n ~delta) ~horizon ~drain:(20 * delta) ()
  in
  Es_h.run cfg (Es_register.default_params ~n) spec plan

let check_clean name (o : Hunt.outcome) =
  if o.Hunt.violations <> [] then
    Alcotest.failf "%s: expected a clean run, got:@.%s" name
      (String.concat "\n" o.Hunt.violations)

let check_flagged name (o : Hunt.outcome) =
  check_bool (name ^ " flagged") true (o.Hunt.violations <> [])

(* ------------------------------------------------------------------ *)
(* Codec *)

let roundtrip plan =
  match Nemesis.of_string (Nemesis.to_string plan) with
  | Ok plan' ->
    check_bool
      (Format.asprintf "round-trips: %s" (Nemesis.to_string plan))
      true (Nemesis.equal plan plan')
  | Error e -> Alcotest.failf "parse failed on %S: %s" (Nemesis.to_string plan) e

let test_codec_roundtrip_hand_cases () =
  roundtrip [];
  roundtrip [ Nemesis.drop Nemesis.always ];
  roundtrip [ Nemesis.dup ~copies:3 (Nemesis.during ~from_:0 ~until_:100) ];
  roundtrip
    [
      Nemesis.drop ~srcs:[ 1; 2 ] ~dsts:[ 3 ] ~kinds:[ "INQUIRY"; "REPLY" ] ~p:0.1
        ~max_faults:5
        (Nemesis.during ~from_:10 ~until_:50);
      Nemesis.delay ~extra:9 ~kinds:[ "WRITE" ] (Nemesis.during ~from_:40 ~until_:60);
      Nemesis.corrupt (Nemesis.at 7);
      Nemesis.partition ~a:[ 0; 1; 2; 3; 4 ] ~b:[ 5; 6; 7; 8; 9 ] ~symmetric:false
        (Nemesis.during ~from_:100 ~until_:150);
      Nemesis.crash ~recover:10 ~k:2 120;
      Nemesis.storm ~k:6 200;
    ];
  (* Non-contiguous pid lists and open-ended windows survive too. *)
  roundtrip [ Nemesis.drop ~srcs:[ 0; 2; 7 ] (Nemesis.during ~from_:5 ~until_:max_int) ]

let test_codec_parses_doc_grammar () =
  let s =
    "drop(kind=INQUIRY|REPLY,src=1|2,dst=3,p=0.1,max=5)@[10,50];dup(copies=2)@[0,100];"
    ^ "delay(extra=9,kind=WRITE)@[40,60];corrupt()@7;"
    ^ "partition(a=0-4,b=5-9,oneway)@[100,150];crash(k=2,recover=10)@120;storm(k=6)@200"
  in
  match Nemesis.of_string s with
  | Error e -> Alcotest.failf "doc grammar rejected: %s" e
  | Ok plan ->
    check_int "seven steps" 7 (List.length plan);
    roundtrip plan

let test_codec_rejects_garbage () =
  (match Nemesis.of_string "bogus(k=1)@5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown head accepted");
  match Nemesis.of_string "drop(zork=1)@[1,2]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key accepted"

let prop_codec_roundtrip_random =
  QCheck2.Test.make ~name:"nemesis codec round-trips random plans" ~count:200
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let profile =
        if seed mod 2 = 0 then Nemesis.Any else Nemesis.Within { slack = 2 }
      in
      let plan =
        Nemesis.random ~rng:(Rng.create ~seed) ~n:10 ~horizon:200 ~delta:3 profile
      in
      match Nemesis.of_string (Nemesis.to_string plan) with
      | Ok plan' -> Nemesis.equal plan plan'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Within-model plans must leave the run regular (Theorems 1 and 4
   tolerate them): duplicates, delay within the protocol's slack,
   single crash-recoveries, single-process storms. *)

let test_within_sync_duplicates () =
  let o = run_sync ~horizon:100 [ Nemesis.dup ~copies:2 (Nemesis.during ~from_:1 ~until_:80) ] in
  check_clean "sync under duplicates" o;
  check_bool "faults actually injected" true (o.Hunt.injected > 0)

let test_within_es_duplicates () =
  let o = run_es ~horizon:100 [ Nemesis.dup ~copies:1 Nemesis.always ] in
  check_clean "es under duplicates" o;
  check_bool "faults actually injected" true (o.Hunt.injected > 0)

let test_within_sync_delay_inside_slack () =
  (* The network enforces delta = 3; the protocol believes delta = 6.
     Injecting up to 3 extra ticks keeps every delivery inside the
     believed bound, so the run must stay regular. *)
  let o =
    run_sync ~delta:3 ~proto_delta:6 ~horizon:100
      [ Nemesis.delay ~extra:3 (Nemesis.during ~from_:1 ~until_:80) ]
  in
  check_clean "sync with delay inside slack" o;
  check_bool "faults actually injected" true (o.Hunt.injected > 0)

let test_within_es_crash_recovery () =
  let o = run_es ~horizon:100 [ Nemesis.crash ~recover:6 ~k:1 40 ] in
  check_clean "es minority crash with recovery" o;
  check_bool "crash injected" true (o.Hunt.injected >= 1)

let test_within_sync_storm () =
  let o = run_sync ~horizon:100 [ Nemesis.storm ~k:1 50 ] in
  check_clean "sync single-process storm" o;
  check_bool "storm injected" true (o.Hunt.injected >= 1)

(* ------------------------------------------------------------------ *)
(* Assumption-breaking plans must be flagged. *)

let breaking_partition =
  (* Cuts the writer's side off from pids 7-9 across a write (writes
     fire every 20 ticks): sync dissemination never reaches them, so
     reads there return the old value after the write completed. *)
  Nemesis.partition ~a:[ 0; 1; 2; 3; 4; 5; 6 ] ~b:[ 7; 8; 9 ] ~symmetric:false
    (Nemesis.during ~from_:35 ~until_:45)

let test_breaking_sync_partition () =
  let o = run_sync ~horizon:100 [ breaking_partition ] in
  check_flagged "oneway partition across a write" o;
  check_bool "stale read reported" true
    (List.exists (fun v -> String.length v >= 10 && String.sub v 0 10 = "regularity") o.Hunt.violations)

let test_breaking_sync_delay_past_delta () =
  (* WRITE broadcasts delayed well past the believed bound: the writer
     responds after delta ticks but members adopt much later, so reads
     strictly after the write see the old value. *)
  let o =
    run_sync ~horizon:100
      [ Nemesis.delay ~extra:10 ~kinds:[ "WRITE" ] (Nemesis.during ~from_:18 ~until_:45) ]
  in
  check_flagged "delay past delta on WRITE" o

let test_breaking_es_mass_crash () =
  (* Crashing 6 of 10 leaves 4 active: the ES model's standing
     active-majority assumption fails and the monitor must say so. *)
  let o = run_es ~horizon:100 [ Nemesis.crash ~k:6 40 ] in
  check_flagged "es majority crash" o;
  check_bool "majority monitor fired" true
    (List.exists
       (fun v ->
         let has_sub sub =
           let n = String.length sub and m = String.length v in
           let rec go i = i + n <= m && (String.sub v i n = sub || go (i + 1)) in
           go 0
         in
         has_sub "majority")
       o.Hunt.violations)

(* ------------------------------------------------------------------ *)
(* Hunt: search finds a planted violation, shrink strips the harmless
   steps, and the shrunk plan still reproduces through its own codec
   string — exactly what the printed repro line relies on. *)

let test_hunt_search_clean_on_within_plans () =
  let runner ~seed plan = run_sync ~seed ~horizon:80 plan in
  let gen ~seed:_ = [ Nemesis.dup ~copies:1 (Nemesis.during ~from_:1 ~until_:60) ] in
  match Hunt.search ~runner ~gen [ 3; 4 ] with
  | None -> ()
  | Some f ->
    Alcotest.failf "within-model plan flagged: %s" (String.concat "; " f.Hunt.violations)

let test_hunt_search_and_shrink () =
  let runner ~seed plan = run_sync ~seed ~horizon:100 plan in
  let harmless = Nemesis.dup ~copies:1 (Nemesis.during ~from_:1 ~until_:10) in
  let gen ~seed:_ = [ harmless; breaking_partition ] in
  match Hunt.search ~runner ~gen [ 11 ] with
  | None -> Alcotest.fail "planted violation not found"
  | Some found ->
    check_bool "violations reported" true (found.Hunt.violations <> []);
    let shrunk = Hunt.shrink ~runner found in
    check_bool "shrunk no larger" true
      (List.length shrunk.Hunt.plan <= List.length found.Hunt.plan);
    check_bool "harmless dup stripped" true
      (not
         (List.exists
            (function
              | Nemesis.Msg { Fault.action = Fault.Dup _; _ } -> true
              | _ -> false)
            shrunk.Hunt.plan));
    check_bool "partition kept" true
      (List.exists
         (function Nemesis.Partition _ -> true | _ -> false)
         shrunk.Hunt.plan);
    (* Repro line fidelity: the plan survives its own codec and the
       replay still violates. *)
    let s = Nemesis.to_string shrunk.Hunt.plan in
    (match Nemesis.of_string s with
    | Error e -> Alcotest.failf "shrunk plan unparsable (%S): %s" s e
    | Ok plan' ->
      check_bool "shrunk plan round-trips" true (Nemesis.equal plan' shrunk.Hunt.plan);
      let o = runner ~seed:shrunk.Hunt.seed plan' in
      check_bool "repro still violates" true (o.Hunt.violations <> []))

(* ------------------------------------------------------------------ *)
(* Telemetry: every injected fault shows up as a typed event, the
   Send/transmit pairing survives duplication, and the JSONL exporter
   round-trips the fault events (what dds audit replays). *)

let test_fault_events_in_trace () =
  let cfg =
    {
      (Deployment.default_config ~seed:11 ~n:10 ~delay:(Delay.synchronous ~delta:3)
         ~churn_rate:0.0)
      with
      Deployment.events_enabled = true;
    }
  in
  let d = Sync_d.create cfg (Sync_register.default_params ~delta:3) in
  let module I = Injector.Make (Sync_d) in
  let plan = [ Nemesis.dup ~copies:1 Nemesis.always; Nemesis.crash ~k:1 15 ] in
  let inj = I.install ~rng:(Rng.split (Sync_d.workload_rng d)) d plan in
  let sched = Sync_d.scheduler d in
  ignore (Scheduler.schedule_at sched (time 10) (fun () -> Sync_d.write d (pid 0)));
  ignore (Scheduler.schedule_at sched (time 20) (fun () ->
      match Sync_d.random_idle_active d with Some p -> Sync_d.read d p | None -> ()));
  Sync_d.run_until d (time 40);
  let evs = Event.events (Sync_d.events d) in
  let fault_named name =
    List.exists
      (fun st ->
        match st.Event.ev with
        | Event.Fault_injected { fault; _ } -> fault = name
        | _ -> false)
      evs
  in
  check_bool "duplicate visible as Fault_injected" true (fault_named "dup");
  check_bool "crash visible as Fault_injected" true (fault_named "crash");
  check_bool "Node_crash emitted" true
    (List.exists
       (fun st -> match st.Event.ev with Event.Node_crash _ -> true | _ -> false)
       evs);
  check_bool "injector counted both" true (I.total_injected inj >= 2);
  (* Invariant: one Send event per wire copy — injected duplicates add
     Sends, and the count matches the transmit counter exactly. *)
  let sends =
    List.length
      (List.filter
         (fun st -> match st.Event.ev with Event.Send _ -> true | _ -> false)
         evs)
  in
  check_int "send events = net.transmit" (Metrics.get (Sync_d.metrics d) "net.transmit") sends;
  (* The exported JSONL keeps the fault events, so dds audit sees them. *)
  match Export.events_of_jsonl (Export.jsonl_of_events evs) with
  | Error e -> Alcotest.failf "export round-trip failed: %s" e
  | Ok evs' ->
    check_int "export round-trip preserves count" (List.length evs) (List.length evs');
    check_bool "fault events survive export" true
      (List.exists
         (fun st ->
           match st.Event.ev with Event.Fault_injected _ -> true | _ -> false)
         evs')

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dds_fault"
    [
      ( "codec",
        [
          Alcotest.test_case "hand cases round-trip" `Quick test_codec_roundtrip_hand_cases;
          Alcotest.test_case "doc grammar parses" `Quick test_codec_parses_doc_grammar;
          Alcotest.test_case "garbage rejected" `Quick test_codec_rejects_garbage;
        ] );
      ( "within-model",
        [
          Alcotest.test_case "sync duplicates" `Slow test_within_sync_duplicates;
          Alcotest.test_case "es duplicates" `Slow test_within_es_duplicates;
          Alcotest.test_case "sync delay inside slack" `Slow
            test_within_sync_delay_inside_slack;
          Alcotest.test_case "es crash recovery" `Slow test_within_es_crash_recovery;
          Alcotest.test_case "sync storm" `Slow test_within_sync_storm;
        ] );
      ( "breaking",
        [
          Alcotest.test_case "sync oneway partition" `Slow test_breaking_sync_partition;
          Alcotest.test_case "sync delay past delta" `Slow
            test_breaking_sync_delay_past_delta;
          Alcotest.test_case "es mass crash" `Slow test_breaking_es_mass_crash;
        ] );
      ( "hunt",
        [
          Alcotest.test_case "clean on within plans" `Slow
            test_hunt_search_clean_on_within_plans;
          Alcotest.test_case "search and shrink" `Slow test_hunt_search_and_shrink;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "faults in event record" `Quick test_fault_events_in_trace ] );
      qsuite "codec-props" [ prop_codec_roundtrip_random ];
    ]
